// Benchmarks regenerating every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index), plus ablation
// benches for the design choices the paper motivates. Run with:
//
//	go test -bench=. -benchmem
//
// Table/figure benches time the analysis over a shared pipeline fixture;
// pipeline benches time the end-to-end system; ablation benches attach
// their quality metric (success rate, precision, prompt tokens) to the
// timing via b.ReportMetric.
package aipan_test

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"aipan"
	"aipan/internal/annotate"
	"aipan/internal/chatbot"
	"aipan/internal/core"
	"aipan/internal/crawler"
	"aipan/internal/obs"
	"aipan/internal/report"
	"aipan/internal/segment"
	"aipan/internal/store"
	"aipan/internal/textify"
	"aipan/internal/virtualweb"
	"aipan/internal/webgen"
)

var (
	benchOnce sync.Once
	benchRep  *report.Report
	benchRes  *core.Result
	benchPipe *core.Pipeline
	benchErr  error
)

// benchFixture runs the pipeline once over 400 domains and shares the
// dataset across the table benches.
func benchFixture(b *testing.B) (*report.Report, *core.Result) {
	b.Helper()
	benchOnce.Do(func() {
		p, err := core.New(core.Config{Limit: 400, Workers: 8})
		if err != nil {
			benchErr = err
			return
		}
		res, err := p.Run(context.Background())
		if err != nil {
			benchErr = err
			return
		}
		benchPipe, benchRes = p, res
		benchRep = report.New(res.Records, p.Generator())
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchRep, benchRes
}

// BenchmarkFigure1PipelineFunnel measures the end-to-end pipeline (crawl →
// extract → annotate → funnel) per 50 domains — the system of Figure 1.
// The throughput is published through the metrics registry and read back
// from the gauge, so the bench doubles as an integration check of the
// observability path. The flight recorder stays enabled so the per-domain
// wide-event cost is part of the guarded allocation budget.
func BenchmarkFigure1PipelineFunnel(b *testing.B) {
	reg := obs.NewRegistry()
	rate := reg.Gauge("aipan_bench_domains_per_second",
		"End-to-end pipeline throughput measured by BenchmarkFigure1PipelineFunnel.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := core.New(core.Config{Limit: 50, Workers: 8, Registry: reg,
			Events: store.NewMemEvents()})
		if err != nil {
			b.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.Funnel.Annotated == 0 {
			b.Fatal("no annotations")
		}
	}
	rate.Set(float64(50*b.N) / b.Elapsed().Seconds())
	if !strings.Contains(reg.Expose(), "aipan_bench_domains_per_second") {
		b.Fatal("throughput gauge missing from exposition")
	}
	b.ReportMetric(rate.Value(), "domains/sec")
}

// BenchmarkPipelineScaling sweeps the domain-worker count over the same
// 50-domain run, exposing how the stage-parallel engine scales (on a
// multi-core box the curve flattens once workers × LLM fan-out saturates
// the cores; determinism tests guarantee the outputs stay identical).
func BenchmarkPipelineScaling(b *testing.B) {
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p, err := core.New(core.Config{Limit: 50, Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
				res, err := p.Run(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if res.Funnel.Annotated == 0 {
					b.Fatal("no annotations")
				}
			}
			b.ReportMetric(float64(50*b.N)/b.Elapsed().Seconds(), "domains/sec")
		})
	}
}

// BenchmarkTable1AnnotationSummary regenerates Table 1 (and Table 4 via
// the same aggregation path).
func BenchmarkTable1AnnotationSummary(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if out := rep.Table1(false).Render(); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkTable2aDataTypes regenerates Table 2a (meta-category coverage).
func BenchmarkTable2aDataTypes(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep.Table2Types(false)
	}
}

// BenchmarkTable5AllCategories regenerates the full 34-category Table 5.
func BenchmarkTable5AllCategories(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep.Table2Types(true)
	}
}

// BenchmarkTable2bPurposes regenerates Table 2b.
func BenchmarkTable2bPurposes(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep.Table2Purposes()
	}
}

// BenchmarkTable3HandlingRights regenerates Table 3.
func BenchmarkTable3HandlingRights(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep.Table3()
	}
}

// BenchmarkTable6Examples regenerates Table 6.
func BenchmarkTable6Examples(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep.Table6(4)
	}
}

// BenchmarkValidationPrecision scores every annotation against ground
// truth (§4's precision estimation, exact-population form).
func BenchmarkValidationPrecision(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	var prec float64
	for i := 0; i < b.N; i++ {
		ps := rep.PrecisionByAspect()
		prec = ps[0].Value()
	}
	b.ReportMetric(prec*100, "types-precision-%")
}

// BenchmarkCategoryDistribution computes the §5 distribution claims.
func BenchmarkCategoryDistribution(b *testing.B) {
	rep, _ := benchFixture(b)
	b.ResetTimer()
	b.ReportAllocs()
	var over13 float64
	for i := 0; i < b.N; i++ {
		over13 = rep.CategoryDistribution().Over13Cats
	}
	b.ReportMetric(over13*100, ">13-categories-%")
}

// BenchmarkModelComparison reproduces §6 over 6 policies per iteration.
func BenchmarkModelComparison(b *testing.B) {
	b.ReportAllocs()
	var gap float64
	for i := 0; i < b.N; i++ {
		scores, err := aipan.CompareModels(context.Background(), aipan.DefaultSeed, 6)
		if err != nil {
			b.Fatal(err)
		}
		gap = scores[0].TypesPrecision - scores[1].TypesPrecision
	}
	b.ReportMetric(gap*100, "gpt4-llama-gap-pts")
}

// ---------------------------------------------------------------- ablations

// benchPolicyDoc renders one healthy synthetic policy for the annotation
// ablations.
func benchPolicyDoc(b *testing.B) *textify.Document {
	b.Helper()
	gen := webgen.NewDefault()
	for _, s := range gen.Sites() {
		if s.Failure != webgen.FailNone {
			continue
		}
		pages := gen.RenderSite(s.Domain)
		// Deterministic page choice (map iteration order is random).
		var paths []string
		for path := range pages {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			p := pages[path]
			if strings.Contains(path, "privacy") && p.RedirectTo == "" && len(p.Body) > 4000 {
				return textify.RenderHTML(p.Body)
			}
		}
	}
	b.Fatal("no policy page found")
	return nil
}

// BenchmarkAblationSectionVsFullText compares section-first annotation
// against always-whole-text (§3.2.2's design choice), reporting prompt
// tokens per policy.
func BenchmarkAblationSectionVsFullText(b *testing.B) {
	doc := benchPolicyDoc(b)
	for _, variant := range []struct {
		name        string
		sectionOpts []annotate.Option
	}{
		{"section-first", nil},
		{"whole-text", []annotate.Option{annotate.WithSectionFirst(false)}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			ctx := context.Background()
			b.ReportAllocs()
			var tokens float64
			for i := 0; i < b.N; i++ {
				client := chatbot.NewClient(chatbot.NewSim(chatbot.GPT4Profile()), chatbot.WithCache(false))
				seg, err := segment.Segment(ctx, client, doc)
				if err != nil {
					b.Fatal(err)
				}
				an := annotate.New(client, variant.sectionOpts...)
				if _, err := an.Annotate(ctx, doc, seg); err != nil {
					b.Fatal(err)
				}
				tokens = float64(client.Stats().Usage.PromptTokens)
			}
			b.ReportMetric(tokens, "prompt-tokens/policy")
		})
	}
}

// BenchmarkAblationSegmentationCascade compares heading-based, text-based,
// and the paper's two-step cascade segmentation (Appendix B), reporting
// extraction success over a mixed 60-policy sample.
func BenchmarkAblationSegmentationCascade(b *testing.B) {
	gen := webgen.NewDefault()
	var docs []*textify.Document
	for _, s := range gen.Sites() {
		if s.Failure != webgen.FailNone || len(docs) >= 60 {
			continue
		}
		pages := gen.RenderSite(s.Domain)
		var paths []string
		for path := range pages {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			p := pages[path]
			if strings.Contains(path, "privacy") && p.RedirectTo == "" && len(p.Body) > 2000 {
				docs = append(docs, textify.RenderHTML(p.Body))
				break
			}
		}
	}
	ctx := context.Background()
	bot := chatbot.NewSim(chatbot.GPT4Profile())

	run := func(b *testing.B, segmentFn func(*textify.Document) (*segment.Result, error)) {
		b.ReportAllocs()
		var success float64
		for i := 0; i < b.N; i++ {
			ok := 0
			for _, d := range docs {
				res, err := segmentFn(d)
				if err != nil {
					b.Fatal(err)
				}
				if res.Success() {
					ok++
				}
			}
			success = float64(ok) / float64(len(docs))
		}
		b.ReportMetric(success*100, "extraction-success-%")
	}

	b.Run("cascade", func(b *testing.B) {
		run(b, func(d *textify.Document) (*segment.Result, error) {
			return segment.Segment(ctx, bot, d)
		})
	})
	b.Run("headings-only", func(b *testing.B) {
		run(b, func(d *textify.Document) (*segment.Result, error) {
			return segment.SegmentHeadingsOnly(ctx, bot, d)
		})
	})
	b.Run("text-only", func(b *testing.B) {
		run(b, func(d *textify.Document) (*segment.Result, error) {
			return segment.SegmentTextOnly(ctx, bot, d)
		})
	})
}

// fabricatingBot wraps a backend and injects fabricated extractions — the
// hallucination class the paper's programmatic check exists to catch.
type fabricatingBot struct {
	inner chatbot.Chatbot
}

func (f *fabricatingBot) Name() string { return "fabricating-" + f.inner.Name() }

func (f *fabricatingBot) Complete(ctx context.Context, req chatbot.Request) (chatbot.Response, error) {
	resp, err := f.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	if req.Task == chatbot.TaskExtractTypes || req.Task == chatbot.TaskExtractPurposes {
		if es, perr := chatbot.ParseExtractions(resp.Content); perr == nil {
			es = append(es,
				chatbot.Extraction{Line: 1, Text: "astral projection telemetry"},
				chatbot.Extraction{Line: 2, Text: "dream journal entries"})
			resp.Content = chatbot.EncodeExtractions(es)
		}
	}
	return resp, nil
}

// BenchmarkAblationHallucinationFilter measures the cost and the dropped-
// mention count of the programmatic verbatim-presence check.
func BenchmarkAblationHallucinationFilter(b *testing.B) {
	doc := benchPolicyDoc(b)
	ctx := context.Background()
	bot := &fabricatingBot{inner: chatbot.NewSim(chatbot.GPT4Profile())}
	seg, err := segment.Segment(ctx, bot, doc)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		on   bool
	}{{"filter-on", true}, {"filter-off", false}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			var dropped float64
			for i := 0; i < b.N; i++ {
				an := annotate.New(bot, annotate.WithHallucinationFilter(variant.on))
				res, err := an.Annotate(ctx, doc, seg)
				if err != nil {
					b.Fatal(err)
				}
				dropped = float64(res.Dropped)
			}
			b.ReportMetric(dropped, "dropped/policy")
		})
	}
}

// BenchmarkAblationGlossary compares full-glossary prompts against
// no-glossary prompts (the paper's "more context" claim), reporting unique
// annotations recovered.
func BenchmarkAblationGlossary(b *testing.B) {
	doc := benchPolicyDoc(b)
	ctx := context.Background()
	bot := chatbot.NewSim(chatbot.GPT4Profile())
	seg, err := segment.Segment(ctx, bot, doc)
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		size int
	}{{"full-glossary", 0}, {"no-glossary", -1}} {
		b.Run(variant.name, func(b *testing.B) {
			b.ReportAllocs()
			var anns float64
			for i := 0; i < b.N; i++ {
				an := annotate.New(bot, annotate.WithGlossarySize(variant.size))
				res, err := an.Annotate(ctx, doc, seg)
				if err != nil {
					b.Fatal(err)
				}
				anns = float64(len(annotate.Dedup(res.Annotations)))
			}
			b.ReportMetric(anns, "annotations/policy")
		})
	}
}

// BenchmarkAblationCrawlPolicy compares the crawler's link policies over a
// 60-domain sample: footer links only, well-known paths only, and the
// paper's full 31-page policy — reporting crawl success.
func BenchmarkAblationCrawlPolicy(b *testing.B) {
	gen := webgen.NewDefault()
	client := virtualweb.NewTransport(gen).Client()
	domains := gen.Domains()[:60]
	for _, variant := range []struct {
		name string
		cfg  crawler.Config
	}{
		{"full-policy", crawler.Config{}},
		{"footer-only", crawler.Config{SkipWellKnown: true, SkipTopLinks: true}},
		{"well-known-only", crawler.Config{SkipFooter: true, SkipTopLinks: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			cfg := variant.cfg
			cfg.Client = client
			cr, err := crawler.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			var success float64
			for i := 0; i < b.N; i++ {
				ok := 0
				for _, res := range cr.CrawlAll(context.Background(), domains, 8) {
					if res.Success {
						ok++
					}
				}
				success = float64(ok) / float64(len(domains))
			}
			b.ReportMetric(success*100, "crawl-success-%")
		})
	}
}

// BenchmarkAnalyzeHTML measures the public one-shot API on a single
// policy.
func BenchmarkAnalyzeHTML(b *testing.B) {
	gen := webgen.NewDefault()
	var html string
	for _, s := range gen.Sites() {
		if s.Failure != webgen.FailNone {
			continue
		}
		pages := gen.RenderSite(s.Domain)
		var paths []string
		for path := range pages {
			paths = append(paths, path)
		}
		sort.Strings(paths)
		for _, path := range paths {
			p := pages[path]
			if strings.Contains(path, "privacy") && p.RedirectTo == "" && len(p.Body) > 4000 {
				html = p.Body
				break
			}
		}
		if html != "" {
			break
		}
	}
	bot := aipan.SimGPT4()
	b.SetBytes(int64(len(html)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := aipan.AnalyzeHTML(context.Background(), bot, html); err != nil {
			b.Fatal(err)
		}
	}
}
