// Command aipanvet is the repo's self-hosted static-analysis gate: a
// stdlib-only driver (go/parser + go/types, no x/tools) that enforces
// the pipeline's determinism, concurrency, and observability invariants
// mechanically. `aipanvet ./...` must exit 0 on this repository — every
// finding is fixed or carries a justified entry in aipanvet.baseline.
//
// Usage:
//
//	aipanvet [-C dir] [-json] [-baseline file|none] [-checks a,b] [-write-baseline file] [./...]
//
// The same registry backs the `aipan vet` subcommand.
package main

import (
	"os"

	"aipan/internal/analysis"
)

func main() {
	os.Exit(analysis.Main(os.Args[1:], os.Stdout, os.Stderr))
}
