// Command wwwsim serves the synthetic Russell-3000 corporate web over a
// real TCP socket, so the crawler (or a browser, or curl) can talk to the
// study substrate like the live Internet.
//
// Sites are addressed by Host header (curl --resolve) or by path:
//
//	wwwsim --addr :8080
//	curl http://localhost:8080/_site/<domain>/privacy-policy
//
// Use --list to print the domains without serving.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"aipan"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", aipan.DefaultSeed, "corpus seed")
	list := flag.Bool("list", false, "print the synthetic domains and exit")
	n := flag.Int("n", 20, "number of domains to print with --list (0 = all)")
	flag.Parse()

	web := aipan.NewSyntheticWeb(*seed)
	if *list {
		domains := web.Domains()
		if *n > 0 && *n < len(domains) {
			domains = domains[:*n]
		}
		for _, d := range domains {
			fmt.Println(d)
		}
		return
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           web.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Printf("wwwsim: serving %d synthetic corporate sites on %s", len(web.Domains()), *addr)
	log.Printf("wwwsim: try  curl http://localhost%s/_site/%s/", *addr, web.Domains()[0])
	if err := srv.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "wwwsim:", err)
		os.Exit(1)
	}
}
