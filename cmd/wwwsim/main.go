// Command wwwsim serves the synthetic Russell-3000 corporate web over a
// real TCP socket, so the crawler (or a browser, or curl) can talk to the
// study substrate like the live Internet.
//
// Sites are addressed by Host header (curl --resolve) or by path:
//
//	wwwsim --addr :8080
//	curl http://localhost:8080/_site/<domain>/privacy-policy
//
// Use --list to print the domains without serving.
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"aipan"
	"aipan/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", aipan.DefaultSeed, "corpus seed")
	list := flag.Bool("list", false, "print the synthetic domains and exit")
	n := flag.Int("n", 20, "number of domains to print with --list (0 = all)")
	metricsAddr := flag.String("metrics-addr", "", "also serve /metrics and /debug/pprof on this address (e.g. :9090)")
	logLevel := flag.String("log-level", "info", "debug | info | warn | error")
	flag.Parse()

	logger, err := aipan.NewLogger(os.Stderr, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wwwsim:", err)
		os.Exit(2)
	}
	log := logger.With("wwwsim")

	web := aipan.NewSyntheticWeb(*seed)
	if *list {
		domains := web.Domains()
		if *n > 0 && *n < len(domains) {
			domains = domains[:*n]
		}
		for _, d := range domains {
			fmt.Println(d)
		}
		return
	}

	reg := aipan.DefaultMetrics()
	if *metricsAddr != "" {
		dbg, err := obs.StartDebugServer(*metricsAddr, reg, log)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wwwsim:", err)
			os.Exit(1)
		}
		defer dbg.Close()
		log.Info("metrics server listening", "addr", *metricsAddr)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           obs.InstrumentHandler(reg, "virtualweb", web.Handler()),
		ReadHeaderTimeout: 10 * time.Second,
	}
	log.Info("serving synthetic corporate web", "sites", len(web.Domains()), "addr", *addr)
	log.Info("example request", "curl", fmt.Sprintf("http://localhost%s/_site/%s/", *addr, web.Domains()[0]))
	if err := srv.ListenAndServe(); err != nil {
		log.Error("server failed", "err", err)
		os.Exit(1)
	}
}
