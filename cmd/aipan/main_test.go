package main

import (
	"strings"
	"testing"
)

func TestRunFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		rf      runFlags
		wantErr string // substring; "" = valid
	}{
		{"defaults", runFlags{workers: 8}, ""},
		{"zero workers fall back in core", runFlags{}, ""},
		{"negative workers", runFlags{workers: -3}, "--workers"},
		{"negative limit", runFlags{limit: -1}, "--limit"},
		{"resume without checkpoint", runFlags{resume: true}, "--resume requires --checkpoint"},
		{"resume with checkpoint", runFlags{checkpoint: "ck.jsonl", resume: true}, ""},
		{"jsonl store", runFlags{storeSpec: "jsonl", checkpoint: "ck.jsonl"}, ""},
		{"mem store", runFlags{storeSpec: "mem"}, ""},
		{"sharded store with checkpoint", runFlags{storeSpec: "sharded:4", checkpoint: "dir"}, ""},
		{"sharded store without checkpoint", runFlags{storeSpec: "sharded:4"}, "shard directory"},
		{"unknown store", runFlags{storeSpec: "bolt"}, "--store must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rf.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", tc.rf, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %v, want error containing %q", tc.rf, err, tc.wantErr)
			}
		})
	}
}
