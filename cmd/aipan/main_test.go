package main

import (
	"strings"
	"testing"
	"time"
)

func TestRunFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		rf      runFlags
		wantErr string // substring; "" = valid
	}{
		{"defaults", runFlags{workers: 8}, ""},
		{"zero workers fall back in core", runFlags{}, ""},
		{"negative workers", runFlags{workers: -3}, "--workers"},
		{"negative limit", runFlags{limit: -1}, "--limit"},
		{"resume without checkpoint", runFlags{resume: true}, "--resume requires --checkpoint"},
		{"resume with checkpoint", runFlags{checkpoint: "ck.jsonl", resume: true}, ""},
		{"jsonl store", runFlags{storeSpec: "jsonl", checkpoint: "ck.jsonl"}, ""},
		{"mem store", runFlags{storeSpec: "mem"}, ""},
		{"sharded store with checkpoint", runFlags{storeSpec: "sharded:4", checkpoint: "dir"}, ""},
		{"sharded store without checkpoint", runFlags{storeSpec: "sharded:4"}, "shard directory"},
		{"unknown store", runFlags{storeSpec: "bolt"}, "--store must be"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.rf.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", tc.rf, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %v, want error containing %q", tc.rf, err, tc.wantErr)
			}
		})
	}
}

func TestServeFlagsValidate(t *testing.T) {
	valid := serveFlags{
		storeSpec: "jsonl", rps: 50, burst: 100, maxInflight: 256,
		requestTimeout: 15 * time.Second, cacheSize: 1024, drainTimeout: 10 * time.Second,
	}
	cases := []struct {
		name    string
		mutate  func(*serveFlags)
		wantErr string // substring; "" = valid
	}{
		{"defaults", func(*serveFlags) {}, ""},
		{"rate limiting disabled", func(sf *serveFlags) { sf.rps, sf.burst = 0, 0 }, ""},
		{"cache disabled", func(sf *serveFlags) { sf.cacheSize = 0 }, ""},
		{"sharded store", func(sf *serveFlags) { sf.storeSpec = "sharded:4" }, ""},
		{"mem store", func(sf *serveFlags) { sf.storeSpec = "mem" }, "persistent dataset"},
		{"negative rps", func(sf *serveFlags) { sf.rps = -1 }, "--rps"},
		{"negative burst", func(sf *serveFlags) { sf.burst = -1 }, "--burst"},
		{"zero inflight", func(sf *serveFlags) { sf.maxInflight = 0 }, "--max-inflight"},
		{"zero timeout", func(sf *serveFlags) { sf.requestTimeout = 0 }, "--request-timeout"},
		{"negative cache", func(sf *serveFlags) { sf.cacheSize = -1 }, "--cache-size"},
		{"zero drain", func(sf *serveFlags) { sf.drainTimeout = 0 }, "--drain-timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sf := valid
			tc.mutate(&sf)
			err := sf.validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validate(%+v) = %v, want nil", sf, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("validate(%+v) = %v, want error containing %q", sf, err, tc.wantErr)
			}
		})
	}
}
