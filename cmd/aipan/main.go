// Command aipan is the end-to-end reproduction CLI: it runs the pipeline
// over the synthetic Russell-3000 web, persists the AIPAN dataset, and
// regenerates every table and validation figure from the paper.
//
// Usage:
//
//	aipan run      --out aipan.jsonl [--limit N] [--universe N] [--window N] [--model sim-gpt4] [--workers 8] [--seed 3000] [--checkpoint ck.jsonl --store jsonl|sharded:N|binary:N|mem [--resume]] [--stats-out stats.json] [--metrics-addr :9090] [--trace-out run.trace] [--events-out events/] [--telemetry-timings]
//	aipan report   --data aipan.jsonl --table funnel|1|2a|2b|3|4|5|6|dist|retention [--seed 3000]
//	aipan validate --data aipan.jsonl [--seed 3000]
//	aipan compare-models [--n 20] [--seed 3000]
//	aipan serve    --data aipan.jsonl [--store sharded:N] [--addr :8090] [--rps 50 --burst 100] [--max-inflight 256] [--cache-size 1024] [--request-timeout 15s] [--drain-timeout 10s] [--log-level info] [--events events/] [--slo-latency-target 250ms]
//	aipan debug    trace <file> | events <dir> | repair --store <spec> <path> | repair --events <dir>
//	aipan vet      [-json] [-baseline aipanvet.baseline|none] [-checks a,b] ./...
//	aipan all      --out aipan.jsonl [--limit N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"aipan"
	"aipan/internal/analysis"
	"aipan/internal/chatbot"
	"aipan/internal/core"
	"aipan/internal/obs"
	"aipan/internal/report"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "run":
		err = cmdRun(args)
	case "work":
		err = cmdWork(args)
	case "report":
		err = cmdReport(args)
	case "validate":
		err = cmdValidate(args)
	case "compare-models":
		err = cmdCompare(args)
	case "risk":
		err = cmdRisk(args)
	case "train":
		err = cmdTrain(args)
	case "prompts":
		err = cmdPrompts(args)
	case "diff":
		err = cmdDiff(args)
	case "serve":
		err = cmdServe(args)
	case "debug":
		err = cmdDebug(args)
	case "vet":
		os.Exit(analysis.Main(args, os.Stdout, os.Stderr))
	case "all":
		err = cmdAll(args)
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "aipan: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "aipan:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `aipan — large-scale privacy-policy annotation (IMC '24 reproduction)

commands:
  run             crawl + annotate the corpus, write the JSONL dataset
                  (--distributed N / --listen fan the study out over the dispatch protocol)
  work            join a run's coordinator as a worker process (--join <url>)
  report          regenerate a paper table from a dataset
  validate        §4 validation: failure audit + precision vs ground truth
  compare-models  §6 GPT-4- vs Llama- vs GPT-3.5-class comparison
  risk            privacy-exposure scoring + sector peer comparison
  train           distill the chatbot annotations into an offline classifier
  prompts         print the chatbot task prompts (Figure 2 / Appendix C)
  diff            compare two dataset snapshots (trend analysis)
  serve           expose a dataset over the versioned /v1 HTTP/JSON API
  debug           inspect durable telemetry: debug trace <file> | debug events <dir>
  vet             run the repo's own static-analysis checkers (aipanvet)
  all             run + funnel + all tables + validation in one go`)
}

func botFor(name string) (aipan.Chatbot, error) {
	switch name {
	case "sim-gpt4", "":
		return aipan.SimGPT4(), nil
	case "sim-llama31":
		return aipan.SimLlama31(), nil
	case "sim-gpt35":
		return aipan.SimGPT35(), nil
	}
	if strings.HasPrefix(name, "openai:") {
		return aipan.NewOpenAIChatbot(aipan.OpenAIConfig{
			BaseURL: os.Getenv("OPENAI_BASE_URL"),
			APIKey:  os.Getenv("OPENAI_API_KEY"),
			Model:   strings.TrimPrefix(name, "openai:"),
		})
	}
	return nil, fmt.Errorf("unknown model %q (sim-gpt4, sim-llama31, sim-gpt35, openai:<model>)", name)
}

// obsFlags are the observability knobs shared by run and all.
type obsFlags struct {
	metricsAddr      string
	logLevel         string
	traceOut         string
	eventsOut        string
	telemetryTimings bool
}

func (o *obsFlags) register(fs *flag.FlagSet) {
	fs.StringVar(&o.metricsAddr, "metrics-addr", "",
		"serve /metrics and /debug/pprof on this address for the run's lifetime (e.g. :9090)")
	fs.StringVar(&o.logLevel, "log-level", "",
		"emit structured logs to stderr at this level: debug | info | warn | error (default off)")
	fs.StringVar(&o.traceOut, "trace-out", "",
		"export the run's span tree to this trace file (byte-identical across same-seed runs unless --telemetry-timings)")
	fs.StringVar(&o.eventsOut, "events-out", "",
		"record one flight-recorder event per domain into this directory (serve it later with serve --events)")
	fs.BoolVar(&o.telemetryTimings, "telemetry-timings", false,
		"include wall-clock timings in traces and events (trades byte-identical telemetry for latency data)")
}

// runFlags are the pipeline knobs shared by run and all, validated as a
// set before any work starts.
type runFlags struct {
	limit      int
	workers    int
	universe   int
	window     int
	checkpoint string
	storeSpec  string
	resume     bool
	csvPrefix  string
	statsOut   string
}

// validate rejects nonsensical flag combinations up front with a usage
// error, instead of surfacing them later as a crawl that silently does
// nothing or a store open failure mid-run.
func (rf *runFlags) validate() error {
	if rf.workers < 0 {
		return fmt.Errorf("--workers must be non-negative (got %d)", rf.workers)
	}
	if rf.limit < 0 {
		return fmt.Errorf("--limit must be non-negative (got %d)", rf.limit)
	}
	if rf.universe < 0 {
		return fmt.Errorf("--universe must be non-negative (got %d; 0 = the paper's 2,892 domains)", rf.universe)
	}
	if rf.window < 0 {
		return fmt.Errorf("--window must be non-negative (got %d; 0 derives it from --workers)", rf.window)
	}
	if rf.resume && rf.checkpoint == "" {
		return fmt.Errorf("--resume requires --checkpoint (the checkpoint to resume from)")
	}
	switch {
	case rf.storeSpec == "" || rf.storeSpec == "jsonl" || rf.storeSpec == "mem":
	case strings.HasPrefix(rf.storeSpec, "sharded:") || strings.HasPrefix(rf.storeSpec, "binary:"):
		if rf.checkpoint == "" {
			return fmt.Errorf("--store=%s needs --checkpoint to name its shard directory", rf.storeSpec)
		}
	default:
		return fmt.Errorf("--store must be jsonl, sharded:N, binary:N, or mem (got %q)", rf.storeSpec)
	}
	return nil
}

func runPipeline(out string, rf runFlags, seed int64, model string, progress bool, of obsFlags) (*core.Result, *aipan.Pipeline, error) {
	if err := rf.validate(); err != nil {
		return nil, nil, err
	}
	bot, err := botFor(model)
	if err != nil {
		return nil, nil, err
	}
	cfg := aipan.PipelineConfig{
		Seed: seed, Limit: rf.limit, Workers: rf.workers, Bot: bot,
		UniverseDomains: rf.universe, Window: rf.window,
		Checkpoint: rf.checkpoint, TelemetryTimings: of.telemetryTimings,
	}
	// Telemetry outputs close after the run so the sorted trace exporter
	// can write its deterministic file; close errors are surfaced on
	// stderr rather than failing a run whose dataset already landed.
	var telemetryClosers []func() error
	defer func() {
		for _, closeFn := range telemetryClosers {
			if cerr := closeFn(); cerr != nil {
				fmt.Fprintln(os.Stderr, "aipan: telemetry:", cerr)
			}
		}
	}()
	if of.traceOut != "" {
		exp, err := aipan.NewTraceFileExporter(of.traceOut, !of.telemetryTimings)
		if err != nil {
			return nil, nil, err
		}
		telemetryClosers = append(telemetryClosers, exp.Close)
		cfg.TraceExporter = exp
	}
	if of.eventsOut != "" {
		ev, err := aipan.OpenEventLog(of.eventsOut, 4)
		if err != nil {
			return nil, nil, err
		}
		telemetryClosers = append(telemetryClosers, ev.Close)
		cfg.Events = ev
	}
	var st aipan.DatasetStore
	if rf.storeSpec != "" && rf.storeSpec != "jsonl" {
		if st, err = aipan.OpenDatasetStore(rf.storeSpec, rf.checkpoint); err != nil {
			return nil, nil, err
		}
		defer st.Close()
		cfg.Store = st
		cfg.Checkpoint = ""
		// Records live in the store; streaming them into the Result too
		// would hold the whole dataset in memory for nothing — exports
		// below read back through the store instead.
		cfg.DiscardRecords = true
	}
	if of.logLevel != "" {
		logger, err := aipan.NewLogger(os.Stderr, of.logLevel)
		if err != nil {
			return nil, nil, err
		}
		cfg.Logger = logger
	}
	if of.metricsAddr != "" {
		dbg, err := obs.StartDebugServer(of.metricsAddr, aipan.DefaultMetrics(), cfg.Logger)
		if err != nil {
			return nil, nil, err
		}
		defer dbg.Close()
		fmt.Fprintf(os.Stderr, "metrics: http://localhost%s/metrics (pprof under /debug/pprof/)\n", of.metricsAddr)
	}
	if progress {
		cfg.Progress = func(stage string, done, total int) {
			if done%200 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%s: %d/%d", stage, done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	p, err := aipan.NewPipeline(cfg)
	if err != nil {
		return nil, nil, err
	}
	start := time.Now()
	res, err := p.Run(context.Background())
	if err != nil {
		return nil, nil, err
	}
	wall := time.Since(start)
	if out != "" {
		if st != nil {
			if err := aipan.ExportDataset(out, st); err != nil {
				return nil, nil, err
			}
		} else if err := aipan.WriteDataset(out, res.Records); err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "wrote %d records to %s\n", res.Funnel.Domains, out)
	}
	if rf.csvPrefix != "" {
		if st != nil {
			err = aipan.ExportAnnotationsCSV(rf.csvPrefix+"-annotations.csv", st)
			if err == nil {
				err = aipan.ExportDomainsCSV(rf.csvPrefix+"-domains.csv", st)
			}
		} else {
			err = aipan.WriteAnnotationsCSV(rf.csvPrefix+"-annotations.csv", res.Records)
			if err == nil {
				err = aipan.WriteDomainsCSV(rf.csvPrefix+"-domains.csv", res.Records)
			}
		}
		if err != nil {
			return nil, nil, err
		}
		fmt.Fprintf(os.Stderr, "wrote %s-annotations.csv and %s-domains.csv\n", rf.csvPrefix, rf.csvPrefix)
	}
	if rf.statsOut != "" {
		if err := writeRunStats(rf.statsOut, res.Funnel.Domains, wall); err != nil {
			return nil, nil, err
		}
	}
	if of.traceOut != "" || of.eventsOut != "" {
		fmt.Fprintf(os.Stderr, "telemetry for run %s:", p.RunID())
		if of.traceOut != "" {
			fmt.Fprintf(os.Stderr, " trace=%s", of.traceOut)
		}
		if of.eventsOut != "" {
			fmt.Fprintf(os.Stderr, " events=%s", of.eventsOut)
		}
		fmt.Fprintln(os.Stderr)
	}
	return res, p, nil
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("out", "aipan.jsonl", "output dataset path")
	limit := fs.Int("limit", 0, "process only the first N domains (0 = all)")
	workers := fs.Int("workers", 8, "concurrent domains")
	universe := fs.Int("universe", 0, "scale the study universe to N unique domains (0 = the paper's 2,892)")
	window := fs.Int("window", 0, "delivery lookahead: completed records held before in-order delivery (0 = 4×workers)")
	seed := fs.Int64("seed", aipan.DefaultSeed, "corpus seed")
	model := fs.String("model", "sim-gpt4", "chatbot backend")
	csvPrefix := fs.String("csv", "", "also write <prefix>-annotations.csv and <prefix>-domains.csv")
	taxPath := fs.String("taxonomy", "", "JSON taxonomy extension to merge before annotating")
	checkpoint := fs.String("checkpoint", "", "stream records to this path and resume from it on restart")
	storeSpec := fs.String("store", "jsonl", "checkpoint storage backend: jsonl | sharded:N | binary:N | mem")
	resume := fs.Bool("resume", false, "resume an interrupted run from --checkpoint")
	statsOut := fs.String("stats-out", "", "write run statistics (domains, wall secs, domains/sec, peak RSS) as JSON here")
	distributed := fs.Int("distributed", 0,
		"run the study through the dispatch coordinator with N in-process workers (0 = single-process)")
	listen := fs.String("listen", "",
		"serve the dispatch coordinator on this address so external `aipan work` processes can join")
	leaseTTL := fs.Duration("lease-ttl", 15*time.Second,
		"distributed only: reassign a worker's shard after this long without a heartbeat")
	dispatchShards := fs.Int("dispatch-shards", 8, "distributed only: shard count for the study partition")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *taxPath != "" {
		if err := aipan.LoadTaxonomyExtension(*taxPath); err != nil {
			return err
		}
	}
	rf := runFlags{
		limit: *limit, workers: *workers, universe: *universe, window: *window,
		checkpoint: *checkpoint, storeSpec: *storeSpec, resume: *resume,
		csvPrefix: *csvPrefix, statsOut: *statsOut,
	}
	if *distributed > 0 || *listen != "" {
		return runDistributed(*out, rf, *seed, *model, of, *distributed, *listen, *leaseTTL, *dispatchShards)
	}
	res, _, err := runPipeline(*out, rf, *seed, *model, true, of)
	if err != nil {
		return err
	}
	fmt.Println(aipan.FunnelTable(res.Funnel).Render())
	return nil
}

// runStats is the --stats-out payload: the scale harness reads it to
// gate throughput parity and peak memory.
type runStats struct {
	Domains       int     `json:"domains"`
	WallSecs      float64 `json:"wall_secs"`
	DomainsPerSec float64 `json:"domains_per_sec"`
	PeakRSSBytes  int64   `json:"peak_rss_bytes"`
}

func writeRunStats(path string, domains int, wall time.Duration) error {
	st := runStats{Domains: domains, WallSecs: wall.Seconds(), PeakRSSBytes: peakRSSBytes()}
	if st.WallSecs > 0 {
		st.DomainsPerSec = float64(domains) / st.WallSecs
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "stats: %d domains in %.1fs (%.1f domains/sec, peak RSS %d MiB) → %s\n",
		st.Domains, st.WallSecs, st.DomainsPerSec, st.PeakRSSBytes>>20, path)
	return nil
}

// peakRSSBytes reads the process's peak resident set (VmHWM) from
// /proc/self/status; 0 when unavailable (non-Linux).
func peakRSSBytes() int64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

func loadReport(data string, seed int64) (*aipan.Report, error) {
	records, err := aipan.ReadDataset(data)
	if err != nil {
		return nil, err
	}
	web := aipan.NewSyntheticWeb(seed)
	return aipan.NewReport(records, web.Gen), nil
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	data := fs.String("data", "aipan.jsonl", "dataset path")
	table := fs.String("table", "1", "funnel|1|2a|2b|3|4|5|6|dist|retention")
	seed := fs.Int64("seed", aipan.DefaultSeed, "corpus seed (for ground truth)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := loadReport(*data, *seed)
	if err != nil {
		return err
	}
	printReportTable(rep, *table)
	return nil
}

func printReportTable(rep *aipan.Report, table string) {
	switch table {
	case "1":
		fmt.Println(rep.Table1(false).Render())
	case "4":
		fmt.Println(rep.Table1(true).Render())
	case "2a":
		fmt.Println(rep.Table2Types(false).Render())
	case "5":
		fmt.Println(rep.Table2Types(true).Render())
	case "2b":
		fmt.Println(rep.Table2Purposes().Render())
	case "3":
		fmt.Println(rep.Table3().Render())
	case "6":
		fmt.Println(rep.Table6(4).Render())
	case "dist":
		d := rep.CategoryDistribution()
		fmt.Printf("§5 category distribution (paper values in parentheses)\n")
		fmt.Printf("  ≥3 categories:  %5.1f%%  (93.5%%)\n", d.AtLeast3Cats*100)
		fmt.Printf("  >13 categories: %5.1f%%  (52.8%%)\n", d.Over13Cats*100)
		fmt.Printf("  >22 categories: %5.1f%%  (13.0%%)\n", d.Over22Cats*100)
		fmt.Printf("  >25 categories: %5.1f%%  (4.8%%)\n", d.Over25Cats*100)
		fmt.Printf("  CD sector mean: %.1f categories / %.1f descriptors (16.3 / 48.8)\n", d.CDMeanCats, d.CDMeanDescs)
		fmt.Printf("  'data for sale' companies: %d (26)\n", d.DataForSale)
	case "retention":
		s := rep.Retention()
		fmt.Printf("§5 retention & access drill-down (paper values in parentheses)\n")
		fmt.Printf("  median stated retention: %.1f years (2)\n", s.MedianDays/365)
		fmt.Printf("  min: %.0f day(s) %v (1 day)\n", s.MinDays, s.MinDomains)
		fmt.Printf("  max: %.0f years %v (50 years)\n", s.MaxDays/365, s.MaxDomains)
		fmt.Printf("  specific protection practices: %.1f%% (39.9%%)\n", s.SpecificProtection*100)
		if s.IndefiniteTotal > 0 {
			fmt.Printf("  indefinite retention concerning anonymized/aggregated data: %d of %d (§6 refinement)\n",
				s.IndefiniteAnonymized, s.IndefiniteTotal)
		}
		fmt.Printf("  read/write access: %.1f%% (77.5%%)   read-only: %.1f%% (0.5%%)   none: %.1f%% (22.0%%)\n",
			s.ReadWriteAccess*100, s.ReadOnlyAccess*100, s.NoAccess*100)
	default:
		fmt.Fprintf(os.Stderr, "unknown table %q\n", table)
	}
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	data := fs.String("data", "aipan.jsonl", "dataset path")
	seed := fs.Int64("seed", aipan.DefaultSeed, "corpus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rep, err := loadReport(*data, *seed)
	if err != nil {
		return err
	}
	fmt.Println(rep.AuditTable().Render())
	fmt.Println(rep.PrecisionTable().Render())
	fmt.Println("Sampled precision (paper's §4 sample sizes):")
	for _, p := range rep.SampledPrecision(1) {
		fmt.Printf("  %-10s %5.1f%%  (%d/%d)\n", p.Aspect, p.Value()*100, p.Correct, p.Total)
	}
	return nil
}

func cmdCompare(args []string) error {
	fs := flag.NewFlagSet("compare-models", flag.ExitOnError)
	n := fs.Int("n", 20, "number of policies (paper: 20)")
	seed := fs.Int64("seed", aipan.DefaultSeed, "corpus seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	scores, err := aipan.CompareModels(context.Background(), *seed, *n)
	if err != nil {
		return err
	}
	fmt.Println(aipan.CompareTable(scores).Render())
	return nil
}

func cmdRisk(args []string) error {
	fs := flag.NewFlagSet("risk", flag.ExitOnError)
	data := fs.String("data", "aipan.jsonl", "dataset path")
	top := fs.Int("top", 15, "companies to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	records, err := aipan.ReadDataset(*data)
	if err != nil {
		return err
	}
	scores := aipan.ScoreRisk(records)
	fmt.Println(aipan.RiskSectorTable(scores).Render())
	fmt.Println(aipan.RiskTopTable(scores, *top).Render())
	return nil
}

func cmdTrain(args []string) error {
	fs := flag.NewFlagSet("train", flag.ExitOnError)
	data := fs.String("data", "aipan.jsonl", "dataset path")
	out := fs.String("out", "", "write the trained model JSON here (optional)")
	task := fs.String("task", "aspect", "aspect | types-category")
	if err := fs.Parse(args); err != nil {
		return err
	}
	records, err := aipan.ReadDataset(*data)
	if err != nil {
		return err
	}
	model, eval, err := aipan.TrainClassifier(records, *task)
	if err != nil {
		return err
	}
	fmt.Printf("task %q: %d classes, held-out accuracy %.1f%%, macro-F1 %.3f (n=%d)\n",
		*task, len(model.Classes), eval.Accuracy*100, eval.MacroF1, eval.N)
	classes := append([]string(nil), model.Classes...)
	for _, c := range classes {
		m := eval.PerClass[c]
		if m.Support == 0 {
			continue
		}
		fmt.Printf("  %-28s P %.2f  R %.2f  F1 %.2f  (n=%d)\n", c, m.Precision, m.Recall, m.F1, m.Support)
	}
	if *out != "" {
		if err := model.Save(*out); err != nil {
			return err
		}
		fmt.Println("model written to", *out)
	}
	return nil
}

func cmdPrompts(args []string) error {
	fs := flag.NewFlagSet("prompts", flag.ExitOnError)
	task := fs.String("task", "extract-types", "heading-labels | segment-text | extract-types | normalize-types | extract-purposes | normalize-purposes | handling-labels | rights-labels")
	if err := fs.Parse(args); err != nil {
		return err
	}
	sample := "[1] We collect your email address and browsing history.\n"
	var req chatbot.Request
	switch *task {
	case chatbot.TaskHeadingLabels:
		req = chatbot.HeadingLabelsRequest("[1] Information We Collect\n[2]   Cookies\n")
	case chatbot.TaskSegmentText:
		req = chatbot.SegmentTextRequest(sample)
	case chatbot.TaskExtractTypes:
		req = chatbot.ExtractTypesRequest(sample, 3)
	case chatbot.TaskNormalizeTypes:
		req = chatbot.NormalizeTypesRequest([]string{"mailing address"}, 3)
	case chatbot.TaskExtractPurposes:
		req = chatbot.ExtractPurposesRequest(sample, 3)
	case chatbot.TaskNormalizePurposes:
		req = chatbot.NormalizePurposesRequest([]string{"prevent fraud"}, 3)
	case chatbot.TaskHandlingLabels:
		req = chatbot.HandlingLabelsRequest(sample)
	case chatbot.TaskRightsLabels:
		req = chatbot.RightsLabelsRequest(sample)
	default:
		return fmt.Errorf("unknown task %q", *task)
	}
	for _, m := range req.Messages {
		fmt.Printf("――― %s ―――\n%s\n\n", m.Role, m.Content)
	}
	return nil
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	oldPath := fs.String("old", "", "older dataset snapshot (required)")
	newPath := fs.String("new", "", "newer dataset snapshot (required)")
	top := fs.Int("top", 15, "coverage movements to list")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *oldPath == "" || *newPath == "" {
		return fmt.Errorf("diff requires --old and --new dataset paths")
	}
	oldRecs, err := aipan.ReadDataset(*oldPath)
	if err != nil {
		return err
	}
	newRecs, err := aipan.ReadDataset(*newPath)
	if err != nil {
		return err
	}
	deltas := aipan.CoverageDeltas(oldRecs, newRecs)
	fmt.Println(aipan.DeltaTable(deltas, *top).Render())
	ch := aipan.CompareDomains(oldRecs, newRecs)
	fmt.Printf("domains compared: %d (unchanged %d), new: %d, gone: %d\n",
		ch.Compared, ch.Unchanged, len(ch.NewDomains), len(ch.GoneDomains))
	return nil
}

// serveFlags are the serving-layer knobs, validated as a set before the
// store is opened (mirrors runFlags.validate for the pipeline commands).
type serveFlags struct {
	storeSpec      string
	rps            float64
	burst          int
	maxInflight    int
	requestTimeout time.Duration
	cacheSize      int
	drainTimeout   time.Duration
}

func (sf *serveFlags) validate() error {
	if sf.storeSpec == "mem" {
		return fmt.Errorf("serve needs a persistent dataset; --store must be jsonl or sharded:N")
	}
	if sf.rps < 0 {
		return fmt.Errorf("--rps must be non-negative (got %g; 0 disables rate limiting)", sf.rps)
	}
	if sf.burst < 0 {
		return fmt.Errorf("--burst must be non-negative (got %d; 0 derives it from --rps)", sf.burst)
	}
	if sf.maxInflight < 1 {
		return fmt.Errorf("--max-inflight must be positive (got %d)", sf.maxInflight)
	}
	if sf.requestTimeout <= 0 {
		return fmt.Errorf("--request-timeout must be positive (got %v)", sf.requestTimeout)
	}
	if sf.cacheSize < 0 {
		return fmt.Errorf("--cache-size must be non-negative (got %d; 0 disables caching)", sf.cacheSize)
	}
	if sf.drainTimeout <= 0 {
		return fmt.Errorf("--drain-timeout must be positive (got %v)", sf.drainTimeout)
	}
	return nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	data := fs.String("data", "aipan.jsonl", "dataset path (file, or shard directory with --store=sharded:N)")
	addr := fs.String("addr", ":8090", "listen address")
	logLevel := fs.String("log-level", "", "structured request logs to stderr: debug | info | warn | error (default off)")
	var sf serveFlags
	fs.StringVar(&sf.storeSpec, "store", "jsonl", "dataset storage backend: jsonl | sharded:N")
	fs.Float64Var(&sf.rps, "rps", 50, "per-client rate limit in requests/second (0 disables)")
	fs.IntVar(&sf.burst, "burst", 100, "per-client burst allowance (0 derives it from --rps)")
	fs.IntVar(&sf.maxInflight, "max-inflight", 256, "concurrent requests admitted before shedding with 503")
	fs.DurationVar(&sf.requestTimeout, "request-timeout", 15*time.Second, "per-request handler deadline")
	fs.IntVar(&sf.cacheSize, "cache-size", 1024, "response cache capacity in entries (0 disables)")
	fs.DurationVar(&sf.drainTimeout, "drain-timeout", 10*time.Second, "graceful-shutdown window for in-flight requests")
	eventsDir := fs.String("events", "",
		"flight-recorder directory from a --events-out run; enables /v1/events and /v1/domains/{domain}/provenance")
	sloTarget := fs.Duration("slo-latency-target", 250*time.Millisecond,
		"request latency the SLO monitor counts as slow; burn degrades /v1/readyz")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := sf.validate(); err != nil {
		return err
	}
	st, err := aipan.OpenDatasetStore(sf.storeSpec, *data)
	if err != nil {
		return err
	}
	defer st.Close()
	n, err := st.Len()
	if err != nil {
		return err
	}

	var logger *aipan.Logger
	if *logLevel != "" {
		if logger, err = aipan.NewLogger(os.Stderr, *logLevel); err != nil {
			return err
		}
	}
	reg := obs.NewRegistry()
	opts := []aipan.ServerOption{
		aipan.WithServerRegistry(reg),
		aipan.WithServerLogger(logger),
		aipan.WithServerRateLimit(sf.rps, sf.burst),
		aipan.WithServerMaxInflight(sf.maxInflight),
		aipan.WithServerRequestTimeout(sf.requestTimeout),
		aipan.WithServerCacheSize(sf.cacheSize),
		aipan.WithServerSLO(aipan.SLOConfig{SlowTarget: *sloTarget}),
	}
	if *eventsDir != "" {
		ev, err := aipan.OpenEventDir(*eventsDir)
		if err != nil {
			return err
		}
		defer ev.Close()
		opts = append(opts, aipan.WithServerEvents(ev))
	}
	s, err := aipan.NewDatasetServer(aipan.DatasetFromStore(st), opts...)
	if err != nil {
		return err
	}
	stopSampler := aipan.StartRuntimeSampler(reg, 10*time.Second)
	defer stopSampler()
	fmt.Fprintf(os.Stderr, "serving %d records on %s — try GET /v1/summary, /v1/domains, /v1/domains/<domain>/label, /v1/domains/<domain>/ask?q=... (/metrics for telemetry)\n",
		n, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           s,
		ReadHeaderTimeout: 10 * time.Second,
	}
	// Flip readiness the moment drain starts — strictly before Shutdown
	// closes the listener — so load balancers polling /v1/readyz stop
	// routing new traffic while in-flight requests finish.
	err = obs.ListenAndServeContext(ctx, httpSrv, sf.drainTimeout, logger,
		func() { s.SetReady(false) })
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

func cmdAll(args []string) error {
	fs := flag.NewFlagSet("all", flag.ExitOnError)
	out := fs.String("out", "aipan.jsonl", "output dataset path")
	limit := fs.Int("limit", 0, "process only the first N domains (0 = all)")
	workers := fs.Int("workers", 8, "concurrent domains")
	seed := fs.Int64("seed", aipan.DefaultSeed, "corpus seed")
	var of obsFlags
	of.register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, p, err := runPipeline(*out, runFlags{limit: *limit, workers: *workers}, *seed, "sim-gpt4", true, of)
	if err != nil {
		return err
	}
	rep := aipan.NewReport(res.Records, p.Generator())
	fmt.Println(aipan.FunnelTable(res.Funnel).Render())
	for _, tbl := range []string{"1", "2a", "2b", "3", "4", "5", "6", "dist", "retention"} {
		printReportTable(rep, tbl)
		fmt.Println()
	}
	fmt.Println(rep.AuditTable().Render())
	fmt.Println(rep.PrecisionTable().Render())
	if cl, ok := p.Bot().(*chatbot.Client); ok {
		st := cl.Stats()
		fmt.Printf("chatbot calls: %d (failed %d), tokens: %d prompt / %d completion\n",
			st.Calls, st.FailedCalls, st.Usage.PromptTokens, st.Usage.CompletionTokens)
	}
	_ = report.FunnelNumbers{} // keep the report import for future subcommands
	return nil
}
