package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aipan"
	"aipan/internal/dispatch"
	"aipan/internal/engine"
	"aipan/internal/obs"
)

// runDistributed runs one study as a dispatch job: a coordinator
// partitions the study list into shards and serves leases over the /v1
// protocol, nWorkers in-process workers (and any external `aipan work`
// processes that join) crawl their leased shards, and the merged store
// exports exactly the bytes a single-process run of the same seed
// would.
func runDistributed(out string, rf runFlags, seed int64, model string, of obsFlags,
	nWorkers int, listen string, ttl time.Duration, shards int) error {
	if err := rf.validate(); err != nil {
		return err
	}
	if _, err := botFor(model); err != nil { // fail before any lease is granted
		return err
	}
	if of.traceOut != "" || of.eventsOut != "" {
		fmt.Fprintln(os.Stderr, "aipan: note: --trace-out/--events-out apply to pipeline processes; "+
			"the coordinator merges records only")
	}

	spec := rf.storeSpec
	if (spec == "" || spec == "jsonl") && rf.checkpoint == "" {
		spec = "mem"
	}
	st, err := aipan.OpenDatasetStore(spec, rf.checkpoint)
	if err != nil {
		return err
	}
	defer st.Close()

	var logger *aipan.Logger
	if of.logLevel != "" {
		if logger, err = aipan.NewLogger(os.Stderr, of.logLevel); err != nil {
			return err
		}
	}
	coord, err := dispatch.NewCoordinator(dispatch.CoordinatorConfig{
		Spec: dispatch.JobSpec{
			Seed: seed, UniverseDomains: rf.universe, Limit: rf.limit,
			Model: model, Shards: shards,
		},
		Store:    st,
		LeaseTTL: ttl,
		Registry: aipan.DefaultMetrics(),
		Logger:   logger,
	})
	if err != nil {
		return err
	}

	addr := listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(os.Stderr, "dispatch: job %s on %s (join with: aipan work --join %s)\n",
		coord.JobID(), base, base)
	fmt.Fprintf(os.Stderr, "dispatch: metrics at %s/metrics, progress at %s/v1/jobs/%s\n",
		base, base, coord.JobID())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv := &http.Server{Handler: coord}
	srvGrp, _ := engine.NewGroup(ctx)
	srvGrp.Go(func(context.Context) error {
		if serr := srv.Serve(ln); serr != nil && !errors.Is(serr, http.ErrServerClosed) {
			return serr
		}
		return nil
	})
	shutdown := func() {
		sd, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = srv.Shutdown(sd)
	}

	// The listener stays up until every in-process worker has seen the
	// job finish (external workers racing their last poll against
	// shutdown is unavoidable — they tolerate it); with no in-process
	// workers (--listen only) the coordinator itself signals completion.
	var runErr error
	if nWorkers > 0 {
		wg, _ := engine.NewGroup(ctx)
		for i := 0; i < nWorkers; i++ {
			w, werr := dispatch.NewWorker(dispatch.WorkerConfig{
				Coordinator: base,
				ID:          fmt.Sprintf("local-%02d", i),
				Workers:     rf.workers,
				NewBot:      botFor,
				Registry:    aipan.DefaultMetrics(),
				Logger:      logger,
			})
			if werr != nil {
				shutdown()
				_ = srvGrp.Wait()
				_ = wg.Wait()
				return werr
			}
			wg.Go(w.Run)
		}
		runErr = wg.Wait()
	} else {
		runErr = coord.Wait(ctx)
	}
	shutdown()
	if serr := srvGrp.Wait(); runErr == nil {
		runErr = serr
	}
	if runErr != nil {
		return runErr
	}

	if out != "" {
		if err := aipan.ExportDataset(out, st); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote merged dataset to %s\n", out)
	}
	if rf.csvPrefix != "" {
		if err := aipan.ExportAnnotationsCSV(rf.csvPrefix+"-annotations.csv", st); err != nil {
			return err
		}
		if err := aipan.ExportDomainsCSV(rf.csvPrefix+"-domains.csv", st); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s-annotations.csv and %s-domains.csv\n", rf.csvPrefix, rf.csvPrefix)
	}
	fmt.Println(aipan.FunnelTable(coord.Funnel()).Render())
	return nil
}

// cmdWork joins a running coordinator as a worker process: lease a
// shard, run the normal pipeline over it, upload, repeat until the job
// is done.
func cmdWork(args []string) error {
	fs := flag.NewFlagSet("work", flag.ExitOnError)
	join := fs.String("join", "", "coordinator base URL, e.g. http://127.0.0.1:8080 (required)")
	id := fs.String("id", "", "worker name in leases and metrics (default worker-<pid>)")
	workers := fs.Int("workers", 8, "concurrent domains within the leased shard")
	batch := fs.Int("batch", 8, "records per upload batch")
	logLevel := fs.String("log-level", "",
		"emit structured logs to stderr at this level: debug | info | warn | error (default off)")
	metricsAddr := fs.String("metrics-addr", "",
		"serve this worker's /metrics and /debug/pprof on this address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *join == "" {
		return fmt.Errorf("work: --join <coordinator URL> is required")
	}
	if *id == "" {
		*id = fmt.Sprintf("worker-%d", os.Getpid())
	}

	var logger *aipan.Logger
	if *logLevel != "" {
		l, err := aipan.NewLogger(os.Stderr, *logLevel)
		if err != nil {
			return err
		}
		logger = l
	}
	if *metricsAddr != "" {
		dbg, err := obs.StartDebugServer(*metricsAddr, aipan.DefaultMetrics(), logger)
		if err != nil {
			return err
		}
		defer dbg.Close()
	}

	w, err := dispatch.NewWorker(dispatch.WorkerConfig{
		Coordinator: *join,
		ID:          *id,
		Workers:     *workers,
		BatchSize:   *batch,
		NewBot:      botFor,
		Registry:    aipan.DefaultMetrics(),
		Logger:      logger,
	})
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return w.Run(ctx)
}
