package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"aipan"
)

// cmdDebug dispatches the telemetry and recovery surfaces: `debug trace`
// renders an exported span tree, `debug events` summarizes a
// flight-recorder stream, `debug repair` truncates a crash-torn store or
// event directory back to its last good record.
func cmdDebug(args []string) error {
	if len(args) < 1 {
		fmt.Fprintln(os.Stderr, `usage:
  aipan debug trace <file>                 render an exported trace (--trace-out) as a tree
  aipan debug events <dir>                 summarize a flight-recorder stream (--events-out)
  aipan debug repair --store <spec> <path> truncate a torn checkpoint store to its last good record
  aipan debug repair --events <dir>        truncate torn flight-recorder shards`)
		return fmt.Errorf("debug needs a subcommand (trace | events | repair)")
	}
	switch args[0] {
	case "trace":
		return debugTrace(args[1:])
	case "events":
		return debugEvents(args[1:])
	case "repair":
		return debugRepair(args[1:])
	}
	return fmt.Errorf("unknown debug subcommand %q (trace | events | repair)", args[0])
}

// debugRepair is the recovery path behind the ErrStoreTruncated refusal:
// a run killed mid-append leaves a half-written final record, opens
// refuse it, and this truncates back to the last record the store can
// vouch for so the run resumes from everything durably written.
func debugRepair(args []string) error {
	fs := flag.NewFlagSet("debug repair", flag.ExitOnError)
	spec := fs.String("store", "jsonl", "store spec to repair: jsonl | sharded:N | binary:N")
	eventsDir := fs.String("events", "", "repair a flight-recorder directory instead of a record store")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *eventsDir != "" {
		if fs.NArg() != 0 {
			return fmt.Errorf("debug repair --events takes no positional arguments")
		}
		dropped, err := aipan.RepairEventDir(*eventsDir)
		if err != nil {
			return err
		}
		fmt.Printf("repaired %s: %d bytes truncated\n", *eventsDir, dropped)
		return nil
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("debug repair needs the store path (or --events <dir>)")
	}
	dropped, err := aipan.RepairDatasetStore(*spec, fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Printf("repaired %s: %d bytes truncated\n", fs.Arg(0), dropped)
	return nil
}

// stageStat aggregates every span sharing one tree path.
type stageStat struct {
	path  string
	count int
	total time.Duration // sum of span durations
	self  time.Duration // total minus time attributed to child paths
}

func debugTrace(args []string) error {
	fs := flag.NewFlagSet("debug trace", flag.ExitOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("debug trace needs exactly one trace file")
	}
	recs, err := aipan.ReadTrace(fs.Arg(0))
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		fmt.Println("empty trace")
		return nil
	}

	// Aggregate by path: a corpus run emits thousands of domain/page
	// spans, and the per-stage rollup is what a human reads. Self time
	// is the stage's own work: its total minus its direct children's.
	byPath := map[string]*stageStat{}
	runIDs := map[string]bool{}
	for i := range recs {
		rec := &recs[i]
		runIDs[rec.RunID] = true
		st := byPath[rec.Path]
		if st == nil {
			st = &stageStat{path: rec.Path}
			byPath[rec.Path] = st
		}
		st.count++
		st.total += time.Duration(rec.DurationNanos)
	}
	paths := make([]string, 0, len(byPath))
	for path, st := range byPath {
		paths = append(paths, path)
		st.self = st.total
	}
	sort.Strings(paths)
	for _, path := range paths {
		if parent := parentPath(path); parent != "" {
			if pst := byPath[parent]; pst != nil {
				pst.self -= byPath[path].total
			}
		}
	}

	ids := make([]string, 0, len(runIDs))
	for id := range runIDs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Printf("%d spans, run %s\n\n", len(recs), strings.Join(ids, ", "))
	timed := false
	for _, st := range byPath {
		if st.total != 0 {
			timed = true
			break
		}
	}
	if timed {
		fmt.Printf("%-42s %8s %12s %12s   (self clamps to 0 where concurrent children overlap the parent)\n",
			"stage", "count", "total", "self")
	} else {
		fmt.Printf("%-42s %8s   (deterministic export: no wall-clock timings)\n", "stage", "count")
	}
	for _, path := range paths {
		st := byPath[path]
		depth := strings.Count(path, "/")
		label := strings.Repeat("  ", depth) + lastSegment(path)
		if timed {
			self := st.self
			if self < 0 {
				self = 0
			}
			fmt.Printf("%-42s %8d %12s %12s\n", label, st.count,
				st.total.Round(time.Microsecond), self.Round(time.Microsecond))
		} else {
			fmt.Printf("%-42s %8d\n", label, st.count)
		}
	}
	return nil
}

func parentPath(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return ""
}

func lastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func debugEvents(args []string) error {
	fs := flag.NewFlagSet("debug events", flag.ExitOnError)
	slowest := fs.Int("slowest", 10, "slowest domains to list (needs --telemetry-timings at record time)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("debug events needs exactly one event directory")
	}
	log, err := aipan.OpenEventDir(fs.Arg(0))
	if err != nil {
		return err
	}
	defer log.Close()

	var (
		total    int
		outcomes = map[string]int{}
		errs     int
		fallback int
		slow     []aipan.FlightEvent
		runIDs   = map[string]bool{}
	)
	err = log.Scan(func(ev *aipan.FlightEvent) error {
		total++
		outcomes[ev.Outcome]++
		runIDs[ev.RunID] = true
		if len(ev.Errors) > 0 {
			errs++
		}
		for _, a := range ev.Aspects {
			if a.Fallback {
				fallback++
				break
			}
		}
		if ev.WallMillis > 0 {
			slow = append(slow, *ev)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total == 0 {
		fmt.Println("no events recorded")
		return nil
	}

	ids := make([]string, 0, len(runIDs))
	for id := range runIDs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	fmt.Printf("%d events, run %s\n\n", total, strings.Join(ids, ", "))

	fmt.Println("outcomes:")
	keys := make([]string, 0, len(outcomes))
	for k := range outcomes {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if outcomes[keys[i]] != outcomes[keys[j]] {
			return outcomes[keys[i]] > outcomes[keys[j]]
		}
		return keys[i] < keys[j]
	})
	for _, k := range keys {
		n := outcomes[k]
		fmt.Printf("  %-18s %6d  (%.1f%%)\n", k, n, 100*float64(n)/float64(total))
	}
	fmt.Printf("\ndomains with errors: %d   with annotation fallbacks: %d\n", errs, fallback)

	if len(slow) > 0 && *slowest > 0 {
		sort.Slice(slow, func(i, j int) bool {
			if slow[i].WallMillis != slow[j].WallMillis {
				return slow[i].WallMillis > slow[j].WallMillis
			}
			return slow[i].Domain < slow[j].Domain
		})
		if len(slow) > *slowest {
			slow = slow[:*slowest]
		}
		fmt.Println("\nslowest domains:")
		for _, ev := range slow {
			stages := make([]string, 0, len(ev.StageMillis))
			for s := range ev.StageMillis {
				stages = append(stages, s)
			}
			sort.Strings(stages)
			var b strings.Builder
			for _, s := range stages {
				fmt.Fprintf(&b, " %s=%dms", s, ev.StageMillis[s])
			}
			fmt.Printf("  %-32s %6dms  %-14s%s\n", ev.Domain, ev.WallMillis, ev.Outcome, b.String())
		}
	}
	return nil
}
