// Command policyscan annotates a single privacy policy: feed it an HTML
// (or plain-text) file and it prints the structured annotations the
// pipeline would store — collected data types, purposes, retention and
// protection practices, and user rights.
//
// Usage:
//
//	policyscan [--model sim-gpt4] [--json] policy.html
//	policyscan --label policy.html                  # privacy nutrition label
//	policyscan --ask "do they sell my data?" policy.html
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"aipan"
)

func main() {
	model := flag.String("model", "sim-gpt4", "chatbot backend: sim-gpt4, sim-llama31, sim-gpt35")
	asJSON := flag.Bool("json", false, "emit annotations as JSON")
	label := flag.Bool("label", false, "render a privacy nutrition label instead of the annotation table")
	ask := flag.String("ask", "", "answer a privacy question from the policy")
	taxPath := flag.String("taxonomy", "", "JSON taxonomy extension to merge before annotating")
	flag.Parse()
	if *taxPath != "" {
		if err := aipan.LoadTaxonomyExtension(*taxPath); err != nil {
			fmt.Fprintln(os.Stderr, "policyscan:", err)
			os.Exit(1)
		}
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: policyscan [--model M] [--json|--label|--ask Q] policy.html")
		os.Exit(2)
	}
	if err := run(flag.Arg(0), *model, *asJSON, *label, *ask); err != nil {
		fmt.Fprintln(os.Stderr, "policyscan:", err)
		os.Exit(1)
	}
}

func run(path, model string, asJSON, label bool, ask string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	html := string(data)
	// Plain-text input: wrap the paragraphs so the HTML pipeline applies.
	if !strings.Contains(html, "<") {
		var b strings.Builder
		for _, para := range strings.Split(html, "\n\n") {
			fmt.Fprintf(&b, "<p>%s</p>\n", para)
		}
		html = b.String()
	}

	var bot aipan.Chatbot
	switch model {
	case "sim-gpt4":
		bot = aipan.SimGPT4()
	case "sim-llama31":
		bot = aipan.SimLlama31()
	case "sim-gpt35":
		bot = aipan.SimGPT35()
	default:
		return fmt.Errorf("unknown model %q", model)
	}

	anns, err := aipan.AnalyzeHTML(context.Background(), bot, html)
	if err != nil {
		return err
	}
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(anns)
	}
	if ask != "" {
		ans, ok := aipan.Ask(ask, anns)
		if !ok {
			return fmt.Errorf("no supported question matched %q (try: sell, delete, retention, opt-out, location, health, collect, security)", ask)
		}
		fmt.Println(ans.Text)
		for _, ev := range ans.Evidence {
			fmt.Println("  evidence:", ev)
		}
		if !ans.Confident {
			fmt.Println("  (the policy is silent on this; absence of a mention is not proof of absence)")
		}
		return nil
	}
	if label {
		fmt.Print(aipan.NutritionLabel(anns).Render(path))
		return nil
	}

	sort.SliceStable(anns, func(i, j int) bool {
		if anns[i].Aspect != anns[j].Aspect {
			return anns[i].Aspect < anns[j].Aspect
		}
		return anns[i].Category < anns[j].Category
	})
	t := &aipan.Table{
		Title:   fmt.Sprintf("%s — %d unique annotations (%s)", path, len(anns), model),
		Headers: []string{"Aspect", "Meta", "Category", "Descriptor", "Line", "Text"},
	}
	for _, a := range anns {
		t.AddRow(a.Aspect, a.Meta, a.Category, a.Descriptor, fmt.Sprintf("%d", a.Line), clip(a.Text, 40))
	}
	fmt.Println(t.Render())
	return nil
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
