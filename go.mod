module aipan

go 1.22
