package aipan_test

import (
	"context"
	"path/filepath"
	"strings"
	"testing"

	"aipan"
)

const samplePolicy = `<html><body>
<h1>Privacy Policy</h1>
<h2>Information We Collect</h2>
<p>We collect your email address and browsing history, and we use cookies.</p>
<h2>How We Use Your Information</h2>
<p>We use data for fraud prevention and analytics.</p>
<h2>Data Retention</h2>
<p>We retain data for 2 years.</p>
<h2>Your Rights</h2>
<p>You may opt out by clicking the unsubscribe link.</p>
<h2>Contact</h2><p>privacy@x.example</p>
</body></html>`

func TestAnalyzeHTML(t *testing.T) {
	anns, err := aipan.AnalyzeHTML(context.Background(), aipan.SimGPT4(), samplePolicy)
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) < 6 {
		t.Fatalf("got %d annotations", len(anns))
	}
	aspects := map[string]bool{}
	for _, a := range anns {
		aspects[a.Aspect] = true
	}
	for _, want := range []string{"types", "purposes", "handling", "rights"} {
		if !aspects[want] {
			t.Errorf("missing aspect %s", want)
		}
	}
}

func TestSyntheticWebEndToEnd(t *testing.T) {
	web := aipan.NewSyntheticWeb(0) // 0 → DefaultSeed
	if len(web.Domains()) != 2892 {
		t.Fatalf("domains = %d", len(web.Domains()))
	}
	cr, err := aipan.NewCrawler(aipan.CrawlerConfig{Client: web.Client()})
	if err != nil {
		t.Fatal(err)
	}
	res := cr.CrawlDomain(context.Background(), web.Domains()[1])
	if res == nil {
		t.Fatal("nil result")
	}
}

func TestPipelineAndDatasetRoundTrip(t *testing.T) {
	p, err := aipan.NewPipeline(aipan.PipelineConfig{Limit: 25, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "ds.jsonl")
	if err := aipan.WriteDataset(path, res.Records); err != nil {
		t.Fatal(err)
	}
	records, err := aipan.ReadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 25 {
		t.Fatalf("records = %d", len(records))
	}
	rep := aipan.NewReport(records, p.Generator())
	if rep.AnnotatedCount() == 0 {
		t.Fatal("no annotated records")
	}
	if out := rep.Table1(false).Render(); !strings.Contains(out, "Types (") {
		t.Error("Table 1 render broken")
	}
	if out := aipan.FunnelTable(res.Funnel).Render(); !strings.Contains(out, "2916") {
		t.Error("funnel render broken")
	}
}

func TestSimBackendsDiffer(t *testing.T) {
	ctx := context.Background()
	policy := `<html><body><p>This privacy notice does not apply to biometric data.
We collect your email address.</p></body></html>`
	gpt4, err := aipan.AnalyzeHTML(ctx, aipan.SimGPT4(), policy)
	if err != nil {
		t.Fatal(err)
	}
	llama, err := aipan.AnalyzeHTML(ctx, aipan.SimLlama31(), policy)
	if err != nil {
		t.Fatal(err)
	}
	has := func(anns []aipan.Annotation, cat string) bool {
		for _, a := range anns {
			if a.Category == cat {
				return true
			}
		}
		return false
	}
	if has(gpt4, "Biometric data") {
		t.Error("GPT-4-class backend extracted the negated mention")
	}
	if !has(llama, "Biometric data") {
		t.Error("Llama-class backend should extract the negated mention")
	}
}

func TestOpenAIChatbotValidation(t *testing.T) {
	if _, err := aipan.NewOpenAIChatbot(aipan.OpenAIConfig{}); err == nil {
		t.Error("empty OpenAI config should fail validation")
	}
	bot, err := aipan.NewOpenAIChatbot(aipan.OpenAIConfig{BaseURL: "http://localhost:1", Model: "m"})
	if err != nil || bot == nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAnnotateOptionsExposed(t *testing.T) {
	// The ablation knobs must be reachable from the public API.
	anns, err := aipan.AnalyzeHTML(context.Background(), aipan.SimGPT4(), samplePolicy,
		aipan.WithGlossarySize(-1), aipan.WithHallucinationFilter(true), aipan.WithSectionFirst(false))
	if err != nil {
		t.Fatal(err)
	}
	if len(anns) == 0 {
		t.Error("no annotations with options set")
	}
}
