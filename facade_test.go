package aipan_test

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"aipan"
)

var (
	facadeOnce sync.Once
	facadeRecs []aipan.Record
	facadeErr  error
)

// facadeDataset runs a small pipeline once for the facade tests.
func facadeDataset(t *testing.T) []aipan.Record {
	t.Helper()
	facadeOnce.Do(func() {
		p, err := aipan.NewPipeline(aipan.PipelineConfig{Limit: 120, Workers: 8})
		if err != nil {
			facadeErr = err
			return
		}
		res, err := p.Run(context.Background())
		if err != nil {
			facadeErr = err
			return
		}
		facadeRecs = res.Records
	})
	if facadeErr != nil {
		t.Fatal(facadeErr)
	}
	return facadeRecs
}

func TestScoreRiskFacade(t *testing.T) {
	records := facadeDataset(t)
	scores := aipan.ScoreRisk(records)
	if len(scores) == 0 {
		t.Fatal("no scores")
	}
	out := aipan.RiskSectorTable(scores).Render()
	if !strings.Contains(out, "Mean score") {
		t.Errorf("sector table:\n%s", out)
	}
	top := aipan.RiskTopTable(scores, 3)
	if len(top.Rows) != 3 {
		t.Errorf("top rows = %d", len(top.Rows))
	}
}

func TestTrainClassifierFacade(t *testing.T) {
	records := facadeDataset(t)
	model, eval, err := aipan.TrainClassifier(records, "aspect")
	if err != nil {
		t.Fatal(err)
	}
	if eval.Accuracy < 0.8 {
		t.Errorf("accuracy = %.3f", eval.Accuracy)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := aipan.LoadClassifier(path)
	if err != nil {
		t.Fatal(err)
	}
	if label, _ := loaded.Predict("we collect your email address and cookies"); label != "types" {
		t.Errorf("loaded prediction = %s", label)
	}
	if _, _, err := aipan.TrainClassifier(records, "bogus-task"); err == nil {
		t.Error("bogus task should fail")
	}
}

func TestNutritionAndQAFacade(t *testing.T) {
	records := facadeDataset(t)
	var rec *aipan.Record
	for i := range records {
		if len(records[i].Annotations) > 10 {
			rec = &records[i]
			break
		}
	}
	if rec == nil {
		t.Fatal("no richly annotated record")
	}
	label := aipan.NutritionLabel(rec.Annotations)
	out := label.Render(rec.Company)
	if !strings.Contains(out, "PRIVACY FACTS") || !strings.Contains(out, "DATA COLLECTED") {
		t.Errorf("label:\n%s", out)
	}
	ans, ok := aipan.Ask("what data do you collect?", rec.Annotations)
	if !ok || ans.Text == "" {
		t.Errorf("Ask failed: %+v (ok=%v)", ans, ok)
	}
}

func TestTrendsFacade(t *testing.T) {
	records := facadeDataset(t)
	half := records[:len(records)/2]
	deltas := aipan.CoverageDeltas(half, records)
	if len(deltas) == 0 {
		t.Fatal("no deltas")
	}
	out := aipan.DeltaTable(deltas, 5).Render()
	if !strings.Contains(out, "pts") {
		t.Errorf("delta table:\n%s", out)
	}
	ch := aipan.CompareDomains(half, records)
	if len(ch.NewDomains) == 0 {
		t.Error("expected new domains in the superset snapshot")
	}
}

func TestCSVFacade(t *testing.T) {
	records := facadeDataset(t)
	dir := t.TempDir()
	annPath := filepath.Join(dir, "ann.csv")
	domPath := filepath.Join(dir, "dom.csv")
	if err := aipan.WriteAnnotationsCSV(annPath, records); err != nil {
		t.Fatal(err)
	}
	if err := aipan.WriteDomainsCSV(domPath, records); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{annPath, domPath} {
		info, err := os.Stat(p)
		if err != nil || info.Size() == 0 {
			t.Errorf("csv %s: %v, size %d", p, err, info.Size())
		}
	}
}

func TestDatasetServerFacade(t *testing.T) {
	records := facadeDataset(t)
	s, err := aipan.NewDatasetServer(aipan.DatasetRecords(records),
		aipan.WithServerCacheSize(16), aipan.WithServerRateLimit(1000, 1000))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("summary status = %d", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == "" {
		t.Error("summary response missing ETag")
	}

	// The deprecated record-slice constructor still serves, and the old
	// unversioned paths redirect permanently onto /v1.
	legacy := httptest.NewServer(aipan.NewDatasetServerFromRecords(records))
	defer legacy.Close()
	resp2, err := legacy.Client().Get(legacy.URL + "/api/summary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("legacy summary status = %d", resp2.StatusCode)
	}
	if got := resp2.Request.URL.Path; got != "/v1/summary" {
		t.Errorf("legacy path landed on %q, want redirect to /v1/summary", got)
	}
}

func TestCompareTableFacade(t *testing.T) {
	scores := []aipan.ModelScore{
		{Model: "sim-gpt4", TypesPrecision: 0.99},
		{Model: "sim-llama31", TypesPrecision: 0.85, NegatedExtracted: 12},
	}
	out := aipan.CompareTable(scores).Render()
	if !strings.Contains(out, "sim-llama31") || !strings.Contains(out, "85.0%") {
		t.Errorf("compare table:\n%s", out)
	}
}

func TestTaxonomyExtensionEndToEnd(t *testing.T) {
	defer aipan.ClearTaxonomyExtension()
	ext := aipan.TaxonomyExtension{
		TypeCategories: []aipan.TaxonomyCategory{{
			Name: "Gaming profile", Meta: "Digital behavior",
			Triggers: []string{"guild"},
			Descriptors: []aipan.TaxonomyDescriptor{
				{Name: "guild membership records", Synonyms: []string{"clan membership"}},
			},
		}},
	}
	if err := aipan.RegisterTaxonomyExtension(ext); err != nil {
		t.Fatal(err)
	}
	// A fresh chatbot built after registration picks up the extension, so
	// the out-of-the-box taxonomy annotates a domain it has never seen.
	policy := `<html><body><p>We collect your clan membership and email address when you join tournaments.</p></body></html>`
	anns, err := aipan.AnalyzeHTML(context.Background(), aipan.SimGPT4(), policy)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range anns {
		if a.Category == "Gaming profile" && a.Descriptor == "guild membership records" {
			found = true
		}
	}
	if !found {
		t.Errorf("extension category not annotated: %+v", anns)
	}
}
