// Sector analysis: run the pipeline over a slice of the synthetic Russell
// 3000 and reproduce the paper's §5 sector comparisons — which sectors
// collect the most, who relies on advertising, where the energy sector
// lags (Tables 2a/2b/3 style output).
//
//	go run ./examples/sector-analysis
package main

import (
	"context"
	"fmt"
	"log"

	"aipan"
)

func main() {
	ctx := context.Background()

	// 500 domains keeps the demo under ~10 s while leaving every sector
	// with a meaningful sample; drop Limit for the full corpus.
	p, err := aipan.NewPipeline(aipan.PipelineConfig{Limit: 500, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("running crawl + annotation over 500 synthetic domains...")
	res, err := p.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	rep := aipan.NewReport(res.Records, p.Generator())
	fmt.Printf("\n%d domains annotated\n\n", rep.AnnotatedCount())

	fmt.Println(rep.Table2Types(false).Render())
	fmt.Println(rep.Table2Purposes().Render())

	d := rep.CategoryDistribution()
	fmt.Println("§5 highlights (paper values in parentheses):")
	fmt.Printf("  companies collecting ≥3 data categories: %.1f%% (93.5%%)\n", d.AtLeast3Cats*100)
	fmt.Printf("  companies collecting >13 categories:     %.1f%% (52.8%%)\n", d.Over13Cats*100)
	fmt.Printf("  consumer discretionary mean categories:  %.1f (16.3)\n", d.CDMeanCats)
	fmt.Printf("  consumer discretionary mean descriptors: %.1f (48.8)\n", d.CDMeanDescs)
}
