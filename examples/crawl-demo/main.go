// Crawl demo: point the §3.1 privacy-policy crawler at the synthetic
// corporate web and watch the discovery policy work — footer links,
// well-known paths, privacy hubs, dedup, and the failure classes.
//
//	go run ./examples/crawl-demo
package main

import (
	"context"
	"fmt"
	"log"

	"aipan"
)

func main() {
	ctx := context.Background()
	web := aipan.NewSyntheticWeb(aipan.DefaultSeed)

	cr, err := aipan.NewCrawler(aipan.CrawlerConfig{Client: web.Client()})
	if err != nil {
		log.Fatal(err)
	}

	domains := web.Domains()[:8]
	fmt.Printf("crawling %d synthetic domains...\n\n", len(domains))
	results := cr.CrawlAll(ctx, domains, 4)

	t := &aipan.Table{Headers: []string{"Domain", "Pages", "Privacy pages", "Crawl OK", "Notes"}}
	for _, r := range results {
		notes := ""
		if site := web.Gen.Site(r.Domain); site != nil && site.Failure != "" {
			notes = "injected failure: " + string(site.Failure)
		}
		if r.PDFCount > 0 {
			notes += " (PDF policy)"
		}
		if r.NonEnglish > 0 {
			notes += " (non-English dropped)"
		}
		if r.DuplicateCount > 0 {
			notes += fmt.Sprintf(" (%d duplicates removed)", r.DuplicateCount)
		}
		t.AddRow(r.Domain,
			fmt.Sprintf("%d", r.PagesFetched()),
			fmt.Sprintf("%d", len(r.PrivacyPages)),
			fmt.Sprintf("%v", r.Success),
			notes)
	}
	fmt.Println(t.Render())

	// Show the discovered privacy-page URLs for the first successful crawl.
	for _, r := range results {
		if len(r.PrivacyPages) == 0 {
			continue
		}
		fmt.Printf("privacy pages for %s:\n", r.Domain)
		for _, p := range r.PrivacyPages {
			fmt.Printf("  %s (%d bytes)\n", p.FinalURL, len(p.Body))
		}
		break
	}
}
