// Quickstart: annotate a single privacy policy with the GPT-4-class
// simulated chatbot and print the structured annotations — the smallest
// possible use of the public API.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"aipan"
)

// policyHTML is a compact but realistic corporate privacy policy.
const policyHTML = `<html><head><title>Example Corp Privacy Policy</title></head><body>
<h1>Privacy Policy</h1>
<h2>Information We Collect</h2>
<p>We collect your email address, mailing address, and phone number when you
create an account. When you browse, our systems record your IP address,
browser type, and browsing history, and we use cookies and web beacons.</p>
<p>We do not collect biometric data or social security numbers.</p>
<h2>How We Use Your Information</h2>
<p>We use the information we collect for customer service, to personalize
your experience, to prevent fraud, for analytics, and to send you marketing
communications about our products.</p>
<h2>Data Retention and Security</h2>
<p>We retain your personal information for the period you are actively using
our services plus six (6) years. Access to personal data is restricted to
employees on a need-to-know basis, and we use Secure Socket Layer (SSL)
encryption technology for payment transactions.</p>
<h2>Your Rights and Choices</h2>
<p>You may opt out at any time by clicking the unsubscribe link at the bottom
of our emails. You may request that we correct or update your personal
information, and you may request that we delete all of your personal
information from our servers.</p>
<h2>Changes to This Policy</h2>
<p>We may update this policy from time to time.</p>
<h2>Contact Us</h2>
<p>Email privacy@example.com.</p>
</body></html>`

func main() {
	ctx := context.Background()
	bot := aipan.SimGPT4()

	anns, err := aipan.AnalyzeHTML(ctx, bot, policyHTML)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("extracted %d unique annotations\n\n", len(anns))
	t := &aipan.Table{Headers: []string{"Aspect", "Category", "Descriptor", "Verbatim text"}}
	for _, a := range anns {
		t.AddRow(a.Aspect, a.Category, a.Descriptor, a.Text)
	}
	fmt.Println(t.Render())

	// The negated mention must NOT appear (the chatbot is instructed to
	// ignore "we do not collect ..." contexts).
	for _, a := range anns {
		if a.Category == "Biometric data" {
			log.Fatal("BUG: negated biometric mention was annotated")
		}
	}
	fmt.Println("note: the negated 'we do not collect biometric data' sentence was correctly skipped")
}
