// Model comparison: reproduce §6 — the same 20 privacy policies annotated
// by a GPT-4-class, a Llama-3.1-class, and a GPT-3.5-class chatbot, scored
// against the planted ground truth. The weaker profiles exhibit the exact
// failure modes the paper reports: Llama extracts data types from negated
// contexts; GPT-3.5 mistakes marketing platforms (ActiveCampaign) for data
// types.
//
//	go run ./examples/model-comparison
package main

import (
	"context"
	"fmt"
	"log"

	"aipan"
)

func main() {
	ctx := context.Background()
	fmt.Println("annotating 20 policies with three chatbot profiles...")

	scores, err := aipan.CompareModels(ctx, aipan.DefaultSeed, 20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(aipan.CompareTable(scores).Render())

	var gpt4, llama aipan.ModelScore
	for _, s := range scores {
		switch s.Model {
		case "sim-gpt4":
			gpt4 = s
		case "sim-llama31":
			llama = s
		}
	}
	fmt.Printf("precision gap (GPT-4 − Llama): %.1f points (paper: 96.2%% − 83.2%% = 13.0)\n",
		(gpt4.TypesPrecision-llama.TypesPrecision)*100)
}
