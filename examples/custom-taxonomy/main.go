// Custom taxonomy: the paper's contribution-1 claim — a flexible,
// programmable pipeline with an extendable taxonomy — demonstrated live.
// We register a domain-specific category (here: connected-vehicle
// telemetry for an automotive deployment) and annotate a policy that the
// stock taxonomy could only cover via zero-shot guesses.
//
//	go run ./examples/custom-taxonomy
package main

import (
	"context"
	"fmt"
	"log"

	"aipan"
)

const policy = `<html><body>
<h1>Privacy Policy</h1>
<h2>Information We Collect</h2>
<p>When you drive a connected vehicle, we collect odometer telemetry readings,
charging session logs, and your email address. We also record harsh braking events.</p>
<h2>How We Use Your Information</h2>
<p>We use this data for analytics and to prevent fraud.</p>
</body></html>`

func main() {
	ctx := context.Background()

	// 1. Stock taxonomy: vehicle telemetry lands in zero-shot guesses (or
	// is missed outright).
	before, err := aipan.AnalyzeHTML(ctx, aipan.SimGPT4(), policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("── stock taxonomy ──")
	printTypes(before)

	// 2. Register a deployment-specific extension: one new category with
	// normalized descriptors and surface synonyms. It merges into the
	// prompt glossaries, extraction lexicon, and normalization index.
	ext := aipan.TaxonomyExtension{
		TypeCategories: []aipan.TaxonomyCategory{{
			Name:     "Vehicle telemetry",
			Meta:     "Physical behavior",
			Triggers: []string{"telemetry", "odometer", "charging"},
			Descriptors: []aipan.TaxonomyDescriptor{
				{Name: "odometer telemetry", Synonyms: []string{"odometer telemetry readings", "odometer readings"}},
				{Name: "charging session logs", Synonyms: []string{"charging logs", "charging history"}},
				{Name: "driving events", Synonyms: []string{"harsh braking events", "acceleration events"}},
			},
		}},
	}
	if err := aipan.RegisterTaxonomyExtension(ext); err != nil {
		log.Fatal(err)
	}
	defer aipan.ClearTaxonomyExtension()

	// A chatbot built AFTER registration carries the extended glossary.
	after, err := aipan.AnalyzeHTML(ctx, aipan.SimGPT4(), policy)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n── with the Vehicle telemetry extension ──")
	printTypes(after)
}

func printTypes(anns []aipan.Annotation) {
	t := &aipan.Table{Headers: []string{"Category", "Descriptor", "Verbatim"}}
	for _, a := range anns {
		if a.Aspect != "types" {
			continue
		}
		marker := ""
		if a.Novel {
			marker = " (zero-shot)"
		}
		t.AddRow(a.Category+marker, a.Descriptor, a.Text)
	}
	fmt.Print(t.Render())
}
