// Risk & distill: the paper's §6 roadmap in action. Run the pipeline over
// a corpus slice, then (1) score every company's privacy exposure with
// sector peer-group percentiles and (2) distill the chatbot annotations
// into an offline classifier that replicates them without chatbot calls.
//
//	go run ./examples/risk-and-distill
package main

import (
	"context"
	"fmt"
	"log"

	"aipan"
)

func main() {
	ctx := context.Background()
	fmt.Println("running the pipeline over 400 synthetic domains...")
	p, err := aipan.NewPipeline(aipan.PipelineConfig{Limit: 400, Workers: 8})
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Privacy-exposure scoring ("legal exposure risk analysis", §6).
	scores := aipan.ScoreRisk(res.Records)
	fmt.Println()
	fmt.Println(aipan.RiskSectorTable(scores).Render())
	fmt.Println(aipan.RiskTopTable(scores, 8).Render())

	// 2. Offline distillation ("training offline LLMs to replicate the
	// chatbot-generated annotations", §6 future work).
	model, eval, err := aipan.TrainClassifier(res.Records, "aspect")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("distilled aspect classifier: %d classes, held-out accuracy %.1f%% (n=%d)\n",
		len(model.Classes), eval.Accuracy*100, eval.N)

	// The distilled model routes new sentences with zero chatbot calls.
	for _, sentence := range []string{
		"We collect your email address and device identifiers.",
		"Your information helps us prevent fraud and measure campaigns.",
		"Records are kept for no longer than twenty-four months.",
		"You may request deletion of your account at any time.",
	} {
		label, margin := model.Predict(sentence)
		fmt.Printf("  %-62q → %-10s (margin %.1f)\n", sentence, label, margin)
	}
}
