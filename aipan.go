// Package aipan is a from-scratch, stdlib-only Go reproduction of
// "Analyzing Corporate Privacy Policies using AI Chatbots" (IMC '24): an
// automated pipeline that crawls corporate websites for privacy policies
// and uses AI-chatbot task prompts to extract structured, taxonomy-
// normalized annotations — collected data types, collection purposes,
// data retention/protection practices, and user rights — at Russell-3000
// scale.
//
// The package is a facade over the building blocks in internal/: the
// synthetic study universe and corporate web (the offline stand-ins for
// the Russell 3000 and the live Internet), the crawler, the HTML→text
// renderer, the segmentation and annotation tasks, the chatbot backends
// (deterministic GPT-4/Llama/GPT-3.5-class simulators plus an
// OpenAI-compatible HTTP client), and the analysis/reporting layer that
// regenerates every table in the paper.
//
// Quick start:
//
//	bot := aipan.SimGPT4()
//	anns, err := aipan.AnalyzeHTML(ctx, bot, policyHTML)
//
// Full reproduction:
//
//	p, _ := aipan.NewPipeline(aipan.PipelineConfig{})
//	res, _ := p.Run(ctx)
//	rep := aipan.NewReport(res.Records, p.Generator())
//	fmt.Println(rep.Table1(false).Render())
package aipan

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"time"

	"aipan/internal/annotate"
	"aipan/internal/chatbot"
	"aipan/internal/core"
	"aipan/internal/crawler"
	"aipan/internal/downstream"
	"aipan/internal/nutrition"
	"aipan/internal/obs"
	"aipan/internal/qa"
	"aipan/internal/report"
	"aipan/internal/risk"
	"aipan/internal/russell"
	"aipan/internal/segment"
	"aipan/internal/server"
	"aipan/internal/stats"
	"aipan/internal/store"
	"aipan/internal/taxonomy"
	"aipan/internal/textify"
	"aipan/internal/trends"
	"aipan/internal/virtualweb"
	"aipan/internal/webgen"
)

// Core data types of the public API.
type (
	// Annotation is one structured annotation (the AIPAN dataset unit).
	Annotation = annotate.Annotation
	// Record is one domain's dataset row.
	Record = store.Record
	// Funnel carries the Figure 1 pipeline counts.
	Funnel = core.Funnel
	// PipelineConfig parameterizes a full run.
	PipelineConfig = core.Config
	// Pipeline is a configured end-to-end run.
	Pipeline = core.Pipeline
	// RunResult is a completed pipeline run.
	RunResult = core.Result
	// Report regenerates the paper's tables from a dataset.
	Report = report.Report
	// Table is a rendered analysis table.
	Table = stats.Table
	// Chatbot is the provider-agnostic LLM interface.
	Chatbot = chatbot.Chatbot
	// ChatbotProfile tunes a simulated chatbot's competence.
	ChatbotProfile = chatbot.Profile
	// OpenAIConfig configures the real-LLM HTTP backend.
	OpenAIConfig = chatbot.OpenAIConfig
	// CrawlerConfig tunes the privacy-policy crawler.
	CrawlerConfig = crawler.Config
	// ModelScore is one model's §6 comparison outcome.
	ModelScore = report.ModelScore
	// Generator is the synthetic corporate web with ground truth.
	Generator = webgen.Generator
	// AnnotateOption tunes the annotator (glossary size, filters).
	AnnotateOption = annotate.Option
)

// DefaultSeed is the AIPAN-3k corpus seed.
const DefaultSeed = webgen.Seed

// Observability re-exports (see internal/obs and DESIGN.md §9).
type (
	// Metrics is the concurrency-safe metrics registry (counters, gauges,
	// histograms) exported in the Prometheus text format. Pass one via
	// PipelineConfig.Registry to isolate a run's metrics; nil uses the
	// process-wide default.
	Metrics = obs.Registry
	// Logger is the leveled, structured key=value logger. Pass one via
	// PipelineConfig.Logger; nil disables logging.
	Logger = obs.Logger
	// TraceSummary is the per-run stage tree (wall-time aggregates)
	// attached to RunResult.Trace.
	TraceSummary = obs.TraceSummary
)

// DefaultMetrics returns the process-wide metrics registry that all
// components report into unless given an explicit registry.
func DefaultMetrics() *Metrics { return obs.Default() }

// MetricsHandler serves reg (nil = DefaultMetrics) in the Prometheus text
// exposition format, for mounting on any mux.
func MetricsHandler(reg *Metrics) http.Handler { return obs.MetricsHandler(reg) }

// NewLogger builds a structured logger writing to w at the given level
// ("debug", "info", "warn", "error"; "" = info).
func NewLogger(w io.Writer, level string) (*Logger, error) {
	lv, err := obs.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(w, lv), nil
}

// NewPipeline builds the end-to-end pipeline. The zero config reproduces
// the paper against the synthetic web with the GPT-4-class simulator.
func NewPipeline(cfg PipelineConfig) (*Pipeline, error) {
	return core.New(cfg)
}

// NewReport builds the analysis layer over dataset records; gen may be
// nil when no ground truth is available (real-web datasets).
func NewReport(records []Record, gen *Generator) *Report {
	return report.New(records, gen)
}

// CompareModels reproduces the §6 model comparison over n policies.
func CompareModels(ctx context.Context, seed int64, n int) ([]ModelScore, error) {
	return report.CompareModels(ctx, seed, n)
}

// SimGPT4 returns the instruction-faithful GPT-4-class simulated chatbot,
// wrapped with retries and bounded concurrency.
func SimGPT4() Chatbot {
	return chatbot.NewClient(chatbot.NewSim(chatbot.GPT4Profile()), chatbot.WithCache(false))
}

// SimLlama31 returns the Llama-3.1-class simulator (negation errors, §6).
func SimLlama31() Chatbot {
	return chatbot.NewClient(chatbot.NewSim(chatbot.Llama31Profile()), chatbot.WithCache(false))
}

// SimGPT35 returns the GPT-3.5-class simulator (vendor confusion, §6).
func SimGPT35() Chatbot {
	return chatbot.NewClient(chatbot.NewSim(chatbot.GPT35Profile()), chatbot.WithCache(false))
}

// NewOpenAIChatbot returns a Chatbot backed by an OpenAI-compatible
// chat-completions API, for running the pipeline against a real LLM.
func NewOpenAIChatbot(cfg OpenAIConfig) (Chatbot, error) {
	bot, err := chatbot.NewOpenAI(cfg)
	if err != nil {
		return nil, err
	}
	return chatbot.NewClient(bot), nil
}

// AnalyzeHTML runs the paper's extraction stack over a single privacy
// policy: HTML → text, two-step segmentation, per-aspect annotation,
// hallucination filtering, and repetition dedup.
func AnalyzeHTML(ctx context.Context, bot Chatbot, html string, opts ...AnnotateOption) ([]Annotation, error) {
	doc := textify.RenderHTML(html)
	seg, err := segment.Segment(ctx, bot, doc)
	if err != nil {
		return nil, fmt.Errorf("aipan: %w", err)
	}
	res, err := annotate.New(bot, opts...).Annotate(ctx, doc, seg)
	if err != nil {
		return nil, fmt.Errorf("aipan: %w", err)
	}
	return annotate.Dedup(res.Annotations), nil
}

// SyntheticWeb bundles the offline study substrate: the generated
// corporate web for the synthetic Russell 3000.
type SyntheticWeb struct {
	// Gen renders sites and holds the planted ground truth.
	Gen *Generator
}

// NewSyntheticWeb builds the synthetic corporate web for a seed.
func NewSyntheticWeb(seed int64) *SyntheticWeb {
	if seed == 0 {
		seed = DefaultSeed
	}
	return &SyntheticWeb{
		Gen: webgen.New(seed, russell.UniqueDomains(russell.Universe(seed))),
	}
}

// Client returns an http.Client that resolves the synthetic web
// in-process (no sockets).
func (w *SyntheticWeb) Client() *http.Client {
	return virtualweb.NewTransport(w.Gen).Client()
}

// Handler serves the synthetic web over real sockets (see cmd/wwwsim).
func (w *SyntheticWeb) Handler() http.Handler {
	return virtualweb.NewHandler(w.Gen)
}

// Domains lists the study domains in deterministic order.
func (w *SyntheticWeb) Domains() []string { return w.Gen.Domains() }

// NewCrawler builds the §3.1 privacy-policy crawler.
func NewCrawler(cfg CrawlerConfig) (*crawler.Crawler, error) {
	return crawler.New(cfg)
}

// WriteDataset / ReadDataset persist AIPAN datasets as JSONL.
func WriteDataset(path string, records []Record) error {
	return store.WriteJSONL(path, records)
}

// ReadDataset loads a dataset written by WriteDataset.
func ReadDataset(path string) ([]Record, error) {
	return store.ReadJSONL(path)
}

// DatasetStore is the pluggable record storage interface behind
// checkpointing, resume, and the dataset server. Backends: append-only
// JSONL file, hash-sharded multi-file directory, and in-memory (see
// internal/store and DESIGN.md §10). Pass one via PipelineConfig.Store
// to control where a run streams its records.
type DatasetStore = store.Store

// DatasetStoreMeta is the run metadata (seed, shard count) a store
// carries so a checkpoint refuses to resume under a different seed.
type DatasetStoreMeta = store.Meta

// OpenDatasetStore opens a storage backend from a spec: "jsonl" (or "")
// for a single append-only JSONL file at path, "sharded:N" for a
// directory of N hash-sharded JSONL files, "binary:N" for a directory of
// N compacted binary segment files with per-shard domain indexes (the
// 100k+-domain format), "mem" for an in-memory store (path ignored).
func OpenDatasetStore(spec, path string) (DatasetStore, error) {
	return store.OpenSpec(spec, path)
}

// ExportDataset writes a store's records to a flat JSONL file
// (atomically), converting any backend into the release format. The
// export streams through a per-shard merge in domain order, so it never
// materializes the dataset; every backend holding the same records
// exports byte-identical files.
func ExportDataset(path string, st DatasetStore) error {
	return store.SaveJSONL(path, st)
}

// ExportAnnotationsCSV / ExportDomainsCSV stream a store straight into
// the release CSV forms, in domain order, without materializing the
// records — the large-run counterparts of WriteAnnotationsCSV and
// WriteDomainsCSV.
func ExportAnnotationsCSV(path string, st DatasetStore) error {
	return store.ExportAnnotationsCSV(path, st)
}

// ExportDomainsCSV streams one CSV row per domain from a store.
func ExportDomainsCSV(path string, st DatasetStore) error {
	return store.ExportDomainsCSV(path, st)
}

// ErrStoreTruncated matches (via errors.Is) the refusal reported when a
// store's final record is torn — the signature of a crash mid-append.
// RepairDatasetStore truncates the store back to its last good record.
var ErrStoreTruncated = store.ErrTruncated

// RepairDatasetStore truncates the store at path (any OpenDatasetStore
// spec) back to the end of its last well-formed record, returning the
// bytes dropped. Run it when an open refuses with ErrStoreTruncated.
func RepairDatasetStore(spec, path string) (int64, error) {
	return store.Repair(spec, path)
}

// RepairEventDir truncates each flight-recorder shard in dir back to
// its last well-formed event, returning the bytes dropped.
func RepairEventDir(dir string) (int64, error) {
	return store.RepairEventDir(dir)
}

// FunnelTable renders the paper-vs-measured funnel.
func FunnelTable(f Funnel) *Table {
	return report.FunnelTable(report.FunnelNumbers{
		Companies: f.Companies, Domains: f.Domains, CrawlOK: f.CrawlOK,
		ExtractOK: f.ExtractOK, Annotated: f.Annotated,
		AvgPagesCrawled: f.AvgPagesCrawled, AvgPrivacyPages: f.AvgPrivacyPages,
		WellKnownPolicy: f.WellKnownPolicy, WellKnownPriv: f.WellKnownPriv,
		MedianWords: f.MedianWords, FallbackUsed: f.FallbackUsed,
	})
}

// CompareTable renders the §6 model comparison.
func CompareTable(scores []ModelScore) *Table {
	return report.CompareTable(scores)
}

// Annotator option re-exports.
var (
	// WithGlossarySize controls the prompt glossary (0 = full, -1 = none).
	WithGlossarySize = annotate.WithGlossarySize
	// WithHallucinationFilter toggles the verbatim-presence check.
	WithHallucinationFilter = annotate.WithHallucinationFilter
	// WithSectionFirst toggles section-first annotation.
	WithSectionFirst = annotate.WithSectionFirst
)

// RiskScore is one company's privacy-exposure assessment (the §6
// "legal exposure risk analysis" extension).
type RiskScore = risk.Score

// ScoreRisk scores every annotated record with the default sensitivity
// weights and fills sector percentiles.
func ScoreRisk(records []Record) []RiskScore {
	return risk.ScoreAll(records, risk.DefaultWeights())
}

// RiskSectorTable renders the peer-group (sector) comparison.
func RiskSectorTable(scores []RiskScore) *Table { return risk.SectorTable(scores) }

// RiskTopTable lists the n riskiest companies.
func RiskTopTable(scores []RiskScore, n int) *Table { return risk.TopTable(scores, n) }

// Classifier is the distilled offline model (the paper's §6 future work:
// training offline models to replicate the chatbot annotations).
type Classifier = downstream.NaiveBayes

// ClassifierEval summarizes held-out agreement with the chatbot labels.
type ClassifierEval = downstream.Eval

// TrainClassifier distills the dataset into an offline classifier for the
// given task: "aspect" (route sentences to types/purposes/handling/rights)
// or "types-category" (assign the 34 data-type categories). It returns the
// model and its held-out evaluation against the chatbot's labels.
func TrainClassifier(records []Record, task string) (*Classifier, ClassifierEval, error) {
	var samples []downstream.Sample
	switch task {
	case "aspect":
		samples = downstream.AspectSamples(records)
	case "types-category":
		samples = downstream.CategorySamples(records, "types")
	default:
		return nil, ClassifierEval{}, fmt.Errorf("aipan: unknown training task %q", task)
	}
	train, test := downstream.Split(samples, 0.8, DefaultSeed)
	model, err := downstream.Train(train, 1)
	if err != nil {
		return nil, ClassifierEval{}, fmt.Errorf("aipan: %w", err)
	}
	return model, downstream.Evaluate(model, test), nil
}

// LoadClassifier reads a model written by Classifier.Save.
func LoadClassifier(path string) (*Classifier, error) {
	return downstream.Load(path)
}

// TrendDelta is one category's coverage movement between dataset
// snapshots (the §6 "trends" analysis).
type TrendDelta = trends.Delta

// DomainChanges summarizes per-domain practice movement between
// snapshots.
type DomainChanges = trends.DomainChanges

// CoverageDeltas compares two dataset snapshots, largest movement first.
func CoverageDeltas(old, new []Record) []TrendDelta {
	return trends.CoverageDeltas(old, new)
}

// CompareDomains diffs per-domain practice sets between snapshots.
func CompareDomains(old, new []Record) DomainChanges {
	return trends.CompareDomains(old, new)
}

// DeltaTable renders the top-n coverage movements.
func DeltaTable(deltas []TrendDelta, n int) *Table {
	return trends.DeltaTable(deltas, n)
}

// PrivacyLabel is a structured privacy nutrition label (the human-readable
// summary the paper's abstract promises; cf. Pan et al. in related work).
type PrivacyLabel = nutrition.Label

// NutritionLabel builds a privacy nutrition label from annotations.
func NutritionLabel(anns []Annotation) PrivacyLabel {
	return nutrition.Build(anns)
}

// QAAnswer is a grounded answer to a privacy question, citing the policy
// evidence carried by the annotations.
type QAAnswer = qa.Answer

// Ask answers a free-form privacy question ("do they sell my data?",
// "how long is data kept?") from a policy's annotations. ok=false means
// no supported question family matched.
func Ask(question string, anns []Annotation) (QAAnswer, bool) {
	return qa.Ask(question, anns)
}

// DatasetServer serves a dataset over the versioned HTTP/JSON API
// documented in internal/server: /v1/summary, paginated /v1/domains,
// per-domain records, nutrition labels, question answering, risk
// scores, and paper tables, with response caching, conditional GET,
// rate limiting, and load shedding built in. It implements
// http.Handler.
type DatasetServer = server.Server

// DatasetSource supplies the records a DatasetServer indexes; Refresh
// re-reads it to serve a new dataset generation.
type DatasetSource = server.Source

// ServerOption configures a DatasetServer (see WithServerRegistry,
// WithServerRateLimit, WithServerCacheSize, and friends).
type ServerOption = server.Option

// DatasetRecords adapts an in-memory record slice into a DatasetSource.
func DatasetRecords(records []Record) DatasetSource { return server.Records(records) }

// DatasetFromStore adapts any store backend into a DatasetSource,
// without an intermediate JSONL export.
func DatasetFromStore(st DatasetStore) DatasetSource { return server.FromStore(st) }

// NewDatasetServer builds the production dataset server: it loads and
// indexes src once, then serves every read from immutable precomputed
// views.
func NewDatasetServer(src DatasetSource, opts ...ServerOption) (*DatasetServer, error) {
	return server.NewServer(src, opts...)
}

// Server options, re-exported so callers can tune the serving layer
// without importing internal packages.
var (
	WithServerRegistry       = server.WithRegistry
	WithServerLogger         = server.WithLogger
	WithServerRateLimit      = server.WithRateLimit
	WithServerCacheSize      = server.WithCacheSize
	WithServerMaxInflight    = server.WithMaxInflight
	WithServerRequestTimeout = server.WithRequestTimeout
	WithServerEvents         = server.WithEvents
	WithServerSLO            = server.WithSLO
)

// --- Durable telemetry (DESIGN.md §14) -------------------------------
//
// Trace export, the per-domain flight recorder, and the runtime/SLO
// collectors, re-exported for the CLI and library embedders.

// TraceExporter receives completed spans; set one on
// PipelineConfig.TraceExporter to stream the run's span tree to disk.
type TraceExporter = obs.Exporter

// SpanRecord is one exported span as read back by ReadTrace.
type SpanRecord = obs.SpanRecord

// SLOConfig tunes the serving-layer SLO monitor (see WithServerSLO).
type SLOConfig = obs.SLOConfig

// NewTraceFileExporter opens a length-prefixed JSONL trace file. Pass
// sorted=true (with PipelineConfig.TelemetryTimings off) for the
// deterministic, byte-comparable export mode.
func NewTraceFileExporter(path string, sorted bool) (TraceExporter, error) {
	return obs.NewFileExporter(path, sorted)
}

// ReadTrace parses a trace file written by NewTraceFileExporter.
func ReadTrace(path string) ([]SpanRecord, error) { return obs.ReadTrace(path) }

// DeriveRunID maps a corpus seed to the run identifier stamped on every
// log line, span, and flight-recorder event of that run.
func DeriveRunID(seed int64) string { return obs.DeriveRunID(seed) }

// StartRuntimeSampler publishes aipan_runtime_* gauges (heap, GC,
// goroutines) into reg every interval; the returned stop function is
// idempotent.
func StartRuntimeSampler(reg *Metrics, interval time.Duration) func() {
	return obs.StartRuntimeSampler(reg, interval)
}

// FlightEvent is one per-domain flight-recorder record.
type FlightEvent = store.Event

// EventStore is a readable flight-recorder stream (see WithServerEvents).
type EventStore = store.EventStore

// OpenEventLog creates (or reopens) a sharded flight-recorder stream in
// dir; set it as PipelineConfig.Events to record a run.
func OpenEventLog(dir string, shards int) (*store.EventLog, error) {
	return store.OpenEventLog(dir, shards)
}

// OpenEventDir reopens an existing flight-recorder directory, inferring
// the shard count.
func OpenEventDir(dir string) (*store.EventLog, error) { return store.OpenEventDir(dir) }

// NewDatasetServerFromRecords exposes an in-memory dataset over the
// HTTP/JSON API.
//
// Deprecated: use NewDatasetServer(DatasetRecords(records)) — it
// returns the configurable *DatasetServer instead of a bare handler.
func NewDatasetServerFromRecords(records []Record) http.Handler {
	return server.New(records)
}

// NewDatasetServerFromStore exposes a dataset held in any store backend
// over the same HTTP/JSON API.
//
// Deprecated: use NewDatasetServer(DatasetFromStore(st)).
func NewDatasetServerFromStore(st DatasetStore) (http.Handler, error) {
	return server.NewFromStore(st)
}

// WriteAnnotationsCSV / WriteDomainsCSV export the dataset in the flat
// spreadsheet-friendly forms a release ships next to the JSONL.
func WriteAnnotationsCSV(path string, records []Record) error {
	return store.WriteAnnotationsCSV(path, records)
}

// WriteDomainsCSV writes one CSV row per domain.
func WriteDomainsCSV(path string, records []Record) error {
	return store.WriteDomainsCSV(path, records)
}

// TaxonomyCategory / TaxonomyDescriptor are the building blocks of
// taxonomy extensions.
type (
	TaxonomyCategory   = taxonomy.Category
	TaxonomyDescriptor = taxonomy.Descriptor
)

// TaxonomyExtension is a user-supplied taxonomy addition: new categories
// or extra descriptors merged into the prompt glossaries, extraction
// lexicons, and normalization indexes — the paper's "flexible/
// programmable pipeline ... comprehensive and extendable taxonomy"
// (contribution 1).
type TaxonomyExtension = taxonomy.Extension

// LoadTaxonomyExtension reads an extension from a JSON file and installs
// it process-wide. Call before building chatbots or pipelines.
func LoadTaxonomyExtension(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("aipan: %w", err)
	}
	defer f.Close()
	ext, err := taxonomy.LoadExtension(f)
	if err != nil {
		return err
	}
	return taxonomy.Register(ext)
}

// RegisterTaxonomyExtension installs an in-memory extension.
func RegisterTaxonomyExtension(ext TaxonomyExtension) error {
	return taxonomy.Register(ext)
}

// ClearTaxonomyExtension restores the base taxonomy.
func ClearTaxonomyExtension() { taxonomy.ClearExtension() }
