#!/usr/bin/env bash
# Tier-1 gate for the aipan repo: build, vet (both Go's and ours), and
# test — including the race detector over the concurrency-bearing
# packages. CI and the verify skill run exactly this script; if it
# passes, the PR is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> aipanvet ./... (repo-specific static analysis)"
go run ./cmd/aipanvet ./...

echo "==> go test -race (engine, core, obs, server)"
go test -race ./internal/engine/... ./internal/core/... ./internal/obs/... ./internal/server/...

echo "==> go test ./..."
go test ./...

echo "OK: all tier-1 checks passed"
