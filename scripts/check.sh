#!/usr/bin/env bash
# Tier-1 gate for the aipan repo: build, vet (both Go's and ours), and
# test — including the race detector over the concurrency-bearing
# packages. CI and the verify skill run exactly this script; if it
# passes, the PR is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> aipanvet ./... (repo-specific static analysis, wall ceiling ${AIPAN_VET_TIME_CEILING:=120}s)"
# -timing prints the per-checker breakdown (and the shared call-graph
# build) to stderr; the wall gate keeps the interprocedural checkers
# honest — analysis cost must stay flat as checkers accumulate. The
# ceiling is generous: module load (from-source stdlib type-checking)
# dominates, and all checkers together run in well under a second.
vet_start=$(date +%s)
go run ./cmd/aipanvet -timing ./...
vet_secs=$(( $(date +%s) - vet_start ))
if [ "$vet_secs" -gt "$AIPAN_VET_TIME_CEILING" ]; then
  echo "FAIL: aipanvet took ${vet_secs}s, above the ${AIPAN_VET_TIME_CEILING}s ceiling"
  exit 1
fi
echo "aipanvet wall time: ${vet_secs}s (ceiling ${AIPAN_VET_TIME_CEILING}s)"

echo "==> aipanvet negative fixtures (the gate must bite on seeded violations)"
scripts/verify-negatives.sh

echo "==> go test -race (engine, core, obs, server, store, api, dispatch)"
go test -race ./internal/engine/... ./internal/core/... ./internal/obs/... ./internal/server/... ./internal/store/... ./internal/api/... ./internal/dispatch/...

echo "==> go test ./..."
go test ./...

echo "==> funnel allocation ceiling (BenchmarkFigure1PipelineFunnel <= ${AIPAN_FUNNEL_ALLOC_CEILING:=400000} allocs/op)"
# Wall-clock on this box swings ±15% run to run, so the gate pins the
# allocation count instead: it is deterministic for a fixed workload and
# regresses immediately if a hot-path buffer stops being reused.
bench_out=$(go test -run NONE -bench 'BenchmarkFigure1PipelineFunnel$' -benchtime 3x -benchmem . 2>&1)
echo "$bench_out" | grep Benchmark || { echo "$bench_out"; echo "FAIL: funnel benchmark did not run"; exit 1; }
allocs=$(echo "$bench_out" | awk '/BenchmarkFigure1PipelineFunnel/ { for (i=1; i<NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$allocs" ]; then
  echo "FAIL: could not parse allocs/op from benchmark output"
  exit 1
fi
if [ "$allocs" -gt "$AIPAN_FUNNEL_ALLOC_CEILING" ]; then
  echo "FAIL: funnel ran at $allocs allocs/op, above the $AIPAN_FUNNEL_ALLOC_CEILING ceiling"
  exit 1
fi
echo "funnel allocations: $allocs allocs/op (ceiling $AIPAN_FUNNEL_ALLOC_CEILING)"

echo "==> telemetry smoke (same-seed byte-identical export + runtime/SLO gauges)"
# Two identical seeded runs must export byte-identical traces and event
# shards (deterministic telemetry, DESIGN.md §14), and the server must
# expose the runtime sampler and SLO monitor gauge families.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/aipan" ./cmd/aipan
for i in 1 2; do
  "$smokedir/aipan" run --limit 8 --out "$smokedir/ds$i.jsonl" \
    --trace-out "$smokedir/run$i.trace" --events-out "$smokedir/ev$i" >/dev/null
done
cmp "$smokedir/run1.trace" "$smokedir/run2.trace" \
  || { echo "FAIL: same-seed trace exports differ"; exit 1; }
diff -r "$smokedir/ev1" "$smokedir/ev2" >/dev/null \
  || { echo "FAIL: same-seed event streams differ"; exit 1; }
"$smokedir/aipan" serve --addr 127.0.0.1:18123 --data "$smokedir/ds1.jsonl" \
  --events "$smokedir/ev1" >/dev/null 2>&1 &
serve_pid=$!
metrics=""
for _ in $(seq 1 50); do
  if metrics=$(curl -fsS http://127.0.0.1:18123/metrics 2>/dev/null); then break; fi
  sleep 0.1
done
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
# Plain grep (not -q) reads the whole stream, so pipefail never trips on
# an early-exit SIGPIPE.
echo "$metrics" | grep '^aipan_runtime_heap_alloc_bytes' >/dev/null \
  || { echo "FAIL: aipan_runtime_* gauges missing from /metrics"; exit 1; }
echo "$metrics" | grep '^aipan_slo_latency_burn_ratio' >/dev/null \
  || { echo "FAIL: aipan_slo_* gauges missing from /metrics"; exit 1; }
echo "telemetry smoke: byte-identical exports, runtime + SLO gauges live"

echo "==> streaming scale smoke (flat RSS + throughput parity, DESIGN.md §15)"
# A paper-sized run sets the throughput baseline, then a scaled-universe
# run through the binary segment store must hold peak RSS under the
# ceiling and domains/sec within the parity fraction of the baseline —
# the constant-memory contract of the streaming pipeline. Both rates
# come from the same box in the same invocation, so the gate is
# relative, not machine-dependent. Scale up the smoke (e.g.
# AIPAN_SCALE_DOMAINS=100000) for the full acceptance run.
scale_domains=${AIPAN_SCALE_DOMAINS:-6000}
rss_ceiling=${AIPAN_SCALE_RSS_CEILING:-536870912}
min_rate_frac=${AIPAN_SCALE_MIN_RATE_FRAC:-0.80}
"$smokedir/aipan" run --store binary:4 --checkpoint "$smokedir/base-ck" \
  --out "$smokedir/base.jsonl" --stats-out "$smokedir/base-stats.json" >/dev/null 2>&1
"$smokedir/aipan" run --universe "$scale_domains" --limit "$scale_domains" \
  --store binary:16 --checkpoint "$smokedir/scale-ck" \
  --out "$smokedir/scale.jsonl" --stats-out "$smokedir/scale-stats.json" >/dev/null 2>&1
stat_of() { sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" "$1"; }
base_rate=$(stat_of "$smokedir/base-stats.json" domains_per_sec)
scale_rate=$(stat_of "$smokedir/scale-stats.json" domains_per_sec)
scale_rss=$(stat_of "$smokedir/scale-stats.json" peak_rss_bytes)
[ -n "$base_rate" ] && [ -n "$scale_rate" ] && [ -n "$scale_rss" ] \
  || { echo "FAIL: could not parse run stats"; exit 1; }
exported=$(wc -l < "$smokedir/scale.jsonl")
if [ "$exported" -ne "$scale_domains" ]; then
  echo "FAIL: scaled export holds $exported records, want $scale_domains"
  exit 1
fi
if [ "$scale_rss" -gt "$rss_ceiling" ]; then
  echo "FAIL: scaled run peaked at $scale_rss bytes RSS, above the $rss_ceiling ceiling"
  exit 1
fi
if [ "$(awk -v a="$scale_rate" -v b="$base_rate" -v f="$min_rate_frac" 'BEGIN{print (a >= b*f) ? 1 : 0}')" != 1 ]; then
  echo "FAIL: scaled run at $scale_rate domains/s, under ${min_rate_frac}x the $base_rate baseline"
  exit 1
fi
echo "scale smoke: $scale_domains domains at $scale_rate/s (baseline $base_rate/s), peak RSS $scale_rss bytes (ceiling $rss_ceiling)"

echo "==> distributed dispatch smoke (coordinator + 2 workers, one SIGKILLed mid-run)"
# A coordinator leases the study's shards to two external worker
# processes; one is SIGKILLed mid-run so its shard expires and is
# reassigned. The merged export must still come out byte-identical to a
# single-process run of the same seed — the dispatch protocol's
# determinism contract (DESIGN.md §17).
dist_port=18127
dist_limit=${AIPAN_DIST_LIMIT:-400}
"$smokedir/aipan" run --limit "$dist_limit" --out "$smokedir/dist-single.jsonl" >/dev/null 2>&1
"$smokedir/aipan" run --limit "$dist_limit" --listen "127.0.0.1:$dist_port" --lease-ttl 2s \
  --out "$smokedir/dist-merged.jsonl" >"$smokedir/dist-coord.log" 2>&1 &
dist_coord=$!
"$smokedir/aipan" work --join "http://127.0.0.1:$dist_port" --id smoke-w1 --workers 2 \
  >/dev/null 2>&1 &
dist_w1=$!
"$smokedir/aipan" work --join "http://127.0.0.1:$dist_port" --id smoke-w2 --workers 2 \
  >/dev/null 2>&1 &
dist_w2=$!
sleep 0.6
kill -9 "$dist_w1" 2>/dev/null || true
wait "$dist_coord" \
  || { echo "FAIL: dispatch coordinator exited nonzero"; cat "$smokedir/dist-coord.log"; kill "$dist_w2" 2>/dev/null || true; exit 1; }
# The surviving worker may lose its final lease poll to the
# coordinator's post-job shutdown; its exit code is not the gate.
wait "$dist_w1" 2>/dev/null || true
wait "$dist_w2" 2>/dev/null || true
cmp "$smokedir/dist-single.jsonl" "$smokedir/dist-merged.jsonl" \
  || { echo "FAIL: distributed export differs from single-process export"; exit 1; }
echo "distributed smoke: $dist_limit domains merged byte-identical across kill + reassignment"

echo "OK: all tier-1 checks passed"
