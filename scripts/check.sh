#!/usr/bin/env bash
# Tier-1 gate for the aipan repo: build, vet (both Go's and ours), and
# test — including the race detector over the concurrency-bearing
# packages. CI and the verify skill run exactly this script; if it
# passes, the PR is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> aipanvet ./... (repo-specific static analysis)"
go run ./cmd/aipanvet ./...

echo "==> go test -race (engine, core, obs, server)"
go test -race ./internal/engine/... ./internal/core/... ./internal/obs/... ./internal/server/...

echo "==> go test ./..."
go test ./...

echo "==> funnel allocation ceiling (BenchmarkFigure1PipelineFunnel <= ${AIPAN_FUNNEL_ALLOC_CEILING:=400000} allocs/op)"
# Wall-clock on this box swings ±15% run to run, so the gate pins the
# allocation count instead: it is deterministic for a fixed workload and
# regresses immediately if a hot-path buffer stops being reused.
bench_out=$(go test -run NONE -bench 'BenchmarkFigure1PipelineFunnel$' -benchtime 3x -benchmem . 2>&1)
echo "$bench_out" | grep Benchmark || { echo "$bench_out"; echo "FAIL: funnel benchmark did not run"; exit 1; }
allocs=$(echo "$bench_out" | awk '/BenchmarkFigure1PipelineFunnel/ { for (i=1; i<NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$allocs" ]; then
  echo "FAIL: could not parse allocs/op from benchmark output"
  exit 1
fi
if [ "$allocs" -gt "$AIPAN_FUNNEL_ALLOC_CEILING" ]; then
  echo "FAIL: funnel ran at $allocs allocs/op, above the $AIPAN_FUNNEL_ALLOC_CEILING ceiling"
  exit 1
fi
echo "funnel allocations: $allocs allocs/op (ceiling $AIPAN_FUNNEL_ALLOC_CEILING)"

echo "OK: all tier-1 checks passed"
