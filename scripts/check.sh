#!/usr/bin/env bash
# Tier-1 gate for the aipan repo: build, vet (both Go's and ours), and
# test — including the race detector over the concurrency-bearing
# packages. CI and the verify skill run exactly this script; if it
# passes, the PR is mergeable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go vet ./..."
go vet ./...

echo "==> aipanvet ./... (repo-specific static analysis)"
go run ./cmd/aipanvet ./...

echo "==> go test -race (engine, core, obs, server)"
go test -race ./internal/engine/... ./internal/core/... ./internal/obs/... ./internal/server/...

echo "==> go test ./..."
go test ./...

echo "==> funnel allocation ceiling (BenchmarkFigure1PipelineFunnel <= ${AIPAN_FUNNEL_ALLOC_CEILING:=400000} allocs/op)"
# Wall-clock on this box swings ±15% run to run, so the gate pins the
# allocation count instead: it is deterministic for a fixed workload and
# regresses immediately if a hot-path buffer stops being reused.
bench_out=$(go test -run NONE -bench 'BenchmarkFigure1PipelineFunnel$' -benchtime 3x -benchmem . 2>&1)
echo "$bench_out" | grep Benchmark || { echo "$bench_out"; echo "FAIL: funnel benchmark did not run"; exit 1; }
allocs=$(echo "$bench_out" | awk '/BenchmarkFigure1PipelineFunnel/ { for (i=1; i<NF; i++) if ($(i+1) == "allocs/op") print $i }')
if [ -z "$allocs" ]; then
  echo "FAIL: could not parse allocs/op from benchmark output"
  exit 1
fi
if [ "$allocs" -gt "$AIPAN_FUNNEL_ALLOC_CEILING" ]; then
  echo "FAIL: funnel ran at $allocs allocs/op, above the $AIPAN_FUNNEL_ALLOC_CEILING ceiling"
  exit 1
fi
echo "funnel allocations: $allocs allocs/op (ceiling $AIPAN_FUNNEL_ALLOC_CEILING)"

echo "==> telemetry smoke (same-seed byte-identical export + runtime/SLO gauges)"
# Two identical seeded runs must export byte-identical traces and event
# shards (deterministic telemetry, DESIGN.md §14), and the server must
# expose the runtime sampler and SLO monitor gauge families.
smokedir=$(mktemp -d)
trap 'rm -rf "$smokedir"' EXIT
go build -o "$smokedir/aipan" ./cmd/aipan
for i in 1 2; do
  "$smokedir/aipan" run --limit 8 --out "$smokedir/ds$i.jsonl" \
    --trace-out "$smokedir/run$i.trace" --events-out "$smokedir/ev$i" >/dev/null
done
cmp "$smokedir/run1.trace" "$smokedir/run2.trace" \
  || { echo "FAIL: same-seed trace exports differ"; exit 1; }
diff -r "$smokedir/ev1" "$smokedir/ev2" >/dev/null \
  || { echo "FAIL: same-seed event streams differ"; exit 1; }
"$smokedir/aipan" serve --addr 127.0.0.1:18123 --data "$smokedir/ds1.jsonl" \
  --events "$smokedir/ev1" >/dev/null 2>&1 &
serve_pid=$!
metrics=""
for _ in $(seq 1 50); do
  if metrics=$(curl -fsS http://127.0.0.1:18123/metrics 2>/dev/null); then break; fi
  sleep 0.1
done
kill "$serve_pid" 2>/dev/null || true
wait "$serve_pid" 2>/dev/null || true
# Plain grep (not -q) reads the whole stream, so pipefail never trips on
# an early-exit SIGPIPE.
echo "$metrics" | grep '^aipan_runtime_heap_alloc_bytes' >/dev/null \
  || { echo "FAIL: aipan_runtime_* gauges missing from /metrics"; exit 1; }
echo "$metrics" | grep '^aipan_slo_latency_burn_ratio' >/dev/null \
  || { echo "FAIL: aipan_slo_* gauges missing from /metrics"; exit 1; }
echo "telemetry smoke: byte-identical exports, runtime + SLO gauges live"

echo "OK: all tier-1 checks passed"
