#!/usr/bin/env bash
# Proof that the aipanvet gate actually bites: each fixture patch under
# scripts/fixtures/ injects exactly one violation of a checker invariant
# — a lock-order inversion, a goroutine with no termination path, and a
# wall-clock value laundered through two helpers into the ETag sink.
# With a fixture applied, aipanvet must fail and name the expected
# checker; the tree is restored either way. Run from anywhere:
#
#   scripts/verify-negatives.sh
set -euo pipefail
cd "$(dirname "$0")/.."

run_fixture() {
  local patch=$1 check=$2
  echo "==> fixture: $patch (expect a [$check] finding)"
  git apply "scripts/fixtures/$patch"
  local out status
  set +e
  out=$(go run ./cmd/aipanvet ./... 2>&1)
  status=$?
  set -e
  git apply -R "scripts/fixtures/$patch"
  if [ "$status" -eq 0 ]; then
    echo "FAIL: aipanvet passed with $patch applied"
    echo "$out"
    return 1
  fi
  if ! echo "$out" | grep -F "[$check]" >/dev/null; then
    echo "FAIL: aipanvet failed but produced no [$check] finding with $patch applied"
    echo "$out"
    return 1
  fi
  echo "$out" | grep -F "[$check]" | head -2
}

run_fixture lockorder-inversion.patch lockorder
run_fixture leakcheck-orphan.patch leakcheck
run_fixture nondetflow-launder.patch nondetflow

echo "OK: every seeded violation tripped the gate"
