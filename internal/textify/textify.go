// Package textify converts parsed HTML into annotated plain text, playing
// the role the inscriptis library plays in the paper (§3.2.1): it renders
// block-level layout into lines and records, for every line, whether it was
// an <h1>..<h6> heading or a standalone bold line — the two signals the
// paper's segmentation step (Appendix B) relies on.
package textify

import (
	"strconv"
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"

	"aipan/internal/htmlx"
)

// Line is one rendered line of text with layout metadata.
type Line struct {
	// Number is the 1-based line number used in chatbot prompts ("[12]").
	Number int
	// Text is the rendered text of the line, whitespace-collapsed.
	Text string
	// HeadingLevel is 1..6 for text inside <h1>..<h6>, 0 otherwise.
	HeadingLevel int
	// Bold reports that every character on the line came from inside
	// <b>/<strong> (the "bold text on a separate line" heading heuristic).
	Bold bool
	// ListItem reports the line began a <li>.
	ListItem bool
}

// IsHeading reports whether the line should be treated as a section heading
// per Appendix B: an <h1>..<h6> line, or an all-bold standalone line.
func (l Line) IsHeading() bool {
	return l.HeadingLevel > 0 || (l.Bold && l.Text != "" && !l.ListItem)
}

// EffectiveLevel returns the heading hierarchy level: 1..6 for <hN>, 7 for
// standalone bold lines (which the paper ranks below <h6>), 0 for body text.
func (l Line) EffectiveLevel() int {
	if l.HeadingLevel > 0 {
		return l.HeadingLevel
	}
	if l.Bold && l.Text != "" && !l.ListItem {
		return 7
	}
	return 0
}

// Document is the rendered form of a page.
type Document struct {
	Title string
	Lines []Line
}

// Text returns the plain text, one line per Line.
func (d *Document) Text() string {
	size := 0
	for _, l := range d.Lines {
		size += len(l.Text) + 1
	}
	var b strings.Builder
	b.Grow(size)
	for i, l := range d.Lines {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(l.Text)
	}
	return b.String()
}

// NumberedText renders the document in the "[n] text" format the paper's
// prompts require. It sizes the output once and appends line numbers
// without fmt, so the whole rendering is a single allocation.
func (d *Document) NumberedText() string {
	size := 0
	for _, l := range d.Lines {
		size += len(l.Text) + 12 // "[n] " + text + "\n"
	}
	buf := make([]byte, 0, size)
	for _, l := range d.Lines {
		buf = AppendNumbered(buf, l.Number, l.Text)
	}
	return string(buf)
}

// AppendNumbered appends one "[n] text\n" prompt line to buf — the shared
// byte-path formatting primitive (segment's section renderers reuse it).
func AppendNumbered(buf []byte, n int, text string) []byte {
	buf = append(buf, '[')
	buf = strconv.AppendInt(buf, int64(n), 10)
	buf = append(buf, ']', ' ')
	buf = append(buf, text...)
	return append(buf, '\n')
}

// WordCount returns the total number of whitespace-delimited words.
func (d *Document) WordCount() int {
	n := 0
	for _, l := range d.Lines {
		n += CountFields(l.Text)
	}
	return n
}

// CountFields counts whitespace-delimited fields like len(strings.Fields)
// without building the slice.
func CountFields(s string) int {
	n := 0
	inField := false
	for i := 0; i < len(s); {
		r, sz := decodeRuneAt(s, i)
		if isSpaceRune(r) {
			inField = false
		} else if !inField {
			inField = true
			n++
		}
		i += sz
	}
	return n
}

// LineByNumber returns the line with the given number, or a zero Line.
func (d *Document) LineByNumber(n int) (Line, bool) {
	i := n - 1
	if i < 0 || i >= len(d.Lines) {
		return Line{}, false
	}
	return d.Lines[i], true
}

// blockElements force a line break before and after their content.
var blockElements = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"div": true, "dl": true, "dd": true, "dt": true, "fieldset": true,
	"figure": true, "figcaption": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "li": true, "main": true, "nav": true,
	"ol": true, "p": true, "pre": true, "section": true, "table": true,
	"tr": true, "ul": true, "details": true, "summary": true,
}

// skipElements are never rendered.
var skipElements = map[string]bool{
	"script": true, "style": true, "noscript": true, "head": true,
	"iframe": true, "svg": true, "template": true, "select": true,
	"button": true,
}

// renderer accumulates the current line in a reused byte buffer and emits
// completed Lines directly. One renderer (and its scratch capacity) is
// recycled across Render calls via rendererPool; the only per-line
// allocation left is the final Text string.
type renderer struct {
	lines      []Line
	cur        []byte
	sawBold    bool
	sawPlain   bool
	headingLvl int
	listItem   bool
}

var rendererPool = sync.Pool{New: func() any { return new(renderer) }}

func (r *renderer) breakLine() {
	// cur holds whitespace-collapsed fields joined by ASCII spaces (plus
	// table spacers), so only trailing ' ' bytes can need trimming and a
	// byte-level trim matches strings.TrimSpace exactly.
	text := r.cur
	for len(text) > 0 && text[len(text)-1] == ' ' {
		text = text[:len(text)-1]
	}
	for len(text) > 0 && text[0] == ' ' {
		text = text[1:]
	}
	if len(text) > 0 {
		r.lines = append(r.lines, Line{
			Number:       len(r.lines) + 1,
			Text:         string(text),
			HeadingLevel: r.headingLvl,
			Bold:         r.sawBold && !r.sawPlain,
			ListItem:     r.listItem,
		})
	}
	r.cur = r.cur[:0]
	r.sawBold, r.sawPlain, r.listItem = false, false, false
	r.headingLvl = 0
}

func (r *renderer) appendText(s string, boldDepth, headingLvl int) {
	var wrote bool
	r.cur, wrote = appendCollapsed(r.cur, s)
	if !wrote {
		return
	}
	if boldDepth > 0 {
		r.sawBold = true
	} else {
		r.sawPlain = true
	}
	if headingLvl > r.headingLvl {
		r.headingLvl = headingLvl
	}
}

// appendCollapsed appends the whitespace-delimited fields of s to dst,
// separated by single spaces (also from any existing dst content). It
// replicates strings.Fields' notion of whitespace, including multi-byte
// runes like   from &nbsp;. wrote reports whether any field was added.
func appendCollapsed(dst []byte, s string) ([]byte, bool) {
	wrote := false
	for i := 0; i < len(s); {
		r, sz := decodeRuneAt(s, i)
		if isSpaceRune(r) {
			i += sz
			continue
		}
		start := i
		i += sz
		for i < len(s) {
			r, sz = decodeRuneAt(s, i)
			if isSpaceRune(r) {
				break
			}
			i += sz
		}
		if len(dst) > 0 {
			dst = append(dst, ' ')
		}
		dst = append(dst, s[start:i]...)
		wrote = true
	}
	return dst, wrote
}

// decodeRuneAt reads the rune starting at byte i, with a single-byte fast
// path for ASCII.
func decodeRuneAt(s string, i int) (rune, int) {
	if c := s[i]; c < utf8.RuneSelf {
		return rune(c), 1
	}
	return utf8.DecodeRuneInString(s[i:])
}

func isSpaceRune(r rune) bool {
	if r < utf8.RuneSelf {
		return r == ' ' || r == '\t' || r == '\n' || r == '\v' || r == '\f' || r == '\r'
	}
	return unicode.IsSpace(r)
}

func (r *renderer) walk(n *htmlx.Node, boldDepth, headingLvl int) {
	switch n.Type {
	case htmlx.TextNode:
		r.appendText(n.Data, boldDepth, headingLvl)
		return
	case htmlx.CommentNode, htmlx.DoctypeNode:
		return
	case htmlx.ElementNode:
		name := n.Data
		if skipElements[name] {
			return
		}
		if name == "title" {
			return // handled separately
		}
		if name == "br" {
			r.breakLine()
			return
		}
		isBlock := blockElements[name]
		if isBlock {
			r.breakLine()
		}
		switch name {
		case "b", "strong":
			boldDepth++
		case "h1", "h2", "h3", "h4", "h5", "h6":
			headingLvl = int(name[1] - '0')
		case "li":
			r.listItem = true
			r.appendText("*", boldDepth, headingLvl)
			// reset sawPlain: the bullet itself shouldn't count as plain text
			// for bold-line detection, but keeping it is harmless since list
			// items are excluded from the bold-heading heuristic anyway.
		case "td", "th":
			// Cells are joined on the row's line with a spacer.
			if len(r.cur) > 0 {
				r.cur = append(r.cur, ' ', ' ')
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, boldDepth, headingLvl)
		}
		if isBlock {
			r.breakLine()
		}
	case htmlx.DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, boldDepth, headingLvl)
		}
	}
}

// Render converts a parsed HTML tree into a Document.
func Render(root *htmlx.Node) *Document {
	r := rendererPool.Get().(*renderer)
	r.walk(root, 0, 0)
	r.breakLine()

	doc := &Document{Lines: r.lines}
	if t := root.Find(func(n *htmlx.Node) bool { return n.IsElement("title") }); t != nil {
		doc.Title = t.Text()
	}
	// Hand the lines slice to the Document; keep the scratch capacity.
	r.lines = nil
	rendererPool.Put(r)
	return doc
}

// RenderHTML parses src and renders it in one step.
func RenderHTML(src string) *Document {
	return Render(htmlx.Parse(src))
}
