// Package textify converts parsed HTML into annotated plain text, playing
// the role the inscriptis library plays in the paper (§3.2.1): it renders
// block-level layout into lines and records, for every line, whether it was
// an <h1>..<h6> heading or a standalone bold line — the two signals the
// paper's segmentation step (Appendix B) relies on.
package textify

import (
	"fmt"
	"strings"

	"aipan/internal/htmlx"
)

// Line is one rendered line of text with layout metadata.
type Line struct {
	// Number is the 1-based line number used in chatbot prompts ("[12]").
	Number int
	// Text is the rendered text of the line, whitespace-collapsed.
	Text string
	// HeadingLevel is 1..6 for text inside <h1>..<h6>, 0 otherwise.
	HeadingLevel int
	// Bold reports that every character on the line came from inside
	// <b>/<strong> (the "bold text on a separate line" heading heuristic).
	Bold bool
	// ListItem reports the line began a <li>.
	ListItem bool
}

// IsHeading reports whether the line should be treated as a section heading
// per Appendix B: an <h1>..<h6> line, or an all-bold standalone line.
func (l Line) IsHeading() bool {
	return l.HeadingLevel > 0 || (l.Bold && l.Text != "" && !l.ListItem)
}

// EffectiveLevel returns the heading hierarchy level: 1..6 for <hN>, 7 for
// standalone bold lines (which the paper ranks below <h6>), 0 for body text.
func (l Line) EffectiveLevel() int {
	if l.HeadingLevel > 0 {
		return l.HeadingLevel
	}
	if l.Bold && l.Text != "" && !l.ListItem {
		return 7
	}
	return 0
}

// Document is the rendered form of a page.
type Document struct {
	Title string
	Lines []Line
}

// Text returns the plain text, one line per Line.
func (d *Document) Text() string {
	parts := make([]string, len(d.Lines))
	for i, l := range d.Lines {
		parts[i] = l.Text
	}
	return strings.Join(parts, "\n")
}

// NumberedText renders the document in the "[n] text" format the paper's
// prompts require.
func (d *Document) NumberedText() string {
	var b strings.Builder
	for _, l := range d.Lines {
		fmt.Fprintf(&b, "[%d] %s\n", l.Number, l.Text)
	}
	return b.String()
}

// WordCount returns the total number of whitespace-delimited words.
func (d *Document) WordCount() int {
	n := 0
	for _, l := range d.Lines {
		n += len(strings.Fields(l.Text))
	}
	return n
}

// LineByNumber returns the line with the given number, or a zero Line.
func (d *Document) LineByNumber(n int) (Line, bool) {
	i := n - 1
	if i < 0 || i >= len(d.Lines) {
		return Line{}, false
	}
	return d.Lines[i], true
}

// blockElements force a line break before and after their content.
var blockElements = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"div": true, "dl": true, "dd": true, "dt": true, "fieldset": true,
	"figure": true, "figcaption": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "li": true, "main": true, "nav": true,
	"ol": true, "p": true, "pre": true, "section": true, "table": true,
	"tr": true, "ul": true, "details": true, "summary": true,
}

// skipElements are never rendered.
var skipElements = map[string]bool{
	"script": true, "style": true, "noscript": true, "head": true,
	"iframe": true, "svg": true, "template": true, "select": true,
	"button": true,
}

type renderer struct {
	lines []lineBuf
	cur   lineBuf
}

type lineBuf struct {
	b          strings.Builder
	sawBold    bool
	sawPlain   bool
	headingLvl int
	listItem   bool
}

func (r *renderer) breakLine() {
	if strings.TrimSpace(r.cur.b.String()) != "" {
		r.lines = append(r.lines, r.cur)
	}
	r.cur = lineBuf{}
}

func (r *renderer) appendText(s string, boldDepth, headingLvl int) {
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return
	}
	if r.cur.b.Len() > 0 {
		r.cur.b.WriteByte(' ')
	}
	r.cur.b.WriteString(strings.Join(fields, " "))
	if boldDepth > 0 {
		r.cur.sawBold = true
	} else {
		r.cur.sawPlain = true
	}
	if headingLvl > r.cur.headingLvl {
		r.cur.headingLvl = headingLvl
	}
}

func (r *renderer) walk(n *htmlx.Node, boldDepth, headingLvl int) {
	switch n.Type {
	case htmlx.TextNode:
		r.appendText(n.Data, boldDepth, headingLvl)
		return
	case htmlx.CommentNode, htmlx.DoctypeNode:
		return
	case htmlx.ElementNode:
		name := n.Data
		if skipElements[name] {
			return
		}
		if name == "title" {
			return // handled separately
		}
		if name == "br" {
			r.breakLine()
			return
		}
		isBlock := blockElements[name]
		if isBlock {
			r.breakLine()
		}
		switch name {
		case "b", "strong":
			boldDepth++
		case "h1", "h2", "h3", "h4", "h5", "h6":
			headingLvl = int(name[1] - '0')
		case "li":
			r.cur.listItem = true
			r.appendText("*", boldDepth, headingLvl)
			// reset sawPlain: the bullet itself shouldn't count as plain text
			// for bold-line detection, but keeping it is harmless since list
			// items are excluded from the bold-heading heuristic anyway.
		case "td", "th":
			// Cells are joined on the row's line with a spacer.
			if r.cur.b.Len() > 0 {
				r.cur.b.WriteString("  ")
			}
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, boldDepth, headingLvl)
		}
		if isBlock {
			r.breakLine()
		}
	case htmlx.DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			r.walk(c, boldDepth, headingLvl)
		}
	}
}

// Render converts a parsed HTML tree into a Document.
func Render(root *htmlx.Node) *Document {
	r := &renderer{}
	r.walk(root, 0, 0)
	r.breakLine()

	doc := &Document{}
	if t := root.Find(func(n *htmlx.Node) bool { return n.IsElement("title") }); t != nil {
		doc.Title = t.Text()
	}
	for i := range r.lines {
		lb := &r.lines[i]
		doc.Lines = append(doc.Lines, Line{
			Number:       i + 1,
			Text:         strings.TrimSpace(lb.b.String()),
			HeadingLevel: lb.headingLvl,
			Bold:         lb.sawBold && !lb.sawPlain,
			ListItem:     lb.listItem,
		})
	}
	return doc
}

// RenderHTML parses src and renders it in one step.
func RenderHTML(src string) *Document {
	return Render(htmlx.Parse(src))
}
