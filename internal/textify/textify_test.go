package textify

import (
	"strings"
	"testing"
)

func TestRenderBasicBlocks(t *testing.T) {
	d := RenderHTML(`<h1>Privacy Policy</h1><p>We collect data.</p><p>We share data.</p>`)
	if len(d.Lines) != 3 {
		t.Fatalf("got %d lines: %q", len(d.Lines), d.Text())
	}
	if d.Lines[0].Text != "Privacy Policy" || d.Lines[0].HeadingLevel != 1 {
		t.Errorf("line 0: %+v", d.Lines[0])
	}
	if !d.Lines[0].IsHeading() {
		t.Error("h1 not a heading")
	}
	if d.Lines[1].IsHeading() || d.Lines[2].IsHeading() {
		t.Error("paragraphs flagged as headings")
	}
}

func TestRenderInlineStaysOnLine(t *testing.T) {
	d := RenderHTML(`<p>We collect <b>email</b> and <i>phone</i> data.</p>`)
	if len(d.Lines) != 1 {
		t.Fatalf("got %d lines: %q", len(d.Lines), d.Text())
	}
	if d.Lines[0].Text != "We collect email and phone data." {
		t.Errorf("text: %q", d.Lines[0].Text)
	}
	if d.Lines[0].Bold {
		t.Error("mixed line should not be Bold")
	}
	if d.Lines[0].IsHeading() {
		t.Error("inline bold must not make a heading")
	}
}

func TestRenderStandaloneBoldHeading(t *testing.T) {
	d := RenderHTML(`<div><b>Information We Collect</b></div><p>Names and emails.</p>`)
	if len(d.Lines) != 2 {
		t.Fatalf("got %d lines: %q", len(d.Lines), d.Text())
	}
	if !d.Lines[0].Bold || !d.Lines[0].IsHeading() {
		t.Errorf("standalone bold should be heading: %+v", d.Lines[0])
	}
	if d.Lines[0].EffectiveLevel() != 7 {
		t.Errorf("bold heading level = %d, want 7", d.Lines[0].EffectiveLevel())
	}
}

func TestRenderLists(t *testing.T) {
	d := RenderHTML(`<ul><li>email address</li><li><b>phone number</b></li></ul>`)
	if len(d.Lines) != 2 {
		t.Fatalf("got %d lines: %q", len(d.Lines), d.Text())
	}
	if !strings.HasPrefix(d.Lines[0].Text, "* ") {
		t.Errorf("bullet missing: %q", d.Lines[0].Text)
	}
	if !d.Lines[0].ListItem {
		t.Error("ListItem not set")
	}
	// Bold list items must not count as headings.
	if d.Lines[1].IsHeading() {
		t.Error("bold list item flagged as heading")
	}
}

func TestRenderTable(t *testing.T) {
	d := RenderHTML(`<table><tr><td>Category</td><td>Example</td></tr><tr><td>Contact</td><td>email</td></tr></table>`)
	if len(d.Lines) != 2 {
		t.Fatalf("got %d lines: %q", len(d.Lines), d.Text())
	}
	if !strings.Contains(d.Lines[0].Text, "Category") || !strings.Contains(d.Lines[0].Text, "Example") {
		t.Errorf("row 0: %q", d.Lines[0].Text)
	}
}

func TestRenderSkipsScriptsAndHead(t *testing.T) {
	d := RenderHTML(`<html><head><title>ACME</title><style>p{}</style></head><body><script>x()</script><p>visible</p></body></html>`)
	if d.Title != "ACME" {
		t.Errorf("title = %q", d.Title)
	}
	if d.Text() != "visible" {
		t.Errorf("text = %q", d.Text())
	}
}

func TestRenderBr(t *testing.T) {
	d := RenderHTML(`<p>line one<br>line two</p>`)
	if len(d.Lines) != 2 {
		t.Fatalf("got %d lines: %q", len(d.Lines), d.Text())
	}
}

func TestNumberedText(t *testing.T) {
	d := RenderHTML(`<p>a</p><p>b</p>`)
	want := "[1] a\n[2] b\n"
	if got := d.NumberedText(); got != want {
		t.Errorf("got %q want %q", got, want)
	}
	l, ok := d.LineByNumber(2)
	if !ok || l.Text != "b" {
		t.Errorf("LineByNumber(2) = %+v, %v", l, ok)
	}
	if _, ok := d.LineByNumber(99); ok {
		t.Error("LineByNumber(99) should fail")
	}
}

func TestWordCount(t *testing.T) {
	d := RenderHTML(`<p>one two three</p><p>four five</p>`)
	if d.WordCount() != 5 {
		t.Errorf("WordCount = %d", d.WordCount())
	}
}

func TestWhitespaceCollapse(t *testing.T) {
	d := RenderHTML("<p>  a \n\t b   <span> c</span></p>")
	if d.Lines[0].Text != "a b c" {
		t.Errorf("got %q", d.Lines[0].Text)
	}
}

func TestHeadingLevels(t *testing.T) {
	d := RenderHTML(`<h2>Two</h2><h4>Four</h4>`)
	if d.Lines[0].EffectiveLevel() != 2 || d.Lines[1].EffectiveLevel() != 4 {
		t.Errorf("levels: %d %d", d.Lines[0].EffectiveLevel(), d.Lines[1].EffectiveLevel())
	}
}

func TestEmptyDocument(t *testing.T) {
	d := RenderHTML(``)
	if len(d.Lines) != 0 || d.WordCount() != 0 {
		t.Errorf("empty doc: %+v", d)
	}
}

// BenchmarkTextify is the hot-path microbenchmark referenced in
// CHANGES.md: full HTML → Document rendering on a policy-shaped page,
// exercising the pooled tokenizer and line-builder buffers.
func BenchmarkTextify(b *testing.B) {
	page := `<html><head><title>Privacy</title></head><body><h1>Privacy Policy</h1>` + strings.Repeat(
		`<h2>Data We Collect</h2><p>We collect your <em>email address</em>, phone number, device identifiers and precise geolocation when you use the service.</p><h3>Sharing</h3><p>We share aggregated analytics with our advertising partners and service providers for fraud prevention.</p><ol><li>browsing history</li><li>payment information</li></ol>`, 60) + `</body></html>`
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RenderHTML(page)
	}
}

func BenchmarkRender(b *testing.B) {
	page := `<html><body>` + strings.Repeat(
		`<h2>Section</h2><p>We collect your <b>email address</b>, phone number and postal address for customer service.</p><ul><li>cookies</li><li>ip address</li></ul>`, 100) + `</body></html>`
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		RenderHTML(page)
	}
}
