package textify

import (
	"strings"
	"testing"
	"testing/quick"
)

// Property: rendering arbitrary HTML never panics, line numbers are
// sequential starting at 1, and no line is empty.
func TestRenderInvariantsProperty(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 4096 {
			s = s[:4096]
		}
		d := RenderHTML(s)
		for i, l := range d.Lines {
			if l.Number != i+1 {
				return false
			}
			if strings.TrimSpace(l.Text) == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: NumberedText contains exactly one "[n]" marker per line and
// LineByNumber round-trips every line.
func TestNumberedTextRoundTripProperty(t *testing.T) {
	f := func(paras []string) bool {
		var b strings.Builder
		for _, p := range paras {
			clean := strings.Map(func(r rune) rune {
				if r == '<' || r == '>' || r == '&' {
					return ' '
				}
				return r
			}, p)
			b.WriteString("<p>")
			b.WriteString(clean)
			b.WriteString("</p>")
		}
		d := RenderHTML(b.String())
		for _, l := range d.Lines {
			got, ok := d.LineByNumber(l.Number)
			if !ok || got.Text != l.Text {
				return false
			}
		}
		lines := strings.Count(d.NumberedText(), "[")
		return lines >= len(d.Lines) // each line carries its marker
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: word count equals the sum of per-line field counts.
func TestWordCountConsistencyProperty(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 2048 {
			s = s[:2048]
		}
		d := RenderHTML(s)
		n := 0
		for _, l := range d.Lines {
			n += len(strings.Fields(l.Text))
		}
		return n == d.WordCount()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
