package dispatch

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"aipan/internal/obs"
	"aipan/internal/store"
)

// runDistributed executes one full distributed job over loopback with n
// workers and returns the merged store's export bytes.
func runDistributed(t *testing.T, limit, shards, n int) []byte {
	t.Helper()
	st := store.NewMem()
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec:     JobSpec{Limit: limit, Shards: shards},
		Store:    st,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		w, err := NewWorker(WorkerConfig{
			Coordinator: srv.URL,
			ID:          fmt.Sprintf("w%d", i),
			Registry:    obs.NewRegistry(),
		})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, w *Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("coordinator never saw the job finish: %v", err)
	}
	return exportBytes(t, st)
}

// TestDistributedByteIdentical is the tentpole's acceptance gate: the
// same seed exports byte-identical datasets from a single-process run,
// a one-worker distributed run, and a four-worker distributed run.
func TestDistributedByteIdentical(t *testing.T) {
	const limit, shards = 16, 4
	_, want := referenceRun(t, limit)
	if got := runDistributed(t, limit, shards, 1); !bytes.Equal(got, want) {
		t.Fatalf("1-worker export differs from single-process export (%d vs %d bytes)",
			len(got), len(want))
	}
	if got := runDistributed(t, limit, shards, 4); !bytes.Equal(got, want) {
		t.Fatalf("4-worker export differs from single-process export (%d vs %d bytes)",
			len(got), len(want))
	}
}

// TestLeaseReassignmentRace kills a worker between uploading part of
// its shard and finishing it: the shard must be re-leased exactly once,
// the replacement must resume past the dead worker's uploads, and the
// export must come out byte-identical with no duplicate appends.
func TestLeaseReassignmentRace(t *testing.T) {
	const limit, shards = 16, 4
	recs, want := referenceRun(t, limit)
	parts := shardDomains(limit, shards)

	fc := newFakeClock()
	reg := obs.NewRegistry()
	st := store.NewMem()
	coord, err := NewCoordinator(CoordinatorConfig{
		Spec:     JobSpec{Limit: limit, Shards: shards},
		Store:    st,
		LeaseTTL: testTTL,
		Clock:    fc.now,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(coord)
	defer srv.Close()
	jobID := coord.JobID()

	// "Worker A" leases a shard, uploads half of it, and dies without a
	// word — exactly the checkpoint-but-no-complete window.
	var lr LeaseResponse
	code, _ := doReq(t, coord, http.MethodPost, "/v1/jobs/"+jobID+"/leases", "",
		LeaseRequest{Worker: "doomed"}, &lr)
	if code != 200 || lr.Status != LeaseGranted {
		t.Fatalf("doomed lease: %d %+v", code, lr)
	}
	g := lr.Grant
	mine := parts[g.Shard]
	if len(mine) < 2 {
		t.Fatalf("shard %d has %d domains; test needs >= 2", g.Shard, len(mine))
	}
	half := mine[:len(mine)/2]
	var up UploadResult
	doReq(t, coord, http.MethodPost,
		fmt.Sprintf("/v1/jobs/%s/leases/%s/records", jobID, g.LeaseID),
		g.ETag, batchFor(recs, half), &up)
	if up.Accepted != len(half) {
		t.Fatalf("doomed upload %+v, want %d accepted", up, len(half))
	}

	// The lease expires; the next request sweeps it back to pending.
	fc.advance(testTTL + time.Second)
	var js JobStatus
	doReq(t, coord, http.MethodGet, "/v1/jobs/"+jobID, "", nil, &js)
	if js.Shards[g.Shard].State != ShardPending {
		t.Fatalf("shard %d state %q after TTL, want pending", g.Shard, js.Shards[g.Shard].State)
	}

	// A real worker finishes the job, reclaiming the abandoned shard.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	w, err := NewWorker(WorkerConfig{Coordinator: srv.URL, ID: "replacement", Registry: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("replacement worker: %v", err)
	}
	if err := coord.Wait(ctx); err != nil {
		t.Fatalf("job never completed: %v", err)
	}

	// Exactly one reassignment, the shard's lease fenced to epoch 2, and
	// the merged dataset byte-identical with every domain appended once.
	if n := reg.Counter("aipan_dispatch_reassigned_total", "").Value(); n != 1 {
		t.Fatalf("reassigned_total = %v, want exactly 1", n)
	}
	doReq(t, coord, http.MethodGet, "/v1/jobs/"+jobID, "", nil, &js)
	if js.State != "done" || js.Shards[g.Shard].Epoch != 2 {
		t.Fatalf("final status %+v, want done with shard %d at epoch 2", js, g.Shard)
	}
	if n, err := st.Len(); err != nil || n != limit {
		t.Fatalf("store holds %d records (err %v), want %d — duplicates or losses", n, err, limit)
	}
	if got := exportBytes(t, st); !bytes.Equal(got, want) {
		t.Fatalf("post-reassignment export differs from single-process export (%d vs %d bytes)",
			len(got), len(want))
	}
}
