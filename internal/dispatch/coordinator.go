package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"aipan/internal/api"
	"aipan/internal/core"
	"aipan/internal/engine"
	"aipan/internal/obs"
	"aipan/internal/store"
	"aipan/internal/webgen"
)

// CoordinatorConfig configures a Coordinator.
type CoordinatorConfig struct {
	// Spec pins the run. Zero Seed resolves to the default seed, zero
	// Shards to 8.
	Spec JobSpec
	// Store receives the merged records (caller-owned; the coordinator
	// never closes it). A seed-stamping backend is checked against the
	// spec, and records already present resume the job — reopening a
	// checkpoint store continues where the previous coordinator died.
	Store store.Store
	// LeaseTTL is the heartbeat deadline after which a silent lease is
	// reassigned (default 15s). Workers are told to beat every TTL/3.
	LeaseTTL time.Duration
	// Clock injects the lease timebase (default obs.SystemClock). Lease
	// expiry is judged only by comparing its readings; no clock value
	// ever reaches the wire or the store.
	Clock obs.Clock
	// Registry receives aipan_dispatch_* metrics (default obs.Default()).
	Registry *obs.Registry
	// Logger, when set, receives lease-lifecycle logs.
	Logger *obs.Logger
}

// shardState is one shard of the partition and, while leased, the
// lease fencing state. epoch increments on every grant; the ETag
// derived from it is the fence every mutating request must present.
type shardState struct {
	idx      int
	domains  []string // this shard's study domains, in study-list order
	done     map[string]bool
	doneN    int
	state    string // ShardPending | ShardLeased | ShardDone
	leaseID  string
	worker   string
	epoch    int
	lastBeat time.Time
}

func (sh *shardState) etag() string {
	return fmt.Sprintf("\"s%02d-e%d\"", sh.idx, sh.epoch)
}

// coordHandler is a dispatch route implementation. It may set response
// headers (lease ETags) on the recorder; the dispatch loop owns
// encoding and the error envelope.
type coordHandler func(rec *api.Recorder, ps api.Params, r *http.Request) (*api.Result, *api.Error)

// Coordinator owns one distributed job: the partitioned study list,
// shard leases, and the merged result store. It is an http.Handler
// serving the /v1 dispatch protocol plus /metrics and /debug/pprof.
//
// Exactly-once merging: all record uploads serialize through a
// one-slot limiter acquired before any state is read, so between a
// batch's dedup check and its appends no other upload can interleave —
// a reassigned lease's late upload either fails the epoch fence or
// dedups against the done-set, and the store sees each domain once.
type Coordinator struct {
	spec  JobSpec
	jobID string
	study core.Study
	st    store.Store
	ttl   time.Duration
	clock obs.Clock
	log   *obs.Logger

	uploads *engine.Limiter // one-slot: serializes all record uploads

	mu        sync.Mutex
	shards    []*shardState
	shardOf   map[string]int // study domain → shard index
	cells     map[string]core.FunnelCell
	doneTotal int
	version   uint64 // bumps on every lease/state transition

	doneCh   chan struct{}
	doneOnce sync.Once

	router *api.Router[coordHandler]
	debug  http.Handler

	mRequests   *obs.CounterVec
	mLeases     *obs.CounterVec
	mHeartbeats *obs.CounterVec
	mReassigned *obs.Counter
	mRecords    *obs.CounterVec
	mShards     *obs.GaugeVec
}

// NewCoordinator partitions the study list for cfg.Spec, resumes any
// records already in cfg.Store, and returns a coordinator ready to
// serve leases.
func NewCoordinator(cfg CoordinatorConfig) (*Coordinator, error) {
	spec := cfg.Spec
	if spec.Seed == 0 {
		spec.Seed = webgen.Seed
	}
	if spec.Shards == 0 {
		spec.Shards = 8
	}
	if spec.Shards < 1 || spec.Shards > 99 {
		return nil, fmt.Errorf("dispatch: shard count %d out of range 1..99", spec.Shards)
	}
	if cfg.Store == nil {
		return nil, fmt.Errorf("dispatch: a coordinator needs a result store")
	}
	ttl := cfg.LeaseTTL
	if ttl <= 0 {
		ttl = 15 * time.Second
	}
	clock := cfg.Clock
	if clock == nil {
		clock = obs.SystemClock
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}

	c := &Coordinator{
		spec:    spec,
		jobID:   obs.DeriveRunID(spec.Seed),
		study:   core.StudyFor(spec.Seed, spec.UniverseDomains, spec.Limit),
		st:      cfg.Store,
		ttl:     ttl,
		clock:   clock,
		log:     cfg.Logger.With("dispatch"),
		uploads: engine.NewLimiter(1),
		shardOf: map[string]int{},
		cells:   map[string]core.FunnelCell{},
		doneCh:  make(chan struct{}),
		debug:   obs.DebugMux(reg),
	}

	c.mRequests = reg.CounterVec("aipan_dispatch_requests_total",
		"Dispatch protocol requests served, by route and status class.", "route", "class")
	c.mLeases = reg.CounterVec("aipan_dispatch_leases_granted_total",
		"Shard leases granted, by worker.", "worker")
	c.mHeartbeats = reg.CounterVec("aipan_dispatch_heartbeats_total",
		"Lease heartbeats accepted, by worker.", "worker")
	c.mReassigned = reg.Counter("aipan_dispatch_reassigned_total",
		"Leases reclaimed from silent workers and returned to the pending pool.")
	c.mRecords = reg.CounterVec("aipan_dispatch_records_uploaded_total",
		"Records accepted into the merged store, by worker.", "worker")
	c.mShards = reg.GaugeVec("aipan_dispatch_shards",
		"Shards of the current job, by state.", "state")

	c.shards = make([]*shardState, spec.Shards)
	for i := range c.shards {
		c.shards[i] = &shardState{idx: i, state: ShardPending, done: map[string]bool{}}
	}
	for _, d := range c.study.Domains {
		i := store.ShardOf(d, spec.Shards)
		c.shardOf[d] = i
		c.shards[i].domains = append(c.shards[i].domains, d)
	}

	if err := c.stampSeed(); err != nil {
		return nil, err
	}
	if err := c.resume(); err != nil {
		return nil, err
	}
	for _, sh := range c.shards {
		if sh.doneN == len(sh.domains) {
			sh.state = ShardDone
		}
	}
	c.updateShardGaugeLocked()
	if c.allDoneLocked() {
		c.doneOnce.Do(func() { close(c.doneCh) })
	}

	c.router = c.routes()
	c.log.Info("coordinator ready", "job", c.jobID, "domains", len(c.study.Domains),
		"shards", spec.Shards, "resumed", c.doneTotal)
	return c, nil
}

// stampSeed mirrors the pipeline's checkpoint guard: a seed-stamping
// store must carry this job's seed, and a stamp from a different seed
// refuses the job rather than merging two universes.
func (c *Coordinator) stampSeed() error {
	ms, ok := c.st.(store.MetaStore)
	if !ok {
		return nil
	}
	m, stamped, err := ms.Meta()
	if err != nil {
		return fmt.Errorf("dispatch: reading store meta: %w", err)
	}
	if stamped && m.Seed != 0 && m.Seed != c.spec.Seed {
		return fmt.Errorf("dispatch: store is stamped with seed %d, job runs seed %d",
			m.Seed, c.spec.Seed)
	}
	if !stamped || m.Seed == 0 {
		m.Seed = c.spec.Seed
		if err := ms.SetMeta(m); err != nil {
			return fmt.Errorf("dispatch: stamping store: %w", err)
		}
	}
	return nil
}

// resume folds records already in the store into the done-sets, so a
// coordinator reopened over a checkpoint continues the job.
func (c *Coordinator) resume() error {
	return c.st.Scan(func(r *store.Record) error {
		i, ok := c.shardOf[r.Domain]
		if !ok {
			return nil // outside this job's (possibly limited) universe
		}
		sh := c.shards[i]
		if !sh.done[r.Domain] {
			sh.done[r.Domain] = true
			sh.doneN++
			c.doneTotal++
			c.cells[r.Domain] = core.CellOf(r)
		}
		return nil
	})
}

// JobID reports the job identifier (seed-derived, same as the run ID a
// single-process run of this seed would stamp on telemetry).
func (c *Coordinator) JobID() string { return c.jobID }

// Wait blocks until every shard is complete or ctx is canceled.
func (c *Coordinator) Wait(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-c.doneCh:
		return nil
	}
}

// Funnel folds the uploaded cells in study-list order — the identical
// fold a single-process run performs, so the distributed funnel is
// byte-for-byte the local one.
func (c *Coordinator) Funnel() core.Funnel {
	c.mu.Lock()
	defer c.mu.Unlock()
	cells := make([]core.FunnelCell, len(c.study.Domains))
	for i, d := range c.study.Domains {
		cells[i] = c.cells[d]
	}
	return core.FoldFunnel(c.study.Companies, c.study.Corrected, cells)
}

// heartbeatEvery is the cadence workers are told to beat at.
func (c *Coordinator) heartbeatEvery() time.Duration { return c.ttl / 3 }

// sweep reclaims leases whose holder has been silent for a full TTL.
// It runs lazily on every request — a coordinator needs no background
// goroutine, and with an injected clock expiry is fully deterministic
// in tests.
func (c *Coordinator) sweep() {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, sh := range c.shards {
		if sh.state == ShardLeased && now.Sub(sh.lastBeat) >= c.ttl {
			c.log.Warn("lease expired, shard back to pending",
				"shard", sh.idx, "lease", sh.leaseID, "worker", sh.worker)
			sh.state = ShardPending
			sh.leaseID = ""
			sh.worker = ""
			c.version++
			c.mReassigned.Inc()
		}
	}
	c.updateShardGaugeLocked()
}

func (c *Coordinator) allDoneLocked() bool {
	for _, sh := range c.shards {
		if sh.state != ShardDone {
			return false
		}
	}
	return true
}

func (c *Coordinator) updateShardGaugeLocked() {
	n := map[string]int{}
	for _, sh := range c.shards {
		n[sh.state]++
	}
	c.mShards.With(ShardPending).Set(float64(n[ShardPending]))
	c.mShards.With(ShardLeased).Set(float64(n[ShardLeased]))
	c.mShards.With(ShardDone).Set(float64(n[ShardDone]))
}

// missedLocked counts whole heartbeat intervals a leased shard has been
// silent for.
func (c *Coordinator) missedLocked(sh *shardState, now time.Time) int {
	if sh.state != ShardLeased {
		return 0
	}
	return int(now.Sub(sh.lastBeat) / c.heartbeatEvery())
}

// ------------------------------------------------------------- HTTP surface

func (c *Coordinator) routes() *api.Router[coordHandler] {
	rt := &api.Router[coordHandler]{}
	rt.Add(http.MethodGet, "/v1/jobs", c.v1Jobs)
	rt.Add(http.MethodGet, "/v1/jobs/{job}", c.v1Job)
	rt.Add(http.MethodPost, "/v1/jobs/{job}/leases", c.v1Lease)
	rt.Add(http.MethodPost, "/v1/jobs/{job}/leases/{lease}/heartbeat", c.v1Heartbeat)
	rt.Add(http.MethodPost, "/v1/jobs/{job}/leases/{lease}/records", c.v1Records)
	rt.Add(http.MethodPost, "/v1/jobs/{job}/leases/{lease}/complete", c.v1Complete)
	rt.Add(http.MethodGet, "/v1/healthz", c.v1Healthz)
	rt.Add(http.MethodGet, "/v1/readyz", c.v1Readyz)
	return rt
}

// ServeHTTP implements http.Handler.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	if path == "/metrics" || strings.HasPrefix(path, "/debug/pprof") {
		c.debug.ServeHTTP(w, r)
		return
	}
	c.sweep()
	rt, ps, allow := c.router.Match(r.Method, path)
	name := "unmatched"
	if rt != nil {
		name = rt.Name
	}
	rec := api.NewRecorder()
	func() {
		defer func() {
			if p := recover(); p != nil {
				c.log.Error("handler panic", "route", name, "path", path, "panic", fmt.Sprint(p))
				rec.Reset()
				api.WriteError(rec, api.Internalf("internal server error"))
			}
		}()
		if rt == nil {
			if len(allow) > 0 {
				rec.Header().Set("Allow", strings.Join(allow, ", "))
				api.WriteError(rec, api.Errorf(http.StatusMethodNotAllowed, "method_not_allowed",
					"method %s not allowed (allow: %s)", r.Method, strings.Join(allow, ", ")))
				return
			}
			api.WriteError(rec, api.NotFoundf("no such endpoint %q; see /v1/jobs", path))
			return
		}
		res, aerr := rt.H(rec, ps, r)
		if aerr != nil {
			api.WriteError(rec, aerr)
			return
		}
		body, ct, aerr := api.EncodeResult(res)
		if aerr != nil {
			api.WriteError(rec, aerr)
			return
		}
		rec.Header().Set("Content-Type", ct)
		rec.WriteHeader(http.StatusOK)
		_, _ = rec.Write(body)
	}()
	rec.Flush(w)
	c.mRequests.With(name, api.StatusClass(rec.Status())).Inc()
}

func (c *Coordinator) jobStatusLocked(now time.Time) JobStatus {
	js := JobStatus{
		ID:          c.jobID,
		Spec:        c.spec,
		State:       "running",
		Domains:     len(c.study.Domains),
		DoneDomains: c.doneTotal,
	}
	if c.allDoneLocked() {
		js.State = "done"
	}
	for _, sh := range c.shards {
		js.Shards = append(js.Shards, ShardStatus{
			Shard:            sh.idx,
			State:            sh.state,
			Worker:           sh.worker,
			Epoch:            sh.epoch,
			DoneDomains:      sh.doneN,
			TotalDomains:     len(sh.domains),
			MissedHeartbeats: c.missedLocked(sh, now),
		})
	}
	return js
}

func (c *Coordinator) v1Jobs(_ *api.Recorder, _ api.Params, r *http.Request) (*api.Result, *api.Error) {
	query := r.URL.Query()
	limit := 100
	if raw := query.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return nil, api.BadRequestf("limit must be a positive integer (got %q)", raw)
		}
		limit = n
	}
	after := ""
	if raw := query.Get("cursor"); raw != "" {
		id, err := api.DecodeCursor(raw)
		if err != nil {
			return nil, api.BadRequestf("cursor is not a token from a previous response")
		}
		after = id
	}

	now := c.clock()
	c.mu.Lock()
	js := c.jobStatusLocked(now)
	c.mu.Unlock()
	// One coordinator serves one job today, but the listing is shaped —
	// and paginated — like every other /v1 collection so operators and
	// tooling need no special case when that changes.
	all := []JobSummary{{ID: js.ID, State: js.State, Domains: js.Domains, DoneDomains: js.DoneDomains}}
	sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
	start := sort.Search(len(all), func(i int) bool { return all[i].ID > after })
	page := JobsPage{Total: len(all)}
	for i := start; i < len(all) && len(page.Jobs) < limit; i++ {
		page.Jobs = append(page.Jobs, all[i])
	}
	if n := len(page.Jobs); n > 0 && start+n < len(all) {
		page.NextCursor = api.EncodeCursor(page.Jobs[n-1].ID)
	}
	return &api.Result{Obj: page}, nil
}

func (c *Coordinator) v1Job(_ *api.Recorder, ps api.Params, _ *http.Request) (*api.Result, *api.Error) {
	if ps["job"] != c.jobID {
		return nil, api.NotFoundf("no such job %q", ps["job"])
	}
	now := c.clock()
	c.mu.Lock()
	js := c.jobStatusLocked(now)
	c.mu.Unlock()
	return &api.Result{Obj: js}, nil
}

func (c *Coordinator) v1Lease(rec *api.Recorder, ps api.Params, r *http.Request) (*api.Result, *api.Error) {
	if ps["job"] != c.jobID {
		return nil, api.NotFoundf("no such job %q", ps["job"])
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		return nil, api.BadRequestf("lease request body: %v", err)
	}
	if req.Worker == "" {
		return nil, api.BadRequestf("lease request names no worker")
	}
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.allDoneLocked() {
		return &api.Result{Obj: LeaseResponse{Status: LeaseJobDone}}, nil
	}
	for _, sh := range c.shards {
		if sh.state != ShardPending {
			continue
		}
		sh.state = ShardLeased
		sh.epoch++
		sh.leaseID = fmt.Sprintf("s%02d-e%d", sh.idx, sh.epoch)
		sh.worker = req.Worker
		sh.lastBeat = now
		c.version++
		c.mLeases.With(req.Worker).Inc()
		c.updateShardGaugeLocked()
		grant := &LeaseGrant{
			LeaseID:         sh.leaseID,
			Shard:           sh.idx,
			Epoch:           sh.epoch,
			ETag:            sh.etag(),
			Spec:            c.spec,
			TTLMillis:       c.ttl.Milliseconds(),
			HeartbeatMillis: c.heartbeatEvery().Milliseconds(),
		}
		for _, d := range sh.domains {
			if sh.done[d] {
				grant.DoneDomains = append(grant.DoneDomains, d)
			}
		}
		rec.Header().Set("ETag", sh.etag())
		c.log.Info("lease granted", "shard", sh.idx, "lease", sh.leaseID,
			"worker", req.Worker, "epoch", sh.epoch, "resumed", len(grant.DoneDomains))
		return &api.Result{Obj: LeaseResponse{Status: LeaseGranted, Grant: grant}}, nil
	}
	return &api.Result{Obj: LeaseResponse{
		Status:           LeaseWait,
		RetryAfterMillis: c.heartbeatEvery().Milliseconds(),
	}}, nil
}

// leaseLocked resolves and fences a mutating lease request: the job
// must match, the lease must still be the shard's current one, and the
// request's If-Match must carry the grant's ETag. A lease that expired
// and was re-granted fails here with 412 stale_lease — the fence that
// keeps a zombie worker from interfering after reassignment.
func (c *Coordinator) leaseLocked(ps api.Params, r *http.Request) (*shardState, *api.Error) {
	if ps["job"] != c.jobID {
		return nil, api.NotFoundf("no such job %q", ps["job"])
	}
	leaseID := ps["lease"]
	for _, sh := range c.shards {
		if sh.state == ShardLeased && sh.leaseID == leaseID {
			if !api.ETagMatch(r.Header.Get("If-Match"), sh.etag()) {
				return nil, api.Errorf(http.StatusPreconditionFailed, "stale_lease",
					"lease %s requires If-Match %s", leaseID, sh.etag())
			}
			return sh, nil
		}
	}
	return nil, api.Errorf(http.StatusPreconditionFailed, "stale_lease",
		"lease %q is not current; re-acquire", leaseID)
}

func (c *Coordinator) v1Heartbeat(rec *api.Recorder, ps api.Params, r *http.Request) (*api.Result, *api.Error) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	sh, aerr := c.leaseLocked(ps, r)
	if aerr != nil {
		return nil, aerr
	}
	sh.lastBeat = now
	c.mHeartbeats.With(sh.worker).Inc()
	rec.Header().Set("ETag", sh.etag())
	return &api.Result{Obj: map[string]string{"status": "ok"}}, nil
}

func (c *Coordinator) v1Records(rec *api.Recorder, ps api.Params, r *http.Request) (*api.Result, *api.Error) {
	var batch RecordBatch
	if err := json.NewDecoder(r.Body).Decode(&batch); err != nil {
		return nil, api.BadRequestf("record batch body: %v", err)
	}
	if len(batch.Cells) != len(batch.Records) {
		return nil, api.BadRequestf("batch carries %d cells for %d records",
			len(batch.Cells), len(batch.Records))
	}
	// Serialize all uploads before touching any state: the one-slot
	// limiter is what makes the dedup-check→append window exclusive, so
	// no two uploads — even for different leases on the same shard
	// across a reassignment — can both append one domain.
	if err := c.uploads.Acquire(r.Context()); err != nil {
		return nil, api.Errorf(http.StatusServiceUnavailable, "canceled",
			"upload canceled while queued: %v", err)
	}
	defer c.uploads.Release()

	now := c.clock()
	c.mu.Lock()
	sh, aerr := c.leaseLocked(ps, r)
	if aerr != nil {
		c.mu.Unlock()
		return nil, aerr
	}
	sh.lastBeat = now // an upload is as good as a heartbeat
	worker := sh.worker
	var fresh []int
	dup := 0
	for i := range batch.Records {
		d := batch.Records[i].Domain
		if j, ok := c.shardOf[d]; !ok || j != sh.idx {
			c.mu.Unlock()
			return nil, api.BadRequestf("record for %q does not belong to shard %d", d, sh.idx)
		}
		if sh.done[d] {
			dup++
			continue
		}
		fresh = append(fresh, i)
	}
	c.mu.Unlock()

	// Append outside the coordinator lock (store appends are disk I/O);
	// the upload limiter still excludes every other upload. Each record
	// is marked done right after its append lands, so a batch that
	// fails midway leaves the done-set exact and a retry ships only the
	// remainder.
	accepted := 0
	for _, i := range fresh {
		recd := &batch.Records[i]
		if err := c.st.Append(recd); err != nil {
			return nil, api.Internalf("appending %s: %v", recd.Domain, err)
		}
		c.mu.Lock()
		sh.done[recd.Domain] = true
		sh.doneN++
		c.doneTotal++
		c.cells[recd.Domain] = batch.Cells[i]
		c.mu.Unlock()
		accepted++
	}
	if accepted > 0 {
		c.mRecords.With(worker).Add(float64(accepted))
	}
	c.mu.Lock()
	etag := sh.etag()
	c.mu.Unlock()
	rec.Header().Set("ETag", etag)
	return &api.Result{Obj: UploadResult{Accepted: accepted, Duplicate: dup}}, nil
}

func (c *Coordinator) v1Complete(rec *api.Recorder, ps api.Params, r *http.Request) (*api.Result, *api.Error) {
	c.mu.Lock()
	sh, aerr := c.leaseLocked(ps, r)
	if aerr != nil {
		c.mu.Unlock()
		return nil, aerr
	}
	if sh.doneN != len(sh.domains) {
		missing := len(sh.domains) - sh.doneN
		c.mu.Unlock()
		return nil, api.Errorf(http.StatusConflict, "incomplete",
			"shard %d still misses %d domain(s)", sh.idx, missing)
	}
	etag := sh.etag()
	sh.state = ShardDone
	sh.leaseID = ""
	c.version++
	c.updateShardGaugeLocked()
	status := ShardStatus{
		Shard: sh.idx, State: sh.state, Epoch: sh.epoch,
		DoneDomains: sh.doneN, TotalDomains: len(sh.domains),
	}
	allDone := c.allDoneLocked()
	worker := sh.worker
	c.mu.Unlock()

	c.log.Info("shard complete", "shard", status.Shard, "worker", worker, "epoch", status.Epoch)
	if allDone {
		c.doneOnce.Do(func() { close(c.doneCh) })
		c.log.Info("job complete", "job", c.jobID, "domains", len(c.study.Domains))
	}
	rec.Header().Set("ETag", etag)
	return &api.Result{Obj: status}, nil
}

func (c *Coordinator) v1Healthz(_ *api.Recorder, _ api.Params, _ *http.Request) (*api.Result, *api.Error) {
	c.mu.Lock()
	h := api.Health{Status: "ok", Generation: c.version, Records: c.doneTotal}
	c.mu.Unlock()
	return &api.Result{Obj: h}, nil
}

// v1Readyz reports "degraded" — with a warning, in the shared
// api.Health shape the dataset server's SLO monitor also speaks — while
// any lease has missed two or more heartbeats: the job still makes
// progress (the lease will be reassigned at TTL), but an operator
// watching readyz sees the wobble before throughput does.
func (c *Coordinator) v1Readyz(_ *api.Recorder, _ api.Params, _ *http.Request) (*api.Result, *api.Error) {
	now := c.clock()
	c.mu.Lock()
	defer c.mu.Unlock()
	h := api.Health{Status: "ready", Generation: c.version, Records: c.doneTotal}
	wobbly := 0
	for _, sh := range c.shards {
		if c.missedLocked(sh, now) >= 2 {
			wobbly++
		}
	}
	if wobbly > 0 {
		h.Status = "degraded"
		h.Warning = fmt.Sprintf("%d lease(s) missed >=2 heartbeats; reassignment at TTL", wobbly)
	}
	return &api.Result{Obj: h}, nil
}
