package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"aipan/internal/core"
	"aipan/internal/obs"
	"aipan/internal/store"
)

// fakeClock is a hand-cranked obs.Clock: lease expiry in these tests
// happens exactly when the test advances time, never because the
// machine was slow.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// doReq drives one request through the coordinator handler and decodes
// the JSON answer into out (when non-nil).
func doReq(t *testing.T, h http.Handler, method, path, ifMatch string, body, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req := httptest.NewRequest(method, path, rd)
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, req)
	if out != nil && rw.Code < 400 {
		if err := json.Unmarshal(rw.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: decoding %q: %v", method, path, rw.Body.String(), err)
		}
	}
	return rw.Code, rw.Result().Header
}

// referenceRun executes a plain single-process pipeline and returns its
// records by domain plus the export bytes every distributed variant
// must reproduce.
func referenceRun(t *testing.T, limit int) (map[string]store.Record, []byte) {
	t.Helper()
	st := store.NewMem()
	p, err := core.New(core.Config{
		Limit: limit, Store: st, DiscardRecords: true, Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	recs := map[string]store.Record{}
	if err := st.Scan(func(r *store.Record) error {
		recs[r.Domain] = *r
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return recs, exportBytes(t, st)
}

func exportBytes(t *testing.T, st store.Store) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "dataset.jsonl")
	if err := store.SaveJSONL(path, st); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func batchFor(recs map[string]store.Record, domains []string) RecordBatch {
	var b RecordBatch
	for _, d := range domains {
		r := recs[d]
		b.Records = append(b.Records, r)
		b.Cells = append(b.Cells, core.CellOf(&r))
	}
	return b
}

const (
	testLimit  = 12
	testShards = 2
	testTTL    = 30 * time.Second
)

func newTestCoordinator(t *testing.T) (*Coordinator, *fakeClock, *obs.Registry, store.Store) {
	t.Helper()
	fc := newFakeClock()
	reg := obs.NewRegistry()
	st := store.NewMem()
	c, err := NewCoordinator(CoordinatorConfig{
		Spec:     JobSpec{Limit: testLimit, Shards: testShards},
		Store:    st,
		LeaseTTL: testTTL,
		Clock:    fc.now,
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c, fc, reg, st
}

// shardDomains recomputes the partition the coordinator built, in study
// order — what a correct lease grant must cover.
func shardDomains(limit, shards int) [][]string {
	study := core.StudyFor(0, 0, limit)
	out := make([][]string, shards)
	for _, d := range study.Domains {
		i := store.ShardOf(d, shards)
		out[i] = append(out[i], d)
	}
	return out
}

func TestCoordinatorLeaseLifecycle(t *testing.T) {
	recs, wantExport := referenceRun(t, testLimit)
	c, fc, reg, st := newTestCoordinator(t)
	jobID := c.JobID()
	parts := shardDomains(testLimit, testShards)
	for i, p := range parts {
		if len(p) == 0 {
			t.Fatalf("test partition degenerate: shard %d empty; pick another limit", i)
		}
	}

	var page JobsPage
	if code, _ := doReq(t, c, http.MethodGet, "/v1/jobs", "", nil, &page); code != 200 {
		t.Fatalf("GET /v1/jobs = %d", code)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != jobID || page.Jobs[0].State != "running" {
		t.Fatalf("job listing %+v, want one running job %s", page, jobID)
	}

	// Lease the first shard.
	var lr LeaseResponse
	code, hdr := doReq(t, c, http.MethodPost, "/v1/jobs/"+jobID+"/leases", "",
		LeaseRequest{Worker: "wA"}, &lr)
	if code != 200 || lr.Status != LeaseGranted || lr.Grant == nil {
		t.Fatalf("lease: code %d resp %+v", code, lr)
	}
	g := lr.Grant
	if g.Epoch != 1 || g.TTLMillis != testTTL.Milliseconds() || g.HeartbeatMillis != testTTL.Milliseconds()/3 {
		t.Fatalf("grant %+v: want epoch 1, ttl %d, hb %d", g, testTTL.Milliseconds(), testTTL.Milliseconds()/3)
	}
	if hdr.Get("ETag") != g.ETag {
		t.Fatalf("lease ETag header %q != grant etag %q", hdr.Get("ETag"), g.ETag)
	}
	mine := parts[g.Shard]
	hbPath := fmt.Sprintf("/v1/jobs/%s/leases/%s/heartbeat", jobID, g.LeaseID)
	recPath := fmt.Sprintf("/v1/jobs/%s/leases/%s/records", jobID, g.LeaseID)
	donePath := fmt.Sprintf("/v1/jobs/%s/leases/%s/complete", jobID, g.LeaseID)

	// Fencing: no If-Match and wrong If-Match are both refused.
	if code, _ := doReq(t, c, http.MethodPost, hbPath, "", struct{}{}, nil); code != 412 {
		t.Fatalf("heartbeat without If-Match = %d, want 412", code)
	}
	if code, _ := doReq(t, c, http.MethodPost, hbPath, `"s99-e9"`, struct{}{}, nil); code != 412 {
		t.Fatalf("heartbeat with stale If-Match = %d, want 412", code)
	}
	if code, _ := doReq(t, c, http.MethodPost, hbPath, g.ETag, struct{}{}, nil); code != 200 {
		t.Fatalf("heartbeat = %d, want 200", code)
	}

	// A record from the other shard is rejected outright.
	other := parts[1-g.Shard][0]
	if code, _ := doReq(t, c, http.MethodPost, recPath, g.ETag,
		batchFor(recs, []string{other}), nil); code != 400 {
		t.Fatalf("cross-shard upload = %d, want 400", code)
	}

	// Completing early is a conflict.
	if code, _ := doReq(t, c, http.MethodPost, donePath, g.ETag, struct{}{}, nil); code != 409 {
		t.Fatalf("premature complete = %d, want 409", code)
	}

	// Upload the shard; a replay dedups against the done-set.
	var up UploadResult
	if code, _ := doReq(t, c, http.MethodPost, recPath, g.ETag, batchFor(recs, mine), &up); code != 200 {
		t.Fatalf("upload = %d", code)
	}
	if up.Accepted != len(mine) || up.Duplicate != 0 {
		t.Fatalf("upload result %+v, want %d accepted", up, len(mine))
	}
	if code, _ := doReq(t, c, http.MethodPost, recPath, g.ETag, batchFor(recs, mine), &up); code != 200 {
		t.Fatalf("replay upload = %d", code)
	}
	if up.Accepted != 0 || up.Duplicate != len(mine) {
		t.Fatalf("replay result %+v, want %d duplicates", up, len(mine))
	}
	if code, _ := doReq(t, c, http.MethodPost, donePath, g.ETag, struct{}{}, nil); code != 200 {
		t.Fatalf("complete = %d", code)
	}

	// Second shard: lease, go silent, watch readyz degrade (satellite:
	// the shared api.Health shape), then expire into reassignment.
	code, _ = doReq(t, c, http.MethodPost, "/v1/jobs/"+jobID+"/leases", "",
		LeaseRequest{Worker: "wB"}, &lr)
	if code != 200 || lr.Status != LeaseGranted {
		t.Fatalf("second lease: code %d resp %+v", code, lr)
	}
	g2 := lr.Grant

	var health struct {
		Status  string `json:"status"`
		Warning string `json:"warning"`
	}
	doReq(t, c, http.MethodGet, "/v1/readyz", "", nil, &health)
	if health.Status != "ready" {
		t.Fatalf("readyz fresh lease = %+v, want ready", health)
	}
	fc.advance(2 * time.Duration(g2.HeartbeatMillis) * time.Millisecond)
	doReq(t, c, http.MethodGet, "/v1/readyz", "", nil, &health)
	if health.Status != "degraded" || health.Warning == "" {
		t.Fatalf("readyz after 2 missed beats = %+v, want degraded+warning", health)
	}
	hb2 := fmt.Sprintf("/v1/jobs/%s/leases/%s/heartbeat", jobID, g2.LeaseID)
	if code, _ := doReq(t, c, http.MethodPost, hb2, g2.ETag, struct{}{}, nil); code != 200 {
		t.Fatalf("late heartbeat = %d", code)
	}
	doReq(t, c, http.MethodGet, "/v1/readyz", "", nil, &health)
	if health.Status != "ready" {
		t.Fatalf("readyz after recovery = %+v, want ready", health)
	}

	// Silence past the TTL: the shard goes back to pending and the old
	// lease is fenced out of every mutating call.
	fc.advance(testTTL)
	var js JobStatus
	doReq(t, c, http.MethodGet, "/v1/jobs/"+jobID, "", nil, &js)
	if got := js.Shards[g2.Shard].State; got != ShardPending {
		t.Fatalf("expired shard state %q, want pending", got)
	}
	if n := reg.Counter("aipan_dispatch_reassigned_total", "").Value(); n != 1 {
		t.Fatalf("reassigned_total = %v, want 1", n)
	}
	if code, _ := doReq(t, c, http.MethodPost, hb2, g2.ETag, struct{}{}, nil); code != 412 {
		t.Fatalf("zombie heartbeat = %d, want 412", code)
	}

	// Re-lease: epoch bumps, and the new holder finishes the job.
	code, _ = doReq(t, c, http.MethodPost, "/v1/jobs/"+jobID+"/leases", "",
		LeaseRequest{Worker: "wC"}, &lr)
	if code != 200 || lr.Status != LeaseGranted || lr.Grant.Shard != g2.Shard || lr.Grant.Epoch != 2 {
		t.Fatalf("re-lease: code %d resp %+v, want shard %d epoch 2", code, lr, g2.Shard)
	}
	g3 := lr.Grant
	rec3 := fmt.Sprintf("/v1/jobs/%s/leases/%s/records", jobID, g3.LeaseID)
	done3 := fmt.Sprintf("/v1/jobs/%s/leases/%s/complete", jobID, g3.LeaseID)
	if code, _ := doReq(t, c, http.MethodPost, rec3, g3.ETag, batchFor(recs, parts[g3.Shard]), &up); code != 200 {
		t.Fatalf("final upload = %d", code)
	}
	if code, _ := doReq(t, c, http.MethodPost, done3, g3.ETag, struct{}{}, nil); code != 200 {
		t.Fatalf("final complete = %d", code)
	}

	doReq(t, c, http.MethodPost, "/v1/jobs/"+jobID+"/leases", "", LeaseRequest{Worker: "wD"}, &lr)
	if lr.Status != LeaseJobDone {
		t.Fatalf("post-completion lease status %q, want done", lr.Status)
	}
	ctx, cancelWait := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelWait()
	if err := c.Wait(ctx); err != nil {
		t.Fatalf("Wait after completion: %v", err)
	}
	if got := exportBytes(t, st); !bytes.Equal(got, wantExport) {
		t.Fatalf("merged export differs from single-process export (%d vs %d bytes)",
			len(got), len(wantExport))
	}
	if got := c.Funnel(); got.Domains == 0 {
		t.Fatalf("funnel after merge is empty: %+v", got)
	}
}

func TestCoordinatorProtocolSurface(t *testing.T) {
	c, _, _, _ := newTestCoordinator(t)
	jobID := c.JobID()

	// Unknown endpoints answer the uniform envelope.
	rw := httptest.NewRecorder()
	c.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/v1/nope", nil))
	if rw.Code != 404 || !bytes.Contains(rw.Body.Bytes(), []byte(`"error"`)) {
		t.Fatalf("unknown path: %d %s", rw.Code, rw.Body.String())
	}

	// Wrong method gets a sorted Allow.
	rw = httptest.NewRecorder()
	c.ServeHTTP(rw, httptest.NewRequest(http.MethodDelete, "/v1/jobs", nil))
	if rw.Code != 405 || rw.Header().Get("Allow") != "GET" {
		t.Fatalf("DELETE /v1/jobs: %d allow %q", rw.Code, rw.Header().Get("Allow"))
	}

	// Cursor pagination: bogus cursors are a 400, a full page ends the
	// listing with no next_cursor.
	if code, _ := doReq(t, c, http.MethodGet, "/v1/jobs?cursor=%25%25", "", nil, nil); code != 400 {
		t.Fatalf("bad cursor = %d, want 400", code)
	}
	var page JobsPage
	doReq(t, c, http.MethodGet, "/v1/jobs?limit=1", "", nil, &page)
	if page.Total != 1 || page.NextCursor != "" {
		t.Fatalf("page %+v, want total 1 and no next cursor", page)
	}

	// Unknown job IDs 404 everywhere.
	if code, _ := doReq(t, c, http.MethodGet, "/v1/jobs/other", "", nil, nil); code != 404 {
		t.Fatalf("GET unknown job = %d", code)
	}
	if code, _ := doReq(t, c, http.MethodPost, "/v1/jobs/other/leases", "",
		LeaseRequest{Worker: "w"}, nil); code != 404 {
		t.Fatalf("lease unknown job = %d", code)
	}

	// A lease request naming no worker is malformed.
	if code, _ := doReq(t, c, http.MethodPost, "/v1/jobs/"+jobID+"/leases", "",
		LeaseRequest{}, nil); code != 400 {
		t.Fatalf("anonymous lease = %d, want 400", code)
	}

	// healthz speaks the shared api.Health shape.
	var h struct {
		Status  string `json:"status"`
		Records int    `json:"records"`
	}
	if code, _ := doReq(t, c, http.MethodGet, "/v1/healthz", "", nil, &h); code != 200 || h.Status != "ok" {
		t.Fatalf("healthz: %d %+v", code, h)
	}
}

// TestCoordinatorResume reopens a store already holding part of the job
// and checks the coordinator leases only the remainder.
func TestCoordinatorResume(t *testing.T) {
	recs, want := referenceRun(t, testLimit)
	parts := shardDomains(testLimit, testShards)

	st := store.NewMem()
	for _, d := range parts[0] {
		r := recs[d]
		if err := st.Append(&r); err != nil {
			t.Fatal(err)
		}
	}
	fc := newFakeClock()
	c, err := NewCoordinator(CoordinatorConfig{
		Spec:     JobSpec{Limit: testLimit, Shards: testShards},
		Store:    st,
		LeaseTTL: testTTL,
		Clock:    fc.now,
		Registry: obs.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var js JobStatus
	doReq(t, c, http.MethodGet, "/v1/jobs/"+c.JobID(), "", nil, &js)
	if js.Shards[0].State != ShardDone || js.DoneDomains != len(parts[0]) {
		t.Fatalf("resumed status %+v, want shard 0 done with %d domains", js, len(parts[0]))
	}

	var lr LeaseResponse
	doReq(t, c, http.MethodPost, "/v1/jobs/"+c.JobID()+"/leases", "",
		LeaseRequest{Worker: "w"}, &lr)
	if lr.Status != LeaseGranted || lr.Grant.Shard != 1 {
		t.Fatalf("resume lease %+v, want shard 1", lr)
	}
	var up UploadResult
	doReq(t, c, http.MethodPost,
		fmt.Sprintf("/v1/jobs/%s/leases/%s/records", c.JobID(), lr.Grant.LeaseID),
		lr.Grant.ETag, batchFor(recs, parts[1]), &up)
	if up.Accepted != len(parts[1]) {
		t.Fatalf("resume upload %+v, want %d accepted", up, len(parts[1]))
	}
	if code, _ := doReq(t, c, http.MethodPost,
		fmt.Sprintf("/v1/jobs/%s/leases/%s/complete", c.JobID(), lr.Grant.LeaseID),
		lr.Grant.ETag, struct{}{}, nil); code != 200 {
		t.Fatalf("resume complete = %d", code)
	}
	if got := exportBytes(t, st); !bytes.Equal(got, want) {
		t.Fatalf("resumed export differs from single-process export")
	}
}
