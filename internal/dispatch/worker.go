package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"aipan/internal/chatbot"
	"aipan/internal/core"
	"aipan/internal/engine"
	"aipan/internal/obs"
	"aipan/internal/store"
)

// errLeaseLost marks a lease the coordinator no longer honors (expired
// and reassigned, or the shard finished under another holder). It is a
// worker's cue to drop the shard and ask for a fresh lease, not to die.
var errLeaseLost = errors.New("dispatch: lease lost")

// WorkerConfig configures a Worker.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL, e.g. "http://127.0.0.1:8080".
	Coordinator string
	// ID names this worker in leases and coordinator metrics.
	ID string
	// Client issues the protocol requests (default: a plain http.Client).
	Client *http.Client
	// Workers is the pipeline's per-domain parallelism (default: core's).
	Workers int
	// BatchSize is how many completed records ride per upload (default 8).
	BatchSize int
	// NewBot builds the annotation chatbot for the job's model name.
	// Nil runs the pipeline's default bot regardless of the spec.
	NewBot func(model string) (chatbot.Chatbot, error)
	// Registry receives the worker's pipeline + dispatch metrics
	// (default obs.Default()).
	Registry *obs.Registry
	// Logger, when set, receives lease lifecycle logs.
	Logger *obs.Logger
}

// Worker joins a coordinator, leases shards one at a time, runs the
// normal streaming pipeline over each leased shard, and uploads the
// completed records. It keeps leasing until the coordinator reports
// the job done.
type Worker struct {
	base   string
	id     string
	client *http.Client
	pwork  int
	batch  int
	newBot func(model string) (chatbot.Chatbot, error)
	reg    *obs.Registry
	log    *obs.Logger

	mLeases *obs.Counter
	mLost   *obs.Counter
	mUp     *obs.Counter
}

// NewWorker validates cfg and returns a worker ready to Run.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("dispatch: worker needs a coordinator URL")
	}
	if cfg.ID == "" {
		return nil, fmt.Errorf("dispatch: worker needs an ID")
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 8
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.Default()
	}
	w := &Worker{
		base:   strings.TrimRight(cfg.Coordinator, "/"),
		id:     cfg.ID,
		client: client,
		pwork:  cfg.Workers,
		batch:  batch,
		newBot: cfg.NewBot,
		reg:    reg,
		log:    cfg.Logger.With("worker"),
	}
	w.mLeases = reg.Counter("aipan_dispatch_worker_leases_total",
		"Shard leases this worker acquired.")
	w.mLost = reg.Counter("aipan_dispatch_worker_leases_lost_total",
		"Leases this worker lost to reassignment mid-shard.")
	w.mUp = reg.Counter("aipan_dispatch_worker_records_total",
		"Records this worker uploaded (accepted by the coordinator).")
	return w, nil
}

// Run leases and processes shards until the coordinator reports the job
// done, ctx is canceled, or a non-lease error stops the worker. A lost
// lease (reassigned while this worker was slow) is not fatal: the
// worker simply asks for the next pending shard.
func (w *Worker) Run(ctx context.Context) error {
	jobID, err := w.currentJob(ctx)
	if err != nil {
		return err
	}
	w.log.Info("joined", "job", jobID, "coordinator", w.base)
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		resp, err := w.pollLease(ctx, jobID)
		if err != nil {
			return err
		}
		switch resp.Status {
		case LeaseJobDone:
			w.log.Info("job done", "job", jobID)
			return nil
		case LeaseWait:
			delay := time.Duration(resp.RetryAfterMillis) * time.Millisecond
			if delay <= 0 {
				delay = 250 * time.Millisecond
			}
			if !engine.Sleep(ctx, delay) {
				return ctx.Err()
			}
		case LeaseGranted:
			w.mLeases.Inc()
			if err := w.runLease(ctx, jobID, resp.Grant); err != nil {
				if errors.Is(err, errLeaseLost) {
					w.mLost.Inc()
					w.log.Warn("lease lost, re-polling", "lease", resp.Grant.LeaseID)
					continue
				}
				return err
			}
		default:
			return fmt.Errorf("dispatch: coordinator answered lease status %q", resp.Status)
		}
	}
}

// pollLease asks for a shard, absorbing a few transport blips (a busy
// or briefly restarting coordinator) before giving up. A protocol-level
// refusal is returned immediately — that is a real answer.
func (w *Worker) pollLease(ctx context.Context, jobID string) (LeaseResponse, error) {
	var resp LeaseResponse
	var lastErr error
	for attempt := 0; attempt < 4; attempt++ {
		_, err := w.doJSON(ctx, http.MethodPost, "/v1/jobs/"+jobID+"/leases",
			"", LeaseRequest{Worker: w.id}, &resp)
		if err == nil {
			return resp, nil
		}
		if _, isProto := statusOf(err); isProto {
			return resp, err
		}
		lastErr = err
		if !engine.Sleep(ctx, 250*time.Millisecond) {
			return resp, ctx.Err()
		}
	}
	return resp, fmt.Errorf("dispatch: coordinator unreachable: %w", lastErr)
}

// currentJob polls the job listing until the coordinator answers —
// workers routinely start before the coordinator's listener is up.
func (w *Worker) currentJob(ctx context.Context) (string, error) {
	var lastErr error
	for attempt := 0; attempt < 40; attempt++ {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		var page JobsPage
		_, err := w.doJSON(ctx, http.MethodGet, "/v1/jobs?limit=1", "", nil, &page)
		if err == nil {
			if len(page.Jobs) == 0 {
				return "", fmt.Errorf("dispatch: coordinator lists no jobs")
			}
			return page.Jobs[0].ID, nil
		}
		lastErr = err
		if !engine.Sleep(ctx, 250*time.Millisecond) {
			return "", ctx.Err()
		}
	}
	return "", fmt.Errorf("dispatch: coordinator unreachable: %w", lastErr)
}

// runLease processes one granted shard: a heartbeat loop keeps the
// lease alive while the pipeline streams the shard's domains through an
// uploader store; on success the remainder is flushed and the shard
// marked complete — before the heartbeat loop is stopped, so the lease
// cannot expire between the last upload and the complete call.
func (w *Worker) runLease(ctx context.Context, jobID string, g *LeaseGrant) error {
	w.log.Info("lease granted", "lease", g.LeaseID, "shard", g.Shard,
		"epoch", g.Epoch, "resumed", len(g.DoneDomains))
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	grp, gctx := engine.NewGroup(lctx)

	hb := time.Duration(g.HeartbeatMillis) * time.Millisecond
	if hb <= 0 {
		hb = time.Second
	}
	grp.Go(func(hctx context.Context) error {
		for {
			if !engine.Sleep(hctx, hb) {
				return nil
			}
			status, err := w.doJSON(hctx, http.MethodPost,
				leasePath(jobID, g, "heartbeat"), g.ETag, struct{}{}, nil)
			if err != nil && leaseGone(status) {
				return fmt.Errorf("heartbeat for %s: %w", g.LeaseID, errLeaseLost)
			}
			// Transient errors (coordinator restarting, network blip)
			// just mean a missed beat; the TTL absorbs a few.
		}
	})

	up := &uploader{w: w, ctx: gctx, cancel: cancel, jobID: jobID, grant: g, batch: w.batch}
	perr := w.runPipeline(gctx, g, up)
	if perr == nil {
		perr = up.flush()
	}
	if perr == nil {
		_, cerr := w.doJSON(gctx, http.MethodPost, leasePath(jobID, g, "complete"),
			g.ETag, struct{}{}, nil)
		perr = cerr
	}
	cancel()
	herr := grp.Wait()
	if uerr := up.fatalErr(); uerr != nil {
		return uerr // a 412 on upload outranks the pipeline's cancellation error
	}
	if perr != nil {
		if s, ok := statusOf(perr); ok && leaseGone(s) {
			return fmt.Errorf("%s: %w", g.LeaseID, errLeaseLost)
		}
		return perr
	}
	if herr != nil {
		return herr
	}
	w.log.Info("shard complete", "lease", g.LeaseID, "shard", g.Shard)
	return nil
}

// runPipeline runs the standard streaming pipeline over exactly this
// lease's not-yet-done domains, delivering records into the uploader.
func (w *Worker) runPipeline(ctx context.Context, g *LeaseGrant, up *uploader) error {
	done := make(map[string]bool, len(g.DoneDomains))
	for _, d := range g.DoneDomains {
		done[d] = true
	}
	spec := g.Spec
	var bot chatbot.Chatbot
	if w.newBot != nil {
		b, err := w.newBot(spec.Model)
		if err != nil {
			return err
		}
		bot = b
	}
	p, err := core.New(core.Config{
		Seed:            spec.Seed,
		UniverseDomains: spec.UniverseDomains,
		Limit:           spec.Limit,
		Bot:             bot,
		Workers:         w.pwork,
		DiscardRecords:  true,
		Store:           up,
		DomainFilter: func(d string) bool {
			return store.ShardOf(d, spec.Shards) == g.Shard && !done[d]
		},
		Registry: w.reg,
		Logger:   w.log,
	})
	if err != nil {
		return err
	}
	_, err = p.Run(ctx)
	return err
}

// ---------------------------------------------------------------- uploader

// uploader is the store.Store the worker's pipeline streams into: it
// batches completed records (with their funnel cells) and posts each
// batch under the lease's If-Match fence. A fenced-out upload (412: the
// lease was reassigned) records the error and cancels the pipeline —
// there is no point crawling domains whose results the coordinator will
// refuse.
type uploader struct {
	w      *Worker
	ctx    context.Context
	cancel context.CancelFunc
	jobID  string
	grant  *LeaseGrant
	batch  int

	mu    sync.Mutex
	recs  []store.Record
	cells []core.FunnelCell
	err   error
}

func (u *uploader) Append(r *store.Record) error {
	u.mu.Lock()
	if u.err != nil {
		err := u.err
		u.mu.Unlock()
		return err
	}
	u.recs = append(u.recs, *r)
	u.cells = append(u.cells, core.CellOf(r))
	var recs []store.Record
	var cells []core.FunnelCell
	if len(u.recs) >= u.batch {
		recs, cells = u.recs, u.cells
		u.recs, u.cells = nil, nil
	}
	u.mu.Unlock()
	if recs == nil {
		return nil
	}
	return u.post(recs, cells)
}

// flush uploads whatever the batch buffer still holds.
func (u *uploader) flush() error {
	u.mu.Lock()
	if u.err != nil {
		err := u.err
		u.mu.Unlock()
		return err
	}
	recs, cells := u.recs, u.cells
	u.recs, u.cells = nil, nil
	u.mu.Unlock()
	if len(recs) == 0 {
		return nil
	}
	return u.post(recs, cells)
}

func (u *uploader) post(recs []store.Record, cells []core.FunnelCell) error {
	var res UploadResult
	status, err := u.w.doJSON(u.ctx, http.MethodPost,
		leasePath(u.jobID, u.grant, "records"), u.grant.ETag,
		RecordBatch{Records: recs, Cells: cells}, &res)
	if err != nil {
		if leaseGone(status) {
			err = fmt.Errorf("upload under %s: %w", u.grant.LeaseID, errLeaseLost)
		}
		u.mu.Lock()
		if u.err == nil {
			u.err = err
		}
		u.mu.Unlock()
		u.cancel()
		return err
	}
	if res.Accepted > 0 {
		u.w.mUp.Add(float64(res.Accepted))
	}
	return nil
}

func (u *uploader) fatalErr() error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.err
}

func (u *uploader) Scan(func(*store.Record) error) error { return nil }
func (u *uploader) Len() (int, error)                    { return 0, nil }
func (u *uploader) Close() error                         { return nil }

// ------------------------------------------------------------- HTTP client

func leasePath(jobID string, g *LeaseGrant, op string) string {
	return "/v1/jobs/" + jobID + "/leases/" + g.LeaseID + "/" + op
}

// leaseGone reports whether a protocol status means the lease no longer
// exists from the coordinator's point of view: fenced out (412), or the
// job/lease path vanished (404, e.g. a restarted coordinator).
func leaseGone(status int) bool {
	return status == http.StatusPreconditionFailed || status == http.StatusNotFound
}

// protoError is a non-2xx protocol answer, carrying the envelope's code
// and message.
type protoError struct {
	status  int
	code    string
	message string
}

func (e *protoError) Error() string {
	return fmt.Sprintf("dispatch: coordinator answered %d %s: %s", e.status, e.code, e.message)
}

// statusOf extracts the protocol status from an error chain.
func statusOf(err error) (int, bool) {
	var pe *protoError
	if errors.As(err, &pe) {
		return pe.status, true
	}
	return 0, false
}

// doJSON issues one protocol request: JSON body in, envelope-aware JSON
// out. Returns the HTTP status (0 when the request never got an
// answer) and an error for transport failures or non-2xx responses.
func (w *Worker) doJSON(ctx context.Context, method, path, ifMatch string, in, out any) (int, error) {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return 0, fmt.Errorf("dispatch: encoding %s body: %w", path, err)
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.base+path, body)
	if err != nil {
		return 0, err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if ifMatch != "" {
		req.Header.Set("If-Match", ifMatch)
	}
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode >= 400 {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		_ = json.Unmarshal(data, &env)
		if env.Error.Code == "" {
			env.Error.Code = "error"
			env.Error.Message = strings.TrimSpace(string(data))
		}
		return resp.StatusCode, &protoError{
			status: resp.StatusCode, code: env.Error.Code, message: env.Error.Message,
		}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("dispatch: decoding %s answer: %w", path, err)
		}
	}
	return resp.StatusCode, nil
}
