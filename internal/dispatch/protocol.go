// Package dispatch distributes one pipeline run across worker
// processes: a coordinator partitions the study list into shards by the
// module-wide shard hash (store.ShardOf), leases each shard to a worker
// over a versioned HTTP/JSON protocol, and merges uploaded records into
// one store whose export is byte-identical to a single-process run of
// the same seed.
//
// The wire protocol speaks the same /v1 conventions as the dataset
// server (internal/api): uniform {"error":{"code","message"}}
// envelopes, snake_case payloads, ETag-stamped lease state with
// If-Match fencing, and cursor-paginated job listings.
//
//	GET  /v1/jobs?limit=&cursor=                    job listing (paginated)
//	GET  /v1/jobs/{job}                             job progress
//	POST /v1/jobs/{job}/leases                      acquire a shard lease
//	POST /v1/jobs/{job}/leases/{lease}/heartbeat    keep a lease alive
//	POST /v1/jobs/{job}/leases/{lease}/records      upload completed records
//	POST /v1/jobs/{job}/leases/{lease}/complete     finish a shard
//	GET  /v1/healthz, /v1/readyz                    probes (api.Health)
//	GET  /metrics, /debug/pprof/...                 observability
//
// Time never crosses the wire as an absolute value: leases are fenced
// by an epoch counter (exposed as the ETag), and durations travel as
// integer milliseconds — which is what keeps the protocol out of the
// nondetflow checker's way and the merged output deterministic.
package dispatch

import (
	"aipan/internal/core"
	"aipan/internal/store"
)

// JobSpec pins the run parameters every worker must share. The
// coordinator echoes it inside each lease grant, so a worker needs no
// out-of-band configuration beyond the coordinator URL.
type JobSpec struct {
	// Seed drives the synthetic universe (0 is resolved to the default
	// seed before the spec is served).
	Seed int64 `json:"seed"`
	// UniverseDomains scales the study universe (0 = the paper's).
	UniverseDomains int `json:"universe_domains,omitempty"`
	// Limit caps the study list (0 = all).
	Limit int `json:"limit,omitempty"`
	// Model names the chatbot workers annotate with.
	Model string `json:"model,omitempty"`
	// Shards is the partition width: domain d belongs to shard
	// store.ShardOf(d, Shards).
	Shards int `json:"shards"`
}

// Shard states reported in job status.
const (
	ShardPending = "pending"
	ShardLeased  = "leased"
	ShardDone    = "done"
)

// ShardStatus is one shard's progress within a job.
type ShardStatus struct {
	Shard            int    `json:"shard"`
	State            string `json:"state"`
	Worker           string `json:"worker,omitempty"`
	Epoch            int    `json:"epoch"`
	DoneDomains      int    `json:"done_domains"`
	TotalDomains     int    `json:"total_domains"`
	MissedHeartbeats int    `json:"missed_heartbeats,omitempty"`
}

// JobStatus is the GET /v1/jobs/{job} payload.
type JobStatus struct {
	ID          string        `json:"id"`
	Spec        JobSpec       `json:"spec"`
	State       string        `json:"state"` // running | done
	Domains     int           `json:"domains"`
	DoneDomains int           `json:"done_domains"`
	Shards      []ShardStatus `json:"shards"`
}

// JobSummary is one row of the GET /v1/jobs listing.
type JobSummary struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Domains     int    `json:"domains"`
	DoneDomains int    `json:"done_domains"`
}

// JobsPage is the cursor-paginated GET /v1/jobs payload.
type JobsPage struct {
	Jobs       []JobSummary `json:"jobs"`
	Total      int          `json:"total"`
	NextCursor string       `json:"next_cursor,omitempty"`
}

// LeaseRequest is the POST .../leases body.
type LeaseRequest struct {
	Worker string `json:"worker"`
}

// Lease responses.
const (
	LeaseGranted = "granted"
	LeaseWait    = "wait"
	LeaseJobDone = "done"
)

// LeaseGrant hands one shard to one worker. Epoch fences the lease:
// every mutating request must carry the grant's ETag in If-Match, and a
// reassigned shard (higher epoch) answers the old holder with 412.
type LeaseGrant struct {
	LeaseID string  `json:"lease_id"`
	Shard   int     `json:"shard"`
	Epoch   int     `json:"epoch"`
	ETag    string  `json:"etag"`
	Spec    JobSpec `json:"spec"`
	// TTLMillis is the heartbeat deadline: a lease silent for a full
	// TTL is reassigned. HeartbeatMillis (TTL/3) is the cadence the
	// worker should beat at.
	TTLMillis       int64 `json:"ttl_millis"`
	HeartbeatMillis int64 `json:"heartbeat_millis"`
	// DoneDomains lists this shard's domains already uploaded (by this
	// or a previous lease holder); the worker excludes them from its
	// pipeline run — resuming from the coordinator-side checkpoint.
	DoneDomains []string `json:"done_domains,omitempty"`
}

// LeaseResponse is the POST .../leases payload.
type LeaseResponse struct {
	Status string      `json:"status"` // granted | wait | done
	Grant  *LeaseGrant `json:"grant,omitempty"`
	// RetryAfterMillis tells a waiting worker when to poll again.
	RetryAfterMillis int64 `json:"retry_after_millis,omitempty"`
}

// RecordBatch is the POST .../records body: completed records and
// their funnel cells, index-aligned (cell i belongs to record i's
// domain). The coordinator slots each cell by domain so the end-of-run
// funnel folds in study-list order, exactly like a local run.
type RecordBatch struct {
	Records []store.Record    `json:"records"`
	Cells   []core.FunnelCell `json:"cells"`
}

// UploadResult is the POST .../records payload.
type UploadResult struct {
	Accepted  int `json:"accepted"`
	Duplicate int `json:"duplicate"`
}
