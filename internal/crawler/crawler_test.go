package crawler

import (
	"context"
	"strings"
	"testing"
	"time"

	"aipan/internal/russell"
	"aipan/internal/virtualweb"
	"aipan/internal/webgen"
)

func testCrawler(t *testing.T, cfg Config) (*Crawler, *webgen.Generator) {
	t.Helper()
	g := webgen.New(webgen.Seed, russell.UniqueDomains(russell.Universe(webgen.Seed)))
	cfg.Client = virtualweb.NewTransport(g).Client()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, g
}

func firstWithFailure(g *webgen.Generator, class webgen.FailureClass) *webgen.Site {
	for _, s := range g.Sites() {
		if s.Failure == class {
			return s
		}
	}
	return nil
}

func TestCrawlHealthySite(t *testing.T) {
	c, g := testCrawler(t, Config{})
	s := firstWithFailure(g, webgen.FailNone)
	res := c.CrawlDomain(context.Background(), s.Domain)
	if !res.Success {
		t.Fatalf("healthy site crawl failed: %+v", res)
	}
	if len(res.PrivacyPages) == 0 {
		t.Fatal("no privacy pages found")
	}
	found := false
	for _, p := range res.PrivacyPages {
		if strings.Contains(p.Body, "Privacy Policy") {
			found = true
		}
	}
	if !found {
		t.Error("no page contains the policy")
	}
	if res.PagesFetched() < 2 || res.PagesFetched() > 31 {
		t.Errorf("pages fetched = %d", res.PagesFetched())
	}
}

func TestCrawlFailureClasses(t *testing.T) {
	c, g := testCrawler(t, Config{})
	ctx := context.Background()
	for _, class := range []webgen.FailureClass{
		webgen.FailNoPolicy, webgen.FailBlocked, webgen.FailTimeout,
		webgen.FailOddLink, webgen.FailJSLink, webgen.FailConsentLink,
	} {
		s := firstWithFailure(g, class)
		if s == nil {
			t.Fatalf("no site with failure %s", class)
		}
		res := c.CrawlDomain(ctx, s.Domain)
		if res.Success {
			t.Errorf("crawl of %s site %s should fail, got %d privacy pages (pages: %d)",
				class, s.Domain, len(res.PrivacyPages), res.PagesFetched())
		}
	}
}

func TestCrawlSucceedsOnExtractionFailureClasses(t *testing.T) {
	// PDF / non-English / JS-only sites crawl fine (§4 counts them as
	// extraction failures, not crawl failures).
	c, g := testCrawler(t, Config{})
	ctx := context.Background()
	for _, class := range []webgen.FailureClass{
		webgen.FailPDFOnly, webgen.FailNonEnglish, webgen.FailJSOnly,
		webgen.FailImagePolicy, webgen.FailStub,
	} {
		s := firstWithFailure(g, class)
		res := c.CrawlDomain(ctx, s.Domain)
		if !res.Success {
			t.Errorf("crawl of %s site %s should succeed", class, s.Domain)
		}
		switch class {
		case webgen.FailPDFOnly:
			if res.PDFCount == 0 {
				t.Errorf("pdf site: PDFCount = 0")
			}
			if len(res.PrivacyPages) != 0 {
				t.Errorf("pdf site should yield no HTML privacy pages")
			}
		case webgen.FailNonEnglish:
			if res.NonEnglish == 0 {
				t.Errorf("non-english site: NonEnglish = 0 (pages %d)", len(res.PrivacyPages))
			}
		}
	}
}

func TestCrawlDedupsDuplicateContent(t *testing.T) {
	c, g := testCrawler(t, Config{})
	ctx := context.Background()
	// Find a site serving /privacy as a duplicate of the entry page.
	for _, s := range g.Sites() {
		if s.Failure != webgen.FailNone {
			continue
		}
		pages := g.RenderSite(s.Domain)
		entryDup := false
		for path, p := range pages {
			if path == "/privacy" && p.RedirectTo == "" && p.Status == 0 {
				entryDup = true
			}
		}
		if !entryDup || !s.Layout.WellKnownPrivacy {
			continue
		}
		res := c.CrawlDomain(ctx, s.Domain)
		if res.DuplicateCount == 0 {
			t.Errorf("site %s with duplicate /privacy: DuplicateCount = 0", s.Domain)
		}
		return
	}
	t.Skip("no duplicate-content site found")
}

func TestCrawlHubSite(t *testing.T) {
	c, g := testCrawler(t, Config{})
	for _, s := range g.Sites() {
		if s.Failure != webgen.FailNone || !s.Layout.Hub {
			continue
		}
		res := c.CrawlDomain(context.Background(), s.Domain)
		if !res.Success {
			t.Fatalf("hub site %s crawl failed", s.Domain)
		}
		// The actual policy sits one hop past the hub page.
		var gotStatement bool
		for _, p := range res.PrivacyPages {
			if strings.Contains(p.Path, "statement") {
				gotStatement = true
			}
		}
		if !gotStatement {
			t.Errorf("hub site %s: statement page not reached; pages: %+v", s.Domain, pagePaths(res))
		}
		return
	}
	t.Skip("no hub site")
}

func pagePaths(res *Result) []string {
	var out []string
	for _, p := range res.Pages {
		out = append(out, p.Path)
	}
	return out
}

func TestCrawlRespectsMaxPages(t *testing.T) {
	c, g := testCrawler(t, Config{MaxPages: 3})
	s := firstWithFailure(g, webgen.FailNone)
	res := c.CrawlDomain(context.Background(), s.Domain)
	if res.PagesFetched() > 3 {
		t.Errorf("fetched %d pages, cap 3", res.PagesFetched())
	}
}

func TestCrawlAblationSkipWellKnown(t *testing.T) {
	c, g := testCrawler(t, Config{SkipWellKnown: true, SkipFooter: true, SkipTopLinks: true})
	s := firstWithFailure(g, webgen.FailNone)
	res := c.CrawlDomain(context.Background(), s.Domain)
	if res.Success {
		t.Error("with all discovery disabled, no candidates should be fetched")
	}
	if res.PagesFetched() != 1 {
		t.Errorf("fetched %d pages, want homepage only", res.PagesFetched())
	}
}

func TestWellKnownProbeReporting(t *testing.T) {
	c, g := testCrawler(t, Config{})
	for _, s := range g.Sites() {
		if s.Failure != webgen.FailNone || !s.Layout.WellKnownPolicy {
			continue
		}
		res := c.CrawlDomain(context.Background(), s.Domain)
		if !res.WellKnownPolicyOK {
			t.Errorf("site %s serves /privacy-policy but probe reported failure", s.Domain)
		}
		return
	}
}

func TestCrawlAll(t *testing.T) {
	c, g := testCrawler(t, Config{})
	domains := g.Domains()[:12]
	results := c.CrawlAll(context.Background(), domains, 4)
	if len(results) != len(domains) {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r == nil || r.Domain != domains[i] {
			t.Errorf("result %d out of order: %+v", i, r)
		}
	}
}

func TestParseRobots(t *testing.T) {
	body := `
# comment
User-agent: *
Disallow: /private/
Disallow: /tmp

User-agent: aipan-research-crawler
Disallow: /no-bots/
`
	r := parseRobots(body, "aipan-research-crawler/1.0")
	if r.allowed("/no-bots/page") {
		t.Error("agent-specific rule ignored")
	}
	if !r.allowed("/private/x") {
		t.Error("star rule should not apply when agent group exists")
	}
	star := parseRobots(body, "otherbot")
	if star.allowed("/private/x") || star.allowed("/tmp") {
		t.Error("star rules not applied")
	}
	if !star.allowed("/public") {
		t.Error("allowed path blocked")
	}
	empty := parseRobots("", "x")
	if !empty.allowed("/anything") {
		t.Error("empty robots must allow all")
	}
}

func TestPrivacyLinkFilters(t *testing.T) {
	c, g := testCrawler(t, Config{})
	s := firstWithFailure(g, webgen.FailJSLink)
	res := c.CrawlDomain(context.Background(), s.Domain)
	for _, p := range res.Pages {
		if strings.HasPrefix(p.URL, "javascript:") {
			t.Error("crawler followed a javascript: link")
		}
	}
}

func BenchmarkCrawlDomain(b *testing.B) {
	g := webgen.New(webgen.Seed, russell.UniqueDomains(russell.Universe(webgen.Seed)))
	c, err := New(Config{Client: virtualweb.NewTransport(g).Client()})
	if err != nil {
		b.Fatal(err)
	}
	domains := g.Domains()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.CrawlDomain(context.Background(), domains[i%len(domains)])
	}
}

func TestCrawlPolitenessDelay(t *testing.T) {
	c, g := testCrawler(t, Config{Delay: 30 * time.Millisecond})
	s := firstWithFailure(g, webgen.FailNone)
	start := time.Now()
	res := c.CrawlDomain(context.Background(), s.Domain)
	elapsed := time.Since(start)
	if n := res.PagesFetched(); n > 1 {
		minimum := time.Duration(n-1) * 30 * time.Millisecond
		if elapsed < minimum {
			t.Errorf("crawl of %d pages took %v, politeness demands >= %v", n, elapsed, minimum)
		}
	}
}

func TestCrawlMaxBodyBytes(t *testing.T) {
	c, g := testCrawler(t, Config{MaxBodyBytes: 512})
	s := firstWithFailure(g, webgen.FailNone)
	res := c.CrawlDomain(context.Background(), s.Domain)
	for _, p := range res.Pages {
		if len(p.Body) > 512 {
			t.Errorf("page %s body %d bytes exceeds cap", p.URL, len(p.Body))
		}
	}
}

func TestCrawlerRequiresClient(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil client should be rejected")
	}
}
