// Package crawler implements the paper's privacy-policy crawler (§3.1):
// from a domain's homepage it follows up to three footer links containing
// the word "privacy", tries the well-known /privacy-policy and /privacy
// paths, then follows up to five "privacy" links from the top of each of
// those five pages — at most 31 pages per site. Candidate pages are
// deduplicated by content hash and filtered to English, yielding the
// domain's potential privacy pages.
//
// The crawler is a plain net/http client: point it at the real web or at
// the in-process synthetic web (internal/virtualweb).
package crawler

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"aipan/internal/engine"
	"aipan/internal/htmlx"
	"aipan/internal/langid"
	"aipan/internal/obs"
	"aipan/internal/textify"
)

// Config parameterizes a Crawler. The zero value plus a Client is a
// paper-faithful configuration.
type Config struct {
	// Client performs the HTTP requests. Required.
	Client *http.Client
	// UserAgent is sent on every request.
	UserAgent string
	// MaxFooterLinks caps footer privacy links followed (default 3).
	MaxFooterLinks int
	// MaxTopLinks caps top-of-page privacy links per seed page (default 5).
	MaxTopLinks int
	// MaxPages caps total fetched pages per site (default 31).
	MaxPages int
	// Delay is the politeness pause between same-site requests.
	Delay time.Duration
	// RespectRobots honors robots.txt Disallow rules (default off to match
	// the paper's measurement crawl; turn on for polite production use).
	RespectRobots bool
	// SkipWellKnown disables the /privacy-policy and /privacy probes (the
	// crawl-policy ablation).
	SkipWellKnown bool
	// SkipFooter disables footer-link discovery (ablation).
	SkipFooter bool
	// SkipTopLinks disables the second-hop expansion (ablation).
	SkipTopLinks bool
	// MaxBodyBytes caps response bodies read (default 4 MiB).
	MaxBodyBytes int64
	// Registry receives crawl metrics (default obs.Default()).
	Registry *obs.Registry
	// Logger, when set, receives per-fetch debug events and per-domain
	// warnings (failed homepages). Nil disables logging.
	Logger *obs.Logger
}

func (c Config) withDefaults() Config {
	if c.MaxFooterLinks == 0 {
		c.MaxFooterLinks = 3
	}
	if c.MaxTopLinks == 0 {
		c.MaxTopLinks = 5
	}
	if c.MaxPages == 0 {
		c.MaxPages = 31
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.UserAgent == "" {
		c.UserAgent = "aipan-research-crawler/1.0"
	}
	return c
}

// wellKnownPaths are probed on every domain (§3.1).
var wellKnownPaths = []string{"/privacy-policy", "/privacy"}

// Page is one fetched page.
type Page struct {
	// URL is the request URL; FinalURL reflects redirects.
	URL      string
	FinalURL string
	Path     string
	Status   int
	// ContentType is the response Content-Type (without parameters).
	ContentType string
	Body        string
	// FetchErr is a transport-level failure (timeout, refused, ...).
	FetchErr string
	// Candidate marks potential privacy pages (everything but the
	// homepage).
	Candidate bool
}

// OK reports a fetch that completed with a pre-error status (§3.1's
// "HTTP status code below 400").
func (p *Page) OK() bool { return p.FetchErr == "" && p.Status > 0 && p.Status < 400 }

// IsHTML reports an HTML content type.
func (p *Page) IsHTML() bool {
	return strings.HasPrefix(p.ContentType, "text/html") || p.ContentType == ""
}

// IsPDF reports a PDF body (a failure class the paper tracks).
func (p *Page) IsPDF() bool {
	return strings.HasPrefix(p.ContentType, "application/pdf") ||
		strings.HasPrefix(p.Body, "%PDF-")
}

// Result is a domain's crawl outcome.
type Result struct {
	Domain string
	// Pages lists every fetched page, homepage first.
	Pages []Page
	// Success means at least one candidate page returned status < 400.
	Success bool
	// PrivacyPages are the candidates that survive pre-processing: fetched
	// OK, HTML, deduplicated by content hash, and English.
	PrivacyPages []Page
	// NonEnglish/DuplicateCount/PDFCount record what pre-processing
	// removed.
	NonEnglish     int
	DuplicateCount int
	PDFCount       int
	// WellKnownPolicyOK / WellKnownPrivacyOK report whether the two probed
	// paths resolved (§3.1 footnote 3: 54.5% and 48.6%).
	WellKnownPolicyOK  bool
	WellKnownPrivacyOK bool
	// HomeErr is set when even the homepage could not be fetched.
	HomeErr string
}

// PagesFetched counts fetched pages including the homepage (the paper's
// 5.1 average).
func (r *Result) PagesFetched() int { return len(r.Pages) }

// HomeStatus reports the homepage HTTP status (0 when the crawl never
// fetched a homepage or the fetch failed at the transport layer).
func (r *Result) HomeStatus() int {
	if len(r.Pages) == 0 || r.Pages[0].FetchErr != "" {
		return 0
	}
	return r.Pages[0].Status
}

// HomeClass buckets the homepage fetch outcome ("2xx".."5xx", "error")
// the way the fetch metrics do — the flight recorder stores it per
// domain.
func (r *Result) HomeClass() string {
	if len(r.Pages) == 0 {
		return "error"
	}
	return statusClass(&r.Pages[0])
}

// Crawler crawls domains for privacy policies.
type Crawler struct {
	cfg Config
	met *metrics
	log *obs.Logger
	// fetch is the engine stage behind every concurrent fetch burst; the
	// per-site page budget (applied at planning time) bounds its fan-out.
	fetch *engine.Stage[*pageSlot, struct{}]
}

// metrics is the crawler's instrument set (see DESIGN.md §9).
type metrics struct {
	fetchDur        *obs.HistogramVec // by status class
	fetches         *obs.CounterVec   // by status class
	robotsDenied    *obs.Counter
	politenessWaits *obs.Counter
	politenessSecs  *obs.Counter
	domains         *obs.CounterVec // by outcome
	privacyPages    *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &metrics{
		fetchDur: reg.HistogramVec("aipan_crawler_fetch_duration_seconds",
			"Page fetch latency by HTTP status class.", nil, "status_class"),
		fetches: reg.CounterVec("aipan_crawler_fetches_total",
			"Pages fetched by HTTP status class (error = transport failure).", "status_class"),
		robotsDenied: reg.Counter("aipan_crawler_robots_denied_total",
			"Planned fetches dropped by robots.txt Disallow rules."),
		politenessWaits: reg.Counter("aipan_crawler_politeness_waits_total",
			"Politeness-delay pauses taken between same-site requests."),
		politenessSecs: reg.Counter("aipan_crawler_politeness_wait_seconds_total",
			"Total seconds spent in politeness-delay pauses."),
		domains: reg.CounterVec("aipan_crawler_domains_total",
			"Domains crawled by outcome (ok, no_policy, error).", "outcome"),
		privacyPages: reg.Counter("aipan_crawler_privacy_pages_total",
			"Deduplicated English privacy pages surviving pre-processing."),
	}
}

// statusClass buckets a fetched page for the fetch metrics.
func statusClass(p *Page) string {
	switch {
	case p.FetchErr != "":
		return "error"
	case p.Status >= 500:
		return "5xx"
	case p.Status >= 400:
		return "4xx"
	case p.Status >= 300:
		return "3xx"
	case p.Status >= 200:
		return "2xx"
	}
	return "1xx"
}

// New validates cfg and builds a Crawler.
func New(cfg Config) (*Crawler, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("crawler: Config.Client is required")
	}
	c := &Crawler{
		cfg: cfg.withDefaults(),
		met: newMetrics(cfg.Registry),
		log: cfg.Logger.With("crawler"),
	}
	c.fetch = engine.NewStage(cfg.Registry, "fetch", engine.Policy{Workers: engine.Unbounded},
		func(ctx context.Context, s *pageSlot) (struct{}, error) {
			c.fetchSlot(ctx, s)
			return struct{}{}, nil
		})
	return c, nil
}

// pageSlot is one planned fetch: the placeholder Page plus whether the
// fetch actually ran (a slot planned before a context cancellation may
// never execute, and then must not appear in Result.Pages — exactly like
// a sequential crawl that stopped at the same point).
type pageSlot struct {
	u       *url.URL
	page    *Page
	fetched bool
}

// crawlPlan is the per-domain bookkeeping of the stage-parallel crawl.
// Each stage first *plans* its fetches sequentially — applying the dedup,
// budget, and robots rules in the exact order a sequential crawl would —
// and then executes the planned fetches concurrently (or serially under a
// politeness delay). Because which URLs are fetched and the order of
// Result.Pages are fixed at planning time, the crawl outcome is
// byte-identical to a fully sequential run.
type crawlPlan struct {
	c       *Crawler
	rules   robotsRules
	planned map[string]*pageSlot // by normalized URL
	order   []*pageSlot          // first-plan order = sequential fetch order
	pending []*pageSlot          // planned in the current stage, not yet run
	done    int                  // fetches performed (politeness-gate state)
}

// plan applies the sequential admission rules for u and returns the
// placeholder page: an existing page for a duplicate URL, nil when the
// budget is exhausted or robots.txt disallows the path.
func (cp *crawlPlan) plan(u *url.URL, candidate bool) *Page {
	key := u.String()
	if s, ok := cp.planned[key]; ok {
		return s.page
	}
	if len(cp.planned) >= cp.c.cfg.MaxPages {
		return nil
	}
	if cp.c.cfg.RespectRobots && !cp.rules.allowed(u.Path) {
		cp.c.met.robotsDenied.Inc()
		cp.c.log.Debug("robots.txt denied fetch", "url", key)
		return nil
	}
	s := &pageSlot{u: u, page: &Page{URL: key, Path: u.Path, Candidate: candidate}}
	cp.planned[key] = s
	cp.order = append(cp.order, s)
	cp.pending = append(cp.pending, s)
	return s.page
}

// run executes the current stage's pending fetches. With no politeness
// delay the stage fans out through the crawler's engine fetch stage (the
// per-site page cap bounds the fan-out); with Delay > 0 it serializes,
// pausing between requests.
func (cp *crawlPlan) run(ctx context.Context) {
	pending := cp.pending
	cp.pending = nil
	if cp.c.cfg.Delay > 0 || len(pending) <= 1 {
		for _, s := range pending {
			if cp.done > 0 && cp.c.cfg.Delay > 0 {
				cp.c.met.politenessWaits.Inc()
				cp.c.met.politenessSecs.Add(cp.c.cfg.Delay.Seconds())
				if !engine.Sleep(ctx, cp.c.cfg.Delay) {
					return // canceled: remaining slots stay unfetched
				}
			}
			cp.c.fetchSlot(ctx, s)
			cp.done++
		}
		return
	}
	// Cancellation mid-stage leaves the unclaimed slots unfetched, exactly
	// like the serial path; the plan keeps them out of Result.Pages.
	_, _ = cp.c.fetch.Map(ctx, pending)
	cp.done += len(pending)
}

// fetchSlot performs the GET for one slot, preserving the planned
// Candidate flag. cp.done is updated by run, not here, so the concurrent
// path stays race-free.
func (c *Crawler) fetchSlot(ctx context.Context, s *pageSlot) {
	candidate := s.page.Candidate
	p := c.fetchPage(ctx, s.u)
	p.Candidate = candidate
	*s.page = *p
	s.fetched = true
}

// CrawlDomain runs the full discovery policy against one domain.
//
// The crawl is stage-parallel: the homepage is fetched alone (it seeds
// everything), then the seed set (footer links + well-known paths) is
// fetched concurrently, then the second-hop links are fetched
// concurrently. A politeness Delay > 0 serializes the fetches instead.
// See crawlPlan for why the result is identical to a sequential crawl.
func (c *Crawler) CrawlDomain(ctx context.Context, domain string) *Result {
	res := &Result{Domain: domain}
	base := &url.URL{Scheme: "http", Host: domain, Path: "/"}

	var rules robotsRules
	if c.cfg.RespectRobots {
		rules = c.fetchRobots(ctx, domain)
	}

	cp := &crawlPlan{c: c, rules: rules, planned: map[string]*pageSlot{}}

	home := cp.plan(base, false)
	cp.run(ctx)
	if home == nil {
		res.HomeErr = "crawl budget exhausted"
		return res
	}
	if home.FetchErr != "" {
		res.HomeErr = home.FetchErr
	}

	// Seed set: up to 3 footer privacy links + the two well-known paths.
	var seeds []*url.URL
	if !c.cfg.SkipFooter && home.OK() && home.IsHTML() {
		doc := htmlx.Parse(home.Body)
		links := privacyLinks(doc, base)
		if n := len(links); n > c.cfg.MaxFooterLinks {
			links = links[n-c.cfg.MaxFooterLinks:] // bottom-most
		}
		seeds = append(seeds, links...)
	}
	if !c.cfg.SkipWellKnown {
		for _, path := range wellKnownPaths {
			u := *base
			u.Path = path
			seeds = append(seeds, &u)
		}
	}

	// Plan the whole seed stage, then fetch it in one concurrent burst.
	type seedRef struct {
		path string // request path (pre-redirect), for the well-known probes
		page *Page
	}
	var seedRefs []seedRef
	for _, s := range seeds {
		if sameURL(s, base) {
			continue
		}
		if p := cp.plan(s, true); p != nil {
			seedRefs = append(seedRefs, seedRef{path: s.Path, page: p})
		}
	}
	cp.run(ctx)

	var seedPages []*Page
	for _, sr := range seedRefs {
		seedPages = append(seedPages, sr.page)
		switch sr.path {
		case "/privacy-policy":
			res.WellKnownPolicyOK = sr.page.OK()
		case "/privacy":
			res.WellKnownPrivacyOK = sr.page.OK()
		}
	}

	// Second hop: up to 5 privacy links from the top of each seed page,
	// planned in seed order, fetched concurrently.
	if !c.cfg.SkipTopLinks {
		for _, sp := range seedPages {
			if !sp.OK() || !sp.IsHTML() {
				continue
			}
			doc := htmlx.Parse(sp.Body)
			links := privacyLinks(doc, mustParse(sp.FinalURL, domain))
			if len(links) > c.cfg.MaxTopLinks {
				links = links[:c.cfg.MaxTopLinks] // top-most
			}
			for _, l := range links {
				if sameURL(l, base) {
					continue
				}
				cp.plan(l, true)
			}
		}
		cp.run(ctx)
	}

	// Pages appear in planning order — the order a sequential crawl would
	// have fetched them — skipping slots a cancellation left unfetched.
	for _, s := range cp.order {
		if s.fetched {
			res.Pages = append(res.Pages, *s.page)
		}
	}

	c.postProcess(res)
	switch {
	case res.Success:
		c.met.domains.With("ok").Inc()
	case res.HomeErr != "":
		c.met.domains.With("error").Inc()
		c.log.Warn("domain crawl failed", "domain", domain, "err", res.HomeErr)
	default:
		c.met.domains.With("no_policy").Inc()
	}
	c.met.privacyPages.Add(float64(len(res.PrivacyPages)))
	return res
}

// postProcess computes success and the deduplicated English privacy pages.
func (c *Crawler) postProcess(res *Result) {
	seenHash := map[[32]byte]bool{}
	for i := range res.Pages {
		p := &res.Pages[i]
		if !p.Candidate || !p.OK() {
			continue
		}
		res.Success = true
		if p.IsPDF() {
			res.PDFCount++
			continue
		}
		if !p.IsHTML() {
			continue
		}
		h := sha256.Sum256([]byte(p.Body))
		if seenHash[h] {
			res.DuplicateCount++
			continue
		}
		seenHash[h] = true
		text := textify.RenderHTML(p.Body).Text()
		if strings.TrimSpace(text) != "" && !langid.IsEnglish(text) {
			res.NonEnglish++
			continue
		}
		res.PrivacyPages = append(res.PrivacyPages, *p)
	}
}

// fetchPage performs one GET, recording latency and status-class metrics.
func (c *Crawler) fetchPage(ctx context.Context, u *url.URL) *Page {
	start := time.Now()
	p := c.doFetch(ctx, u)
	class := statusClass(p)
	c.met.fetchDur.With(class).Observe(time.Since(start).Seconds())
	c.met.fetches.With(class).Inc()
	if p.FetchErr != "" {
		c.log.Debug("fetch failed", "url", p.URL, "err", p.FetchErr)
	}
	return p
}

func (c *Crawler) doFetch(ctx context.Context, u *url.URL) *Page {
	p := &Page{URL: u.String(), Path: u.Path}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		p.FetchErr = err.Error()
		return p
	}
	req.Header.Set("User-Agent", c.cfg.UserAgent)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		p.FetchErr = err.Error()
		return p
	}
	defer resp.Body.Close()
	p.Status = resp.StatusCode
	p.FinalURL = resp.Request.URL.String()
	p.Path = resp.Request.URL.Path // reflect redirects
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	p.ContentType = strings.TrimSpace(ct)
	body, err := readBody(resp, c.cfg.MaxBodyBytes)
	if err != nil {
		p.FetchErr = err.Error()
		return p
	}
	p.Body = string(body)
	return p
}

// readBody reads at most max bytes of the response body. When the server
// declares a credible Content-Length the buffer is allocated at full size
// up front — io.ReadAll's grow-from-512 doubling was one of the crawl
// path's largest allocation sources.
func readBody(resp *http.Response, max int64) ([]byte, error) {
	lr := io.LimitReader(resp.Body, max)
	n := resp.ContentLength
	if n < 0 || n > max {
		return io.ReadAll(lr)
	}
	// One spare byte so the final EOF-detecting read has room without
	// triggering a growth cycle.
	buf := make([]byte, 0, n+1)
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		m, err := lr.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+m]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func (c *Crawler) fetchRobots(ctx context.Context, domain string) robotsRules {
	u := &url.URL{Scheme: "http", Host: domain, Path: "/robots.txt"}
	p := c.fetchPage(ctx, u)
	if !p.OK() {
		return robotsRules{}
	}
	return parseRobots(p.Body, c.cfg.UserAgent)
}

// privacyLinks extracts same-host links whose text or href contains
// "privacy", resolved against base, in document order, deduplicated.
func privacyLinks(doc *htmlx.Node, base *url.URL) []*url.URL {
	var out []*url.URL
	seen := map[string]bool{}
	for _, l := range htmlx.ExtractLinks(doc) {
		if !strings.Contains(strings.ToLower(l.Text), "privacy") &&
			!strings.Contains(strings.ToLower(l.Href), "privacy") {
			continue
		}
		href := strings.TrimSpace(l.Href)
		low := strings.ToLower(href)
		if strings.HasPrefix(low, "javascript:") || strings.HasPrefix(low, "mailto:") ||
			strings.HasPrefix(low, "tel:") || strings.HasPrefix(href, "#") {
			continue
		}
		u, err := base.Parse(href)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
			continue
		}
		if !strings.EqualFold(stripWWW(u.Host), stripWWW(base.Host)) {
			continue
		}
		u.Fragment = ""
		key := u.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, u)
	}
	return out
}

func stripWWW(h string) string {
	return strings.TrimPrefix(strings.ToLower(h), "www.")
}

func sameURL(a, b *url.URL) bool {
	pa, pb := a.Path, b.Path
	if pa == "" {
		pa = "/"
	}
	if pb == "" {
		pb = "/"
	}
	return strings.EqualFold(stripWWW(a.Host), stripWWW(b.Host)) && pa == pb
}

func mustParse(raw, fallbackHost string) *url.URL {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return &url.URL{Scheme: "http", Host: fallbackHost, Path: "/"}
	}
	return u
}

// CrawlAll crawls domains with a bounded worker pool, preserving input
// order in the result slice. Domains a cancellation left uncrawled get a
// placeholder Result carrying the context error.
func (c *Crawler) CrawlAll(ctx context.Context, domains []string, workers int) []*Result {
	if workers < 1 {
		workers = 1
	}
	stage := engine.NewStage(c.cfg.Registry, "crawl", engine.Policy{Workers: workers},
		func(ctx context.Context, domain string) (*Result, error) {
			return c.CrawlDomain(ctx, domain), nil
		})
	results, _ := stage.Map(ctx, domains)
	for i := range results {
		if results[i] == nil {
			results[i] = &Result{Domain: domains[i], HomeErr: ctx.Err().Error()}
		}
	}
	return results
}
