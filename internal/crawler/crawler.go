// Package crawler implements the paper's privacy-policy crawler (§3.1):
// from a domain's homepage it follows up to three footer links containing
// the word "privacy", tries the well-known /privacy-policy and /privacy
// paths, then follows up to five "privacy" links from the top of each of
// those five pages — at most 31 pages per site. Candidate pages are
// deduplicated by content hash and filtered to English, yielding the
// domain's potential privacy pages.
//
// The crawler is a plain net/http client: point it at the real web or at
// the in-process synthetic web (internal/virtualweb).
package crawler

import (
	"context"
	"crypto/sha256"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"time"

	"aipan/internal/htmlx"
	"aipan/internal/langid"
	"aipan/internal/textify"
)

// Config parameterizes a Crawler. The zero value plus a Client is a
// paper-faithful configuration.
type Config struct {
	// Client performs the HTTP requests. Required.
	Client *http.Client
	// UserAgent is sent on every request.
	UserAgent string
	// MaxFooterLinks caps footer privacy links followed (default 3).
	MaxFooterLinks int
	// MaxTopLinks caps top-of-page privacy links per seed page (default 5).
	MaxTopLinks int
	// MaxPages caps total fetched pages per site (default 31).
	MaxPages int
	// Delay is the politeness pause between same-site requests.
	Delay time.Duration
	// RespectRobots honors robots.txt Disallow rules (default off to match
	// the paper's measurement crawl; turn on for polite production use).
	RespectRobots bool
	// SkipWellKnown disables the /privacy-policy and /privacy probes (the
	// crawl-policy ablation).
	SkipWellKnown bool
	// SkipFooter disables footer-link discovery (ablation).
	SkipFooter bool
	// SkipTopLinks disables the second-hop expansion (ablation).
	SkipTopLinks bool
	// MaxBodyBytes caps response bodies read (default 4 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.MaxFooterLinks == 0 {
		c.MaxFooterLinks = 3
	}
	if c.MaxTopLinks == 0 {
		c.MaxTopLinks = 5
	}
	if c.MaxPages == 0 {
		c.MaxPages = 31
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.UserAgent == "" {
		c.UserAgent = "aipan-research-crawler/1.0"
	}
	return c
}

// wellKnownPaths are probed on every domain (§3.1).
var wellKnownPaths = []string{"/privacy-policy", "/privacy"}

// Page is one fetched page.
type Page struct {
	// URL is the request URL; FinalURL reflects redirects.
	URL      string
	FinalURL string
	Path     string
	Status   int
	// ContentType is the response Content-Type (without parameters).
	ContentType string
	Body        string
	// FetchErr is a transport-level failure (timeout, refused, ...).
	FetchErr string
	// Candidate marks potential privacy pages (everything but the
	// homepage).
	Candidate bool
}

// OK reports a fetch that completed with a pre-error status (§3.1's
// "HTTP status code below 400").
func (p *Page) OK() bool { return p.FetchErr == "" && p.Status > 0 && p.Status < 400 }

// IsHTML reports an HTML content type.
func (p *Page) IsHTML() bool {
	return strings.HasPrefix(p.ContentType, "text/html") || p.ContentType == ""
}

// IsPDF reports a PDF body (a failure class the paper tracks).
func (p *Page) IsPDF() bool {
	return strings.HasPrefix(p.ContentType, "application/pdf") ||
		strings.HasPrefix(p.Body, "%PDF-")
}

// Result is a domain's crawl outcome.
type Result struct {
	Domain string
	// Pages lists every fetched page, homepage first.
	Pages []Page
	// Success means at least one candidate page returned status < 400.
	Success bool
	// PrivacyPages are the candidates that survive pre-processing: fetched
	// OK, HTML, deduplicated by content hash, and English.
	PrivacyPages []Page
	// NonEnglish/DuplicateCount/PDFCount record what pre-processing
	// removed.
	NonEnglish     int
	DuplicateCount int
	PDFCount       int
	// WellKnownPolicyOK / WellKnownPrivacyOK report whether the two probed
	// paths resolved (§3.1 footnote 3: 54.5% and 48.6%).
	WellKnownPolicyOK  bool
	WellKnownPrivacyOK bool
	// HomeErr is set when even the homepage could not be fetched.
	HomeErr string
}

// PagesFetched counts fetched pages including the homepage (the paper's
// 5.1 average).
func (r *Result) PagesFetched() int { return len(r.Pages) }

// Crawler crawls domains for privacy policies.
type Crawler struct {
	cfg Config
}

// New validates cfg and builds a Crawler.
func New(cfg Config) (*Crawler, error) {
	if cfg.Client == nil {
		return nil, fmt.Errorf("crawler: Config.Client is required")
	}
	return &Crawler{cfg: cfg.withDefaults()}, nil
}

// CrawlDomain runs the full discovery policy against one domain.
func (c *Crawler) CrawlDomain(ctx context.Context, domain string) *Result {
	res := &Result{Domain: domain}
	base := &url.URL{Scheme: "http", Host: domain, Path: "/"}

	var rules robotsRules
	if c.cfg.RespectRobots {
		rules = c.fetchRobots(ctx, domain)
	}

	fetched := map[string]*Page{} // by normalized URL
	fetch := func(u *url.URL, candidate bool) *Page {
		key := u.String()
		if p, ok := fetched[key]; ok {
			return p
		}
		if len(fetched) >= c.cfg.MaxPages {
			return nil
		}
		if c.cfg.RespectRobots && !rules.allowed(u.Path) {
			return nil
		}
		if c.cfg.Delay > 0 && len(fetched) > 0 {
			select {
			case <-time.After(c.cfg.Delay):
			case <-ctx.Done():
				return nil
			}
		}
		p := c.fetchPage(ctx, u)
		p.Candidate = candidate
		fetched[key] = p
		res.Pages = append(res.Pages, *p)
		return p
	}

	home := fetch(base, false)
	if home == nil {
		res.HomeErr = "crawl budget exhausted"
		return res
	}
	if home.FetchErr != "" {
		res.HomeErr = home.FetchErr
	}

	// Seed set: up to 3 footer privacy links + the two well-known paths.
	var seeds []*url.URL
	if !c.cfg.SkipFooter && home.OK() && home.IsHTML() {
		doc := htmlx.Parse(home.Body)
		links := privacyLinks(doc, base)
		if n := len(links); n > c.cfg.MaxFooterLinks {
			links = links[n-c.cfg.MaxFooterLinks:] // bottom-most
		}
		seeds = append(seeds, links...)
	}
	if !c.cfg.SkipWellKnown {
		for _, path := range wellKnownPaths {
			u := *base
			u.Path = path
			seeds = append(seeds, &u)
		}
	}

	var seedPages []*Page
	for _, s := range seeds {
		if sameURL(s, base) {
			continue
		}
		if p := fetch(s, true); p != nil {
			seedPages = append(seedPages, p)
			switch s.Path {
			case "/privacy-policy":
				res.WellKnownPolicyOK = p.OK()
			case "/privacy":
				res.WellKnownPrivacyOK = p.OK()
			}
		}
	}

	// Second hop: up to 5 privacy links from the top of each seed page.
	if !c.cfg.SkipTopLinks {
		for _, sp := range seedPages {
			if !sp.OK() || !sp.IsHTML() {
				continue
			}
			doc := htmlx.Parse(sp.Body)
			links := privacyLinks(doc, mustParse(sp.FinalURL, domain))
			if len(links) > c.cfg.MaxTopLinks {
				links = links[:c.cfg.MaxTopLinks] // top-most
			}
			for _, l := range links {
				if sameURL(l, base) {
					continue
				}
				fetch(l, true)
			}
		}
	}

	c.postProcess(res)
	return res
}

// postProcess computes success and the deduplicated English privacy pages.
func (c *Crawler) postProcess(res *Result) {
	seenHash := map[[32]byte]bool{}
	for i := range res.Pages {
		p := &res.Pages[i]
		if !p.Candidate || !p.OK() {
			continue
		}
		res.Success = true
		if p.IsPDF() {
			res.PDFCount++
			continue
		}
		if !p.IsHTML() {
			continue
		}
		h := sha256.Sum256([]byte(p.Body))
		if seenHash[h] {
			res.DuplicateCount++
			continue
		}
		seenHash[h] = true
		text := textify.RenderHTML(p.Body).Text()
		if strings.TrimSpace(text) != "" && !langid.IsEnglish(text) {
			res.NonEnglish++
			continue
		}
		res.PrivacyPages = append(res.PrivacyPages, *p)
	}
}

// fetchPage performs one GET.
func (c *Crawler) fetchPage(ctx context.Context, u *url.URL) *Page {
	p := &Page{URL: u.String(), Path: u.Path}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		p.FetchErr = err.Error()
		return p
	}
	req.Header.Set("User-Agent", c.cfg.UserAgent)
	resp, err := c.cfg.Client.Do(req)
	if err != nil {
		p.FetchErr = err.Error()
		return p
	}
	defer resp.Body.Close()
	p.Status = resp.StatusCode
	p.FinalURL = resp.Request.URL.String()
	p.Path = resp.Request.URL.Path // reflect redirects
	ct := resp.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	p.ContentType = strings.TrimSpace(ct)
	body, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		p.FetchErr = err.Error()
		return p
	}
	p.Body = string(body)
	return p
}

func (c *Crawler) fetchRobots(ctx context.Context, domain string) robotsRules {
	u := &url.URL{Scheme: "http", Host: domain, Path: "/robots.txt"}
	p := c.fetchPage(ctx, u)
	if !p.OK() {
		return robotsRules{}
	}
	return parseRobots(p.Body, c.cfg.UserAgent)
}

// privacyLinks extracts same-host links whose text or href contains
// "privacy", resolved against base, in document order, deduplicated.
func privacyLinks(doc *htmlx.Node, base *url.URL) []*url.URL {
	var out []*url.URL
	seen := map[string]bool{}
	for _, l := range htmlx.ExtractLinks(doc) {
		if !strings.Contains(strings.ToLower(l.Text), "privacy") &&
			!strings.Contains(strings.ToLower(l.Href), "privacy") {
			continue
		}
		href := strings.TrimSpace(l.Href)
		low := strings.ToLower(href)
		if strings.HasPrefix(low, "javascript:") || strings.HasPrefix(low, "mailto:") ||
			strings.HasPrefix(low, "tel:") || strings.HasPrefix(href, "#") {
			continue
		}
		u, err := base.Parse(href)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") {
			continue
		}
		if !strings.EqualFold(stripWWW(u.Host), stripWWW(base.Host)) {
			continue
		}
		u.Fragment = ""
		key := u.String()
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, u)
	}
	return out
}

func stripWWW(h string) string {
	return strings.TrimPrefix(strings.ToLower(h), "www.")
}

func sameURL(a, b *url.URL) bool {
	pa, pb := a.Path, b.Path
	if pa == "" {
		pa = "/"
	}
	if pb == "" {
		pb = "/"
	}
	return strings.EqualFold(stripWWW(a.Host), stripWWW(b.Host)) && pa == pb
}

func mustParse(raw, fallbackHost string) *url.URL {
	u, err := url.Parse(raw)
	if err != nil || u.Host == "" {
		return &url.URL{Scheme: "http", Host: fallbackHost, Path: "/"}
	}
	return u
}

// CrawlAll crawls domains with a bounded worker pool, preserving input
// order in the result slice.
func (c *Crawler) CrawlAll(ctx context.Context, domains []string, workers int) []*Result {
	if workers < 1 {
		workers = 1
	}
	results := make([]*Result, len(domains))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = c.CrawlDomain(ctx, domains[i])
			}
		}()
	}
	for i := range domains {
		select {
		case jobs <- i:
		case <-ctx.Done():
			i = len(domains)
		}
	}
	close(jobs)
	wg.Wait()
	for i := range results {
		if results[i] == nil {
			results[i] = &Result{Domain: domains[i], HomeErr: ctx.Err().Error()}
		}
	}
	return results
}
