package crawler

import (
	"strings"
)

// robotsRules is a minimal robots.txt policy: the Disallow rules that
// apply to our user agent (or *).
type robotsRules struct {
	disallow []string
}

// parseRobots extracts the rules for the given agent, falling back to the
// "*" group. It implements the subset of the robots exclusion protocol a
// polite research crawler needs: User-agent groups and Disallow prefixes
// (Allow lines and wildcards are treated conservatively: a matching
// Disallow wins).
func parseRobots(body, agent string) robotsRules {
	agent = strings.ToLower(agent)
	var starRules, agentRules []string
	var inStar, inAgent, agentSeen bool
	for _, raw := range strings.Split(body, "\n") {
		line := strings.TrimSpace(raw)
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			continue
		}
		i := strings.IndexByte(line, ':')
		if i < 0 {
			continue
		}
		field := strings.ToLower(strings.TrimSpace(line[:i]))
		value := strings.TrimSpace(line[i+1:])
		switch field {
		case "user-agent":
			ua := strings.ToLower(value)
			inStar = ua == "*"
			inAgent = ua != "*" && (strings.Contains(agent, ua) || strings.Contains(ua, agent))
			if inAgent {
				agentSeen = true
			}
		case "disallow":
			if value == "" {
				continue
			}
			if inAgent {
				agentRules = append(agentRules, value)
			} else if inStar {
				starRules = append(starRules, value)
			}
		}
	}
	if agentSeen {
		return robotsRules{disallow: agentRules}
	}
	return robotsRules{disallow: starRules}
}

// allowed reports whether the path may be fetched.
func (r robotsRules) allowed(path string) bool {
	if path == "" {
		path = "/"
	}
	for _, d := range r.disallow {
		if strings.HasPrefix(path, d) {
			return false
		}
	}
	return true
}
