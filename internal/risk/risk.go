// Package risk implements the downstream analyses the paper's conclusion
// motivates (§6): once policies are normalized annotations, "a variety of
// statistical analyses such as trends, policy peer group comparisons,
// policy quality evaluations, as well as legal exposure risk analysis"
// become straightforward. The scorer turns a company's annotations into
// an interpretable privacy-exposure score with peer-group (sector)
// percentiles.
package risk

import (
	"fmt"
	"sort"

	"aipan/internal/stats"
	"aipan/internal/store"
	"aipan/internal/taxonomy"
)

// Weights parameterizes the scoring model. All weights are in score
// points; exposures add, safeguards subtract.
type Weights struct {
	// CategorySensitivity scores each collected data-type category; unseen
	// categories fall back to DefaultCategory.
	CategorySensitivity map[string]float64
	DefaultCategory     float64
	// PurposeExposure scores collection purposes (third-party use weighs
	// most).
	PurposeExposure map[string]float64
	// SellingPenalty applies when data is explicitly sold ("data for
	// sale").
	SellingPenalty float64
	// ProtectionCredit rewards each distinct specific protection practice.
	ProtectionCredit float64
	// RightsCredit rewards each distinct user-access right.
	RightsCredit float64
	// OptInCredit rewards consent-before-collection.
	OptInCredit float64
	// StatedRetentionCredit rewards an explicit retention period;
	// IndefiniteRetentionPenalty punishes indefinite retention.
	StatedRetentionCredit      float64
	IndefiniteRetentionPenalty float64
	// VaguenessPenalty applies when a policy has collection but no
	// handling or rights disclosures at all.
	VaguenessPenalty float64
}

// DefaultWeights returns a sensitivity model aligned with common
// regulatory treatment: biometric/health/financial data are "special
// category"-grade; behavioral tracking is mid-tier; operational contact
// data is low.
func DefaultWeights() Weights {
	return Weights{
		CategorySensitivity: map[string]float64{
			"Biometric data":          5,
			"Medical info":            5,
			"Fitness & health":        4,
			"Physical characteristic": 3,
			"Social security number":  5,
			"Personal identifier":     3,
			"Financial info":          4,
			"Financial capability":    4,
			"Insurance info":          3,
			"Legal info":              4,
			"Precise location":        4,
			"Approximate location":    2,
			"Travel data":             2,
			"Physical interaction":    2,
			"Contact info":            1,
			"Professional info":       2,
			"Demographic info":        2,
			"Educational info":        2,
			"Vehicle info":            2,
			"Device info":             1,
			"Online identifier":       1,
			"Account info":            2,
			"Network connectivity":    1,
			"Social media data":       2,
			"External data":           3,
			"Internet usage":          2,
			"Tracking data":           2,
			"Product/service usage":   1,
			"Transaction info":        2,
			"Preferences":             1,
			"Content generation":      2,
			"Communication data":      3,
			"Feedback data":           1,
			"Content consumption":     2,
			"Diagnostic data":         1,
		},
		DefaultCategory: 2,
		PurposeExposure: map[string]float64{
			"Advertising & sales":  3,
			"Data sharing":         4,
			"Analytics & research": 1,
		},
		SellingPenalty:             6,
		ProtectionCredit:           1.5,
		RightsCredit:               1,
		OptInCredit:                2,
		StatedRetentionCredit:      1.5,
		IndefiniteRetentionPenalty: 2,
		VaguenessPenalty:           4,
	}
}

// Score is one company's privacy-exposure assessment.
type Score struct {
	Domain  string
	Company string
	Sector  string
	// Collection is the data-sensitivity exposure (sum of distinct
	// category sensitivities).
	Collection float64
	// Purpose is the third-party/analytics exposure.
	Purpose float64
	// Safeguards is the credit earned from protections, rights, opt-in,
	// and stated retention (positive = good).
	Safeguards float64
	// Penalties collects selling/indefinite-retention/vagueness hits.
	Penalties float64
	// Total = Collection + Purpose + Penalties − Safeguards, floored at 0.
	Total float64
	// SectorPercentile ranks Total within the company's sector
	// (1.0 = riskiest in peer group). Filled by ScoreAll.
	SectorPercentile float64
}

// ScoreRecord scores one annotated dataset record.
func ScoreRecord(rec *store.Record, w Weights) Score {
	s := Score{Domain: rec.Domain, Company: rec.Company, Sector: rec.SectorAbbrev}
	seenCat := map[string]bool{}
	seenPurpose := map[string]bool{}
	protections := map[string]bool{}
	rights := map[string]bool{}
	var optIn, statedRetention, indefinite, selling bool
	var anyHandling, anyRights bool

	for _, a := range rec.Annotations {
		switch a.Aspect {
		case "types":
			if !seenCat[a.Category] {
				seenCat[a.Category] = true
				if v, ok := w.CategorySensitivity[a.Category]; ok {
					s.Collection += v
				} else {
					s.Collection += w.DefaultCategory
				}
			}
		case "purposes":
			if !seenPurpose[a.Category] {
				seenPurpose[a.Category] = true
				s.Purpose += w.PurposeExposure[a.Category]
			}
			if a.Descriptor == "data for sale" {
				selling = true
			}
		case "handling":
			anyHandling = true
			switch {
			case a.Meta == taxonomy.GroupProtection && a.Category != taxonomy.ProtectionGeneric:
				protections[a.Category] = true
			case a.Category == taxonomy.RetentionStated:
				statedRetention = true
			case a.Category == taxonomy.RetentionIndefinitely:
				indefinite = true
			}
		case "rights":
			anyRights = true
			if a.Meta == taxonomy.GroupAccess {
				rights[a.Category] = true
			}
			if a.Category == taxonomy.ChoiceOptIn {
				optIn = true
			}
		}
	}

	s.Safeguards = float64(len(protections))*w.ProtectionCredit +
		float64(len(rights))*w.RightsCredit
	if optIn {
		s.Safeguards += w.OptInCredit
	}
	if statedRetention {
		s.Safeguards += w.StatedRetentionCredit
	}
	if selling {
		s.Penalties += w.SellingPenalty
	}
	if indefinite {
		s.Penalties += w.IndefiniteRetentionPenalty
	}
	if len(seenCat) > 0 && !anyHandling && !anyRights {
		s.Penalties += w.VaguenessPenalty
	}
	s.Total = s.Collection + s.Purpose + s.Penalties - s.Safeguards
	if s.Total < 0 {
		s.Total = 0
	}
	return s
}

// ScoreAll scores every annotated record and fills sector percentiles,
// returning scores sorted by Total descending.
func ScoreAll(records []store.Record, w Weights) []Score {
	var scores []Score
	bySector := map[string][]int{}
	for i := range records {
		if !records[i].Annotated() {
			continue
		}
		s := ScoreRecord(&records[i], w)
		bySector[s.Sector] = append(bySector[s.Sector], len(scores))
		scores = append(scores, s)
	}
	for _, idxs := range bySector {
		sorted := append([]int(nil), idxs...)
		sort.Slice(sorted, func(a, b int) bool {
			return scores[sorted[a]].Total < scores[sorted[b]].Total
		})
		n := len(sorted)
		for rank, i := range sorted {
			if n > 1 {
				scores[i].SectorPercentile = float64(rank) / float64(n-1)
			} else {
				scores[i].SectorPercentile = 0.5
			}
		}
	}
	sort.Slice(scores, func(i, j int) bool {
		if scores[i].Total != scores[j].Total {
			return scores[i].Total > scores[j].Total
		}
		return scores[i].Domain < scores[j].Domain
	})
	return scores
}

// SectorTable summarizes exposure by sector (the paper's peer-group
// comparison).
func SectorTable(scores []Score) *stats.Table {
	bySector := map[string][]float64{}
	for _, s := range scores {
		bySector[s.Sector] = append(bySector[s.Sector], s.Total)
	}
	type row struct {
		sector string
		mean   float64
		vals   []float64
	}
	var rows []row
	for sec, vals := range bySector {
		rows = append(rows, row{sec, stats.Mean(vals), vals})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].mean > rows[j].mean })
	t := &stats.Table{
		Title:   "Privacy-exposure by sector (peer-group comparison)",
		Headers: []string{"Sector", "Companies", "Mean score", "Median", "P90"},
	}
	for _, r := range rows {
		t.AddRow(r.sector,
			fmt.Sprintf("%d", len(r.vals)),
			fmt.Sprintf("%.1f", r.mean),
			fmt.Sprintf("%.1f", stats.Median(r.vals)),
			fmt.Sprintf("%.1f", stats.Quantile(r.vals, 0.9)))
	}
	return t
}

// TopTable lists the n riskiest companies.
func TopTable(scores []Score, n int) *stats.Table {
	t := &stats.Table{
		Title:   fmt.Sprintf("Top %d privacy-exposure scores", n),
		Headers: []string{"Company", "Sector", "Collection", "Purpose", "Safeguards", "Penalties", "Total", "Sector pct"},
	}
	for i, s := range scores {
		if i >= n {
			break
		}
		t.AddRow(s.Company, s.Sector,
			fmt.Sprintf("%.1f", s.Collection),
			fmt.Sprintf("%.1f", s.Purpose),
			fmt.Sprintf("%.1f", s.Safeguards),
			fmt.Sprintf("%.1f", s.Penalties),
			fmt.Sprintf("%.1f", s.Total),
			fmt.Sprintf("%.2f", s.SectorPercentile))
	}
	return t
}
