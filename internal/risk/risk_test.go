package risk

import (
	"strings"
	"testing"

	"aipan/internal/annotate"
	"aipan/internal/store"
)

func recordWith(anns ...annotate.Annotation) store.Record {
	return store.Record{
		Domain: "x.example.com", Company: "X Corp", Sector: "Financials",
		SectorAbbrev: "FS", Annotations: anns,
	}
}

func typeAnn(cat string) annotate.Annotation {
	return annotate.Annotation{Aspect: "types", Meta: "m", Category: cat, Descriptor: "d", Text: "t"}
}

func TestSensitiveDataScoresHigher(t *testing.T) {
	w := DefaultWeights()
	low := recordWith(typeAnn("Contact info"))
	high := recordWith(typeAnn("Biometric data"), typeAnn("Medical info"))
	sl := ScoreRecord(&low, w)
	sh := ScoreRecord(&high, w)
	if sh.Total <= sl.Total {
		t.Errorf("biometric+medical (%.1f) should outscore contact info (%.1f)", sh.Total, sl.Total)
	}
}

func TestDuplicateCategoriesCountOnce(t *testing.T) {
	w := DefaultWeights()
	one := recordWith(typeAnn("Medical info"))
	two := recordWith(typeAnn("Medical info"), typeAnn("Medical info"))
	if ScoreRecord(&one, w).Collection != ScoreRecord(&two, w).Collection {
		t.Error("duplicate category annotations should not add exposure")
	}
}

func TestSafeguardsReduceScore(t *testing.T) {
	w := DefaultWeights()
	bare := recordWith(typeAnn("Financial info"))
	guarded := recordWith(
		typeAnn("Financial info"),
		annotate.Annotation{Aspect: "handling", Meta: "Data protection", Category: "Secure storage"},
		annotate.Annotation{Aspect: "handling", Meta: "Data retention", Category: "Stated", RetentionDays: 730},
		annotate.Annotation{Aspect: "rights", Meta: "User access", Category: "Full delete"},
		annotate.Annotation{Aspect: "rights", Meta: "User choices", Category: "Opt-in"},
	)
	sb := ScoreRecord(&bare, w)
	sg := ScoreRecord(&guarded, w)
	if sg.Total >= sb.Total {
		t.Errorf("safeguarded policy (%.1f) should score below bare policy (%.1f)", sg.Total, sb.Total)
	}
	if sg.Safeguards <= 0 {
		t.Error("safeguards not credited")
	}
	// The bare policy collects with no handling/rights at all → vagueness.
	if sb.Penalties < w.VaguenessPenalty {
		t.Errorf("vagueness penalty missing: %.1f", sb.Penalties)
	}
}

func TestSellingAndIndefinitePenalties(t *testing.T) {
	w := DefaultWeights()
	seller := recordWith(
		typeAnn("Contact info"),
		annotate.Annotation{Aspect: "purposes", Meta: "Third-party", Category: "Data sharing", Descriptor: "data for sale"},
		annotate.Annotation{Aspect: "handling", Meta: "Data retention", Category: "Indefinitely"},
	)
	s := ScoreRecord(&seller, w)
	if s.Penalties < w.SellingPenalty+w.IndefiniteRetentionPenalty {
		t.Errorf("penalties = %.1f", s.Penalties)
	}
}

func TestTotalNeverNegative(t *testing.T) {
	w := DefaultWeights()
	rec := recordWith(
		annotate.Annotation{Aspect: "rights", Meta: "User access", Category: "Edit"},
		annotate.Annotation{Aspect: "rights", Meta: "User access", Category: "View"},
		annotate.Annotation{Aspect: "rights", Meta: "User access", Category: "Export"},
		annotate.Annotation{Aspect: "handling", Meta: "Data protection", Category: "Secure storage"},
		annotate.Annotation{Aspect: "handling", Meta: "Data protection", Category: "Access limit"},
	)
	if s := ScoreRecord(&rec, w); s.Total < 0 {
		t.Errorf("total = %.1f", s.Total)
	}
}

func TestScoreAllPercentilesAndOrdering(t *testing.T) {
	w := DefaultWeights()
	records := []store.Record{
		{Domain: "a.example.com", Company: "A", SectorAbbrev: "FS",
			Annotations: []annotate.Annotation{typeAnn("Biometric data"), typeAnn("Medical info"), typeAnn("Financial info")}},
		{Domain: "b.example.com", Company: "B", SectorAbbrev: "FS",
			Annotations: []annotate.Annotation{typeAnn("Contact info")}},
		{Domain: "c.example.com", Company: "C", SectorAbbrev: "IT",
			Annotations: []annotate.Annotation{typeAnn("Tracking data")}},
		{Domain: "unannotated.example.com", Company: "U", SectorAbbrev: "IT"},
	}
	scores := ScoreAll(records, w)
	if len(scores) != 3 {
		t.Fatalf("scores = %d, want 3 (unannotated excluded)", len(scores))
	}
	for i := 1; i < len(scores); i++ {
		if scores[i-1].Total < scores[i].Total {
			t.Error("not sorted descending")
		}
	}
	// Within FS, A must rank above B.
	var pa, pb float64
	for _, s := range scores {
		switch s.Company {
		case "A":
			pa = s.SectorPercentile
		case "B":
			pb = s.SectorPercentile
		}
	}
	if pa <= pb {
		t.Errorf("A percentile %.2f should exceed B %.2f", pa, pb)
	}
}

func TestTables(t *testing.T) {
	w := DefaultWeights()
	records := []store.Record{
		{Domain: "a.example.com", Company: "A", SectorAbbrev: "FS",
			Annotations: []annotate.Annotation{typeAnn("Biometric data")}},
		{Domain: "b.example.com", Company: "B", SectorAbbrev: "IT",
			Annotations: []annotate.Annotation{typeAnn("Contact info")}},
	}
	scores := ScoreAll(records, w)
	sec := SectorTable(scores).Render()
	if !strings.Contains(sec, "FS") || !strings.Contains(sec, "IT") {
		t.Errorf("sector table:\n%s", sec)
	}
	top := TopTable(scores, 1).Render()
	if !strings.Contains(top, "A") || strings.Contains(top, "\nB") {
		t.Errorf("top table:\n%s", top)
	}
}

func TestEveryTaxonomyCategoryWeighted(t *testing.T) {
	w := DefaultWeights()
	// Every one of the 34 categories should have an explicit sensitivity
	// (the fallback exists for zero-shot categories only).
	missing := 0
	for cat := range w.CategorySensitivity {
		if w.CategorySensitivity[cat] <= 0 {
			t.Errorf("category %q has non-positive weight", cat)
		}
	}
	if len(w.CategorySensitivity) < 34 {
		missing = 34 - len(w.CategorySensitivity)
		t.Errorf("%d categories missing explicit sensitivity", missing)
	}
}
