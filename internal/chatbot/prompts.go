package chatbot

import (
	"fmt"
	"strings"
	"sync"

	"aipan/internal/taxonomy"
)

// persona is the system message shared by all tasks (Figure 2).
const persona = "Assume the role of a data privacy expert tasked with analyzing website privacy policies. Carefully follow the instructions, using the provided glossary and example as a guide. Print only the JSON-formatted string in your output without adding any extra information."

// Every task message below is a pure function of (task, glossary size,
// taxonomy generation): the variable input always rides in its own message.
// The pipeline builds these prompts once per document aspect — hundreds of
// thousands of times at corpus scale — so the rendered skeletons are
// premarshaled here and invalidated only when the taxonomy generation
// moves (a registered or cleared extension changes the glossaries).
type promptKey struct {
	task     string
	glossary int
}

var promptCache struct {
	mu   sync.Mutex
	gen  uint64
	msgs map[promptKey]string
}

// cachedTaskMsg returns the premarshaled task message for (task, glossary),
// rendering it with build on the first request of a generation.
func cachedTaskMsg(task string, glossary int, build func() string) string {
	gen := taxonomy.Generation()
	promptCache.mu.Lock()
	defer promptCache.mu.Unlock()
	if promptCache.msgs == nil || promptCache.gen != gen {
		promptCache.gen = gen
		promptCache.msgs = map[promptKey]string{}
	}
	k := promptKey{task: task, glossary: glossary}
	if m, ok := promptCache.msgs[k]; ok {
		return m
	}
	m := build()
	promptCache.msgs[k] = m
	return m
}

func newRequest(task, taskMsg, input string) Request {
	return Request{
		Task:        task,
		Temperature: 0,
		Messages: []Message{
			{Role: RoleSystem, Content: persona},
			{Role: RoleUser, Content: taskMsg},
			{Role: RoleUser, Content: input},
		},
	}
}

// HeadingLabelsRequest builds the Figure 2a task: label a table of contents
// (one heading per line, "[n]"-numbered, indented by hierarchy) with the
// nine section aspects.
func HeadingLabelsRequest(numberedHeadings string) Request {
	msg := cachedTaskMsg(TaskHeadingLabels, 0, buildHeadingLabelsMsg)
	return newRequest(TaskHeadingLabels, msg, numberedHeadings)
}

func buildHeadingLabelsMsg() string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskHeadingLabels + "\n")
	b.WriteString("**Task:** Use the provided glossary to label a list of section headings (extracted from text that may contain a privacy policy) according to the categories given below:\n\n")
	writeAspectList(&b)
	b.WriteString(`
### Instructions:
1. Carefully and thoroughly read the section headings provided in the next message.
   - The input is formatted with one heading per line, each line starting with a line number enclosed in brackets (e.g., "[123]").
   - The headings are indented to reflect the hierarchy of sections.
2. Label each heading according to the categories above.
   - Use the glossary below as examples of terms relevant to each category.
   - If multiple categories apply to a section, report all of them in your output.
3. Report labels for **all** headings in the output as a JSON-formatted string.
   - Format the output as a JSON string containing a list of tuples, with each tuple corresponding to a heading.
   - Each tuple must include the corresponding line number for the heading and its assigned label(s).

### Glossary:
The glossary below includes phrases relevant to each category. This glossary is **not** comprehensive; it is crucial that you also identify relevant phrases not listed below.
`)
	writeAspectGlossary(&b)
	b.WriteString("\n### Example:\nInput:\n[1] Information We Collect\n[2]   Cookies\nOutput:\n[[1, [\"types\"]], [2, [\"types\", \"methods\"]]]\n")
	return b.String()
}

// SegmentTextRequest builds the Appendix B fallback task: divide an entire
// policy text into sections and label every line with the aspects it
// belongs to.
func SegmentTextRequest(numberedText string) Request {
	msg := cachedTaskMsg(TaskSegmentText, 0, buildSegmentTextMsg)
	return newRequest(TaskSegmentText, msg, numberedText)
}

func buildSegmentTextMsg() string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskSegmentText + "\n")
	b.WriteString("**Task:** Divide the privacy policy text provided in the next message into sections and label each line according to the categories given below:\n\n")
	writeAspectList(&b)
	b.WriteString(`
### Instructions:
1. Carefully and thoroughly read the privacy policy text provided in the next message.
   - The input is formatted with each line starting with a line number enclosed in brackets (e.g., "[123]").
2. Assign every line one or more of the categories above, forming contiguous sections.
3. Report labels for **all** lines in the output as a JSON-formatted string: a list of tuples, each tuple containing the line number and its assigned label(s).

### Glossary:
`)
	writeAspectGlossary(&b)
	b.WriteString("\n### Example:\nInput:\n[1] We collect your name and email.\nOutput:\n[[1, [\"types\"]]]\n")
	return b.String()
}

// ExtractTypesRequest builds the Figure 2b task: extract verbatim mentions
// of collected data types. The glossary ships with the prompt (pass 0 to
// include every descriptor; the paper attaches the compiled glossary to
// provide "more context").
func ExtractTypesRequest(numberedText string, glossaryPerCategory int) Request {
	msg := cachedTaskMsg(TaskExtractTypes, glossaryPerCategory, func() string {
		return buildExtractTypesMsg(glossaryPerCategory)
	})
	return newRequest(TaskExtractTypes, msg, numberedText)
}

func buildExtractTypesMsg(glossaryPerCategory int) string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskExtractTypes + "\n")
	b.WriteString("**Task:** Meticulously extract and catalog specific data types that are mentioned as being collected.\n")
	b.WriteString(`
### Instructions:
1. Carefully and thoroughly read the privacy policy text provided in the next message.
   - The input is formatted with each line starting with a line number enclosed in brackets (e.g., "[123]").
2. Identify **all** explicit mentions of specific data types or categories that are potentially collected (see the glossary for examples).
   - Identify all mentions regardless of how many times they are repeated throughout the text.
   - Focus on identifying the collected data types and **not** how they are collected and/or used.
   - Ignore mentions in hypothetical or negated contexts, e.g., "we do not collect ...".
   - Separate lists into individual items (e.g., "contact and location information" should be broken down into "contact information" and "location information").
   - Pinpoint the **exact** word(s) used in the text to describe each data type, even if those words are not continuous.
3. Report the identified data types in the output as a JSON-formatted string: a list of tuples, each tuple containing the line number where the data type is mentioned and the exact word(s) used to describe it.

### Glossary:
The glossary below includes some examples of data types. This glossary is **not** comprehensive; it is crucial that you also identify terms not listed below.
`)
	if glossaryPerCategory >= 0 {
		b.WriteString(taxonomy.TypeGlossary(glossaryPerCategory))
	}
	b.WriteString("\n### Example:\nInput:\n[4] We collect your email address and browsing history.\nOutput:\n[[4, \"email address\"], [4, \"browsing history\"]]\n")
	return b.String()
}

// NormalizeTypesRequest builds the second types task (§3.2.2): categorize
// extracted mentions and generate normalized descriptors, using the
// compiled glossary, inventing descriptors for out-of-vocabulary terms.
func NormalizeTypesRequest(mentions []string, glossaryPerCategory int) Request {
	msg := cachedTaskMsg(TaskNormalizeTypes, glossaryPerCategory, func() string {
		return buildNormalizeTypesMsg(glossaryPerCategory)
	})
	return newRequest(TaskNormalizeTypes, msg, strings.Join(mentions, "\n"))
}

func buildNormalizeTypesMsg(glossaryPerCategory int) string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskNormalizeTypes + "\n")
	b.WriteString("**Task:** Categorize the extracted data types provided in the next message and generate normalized descriptors (e.g., mapping both \"mailing address\" and \"home address\" to \"postal address\" and categorizing them as \"Contact info\").\n")
	b.WriteString(`
### Instructions:
1. Read the list of extracted data-type mentions in the next message, one per line.
2. For each mention, assign the meta-category, category, and normalized descriptor from the glossary.
   - If a mention is not covered by the glossary, generate a descriptor of your own and place it in the most fitting category.
3. Report the output as a JSON-formatted string: a list of tuples [mention, meta-category, category, descriptor].

### Glossary:
`)
	if glossaryPerCategory >= 0 {
		b.WriteString(taxonomy.TypeGlossary(glossaryPerCategory))
	}
	b.WriteString("\n### Example:\nInput:\nmailing address\nOutput:\n[[\"mailing address\", \"Physical profile\", \"Contact info\", \"postal address\"]]\n")
	return b.String()
}

// ExtractPurposesRequest builds the purposes extraction task.
func ExtractPurposesRequest(numberedText string, glossaryPerCategory int) Request {
	msg := cachedTaskMsg(TaskExtractPurposes, glossaryPerCategory, func() string {
		return buildExtractPurposesMsg(glossaryPerCategory)
	})
	return newRequest(TaskExtractPurposes, msg, numberedText)
}

func buildExtractPurposesMsg(glossaryPerCategory int) string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskExtractPurposes + "\n")
	b.WriteString("**Task:** Meticulously extract and catalog specific purposes for which data is collected, used, or processed.\n")
	b.WriteString(`
### Instructions:
1. Carefully and thoroughly read the privacy policy text provided in the next message.
   - The input is formatted with each line starting with a line number enclosed in brackets.
2. Identify **all** explicit mentions of purposes of data collection or use (see the glossary for examples).
   - Ignore mentions in hypothetical or negated contexts.
   - Pinpoint the exact word(s) used in the text for each purpose.
3. Report the output as a JSON-formatted string: a list of tuples [line number, exact words].

### Glossary:
`)
	if glossaryPerCategory >= 0 {
		b.WriteString(taxonomy.PurposeGlossary(glossaryPerCategory))
	}
	b.WriteString("\n### Example:\nInput:\n[2] We use your data for fraud prevention and analytics.\nOutput:\n[[2, \"fraud prevention\"], [2, \"analytics\"]]\n")
	return b.String()
}

// NormalizePurposesRequest builds the purposes normalization task.
func NormalizePurposesRequest(mentions []string, glossaryPerCategory int) Request {
	msg := cachedTaskMsg(TaskNormalizePurposes, glossaryPerCategory, func() string {
		return buildNormalizePurposesMsg(glossaryPerCategory)
	})
	return newRequest(TaskNormalizePurposes, msg, strings.Join(mentions, "\n"))
}

func buildNormalizePurposesMsg(glossaryPerCategory int) string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskNormalizePurposes + "\n")
	b.WriteString("**Task:** Categorize the extracted data-collection purposes provided in the next message and generate normalized descriptors according to the glossary.\n")
	b.WriteString(`
### Instructions:
1. Read the list of extracted purpose mentions in the next message, one per line.
2. For each mention, assign the meta-category, category, and normalized descriptor from the glossary; generate a descriptor of your own for terms not listed.
3. Report the output as a JSON-formatted string: a list of tuples [mention, meta-category, category, descriptor].

### Glossary:
`)
	if glossaryPerCategory >= 0 {
		b.WriteString(taxonomy.PurposeGlossary(glossaryPerCategory))
	}
	b.WriteString("\n### Example:\nInput:\nprevent fraud\nOutput:\n[[\"prevent fraud\", \"Legal\", \"Security\", \"fraud prevention\"]]\n")
	return b.String()
}

// HandlingLabelsRequest builds the data retention/protection task: extract
// relevant mentions and label them with the Table 1 practice labels.
func HandlingLabelsRequest(numberedText string) Request {
	msg := cachedTaskMsg(TaskHandlingLabels, 0, buildHandlingLabelsMsg)
	return newRequest(TaskHandlingLabels, msg, numberedText)
}

func buildHandlingLabelsMsg() string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskHandlingLabels + "\n")
	b.WriteString("**Task:** Extract mentions of data retention periods and specific data protection measures, and label them according to the practices listed below.\n\n")
	writeLabelList(&b, taxonomy.RetentionLabels())
	writeLabelList(&b, taxonomy.ProtectionLabels())
	b.WriteString(`
### Instructions:
1. Carefully read the privacy policy text provided in the next message (lines numbered "[n]").
2. Identify every mention of a data retention or data protection practice and assign it exactly one label from the lists above.
   - For stated retention periods, extract the exact duration wording.
3. Report the output as a JSON-formatted string: a list of tuples [line number, group, label, exact words].

### Example:
Input:
[3] We retain your data for six (6) years and restrict access to employees on a need-to-know basis.
Output:
[[3, "Data retention", "Stated", "six (6) years"], [3, "Data protection", "Access limit", "restrict access to employees on a need-to-know basis"]]
`)
	return b.String()
}

// RightsLabelsRequest builds the user choices/access task.
func RightsLabelsRequest(numberedText string) Request {
	msg := cachedTaskMsg(TaskRightsLabels, 0, buildRightsLabelsMsg)
	return newRequest(TaskRightsLabels, msg, numberedText)
}

func buildRightsLabelsMsg() string {
	var b strings.Builder
	b.WriteString("### Task-ID: " + TaskRightsLabels + "\n")
	b.WriteString("**Task:** Extract mentions of user choices (opt-in/opt-out, privacy settings) and user access rights (view, edit, delete, export), and label them according to the practices listed below.\n\n")
	writeLabelList(&b, taxonomy.ChoiceLabels())
	writeLabelList(&b, taxonomy.AccessLabels())
	b.WriteString(`
### Instructions:
1. Carefully read the privacy policy text provided in the next message (lines numbered "[n]").
2. Identify every mention of a user choice or access right and assign it exactly one label from the lists above.
3. Report the output as a JSON-formatted string: a list of tuples [line number, group, label, exact words].

### Example:
Input:
[5] You may opt out by clicking the unsubscribe link, and you can request a copy of your data.
Output:
[[5, "User choices", "Opt-out via link", "opt out by clicking the unsubscribe link"], [5, "User access", "Export", "request a copy of your data"]]
`)
	return b.String()
}

func writeAspectList(b *strings.Builder) {
	for _, a := range taxonomy.Aspects() {
		fmt.Fprintf(b, "- **%s:** %s\n", a, taxonomy.AspectDescription(a))
	}
}

func writeAspectGlossary(b *strings.Builder) {
	for _, a := range taxonomy.Aspects() {
		gl := taxonomy.AspectHeadingGlossary(a)
		fmt.Fprintf(b, "- **%s:** ", a)
		for i, g := range gl {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(b, "%q", g)
		}
		b.WriteString("\n")
	}
}

func writeLabelList(b *strings.Builder, labels []taxonomy.Label) {
	if len(labels) > 0 {
		fmt.Fprintf(b, "**%s labels:**\n", labels[0].Group)
	}
	for _, l := range labels {
		fmt.Fprintf(b, "- **%s:** %s\n", l.Name, l.Desc)
	}
	b.WriteString("\n")
}
