package chatbot

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// OpenAIConfig configures the OpenAI-compatible HTTP backend. The paper
// drove gpt-4-turbo-2024-04-09 through this wire protocol; any server
// speaking the chat-completions format works (including local inference
// servers), so the pipeline can swap a real LLM in for the simulator.
type OpenAIConfig struct {
	// BaseURL is the API root, e.g. "https://api.openai.com" or a local
	// server. Required.
	BaseURL string
	// APIKey is sent as a Bearer token when non-empty.
	APIKey string
	// Model is the model identifier, e.g. "gpt-4-turbo-2024-04-09".
	Model string
	// HTTPClient overrides the default client (30 s timeout).
	HTTPClient *http.Client
}

// OpenAI is a Chatbot backed by an OpenAI-compatible chat-completions API.
type OpenAI struct {
	cfg    OpenAIConfig
	client *http.Client
}

// NewOpenAI validates cfg and returns the backend.
func NewOpenAI(cfg OpenAIConfig) (*OpenAI, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("chatbot: OpenAIConfig.BaseURL is required")
	}
	if cfg.Model == "" {
		return nil, fmt.Errorf("chatbot: OpenAIConfig.Model is required")
	}
	c := cfg.HTTPClient
	if c == nil {
		c = &http.Client{Timeout: 30 * time.Second}
	}
	return &OpenAI{cfg: cfg, client: c}, nil
}

// Name implements Chatbot.
func (o *OpenAI) Name() string { return o.cfg.Model }

type oaRequest struct {
	Model       string    `json:"model"`
	Messages    []Message `json:"messages"`
	Temperature float64   `json:"temperature"`
	MaxTokens   int       `json:"max_tokens,omitempty"`
}

type oaResponse struct {
	Choices []struct {
		Message struct {
			Content string `json:"content"`
		} `json:"message"`
	} `json:"choices"`
	Usage struct {
		PromptTokens     int `json:"prompt_tokens"`
		CompletionTokens int `json:"completion_tokens"`
	} `json:"usage"`
	Error *struct {
		Message string `json:"message"`
		Type    string `json:"type"`
	} `json:"error"`
}

// Complete implements Chatbot over the chat-completions wire format.
func (o *OpenAI) Complete(ctx context.Context, req Request) (Response, error) {
	body, err := json.Marshal(oaRequest{
		Model:       o.cfg.Model,
		Messages:    req.Messages,
		Temperature: req.Temperature,
		MaxTokens:   req.MaxTokens,
	})
	if err != nil {
		return Response{}, fmt.Errorf("chatbot: encoding request: %w", err)
	}
	url := o.cfg.BaseURL + "/v1/chat/completions"
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return Response{}, fmt.Errorf("chatbot: building request: %w", err)
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if o.cfg.APIKey != "" {
		httpReq.Header.Set("Authorization", "Bearer "+o.cfg.APIKey)
	}
	httpResp, err := o.client.Do(httpReq)
	if err != nil {
		return Response{}, fmt.Errorf("chatbot: calling %s: %w", url, err)
	}
	defer httpResp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(httpResp.Body, 16<<20))
	if err != nil {
		return Response{}, fmt.Errorf("chatbot: reading response: %w", err)
	}
	var oa oaResponse
	if err := json.Unmarshal(data, &oa); err != nil {
		return Response{}, fmt.Errorf("chatbot: decoding response (status %d): %w", httpResp.StatusCode, err)
	}
	if oa.Error != nil {
		return Response{}, fmt.Errorf("chatbot: API error (%s): %s", oa.Error.Type, oa.Error.Message)
	}
	if httpResp.StatusCode != http.StatusOK {
		return Response{}, fmt.Errorf("chatbot: API returned status %d", httpResp.StatusCode)
	}
	if len(oa.Choices) == 0 || oa.Choices[0].Message.Content == "" {
		return Response{}, ErrEmptyResponse
	}
	return Response{
		Content: oa.Choices[0].Message.Content,
		Model:   o.cfg.Model,
		Usage: Usage{
			PromptTokens:     oa.Usage.PromptTokens,
			CompletionTokens: oa.Usage.CompletionTokens,
		},
	}, nil
}
