package chatbot

import (
	"sync"

	"aipan/internal/taxonomy"
)

// The labeling paths used to probe every cue of every label with
// strings.Contains — tens of substring scans per input line, a
// double-digit share of pipeline CPU. cueAutomaton is a byte-level
// Aho–Corasick matcher (substring semantics, no word boundaries — exactly
// what Contains tested) that finds all cue occurrences in one pass.
// Like the taxonomy trigger automaton, edges are deterministic slices.

type cueEdge struct {
	c  byte
	to int32
}

type cueOut struct {
	pat int32 // index into the owner's pattern table
}

type cueNode struct {
	edges []cueEdge
	fail  int32
	out   []cueOut
}

// cueAutomaton stores the automaton as a fully-dense DFA: next[st*256+c] is
// the goto-with-failure transition, so scanning is one table load per input
// byte with no fail-chain walk. The cue sets are small (hundreds of nodes),
// so the tables cost a few hundred KB each, built once.
type cueAutomaton struct {
	next []int32
	out  [][]cueOut
}

func (n *cueNode) edge(c byte) (int32, bool) {
	for _, e := range n.edges {
		if e.c == c {
			return e.to, true
		}
	}
	return 0, false
}

func newCueAutomaton(patterns []string) *cueAutomaton {
	nodes := make([]cueNode, 1, 64)
	insert := func(pat string, id int32) {
		st := int32(0)
		for i := 0; i < len(pat); i++ {
			c := pat[i]
			nxt, ok := nodes[st].edge(c)
			if !ok {
				nxt = int32(len(nodes))
				nodes[st].edges = append(nodes[st].edges, cueEdge{c: c, to: nxt})
				nodes = append(nodes, cueNode{})
			}
			st = nxt
		}
		nodes[st].out = append(nodes[st].out, cueOut{pat: id})
	}
	for i, p := range patterns {
		if p != "" {
			insert(p, int32(i))
		}
	}

	// BFS fail links, merging each node's fail-target outputs.
	queue := make([]int32, 0, len(nodes))
	for _, e := range nodes[0].edges {
		nodes[e.to].fail = 0
		queue = append(queue, e.to)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range nodes[cur].edges {
			queue = append(queue, e.to)
			f := nodes[cur].fail
			for f != 0 {
				if g, ok := nodes[f].edge(e.c); ok {
					f = g
					break
				}
				f = nodes[f].fail
			}
			if f == 0 {
				if g, ok := nodes[0].edge(e.c); ok {
					f = g
				}
			}
			nodes[e.to].fail = f
			nodes[e.to].out = append(nodes[e.to].out, nodes[f].out...)
		}
	}

	// Flatten to the dense transition table, again in BFS order so parent
	// rows are complete before children copy from their fail rows.
	a := &cueAutomaton{
		next: make([]int32, len(nodes)*256),
		out:  make([][]cueOut, len(nodes)),
	}
	for st := range nodes {
		a.out[st] = nodes[st].out
	}
	for _, e := range nodes[0].edges {
		a.next[int(e.c)] = e.to
	}
	queue = queue[:0]
	for _, e := range nodes[0].edges {
		queue = append(queue, e.to)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		row := a.next[int(cur)*256 : int(cur)*256+256]
		copy(row, a.next[int(nodes[cur].fail)*256:int(nodes[cur].fail)*256+256])
		for _, e := range nodes[cur].edges {
			row[e.c] = e.to
			queue = append(queue, e.to)
		}
	}
	return a
}

// scan calls fn for every pattern occurrence in s (by end position);
// returning false from fn stops the scan early.
func (a *cueAutomaton) scan(s string, fn func(pat int32) bool) {
	st := int32(0)
	for i := 0; i < len(s); i++ {
		st = a.next[int(st)<<8|int(s[i])]
		for _, o := range a.out[st] {
			if !fn(o.pat) {
				return
			}
		}
	}
}

// cueRef ties a compiled pattern back to its label and position in that
// label's cue list (cue-list order breaks length ties, matching the old
// first-longest-wins scan).
type cueRef struct {
	label  int32
	cueIdx int32
	cue    string
}

// labelMatcher matches one label group's cues.
type labelMatcher struct {
	labels []taxonomy.Label
	pats   []cueRef
	ac     *cueAutomaton
}

func newLabelMatcher(labels []taxonomy.Label) *labelMatcher {
	m := &labelMatcher{labels: labels}
	var patterns []string
	for li, l := range labels {
		for ci, c := range l.Cues {
			m.pats = append(m.pats, cueRef{label: int32(li), cueIdx: int32(ci), cue: c})
			patterns = append(patterns, c)
		}
	}
	m.ac = newCueAutomaton(patterns)
	return m
}

// any reports whether low contains any cue of the group.
func (m *labelMatcher) any(low string) bool {
	found := false
	m.ac.scan(low, func(int32) bool {
		found = true
		return false
	})
	return found
}

type labelCue struct{ Label, Cue string }

// match returns (label, matched cue) pairs found in low, in label order,
// picking per label the longest cue (earliest in the cue list on ties) —
// the same selection the per-cue Contains loop produced.
func (m *labelMatcher) match(low string) []labelCue {
	best := make([]int32, len(m.labels))
	for i := range best {
		best[i] = -1
	}
	m.ac.scan(low, func(p int32) bool {
		ref := &m.pats[p]
		cur := best[ref.label]
		if cur < 0 {
			best[ref.label] = p
			return true
		}
		old := &m.pats[cur]
		if len(ref.cue) > len(old.cue) ||
			(len(ref.cue) == len(old.cue) && ref.cueIdx < old.cueIdx) {
			best[ref.label] = p
		}
		return true
	})
	var out []labelCue
	for li, l := range m.labels {
		if best[li] >= 0 {
			out = append(out, labelCue{Label: l.Name, Cue: m.pats[best[li]].cue})
		}
	}
	return out
}

// The four Table 1 label groups, compiled once.
var (
	retentionMatcher  = sync.OnceValue(func() *labelMatcher { return newLabelMatcher(retentionLabels()) })
	protectionMatcher = sync.OnceValue(func() *labelMatcher { return newLabelMatcher(protectionLabels()) })
	choiceMatcher     = sync.OnceValue(func() *labelMatcher { return newLabelMatcher(choiceLabels()) })
	accessMatcher     = sync.OnceValue(func() *labelMatcher { return newLabelMatcher(accessLabels()) })
)

// headingMatcher compiles the heading-rule cues; each pattern id is the
// rule index, and hits are reported per rule in rule order.
type headingMatcher struct {
	rules []aspectRule
	ac    *cueAutomaton
	pats  []int32 // pattern → rule index
}

func newHeadingMatcher(rules []aspectRule) *headingMatcher {
	m := &headingMatcher{rules: rules}
	var patterns []string
	for ri, r := range rules {
		for _, c := range r.cues {
			m.pats = append(m.pats, int32(ri))
			patterns = append(patterns, c)
		}
	}
	m.ac = newCueAutomaton(patterns)
	return m
}

// classify returns the aspect labels of rules with at least one cue hit,
// in rule order — what the per-rule Contains loop returned.
func (m *headingMatcher) classify(low string) []string {
	var hits [16]bool
	m.ac.scan(low, func(p int32) bool {
		hits[m.pats[p]] = true
		return true
	})
	var labels []string
	for ri, r := range m.rules {
		if hits[ri] {
			labels = append(labels, string(r.aspect))
		}
	}
	return labels
}

var headingRuleMatcher = sync.OnceValue(func() *headingMatcher { return newHeadingMatcher(headingRules) })
