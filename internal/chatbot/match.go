package chatbot

import (
	"strings"
	"unicode"

	"aipan/internal/nlp"
)

// tokenPos is a lowercase token with its byte span in the original line.
type tokenPos struct {
	word  string // lowercase surface form
	stem  string // singular lemma
	start int
	end   int
}

// tokenize splits a line into tokens with byte offsets, so that matched
// spans can be reported verbatim ("pinpoint the exact word(s) used in the
// text").
func tokenize(line string) []tokenPos {
	return tokenizeInto(nil, line)
}

// tokenizeInto appends line's tokens to out — per-line loops pass a reused
// scratch slice (out[:0]) so the token buffer is allocated once per task
// instead of once per line. Nothing downstream retains the slice: matchers
// and span wideners only read it within the line's iteration.
func tokenizeInto(out []tokenPos, line string) []tokenPos {
	i := 0
	for i < len(line) {
		r := rune(line[i])
		if !isWordByte(byte(r)) {
			i++
			continue
		}
		j := i
		for j < len(line) && (isWordByte(line[j]) ||
			((line[j] == '\'' || line[j] == '-') && j+1 < len(line) && isWordByte(line[j+1]))) {
			j++
		}
		w := strings.ToLower(line[i:j])
		out = append(out, tokenPos{word: w, stem: nlp.Singular(w), start: i, end: j})
		i = j
	}
	return out
}

func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c >= 0x80
}

// phraseMatcher finds known multi-word surface forms in token streams,
// longest-match-first.
type phraseMatcher struct {
	// byFirst maps the first stem of each pattern to the candidate
	// patterns starting with it, longest first.
	byFirst map[string][]pattern
}

type pattern struct {
	stems   []string
	payload string // the canonical surface form (glossary entry)
}

// newPhraseMatcher compiles the surfaces. Duplicate stem-sequences keep the
// first payload.
func newPhraseMatcher(surfaces []string) *phraseMatcher {
	m := &phraseMatcher{byFirst: map[string][]pattern{}}
	seen := map[string]bool{}
	for _, s := range surfaces {
		ws := nlp.Words(s)
		if len(ws) == 0 {
			continue
		}
		stems := make([]string, len(ws))
		for i, w := range ws {
			stems[i] = nlp.Singular(w)
		}
		key := strings.Join(stems, " ")
		if seen[key] {
			continue
		}
		seen[key] = true
		m.byFirst[stems[0]] = append(m.byFirst[stems[0]], pattern{stems: stems, payload: s})
	}
	// Longest-first within each bucket.
	for k := range m.byFirst {
		ps := m.byFirst[k]
		for i := 1; i < len(ps); i++ {
			for j := i; j > 0 && len(ps[j].stems) > len(ps[j-1].stems); j-- {
				ps[j], ps[j-1] = ps[j-1], ps[j]
			}
		}
	}
	return m
}

// matchSpan is one phrase hit in a line.
type matchSpan struct {
	// text is the verbatim matched span from the original line.
	text string
	// payload is the canonical glossary surface form.
	payload string
	// startTok/endTok delimit the token range [startTok, endTok).
	startTok, endTok int
}

// find returns non-overlapping matches in line, greedy left-to-right and
// longest-first at each position.
func (m *phraseMatcher) find(line string) []matchSpan {
	return m.findToks(line, tokenize(line))
}

// findToks is find over an already-tokenized line, letting callers that
// run several matchers (or matcher + noun-phrase passes) over the same
// line tokenize it once.
func (m *phraseMatcher) findToks(line string, toks []tokenPos) []matchSpan {
	var out []matchSpan
	for i := 0; i < len(toks); i++ {
		cands := m.byFirst[toks[i].stem]
		matched := false
		for _, p := range cands {
			if i+len(p.stems) > len(toks) {
				continue
			}
			ok := true
			for k := 1; k < len(p.stems); k++ {
				if toks[i+k].stem != p.stems[k] {
					ok = false
					break
				}
			}
			if ok {
				end := i + len(p.stems)
				out = append(out, matchSpan{
					text:     line[toks[i].start:toks[end-1].end],
					payload:  p.payload,
					startTok: i,
					endTok:   end,
				})
				i = end - 1
				matched = true
				break
			}
		}
		_ = matched
	}
	return out
}

// npHeads are noun heads that close a zero-shot data-type noun phrase.
var npHeads = map[string]bool{
	"data": true, "information": true, "info": true, "record": true,
	"history": true, "detail": true, "metric": true, "log": true,
	"identifier": true, "number": true, "preference": true,
}

// npStop are words that cannot appear inside a candidate noun phrase.
var npStop = map[string]bool{
	"the": true, "a": true, "an": true, "we": true, "you": true, "your": true,
	"our": true, "their": true, "this": true, "that": true, "and": true,
	"or": true, "of": true, "to": true, "for": true, "with": true, "may": true,
	"collect": true, "use": true, "share": true, "process": true, "other": true,
	"certain": true, "such": true, "as": true, "any": true, "all": true,
	"personal": true, "following": true, "more": true,
}

// findNovelNounPhrases extracts zero-shot data-type candidates: 2–4 word
// noun phrases ending in a data-ish head ("pet adoption records") that did
// not overlap a glossary match. It emulates the chatbot "generating
// descriptors of its own for data types not listed in the glossary".
func findNovelNounPhrases(line string, toks []tokenPos, taken []matchSpan) []matchSpan {
	used := make([]bool, len(toks))
	for _, s := range taken {
		for i := s.startTok; i < s.endTok && i < len(used); i++ {
			used[i] = true
		}
	}
	var out []matchSpan
	for i := 0; i < len(toks); i++ {
		if !npHeads[toks[i].stem] || used[i] {
			continue
		}
		// Walk back over up to 3 modifier tokens.
		start := i
		for start > 0 && i-start < 3 {
			prev := toks[start-1]
			if used[start-1] || npStop[prev.word] || !isModifier(prev.word) {
				break
			}
			start--
		}
		if start == i {
			continue // bare head ("data") is not a descriptor
		}
		span := matchSpan{
			text:     line[toks[start].start:toks[i].end],
			payload:  line[toks[start].start:toks[i].end],
			startTok: start,
			endTok:   i + 1,
		}
		out = append(out, span)
		for k := start; k <= i; k++ {
			used[k] = true
		}
	}
	return out
}

func isModifier(w string) bool {
	if len(w) < 3 {
		return false
	}
	for _, r := range w {
		if !unicode.IsLetter(r) && r != '-' && r != '\'' {
			return false
		}
	}
	return true
}
