package chatbot

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"aipan/internal/engine"
	"aipan/internal/obs"
)

// Client wraps a Chatbot with the operational machinery a large-scale
// annotation run needs: bounded concurrency, retry with backoff on
// transient failures, an idempotent response cache (identical prompts are
// asked once — also what makes re-runs cheap), and aggregate token
// accounting.
type Client struct {
	bot         Chatbot
	lim         *engine.Limiter
	maxRetries  int
	retryDelay  time.Duration
	mu          sync.Mutex
	cache       map[string]Response
	cacheOn     bool
	diskDir     string
	usage       Usage
	calls       int
	cacheHits   int
	failedCalls int
	met         *clientMetrics
	clock       obs.Clock
}

// clientMetrics is the client's instrument set: call latency per task,
// outcome counters, retry/backoff attempts, token totals, and the
// in-flight gauge to read against the configured concurrency bound.
type clientMetrics struct {
	callDur   *obs.HistogramVec // by task
	calls     *obs.CounterVec   // by result (ok, error)
	cacheHits *obs.Counter
	retries   *obs.Counter
	inflight  *obs.Gauge
	tokens    *obs.CounterVec // by kind (prompt, completion)
}

func newClientMetrics(reg *obs.Registry) *clientMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &clientMetrics{
		callDur: reg.HistogramVec("aipan_chatbot_call_duration_seconds",
			"Chatbot completion latency (including retries and backoff) by task.", nil, "task"),
		calls: reg.CounterVec("aipan_chatbot_calls_total",
			"Chatbot completions by result (cache hits not included).", "result"),
		cacheHits: reg.Counter("aipan_chatbot_cache_hits_total",
			"Completions answered from the idempotent response cache."),
		retries: reg.Counter("aipan_chatbot_retries_total",
			"Retry attempts after transient completion failures."),
		inflight: reg.Gauge("aipan_chatbot_inflight",
			"Completions currently in flight (bounded by the concurrency gate)."),
		tokens: reg.CounterVec("aipan_chatbot_tokens_total",
			"Tokens consumed by kind (prompt, completion); simulated backends report estimates.", "kind"),
	}
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithConcurrency bounds in-flight completions (default 8).
func WithConcurrency(n int) ClientOption {
	return func(c *Client) { c.lim = engine.NewLimiter(n) }
}

// WithRetries sets the retry budget for failed completions (default 2).
func WithRetries(n int, delay time.Duration) ClientOption {
	return func(c *Client) {
		c.maxRetries = n
		c.retryDelay = delay
	}
}

// WithCache toggles the idempotent response cache (default on).
func WithCache(on bool) ClientOption {
	return func(c *Client) { c.cacheOn = on }
}

// WithDiskCache persists responses under dir, keyed by request hash, so
// interrupted runs against a real (paid) LLM resume without re-spending
// tokens. Implies the in-memory cache.
func WithDiskCache(dir string) ClientOption {
	return func(c *Client) {
		c.cacheOn = true
		c.diskDir = dir
	}
}

// WithRegistry routes the client's metrics to reg instead of the
// process-wide default registry.
func WithRegistry(reg *obs.Registry) ClientOption {
	return func(c *Client) { c.met = newClientMetrics(reg) }
}

// WithClock replaces the client's time source for its latency metrics
// (default obs.SystemClock).
func WithClock(clock obs.Clock) ClientOption {
	return func(c *Client) { c.clock = clock }
}

// NewClient wraps bot.
func NewClient(bot Chatbot, opts ...ClientOption) *Client {
	c := &Client{
		bot:        bot,
		lim:        engine.NewLimiter(8),
		maxRetries: 2,
		retryDelay: 50 * time.Millisecond,
		cache:      map[string]Response{},
		cacheOn:    true,
		clock:      obs.SystemClock,
	}
	for _, o := range opts {
		o(c)
	}
	if c.met == nil {
		c.met = newClientMetrics(nil)
	}
	return c
}

// Name reports the wrapped model's name.
func (c *Client) Name() string { return c.bot.Name() }

// Complete runs a completion through the cache, concurrency gate, and
// retry loop.
func (c *Client) Complete(ctx context.Context, req Request) (Response, error) {
	var key string
	if c.cacheOn {
		key = cacheKey(&req)
		c.mu.Lock()
		if resp, ok := c.cache[key]; ok {
			c.cacheHits++
			c.mu.Unlock()
			c.met.cacheHits.Inc()
			return resp, nil
		}
		c.mu.Unlock()
		if resp, ok := c.loadDisk(key); ok {
			c.mu.Lock()
			c.cacheHits++
			c.cache[key] = resp
			c.mu.Unlock()
			c.met.cacheHits.Inc()
			return resp, nil
		}
	}

	if err := c.lim.Acquire(ctx); err != nil {
		return Response{}, err
	}
	defer c.lim.Release()
	c.met.inflight.Inc()
	defer c.met.inflight.Dec()
	// The span covers the backend call including retries (cache hits
	// return above without one); the task attribute keys the exported
	// record the same way the latency histogram is keyed.
	_, span := obs.StartSpanWith(ctx, "chatbot.call", obs.A("task", req.Task))
	defer span.End()
	start := c.clock()
	defer func() { c.met.callDur.With(req.Task).Observe(c.clock().Sub(start).Seconds()) }()

	var resp Response
	var err error
	for attempt := 0; attempt <= c.maxRetries; attempt++ {
		if attempt > 0 {
			c.met.retries.Inc()
			if !engine.Sleep(ctx, c.retryDelay<<(attempt-1)) {
				return Response{}, ctx.Err()
			}
		}
		resp, err = c.bot.Complete(ctx, req)
		if err == nil {
			break
		}
		if ctx.Err() != nil {
			return Response{}, ctx.Err()
		}
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if err != nil {
		c.failedCalls++
		c.met.calls.With("error").Inc()
		return Response{}, fmt.Errorf("chatbot: %s: %w", c.bot.Name(), err)
	}
	c.met.calls.With("ok").Inc()
	c.met.tokens.With("prompt").Add(float64(resp.Usage.PromptTokens))
	c.met.tokens.With("completion").Add(float64(resp.Usage.CompletionTokens))
	c.usage.Add(resp.Usage)
	if c.cacheOn {
		c.cache[key] = resp
		c.storeDisk(key, resp)
	}
	return resp, nil
}

// diskResponse is the persisted cache entry.
type diskResponse struct {
	Content string `json:"content"`
	Model   string `json:"model"`
	Usage   Usage  `json:"usage"`
}

func (c *Client) diskPath(key string) string {
	// Two-level fanout keeps directories small at corpus scale.
	return filepath.Join(c.diskDir, key[:2], key+".json")
}

func (c *Client) loadDisk(key string) (Response, bool) {
	if c.diskDir == "" {
		return Response{}, false
	}
	data, err := os.ReadFile(c.diskPath(key))
	if err != nil {
		return Response{}, false
	}
	var dr diskResponse
	if err := json.Unmarshal(data, &dr); err != nil {
		return Response{}, false // corrupt entry: treat as miss
	}
	return Response{Content: dr.Content, Model: dr.Model, Usage: dr.Usage}, true
}

func (c *Client) storeDisk(key string, resp Response) {
	if c.diskDir == "" {
		return
	}
	path := c.diskPath(key)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return // cache is best-effort; the completion already succeeded
	}
	data, err := json.Marshal(diskResponse{Content: resp.Content, Model: resp.Model, Usage: resp.Usage})
	if err != nil {
		return
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, path)
}

// Stats reports aggregate accounting for the client's lifetime.
type Stats struct {
	Calls       int
	CacheHits   int
	FailedCalls int
	Usage       Usage
}

// Stats returns a snapshot of the client's accounting.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Calls: c.calls, CacheHits: c.cacheHits, FailedCalls: c.failedCalls, Usage: c.usage}
}

func cacheKey(req *Request) string {
	h := sha256.New()
	for _, m := range req.Messages {
		h.Write([]byte(m.Role))
		h.Write([]byte{0})
		h.Write([]byte(m.Content))
		h.Write([]byte{0})
	}
	fmt.Fprintf(h, "%s|%g|%d", req.Task, req.Temperature, req.MaxTokens)
	return hex.EncodeToString(h.Sum(nil))
}

var _ Chatbot = (*Client)(nil)
var _ Chatbot = (*Sim)(nil)
var _ Chatbot = (*OpenAI)(nil)
