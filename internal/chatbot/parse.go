package chatbot

import (
	"encoding/json"
	"fmt"
	"strings"
)

// The parsers below decode the strict-JSON tuple formats the task prompts
// demand. They tolerate the two deviations real LLMs commonly produce —
// markdown code fences and leading prose — and reject everything else, so
// malformed completions surface as errors the pipeline can retry
// (§3.2: "programmatically verify" chatbot output).

// LineLabels is one heading/line with its assigned aspect labels.
type LineLabels struct {
	Line   int
	Labels []string
}

// Extraction is one verbatim mention located on a numbered line.
type Extraction struct {
	Line int
	Text string
}

// Normalization maps a surface mention onto the taxonomy.
type Normalization struct {
	Surface    string
	Meta       string
	Category   string
	Descriptor string
}

// LabeledMention is one practice mention with its Table 1 label.
type LabeledMention struct {
	Line  int
	Group string
	Label string
	Text  string
}

// StripJSON extracts the JSON payload from a completion: it removes
// ```json fences and any prose before the first '[' or '{'.
func StripJSON(s string) string {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "```") {
		s = strings.TrimPrefix(s, "```json")
		s = strings.TrimPrefix(s, "```")
		if i := strings.LastIndex(s, "```"); i >= 0 {
			s = s[:i]
		}
		s = strings.TrimSpace(s)
	}
	start := strings.IndexAny(s, "[{")
	if start > 0 {
		s = s[start:]
	}
	return strings.TrimSpace(s)
}

// ParseLineLabels decodes `[[12, ["types"]], [15, ["purposes","handling"]]]`.
func ParseLineLabels(s string) ([]LineLabels, error) {
	var raw [][]json.RawMessage
	if err := json.Unmarshal([]byte(StripJSON(s)), &raw); err != nil {
		return nil, fmt.Errorf("chatbot: parsing line labels: %w", err)
	}
	out := make([]LineLabels, 0, len(raw))
	for i, tup := range raw {
		if len(tup) != 2 {
			return nil, fmt.Errorf("chatbot: line-label tuple %d has %d elements", i, len(tup))
		}
		var ll LineLabels
		if err := json.Unmarshal(tup[0], &ll.Line); err != nil {
			return nil, fmt.Errorf("chatbot: line-label tuple %d line: %w", i, err)
		}
		if err := json.Unmarshal(tup[1], &ll.Labels); err != nil {
			// Tolerate a bare string label.
			var one string
			if err2 := json.Unmarshal(tup[1], &one); err2 != nil {
				return nil, fmt.Errorf("chatbot: line-label tuple %d labels: %w", i, err)
			}
			ll.Labels = []string{one}
		}
		out = append(out, ll)
	}
	return out, nil
}

// ParseExtractions decodes `[[4, "email address"], [4, "browsing history"]]`.
func ParseExtractions(s string) ([]Extraction, error) {
	var raw [][]json.RawMessage
	if err := json.Unmarshal([]byte(StripJSON(s)), &raw); err != nil {
		return nil, fmt.Errorf("chatbot: parsing extractions: %w", err)
	}
	out := make([]Extraction, 0, len(raw))
	for i, tup := range raw {
		if len(tup) != 2 {
			return nil, fmt.Errorf("chatbot: extraction tuple %d has %d elements", i, len(tup))
		}
		var e Extraction
		if err := json.Unmarshal(tup[0], &e.Line); err != nil {
			return nil, fmt.Errorf("chatbot: extraction tuple %d line: %w", i, err)
		}
		if err := json.Unmarshal(tup[1], &e.Text); err != nil {
			return nil, fmt.Errorf("chatbot: extraction tuple %d text: %w", i, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// ParseNormalizations decodes
// `[["mailing address", "Physical profile", "Contact info", "postal address"]]`.
func ParseNormalizations(s string) ([]Normalization, error) {
	var raw [][]string
	if err := json.Unmarshal([]byte(StripJSON(s)), &raw); err != nil {
		return nil, fmt.Errorf("chatbot: parsing normalizations: %w", err)
	}
	out := make([]Normalization, 0, len(raw))
	for i, tup := range raw {
		if len(tup) != 4 {
			return nil, fmt.Errorf("chatbot: normalization tuple %d has %d elements", i, len(tup))
		}
		out = append(out, Normalization{
			Surface: tup[0], Meta: tup[1], Category: tup[2], Descriptor: tup[3],
		})
	}
	return out, nil
}

// ParseLabeledMentions decodes
// `[[3, "Data retention", "Stated", "six (6) years"]]`.
func ParseLabeledMentions(s string) ([]LabeledMention, error) {
	var raw [][]json.RawMessage
	if err := json.Unmarshal([]byte(StripJSON(s)), &raw); err != nil {
		return nil, fmt.Errorf("chatbot: parsing labeled mentions: %w", err)
	}
	out := make([]LabeledMention, 0, len(raw))
	for i, tup := range raw {
		if len(tup) != 4 {
			return nil, fmt.Errorf("chatbot: labeled-mention tuple %d has %d elements", i, len(tup))
		}
		var m LabeledMention
		if err := json.Unmarshal(tup[0], &m.Line); err != nil {
			return nil, fmt.Errorf("chatbot: labeled-mention tuple %d line: %w", i, err)
		}
		if err := json.Unmarshal(tup[1], &m.Group); err != nil {
			return nil, fmt.Errorf("chatbot: labeled-mention tuple %d group: %w", i, err)
		}
		if err := json.Unmarshal(tup[2], &m.Label); err != nil {
			return nil, fmt.Errorf("chatbot: labeled-mention tuple %d label: %w", i, err)
		}
		if err := json.Unmarshal(tup[3], &m.Text); err != nil {
			return nil, fmt.Errorf("chatbot: labeled-mention tuple %d text: %w", i, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// --- Encoders used by simulated backends (kept beside the parsers so the
// --- wire format lives in one file).

// EncodeLineLabels renders line labels in the task's JSON tuple format.
func EncodeLineLabels(lls []LineLabels) string {
	parts := make([]any, len(lls))
	for i, ll := range lls {
		labels := ll.Labels
		if labels == nil {
			labels = []string{}
		}
		parts[i] = []any{ll.Line, labels}
	}
	return mustJSON(parts)
}

// EncodeExtractions renders extractions in the task's JSON tuple format.
func EncodeExtractions(es []Extraction) string {
	parts := make([]any, len(es))
	for i, e := range es {
		parts[i] = []any{e.Line, e.Text}
	}
	return mustJSON(parts)
}

// EncodeNormalizations renders normalizations in the JSON tuple format.
func EncodeNormalizations(ns []Normalization) string {
	parts := make([]any, len(ns))
	for i, n := range ns {
		parts[i] = []any{n.Surface, n.Meta, n.Category, n.Descriptor}
	}
	return mustJSON(parts)
}

// EncodeLabeledMentions renders labeled mentions in the JSON tuple format.
func EncodeLabeledMentions(ms []LabeledMention) string {
	parts := make([]any, len(ms))
	for i, m := range ms {
		parts[i] = []any{m.Line, m.Group, m.Label, m.Text}
	}
	return mustJSON(parts)
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		// Only reachable on unmarshalable types, which the encoders never
		// construct.
		panic(err)
	}
	return string(b)
}
