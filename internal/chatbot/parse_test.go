package chatbot

import (
	"reflect"
	"testing"
)

func TestStripJSON(t *testing.T) {
	cases := []struct{ in, want string }{
		{`[[1, ["types"]]]`, `[[1, ["types"]]]`},
		{"```json\n[[1, \"x\"]]\n```", `[[1, "x"]]`},
		{"Here is the output:\n[[1, \"x\"]]", `[[1, "x"]]`},
		{"```\n{\"a\":1}\n```", `{"a":1}`},
	}
	for _, c := range cases {
		if got := StripJSON(c.in); got != c.want {
			t.Errorf("StripJSON(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestParseLineLabelsRoundTrip(t *testing.T) {
	in := []LineLabels{
		{Line: 1, Labels: []string{"types"}},
		{Line: 5, Labels: []string{"purposes", "handling"}},
	}
	got, err := ParseLineLabels(EncodeLineLabels(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip: %+v != %+v", got, in)
	}
}

func TestParseLineLabelsBareString(t *testing.T) {
	got, err := ParseLineLabels(`[[3, "types"]]`)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Line != 3 || got[0].Labels[0] != "types" {
		t.Errorf("got %+v", got)
	}
}

func TestParseLineLabelsErrors(t *testing.T) {
	for _, bad := range []string{`not json`, `[[1]]`, `[["x", ["a"]]]`, `[[1, 2, 3]]`} {
		if _, err := ParseLineLabels(bad); err == nil {
			t.Errorf("ParseLineLabels(%q) should fail", bad)
		}
	}
}

func TestParseExtractionsRoundTrip(t *testing.T) {
	in := []Extraction{{Line: 4, Text: "email address"}, {Line: 9, Text: "gps location"}}
	got, err := ParseExtractions(EncodeExtractions(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip: %+v != %+v", got, in)
	}
}

func TestParseExtractionsErrors(t *testing.T) {
	for _, bad := range []string{`{}`, `[[1]]`, `[[1, 2]]`, `[["a","b"]]`} {
		if _, err := ParseExtractions(bad); err == nil {
			t.Errorf("ParseExtractions(%q) should fail", bad)
		}
	}
}

func TestParseNormalizationsRoundTrip(t *testing.T) {
	in := []Normalization{{Surface: "mailing address", Meta: "Physical profile", Category: "Contact info", Descriptor: "postal address"}}
	got, err := ParseNormalizations(EncodeNormalizations(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip: %+v != %+v", got, in)
	}
}

func TestParseLabeledMentionsRoundTrip(t *testing.T) {
	in := []LabeledMention{{Line: 3, Group: "Data retention", Label: "Stated", Text: "six (6) years"}}
	got, err := ParseLabeledMentions(EncodeLabeledMentions(in))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, in) {
		t.Errorf("round trip: %+v != %+v", got, in)
	}
}

func TestParseLabeledMentionsErrors(t *testing.T) {
	for _, bad := range []string{`[[1, "a", "b"]]`, `[["x","a","b","c"]]`} {
		if _, err := ParseLabeledMentions(bad); err == nil {
			t.Errorf("ParseLabeledMentions(%q) should fail", bad)
		}
	}
}

func TestEmptyEncodings(t *testing.T) {
	if got := EncodeExtractions(nil); got != "[]" {
		t.Errorf("empty extractions = %q", got)
	}
	es, err := ParseExtractions("[]")
	if err != nil || len(es) != 0 {
		t.Errorf("parse empty: %v %v", es, err)
	}
}
