package chatbot

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// flakyBot fails the first n calls then succeeds.
type flakyBot struct {
	failures int32
	calls    int32
}

func (f *flakyBot) Name() string { return "flaky" }

func (f *flakyBot) Complete(ctx context.Context, req Request) (Response, error) {
	n := atomic.AddInt32(&f.calls, 1)
	if n <= atomic.LoadInt32(&f.failures) {
		return Response{}, errors.New("transient")
	}
	return Response{Content: "[]", Model: "flaky", Usage: Usage{PromptTokens: 10, CompletionTokens: 2}}, nil
}

func TestClientRetries(t *testing.T) {
	bot := &flakyBot{failures: 2}
	c := NewClient(bot, WithRetries(3, 0))
	req := Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "x"}}}
	resp, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("expected retry success, got %v", err)
	}
	if resp.Content != "[]" {
		t.Errorf("content = %q", resp.Content)
	}
	st := c.Stats()
	if st.Calls != 1 || st.FailedCalls != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClientExhaustsRetries(t *testing.T) {
	bot := &flakyBot{failures: 100}
	c := NewClient(bot, WithRetries(1, 0))
	_, err := c.Complete(context.Background(), Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if err == nil {
		t.Fatal("expected failure")
	}
	if st := c.Stats(); st.FailedCalls != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClientCache(t *testing.T) {
	bot := &flakyBot{}
	c := NewClient(bot)
	req := Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "same"}}}
	for i := 0; i < 3; i++ {
		if _, err := c.Complete(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	if got := atomic.LoadInt32(&bot.calls); got != 1 {
		t.Errorf("backend called %d times, want 1 (cache)", got)
	}
	if st := c.Stats(); st.CacheHits != 2 {
		t.Errorf("cache hits = %d, want 2", st.CacheHits)
	}
	// Different content misses the cache.
	req2 := Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "different"}}}
	if _, err := c.Complete(context.Background(), req2); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&bot.calls); got != 2 {
		t.Errorf("backend called %d times, want 2", got)
	}
}

func TestClientUsageAccounting(t *testing.T) {
	c := NewClient(&flakyBot{}, WithCache(false))
	req := Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "x"}}}
	for i := 0; i < 3; i++ {
		if _, err := c.Complete(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Usage.PromptTokens != 30 || st.Usage.CompletionTokens != 6 {
		t.Errorf("usage = %+v", st.Usage)
	}
	if st.Usage.Total() != 36 {
		t.Errorf("total = %d", st.Usage.Total())
	}
}

func TestClientContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := NewClient(&flakyBot{failures: 100}, WithRetries(5, 1))
	_, err := c.Complete(ctx, Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestOpenAIBackend(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/chat/completions" {
			t.Errorf("path = %s", r.URL.Path)
		}
		if got := r.Header.Get("Authorization"); got != "Bearer test-key" {
			t.Errorf("auth = %q", got)
		}
		var req oaRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			t.Errorf("decode: %v", err)
		}
		if req.Model != "gpt-4-turbo-2024-04-09" {
			t.Errorf("model = %q", req.Model)
		}
		if len(req.Messages) != 3 {
			t.Errorf("messages = %d", len(req.Messages))
		}
		resp := map[string]any{
			"choices": []map[string]any{{"message": map[string]any{"content": `[[1, "email address"]]`}}},
			"usage":   map[string]int{"prompt_tokens": 100, "completion_tokens": 10},
		}
		if err := json.NewEncoder(w).Encode(resp); err != nil {
			t.Error(err)
		}
	}))
	defer srv.Close()

	bot, err := NewOpenAI(OpenAIConfig{BaseURL: srv.URL, APIKey: "test-key", Model: "gpt-4-turbo-2024-04-09"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := bot.Complete(context.Background(), ExtractTypesRequest("[1] We collect your email address.", 3))
	if err != nil {
		t.Fatal(err)
	}
	es, err := ParseExtractions(resp.Content)
	if err != nil || len(es) != 1 || es[0].Text != "email address" {
		t.Errorf("extractions = %+v, err=%v", es, err)
	}
	if resp.Usage.PromptTokens != 100 {
		t.Errorf("usage = %+v", resp.Usage)
	}
}

func TestOpenAIErrors(t *testing.T) {
	if _, err := NewOpenAI(OpenAIConfig{Model: "x"}); err == nil {
		t.Error("missing BaseURL should fail")
	}
	if _, err := NewOpenAI(OpenAIConfig{BaseURL: "http://x"}); err == nil {
		t.Error("missing Model should fail")
	}

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(429)
		_, _ = w.Write([]byte(`{"error": {"message": "rate limited", "type": "rate_limit"}}`))
	}))
	defer srv.Close()
	bot, err := NewOpenAI(OpenAIConfig{BaseURL: srv.URL, Model: "m"})
	if err != nil {
		t.Fatal(err)
	}
	_, err = bot.Complete(context.Background(), Request{Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if err == nil || !contains(err.Error(), "rate limited") {
		t.Errorf("err = %v", err)
	}
}

func TestOpenAIEmptyChoice(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`{"choices": []}`))
	}))
	defer srv.Close()
	bot, _ := NewOpenAI(OpenAIConfig{BaseURL: srv.URL, Model: "m"})
	_, err := bot.Complete(context.Background(), Request{Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if !errors.Is(err, ErrEmptyResponse) {
		t.Errorf("err = %v, want ErrEmptyResponse", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

func TestDiskCache(t *testing.T) {
	dir := t.TempDir()
	bot := &flakyBot{}
	req := Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "persist me"}}}

	c1 := NewClient(bot, WithDiskCache(dir))
	if _, err := c1.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&bot.calls); got != 1 {
		t.Fatalf("backend calls = %d", got)
	}

	// A brand-new client (fresh process in real life) hits the disk cache.
	c2 := NewClient(bot, WithDiskCache(dir))
	resp, err := c2.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&bot.calls); got != 1 {
		t.Errorf("backend called again despite disk cache (calls=%d)", got)
	}
	if resp.Content != "[]" {
		t.Errorf("cached content = %q", resp.Content)
	}
	if st := c2.Stats(); st.CacheHits != 1 {
		t.Errorf("cache hits = %d", st.CacheHits)
	}
}

func TestDiskCacheCorruptEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	bot := &flakyBot{}
	req := Request{Task: "t", Messages: []Message{{Role: RoleUser, Content: "x"}}}
	c := NewClient(bot, WithDiskCache(dir))
	if _, err := c.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	// Corrupt every cached file.
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		return os.WriteFile(path, []byte("not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewClient(bot, WithDiskCache(dir))
	if _, err := c2.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if got := atomic.LoadInt32(&bot.calls); got != 2 {
		t.Errorf("corrupt entry should force re-completion (calls=%d)", got)
	}
}
