// Package chatbot implements the paper's AI-chatbot layer (§3.2): task
// prompts (Appendix C), strict-JSON answer parsing, token accounting, and
// several interchangeable backends behind one interface — a deterministic
// GPT-4-class simulated annotator, degraded GPT-3.5/Llama-class simulators
// for the §6 model comparison, and an OpenAI-compatible HTTP client for
// driving a real LLM.
//
// The pipeline is chatbot-agnostic by construction: every annotation step
// renders a textual prompt, sends it through the Chatbot interface, and
// parses the JSON that comes back. No caller reaches into a backend's
// internals.
package chatbot

import (
	"context"
	"errors"
	"strings"
)

// Role names for chat messages.
const (
	RoleSystem    = "system"
	RoleUser      = "user"
	RoleAssistant = "assistant"
)

// Message is one chat turn.
type Message struct {
	Role    string `json:"role"`
	Content string `json:"content"`
}

// Request is a chat-completion request.
type Request struct {
	// Task identifies the prompt kind (see the Task* constants). It is
	// embedded in the prompt text as a "### Task-ID:" line; backends may
	// dispatch on it the way a real LLM dispatches on the instructions.
	Task string
	// Messages is the conversation: a system persona, the task
	// instructions, and the input document as the final user message.
	Messages []Message
	// Temperature is passed through to real LLM backends (the paper runs
	// annotation at low temperature for consistency).
	Temperature float64
	// MaxTokens caps the completion length for real backends.
	MaxTokens int
}

// Input returns the final user message — the document under analysis.
func (r *Request) Input() string {
	for i := len(r.Messages) - 1; i >= 0; i-- {
		if r.Messages[i].Role == RoleUser {
			return r.Messages[i].Content
		}
	}
	return ""
}

// TaskMessage returns the first user message — the task instructions.
func (r *Request) TaskMessage() string {
	for _, m := range r.Messages {
		if m.Role == RoleUser {
			return m.Content
		}
	}
	return ""
}

// Response is a chat completion.
type Response struct {
	// Content is the assistant's text (the tasks demand bare JSON).
	Content string
	// Model names the backend that produced the response.
	Model string
	// Usage is the token accounting for this call.
	Usage Usage
}

// Usage counts tokens for a call (approximate for simulated backends).
type Usage struct {
	PromptTokens     int
	CompletionTokens int
}

// Total returns prompt+completion tokens.
func (u Usage) Total() int { return u.PromptTokens + u.CompletionTokens }

// Add accumulates another usage record.
func (u *Usage) Add(v Usage) {
	u.PromptTokens += v.PromptTokens
	u.CompletionTokens += v.CompletionTokens
}

// Chatbot is the provider-agnostic completion interface.
type Chatbot interface {
	// Name identifies the model, e.g. "sim-gpt4".
	Name() string
	// Complete runs one chat completion.
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrEmptyResponse is returned when a backend produces no content.
var ErrEmptyResponse = errors.New("chatbot: empty response")

// Task identifiers (the "### Task-ID:" values in prompts).
const (
	TaskHeadingLabels     = "heading-labels"
	TaskSegmentText       = "segment-text"
	TaskExtractTypes      = "extract-types"
	TaskNormalizeTypes    = "normalize-types"
	TaskExtractPurposes   = "extract-purposes"
	TaskNormalizePurposes = "normalize-purposes"
	TaskHandlingLabels    = "handling-labels"
	TaskRightsLabels      = "rights-labels"
)

// EstimateTokens approximates a token count for accounting: the usual
// ~4 characters/token heuristic used for budgeting GPT-class models.
func EstimateTokens(s string) int {
	n := len(s) / 4
	if n == 0 && len(s) > 0 {
		n = 1
	}
	return n
}

// RequestTokens estimates the prompt-token total of a request.
func RequestTokens(r *Request) int {
	n := 0
	for _, m := range r.Messages {
		n += EstimateTokens(m.Content) + 4
	}
	return n
}

// taskIDFromPrompt recovers the Task-ID marker from a task message; real
// LLMs ignore the marker, simulated backends dispatch on it.
func taskIDFromPrompt(task string) string {
	const marker = "### Task-ID: "
	i := strings.Index(task, marker)
	if i < 0 {
		return ""
	}
	rest := task[i+len(marker):]
	if j := strings.IndexByte(rest, '\n'); j >= 0 {
		rest = rest[:j]
	}
	return strings.TrimSpace(rest)
}
