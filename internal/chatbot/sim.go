package chatbot

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"aipan/internal/nlp"
	"aipan/internal/taxonomy"
)

// Profile parameterizes a simulated chatbot's competence. The GPT-4-class
// profile follows every prompt instruction; the degraded profiles reproduce
// the failure modes the paper measured in §6 (Llama-3.1 extracting negated
// mentions, GPT-3.5 mistaking vendor names like ActiveCampaign for data
// types and following instructions loosely).
type Profile struct {
	// ModelName is reported in responses, e.g. "sim-gpt4".
	ModelName string
	// NegationErrorRate is the probability a mention in a negated or
	// hypothetical context is (wrongly) extracted anyway.
	NegationErrorRate float64
	// VendorConfusion is the probability a product/vendor name is mistaken
	// for a collected data type.
	VendorConfusion float64
	// MissRate is the probability a true glossary mention is overlooked.
	MissRate float64
	// MislabelRate is the probability a normalization lands in the wrong
	// category.
	MislabelRate float64
	// NoveltyZeal is the probability an out-of-glossary noun phrase is
	// extracted zero-shot.
	NoveltyZeal float64
	// SpanSloppiness is the probability an extraction span is drawn too
	// wide (swallowing neighboring words), a boundary error weak models
	// make that breaks exact-term validation.
	SpanSloppiness float64
	// Seed makes all stochastic decisions deterministic per (seed, input).
	Seed uint64
}

// GPT4Profile models gpt-4-turbo: instruction-faithful, negation-aware.
func GPT4Profile() Profile {
	return Profile{
		ModelName:         "sim-gpt4",
		NegationErrorRate: 0.0,
		VendorConfusion:   0.0,
		MissRate:          0.0,
		MislabelRate:      0.02,
		NoveltyZeal:       0.9,
		Seed:              4,
	}
}

// Llama31Profile models Llama-3.1: comparable extraction but unable to
// follow the negated-context instruction closely (§6).
func Llama31Profile() Profile {
	return Profile{
		ModelName:         "sim-llama31",
		NegationErrorRate: 0.85,
		VendorConfusion:   0.05,
		MissRate:          0.05,
		MislabelRate:      0.06,
		NoveltyZeal:       0.7,
		SpanSloppiness:    0.20,
		Seed:              31,
	}
}

// GPT35Profile models gpt-3.5-turbo: struggles with complex policy text,
// e.g. mistaking the marketing platform ActiveCampaign for a data type
// describing campaign engagement (§6).
func GPT35Profile() Profile {
	return Profile{
		ModelName:         "sim-gpt35",
		NegationErrorRate: 0.9,
		VendorConfusion:   0.8,
		MissRate:          0.18,
		MislabelRate:      0.15,
		NoveltyZeal:       1.0,
		SpanSloppiness:    0.22,
		Seed:              35,
	}
}

// knownVendors are marketing/analytics platforms that appear in policies;
// weak models confuse them with data types. The synthetic corpus plants
// sentences naming them.
var knownVendors = []string{
	"activecampaign", "mailchimp", "salesforce", "hubspot", "marketo",
	"zendesk", "braze", "klaviyo", "pardot", "eloqua",
}

// Sim is the deterministic prompt-following simulated chatbot. It parses
// the task instructions, glossary, and numbered input out of the request —
// the same text a real LLM would read — and performs the task with lexicon
// and NLP machinery.
type Sim struct {
	profile        Profile
	typeMatcher    *phraseMatcher
	purposeMatcher *phraseMatcher
	typeIndex      *taxonomy.Index
	purposeIndex   *taxonomy.Index
	vendorSet      map[string]bool
}

// NewSim builds a simulated chatbot with the given competence profile.
func NewSim(p Profile) *Sim {
	var typeSurfaces, purposeSurfaces []string
	for _, c := range taxonomy.TypeCategories() {
		for _, d := range c.Descriptors {
			typeSurfaces = append(typeSurfaces, d.Name)
			typeSurfaces = append(typeSurfaces, d.Synonyms...)
		}
	}
	for _, c := range taxonomy.PurposeCategories() {
		for _, d := range c.Descriptors {
			purposeSurfaces = append(purposeSurfaces, d.Name)
			purposeSurfaces = append(purposeSurfaces, d.Synonyms...)
		}
	}
	vs := make(map[string]bool, len(knownVendors))
	for _, v := range knownVendors {
		vs[v] = true
	}
	return &Sim{
		profile:        p,
		typeMatcher:    newPhraseMatcher(typeSurfaces),
		purposeMatcher: newPhraseMatcher(purposeSurfaces),
		typeIndex:      taxonomy.NewTypeIndex(),
		purposeIndex:   taxonomy.NewPurposeIndex(),
		vendorSet:      vs,
	}
}

// Name implements Chatbot.
func (s *Sim) Name() string { return s.profile.ModelName }

// Complete implements Chatbot: it dispatches on the task embedded in the
// prompt and returns strict JSON, as the instructions demand.
func (s *Sim) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	task := req.Task
	if task == "" {
		task = taskIDFromPrompt(req.TaskMessage())
	}
	input := req.Input()
	var content string
	switch task {
	case TaskHeadingLabels:
		content = EncodeLineLabels(s.labelLines(input, true))
	case TaskSegmentText:
		content = EncodeLineLabels(s.labelLines(input, false))
	case TaskExtractTypes:
		content = EncodeExtractions(s.extractTypes(input))
	case TaskNormalizeTypes:
		content = EncodeNormalizations(s.normalize(input, s.typeIndex, taxonomy.TypeCategories()))
	case TaskExtractPurposes:
		content = EncodeExtractions(s.extractPurposes(input))
	case TaskNormalizePurposes:
		content = EncodeNormalizations(s.normalize(input, s.purposeIndex, taxonomy.PurposeCategories()))
	case TaskHandlingLabels:
		content = EncodeLabeledMentions(s.labelHandling(input))
	case TaskRightsLabels:
		content = EncodeLabeledMentions(s.labelRights(input))
	default:
		return Response{}, fmt.Errorf("chatbot: sim cannot interpret task %q", task)
	}
	return Response{
		Content: content,
		Model:   s.profile.ModelName,
		Usage: Usage{
			PromptTokens:     RequestTokens(&req),
			CompletionTokens: EstimateTokens(content),
		},
	}, nil
}

// numLine is a parsed "[n] text" input line.
type numLine struct {
	n    int
	text string
}

// parseNumbered reads "[n] text" lines; unnumbered lines get sequential
// numbers (the normalize tasks pass bare mention lists).
func parseNumbered(input string) []numLine {
	var out []numLine
	next := 1
	for _, raw := range strings.Split(input, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" {
			continue
		}
		n := next
		text := line
		if strings.HasPrefix(line, "[") {
			if i := strings.IndexByte(line, ']'); i > 1 {
				if v, err := strconv.Atoi(strings.TrimSpace(line[1:i])); err == nil {
					n = v
					text = strings.TrimSpace(line[i+1:])
				}
			}
		}
		out = append(out, numLine{n: n, text: text})
		next = n + 1
	}
	return out
}

// fnvHash is an inline FNV-1a accumulator. The sim draws several decisions
// per input line; hashing in place (instead of fnv.New64a + Fprintf per
// draw) keeps the hot path allocation-free while producing bit-identical
// sums to the hash/fnv implementation it replaces.
type fnvHash uint64

const (
	fnvOffset64 fnvHash = 14695981039346656037
	fnvPrime64  fnvHash = 1099511628211
)

func (h fnvHash) byte(b byte) fnvHash { return (h ^ fnvHash(b)) * fnvPrime64 }

func (h fnvHash) str(s string) fnvHash {
	for i := 0; i < len(s); i++ {
		h = (h ^ fnvHash(s[i])) * fnvPrime64
	}
	return h
}

// num hashes the decimal digits of n, matching the byte stream the old
// fmt.Fprintf("%d") / strconv.Itoa key parts produced.
func (h fnvHash) num(n int64) fnvHash {
	var buf [20]byte
	for _, c := range strconv.AppendInt(buf[:0], n, 10) {
		h = h.byte(c)
	}
	return h
}

// unum is num for unsigned values (the profile seed), matching %d on a
// uint64 across the full range.
func (h fnvHash) unum(n uint64) fnvHash {
	var buf [20]byte
	for _, c := range strconv.AppendUint(buf[:0], n, 10) {
		h = h.byte(c)
	}
	return h
}

func (h fnvHash) draw() float64 { return float64(uint64(h)%1e9) / 1e9 }

func (s *Sim) decideBase() fnvHash {
	return fnvOffset64.unum(s.profile.Seed)
}

// decide returns a deterministic pseudo-random draw in [0,1) for the given
// decision key, so that identical runs reproduce identical "mistakes".
func (s *Sim) decide(parts ...string) float64 {
	h := s.decideBase()
	for _, p := range parts {
		h = h.byte(0).str(p)
	}
	return h.draw()
}

// decideLine is decide(kind, strconv.Itoa(n), part) without materializing
// the line-number string — the dominant decision shape in extraction.
func (s *Sim) decideLine(kind string, n int, part string) float64 {
	return s.decideBase().byte(0).str(kind).byte(0).num(int64(n)).byte(0).str(part).draw()
}

// ---------------------------------------------------------------- aspects

type aspectRule struct {
	aspect taxonomy.Aspect
	cues   []string
}

// headingRules classify section headings (Appendix B / Figure 2a).
var headingRules = []aspectRule{
	{taxonomy.AspectAudiences, []string{"children", "minors", "california", "european", "gdpr", "nevada", "virginia", "resident", "jurisdiction", "ccpa"}},
	{taxonomy.AspectChanges, []string{"changes", "updates to", "amendments", "modifications to this"}},
	{taxonomy.AspectMethods, []string{"how we collect", "sources of", "collection methods", "cookies", "tracking technologies", "how do we collect", "where we get"}},
	{taxonomy.AspectTypes, []string{"information we collect", "data we collect", "types of data", "categories of", "what information", "what we collect", "personal information we", "data collected", "information collected"}},
	{taxonomy.AspectPurposes, []string{"how we use", "use of", "why we collect", "purposes", "why do we", "what we do with", "how do we use"}},
	{taxonomy.AspectHandling, []string{"retention", "how long", "security", "protect", "safeguard", "storage", "store your"}},
	{taxonomy.AspectSharing, []string{"share", "sharing", "disclosure", "disclose", "third parties", "third-party", "who we", "recipients"}},
	{taxonomy.AspectRights, []string{"your rights", "your choices", "opt-out", "opt out", "your privacy rights", "access and correction", "managing your", "controls", "preferences", "deletion rights"}},
	{taxonomy.AspectOther, []string{"contact", "introduction", "about this", "definitions", "effective date", "overview", "scope"}},
}

func (s *Sim) classifyHeading(text string) []string {
	return s.classifyHeadingLow(strings.ToLower(text))
}

func (s *Sim) classifyHeadingLow(low string) []string {
	labels := headingRuleMatcher().classify(low)
	if len(labels) == 0 {
		labels = []string{string(taxonomy.AspectOther)}
	}
	return labels
}

// classifyBody labels a body line by its content for the full-text
// segmentation fallback; low and toks are the caller's lowercased and
// tokenized forms of text.
func (s *Sim) classifyBody(text, low string, toks []tokenPos) []string {
	var labels []string
	add := func(a taxonomy.Aspect) {
		for _, l := range labels {
			if l == string(a) {
				return
			}
		}
		labels = append(labels, string(a))
	}
	if retentionMatcher().any(low) || protectionMatcher().any(low) {
		add(taxonomy.AspectHandling)
	}
	if choiceMatcher().any(low) || accessMatcher().any(low) {
		add(taxonomy.AspectRights)
	}
	if len(s.purposeMatcher.findToks(text, toks)) > 0 {
		add(taxonomy.AspectPurposes)
	}
	if len(s.typeMatcher.findToks(text, toks)) > 0 {
		add(taxonomy.AspectTypes)
	}
	for _, w := range []string{"share", "disclose", "third part"} {
		if strings.Contains(low, w) {
			add(taxonomy.AspectSharing)
			break
		}
	}
	for _, w := range []string{"children", "california", "gdpr", "european"} {
		if strings.Contains(low, w) {
			add(taxonomy.AspectAudiences)
			break
		}
	}
	if strings.Contains(low, "changes to this") || strings.Contains(low, "update this policy") {
		add(taxonomy.AspectChanges)
	}
	if len(labels) == 0 {
		add(taxonomy.AspectOther)
	}
	return labels
}

func (s *Sim) labelLines(input string, headingsOnly bool) []LineLabels {
	lines := parseNumbered(input)
	out := make([]LineLabels, 0, len(lines))
	var scratch []tokenPos
	for _, l := range lines {
		var labels []string
		if headingsOnly {
			labels = s.classifyHeading(l.text)
		} else {
			// Fallback mode: a line may mix heading-style cues and body
			// content (short policies collapse to few lines), so take the
			// union of both classifiers.
			low := strings.ToLower(l.text)
			scratch = tokenizeInto(scratch[:0], l.text)
			labels = unionLabels(s.classifyHeadingLow(low), s.classifyBody(l.text, low, scratch))
		}
		out = append(out, LineLabels{Line: l.n, Labels: labels})
	}
	return out
}

// unionLabels merges label sets, dropping "other" unless it is all there is.
func unionLabels(a, b []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, l := range append(append([]string{}, a...), b...) {
		if l == string(taxonomy.AspectOther) || seen[l] {
			continue
		}
		seen[l] = true
		out = append(out, l)
	}
	if len(out) == 0 {
		return []string{string(taxonomy.AspectOther)}
	}
	return out
}

// ------------------------------------------------------------ extraction

// collectionVerbs gate zero-shot noun-phrase extraction: a candidate only
// counts when the line talks about collecting/receiving data.
var collectionVerbs = []string{
	"collect", "gather", "receive", "obtain", "process", "provide",
	"submit", "request", "record", "log", "store",
}

func hasCollectionContext(low string) bool {
	for _, v := range collectionVerbs {
		if strings.Contains(low, v) {
			return true
		}
	}
	return strings.HasPrefix(low, "*")
}

func (s *Sim) extractTypes(input string) []Extraction {
	var out []Extraction
	var scratch []tokenPos
	for _, l := range parseNumbered(input) {
		low := strings.ToLower(l.text)
		scratch = tokenizeInto(scratch[:0], l.text)
		toks := scratch
		spans := s.typeMatcher.findToks(l.text, toks)
		if s.profile.NoveltyZeal > 0 && hasCollectionContext(low) {
			for _, np := range findNovelNounPhrases(l.text, toks, spans) {
				if s.decideLine("novel", l.n, np.text) < s.profile.NoveltyZeal {
					spans = append(spans, np)
				}
			}
		}
		for _, sp := range spans {
			if s.skipMention(l, sp) {
				continue
			}
			text := sp.text
			if s.profile.SpanSloppiness > 0 &&
				s.decideLine("sloppy", l.n, sp.text) < s.profile.SpanSloppiness {
				text = s.sloppySpan(l.text, toks, sp)
			}
			out = append(out, Extraction{Line: l.n, Text: text})
		}
		// Vendor confusion: weak models extract product names as data types.
		if s.profile.VendorConfusion > 0 {
			for _, t := range toks {
				if s.vendorSet[t.word] &&
					s.decideLine("vendor", l.n, t.word) < s.profile.VendorConfusion {
					out = append(out, Extraction{Line: l.n, Text: l.text[t.start:t.end]})
				}
			}
		}
	}
	return out
}

func (s *Sim) extractPurposes(input string) []Extraction {
	var out []Extraction
	var scratch []tokenPos
	for _, l := range parseNumbered(input) {
		scratch = tokenizeInto(scratch[:0], l.text)
		for _, sp := range s.purposeMatcher.findToks(l.text, scratch) {
			if s.skipMention(l, sp) {
				continue
			}
			out = append(out, Extraction{Line: l.n, Text: sp.text})
		}
	}
	return out
}

// skipMention applies the negation instruction and the miss rate.
func (s *Sim) skipMention(l numLine, sp matchSpan) bool {
	sentence := nlp.SentenceOf(l.text, sp.text)
	if nlp.IsNegatedMention(sentence, sp.text) {
		// Instruction-faithful models skip; weak models extract anyway with
		// probability NegationErrorRate.
		if s.decideLine("neg", l.n, sp.text) >= s.profile.NegationErrorRate {
			return true
		}
		return false
	}
	return s.decideLine("miss", l.n, sp.text) < s.profile.MissRate
}

// ---------------------------------------------------------- normalization

func (s *Sim) normalize(input string, ix *taxonomy.Index, cats []taxonomy.Category) []Normalization {
	var out []Normalization
	for _, l := range parseNumbered(input) {
		mention := l.text
		m, ok := ix.Lookup(mention)
		if !ok {
			// The chatbot invents a descriptor but cannot place it: emit the
			// normalized surface under an empty category; the pipeline drops
			// such rows (mirrors annotations the authors discard).
			out = append(out, Normalization{Surface: mention, Descriptor: nlp.NormalizeStemmed(mention)})
			continue
		}
		if s.profile.MislabelRate > 0 && s.decide("mislabel", mention) < s.profile.MislabelRate {
			// Deterministically shift to a neighboring category.
			for i, c := range cats {
				if c.Name == m.Category {
					alt := cats[(i+1)%len(cats)]
					m.Category, m.Meta = alt.Name, alt.Meta
					break
				}
			}
		}
		out = append(out, Normalization{
			Surface: mention, Meta: m.Meta, Category: m.Category, Descriptor: m.Descriptor,
		})
	}
	return out
}

// ------------------------------------------------------- handling/rights

// The Table 1 label sets are static literals, but the taxonomy functions
// rebuild them (and this file used to rebuild the flattened cue maps) on
// every call — once per input LINE on the labeling paths. Build each once.
var (
	retentionLabels  = sync.OnceValue(taxonomy.RetentionLabels)
	protectionLabels = sync.OnceValue(taxonomy.ProtectionLabels)
	choiceLabels     = sync.OnceValue(taxonomy.ChoiceLabels)
	accessLabels     = sync.OnceValue(taxonomy.AccessLabels)

)

// verbatim recovers the original-case substring of line matching cue; low
// is the caller's already-lowercased copy of line.
func verbatim(line, low, cue string) string {
	if i := strings.Index(low, cue); i >= 0 {
		return line[i : i+len(cue)]
	}
	return cue
}

func (s *Sim) labelHandling(input string) []LabeledMention {
	var out []LabeledMention
	for _, l := range parseNumbered(input) {
		low := strings.ToLower(l.text)
		// Retention: a parsed duration beats the unspecific labels.
		if p, ok := nlp.ParseRetention(l.text); ok && retentionMatcher().any(low) {
			if s.decideLine("hmiss", l.n, "stated") >= s.profile.MissRate {
				out = append(out, LabeledMention{
					Line: l.n, Group: taxonomy.GroupRetention,
					Label: taxonomy.RetentionStated, Text: statedVerbatim(l.text, p.Raw),
				})
			}
		} else {
			for _, m := range retentionMatcher().match(low) {
				if m.Label == taxonomy.RetentionStated {
					continue // anchors alone don't make a stated period
				}
				if s.decideLine("hmiss", l.n, m.Label) < s.profile.MissRate {
					continue
				}
				out = append(out, LabeledMention{
					Line: l.n, Group: taxonomy.GroupRetention,
					Label: m.Label, Text: verbatim(l.text, low, m.Cue),
				})
				break // one retention label per line
			}
		}
		for _, m := range protectionMatcher().match(low) {
			if s.decideLine("pmiss", l.n, m.Label) < s.profile.MissRate {
				continue
			}
			out = append(out, LabeledMention{
				Line: l.n, Group: taxonomy.GroupProtection,
				Label: m.Label, Text: verbatim(l.text, low, m.Cue),
			})
		}
	}
	return out
}

// statedVerbatim expands a parsed duration ("six 6 years") back to the
// verbatim fragment of the line, e.g. "six (6) years".
func statedVerbatim(line, rawWords string) string {
	toks := tokenize(line)
	want := strings.Fields(rawWords)
	if len(want) == 0 {
		return rawWords
	}
	for i := 0; i+len(want) <= len(toks); i++ {
		ok := true
		for k := range want {
			if toks[i+k].word != want[k] {
				ok = false
				break
			}
		}
		if ok {
			return line[toks[i].start:toks[i+len(want)-1].end]
		}
	}
	return rawWords
}

func (s *Sim) labelRights(input string) []LabeledMention {
	var out []LabeledMention
	for _, l := range parseNumbered(input) {
		low := strings.ToLower(l.text)
		for _, m := range choiceMatcher().match(low) {
			if s.decideLine("cmiss", l.n, m.Label) < s.profile.MissRate {
				continue
			}
			out = append(out, LabeledMention{
				Line: l.n, Group: taxonomy.GroupChoices,
				Label: m.Label, Text: verbatim(l.text, low, m.Cue),
			})
		}
		for _, m := range accessMatcher().match(low) {
			if s.decideLine("amiss", l.n, m.Label) < s.profile.MissRate {
				continue
			}
			out = append(out, LabeledMention{
				Line: l.n, Group: taxonomy.GroupAccess,
				Label: m.Label, Text: verbatim(l.text, low, m.Cue),
			})
		}
	}
	return out
}

// sloppySpan widens an extraction by up to two preceding tokens — the
// boundary error weak models make ("collect your email address" instead
// of "email address").
func (s *Sim) sloppySpan(line string, toks []tokenPos, sp matchSpan) string {
	if sp.startTok <= 0 || sp.startTok > len(toks) || sp.endTok > len(toks) {
		return sp.text
	}
	start := sp.startTok - 1
	if start > 0 && s.decide("sloppy2", sp.text) < 0.5 {
		start--
	}
	return line[toks[start].start:toks[sp.endTok-1].end]
}
