package chatbot

import (
	"strings"
	"testing"

	"aipan/internal/taxonomy"
)

// The prompts are the paper's interface to the LLM (Appendix C); these
// tests pin their structure: persona, Task-ID marker, instructions,
// glossary, example, and the input travelling as the final user message.

func TestPromptStructureCommon(t *testing.T) {
	reqs := map[string]Request{
		TaskHeadingLabels:     HeadingLabelsRequest("[1] Information We Collect\n"),
		TaskSegmentText:       SegmentTextRequest("[1] text\n"),
		TaskExtractTypes:      ExtractTypesRequest("[1] text\n", 3),
		TaskNormalizeTypes:    NormalizeTypesRequest([]string{"mailing address"}, 3),
		TaskExtractPurposes:   ExtractPurposesRequest("[1] text\n", 3),
		TaskNormalizePurposes: NormalizePurposesRequest([]string{"prevent fraud"}, 3),
		TaskHandlingLabels:    HandlingLabelsRequest("[1] text\n"),
		TaskRightsLabels:      RightsLabelsRequest("[1] text\n"),
	}
	for task, req := range reqs {
		if req.Task != task {
			t.Errorf("%s: Task field = %q", task, req.Task)
		}
		if len(req.Messages) != 3 {
			t.Fatalf("%s: %d messages, want 3 (system, task, input)", task, len(req.Messages))
		}
		if req.Messages[0].Role != RoleSystem ||
			!strings.Contains(req.Messages[0].Content, "data privacy expert") {
			t.Errorf("%s: system persona missing", task)
		}
		taskMsg := req.TaskMessage()
		if !strings.Contains(taskMsg, "### Task-ID: "+task) {
			t.Errorf("%s: Task-ID marker missing", task)
		}
		if got := taskIDFromPrompt(taskMsg); got != task {
			t.Errorf("%s: taskIDFromPrompt = %q", task, got)
		}
		if !strings.Contains(taskMsg, "### Instructions:") {
			t.Errorf("%s: instructions section missing", task)
		}
		if !strings.Contains(taskMsg, "### Example:") {
			t.Errorf("%s: example section missing", task)
		}
		if !strings.Contains(taskMsg, "JSON") {
			t.Errorf("%s: JSON output instruction missing", task)
		}
		if req.Temperature != 0 {
			t.Errorf("%s: temperature = %v, want 0 for consistency", task, req.Temperature)
		}
	}
}

func TestHeadingPromptCoversAllNineAspects(t *testing.T) {
	req := HeadingLabelsRequest("[1] x\n")
	msg := req.TaskMessage()
	for _, a := range taxonomy.Aspects() {
		if !strings.Contains(msg, "**"+string(a)+":**") {
			t.Errorf("aspect %q missing from heading prompt", a)
		}
	}
	// The paper's glossary phrases ship with the prompt.
	if !strings.Contains(msg, `"Information we collect"`) {
		t.Error("heading glossary examples missing")
	}
}

func TestExtractTypesPromptMirrorsFigure2b(t *testing.T) {
	req := ExtractTypesRequest("[1] x\n", 3)
	msg := req.TaskMessage()
	for _, want := range []string{
		"Ignore mentions in hypothetical or negated contexts",
		"exact", // pinpoint the exact word(s)
		"not** comprehensive",
		"Separate lists into individual items",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("Figure 2b instruction %q missing", want)
		}
	}
	// Glossary truncation honored.
	if strings.Contains(msg, "fax number") {
		t.Error("glossary size 3 exceeded")
	}
	full := ExtractTypesRequest("[1] x\n", 0)
	if !strings.Contains(full.TaskMessage(), "fax number") {
		t.Error("full glossary missing entries")
	}
	none := ExtractTypesRequest("[1] x\n", -1)
	if strings.Contains(none.TaskMessage(), "postal address") {
		t.Error("glossary -1 should omit descriptors")
	}
}

func TestHandlingPromptListsAllLabels(t *testing.T) {
	req := HandlingLabelsRequest("[1] x\n")
	msg := req.TaskMessage()
	for _, l := range append(taxonomy.RetentionLabels(), taxonomy.ProtectionLabels()...) {
		if !strings.Contains(msg, "**"+l.Name+":**") {
			t.Errorf("handling label %q missing from prompt", l.Name)
		}
	}
}

func TestRightsPromptListsAllLabels(t *testing.T) {
	req := RightsLabelsRequest("[1] x\n")
	msg := req.TaskMessage()
	for _, l := range append(taxonomy.ChoiceLabels(), taxonomy.AccessLabels()...) {
		if !strings.Contains(msg, "**"+l.Name+":**") {
			t.Errorf("rights label %q missing from prompt", l.Name)
		}
	}
}

func TestInputIsFinalUserMessage(t *testing.T) {
	req := ExtractTypesRequest("[42] the policy text\n", 3)
	if got := req.Input(); got != "[42] the policy text\n" {
		t.Errorf("Input() = %q", got)
	}
}

func TestRequestTokensPositive(t *testing.T) {
	req := ExtractTypesRequest(strings.Repeat("[1] words words words\n", 50), 0)
	if n := RequestTokens(&req); n < 100 {
		t.Errorf("RequestTokens = %d", n)
	}
	if EstimateTokens("") != 0 || EstimateTokens("ab") != 1 {
		t.Error("EstimateTokens edge cases")
	}
}
