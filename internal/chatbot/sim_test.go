package chatbot

import (
	"context"
	"strings"
	"testing"
)

func gpt4() *Sim { return NewSim(GPT4Profile()) }

func complete(t *testing.T, bot Chatbot, req Request) string {
	t.Helper()
	resp, err := bot.Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("Complete: %v", err)
	}
	return resp.Content
}

func TestSimHeadingLabels(t *testing.T) {
	input := "[1] Privacy Policy\n[2] Information We Collect\n[3]   Cookies and Tracking Technologies\n[4] How We Use Your Information\n[5] Your Rights and Choices\n[6] Children's Privacy\n[7] Changes to this Policy\n[8] Contact Us\n"
	out := complete(t, gpt4(), HeadingLabelsRequest(input))
	lls, err := ParseLineLabels(out)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	if len(lls) != 8 {
		t.Fatalf("got %d labels, want 8", len(lls))
	}
	byLine := map[int][]string{}
	for _, ll := range lls {
		byLine[ll.Line] = ll.Labels
	}
	has := func(line int, label string) bool {
		for _, l := range byLine[line] {
			if l == label {
				return true
			}
		}
		return false
	}
	if !has(2, "types") {
		t.Errorf("line 2 labels = %v, want types", byLine[2])
	}
	if !has(3, "methods") {
		t.Errorf("line 3 labels = %v, want methods", byLine[3])
	}
	if !has(4, "purposes") {
		t.Errorf("line 4 labels = %v, want purposes", byLine[4])
	}
	if !has(5, "rights") {
		t.Errorf("line 5 labels = %v, want rights", byLine[5])
	}
	if !has(6, "audiences") {
		t.Errorf("line 6 labels = %v, want audiences", byLine[6])
	}
	if !has(7, "changes") {
		t.Errorf("line 7 labels = %v, want changes", byLine[7])
	}
	if !has(8, "other") {
		t.Errorf("line 8 labels = %v, want other", byLine[8])
	}
}

func TestSimExtractTypes(t *testing.T) {
	input := "[1] We collect your email address, mailing address and phone number.\n[2] We also gather browsing history and cookies.\n"
	out := complete(t, gpt4(), ExtractTypesRequest(input, 3))
	es, err := ParseExtractions(out)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	found := map[string]int{}
	for _, e := range es {
		found[strings.ToLower(e.Text)] = e.Line
	}
	for _, want := range []string{"email address", "mailing address", "phone number", "browsing history", "cookies"} {
		if _, ok := found[want]; !ok {
			t.Errorf("missing extraction %q (got %v)", want, found)
		}
	}
	if found["email address"] != 1 || found["cookies"] != 2 {
		t.Errorf("wrong line numbers: %v", found)
	}
}

func TestSimExtractTypesSkipsNegated(t *testing.T) {
	input := "[1] We do not collect biometric data or social security numbers.\n[2] We collect your email address.\n"
	out := complete(t, gpt4(), ExtractTypesRequest(input, 3))
	es, err := ParseExtractions(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range es {
		low := strings.ToLower(e.Text)
		if strings.Contains(low, "biometric") || strings.Contains(low, "social security") {
			t.Errorf("GPT-4 profile extracted negated mention %q", e.Text)
		}
	}
	if len(es) == 0 {
		t.Error("positive mention also dropped")
	}
}

func TestSimLlamaExtractsNegated(t *testing.T) {
	// §6: Llama-3.1 tends to extract data types in negated contexts.
	input := "[1] This privacy notice does not apply to biometric data.\n"
	llama := NewSim(Llama31Profile())
	out := complete(t, llama, ExtractTypesRequest(input, 3))
	es, err := ParseExtractions(out)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range es {
		if strings.Contains(strings.ToLower(e.Text), "biometric") {
			found = true
		}
	}
	if !found {
		t.Error("llama profile should extract the negated biometric mention (NegationErrorRate=0.85)")
	}
}

func TestSimGPT35VendorConfusion(t *testing.T) {
	// §6: GPT-3.5 mistakes ActiveCampaign for a data type.
	input := "[1] We use ActiveCampaign to manage our marketing campaigns and collect engagement data.\n"
	gpt35 := NewSim(GPT35Profile())
	out := complete(t, gpt35, ExtractTypesRequest(input, 3))
	es, err := ParseExtractions(out)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range es {
		if strings.EqualFold(e.Text, "ActiveCampaign") {
			found = true
		}
	}
	if !found {
		t.Errorf("gpt-3.5 profile should extract the vendor name; got %+v", es)
	}
	// GPT-4 must not.
	out4 := complete(t, gpt4(), ExtractTypesRequest(input, 3))
	es4, _ := ParseExtractions(out4)
	for _, e := range es4 {
		if strings.EqualFold(e.Text, "ActiveCampaign") {
			t.Error("gpt-4 profile extracted the vendor name")
		}
	}
}

func TestSimZeroShotNovelPhrase(t *testing.T) {
	input := "[1] We collect pet adoption records when you register a companion animal.\n"
	out := complete(t, gpt4(), ExtractTypesRequest(input, 3))
	es, err := ParseExtractions(out)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range es {
		if strings.Contains(strings.ToLower(e.Text), "pet adoption record") {
			found = true
		}
	}
	if !found {
		t.Errorf("zero-shot phrase not extracted: %+v", es)
	}
}

func TestSimNormalizeTypes(t *testing.T) {
	out := complete(t, gpt4(), NormalizeTypesRequest([]string{"mailing address", "e-mail address", "gps coordinates"}, 3))
	ns, err := ParseNormalizations(out)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	if len(ns) != 3 {
		t.Fatalf("got %d normalizations", len(ns))
	}
	if ns[0].Descriptor != "postal address" || ns[0].Category != "Contact info" {
		t.Errorf("mailing address → %+v", ns[0])
	}
	if ns[1].Descriptor != "email address" {
		t.Errorf("e-mail address → %+v", ns[1])
	}
	if ns[2].Descriptor != "gps location" || ns[2].Meta != "Physical behavior" {
		t.Errorf("gps coordinates → %+v", ns[2])
	}
}

func TestSimExtractAndNormalizePurposes(t *testing.T) {
	input := "[1] We use your information to prevent fraud, personalize your experience, and send you marketing communications.\n"
	out := complete(t, gpt4(), ExtractPurposesRequest(input, 3))
	es, err := ParseExtractions(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(es) < 3 {
		t.Fatalf("got %d purpose extractions: %+v", len(es), es)
	}
	var mentions []string
	for _, e := range es {
		mentions = append(mentions, e.Text)
	}
	nout := complete(t, gpt4(), NormalizePurposesRequest(mentions, 3))
	ns, err := ParseNormalizations(nout)
	if err != nil {
		t.Fatal(err)
	}
	cats := map[string]bool{}
	for _, n := range ns {
		cats[n.Category] = true
	}
	for _, want := range []string{"Security", "User experience", "Advertising & sales"} {
		if !cats[want] {
			t.Errorf("missing category %q in %+v", want, ns)
		}
	}
}

func TestSimHandlingLabels(t *testing.T) {
	input := "[1] We retain your personal information for the period you are actively using our services plus six (6) years.\n" +
		"[2] We retain data only as long as necessary for our business purposes.\n" +
		"[3] Access to personal data is restricted to employees on a need-to-know basis.\n" +
		"[4] We use Secure Socket Layer (SSL) encryption technology for payment transactions.\n"
	out := complete(t, gpt4(), HandlingLabelsRequest(input))
	ms, err := ParseLabeledMentions(out)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	byLabel := map[string]LabeledMention{}
	for _, m := range ms {
		byLabel[m.Label] = m
	}
	if m, ok := byLabel["Stated"]; !ok || m.Line != 1 || !strings.Contains(m.Text, "six (6) years") {
		t.Errorf("Stated: %+v (ok=%v)", m, ok)
	}
	if m, ok := byLabel["Limited"]; !ok || m.Line != 2 {
		t.Errorf("Limited: %+v (ok=%v)", m, ok)
	}
	if m, ok := byLabel["Access limit"]; !ok || m.Line != 3 {
		t.Errorf("Access limit: %+v (ok=%v)", m, ok)
	}
	if m, ok := byLabel["Secure transfer"]; !ok || m.Line != 4 {
		t.Errorf("Secure transfer: %+v (ok=%v)", m, ok)
	}
}

func TestSimRightsLabels(t *testing.T) {
	input := "[1] You may opt out at any time by clicking the unsubscribe link at the bottom of our emails.\n" +
		"[2] You may request that we delete all of your personal information from our servers.\n" +
		"[3] You can change your preferences through your account settings.\n" +
		"[4] If you do not agree with this policy, please do not use our services.\n"
	out := complete(t, gpt4(), RightsLabelsRequest(input))
	ms, err := ParseLabeledMentions(out)
	if err != nil {
		t.Fatal(err)
	}
	byLabel := map[string]int{}
	for _, m := range ms {
		byLabel[m.Label] = m.Line
	}
	for label, line := range map[string]int{
		"Opt-out via link": 1,
		"Full delete":      2,
		"Privacy settings": 3,
		"Do not use":       4,
	} {
		if byLabel[label] != line {
			t.Errorf("%s on line %d, want %d (all: %v)", label, byLabel[label], line, byLabel)
		}
	}
}

func TestSimSegmentTextFallback(t *testing.T) {
	input := "[1] ACME Privacy Policy.\n[2] We collect your email address and phone number.\n[3] We use data for fraud prevention.\n[4] You may opt out by contacting us at privacy@acme.com.\n"
	out := complete(t, gpt4(), SegmentTextRequest(input))
	lls, err := ParseLineLabels(out)
	if err != nil {
		t.Fatal(err)
	}
	labelOf := map[int][]string{}
	for _, ll := range lls {
		labelOf[ll.Line] = ll.Labels
	}
	contains := func(line int, want string) bool {
		for _, l := range labelOf[line] {
			if l == want {
				return true
			}
		}
		return false
	}
	if !contains(2, "types") {
		t.Errorf("line 2 = %v, want types", labelOf[2])
	}
	if !contains(3, "purposes") {
		t.Errorf("line 3 = %v, want purposes", labelOf[3])
	}
	if !contains(4, "rights") {
		t.Errorf("line 4 = %v, want rights", labelOf[4])
	}
}

func TestSimDeterminism(t *testing.T) {
	input := "[1] We collect your email address and device identifiers for analytics.\n"
	req := ExtractTypesRequest(input, 3)
	a := complete(t, NewSim(Llama31Profile()), req)
	b := complete(t, NewSim(Llama31Profile()), req)
	if a != b {
		t.Errorf("sim not deterministic:\n%s\nvs\n%s", a, b)
	}
}

func TestSimUnknownTask(t *testing.T) {
	_, err := gpt4().Complete(context.Background(), Request{Task: "nonsense", Messages: []Message{{Role: RoleUser, Content: "x"}}})
	if err == nil {
		t.Error("unknown task should error")
	}
}

func TestSimTaskIDFromPromptFallback(t *testing.T) {
	req := ExtractTypesRequest("[1] We collect cookies.\n", 3)
	req.Task = "" // force dispatch via the prompt marker, like a real LLM
	out := complete(t, gpt4(), req)
	es, err := ParseExtractions(out)
	if err != nil || len(es) == 0 {
		t.Errorf("prompt-marker dispatch failed: %v %v", es, err)
	}
}

func TestSimTokenAccounting(t *testing.T) {
	req := ExtractTypesRequest("[1] We collect cookies.\n", 3)
	resp, err := gpt4().Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.PromptTokens <= 0 || resp.Usage.CompletionTokens <= 0 {
		t.Errorf("usage not accounted: %+v", resp.Usage)
	}
}

func BenchmarkSimExtractTypes(b *testing.B) {
	var sb strings.Builder
	for i := 1; i <= 40; i++ {
		sb.WriteString("[")
		sb.WriteString(strings.Repeat("", 0))
		sb.WriteString(strings.TrimSpace(strings.Join([]string{"[", "]"}, "")))
		sb.WriteString("")
	}
	input := "[1] We collect your email address, postal address, phone number, browsing history, cookies, device identifiers, and gps location for analytics and fraud prevention.\n"
	req := ExtractTypesRequest(strings.Repeat(input, 40), 3)
	bot := gpt4()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bot.Complete(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
}

func TestParseNumberedEdgeCases(t *testing.T) {
	lines := parseNumbered("[3] three\nplain line\n[10]   ten  \n\n[x] bad number\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %+v", len(lines), lines)
	}
	if lines[0].n != 3 || lines[0].text != "three" {
		t.Errorf("line 0: %+v", lines[0])
	}
	// Unnumbered lines continue from the previous number.
	if lines[1].n != 4 || lines[1].text != "plain line" {
		t.Errorf("line 1: %+v", lines[1])
	}
	if lines[2].n != 10 || lines[2].text != "ten" {
		t.Errorf("line 2: %+v", lines[2])
	}
	// Unparseable bracket keeps the raw text.
	if lines[3].text != "[x] bad number" {
		t.Errorf("line 3: %+v", lines[3])
	}
}

func TestStatedVerbatimRecoversPunctuation(t *testing.T) {
	line := "We keep records for six (6) years after closure."
	got := statedVerbatim(line, "six 6 years")
	if got != "six (6) years" {
		t.Errorf("statedVerbatim = %q", got)
	}
	// Fallback when words are absent.
	if got := statedVerbatim("nothing here", "six 6 years"); got != "six 6 years" {
		t.Errorf("fallback = %q", got)
	}
}

func TestSloppySpanWidens(t *testing.T) {
	s := NewSim(Llama31Profile())
	line := "We collect your email address today."
	spans := s.typeMatcher.find(line)
	if len(spans) != 1 {
		t.Fatalf("spans: %+v", spans)
	}
	wide := s.sloppySpan(line, tokenize(line), spans[0])
	if !strings.HasSuffix(wide, "email address") {
		t.Errorf("sloppy span %q lost the mention", wide)
	}
	if len(wide) <= len(spans[0].text) {
		t.Errorf("sloppy span %q did not widen %q", wide, spans[0].text)
	}
	// Span at line start cannot widen.
	line2 := "email address is required."
	spans2 := s.typeMatcher.find(line2)
	if got := s.sloppySpan(line2, tokenize(line2), spans2[0]); got != spans2[0].text {
		t.Errorf("start-of-line span changed: %q", got)
	}
}

func TestVerbatimHelper(t *testing.T) {
	if got := verbatim("You may OPT OUT by contacting us", strings.ToLower("You may OPT OUT by contacting us"), "opt out by contacting"); got != "OPT OUT by contacting" {
		t.Errorf("verbatim = %q", got)
	}
	if got := verbatim("no match here", "no match here", "absent cue"); got != "absent cue" {
		t.Errorf("fallback = %q", got)
	}
}
