package webgen

import (
	"math"
	"math/rand"
	"sync"

	"aipan/internal/taxonomy"
)

// novelPhrases are out-of-glossary data types planted occasionally to
// exercise the pipeline's zero-shot descriptor generation. Each contains a
// category trigger word so a competent annotator can place it.
var novelPhrases = []PlantedMention{
	{Meta: "Financial/legal profile", Category: "Insurance info", Surface: "pet insurance enrollment records", Novel: true},
	{Meta: "Physical profile", Category: "Professional info", Surface: "union membership employment records", Novel: true},
	{Meta: "Digital behavior", Category: "Diagnostic data", Surface: "battery diagnostic logs", Novel: true},
	{Meta: "Physical behavior", Category: "Travel data", Surface: "commute travel logs", Novel: true},
	{Meta: "Digital profile", Category: "Social media data", Surface: "social media follower metrics", Novel: true},
	{Meta: "Bio/health profile", Category: "Fitness & health", Surface: "gym fitness attendance records", Novel: true},
}

// decoyPool are sensitive data types used in "we do not collect X"
// sentences (§6's negated-context trap for weak models).
var decoyPool = []PlantedMention{
	{Meta: "Bio/health profile", Category: "Biometric data", Descriptor: "biometric data", Surface: "biometric data"},
	{Meta: "Physical profile", Category: "Personal identifier", Descriptor: "social security number", Surface: "social security numbers"},
	{Meta: "Bio/health profile", Category: "Medical info", Descriptor: "medical records", Surface: "medical records"},
	{Meta: "Physical behavior", Category: "Precise location", Descriptor: "gps location", Surface: "gps location"},
	{Meta: "Financial/legal profile", Category: "Financial capability", Descriptor: "credit score", Surface: "credit scores"},
	{Meta: "Bio/health profile", Category: "Fitness & health", Descriptor: "sleep patterns", Surface: "sleep patterns"},
	{Meta: "Physical profile", Category: "Demographic info", Descriptor: "ethnicity", Surface: "ethnicity"},
	{Meta: "Financial/legal profile", Category: "Legal info", Descriptor: "criminal records", Surface: "criminal records"},
	{Meta: "Digital profile", Category: "Social media data", Descriptor: "friends list", Surface: "friends lists"},
	{Meta: "Digital behavior", Category: "Communication data", Descriptor: "call records", Surface: "call records"},
	{Meta: "Physical behavior", Category: "Travel data", Descriptor: "travel history", Surface: "travel history"},
	{Meta: "Physical profile", Category: "Vehicle info", Descriptor: "license plate", Surface: "license plate numbers"},
}

// vendorPool are the marketing platforms planted for the GPT-3.5
// confusion experiment.
var vendorPool = []string{
	"ActiveCampaign", "MailChimp", "Salesforce", "HubSpot", "Marketo",
	"Zendesk", "Braze", "Klaviyo",
}

// Rates of optional content (fractions of non-failed sites).
const (
	decoyRate  = 0.22
	novelRate  = 0.05
	vendorRate = 0.08
)

// rareDescriptors caps the inclusion probability of descriptors the paper
// found to be much rarer than their category ("data for sale": 26
// companies in the whole corpus, §5).
var rareDescriptors = map[string]float64{
	"data for sale": 0.16, // tuned so ~26 companies mention it corpus-wide (§5)
}

// sample draws the site's layout and ground truth from the calibrated
// distributions. Failed sites get layout quirks but (mostly) no truth.
func (g *Generator) sample(s *Site) {
	rng := g.rngFor(s.Domain, "profile")
	defer putRng(rng)
	s.Layout = g.sampleLayout(rng, s)
	switch s.Failure {
	case FailNoPolicy, FailBlocked, FailTimeout, FailStub, FailNonEnglish,
		FailJSOnly, FailImagePolicy, FailPDFOnly, FailVague:
		// No recoverable ground truth behind these failure classes (the
		// PDF/JS/image/German policies exist in-world but the pipeline is
		// expected to fail on them, so they contribute no truth rows).
		return
	}
	g.sampleTruth(rng, s)
}

func (g *Generator) sampleLayout(rng *rand.Rand, s *Site) Layout {
	l := Layout{
		FooterLabel: pick(rng, []string{"Privacy Policy", "Privacy Policy", "Privacy", "Privacy Notice"}),
		// §3.1 footnote 3 targets 54.5% and 48.6% of all domains; the rates
		// are grossed up because failure-class sites can't serve them.
		WellKnownPolicy:  rng.Float64() < 0.592,
		WellKnownPrivacy: rng.Float64() < 0.527,
		Hub:              rng.Float64() < 0.12,
		MultiPage:        rng.Float64() < 0.30,
		ChoicesPage:      rng.Float64() < 0.50,
		CANotice:         rng.Float64() < 0.40,
		HeadingStyle:     pickWeighted(rng, []string{"h2", "bold", "none"}, []float64{0.68, 0.22, 0.10}),
		UseBullets:       rng.Float64() < 0.35,
	}
	switch s.Failure {
	case FailNoPolicy:
		l.FooterLabel = ""
		l.WellKnownPolicy, l.WellKnownPrivacy, l.Hub = false, false, false
		l.ChoicesPage, l.MultiPage, l.CANotice = false, false, false
	case FailOddLink:
		l.FooterLabel = "Legal Notices"
		l.WellKnownPolicy, l.WellKnownPrivacy, l.Hub = false, false, false
		l.ChoicesPage, l.MultiPage, l.CANotice = false, false, false
	case FailJSLink, FailConsentLink:
		l.WellKnownPolicy, l.WellKnownPrivacy, l.Hub = false, false, false
		l.ChoicesPage, l.MultiPage, l.CANotice = false, false, false
	case FailPDFOnly:
		l.Hub, l.MultiPage, l.ChoicesPage, l.CANotice = false, false, false, false
	}
	return l
}

func (g *Generator) sampleTruth(rng *rand.Rand, s *Site) {
	abbrev := s.SectorAbbrev
	t := &s.Truth

	// Collected data types: one coverage draw per category, then a clamped
	// gaussian number of unique descriptors. Categories within a
	// meta-category are correlated through a shared per-site factor
	// (Gaussian copula): real policies that mention one bio/health
	// category tend to mention the others, which is why the paper's
	// meta-level coverage sits far below the independent union.
	typeCats := taxonomy.TypeCategories()
	zSite := rng.NormFloat64() // site-level appetite for data collection
	metaFactor := map[string]float64{}
	for _, target := range typeTargets {
		cov := coverageFor(target.Cov, target.SectorCov, abbrev)
		cat, ok := taxonomy.FindCategory(typeCats, target.Category)
		if !ok {
			continue
		}
		z, seen := metaFactor[cat.Meta]
		if !seen {
			z = rng.NormFloat64()
			metaFactor[cat.Meta] = z
		}
		if !copulaInclude(rng, zSite, z, cov) {
			continue
		}
		n := gauss(rng, target.Mean, target.SD, 1, len(cat.Descriptors))
		for _, di := range weightedPerm(rng, len(cat.Descriptors))[:n] {
			d := cat.Descriptors[di]
			t.Types = append(t.Types, PlantedMention{
				Meta:       cat.Meta,
				Category:   cat.Name,
				Descriptor: d.Name,
				Surface:    surfaceFor(rng, d),
			})
		}
	}

	// Purposes (same within-meta correlation).
	purposeCats := taxonomy.PurposeCategories()
	purposeFactor := map[string]float64{}
	for _, target := range purposeTargets {
		cov := coverageFor(target.Cov, target.SectorCov, abbrev)
		cat, ok := taxonomy.FindCategory(purposeCats, target.Category)
		if !ok {
			continue
		}
		z, seen := purposeFactor[cat.Meta]
		if !seen {
			z = rng.NormFloat64()
			purposeFactor[cat.Meta] = z
		}
		if !copulaInclude(rng, zSite, z, cov) {
			continue
		}
		n := gauss(rng, target.Mean, target.SD, 1, len(cat.Descriptors))
		for _, di := range weightedPerm(rng, len(cat.Descriptors))[:n] {
			d := cat.Descriptors[di]
			if p, rare := rareDescriptors[d.Name]; rare && rng.Float64() >= p {
				continue
			}
			t.Purposes = append(t.Purposes, PlantedMention{
				Meta:       cat.Meta,
				Category:   cat.Name,
				Descriptor: d.Name,
				Surface:    surfaceFor(rng, d),
			})
		}
	}

	// Handling and rights practices: correlated within each label group
	// (a policy that enumerates one specific protection tends to enumerate
	// several; one that's silent on access is silent throughout — the
	// paper's 39.9% any-specific-protection and 22% no-access figures).
	groupFactor := map[string]float64{}
	for _, target := range labelTargets {
		cov := coverageFor(target.Cov, target.SectorCov, abbrev)
		zg, seen := groupFactor[target.Group]
		if !seen {
			zg = rng.NormFloat64()
			groupFactor[target.Group] = zg
		}
		if !copulaInclude(rng, zSite, zg, cov) {
			continue
		}
		pl := PlantedLabel{Group: target.Group, Label: target.Label}
		if target.Label == "Stated" {
			pl.RetentionDays = statedRetentionDays[rng.Intn(len(statedRetentionDays))]
		}
		switch target.Group {
		case taxonomy.GroupRetention, taxonomy.GroupProtection:
			t.Handling = append(t.Handling, pl)
		default:
			t.Rights = append(t.Rights, pl)
		}
	}

	// Every policy needs at least a basic-functioning purpose to read like
	// a policy at all; the coverage targets make this near-certain anyway.
	if len(t.Purposes) == 0 {
		cat := purposeCats[0]
		d := cat.Descriptors[rng.Intn(len(cat.Descriptors))]
		t.Purposes = append(t.Purposes, PlantedMention{
			Meta: cat.Meta, Category: cat.Name, Descriptor: d.Name,
			Surface: surfaceFor(rng, d),
		})
	}

	// Negated decoys, zero-shot novelties, vendor mentions. Real policies
	// negate liberally ("we do not collect ..."), which is exactly the
	// trap the §6 comparison measures, so decoy-bearing sites carry
	// several negated surfaces.
	if rng.Float64() < decoyRate {
		nDecoys := 2 + rng.Intn(4)
		for _, di := range rng.Perm(len(decoyPool)) {
			if len(t.Decoys) >= nDecoys {
				break
			}
			d := decoyPool[di]
			if !s.hasCategory(d.Category) {
				t.Decoys = append(t.Decoys, d)
			}
		}
	}
	if rng.Float64() < novelRate {
		np := novelPhrases[rng.Intn(len(novelPhrases))]
		np.Descriptor = np.Surface
		t.Types = append(t.Types, np)
	}
	if rng.Float64() < vendorRate {
		t.Vendor = vendorPool[rng.Intn(len(vendorPool))]
	}
}

// hasCategory reports whether the site's planted types include a category
// (decoys must not collide with genuinely collected categories).
func (s *Site) hasCategory(cat string) bool {
	for _, m := range s.Truth.Types {
		if m.Category == cat {
			return true
		}
	}
	return false
}

// surfaceFor picks the wording: the descriptor itself or one of its
// synonyms (exercising normalization).
func surfaceFor(rng *rand.Rand, d taxonomy.Descriptor) string {
	if len(d.Synonyms) == 0 || rng.Float64() < 0.55 {
		return d.Name
	}
	return d.Synonyms[rng.Intn(len(d.Synonyms))]
}

func pick(rng *rand.Rand, opts []string) string {
	return opts[rng.Intn(len(opts))]
}

func pickWeighted(rng *rand.Rand, opts []string, weights []float64) string {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	r := rng.Float64() * total
	for i, w := range weights {
		if r < w {
			return opts[i]
		}
		r -= w
	}
	return opts[len(opts)-1]
}

// Copula weights: categories correlate through a site-level factor (some
// companies are simply data-hungry across the board — the paper's §5 tail
// of companies collecting from 22+ categories) and a meta-level factor
// (mentioning one bio/health category predicts the others).
const (
	siteWeight = 0.30
	metaWeight = 0.38
)

// copulaInclude draws category inclusion: include iff
// Φ(√w₁·zSite + √w₂·zMeta + √(1−w₁−w₂)·ε) < cov.
func copulaInclude(rng *rand.Rand, zSite, zMeta, cov float64) bool {
	if cov <= 0 {
		return false
	}
	if cov >= 1 {
		return true
	}
	x := math.Sqrt(siteWeight)*zSite + math.Sqrt(metaWeight)*zMeta +
		math.Sqrt(1-siteWeight-metaWeight)*rng.NormFloat64()
	return phi(x) < cov
}

// phi is the standard normal CDF.
func phi(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// permWeightCache shares the rank-weight vectors across calls: the weights
// are a pure function of n, the generator runs once per synthetic section,
// and the distinct n values are just the taxonomy's category sizes. The
// cached slices are read-only.
var permWeightCache sync.Map // int → []float64

func permWeights(n int) []float64 {
	if v, ok := permWeightCache.Load(n); ok {
		return v.([]float64)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), 1.6)
	}
	v, _ := permWeightCache.LoadOrStore(n, w)
	return v.([]float64)
}

// weightedPerm returns a permutation biased toward low indices (weight
// ∝ 1/(rank+1)^1.6), so the paper's top descriptors dominate the way
// Table 4's within-category percentages do.
func weightedPerm(rng *rand.Rand, n int) []int {
	weights := permWeights(n)
	out := make([]int, 0, n)
	taken := make([]bool, n)
	for len(out) < n {
		total := 0.0
		for i, w := range weights {
			if !taken[i] {
				total += w
			}
		}
		r := rng.Float64() * total
		for i, w := range weights {
			if taken[i] {
				continue
			}
			if r < w {
				taken[i] = true
				out = append(out, i)
				break
			}
			r -= w
		}
	}
	return out
}
