package webgen

import (
	"math"
	"strings"
	"testing"

	"aipan/internal/russell"
	"aipan/internal/textify"
)

func testGen(t *testing.T) *Generator {
	t.Helper()
	return New(Seed, russell.UniqueDomains(russell.Universe(Seed)))
}

func TestGeneratorDeterminism(t *testing.T) {
	g1 := testGen(t)
	g2 := testGen(t)
	d := g1.Domains()[42]
	p1 := g1.RenderSite(d)
	p2 := g2.RenderSite(d)
	if len(p1) != len(p2) {
		t.Fatalf("page counts differ: %d vs %d", len(p1), len(p2))
	}
	for path, pg := range p1 {
		if p2[path].Body != pg.Body {
			t.Fatalf("page %s differs between identical seeds", path)
		}
	}
}

func TestFailurePlanCounts(t *testing.T) {
	g := testGen(t)
	counts := map[FailureClass]int{}
	for _, s := range g.Sites() {
		counts[s.Failure]++
	}
	crawlFails, extractFails := 0, 0
	for c, n := range counts {
		if c.IsCrawlFailure() {
			crawlFails += n
		}
		if c.IsExtractionFailure() {
			extractFails += n
		}
	}
	if crawlFails != 244 {
		t.Errorf("crawl failures = %d, want 244 (§4)", crawlFails)
	}
	if extractFails != 103 {
		t.Errorf("extraction failures = %d, want 103 (§4)", extractFails)
	}
	if counts[FailVague] != 16 {
		t.Errorf("vague (zero-annotation) domains = %d, want 16", counts[FailVague])
	}
	healthy := len(g.Sites()) - crawlFails - extractFails - counts[FailVague]
	if healthy != 2892-244-103-16 {
		t.Errorf("healthy sites = %d", healthy)
	}
}

func TestRenderedSiteHasPlantedSurfaces(t *testing.T) {
	g := testGen(t)
	checked := 0
	for _, s := range g.Sites() {
		if s.Failure != FailNone || checked >= 25 {
			continue
		}
		checked++
		pages := g.RenderSite(s.Domain)
		var all strings.Builder
		for _, p := range pages {
			all.WriteString(strings.ToLower(p.Body))
			all.WriteString("\n")
		}
		text := all.String()
		for _, m := range s.Truth.Types {
			if !strings.Contains(text, strings.ToLower(m.Surface)) {
				t.Errorf("%s: planted type surface %q not in rendered site", s.Domain, m.Surface)
			}
		}
		for _, m := range s.Truth.Purposes {
			if !strings.Contains(text, strings.ToLower(m.Surface)) {
				t.Errorf("%s: planted purpose surface %q not in rendered site", s.Domain, m.Surface)
			}
		}
	}
	if checked == 0 {
		t.Fatal("no healthy sites checked")
	}
}

func TestHomePageFooterLink(t *testing.T) {
	g := testGen(t)
	for _, s := range g.Sites() {
		if s.Failure != FailNone {
			continue
		}
		home := g.RenderSite(s.Domain)["/"]
		if home.Status != 200 {
			t.Fatalf("%s homepage status %d", s.Domain, home.Status)
		}
		if !strings.Contains(strings.ToLower(home.Body), "privacy") {
			t.Fatalf("%s homepage has no privacy link", s.Domain)
		}
		break
	}
}

func TestFailureRendering(t *testing.T) {
	g := testGen(t)
	seen := map[FailureClass]bool{}
	for _, s := range g.Sites() {
		if seen[s.Failure] {
			continue
		}
		seen[s.Failure] = true
		pages := g.RenderSite(s.Domain)
		switch s.Failure {
		case FailBlocked:
			if pages["/"].Status != 403 {
				t.Errorf("blocked site status = %d", pages["/"].Status)
			}
		case FailTimeout:
			if !pages["/"].Hang {
				t.Error("timeout site must hang")
			}
		case FailNoPolicy:
			if strings.Contains(strings.ToLower(pages["/"].Body), `>privacy`) {
				t.Error("no-policy site has privacy link")
			}
			if _, ok := pages["/privacy-policy"]; ok {
				t.Error("no-policy site serves /privacy-policy")
			}
		case FailOddLink:
			if !strings.Contains(pages["/"].Body, "Legal Notices") {
				t.Error("odd-link site missing Legal Notices link")
			}
			if _, ok := pages["/legal"]; !ok {
				t.Error("odd-link site missing /legal")
			}
		case FailPDFOnly:
			pdf, ok := pages["/privacy-policy.pdf"]
			if !ok || pdf.ContentType != "application/pdf" {
				t.Errorf("pdf-only site: %+v", pdf)
			}
		case FailJSLink:
			if !strings.Contains(pages["/"].Body, "javascript:") {
				t.Error("js-link site missing javascript href")
			}
		}
	}
	for _, c := range []FailureClass{FailBlocked, FailTimeout, FailNoPolicy, FailOddLink, FailPDFOnly, FailJSLink} {
		if !seen[c] {
			t.Errorf("failure class %s not present in corpus", c)
		}
	}
}

func TestVaguePolicyHasNoExtractableContent(t *testing.T) {
	g := testGen(t)
	for _, s := range g.Sites() {
		if s.Failure != FailVague {
			continue
		}
		pages := g.RenderSite(s.Domain)
		found := false
		for path, p := range pages {
			if strings.Contains(path, "privacy") {
				found = true
				low := strings.ToLower(p.Body)
				for _, banned := range []string{"email address", "cookie", "fraud", "opt out", "retain", "encrypt"} {
					if strings.Contains(low, banned) {
						t.Errorf("vague site %s contains %q", s.Domain, banned)
					}
				}
			}
		}
		if !found {
			t.Errorf("vague site %s serves no privacy page", s.Domain)
		}
		break
	}
}

func TestPlantedCoverageMatchesCalibration(t *testing.T) {
	g := testGen(t)
	healthy := 0
	catCount := map[string]int{}
	for _, s := range g.Sites() {
		if s.Failure != FailNone {
			continue
		}
		healthy++
		seen := map[string]bool{}
		for _, m := range s.Truth.Types {
			if !seen[m.Category] {
				seen[m.Category] = true
				catCount[m.Category]++
			}
		}
	}
	for _, target := range []struct {
		cat string
		cov float64
	}{
		{"Contact info", .864},
		{"Online identifier", .809},
		{"Vehicle info", .050},
		{"Medical info", .283},
	} {
		got := float64(catCount[target.cat]) / float64(healthy)
		if math.Abs(got-target.cov) > 0.05 {
			t.Errorf("planted coverage for %s = %.3f, want ≈%.3f", target.cat, got, target.cov)
		}
	}
}

func TestRetentionExtremesPinned(t *testing.T) {
	g := testGen(t)
	oneDay, fiftyYears := 0, 0
	for _, s := range g.Sites() {
		for _, h := range s.Truth.Handling {
			if h.Label == "Stated" {
				if h.RetentionDays == 1 {
					oneDay++
				}
				if h.RetentionDays == 50*365 {
					fiftyYears++
				}
			}
		}
	}
	if oneDay < 2 {
		t.Errorf("1-day retention sites = %d, want >= 2 (§5)", oneDay)
	}
	if fiftyYears < 1 {
		t.Errorf("50-year retention sites = %d, want >= 1 (§5)", fiftyYears)
	}
}

func TestPolicyWordCountRealistic(t *testing.T) {
	g := testGen(t)
	var counts []int
	for _, s := range g.Sites() {
		if s.Failure != FailNone {
			continue
		}
		pages := g.RenderSite(s.Domain)
		entry, _, _ := g.layoutPaths(s)
		doc := textify.RenderHTML(pages[entry].Body)
		counts = append(counts, doc.WordCount())
		if len(counts) >= 80 {
			break
		}
	}
	sum := 0
	for _, c := range counts {
		sum += c
	}
	mean := sum / len(counts)
	if mean < 400 || mean > 6000 {
		t.Errorf("mean policy length %d words implausible (paper median 2,671)", mean)
	}
}

func TestDecoysAndVendorsPresent(t *testing.T) {
	g := testGen(t)
	decoys, vendors, novel := 0, 0, 0
	for _, s := range g.Sites() {
		decoys += len(s.Truth.Decoys)
		if s.Truth.Vendor != "" {
			vendors++
		}
		for _, m := range s.Truth.Types {
			if m.Novel {
				novel++
			}
		}
	}
	if decoys < 100 {
		t.Errorf("decoys = %d, want >= 100", decoys)
	}
	if vendors < 100 {
		t.Errorf("vendor mentions = %d, want >= 100", vendors)
	}
	if novel < 50 {
		t.Errorf("novel phrases = %d, want >= 50", novel)
	}
}

func TestRedirectAliases(t *testing.T) {
	g := testGen(t)
	foundRedirect := false
	for _, s := range g.Sites() {
		if s.Failure != FailNone {
			continue
		}
		pages := g.RenderSite(s.Domain)
		for _, p := range pages {
			if p.RedirectTo != "" {
				foundRedirect = true
				if _, ok := pages[p.RedirectTo]; !ok {
					t.Errorf("%s: redirect to missing page %s", s.Domain, p.RedirectTo)
				}
			}
		}
		if foundRedirect {
			break
		}
	}
}

func BenchmarkRenderSite(b *testing.B) {
	g := NewDefault()
	domains := g.Domains()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.RenderSite(domains[i%len(domains)])
	}
}
