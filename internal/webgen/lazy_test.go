package webgen

import (
	"reflect"
	"testing"

	"aipan/internal/russell"
)

// TestLazyMatchesEagerAtPaperSize: at the paper's universe size the
// scaled failure plan reduces to the paper's counts, so a lazy
// generator must derive the exact site an eager one materializes —
// except the three §5 retention-extreme sites, whose pinning is a
// global eager-only pass.
func TestLazyMatchesEagerAtPaperSize(t *testing.T) {
	domains := russell.UniqueDomains(russell.Universe(Seed))
	eager := New(Seed, domains)
	lazy := NewLazy(Seed, domains)
	if !lazy.Lazy() || eager.Lazy() {
		t.Fatal("Lazy() flags wrong")
	}
	diverged := 0
	for _, d := range eager.Domains() {
		es, ls := eager.Site(d), lazy.Site(d)
		if es.statedExtreme != 0 {
			diverged++
			continue // pinned retention extremes exist only eagerly
		}
		if !reflect.DeepEqual(*es, *ls) {
			t.Fatalf("lazy site %s diverged from eager", d)
		}
	}
	if diverged != 3 {
		t.Fatalf("expected exactly 3 pinned retention-extreme sites, saw %d", diverged)
	}
}

// TestLazySiteDeterministic: repeated lazy derivations of the same site
// are identical, and renders through the lazy path match too.
func TestLazySiteDeterministic(t *testing.T) {
	domains := russell.UniqueDomains(russell.UniverseSized(Seed, 4000))
	g := NewLazy(Seed, domains)
	d := g.Domains()[17]
	if !reflect.DeepEqual(*g.Site(d), *g.Site(d)) {
		t.Fatal("lazy Site is not deterministic")
	}
	if !reflect.DeepEqual(g.RenderSite(d), g.RenderSite(d)) {
		t.Fatal("lazy RenderSite is not deterministic")
	}
}

// TestLazyScaledFailurePlan: a scaled universe keeps every §4 failure
// class represented, at roughly the paper's rates.
func TestLazyScaledFailurePlan(t *testing.T) {
	const n = 20_000
	domains := russell.UniqueDomains(russell.UniverseSized(Seed, n))
	g := NewLazy(Seed, domains)
	byClass := map[FailureClass]int{}
	for _, c := range g.failures {
		byClass[c]++
	}
	scale := float64(n) / float64(russell.NumDomains)
	for _, fp := range failurePlan {
		got := byClass[fp.class]
		want := int(float64(fp.count) * scale)
		if got == 0 {
			t.Fatalf("failure class %q unrepresented at n=%d", fp.class, n)
		}
		if got < want*9/10 || got > want*11/10+1 {
			t.Fatalf("failure class %q count %d far from scaled target %d", fp.class, got, want)
		}
	}
}
