// Package webgen synthesizes the study's measurement substrate: a
// deterministic corporate web for the synthetic Russell 3000. Each domain
// gets a policy profile drawn from the paper's published per-sector
// distributions (calibration.go), rendered into a realistic corporate
// website (homepage, footer links, privacy pages in varied layouts and
// heading styles), with §4's failure taxonomy injected at the measured
// rates. Because the generator records the ground truth it plants, the
// pipeline's precision/recall can be computed exactly.
package webgen

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"sync"

	"aipan/internal/russell"
)

// Seed is the default corpus seed (AIPAN-3k).
const Seed int64 = 3000

// FailureClass is the §4 failure taxonomy.
type FailureClass string

// Failure classes. The first group causes crawl failures (no potential
// privacy page reached), the second extraction failures (crawled but no
// text extracted), the third annotation failures (extracted but nothing
// annotatable).
const (
	FailNone FailureClass = ""
	// Crawl failures (paper: 244 domains).
	FailNoPolicy    FailureClass = "no-policy"    // site has no privacy policy at all
	FailBlocked     FailureClass = "blocked"      // 403 to crawlers
	FailTimeout     FailureClass = "timeout"      // server hangs / connection error
	FailOddLink     FailureClass = "odd-link"     // policy linked as "Legal Notices"
	FailJSLink      FailureClass = "js-link"      // privacy link triggers a JavaScript action
	FailConsentLink FailureClass = "consent-link" // link only inside a JS consent box
	// Extraction failures (paper: 103 domains).
	FailPDFOnly     FailureClass = "pdf-only"     // policy is a PDF
	FailNonEnglish  FailureClass = "non-english"  // policy not in English
	FailJSOnly      FailureClass = "js-only"      // content loaded dynamically
	FailImagePolicy FailureClass = "image-policy" // policy embedded as an image
	FailStub        FailureClass = "stub"         // placeholder page, no policy text
	// Annotation failures (paper: 16 domains).
	FailVague FailureClass = "vague" // real policy text, nothing specific
)

// failurePlan allocates §4's failure classes across the corpus, scaled
// from the paper's 50-sample audit to its 244 crawl failures + 103
// extraction failures, plus the 16 zero-annotation domains.
var failurePlan = []struct {
	class FailureClass
	count int
}{
	{FailNoPolicy, 180},
	{FailBlocked, 25},
	{FailTimeout, 15},
	{FailOddLink, 16},
	{FailJSLink, 4},
	{FailConsentLink, 4},
	{FailPDFOnly, 35},
	{FailNonEnglish, 14},
	{FailJSOnly, 20},
	{FailImagePolicy, 6},
	{FailStub, 28},
	{FailVague, 16},
}

// IsCrawlFailure reports whether the class prevents the crawler from
// reaching any potential privacy page.
func (f FailureClass) IsCrawlFailure() bool {
	switch f {
	case FailNoPolicy, FailBlocked, FailTimeout, FailOddLink, FailJSLink, FailConsentLink:
		return true
	}
	return false
}

// IsExtractionFailure reports whether the class lets the crawl succeed but
// defeats text extraction.
func (f FailureClass) IsExtractionFailure() bool {
	switch f {
	case FailPDFOnly, FailNonEnglish, FailJSOnly, FailImagePolicy, FailStub:
		return true
	}
	return false
}

// PlantedMention is one ground-truth data-type or purpose mention.
type PlantedMention struct {
	Meta       string
	Category   string
	Descriptor string
	// Surface is the wording used in the text (a glossary synonym or the
	// descriptor itself).
	Surface string
	// Novel marks an out-of-glossary phrase planted to exercise zero-shot
	// annotation.
	Novel bool
}

// PlantedLabel is one ground-truth handling/rights practice.
type PlantedLabel struct {
	Group string
	Label string
	// RetentionDays is set for stated retention periods.
	RetentionDays int
}

// GroundTruth records everything the generator wrote into a policy.
type GroundTruth struct {
	Types    []PlantedMention
	Purposes []PlantedMention
	Handling []PlantedLabel
	Rights   []PlantedLabel
	// Decoys are data types mentioned ONLY in negated contexts ("we do not
	// collect X"); extracting one is a precision error (§6).
	Decoys []PlantedMention
	// Vendor is a marketing-platform name planted in the text; extracting
	// it as a data type is the GPT-3.5 confusion error (§6).
	Vendor string
}

// Layout controls how the website exposes its policy.
type Layout struct {
	// FooterLabel is the footer anchor text ("Privacy Policy", "Privacy",
	// "Legal Notices" for the odd-link failure, "" for none).
	FooterLabel string
	// WellKnownPolicy serves /privacy-policy (§3.1: 54.5% of domains).
	WellKnownPolicy bool
	// WellKnownPrivacy serves /privacy (48.6%).
	WellKnownPrivacy bool
	// Hub routes the footer link to a privacy center page that links to
	// the actual policy.
	Hub bool
	// MultiPage splits tracking-data content onto a separate
	// cookie/privacy-preferences page.
	MultiPage bool
	// ChoicesPage adds a "Your Privacy Choices" opt-out page.
	ChoicesPage bool
	// CANotice adds a "CA Privacy Notice" footer link that redirects to
	// the main policy (a very common real-world pattern).
	CANotice bool
	// HeadingStyle is "h2", "bold", or "none" (short/fallback policies).
	HeadingStyle string
	// UseBullets renders data-type lists as <ul> bullets.
	UseBullets bool
}

// Site is one synthetic corporate website with its ground truth.
type Site struct {
	Domain       string
	Company      string
	Sector       string
	SectorAbbrev string
	Failure      FailureClass
	Layout       Layout
	Truth        GroundTruth
	// StatedExtreme pins the §5 retention extremes (1 = the 1-day minimum,
	// 2 = the 50-year maximum).
	statedExtreme int
}

// Generator produces and caches sites for a universe. The default
// (eager) form materializes every site up front; the lazy form
// (NewLazy) holds only the domain roster and failure assignments and
// re-derives each site on demand — constant marginal memory per domain,
// which is what lets the synthetic web scale to 100k–1M domains.
type Generator struct {
	seed  int64
	sites map[string]*Site
	order []string

	// Lazy mode: instead of the sites map, keep one compact info entry
	// per domain plus the (sparse) failure assignment; Site re-samples
	// on demand, which is deterministic because sampling is a pure
	// function of (seed, domain, failure class).
	lazy     bool
	info     map[string]siteInfo
	failures map[string]FailureClass
}

// siteInfo is the per-domain roster entry retained in lazy mode.
type siteInfo struct {
	company string
	sector  string
}

// New builds the generator for a deduplicated domain list.
func New(seed int64, domains []russell.DomainInfo) *Generator {
	g := &Generator{seed: seed, sites: make(map[string]*Site, len(domains))}
	for _, d := range domains {
		company := d.Companies[0].Name
		g.sites[d.Domain] = &Site{
			Domain:       d.Domain,
			Company:      company,
			Sector:       d.Sector,
			SectorAbbrev: russell.Abbrev(d.Sector),
		}
		g.order = append(g.order, d.Domain)
	}
	sort.Strings(g.order)
	g.assignFailures()
	for _, dom := range g.order {
		g.sample(g.sites[dom])
	}
	g.pinRetentionExtremes()
	return g
}

// NewDefault builds the full AIPAN-3k corpus generator.
func NewDefault() *Generator {
	return New(Seed, russell.UniqueDomains(russell.Universe(Seed)))
}

// NewLazy builds a generator that derives sites on demand instead of
// materializing the corpus: only the domain roster and the failure
// assignment are retained, so memory is O(domains), not O(rendered
// corpus). Two deliberate differences from the eager form, both
// scale-only (the paper's default universe always uses New):
//   - the failure plan is scaled proportionally from the paper's 2,892
//     counts, with every §4 class kept represented so failure-mode
//     diversity survives at any size;
//   - the §5 retention-extreme pinning is skipped (it is a global pass
//     over all sites, and the extremes are a paper-reproduction detail,
//     not a scale property).
func NewLazy(seed int64, domains []russell.DomainInfo) *Generator {
	g := &Generator{
		seed:     seed,
		lazy:     true,
		info:     make(map[string]siteInfo, len(domains)),
		failures: map[string]FailureClass{},
		order:    make([]string, 0, len(domains)),
	}
	for _, d := range domains {
		g.info[d.Domain] = siteInfo{company: d.Companies[0].Name, sector: d.Sector}
		g.order = append(g.order, d.Domain)
	}
	sort.Strings(g.order)
	g.assignFailuresScaled()
	return g
}

// Lazy reports whether the generator derives sites on demand.
func (g *Generator) Lazy() bool { return g.lazy }

// Site returns the site for a domain (nil if unknown). In lazy mode the
// site is derived on each call — identical bytes every time, since
// sampling is seeded per domain — and the caller owns the value.
func (g *Generator) Site(domain string) *Site {
	if !g.lazy {
		return g.sites[domain]
	}
	inf, ok := g.info[domain]
	if !ok {
		return nil
	}
	s := &Site{
		Domain:       domain,
		Company:      inf.company,
		Sector:       inf.sector,
		SectorAbbrev: russell.Abbrev(inf.sector),
		Failure:      g.failures[domain],
	}
	g.sample(s)
	return s
}

// Sites returns all sites in deterministic (domain-sorted) order. In
// lazy mode this materializes every site — intended for reports over
// small universes, not for the streaming pipeline.
func (g *Generator) Sites() []*Site {
	out := make([]*Site, len(g.order))
	for i, d := range g.order {
		out[i] = g.Site(d)
	}
	return out
}

// Domains returns all domains in sorted order.
func (g *Generator) Domains() []string {
	return append([]string(nil), g.order...)
}

// assignFailures deterministically spreads the failure plan across the
// corpus.
func (g *Generator) assignFailures() {
	rng := rand.New(rand.NewSource(g.seed ^ 0xFA11))
	perm := rng.Perm(len(g.order))
	i := 0
	for _, fp := range failurePlan {
		for n := 0; n < fp.count && i < len(perm); n++ {
			g.sites[g.order[perm[i]]].Failure = fp.class
			i++
		}
	}
}

// assignFailuresScaled is the lazy-mode failure assignment: the paper's
// per-class counts scale proportionally with the universe, each class
// floored at one domain once the universe is at least paper-sized, and
// only failing domains are stored (the failure map stays ~12% of the
// corpus).
func (g *Generator) assignFailuresScaled() {
	n := len(g.order)
	rng := rand.New(rand.NewSource(g.seed ^ 0xFA11))
	perm := rng.Perm(n)
	i := 0
	for _, fp := range failurePlan {
		count := int(math.Round(float64(fp.count) * float64(n) / float64(russell.NumDomains)))
		if count == 0 && n >= russell.NumDomains {
			count = 1
		}
		for k := 0; k < count && i < n; k++ {
			g.failures[g.order[perm[i]]] = fp.class
			i++
		}
	}
}

// rngPool recycles rand.Rand instances across page renders: the underlying
// rngSource is a ~5KB allocation, and Seed fully re-derives its state, so a
// pooled generator reseeded per call draws the same sequence a fresh one
// would.
var rngPool = sync.Pool{New: func() any { return rand.New(rand.NewSource(0)) }}

// putRng returns a generator obtained from rngFor to the pool.
func putRng(r *rand.Rand) { rngPool.Put(r) }

// rngFor derives a per-domain deterministic RNG. The seed is the FNV-1a
// hash of "seed|domain|purpose", computed inline to produce the exact sum
// the previous fnv.New64a + Fprintf version did, without either allocation.
// Callers hand the generator back via putRng when done with it.
func (g *Generator) rngFor(domain, purpose string) *rand.Rand {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	var tmp [20]byte
	for _, b := range strconv.AppendInt(tmp[:0], g.seed, 10) {
		h = (h ^ uint64(b)) * prime
	}
	h = (h ^ '|') * prime
	for i := 0; i < len(domain); i++ {
		h = (h ^ uint64(domain[i])) * prime
	}
	h = (h ^ '|') * prime
	for i := 0; i < len(purpose); i++ {
		h = (h ^ uint64(purpose[i])) * prime
	}
	r := rngPool.Get().(*rand.Rand)
	r.Seed(int64(h))
	return r
}

// pinRetentionExtremes forces the §5 extremes: two domains with a 1-day
// stated period and one with 50 years.
func (g *Generator) pinRetentionExtremes() {
	var stated []*Site
	for _, d := range g.order {
		s := g.sites[d]
		if s.Failure != FailNone {
			continue
		}
		for i := range s.Truth.Handling {
			if s.Truth.Handling[i].Label == "Stated" {
				stated = append(stated, s)
				break
			}
		}
	}
	if len(stated) < 3 {
		return
	}
	set := func(s *Site, days, kind int) {
		for i := range s.Truth.Handling {
			if s.Truth.Handling[i].Label == "Stated" {
				s.Truth.Handling[i].RetentionDays = days
			}
		}
		s.statedExtreme = kind
	}
	set(stated[0], 1, 1)
	set(stated[1], 1, 1)
	set(stated[len(stated)-1], 50*365, 2)
}

// gauss draws a clamped normal deviate.
func gauss(rng *rand.Rand, mean, sd float64, lo, hi int) int {
	v := int(math.Round(rng.NormFloat64()*sd + mean))
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v
}
