package webgen

import (
	"fmt"
	"math/rand"
	"strings"

	"aipan/internal/taxonomy"
)

// policySection is one section of a generated policy document.
type policySection struct {
	// Aspect is the ground-truth aspect of the section (what a perfect
	// segmenter should label it).
	Aspect taxonomy.Aspect
	// Heading is the section heading text ("" for short policies).
	Heading string
	// Paras are the body paragraphs; Bullets are rendered as a <ul>.
	Paras   []string
	Bullets []string
}

// headingVariants gives each aspect several plausible heading texts.
var headingVariants = map[taxonomy.Aspect][]string{
	taxonomy.AspectTypes: {
		"Information We Collect", "Types of Data We Collect",
		"Personal Information We Collect", "What Information Do We Collect",
	},
	taxonomy.AspectMethods: {
		"How We Collect Information", "Sources of Information",
		"Data Collection Methods",
	},
	taxonomy.AspectPurposes: {
		"How We Use Your Information", "Use of Personal Information",
		"Why We Collect Your Data", "Purposes of Data Collection",
	},
	taxonomy.AspectHandling: {
		"Data Retention and Security", "How We Protect Your Data",
		"Storage, Retention and Protection", "Data Security",
	},
	taxonomy.AspectSharing: {
		"Who We Share Your Data With", "Disclosure of Information",
		"Sharing Your Personal Information",
	},
	taxonomy.AspectRights: {
		"Your Rights and Choices", "Your Privacy Rights",
		"Managing Your Information", "Access and Correction",
	},
	taxonomy.AspectAudiences: {
		"Children's Privacy", "Notice to California Residents",
		"Information for Specific Audiences",
	},
	taxonomy.AspectChanges: {
		"Changes to This Policy", "Policy Updates",
	},
	taxonomy.AspectOther: {
		"Contact Us", "How to Reach Us",
	},
}

// fillerSentences are neutral legal boilerplate: they contain no taxonomy
// surfaces, no practice cues, and no zero-shot noun-phrase bait, so they
// bulk policies to realistic length (§3.2.1: median 2,671 words) without
// perturbing the planted ground truth.
var fillerSentences = []string{
	"This policy applies to visitors and customers located in the United States.",
	"Please read this document carefully so that you understand how we approach the matters described here.",
	"Capitalized terms have the meanings assigned to them in our Terms of Use.",
	"The effective date of this policy appears at the top of this page.",
	"If any part of this policy is found unenforceable, the remainder will continue in full force and effect.",
	"Translations of this policy may be offered for convenience; the English version controls in case of conflict.",
	"Our commitment to responsible stewardship guides every part of our operations.",
	"Nothing in this section creates rights for any person beyond those set out by applicable law.",
	"Headings are for convenience only and have no legal significance of their own.",
	"Where this policy conflicts with a signed agreement between you and us, the signed agreement governs.",
	"The practices described here apply regardless of the device you choose when visiting us.",
	"We encourage you to revisit this page periodically so that you remain familiar with its contents.",
	"Certain features described in this section may be available only in selected markets.",
	"Our subsidiaries and brands follow the principles laid out in this document.",
	"The examples given throughout this policy are illustrative rather than exhaustive.",
	"This section should be read together with the remainder of the policy.",
	"Questions about the interpretation of a particular paragraph can be directed to our team at any time.",
	"We work with counsel to keep this document aligned with the expectations of the jurisdictions we serve.",
}

// bulk builds ~nWords of neutral prose from combinatorial fragments. The
// vocabulary deliberately avoids every taxonomy surface, practice cue,
// collection verb, and zero-shot noun-phrase head, so bulked sections
// change policy length (paper median: 2,671 core words) without touching
// the planted ground truth.
func bulk(rng *rand.Rand, nWords int) string {
	subjects := []string{
		"Our teams", "Our affiliates", "The departments involved",
		"Our offices", "The relevant business units", "Our personnel",
		"The groups responsible for this program", "Our subsidiaries",
	}
	verbs := []string{
		"maintain", "follow", "document", "coordinate", "oversee",
		"administer", "organize", "supervise",
	}
	objects := []string{
		"internal procedures", "operating guidelines", "written standards",
		"governance routines", "escalation paths", "training curricula",
		"accountability structures", "management playbooks",
	}
	tails := []string{
		"in the ordinary course of business", "across the organization",
		"consistent with industry practice", "under the supervision of senior leadership",
		"as part of our broader compliance posture", "in every market where we operate",
		"with periodic input from outside advisers", "subject to executive sign-off",
		"in a manner proportionate to the matters described above", "throughout the year",
	}
	connectors := []string{
		"In addition,", "Separately,", "As a general matter,", "Likewise,",
		"For completeness,", "Where appropriate,", "More broadly,",
	}
	var b strings.Builder
	words := 0
	for words < nWords {
		if b.Len() > 0 {
			b.WriteByte(' ')
			if rng.Float64() < 0.4 {
				b.WriteString(connectors[rng.Intn(len(connectors))])
				b.WriteByte(' ')
				words++
			}
		}
		// Write the fragments straight into the builder; the fragments are
		// single-spaced with no edge whitespace, so each one's word count
		// is its space count plus one (no Sprintf/Fields scratch).
		subj := subjects[rng.Intn(len(subjects))]
		verb := verbs[rng.Intn(len(verbs))]
		obj := objects[rng.Intn(len(objects))]
		tail := tails[rng.Intn(len(tails))]
		b.WriteString(subj)
		b.WriteByte(' ')
		b.WriteString(verb)
		b.WriteByte(' ')
		b.WriteString(obj)
		b.WriteByte(' ')
		b.WriteString(tail)
		b.WriteByte('.')
		words += strings.Count(subj, " ") + strings.Count(verb, " ") +
			strings.Count(obj, " ") + strings.Count(tail, " ") + 4
	}
	return b.String()
}

// fillerParagraphs are longer neutral blocks for additional bulk.
var fillerParagraphs = []string{
	"We operate a family of websites, applications and offline experiences, and this document is written to cover them together. Where an individual product behaves differently, the product's own notice will say so expressly, and that notice will control for that product to the extent of any difference.",
	"From time to time we may offer promotions, events or pilot programs that come with their own supplemental notices. Any supplemental notice will be presented to you at the point of participation and should be read together with this policy before you decide to take part.",
	"Our relationship with you matters to us, and the descriptions in this document are intended to be plain and readable rather than exhaustive legal catalogues. When a technical term is unavoidable, we try to explain it in context the first time it appears on this page.",
	"If you are reading this policy on behalf of an organization, you represent that you are authorized to accept it for that organization, and references to you in the relevant paragraphs include the organization itself to the extent applicable under the agreement that governs the relationship.",
}

// generatePolicy builds the policy document for a site: the ordered list
// of sections that renderers turn into one or more HTML pages.
func (g *Generator) generatePolicy(s *Site) []policySection {
	rng := g.rngFor(s.Domain, "policy")
	defer putRng(rng)
	var secs []policySection

	// Introduction.
	intro := policySection{
		Aspect:  taxonomy.AspectOther,
		Heading: "Introduction",
		Paras: []string{
			fmt.Sprintf("%s (\"we\", \"us\", or \"our\") respects your privacy. This Privacy Policy describes our practices in connection with the websites and services that link to it.", s.Company),
			filler(rng, 2),
		},
	}
	secs = append(secs, intro)

	// Types.
	if len(s.Truth.Types) > 0 || len(s.Truth.Decoys) > 0 {
		secs = append(secs, g.typesSection(rng, s))
	}
	// Methods (structural realism; carries the vendor mention sometimes).
	if rng.Float64() < 0.6 || s.Truth.Vendor != "" {
		secs = append(secs, g.methodsSection(rng, s))
	}
	// Purposes.
	if len(s.Truth.Purposes) > 0 {
		secs = append(secs, g.purposesSection(rng, s))
	}
	// Handling.
	if len(s.Truth.Handling) > 0 {
		secs = append(secs, g.handlingSection(rng, s))
	}
	// Sharing (static framing; sharing purposes live in the purposes
	// section where the paper's annotator finds them).
	if rng.Float64() < 0.7 {
		secs = append(secs, policySection{
			Aspect:  taxonomy.AspectSharing,
			Heading: variant(rng, taxonomy.AspectSharing),
			Paras: []string{
				"Information may be disclosed to our service vendors under written contract, and to successors in the event of a corporate transaction.",
				filler(rng, 2),
				bulk(rng, 150+rng.Intn(120)),
			},
		})
	}
	// Rights.
	if len(s.Truth.Rights) > 0 {
		secs = append(secs, g.rightsSection(rng, s))
	}
	// Audiences.
	if rng.Float64() < 0.5 {
		secs = append(secs, policySection{
			Aspect:  taxonomy.AspectAudiences,
			Heading: variant(rng, taxonomy.AspectAudiences),
			Paras: []string{
				"Our services are not directed to children under the age of 13, and residents of California and the European Economic Area may have additional rights under the laws of those jurisdictions.",
				filler(rng, 1),
			},
		})
	}
	// Changes.
	if rng.Float64() < 0.8 {
		secs = append(secs, policySection{
			Aspect:  taxonomy.AspectChanges,
			Heading: variant(rng, taxonomy.AspectChanges),
			Paras: []string{
				"We may update this policy from time to time. When we make material changes we will post the revised version on this page and adjust the effective date above.",
			},
		})
	}
	// Contact.
	secs = append(secs, policySection{
		Aspect:  taxonomy.AspectOther,
		Heading: variant(rng, taxonomy.AspectOther),
		Paras: []string{
			fmt.Sprintf("If you have questions about this policy, email privacy@%s or write to the %s privacy team at our headquarters.", s.Domain, s.Company),
		},
	})
	return secs
}

func (g *Generator) typesSection(rng *rand.Rand, s *Site) policySection {
	sec := policySection{
		Aspect:  taxonomy.AspectTypes,
		Heading: variant(rng, taxonomy.AspectTypes),
	}
	sec.Paras = append(sec.Paras, "We collect the kinds of information described below when you interact with us. "+filler(rng, 1))

	byCat := map[string][]PlantedMention{}
	var order []string
	for _, m := range s.Truth.Types {
		if len(byCat[m.Category]) == 0 {
			order = append(order, m.Category)
		}
		byCat[m.Category] = append(byCat[m.Category], m)
	}
	leadIns := []string{
		"We may collect %s.",
		"When you use our services, we collect %s.",
		"We also gather %s.",
		"Depending on how you interact with us, we may obtain %s.",
	}
	for _, cat := range order {
		ms := byCat[cat]
		if s.Layout.UseBullets && len(ms) >= 3 {
			for _, m := range ms {
				sec.Bullets = append(sec.Bullets, m.Surface)
			}
			continue
		}
		// Chunk surfaces into sentences of up to 4.
		for i := 0; i < len(ms); i += 4 {
			end := i + 4
			if end > len(ms) {
				end = len(ms)
			}
			var surfaces []string
			for _, m := range ms[i:end] {
				surfaces = append(surfaces, "your "+m.Surface)
			}
			sec.Paras = append(sec.Paras, fmt.Sprintf(leadIns[rng.Intn(len(leadIns))], joinAnd(surfaces)))
		}
	}

	// Vendor mention (the §6 GPT-3.5 trap) sits among the types prose.
	if s.Truth.Vendor != "" {
		sec.Paras = append(sec.Paras, fmt.Sprintf(
			"We work with platforms such as %s to manage our outreach campaigns.", s.Truth.Vendor))
	}
	// Negated decoys (the §6 Llama trap), grouped the way real policies
	// write them: "We do not collect X, Y, or Z."
	for i := 0; i < len(s.Truth.Decoys); i += 3 {
		end := i + 3
		if end > len(s.Truth.Decoys) {
			end = len(s.Truth.Decoys)
		}
		var surfaces []string
		for _, d := range s.Truth.Decoys[i:end] {
			surfaces = append(surfaces, d.Surface)
		}
		tmpl := []string{
			"We do not collect %s.",
			"For the avoidance of doubt, we never collect %s.",
			"This privacy notice does not apply to %s handled by independent providers.",
		}
		sec.Paras = append(sec.Paras, fmt.Sprintf(tmpl[rng.Intn(len(tmpl))], joinOr(surfaces)))
	}
	sec.Paras = append(sec.Paras, fillerParagraphs[rng.Intn(len(fillerParagraphs))], filler(rng, 3))
	sec.Paras = append(sec.Paras, bulk(rng, 380+rng.Intn(240)))
	return sec
}

func (g *Generator) methodsSection(rng *rand.Rand, s *Site) policySection {
	return policySection{
		Aspect:  taxonomy.AspectMethods,
		Heading: variant(rng, taxonomy.AspectMethods),
		Paras: []string{
			"We receive information directly from you when you fill out forms or correspond with us, and automatically through the technology that powers our websites and applications.",
			filler(rng, 2),
			bulk(rng, 140+rng.Intn(120)),
		},
	}
}

func (g *Generator) purposesSection(rng *rand.Rand, s *Site) policySection {
	sec := policySection{
		Aspect:  taxonomy.AspectPurposes,
		Heading: variant(rng, taxonomy.AspectPurposes),
	}
	sec.Paras = append(sec.Paras, "We put the information described above to the uses set out in this section. "+filler(rng, 1))

	byCat := map[string][]PlantedMention{}
	var order []string
	for _, m := range s.Truth.Purposes {
		if len(byCat[m.Category]) == 0 {
			order = append(order, m.Category)
		}
		byCat[m.Category] = append(byCat[m.Category], m)
	}
	leadIns := []string{
		"We use your information for the following: %s.",
		"Specifically, your information supports %s.",
		"Data described in this policy is used for %s.",
		"Among the ways we use data: %s.",
	}
	for _, cat := range order {
		ms := byCat[cat]
		if s.Layout.UseBullets && len(ms) >= 3 {
			for _, m := range ms {
				sec.Bullets = append(sec.Bullets, m.Surface)
			}
			continue
		}
		for i := 0; i < len(ms); i += 4 {
			end := i + 4
			if end > len(ms) {
				end = len(ms)
			}
			var surfaces []string
			for _, m := range ms[i:end] {
				surfaces = append(surfaces, m.Surface)
			}
			sec.Paras = append(sec.Paras, fmt.Sprintf(leadIns[rng.Intn(len(leadIns))], strings.Join(surfaces, "; ")))
		}
	}
	sec.Paras = append(sec.Paras, fillerParagraphs[rng.Intn(len(fillerParagraphs))], filler(rng, 3))
	sec.Paras = append(sec.Paras, bulk(rng, 320+rng.Intn(200)))
	return sec
}

func (g *Generator) handlingSection(rng *rand.Rand, s *Site) policySection {
	sec := policySection{
		Aspect:  taxonomy.AspectHandling,
		Heading: variant(rng, taxonomy.AspectHandling),
	}
	groups := taxonomy.AllLabelGroups()
	for _, pl := range s.Truth.Handling {
		sec.Paras = append(sec.Paras, labelSentence(rng, groups, pl, s.Domain))
	}
	sec.Paras = append(sec.Paras, filler(rng, 3), bulk(rng, 220+rng.Intn(160)))
	return sec
}

func (g *Generator) rightsSection(rng *rand.Rand, s *Site) policySection {
	sec := policySection{
		Aspect:  taxonomy.AspectRights,
		Heading: variant(rng, taxonomy.AspectRights),
	}
	groups := taxonomy.AllLabelGroups()
	for _, pl := range s.Truth.Rights {
		sec.Paras = append(sec.Paras, labelSentence(rng, groups, pl, s.Domain))
	}
	// A borderline sentence annotators struggle with: it reads like a
	// "Do not use" choice without actually offering one (the paper notes
	// ~40% of user-rights errors land in this category, §4 footnote 5).
	if !s.hasRight(taxonomy.ChoiceDoNotUse) && rng.Float64() < 0.06 {
		sec.Paras = append(sec.Paras,
			"Some visitors may simply choose not to use optional features; nothing in this section requires you to enable them.")
	}
	sec.Paras = append(sec.Paras, filler(rng, 2), bulk(rng, 220+rng.Intn(160)))
	return sec
}

// hasRight reports whether a rights label was planted.
func (s *Site) hasRight(label string) bool {
	for _, r := range s.Truth.Rights {
		if r.Label == label {
			return true
		}
	}
	return false
}

// labelSentence renders one practice from its taxonomy templates.
func labelSentence(rng *rand.Rand, groups map[string][]taxonomy.Label, pl PlantedLabel, domain string) string {
	for _, l := range groups[pl.Group] {
		if l.Name != pl.Label {
			continue
		}
		t := l.Templates[rng.Intn(len(l.Templates))]
		t = strings.ReplaceAll(t, "{domain}", domain)
		t = strings.ReplaceAll(t, "{period}", periodPhrase(pl.RetentionDays))
		return t
	}
	return ""
}

// periodPhrase renders a retention period the way policies write them,
// including the parenthesized-numeral style ("six (6) years").
func periodPhrase(days int) string {
	switch days {
	case 1:
		return "1 day"
	case 30:
		return "30 days"
	case 90:
		return "90 days"
	case 180:
		return "six (6) months"
	case 365:
		return "one (1) year"
	case 730:
		return "2 years"
	case 1095:
		return "three (3) years"
	case 1825:
		return "5 years"
	case 2190:
		return "six (6) years"
	case 2555:
		return "seven (7) years"
	case 3650:
		return "ten (10) years"
	case 50 * 365:
		return "50 years"
	default:
		if days%365 == 0 {
			return fmt.Sprintf("%d years", days/365)
		}
		return fmt.Sprintf("%d days", days)
	}
}

func variant(rng *rand.Rand, a taxonomy.Aspect) string {
	vs := headingVariants[a]
	return vs[rng.Intn(len(vs))]
}

func filler(rng *rand.Rand, n int) string {
	var parts []string
	for i := 0; i < n; i++ {
		parts = append(parts, fillerSentences[rng.Intn(len(fillerSentences))])
	}
	return strings.Join(parts, " ")
}

func joinOr(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	case 2:
		return items[0] + " or " + items[1]
	default:
		return strings.Join(items[:len(items)-1], ", ") + ", or " + items[len(items)-1]
	}
}

func joinAnd(items []string) string {
	switch len(items) {
	case 0:
		return ""
	case 1:
		return items[0]
	case 2:
		return items[0] + " and " + items[1]
	default:
		return strings.Join(items[:len(items)-1], ", ") + ", and " + items[len(items)-1]
	}
}
