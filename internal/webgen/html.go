package webgen

import (
	"fmt"
	"strings"

	"aipan/internal/taxonomy"
)

// Page is one servable resource of a synthetic site.
type Page struct {
	// Status is the HTTP status code (200, 403, 404, ...).
	Status int
	// ContentType is the response Content-Type.
	ContentType string
	// Body is the response body.
	Body string
	// RedirectTo makes the page a 301 to another path.
	RedirectTo string
	// Hang simulates a crawler timeout: the transport fails the request.
	Hang bool
}

// germanPolicy is the non-English failure body (dropped by the language
// filter, as in §4).
const germanPolicy = `Wir erheben personenbezogene Daten, die Sie uns zur Verfügung stellen,
etwa Ihren Namen, Ihre Postanschrift und Ihre E-Mail-Adresse. Diese Daten verwenden wir,
um unsere Dienste bereitzustellen und zu verbessern, zur Betrugsprävention sowie zur
Erfüllung gesetzlicher Pflichten. Wir bewahren Ihre Daten nur so lange auf, wie es für
die beschriebenen Zwecke erforderlich ist. Sie haben das Recht, Auskunft über die von
uns gespeicherten Daten zu verlangen, deren Berichtigung oder Löschung zu fordern und
der Verarbeitung zu widersprechen. Bitte kontaktieren Sie unser Datenschutzteam, wenn
Sie Fragen zu dieser Erklärung haben. Diese Erklärung kann von Zeit zu Zeit angepasst
werden; die jeweils aktuelle Fassung finden Sie auf dieser Seite.`

// RenderSite produces every page of a site, keyed by URL path.
func (g *Generator) RenderSite(domain string) map[string]Page {
	s := g.Site(domain)
	if s == nil {
		return nil
	}
	pages := map[string]Page{}

	switch s.Failure {
	case FailBlocked:
		pages["/"] = Page{Status: 403, ContentType: "text/html", Body: "<html><body><h1>403 Forbidden</h1></body></html>"}
		pages["*"] = pages["/"]
		return pages
	case FailTimeout:
		pages["/"] = Page{Hang: true}
		pages["*"] = pages["/"]
		return pages
	}

	entry, footerLinks, headerLinks := g.layoutPaths(s)
	pages["/"] = g.homePage(s, footerLinks)
	pages["/about"] = g.simplePage(s, "About "+s.Company, "We are a "+strings.ToLower(s.Sector)+" company serving customers nationwide.", footerLinks)
	pages["/careers"] = g.simplePage(s, "Careers", "Join the "+s.Company+" team.", footerLinks)
	pages["/terms"] = g.simplePage(s, "Terms of Use", "These terms govern your use of our services.", footerLinks)

	switch s.Failure {
	case FailNoPolicy:
		return pages
	case FailOddLink:
		// The policy exists at a path the crawler's privacy heuristics miss.
		pages["/legal"] = g.policyPage(s, headerLinks, footerLinks, g.generatePolicy(s))
		return pages
	case FailJSLink:
		// Homepage carries a javascript: link instead of a navigable href;
		// the policy hides at an unguessable path.
		pages["/p/9f3a2b"] = g.policyPage(s, headerLinks, footerLinks, g.generatePolicy(s))
		return pages
	case FailConsentLink:
		// Link only exists inside a script-built consent box.
		pages["/privacy-settings-center"] = g.policyPage(s, headerLinks, footerLinks, g.generatePolicy(s))
		return pages
	case FailPDFOnly:
		pages["/privacy-policy.pdf"] = Page{
			Status:      200,
			ContentType: "application/pdf",
			Body:        "%PDF-1.4\n1 0 obj << /Type /Catalog >>\nstream ... privacy policy ... endstream\n%%EOF",
		}
		return pages
	case FailNonEnglish:
		pages[entry] = g.wrapPolicyBody(s, headerLinks, footerLinks,
			"<h1>Datenschutzerklärung</h1><p>"+strings.ReplaceAll(germanPolicy, "\n", " ")+"</p>")
	case FailJSOnly:
		pages[entry] = g.wrapPolicyBody(s, headerLinks, footerLinks,
			`<div id="app"></div><script>fetch('/api/policy.json').then(r=>r.json()).then(p=>{document.getElementById('app').innerHTML=p.html});</script>`)
	case FailImagePolicy:
		pages[entry] = g.wrapPolicyBody(s, headerLinks, footerLinks,
			`<h1>Privacy Policy</h1><img src="/assets/privacy-policy.png" alt="">`)
	case FailStub:
		pages[entry] = g.wrapPolicyBody(s, headerLinks, footerLinks,
			`<h1>Privacy Policy</h1><p>Our updated statement is being finalized and will appear here soon. Thank you for your patience.</p>`)
	case FailVague:
		pages[entry] = g.policyPage(s, headerLinks, footerLinks, vaguePolicy(s))
	default:
		pages[entry] = g.policyPage(s, headerLinks, footerLinks, g.mainSections(s))
	}

	g.addAuxiliaryPages(s, pages, entry, headerLinks, footerLinks)
	return pages
}

// layoutPaths decides the entry path and the header/footer link sets.
func (g *Generator) layoutPaths(s *Site) (entry string, footer, header []link) {
	l := s.Layout
	switch {
	case s.Failure == FailPDFOnly:
		entry = "/privacy-policy.pdf"
	case l.Hub:
		entry = "/privacy-center/statement"
	default:
		// Many real policies live at bespoke paths, with the well-known
		// paths redirecting; this keeps footer links and well-known probes
		// on distinct URLs (the paper's 5.1 pages/site average).
		rng := g.rngFor(s.Domain, "entry")
		if l.WellKnownPolicy && rng.Float64() < 0.45 {
			entry = "/privacy-policy"
		} else {
			entry = pick(rng, []string{
				"/legal/privacy", "/corporate/privacy", "/privacy-notice",
				"/legal/privacy-policy", "/about/privacy",
			})
		}
		putRng(rng)
	}

	footer = []link{{"/about", "About"}, {"/careers", "Careers"}, {"/terms", "Terms of Use"}}
	switch s.Failure {
	case FailNoPolicy:
		// no privacy footer link at all
	case FailJSLink:
		footer = append(footer, link{"javascript:openPrivacy()", "Privacy Policy"})
	case FailConsentLink:
		// The privacy anchor only exists inside a script string.
	default:
		if l.FooterLabel != "" {
			target := entry
			if l.Hub {
				target = "/privacy-center"
			}
			footer = append(footer, link{target, l.FooterLabel})
		}
		if l.ChoicesPage {
			footer = append(footer, link{"/privacy-choices", "Your Privacy Choices"})
		}
		if l.CANotice {
			footer = append(footer, link{"/privacy/ca-notice", "CA Privacy Notice"})
		}
	}

	if l.MultiPage && s.hasCategory("Tracking data") && s.Failure == FailNone {
		header = append(header, link{"/privacy/cookies", "Cookie and Privacy Preferences"})
	}
	if l.ChoicesPage && s.Failure == FailNone {
		header = append(header, link{"/privacy-choices", "Your Privacy Choices"})
	}
	return entry, footer, header
}

// addAuxiliaryPages emits hub, alias, cookie, and choices pages.
func (g *Generator) addAuxiliaryPages(s *Site, pages map[string]Page, entry string, header, footer []link) {
	l := s.Layout
	if l.Hub {
		hub := `<h1>` + s.Company + ` Privacy Center</h1>
<p><a href="/privacy-center/statement">Privacy Statement</a></p>
<p><a href="/privacy-center/faq">Privacy FAQs</a></p>
<p>Learn how we approach your privacy across our products.</p>`
		pages["/privacy-center"] = g.wrapPolicyBody(s, nil, footer, hub)
		pages["/privacy-center/faq"] = g.wrapPolicyBody(s, nil, footer,
			`<h1>Privacy FAQs</h1><p>Answers to common questions about our privacy practices.</p>`)
	}
	// Well-known aliases: /privacy duplicates or redirects to the entry.
	if l.WellKnownPolicy && entry != "/privacy-policy" {
		pages["/privacy-policy"] = Page{RedirectTo: entry, Status: 301}
	}
	if l.WellKnownPrivacy && entry != "/privacy" {
		rng := g.rngFor(s.Domain, "alias")
		alias := rng.Float64() < 0.5
		putRng(rng)
		if alias {
			pages["/privacy"] = Page{RedirectTo: entry, Status: 301}
		} else if p, ok := pages[entry]; ok {
			pages["/privacy"] = p // duplicate content → dedup by hash
		}
	}
	if l.MultiPage && s.hasCategory("Tracking data") && s.Failure == FailNone {
		pages["/privacy/cookies"] = g.cookiePage(s, footer)
	}
	if l.ChoicesPage && s.Failure == FailNone {
		pages["/privacy-choices"] = g.choicesPage(s, footer)
	}
	if l.CANotice && s.Failure == FailNone {
		// Jurisdiction notices usually just forward to the main policy.
		pages["/privacy/ca-notice"] = Page{RedirectTo: entry, Status: 301}
	}
}

// mainSections returns the policy sections, with tracking-data content
// moved to the cookie page on multi-page sites.
func (g *Generator) mainSections(s *Site) []policySection {
	secs := g.generatePolicy(s)
	if !(s.Layout.MultiPage && s.hasCategory("Tracking data")) {
		return secs
	}
	// Remove tracking surfaces from the types section; they live on
	// /privacy/cookies instead (exercising cross-page annotation merge).
	tracking := s.trackingSurfaces()
	for i := range secs {
		if secs[i].Aspect != taxonomy.AspectTypes {
			continue
		}
		var paras []string
		for _, p := range secs[i].Paras {
			if containsAnyFold(p, tracking) {
				continue
			}
			paras = append(paras, p)
		}
		secs[i].Paras = paras
		var bullets []string
		for _, b := range secs[i].Bullets {
			if containsAnyFold(b, tracking) {
				continue
			}
			bullets = append(bullets, b)
		}
		secs[i].Bullets = bullets
	}
	return secs
}

func (s *Site) trackingSurfaces() []string {
	var out []string
	for _, m := range s.Truth.Types {
		if m.Category == "Tracking data" {
			out = append(out, m.Surface)
		}
	}
	return out
}

func containsAnyFold(text string, subs []string) bool {
	low := strings.ToLower(text)
	for _, sub := range subs {
		if strings.Contains(low, strings.ToLower(sub)) {
			return true
		}
	}
	return false
}

// cookiePage carries the tracking-data content on multi-page sites.
func (g *Generator) cookiePage(s *Site, footer []link) Page {
	var b strings.Builder
	b.WriteString("<h1>Cookie and Privacy Preferences</h1>")
	b.WriteString("<p>This page explains the technologies our sites place on your device.</p>")
	var surfaces []string
	for _, m := range s.Truth.Types {
		if m.Category == "Tracking data" {
			surfaces = append(surfaces, m.Surface)
		}
	}
	fmt.Fprintf(&b, "<p>When you browse our sites, we collect %s.</p>", joinAnd(surfaces))
	b.WriteString("<p>Your browser controls let you refuse some of these technologies.</p>")
	return g.wrapPolicyBody(s, nil, footer, b.String())
}

// choicesPage is the "Your Privacy Choices" opt-out page.
func (g *Generator) choicesPage(s *Site, footer []link) Page {
	var b strings.Builder
	b.WriteString("<h1>Your Privacy Choices</h1>")
	hasLinkOptOut := false
	for _, r := range s.Truth.Rights {
		if r.Label == taxonomy.ChoiceOptOutLink {
			hasLinkOptOut = true
		}
	}
	if hasLinkOptOut {
		b.WriteString("<p>To submit a request to opt out of the sale or sharing of your personal information, please click the Opt-Out of Sale/Sharing Request tab on this page.</p>")
	} else {
		b.WriteString("<p>Use the form below to tell us how you would like to hear from us.</p>")
	}
	return g.wrapPolicyBody(s, nil, footer, b.String())
}

// vaguePolicy builds the zero-annotation failure class: proper structure,
// nothing specific enough to annotate.
func vaguePolicy(s *Site) []policySection {
	return []policySection{
		{Aspect: taxonomy.AspectOther, Heading: "Introduction",
			Paras: []string{s.Company + " values the trust you place in us. This statement explains our general approach."}},
		{Aspect: taxonomy.AspectTypes, Heading: "Information We Collect",
			Paras: []string{"We collect what you choose to share with us in the course of doing business together."}},
		{Aspect: taxonomy.AspectPurposes, Heading: "How We Use Your Information",
			Paras: []string{"What you share helps us run the company and serve you better."}},
		{Aspect: taxonomy.AspectHandling, Heading: "Data Security",
			Paras: []string{"We take care with everything entrusted to us."}},
		{Aspect: taxonomy.AspectRights, Heading: "Your Rights",
			Paras: []string{"Reach out with any concerns and our team will respond."}},
		{Aspect: taxonomy.AspectOther, Heading: "Contact Us",
			Paras: []string{"Write to our office at the address on our About page."}},
	}
}

// ----------------------------------------------------------------- HTML

type link struct{ href, text string }

func (g *Generator) homePage(s *Site, footer []link) Page {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s</title></head><body>", s.Company)
	b.WriteString(navHTML())
	fmt.Fprintf(&b, `<main><h1>%s</h1><p>Welcome to %s, a leader in %s. Explore our products and learn more about what we do.</p>`,
		s.Company, s.Company, strings.ToLower(s.Sector))
	b.WriteString(`<p>Founded to serve customers with integrity, we operate across the country and keep our communities at the center of our work.</p></main>`)
	if s.Failure == FailConsentLink {
		b.WriteString(`<script>var consent='<div class="consent"><a href="/privacy-settings-center">Privacy Policy</a></div>';document.body.insertAdjacentHTML('beforeend', consent);</script>`)
	}
	b.WriteString(footerHTML(footer))
	b.WriteString("</body></html>")
	return Page{Status: 200, ContentType: "text/html; charset=utf-8", Body: b.String()}
}

func (g *Generator) simplePage(s *Site, title, body string, footer []link) Page {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>%s | %s</title></head><body>", title, s.Company)
	b.WriteString(navHTML())
	fmt.Fprintf(&b, "<main><h1>%s</h1><p>%s</p></main>", title, body)
	b.WriteString(footerHTML(footer))
	b.WriteString("</body></html>")
	return Page{Status: 200, ContentType: "text/html; charset=utf-8", Body: b.String()}
}

// policyPage renders policy sections with the site's heading style.
func (g *Generator) policyPage(s *Site, header, footer []link, secs []policySection) Page {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>Privacy Policy | %s</title></head><body>", s.Company)
	b.WriteString(navHTML())
	if len(header) > 0 {
		b.WriteString("<div class=\"policy-nav\">")
		for _, l := range header {
			fmt.Fprintf(&b, `<a href="%s">%s</a> `, l.href, l.text)
		}
		b.WriteString("</div>")
	}
	b.WriteString("<main><h1>Privacy Policy</h1>")
	for _, sec := range secs {
		switch s.Layout.HeadingStyle {
		case "h2":
			if sec.Heading != "" {
				fmt.Fprintf(&b, "<h2>%s</h2>", sec.Heading)
			}
		case "bold":
			if sec.Heading != "" {
				fmt.Fprintf(&b, "<div><b>%s</b></div>", sec.Heading)
			}
		case "none":
			// short/heading-free policies trigger the Appendix B fallback
		}
		for _, p := range sec.Paras {
			if p != "" {
				fmt.Fprintf(&b, "<p>%s</p>", p)
			}
		}
		if len(sec.Bullets) > 0 {
			b.WriteString("<ul>")
			for _, item := range sec.Bullets {
				fmt.Fprintf(&b, "<li>%s</li>", item)
			}
			b.WriteString("</ul>")
		}
	}
	b.WriteString("</main>")
	b.WriteString(footerHTML(footer))
	b.WriteString("</body></html>")
	return Page{Status: 200, ContentType: "text/html; charset=utf-8", Body: b.String()}
}

// wrapPolicyBody wraps a raw body fragment in the site chrome.
func (g *Generator) wrapPolicyBody(s *Site, header, footer []link, body string) Page {
	var b strings.Builder
	fmt.Fprintf(&b, "<html><head><title>Privacy | %s</title></head><body>", s.Company)
	b.WriteString(navHTML())
	if len(header) > 0 {
		b.WriteString("<div class=\"policy-nav\">")
		for _, l := range header {
			fmt.Fprintf(&b, `<a href="%s">%s</a> `, l.href, l.text)
		}
		b.WriteString("</div>")
	}
	b.WriteString("<main>")
	b.WriteString(body)
	b.WriteString("</main>")
	b.WriteString(footerHTML(footer))
	b.WriteString("</body></html>")
	return Page{Status: 200, ContentType: "text/html; charset=utf-8", Body: b.String()}
}

func navHTML() string {
	return `<nav><a href="/">Home</a> <a href="/about">About</a> <a href="/careers">Careers</a></nav>`
}

func footerHTML(links []link) string {
	var b strings.Builder
	b.WriteString("<footer>")
	for _, l := range links {
		fmt.Fprintf(&b, `<a href="%s">%s</a> `, l.href, l.text)
	}
	b.WriteString("<span>© 2024 All rights reserved.</span></footer>")
	return b.String()
}
