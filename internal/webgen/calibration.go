package webgen

// This file encodes the published shape of the privacy-policy ecosystem —
// the paper's Tables 2b, 3 and 5 — as sampling targets. The generator
// draws each synthetic company's policy profile from these distributions,
// so the corpus the pipeline measures has the ecosystem's published
// structure and the experiment harness can compare measured-vs-paper rows.

// CatStats is one category's sampling target: overall coverage (fraction
// of companies mentioning the category at all), the mean/SD of unique
// descriptor counts among those companies, and per-sector coverage
// overrides for the sectors the paper names (Table 5's highest/lowest
// columns). Unnamed sectors fall back to the overall coverage.
type CatStats struct {
	Category  string
	Cov       float64
	Mean, SD  float64
	SectorCov map[string]float64
}

// typeTargets encodes Table 5 (collected data types, all 34 categories).
var typeTargets = []CatStats{
	{"Contact info", .864, 3.6, 1.4, map[string]float64{"HC": .910, "TC": .908, "CD": .904, "FS": .774}},
	{"Personal identifier", .895, 3.4, 2.6, map[string]float64{"TC": .939, "CD": .918, "CS": .913, "EN": .778}},
	{"Professional info", .590, 4.5, 5.0, map[string]float64{"IT": .687, "HC": .656, "TC": .653, "UT": .444}},
	{"Demographic info", .499, 4.7, 4.2, map[string]float64{"TC": .673, "CD": .653, "CS": .621, "MT": .298}},
	{"Educational info", .279, 2.2, 2.3, map[string]float64{"HC": .346, "FS": .314, "CS": .282, "MT": .158}},
	{"Vehicle info", .050, 3.0, 8.2, map[string]float64{"CD": .113, "RE": .097, "IN": .080, "HC": .004}},
	{"Device info", .744, 4.0, 2.9, map[string]float64{"TC": .888, "CD": .863, "IT": .830, "FS": .583}},
	{"Online identifier", .809, 1.7, 0.9, map[string]float64{"TC": .888, "CD": .883, "UT": .870, "FS": .657}},
	{"Account info", .500, 2.4, 1.6, map[string]float64{"CD": .646, "TC": .622, "IT": .604, "EN": .303}},
	{"Network connectivity", .295, 1.5, 1.0, map[string]float64{"CD": .450, "TC": .449, "IT": .347, "EN": .141}},
	{"Social media data", .233, 1.6, 1.2, map[string]float64{"CD": .395, "TC": .367, "CS": .340, "MT": .096}},
	{"External data", .124, 1.7, 1.4, map[string]float64{"TC": .235, "UT": .185, "CS": .175, "EN": .051}},
	{"Medical info", .283, 3.7, 3.5, map[string]float64{"HC": .501, "CS": .311, "FS": .280, "EN": .111}},
	{"Biometric data", .164, 2.6, 3.0, map[string]float64{"FS": .202, "HC": .191, "CD": .189, "EN": .030}},
	{"Physical characteristic", .112, 1.5, 1.1, map[string]float64{"CS": .165, "FS": .161, "CD": .144, "EN": .040}},
	{"Fitness & health", .035, 2.2, 2.5, map[string]float64{"TC": .071, "CD": .052, "HC": .047, "IT": .015}},
	{"Financial info", .539, 3.2, 2.3, map[string]float64{"CD": .735, "UT": .648, "FS": .639, "EN": .273}},
	{"Legal info", .287, 2.3, 2.1, map[string]float64{"FS": .359, "CD": .330, "RE": .323, "MT": .167}},
	{"Financial capability", .215, 2.5, 2.1, map[string]float64{"FS": .516, "RE": .226, "CD": .192, "CS": .087}},
	{"Insurance info", .148, 2.0, 1.7, map[string]float64{"FS": .242, "HC": .222, "CD": .134, "MT": .061}},
	{"Precise location", .509, 1.5, 0.9, map[string]float64{"TC": .714, "CD": .684, "CS": .592, "EN": .253}},
	{"Approximate location", .333, 1.8, 1.2, map[string]float64{"TC": .541, "IT": .449, "CD": .430, "UT": .167}},
	{"Travel data", .066, 1.6, 1.9, map[string]float64{"IN": .104, "CD": .096, "TC": .092, "UT": .019}},
	{"Physical interaction", .028, 1.2, 0.5, map[string]float64{"CD": .065, "RE": .040, "IN": .036, "FS": .016}},
	{"Internet usage", .728, 3.8, 2.8, map[string]float64{"TC": .847, "CD": .832, "CS": .806, "EN": .485}},
	{"Tracking data", .467, 2.3, 1.6, map[string]float64{"CD": .550, "IT": .542, "TC": .510, "FS": .377}},
	{"Product/service usage", .508, 2.1, 1.8, map[string]float64{"TC": .724, "CD": .619, "CS": .602, "EN": .323}},
	{"Transaction info", .439, 2.2, 1.5, map[string]float64{"CD": .639, "FS": .601, "CS": .583, "EN": .212}},
	{"Preferences", .491, 2.0, 1.3, map[string]float64{"CD": .656, "CS": .641, "TC": .541, "UT": .296}},
	{"Content generation", .328, 2.3, 1.9, map[string]float64{"CD": .495, "TC": .418, "CS": .417, "UT": .130}},
	{"Communication data", .338, 1.9, 1.4, map[string]float64{"TC": .480, "CD": .426, "IT": .390, "UT": .111}},
	{"Feedback data", .253, 1.8, 1.2, map[string]float64{"CD": .371, "CS": .340, "IT": .310, "EN": .121}},
	{"Content consumption", .267, 1.3, 0.8, map[string]float64{"TC": .469, "IT": .347, "CS": .330, "UT": .111}},
	{"Diagnostic data", .143, 1.6, 1.3, map[string]float64{"TC": .265, "IT": .220, "IN": .171, "EN": .040}},
}

// purposeTargets encodes Table 2b (collection purposes, 7 categories).
var purposeTargets = []CatStats{
	{"Basic functioning", .951, 9.1, 7.8, map[string]float64{"CS": .990, "TC": .980, "HC": .974, "EN": .889}},
	{"User experience", .865, 3.9, 2.9, map[string]float64{"CS": .932, "IT": .923, "CD": .921, "FS": .751}},
	{"Analytics & research", .813, 4.1, 3.1, map[string]float64{"CD": .893, "TC": .888, "CS": .874, "EN": .667}},
	{"Legal & compliance", .732, 4.1, 3.3, map[string]float64{"TC": .827, "FS": .783, "CD": .780, "EN": .475}},
	{"Security", .725, 4.1, 3.3, map[string]float64{"TC": .857, "CS": .796, "CD": .790, "EN": .535}},
	{"Advertising & sales", .780, 3.0, 2.3, map[string]float64{"CD": .911, "CS": .854, "IT": .848, "EN": .515}},
	{"Data sharing", .261, 2.1, 2.3, map[string]float64{"TC": .367, "RE": .355, "HC": .303, "FS": .182}},
}

// LabelStats is one handling/rights label's coverage target (Table 3).
type LabelStats struct {
	Group     string
	Label     string
	Cov       float64
	SectorCov map[string]float64
}

// labelTargets encodes Table 3 (data handling and user rights).
var labelTargets = []LabelStats{
	{"Data retention", "Limited", .609, map[string]float64{"TC": .816, "IT": .814, "UT": .259}},
	{"Data retention", "Stated", .099, map[string]float64{"IT": .164, "TC": .153, "UT": .056}},
	{"Data retention", "Indefinitely", .055, map[string]float64{"HC": .065, "TC": .061, "CD": .045}},
	{"Data protection", "Generic", .731, map[string]float64{"RE": .782, "IT": .765, "EN": .636}},
	{"Data protection", "Access limit", .191, map[string]float64{"FS": .294, "IT": .220, "MT": .114}},
	{"Data protection", "Secure transfer", .140, map[string]float64{"UT": .185, "TC": .184, "EN": .071}},
	{"Data protection", "Secure storage", .161, map[string]float64{"FS": .316, "IT": .214, "CS": .049}},
	{"Data protection", "Privacy program", .099, map[string]float64{"IT": .164, "FS": .143, "RE": .032}},
	{"Data protection", "Privacy review", .068, map[string]float64{"IT": .130, "UT": .111, "CS": .029}},
	{"Data protection", "Secure authentication", .042, map[string]float64{"FS": .072, "IT": .053, "MT": .018}},
	{"User choices", "Opt-out via contact", .652, map[string]float64{"TC": .724, "IT": .718, "EN": .434}},
	{"User choices", "Opt-out via link", .361, map[string]float64{"TC": .612, "CS": .602, "EN": .172}},
	{"User choices", "Privacy settings", .177, map[string]float64{"TC": .296, "IT": .245, "EN": .081}},
	{"User choices", "Opt-in", .177, map[string]float64{"CS": .223, "UT": .222, "TC": .122}},
	{"User choices", "Do not use", .105, map[string]float64{"UT": .148, "CS": .136, "RE": .081}},
	{"User access", "Edit", .716, map[string]float64{"IT": .854, "TC": .806, "EN": .434}},
	{"User access", "Full delete", .535, map[string]float64{"CD": .639, "TC": .622, "UT": .278}},
	{"User access", "View", .456, map[string]float64{"IT": .573, "TC": .520, "UT": .278}},
	{"User access", "Export", .429, map[string]float64{"IT": .610, "CS": .495, "UT": .185}},
	{"User access", "Partial delete", .112, map[string]float64{"TC": .224, "IT": .146, "UT": .019}},
	{"User access", "Deactivate", .025, map[string]float64{"TC": .082, "UT": .056, "IN": .008}},
}

// coverageFor resolves a target coverage for a sector abbreviation.
func coverageFor(overall float64, overrides map[string]float64, sectorAbbrev string) float64 {
	if v, ok := overrides[sectorAbbrev]; ok {
		return v
	}
	return overall
}

// statedRetentionDays is the sampling pool for explicit retention periods,
// weighted so the median lands at 2 years (§5: median 2 years, min 1 day,
// max 50 years — the extremes are pinned to specific domains by the
// sampler).
var statedRetentionDays = []int{
	30, 90, 180, 365, 365, 730, 730, 730, 730, 1095, 1095, 1825, 1825,
	2190, 2555, 3650,
}
