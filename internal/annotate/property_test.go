package annotate

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// genAnnotation builds a random-but-valid annotation from constrained
// vocabularies (quick's default string generator would make Key()
// collisions vanishingly rare and the property vacuous).
func genAnnotation(r *rand.Rand) Annotation {
	aspects := []string{"types", "purposes", "handling", "rights"}
	metas := []string{"A", "B", "C"}
	cats := []string{"c1", "c2", "c3", "Stated"}
	descs := []string{"", "d1", "d2"}
	return Annotation{
		Aspect:     aspects[r.Intn(len(aspects))],
		Meta:       metas[r.Intn(len(metas))],
		Category:   cats[r.Intn(len(cats))],
		Descriptor: descs[r.Intn(len(descs))],
		Text:       "t",
		Line:       r.Intn(100),
	}
}

type annList []Annotation

// Generate implements quick.Generator.
func (annList) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	out := make(annList, n)
	for i := range out {
		out[i] = genAnnotation(r)
	}
	return reflect.ValueOf(out)
}

// Property: Dedup is idempotent.
func TestDedupIdempotentProperty(t *testing.T) {
	f := func(anns annList) bool {
		once := Dedup(anns)
		twice := Dedup(once)
		return reflect.DeepEqual(once, twice)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Dedup preserves first-occurrence order and never invents
// annotations.
func TestDedupSubsetOrderProperty(t *testing.T) {
	f := func(anns annList) bool {
		out := Dedup(anns)
		if len(out) > len(anns) {
			return false
		}
		// Every output element appears in the input, and output order is a
		// subsequence of input order.
		j := 0
		for _, o := range out {
			found := false
			for ; j < len(anns); j++ {
				if reflect.DeepEqual(anns[j], o) {
					found = true
					j++
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Merge(a, b) == Merge(Merge(a), b) — page-at-a-time merging is
// associative in effect.
func TestMergeAssociativityProperty(t *testing.T) {
	f := func(a, b annList) bool {
		direct := Merge(a, b)
		staged := Merge(Dedup(a), b)
		return reflect.DeepEqual(direct, staged)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
