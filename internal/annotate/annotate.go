// Package annotate turns a segmented privacy policy into structured
// annotations (§3.2.2): collected data types and collection purposes are
// extracted verbatim and then normalized against the taxonomy (two chatbot
// tasks each, with zero-shot descriptors for out-of-glossary terms);
// retention/protection practices and user choices/access are extracted and
// labeled in one task each. Each aspect is annotated from its own section
// first, falling back to the whole text when the section yields nothing,
// and every chatbot-generated mention is programmatically verified to be
// present in the policy text (the hallucination filter).
package annotate

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"aipan/internal/chatbot"
	"aipan/internal/engine"
	"aipan/internal/nlp"
	"aipan/internal/obs"
	"aipan/internal/segment"
	"aipan/internal/taxonomy"
	"aipan/internal/textify"
)

// Annotation is one structured, normalized annotation — the unit of the
// AIPAN dataset.
type Annotation struct {
	// Aspect is "types", "purposes", "handling", or "rights".
	Aspect string `json:"aspect"`
	// Meta is the meta-category (types/purposes) or label group
	// (handling/rights), e.g. "Physical profile" or "Data retention".
	Meta string `json:"meta"`
	// Category is the category (types/purposes) or practice label
	// (handling/rights), e.g. "Contact info" or "Stated".
	Category string `json:"category"`
	// Descriptor is the normalized descriptor for types/purposes (e.g.
	// "postal address"); for handling/rights it is empty except for stated
	// retention periods, where it carries the extracted duration.
	Descriptor string `json:"descriptor,omitempty"`
	// Text is the verbatim mention from the policy.
	Text string `json:"text"`
	// Line is the source line number in the rendered policy.
	Line int `json:"line"`
	// Context is the sentence containing the mention (Table 6's context
	// column).
	Context string `json:"context,omitempty"`
	// Novel marks zero-shot descriptors not present in the glossary.
	Novel bool `json:"novel,omitempty"`
	// RetentionDays is the parsed duration for "Stated" retention.
	RetentionDays int `json:"retention_days,omitempty"`
	// Scope qualifies the annotation; for "Indefinitely" retention it is
	// set to "anonymized" when the mention concerns anonymized/aggregated
	// data — the paper's §6 refinement ("mentions of unlimited retention
	// periods often concern anonymized or aggregated data, which is less
	// concerning than personally identifiable information").
	Scope string `json:"scope,omitempty"`
}

// Key is the repetition-dedup identity: the paper counts unique
// annotations "after eliminating repetitive mentions of the same term for
// each privacy policy".
func (a Annotation) Key() string {
	return a.Aspect + "|" + a.Meta + "|" + a.Category + "|" + a.Descriptor
}

// Result is the annotation outcome for one policy document.
type Result struct {
	Annotations []Annotation
	// FallbackUsed records which aspects fell back to whole-text
	// annotation (§3.2.2 footnote: at least one fallback for 708/2545
	// policies).
	FallbackUsed map[string]bool
	// Dropped counts mentions removed by the hallucination filter.
	Dropped int
	// Aspects breaks the outcome down per aspect in pipeline call order
	// (types, purposes, handling, rights) — the flight recorder persists
	// it so provenance queries can see which aspect dropped or fell back.
	Aspects []AspectStats
}

// AspectStats is one aspect's share of a Result.
type AspectStats struct {
	// Aspect is the aspect name ("types", "purposes", ...).
	Aspect string
	// Annotations kept for this aspect after filtering.
	Annotations int
	// Dropped counts this aspect's hallucination-filter removals.
	Dropped int
	// Fallback is true when the aspect annotated from the whole text.
	Fallback bool
}

// Option configures an Annotator.
type Option func(*Annotator)

// WithGlossarySize controls how many descriptors per category ship in the
// prompts: 0 = the full glossary (default), n>0 = truncated, -1 = no
// glossary at all (the ablation in DESIGN.md §4).
func WithGlossarySize(n int) Option {
	return func(a *Annotator) { a.glossarySize = n }
}

// WithHallucinationFilter toggles the programmatic verbatim-presence check
// (default on; the off switch exists for the ablation bench).
func WithHallucinationFilter(on bool) Option {
	return func(a *Annotator) { a.verify = on }
}

// WithSectionFirst toggles section-first annotation (default on). When
// off, every aspect is annotated from the whole text — the paper's
// token-hungry alternative.
func WithSectionFirst(on bool) Option {
	return func(a *Annotator) { a.sectionFirst = on }
}

// WithRegistry routes the annotator's metrics to reg instead of the
// process-wide default registry.
func WithRegistry(reg *obs.Registry) Option {
	return func(a *Annotator) { a.reg = reg; a.met = newAnnMetrics(reg) }
}

// WithClock replaces the annotator's time source for its latency metrics
// (default obs.SystemClock). Annotation content never reads the clock —
// that is the determinism contract aipanvet enforces.
func WithClock(clock obs.Clock) Option {
	return func(a *Annotator) { a.clock = clock }
}

// Annotator runs the §3.2.2 annotation tasks through a chatbot.
type Annotator struct {
	bot          chatbot.Chatbot
	glossarySize int
	verify       bool
	sectionFirst bool
	reg          *obs.Registry
	met          *annMetrics
	clock        obs.Clock
	aspects      *engine.Stage[aspectCall, Result]
}

// annMetrics instruments the per-aspect annotation chains.
type annMetrics struct {
	aspectDur *obs.HistogramVec // by aspect
	dropped   *obs.Counter
	fallbacks *obs.CounterVec // by aspect
}

func newAnnMetrics(reg *obs.Registry) *annMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &annMetrics{
		aspectDur: reg.HistogramVec("aipan_annotate_aspect_duration_seconds",
			"Wall time of one aspect's annotation chain (extract, filter, normalize).", nil, "aspect"),
		dropped: reg.Counter("aipan_annotate_hallucination_dropped_total",
			"Mentions removed by the verbatim-presence hallucination filter."),
		fallbacks: reg.CounterVec("aipan_annotate_fallbacks_total",
			"Aspect annotations that fell back to whole-text extraction.", "aspect"),
	}
}

// New builds an Annotator around a chatbot backend.
func New(bot chatbot.Chatbot, opts ...Option) *Annotator {
	a := &Annotator{bot: bot, glossarySize: 0, verify: true, sectionFirst: true, clock: obs.SystemClock}
	for _, o := range opts {
		o(a)
	}
	if a.met == nil {
		a.met = newAnnMetrics(nil)
	}
	a.aspects = engine.NewStage(a.reg, "annotate", engine.Policy{Workers: engine.Unbounded},
		func(ctx context.Context, call aspectCall) (Result, error) {
			partial := Result{FallbackUsed: map[string]bool{}}
			actx, span := obs.StartSpan(ctx, "annotate."+call.name)
			start := a.clock()
			err := call.fn(actx, call.dc, &partial)
			a.met.aspectDur.With(call.name).Observe(a.clock().Sub(start).Seconds())
			span.End()
			return partial, err
		})
	return a
}

// aspectCall is one aspect's unit of work on the annotate engine stage.
type aspectCall struct {
	name string
	dc   *docContext
	fn   func(context.Context, *docContext, *Result) error
}

// docContext bundles the per-document state shared by the four aspect
// annotations: the rendered document, its segmentation, the numbered
// whole-text prompt rendering (built once instead of once per fallback),
// and the lazily-built token index backing the hallucination filter.
type docContext struct {
	doc      *textify.Document
	seg      *segment.Result
	numbered string

	tokensOnce sync.Once
	tokens     *docIndex
}

// index returns the document token index, building it on first use (the
// filter-off ablation never pays for it).
func (dc *docContext) index() *docIndex {
	dc.tokensOnce.Do(func() { dc.tokens = indexDocument(dc.doc) })
	return dc.tokens
}

// Annotate produces all annotations for one rendered, segmented policy.
//
// The four aspects (types, purposes, handling, rights) are annotated
// concurrently on the engine's annotate stage — each is an independent
// chain of chatbot calls, so a shared concurrency-bounded chatbot.Client
// sees up to four in-flight requests per policy instead of one. Each
// aspect accumulates into its own partial Result; the partials are merged
// in fixed aspect order, so the output is byte-identical to a sequential
// run.
func (an *Annotator) Annotate(ctx context.Context, doc *textify.Document, seg *segment.Result) (*Result, error) {
	dc := &docContext{doc: doc, seg: seg, numbered: doc.NumberedText()}
	calls := []aspectCall{
		{"types", dc, an.annotateTypes},
		{"purposes", dc, an.annotatePurposes},
		{"handling", dc, an.annotateHandling},
		{"rights", dc, an.annotateRights},
	}
	partials, err := an.aspects.Map(ctx, calls)
	if err != nil {
		return nil, err
	}

	res := &Result{FallbackUsed: map[string]bool{}, Aspects: make([]AspectStats, 0, len(partials))}
	for i := range partials {
		res.Annotations = append(res.Annotations, partials[i].Annotations...)
		res.Dropped += partials[i].Dropped
		for a := range partials[i].FallbackUsed {
			res.FallbackUsed[a] = true
		}
		res.Aspects = append(res.Aspects, AspectStats{
			Aspect:      calls[i].name,
			Annotations: len(partials[i].Annotations),
			Dropped:     partials[i].Dropped,
			Fallback:    partials[i].FallbackUsed[calls[i].name],
		})
	}
	res.recordMetrics(an.met)
	return res, nil
}

// recordMetrics folds one document's outcome into the annotator's
// instruments after the partials are merged (single-threaded, so counter
// totals equal the summed Result fields exactly).
func (r *Result) recordMetrics(met *annMetrics) {
	met.dropped.Add(float64(r.Dropped))
	for aspect := range r.FallbackUsed {
		met.fallbacks.With(aspect).Inc()
	}
}

// sectionOrFallback returns the aspect's numbered text, and whether the
// whole document was used instead.
func (an *Annotator) sectionOrFallback(dc *docContext, a taxonomy.Aspect) (string, bool) {
	if an.sectionFirst {
		if text := dc.seg.NumberedText(a); strings.TrimSpace(text) != "" {
			return text, false
		}
	}
	return dc.numbered, true
}

// verifyMention implements the hallucination check: the extracted words
// must be present (possibly discontinuously) on the referenced line, or
// anywhere in the policy as a lenient second chance.
func (an *Annotator) verifyMention(dc *docContext, line int, text string) bool {
	if !an.verify {
		return true
	}
	ix := dc.index()
	pw := stemmedWords(text)
	if ix.lineContains(line-1, pw) {
		return true
	}
	return ix.anywhere(pw)
}

// contextOf recovers the containing sentence for Table 6.
func contextOf(doc *textify.Document, line int, text string) string {
	if l, ok := doc.LineByNumber(line); ok {
		return nlp.SentenceOf(l.Text, text)
	}
	return ""
}

// ------------------------------------------------------- types & purposes

func (an *Annotator) annotateTypes(ctx context.Context, dc *docContext, res *Result) error {
	return an.annotateNormalized(ctx, dc, res, taxonomy.AspectTypes,
		func(text string) chatbot.Request { return chatbot.ExtractTypesRequest(text, an.glossarySize) },
		func(mentions []string) chatbot.Request {
			return chatbot.NormalizeTypesRequest(mentions, an.glossarySize)
		},
		taxonomy.NewTypeIndex())
}

func (an *Annotator) annotatePurposes(ctx context.Context, dc *docContext, res *Result) error {
	return an.annotateNormalized(ctx, dc, res, taxonomy.AspectPurposes,
		func(text string) chatbot.Request { return chatbot.ExtractPurposesRequest(text, an.glossarySize) },
		func(mentions []string) chatbot.Request {
			return chatbot.NormalizePurposesRequest(mentions, an.glossarySize)
		},
		taxonomy.NewPurposeIndex())
}

// annotateNormalized runs the two-task extract→normalize flow shared by
// types and purposes.
func (an *Annotator) annotateNormalized(
	ctx context.Context,
	dc *docContext,
	res *Result,
	aspect taxonomy.Aspect,
	extractReq func(string) chatbot.Request,
	normalizeReq func([]string) chatbot.Request,
	ix *taxonomy.Index,
) error {
	text, usedFallback := an.sectionOrFallback(dc, aspect)
	if strings.TrimSpace(text) == "" {
		return nil
	}
	extractions, err := an.extract(ctx, extractReq(text))
	if err != nil {
		return fmt.Errorf("annotate: extracting %s: %w", aspect, err)
	}
	// §3.2.2: fall back to the entire text if the section produced no
	// annotations.
	if len(extractions) == 0 && !usedFallback && an.sectionFirst {
		usedFallback = true
		extractions, err = an.extract(ctx, extractReq(dc.numbered))
		if err != nil {
			return fmt.Errorf("annotate: extracting %s (fallback): %w", aspect, err)
		}
	}
	if usedFallback {
		res.FallbackUsed[string(aspect)] = true
	}

	// Hallucination filter, then collect unique surfaces for normalization.
	var kept []chatbot.Extraction
	surfaceSet := map[string]bool{}
	var surfaces []string
	for _, e := range extractions {
		if e.Text == "" {
			continue
		}
		if !an.verifyMention(dc, e.Line, e.Text) {
			res.Dropped++
			continue
		}
		kept = append(kept, e)
		key := nlp.NormalizeStemmed(e.Text)
		if !surfaceSet[key] {
			surfaceSet[key] = true
			surfaces = append(surfaces, e.Text)
		}
	}
	if len(kept) == 0 {
		return nil
	}

	resp, err := an.bot.Complete(ctx, normalizeReq(surfaces))
	if err != nil {
		return fmt.Errorf("annotate: normalizing %s: %w", aspect, err)
	}
	norms, err := chatbot.ParseNormalizations(resp.Content)
	if err != nil {
		return fmt.Errorf("annotate: %s: %w", aspect, err)
	}
	normOf := map[string]chatbot.Normalization{}
	for _, n := range norms {
		normOf[nlp.NormalizeStemmed(n.Surface)] = n
	}

	known := ix.KnownDescriptors()

	for _, e := range kept {
		n, ok := normOf[nlp.NormalizeStemmed(e.Text)]
		if !ok || n.Category == "" || n.Meta == "" {
			continue // unplaceable mention: discarded like the paper's junk rows
		}
		res.Annotations = append(res.Annotations, Annotation{
			Aspect:     string(aspect),
			Meta:       n.Meta,
			Category:   n.Category,
			Descriptor: n.Descriptor,
			Text:       e.Text,
			Line:       e.Line,
			Context:    contextOf(dc.doc, e.Line, e.Text),
			Novel:      !known[nlp.NormalizeStemmed(n.Descriptor)],
		})
	}
	return nil
}

func (an *Annotator) extract(ctx context.Context, req chatbot.Request) ([]chatbot.Extraction, error) {
	resp, err := an.bot.Complete(ctx, req)
	if err != nil {
		return nil, err
	}
	return chatbot.ParseExtractions(resp.Content)
}

// ------------------------------------------------------ handling & rights

func (an *Annotator) annotateHandling(ctx context.Context, dc *docContext, res *Result) error {
	return an.annotateLabeled(ctx, dc, res, taxonomy.AspectHandling, chatbot.HandlingLabelsRequest)
}

func (an *Annotator) annotateRights(ctx context.Context, dc *docContext, res *Result) error {
	return an.annotateLabeled(ctx, dc, res, taxonomy.AspectRights, chatbot.RightsLabelsRequest)
}

func (an *Annotator) annotateLabeled(
	ctx context.Context,
	dc *docContext,
	res *Result,
	aspect taxonomy.Aspect,
	buildReq func(string) chatbot.Request,
) error {
	text, usedFallback := an.sectionOrFallback(dc, aspect)
	if strings.TrimSpace(text) == "" {
		return nil
	}
	mentions, err := an.labeled(ctx, buildReq(text))
	if err != nil {
		return fmt.Errorf("annotate: labeling %s: %w", aspect, err)
	}
	if len(mentions) == 0 && !usedFallback && an.sectionFirst {
		usedFallback = true
		mentions, err = an.labeled(ctx, buildReq(dc.numbered))
		if err != nil {
			return fmt.Errorf("annotate: labeling %s (fallback): %w", aspect, err)
		}
	}
	if usedFallback {
		res.FallbackUsed[string(aspect)] = true
	}

	valid := validLabels(aspect)
	for _, m := range mentions {
		if m.Text == "" || !valid[m.Group+"|"+m.Label] {
			res.Dropped++
			continue
		}
		if !an.verifyMention(dc, m.Line, m.Text) {
			res.Dropped++
			continue
		}
		a := Annotation{
			Aspect:   string(aspect),
			Meta:     m.Group,
			Category: m.Label,
			Text:     m.Text,
			Line:     m.Line,
			Context:  contextOf(dc.doc, m.Line, m.Text),
		}
		if m.Group == taxonomy.GroupRetention && m.Label == taxonomy.RetentionStated {
			if p, ok := nlp.ParseRetention(m.Text); ok {
				a.RetentionDays = p.Days
				a.Descriptor = m.Text
			}
		}
		if m.Group == taxonomy.GroupRetention && m.Label == taxonomy.RetentionIndefinitely &&
			anonymizedScope(a.Context) {
			a.Scope = ScopeAnonymized
		}
		res.Annotations = append(res.Annotations, a)
	}
	return nil
}

func (an *Annotator) labeled(ctx context.Context, req chatbot.Request) ([]chatbot.LabeledMention, error) {
	resp, err := an.bot.Complete(ctx, req)
	if err != nil {
		return nil, err
	}
	return chatbot.ParseLabeledMentions(resp.Content)
}

// validLabelSets builds the allowed (group, label) pairs once per aspect:
// the label vocabulary is static, and the old per-document rebuild showed
// up in allocation profiles. The returned maps are shared — read-only.
var validLabelSets = sync.OnceValue(func() map[taxonomy.Aspect]map[string]bool {
	sets := map[taxonomy.Aspect]map[string]bool{}
	for aspect, groups := range map[taxonomy.Aspect][][]taxonomy.Label{
		taxonomy.AspectHandling: {taxonomy.RetentionLabels(), taxonomy.ProtectionLabels()},
		taxonomy.AspectRights:   {taxonomy.ChoiceLabels(), taxonomy.AccessLabels()},
	} {
		v := map[string]bool{}
		for _, ls := range groups {
			for _, l := range ls {
				v[l.Group+"|"+l.Name] = true
			}
		}
		sets[aspect] = v
	}
	return sets
})

// validLabels returns the allowed (group, label) pairs for an aspect, so
// labels invented by weak models are discarded. Aspects without label
// vocabularies yield a nil map, which rejects every lookup.
func validLabels(aspect taxonomy.Aspect) map[string]bool {
	return validLabelSets()[aspect]
}

// ScopeAnonymized marks practices that apply to anonymized/aggregated
// data rather than personally identifiable information.
const ScopeAnonymized = "anonymized"

// anonymizedScopeTerms flag de-identified data contexts.
var anonymizedScopeTerms = []string{
	"anonymized", "anonymised", "aggregated", "aggregate", "de-identified",
	"deidentified", "pseudonymized", "pseudonymised",
}

func anonymizedScope(context string) bool {
	low := strings.ToLower(context)
	for _, t := range anonymizedScopeTerms {
		if strings.Contains(low, t) {
			return true
		}
	}
	return false
}

// Dedup eliminates repetitive mentions of the same term per policy,
// keeping the first occurrence of each Key (the paper's unique-annotation
// counting rule for Tables 1–3).
func Dedup(anns []Annotation) []Annotation {
	seen := map[string]bool{}
	out := make([]Annotation, 0, len(anns))
	for _, a := range anns {
		k := a.Key()
		if a.Category == taxonomy.RetentionStated {
			// Stated periods dedup on the label, not the extracted wording.
			k = a.Aspect + "|" + a.Meta + "|" + a.Category
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, a)
	}
	return out
}

// Merge combines annotations from multiple pages of the same domain and
// dedups them (the crawl yields 1.8 privacy pages per domain on average).
func Merge(pages ...[]Annotation) []Annotation {
	var all []Annotation
	for _, p := range pages {
		all = append(all, p...)
	}
	return Dedup(all)
}
