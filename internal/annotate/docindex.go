package annotate

import (
	"aipan/internal/nlp"
	"aipan/internal/textify"
)

// docIndex is the per-document token index behind the hallucination
// filter. The filter's lenient second chance ("the mention appears
// anywhere in the policy") used to re-tokenize every line for every
// mention — O(document × mentions), quadratic on large policies. The
// index tokenizes and stems each line exactly once and keeps a posting
// map from stemmed token to the lines containing it, so the whole-policy
// check only runs the ordered-subsequence match on lines that contain
// every token of the phrase.
type docIndex struct {
	// toks holds the stemmed tokens of every line back-to-back in one
	// shared buffer; lineOff[i]..lineOff[i+1] delimits line i. One backing
	// array for the whole document replaces the per-line slice the old
	// representation allocated.
	toks    []string
	lineOff []int32
	// byWord maps a stemmed token to the ascending indexes of the lines
	// containing it.
	byWord map[string][]int
}

// line returns the stemmed token sequence of the line at index li.
func (ix *docIndex) line(li int) []string {
	return ix.toks[ix.lineOff[li]:ix.lineOff[li+1]]
}

// indexDocument tokenizes and stems every line of doc once.
func indexDocument(doc *textify.Document) *docIndex {
	ix := &docIndex{
		lineOff: make([]int32, len(doc.Lines)+1),
		byWord:  map[string][]int{},
	}
	for i, l := range doc.Lines {
		start := len(ix.toks)
		ix.toks = nlp.AppendWords(ix.toks, l.Text)
		for j := start; j < len(ix.toks); j++ {
			ix.toks[j] = nlp.Singular(ix.toks[j])
		}
		ix.lineOff[i+1] = int32(len(ix.toks))
		for _, w := range ix.toks[start:] {
			post := ix.byWord[w]
			if len(post) == 0 || post[len(post)-1] != i {
				ix.byWord[w] = append(post, i)
			}
		}
	}
	return ix
}

// stemmedWords returns phrase's stemmed token sequence — the form both
// sides of the containment check are compared in (see nlp.ContainsWords).
func stemmedWords(phrase string) []string {
	ws := nlp.Words(phrase)
	for i, w := range ws {
		ws[i] = nlp.Singular(w)
	}
	return ws
}

// lineContains reports whether the line at index li contains phrase (as
// pre-stemmed tokens pw) as an ordered, possibly discontinuous
// subsequence — exactly nlp.ContainsWords(lineText, phrase).
func (ix *docIndex) lineContains(li int, pw []string) bool {
	if len(pw) == 0 || li < 0 || li >= len(ix.lineOff)-1 {
		return false
	}
	j := 0
	for _, w := range ix.line(li) {
		if j < len(pw) && w == pw[j] {
			j++
		}
	}
	return j == len(pw)
}

// anywhere reports whether any line of the document contains pw. Candidate
// lines come from the shortest posting list among pw's tokens (a line that
// matches must contain every token), so large policies no longer pay a
// full-document scan per mention.
func (ix *docIndex) anywhere(pw []string) bool {
	if len(pw) == 0 {
		return false
	}
	var cand []int
	for i, w := range pw {
		post, ok := ix.byWord[w]
		if !ok {
			return false
		}
		if i == 0 || len(post) < len(cand) {
			cand = post
		}
	}
	for _, li := range cand {
		if ix.lineContains(li, pw) {
			return true
		}
	}
	return false
}
