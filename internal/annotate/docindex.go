package annotate

import (
	"aipan/internal/nlp"
	"aipan/internal/textify"
)

// docIndex is the per-document token index behind the hallucination
// filter. The filter's lenient second chance ("the mention appears
// anywhere in the policy") used to re-tokenize every line for every
// mention — O(document × mentions), quadratic on large policies. The
// index tokenizes and stems each line exactly once and keeps a posting
// map from stemmed token to the lines containing it, so the whole-policy
// check only runs the ordered-subsequence match on lines that contain
// every token of the phrase.
type docIndex struct {
	// lines holds the stemmed token sequence of each rendered line,
	// indexed by line number - 1.
	lines [][]string
	// byWord maps a stemmed token to the ascending indexes of the lines
	// containing it.
	byWord map[string][]int
}

// indexDocument tokenizes and stems every line of doc once.
func indexDocument(doc *textify.Document) *docIndex {
	ix := &docIndex{lines: make([][]string, len(doc.Lines)), byWord: map[string][]int{}}
	for i, l := range doc.Lines {
		ws := nlp.Words(l.Text)
		for j, w := range ws {
			ws[j] = nlp.Singular(w)
		}
		ix.lines[i] = ws
		for _, w := range ws {
			post := ix.byWord[w]
			if len(post) == 0 || post[len(post)-1] != i {
				ix.byWord[w] = append(post, i)
			}
		}
	}
	return ix
}

// stemmedWords returns phrase's stemmed token sequence — the form both
// sides of the containment check are compared in (see nlp.ContainsWords).
func stemmedWords(phrase string) []string {
	ws := nlp.Words(phrase)
	for i, w := range ws {
		ws[i] = nlp.Singular(w)
	}
	return ws
}

// lineContains reports whether the line at index li contains phrase (as
// pre-stemmed tokens pw) as an ordered, possibly discontinuous
// subsequence — exactly nlp.ContainsWords(lineText, phrase).
func (ix *docIndex) lineContains(li int, pw []string) bool {
	if len(pw) == 0 || li < 0 || li >= len(ix.lines) {
		return false
	}
	j := 0
	for _, w := range ix.lines[li] {
		if j < len(pw) && w == pw[j] {
			j++
		}
	}
	return j == len(pw)
}

// anywhere reports whether any line of the document contains pw. Candidate
// lines come from the shortest posting list among pw's tokens (a line that
// matches must contain every token), so large policies no longer pay a
// full-document scan per mention.
func (ix *docIndex) anywhere(pw []string) bool {
	if len(pw) == 0 {
		return false
	}
	var cand []int
	for i, w := range pw {
		post, ok := ix.byWord[w]
		if !ok {
			return false
		}
		if i == 0 || len(post) < len(cand) {
			cand = post
		}
	}
	for _, li := range cand {
		if ix.lineContains(li, pw) {
			return true
		}
	}
	return false
}
