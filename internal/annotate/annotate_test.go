package annotate

import (
	"context"
	"strings"
	"testing"

	"aipan/internal/chatbot"
	"aipan/internal/segment"
	"aipan/internal/taxonomy"
	"aipan/internal/textify"
)

const policyHTML = `<html><body>
<h1>ACME Privacy Policy</h1>
<p>Welcome to ACME. This policy describes our practices.</p>
<h2>Information We Collect</h2>
<p>We collect your email address, mailing address and phone number.</p>
<p>We also collect browsing history, cookies, and your IP address.</p>
<p>We do not collect biometric data.</p>
<h2>How We Use Your Information</h2>
<p>We use data for fraud prevention, analytics, and to personalize your experience.</p>
<p>We may send you marketing communications about our products.</p>
<h2>Data Retention and Security</h2>
<p>We retain your personal information for 2 years after account closure.</p>
<p>Access to personal data is restricted to employees on a need-to-know basis.</p>
<p>We use appropriate technical and organizational measures to protect your personal data.</p>
<h2>Your Rights and Choices</h2>
<p>You may opt out at any time by clicking the unsubscribe link at the bottom of our emails.</p>
<p>You may request that we correct or update your personal information.</p>
<p>You may request that we delete all of your personal information from our servers.</p>
<h2>Contact Us</h2>
<p>Email privacy@acme.example with questions.</p>
</body></html>`

func annotated(t *testing.T, html string, opts ...Option) (*Result, *textify.Document) {
	t.Helper()
	ctx := context.Background()
	bot := chatbot.NewSim(chatbot.GPT4Profile())
	doc := textify.RenderHTML(html)
	seg, err := segment.Segment(ctx, bot, doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(bot, opts...).Annotate(ctx, doc, seg)
	if err != nil {
		t.Fatal(err)
	}
	return res, doc
}

func find(anns []Annotation, aspect, category, descriptor string) *Annotation {
	for i := range anns {
		a := &anns[i]
		if a.Aspect == aspect && a.Category == category &&
			(descriptor == "" || a.Descriptor == descriptor) {
			return a
		}
	}
	return nil
}

func TestAnnotateFullPolicy(t *testing.T) {
	res, _ := annotated(t, policyHTML)
	anns := Dedup(res.Annotations)

	// Types.
	for _, want := range []struct{ cat, desc string }{
		{"Contact info", "email address"},
		{"Contact info", "postal address"}, // normalized from "mailing address"
		{"Contact info", "phone number"},
		{"Internet usage", "browsing history"},
		{"Tracking data", "cookies"},
		{"Online identifier", "ip address"},
	} {
		if find(anns, "types", want.cat, want.desc) == nil {
			t.Errorf("missing type annotation %s/%s", want.cat, want.desc)
		}
	}
	// Negated mention must not be annotated.
	if a := find(anns, "types", "Biometric data", ""); a != nil {
		t.Errorf("negated biometric mention annotated: %+v", a)
	}

	// Purposes.
	for _, cat := range []string{"Security", "Analytics & research", "User experience", "Advertising & sales"} {
		if find(anns, "purposes", cat, "") == nil {
			t.Errorf("missing purpose category %s", cat)
		}
	}

	// Handling.
	stated := find(anns, "handling", taxonomy.RetentionStated, "")
	if stated == nil {
		t.Fatal("missing Stated retention")
	}
	if stated.RetentionDays != 730 {
		t.Errorf("retention days = %d, want 730", stated.RetentionDays)
	}
	if find(anns, "handling", taxonomy.ProtectionAccess, "") == nil {
		t.Error("missing Access limit")
	}
	if find(anns, "handling", taxonomy.ProtectionGeneric, "") == nil {
		t.Error("missing Generic protection")
	}

	// Rights.
	for _, label := range []string{taxonomy.ChoiceOptOutLink, taxonomy.AccessEdit, taxonomy.AccessFullDelete} {
		if find(anns, "rights", label, "") == nil {
			t.Errorf("missing rights label %s", label)
		}
	}
}

func TestAnnotationContextAndLine(t *testing.T) {
	res, doc := annotated(t, policyHTML)
	for _, a := range res.Annotations {
		line, ok := doc.LineByNumber(a.Line)
		if !ok {
			t.Errorf("annotation %q references missing line %d", a.Text, a.Line)
			continue
		}
		if a.Context == "" {
			t.Errorf("annotation %q has no context", a.Text)
		}
		if !strings.Contains(line.Text, a.Text) {
			// Discontinuous extraction is allowed; words must be present.
			low := strings.ToLower(line.Text)
			for _, w := range strings.Fields(strings.ToLower(a.Text)) {
				if !strings.Contains(low, strings.TrimSuffix(w, "s")) {
					t.Errorf("annotation text %q not on line %d: %q", a.Text, a.Line, line.Text)
					break
				}
			}
		}
	}
}

func TestDedupEliminatesRepetition(t *testing.T) {
	anns := []Annotation{
		{Aspect: "types", Meta: "Physical profile", Category: "Contact info", Descriptor: "email address", Text: "email address"},
		{Aspect: "types", Meta: "Physical profile", Category: "Contact info", Descriptor: "email address", Text: "e-mail address"},
		{Aspect: "types", Meta: "Physical profile", Category: "Contact info", Descriptor: "phone number", Text: "phone number"},
	}
	got := Dedup(anns)
	if len(got) != 2 {
		t.Errorf("dedup kept %d, want 2", len(got))
	}
}

func TestMergeAcrossPages(t *testing.T) {
	p1 := []Annotation{{Aspect: "types", Meta: "m", Category: "c", Descriptor: "email address"}}
	p2 := []Annotation{
		{Aspect: "types", Meta: "m", Category: "c", Descriptor: "email address"},
		{Aspect: "types", Meta: "m", Category: "c", Descriptor: "phone number"},
	}
	got := Merge(p1, p2)
	if len(got) != 2 {
		t.Errorf("merged %d, want 2", len(got))
	}
}

const shortPolicyHTML = `<html><body><p>
We collect your email address and use it for customer service.
We keep data as long as necessary. Contact us to opt out.
</p></body></html>`

func TestFallbackShortPolicy(t *testing.T) {
	res, _ := annotated(t, shortPolicyHTML)
	anns := Dedup(res.Annotations)
	if find(anns, "types", "Contact info", "email address") == nil {
		t.Error("missing email address from short policy")
	}
	if find(anns, "handling", taxonomy.RetentionLimited, "") == nil {
		t.Error("missing Limited retention from short policy")
	}
}

// hallucinatingBot wraps the sim and injects a fabricated extraction.
type hallucinatingBot struct {
	inner chatbot.Chatbot
}

func (h *hallucinatingBot) Name() string { return "hallucinating" }

func (h *hallucinatingBot) Complete(ctx context.Context, req chatbot.Request) (chatbot.Response, error) {
	resp, err := h.inner.Complete(ctx, req)
	if err != nil {
		return resp, err
	}
	if req.Task == chatbot.TaskExtractTypes {
		es, perr := chatbot.ParseExtractions(resp.Content)
		if perr == nil {
			es = append(es, chatbot.Extraction{Line: 1, Text: "quantum soul resonance data"})
			resp.Content = chatbot.EncodeExtractions(es)
		}
	}
	return resp, nil
}

func TestHallucinationFilter(t *testing.T) {
	ctx := context.Background()
	bot := &hallucinatingBot{inner: chatbot.NewSim(chatbot.GPT4Profile())}
	doc := textify.RenderHTML(policyHTML)
	seg, err := segment.Segment(ctx, chatbot.NewSim(chatbot.GPT4Profile()), doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(bot).Annotate(ctx, doc, seg)
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range res.Annotations {
		if strings.Contains(a.Text, "quantum soul") {
			t.Errorf("hallucinated mention survived the filter: %+v", a)
		}
	}
	if res.Dropped == 0 {
		t.Error("hallucination filter should report dropped mentions")
	}

	// With the filter disabled, the fabricated mention may slip through to
	// normalization (and is then dropped only if unplaceable) — verify the
	// Dropped counter stays lower.
	res2, err := New(bot, WithHallucinationFilter(false)).Annotate(ctx, doc, seg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Dropped >= res.Dropped {
		t.Errorf("filter off should drop fewer: %d vs %d", res2.Dropped, res.Dropped)
	}
}

func TestRetentionStatedWording(t *testing.T) {
	html := `<html><body><h2>Data Retention</h2><h2>Security</h2><h2>Types</h2><h2>Use</h2><h2>Rights</h2><h2>Contact</h2>
<p>x</p></body></html>`
	_ = html // the interesting case is the six-year wording below
	res, _ := annotated(t, `<html><body><p>We retain your personal information for the period you are actively using our services plus six (6) years.</p></body></html>`)
	anns := Dedup(res.Annotations)
	stated := find(anns, "handling", taxonomy.RetentionStated, "")
	if stated == nil {
		t.Fatal("missing stated retention")
	}
	if stated.RetentionDays != 6*365 {
		t.Errorf("days = %d, want %d", stated.RetentionDays, 6*365)
	}
	if !strings.Contains(stated.Text, "six (6) years") {
		t.Errorf("verbatim wording = %q", stated.Text)
	}
}

func TestNovelDescriptorFlagged(t *testing.T) {
	res, _ := annotated(t, `<html><body><p>We collect pet insurance enrollment records when you register.</p></body></html>`)
	found := false
	for _, a := range res.Annotations {
		if a.Novel {
			found = true
			if a.Category == "" {
				t.Errorf("novel annotation without category: %+v", a)
			}
		}
	}
	if !found {
		t.Error("no novel (zero-shot) annotation produced")
	}
}

func BenchmarkAnnotatePolicy(b *testing.B) {
	ctx := context.Background()
	bot := chatbot.NewSim(chatbot.GPT4Profile())
	doc := textify.RenderHTML(policyHTML)
	sg, err := segment.Segment(ctx, bot, doc)
	if err != nil {
		b.Fatal(err)
	}
	an := New(bot)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := an.Annotate(ctx, doc, sg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIndefiniteRetentionAnonymizedScope(t *testing.T) {
	res, _ := annotated(t, `<html><body><p>Aggregated information may be kept indefinitely.</p></body></html>`)
	anns := Dedup(res.Annotations)
	indef := find(anns, "handling", taxonomy.RetentionIndefinitely, "")
	if indef == nil {
		t.Fatal("missing Indefinitely annotation")
	}
	if indef.Scope != ScopeAnonymized {
		t.Errorf("scope = %q, want %q (§6 refinement)", indef.Scope, ScopeAnonymized)
	}

	res2, _ := annotated(t, `<html><body><p>Customer profiles are retained indefinitely on our servers.</p></body></html>`)
	anns2 := Dedup(res2.Annotations)
	indef2 := find(anns2, "handling", taxonomy.RetentionIndefinitely, "")
	if indef2 == nil {
		t.Fatal("missing second Indefinitely annotation")
	}
	if indef2.Scope != "" {
		t.Errorf("PII retention wrongly scoped as %q", indef2.Scope)
	}
}
