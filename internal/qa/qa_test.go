package qa

import (
	"strings"
	"testing"

	"aipan/internal/annotate"
	"aipan/internal/taxonomy"
)

func anns() []annotate.Annotation {
	return []annotate.Annotation{
		{Aspect: "types", Meta: taxonomy.MetaPhysicalBehavior, Category: "Precise location", Descriptor: "gps location", Text: "gps location", Context: "We collect gps location when enabled."},
		{Aspect: "types", Meta: taxonomy.MetaPhysicalProfile, Category: "Contact info", Descriptor: "email address", Text: "email address", Context: "We collect your email address."},
		{Aspect: "purposes", Meta: taxonomy.MetaThirdParty, Category: "Data sharing", Descriptor: "data for sale", Text: "sell your personal information", Context: "We may sell your personal information to partners."},
		{Aspect: "handling", Meta: taxonomy.GroupRetention, Category: taxonomy.RetentionStated, Descriptor: "six (6) years", Text: "six (6) years", RetentionDays: 2190, Context: "We retain data for six (6) years."},
		{Aspect: "handling", Meta: taxonomy.GroupProtection, Category: taxonomy.ProtectionTransfer, Text: "ssl", Context: "We use SSL encryption."},
		{Aspect: "rights", Meta: taxonomy.GroupChoices, Category: taxonomy.ChoiceOptOutLink, Text: "unsubscribe link", Context: "Opt out via the unsubscribe link."},
		{Aspect: "rights", Meta: taxonomy.GroupAccess, Category: taxonomy.AccessFullDelete, Text: "delete all", Context: "You may request that we delete all of your data."},
	}
}

func ask(t *testing.T, q string) Answer {
	t.Helper()
	a, ok := Ask(q, anns())
	if !ok {
		t.Fatalf("no intent matched %q", q)
	}
	return a
}

func TestSellQuestion(t *testing.T) {
	a := ask(t, "Do they sell my data?")
	if !a.Confident || !strings.Contains(a.Text, "selling") && !strings.Contains(a.Text, "Yes") {
		t.Errorf("answer: %+v", a)
	}
	if len(a.Evidence) == 0 {
		t.Error("no evidence cited")
	}
}

func TestSellQuestionWithoutSale(t *testing.T) {
	noSale := []annotate.Annotation{
		{Aspect: "purposes", Meta: taxonomy.MetaOperations, Category: "Basic functioning", Descriptor: "cust. service"},
	}
	a, ok := Ask("is my data sold?", noSale)
	if !ok {
		t.Fatal("intent should match")
	}
	if a.Confident {
		t.Errorf("absence of mention should not be confident: %+v", a)
	}
}

func TestDeleteQuestion(t *testing.T) {
	a := ask(t, "Can I delete my account?")
	if !strings.Contains(a.Text, "full deletion") {
		t.Errorf("answer: %q", a.Text)
	}
}

func TestRetentionQuestion(t *testing.T) {
	a := ask(t, "How long do you keep my data?")
	if !strings.Contains(a.Text, "six (6) years") {
		t.Errorf("answer: %q", a.Text)
	}
}

func TestRetentionAnonymizedAnswer(t *testing.T) {
	a, ok := Ask("how long is data retained?", []annotate.Annotation{
		{Aspect: "handling", Meta: taxonomy.GroupRetention, Category: taxonomy.RetentionIndefinitely,
			Scope: annotate.ScopeAnonymized, Context: "Aggregated data kept indefinitely."},
	})
	if !ok || !strings.Contains(a.Text, "anonymized") {
		t.Errorf("answer: %+v (ok=%v)", a, ok)
	}
}

func TestOptOutQuestion(t *testing.T) {
	a := ask(t, "Can I opt out of marketing?")
	if !strings.Contains(a.Text, taxonomy.ChoiceOptOutLink) {
		t.Errorf("answer: %q", a.Text)
	}
}

func TestLocationQuestion(t *testing.T) {
	a := ask(t, "Do you track my location?")
	if !strings.Contains(a.Text, "gps location") {
		t.Errorf("answer: %q", a.Text)
	}
}

func TestHealthQuestionNegative(t *testing.T) {
	a := ask(t, "Do you collect health data?")
	if a.Confident {
		t.Errorf("no health annotations; answer should be unconfident: %+v", a)
	}
}

func TestSecurityQuestion(t *testing.T) {
	a := ask(t, "Is my data encrypted?")
	if !strings.Contains(a.Text, taxonomy.ProtectionTransfer) {
		t.Errorf("answer: %q", a.Text)
	}
}

func TestCollectQuestion(t *testing.T) {
	a := ask(t, "What data do you collect about me?")
	if !strings.Contains(a.Text, "Contact info") || !strings.Contains(a.Text, "email address") {
		t.Errorf("answer: %q", a.Text)
	}
}

func TestUnknownQuestion(t *testing.T) {
	if _, ok := Ask("what is the meaning of life?", anns()); ok {
		t.Error("nonsense question should not match an intent")
	}
}

func TestIntentsListed(t *testing.T) {
	if len(Intents()) < 6 {
		t.Errorf("intents = %v", Intents())
	}
}
