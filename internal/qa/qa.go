// Package qa answers common privacy questions from a policy's structured
// annotations — the question-answering use the paper's related work
// targets (PrivacyQA, Ravichander et al.), rebuilt on top of normalized
// annotations instead of raw text: the answer cites the verbatim policy
// evidence the annotation carries.
package qa

import (
	"fmt"
	"sort"
	"strings"

	"aipan/internal/annotate"
	"aipan/internal/nlp"
	"aipan/internal/taxonomy"
)

// Answer is a grounded response to a privacy question.
type Answer struct {
	// Text is the natural-language answer.
	Text string
	// Evidence lists the verbatim policy fragments supporting it.
	Evidence []string
	// Confident is false when the annotations simply don't speak to the
	// question (absence of a mention is not proof of absence).
	Confident bool
}

// intent is one supported question family.
type intent struct {
	name     string
	keywords [][]string // any of these keyword groups triggers the intent
	answer   func(anns []annotate.Annotation) Answer
}

// intents are matched in order; first hit wins.
var intents = []intent{
	{
		name: "sell",
		keywords: [][]string{
			{"sell"}, {"sold"}, {"sale"},
		},
		answer: answerSell,
	},
	{
		name: "delete",
		keywords: [][]string{
			{"delete"}, {"erase"}, {"remove", "data"}, {"deletion"},
		},
		answer: answerDelete,
	},
	{
		name: "retention",
		keywords: [][]string{
			{"how", "long"}, {"retain"}, {"retention"}, {"keep", "data"},
			{"store", "long"},
		},
		answer: answerRetention,
	},
	{
		name: "optout",
		keywords: [][]string{
			{"opt"}, {"unsubscribe"}, {"stop", "marketing"}, {"marketing", "emails"},
		},
		answer: answerOptOut,
	},
	{
		name: "location",
		keywords: [][]string{
			{"location"}, {"track", "where"}, {"gps"},
		},
		answer: answerCategory("Precise location", "Approximate location"),
	},
	{
		name: "health",
		keywords: [][]string{
			{"health"}, {"medical"}, {"biometric"},
		},
		answer: answerCategory("Medical info", "Biometric data", "Fitness & health"),
	},
	{
		name: "collect",
		keywords: [][]string{
			{"what", "collect"}, {"which", "data"}, {"what", "data"},
			{"what", "information"}, {"collect"},
		},
		answer: answerCollect,
	},
	{
		name: "security",
		keywords: [][]string{
			{"secure"}, {"security"}, {"protect"}, {"encrypted"}, {"encryption"},
		},
		answer: answerSecurity,
	},
}

// Ask answers a free-form question from the annotations. ok=false means
// no supported intent matched the question.
func Ask(question string, anns []annotate.Annotation) (Answer, bool) {
	words := map[string]bool{}
	for _, w := range nlp.Words(question) {
		words[nlp.Singular(w)] = true
	}
	for _, in := range intents {
		for _, group := range in.keywords {
			all := true
			for _, k := range group {
				if !words[nlp.Singular(k)] {
					all = false
					break
				}
			}
			if all {
				return in.answer(anns), true
			}
		}
	}
	return Answer{}, false
}

// Intents lists the supported question families (for --help output).
func Intents() []string {
	out := make([]string, len(intents))
	for i, in := range intents {
		out[i] = in.name
	}
	return out
}

// ----------------------------------------------------------- answerers

func collectEvidence(anns []annotate.Annotation, match func(annotate.Annotation) bool, cap int) []string {
	var ev []string
	seen := map[string]bool{}
	for _, a := range anns {
		if !match(a) || a.Context == "" || seen[a.Context] {
			continue
		}
		seen[a.Context] = true
		ev = append(ev, a.Context)
		if len(ev) >= cap {
			break
		}
	}
	return ev
}

func answerSell(anns []annotate.Annotation) Answer {
	for _, a := range anns {
		if a.Aspect == "purposes" && a.Descriptor == "data for sale" {
			return Answer{
				Text:      "Yes — the policy explicitly allows selling personal information to third parties.",
				Evidence:  []string{a.Context},
				Confident: true,
			}
		}
	}
	shared := collectEvidence(anns, func(a annotate.Annotation) bool {
		return a.Aspect == "purposes" && a.Category == "Data sharing"
	}, 2)
	if len(shared) > 0 {
		return Answer{
			Text:      "The policy does not mention selling data, but it does describe sharing with third parties.",
			Evidence:  shared,
			Confident: true,
		}
	}
	return Answer{
		Text:      "The policy does not mention selling or sharing data with third parties.",
		Confident: false,
	}
}

func answerDelete(anns []annotate.Annotation) Answer {
	labels := map[string]annotate.Annotation{}
	for _, a := range anns {
		if a.Aspect == "rights" && a.Meta == taxonomy.GroupAccess {
			labels[a.Category] = a
		}
	}
	if a, ok := labels[taxonomy.AccessFullDelete]; ok {
		return Answer{
			Text:      "Yes — you can request full deletion of your data.",
			Evidence:  []string{a.Context},
			Confident: true,
		}
	}
	if a, ok := labels[taxonomy.AccessPartialDelete]; ok {
		return Answer{
			Text:      "Partially — you can delete some data, but the company may retain the rest.",
			Evidence:  []string{a.Context},
			Confident: true,
		}
	}
	if a, ok := labels[taxonomy.AccessDeactivate]; ok {
		return Answer{
			Text:      "Only deactivation is offered; the company retains your data.",
			Evidence:  []string{a.Context},
			Confident: true,
		}
	}
	return Answer{Text: "The policy does not state a deletion right.", Confident: false}
}

func answerRetention(anns []annotate.Annotation) Answer {
	for _, a := range anns {
		if a.Aspect == "handling" && a.Category == taxonomy.RetentionStated && a.Descriptor != "" {
			return Answer{
				Text:      fmt.Sprintf("Data is retained for %s.", a.Descriptor),
				Evidence:  []string{a.Context},
				Confident: true,
			}
		}
	}
	for _, a := range anns {
		if a.Aspect == "handling" && a.Category == taxonomy.RetentionIndefinitely {
			text := "Some data may be retained indefinitely."
			if a.Scope == annotate.ScopeAnonymized {
				text = "Only anonymized/aggregated data is retained indefinitely."
			}
			return Answer{Text: text, Evidence: []string{a.Context}, Confident: true}
		}
	}
	for _, a := range anns {
		if a.Aspect == "handling" && a.Category == taxonomy.RetentionLimited {
			return Answer{
				Text:      "Retention is described as limited, but no specific period is stated.",
				Evidence:  []string{a.Context},
				Confident: true,
			}
		}
	}
	return Answer{Text: "The policy does not state a retention period.", Confident: false}
}

func answerOptOut(anns []annotate.Annotation) Answer {
	var mechanisms []string
	var ev []string
	for _, a := range anns {
		if a.Aspect == "rights" && a.Meta == taxonomy.GroupChoices {
			mechanisms = append(mechanisms, a.Category)
			if a.Context != "" && len(ev) < 3 {
				ev = append(ev, a.Context)
			}
		}
	}
	if len(mechanisms) == 0 {
		return Answer{Text: "The policy does not describe opt-out choices.", Confident: false}
	}
	sort.Strings(mechanisms)
	return Answer{
		Text:      "Yes — available choices: " + strings.Join(dedupStrings(mechanisms), ", ") + ".",
		Evidence:  ev,
		Confident: true,
	}
}

func answerCategory(categories ...string) func([]annotate.Annotation) Answer {
	return func(anns []annotate.Annotation) Answer {
		want := map[string]bool{}
		for _, c := range categories {
			want[c] = true
		}
		var found []string
		ev := collectEvidence(anns, func(a annotate.Annotation) bool {
			if a.Aspect == "types" && want[a.Category] {
				found = append(found, a.Descriptor)
				return true
			}
			return false
		}, 3)
		if len(found) == 0 {
			return Answer{
				Text:      fmt.Sprintf("The policy does not mention collecting %s.", strings.ToLower(strings.Join(categories, " / "))),
				Confident: false,
			}
		}
		return Answer{
			Text:      "Yes — the policy mentions collecting: " + strings.Join(dedupStrings(found), ", ") + ".",
			Evidence:  ev,
			Confident: true,
		}
	}
}

func answerCollect(anns []annotate.Annotation) Answer {
	byCat := map[string][]string{}
	for _, a := range anns {
		if a.Aspect == "types" {
			byCat[a.Category] = append(byCat[a.Category], a.Descriptor)
		}
	}
	if len(byCat) == 0 {
		return Answer{Text: "The policy does not enumerate collected data types.", Confident: false}
	}
	var cats []string
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)
	var parts []string
	for _, c := range cats {
		parts = append(parts, fmt.Sprintf("%s (%s)", c, strings.Join(dedupStrings(byCat[c]), ", ")))
	}
	return Answer{
		Text:      "Collected data: " + strings.Join(parts, "; ") + ".",
		Confident: true,
	}
}

func answerSecurity(anns []annotate.Annotation) Answer {
	var specific []string
	ev := collectEvidence(anns, func(a annotate.Annotation) bool {
		if a.Aspect == "handling" && a.Meta == taxonomy.GroupProtection && a.Category != taxonomy.ProtectionGeneric {
			specific = append(specific, a.Category)
			return true
		}
		return false
	}, 3)
	if len(specific) > 0 {
		return Answer{
			Text:      "Specific protections stated: " + strings.Join(dedupStrings(specific), ", ") + ".",
			Evidence:  ev,
			Confident: true,
		}
	}
	generic := collectEvidence(anns, func(a annotate.Annotation) bool {
		return a.Aspect == "handling" && a.Category == taxonomy.ProtectionGeneric
	}, 1)
	if len(generic) > 0 {
		return Answer{
			Text:      "Only a generic security statement is made; no specific measures are described.",
			Evidence:  generic,
			Confident: true,
		}
	}
	return Answer{Text: "The policy does not describe data protection measures.", Confident: false}
}

func dedupStrings(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return out
}
