package segment

import (
	"context"
	"strings"
	"testing"

	"aipan/internal/chatbot"
	"aipan/internal/taxonomy"
	"aipan/internal/textify"
)

const policyHTML = `<html><body>
<h1>ACME Privacy Policy</h1>
<p>This policy explains how ACME handles your data.</p>
<h2>Information We Collect</h2>
<p>We collect your email address, postal address and phone number.</p>
<p>We also collect browsing history and cookies.</p>
<h2>How We Use Your Information</h2>
<p>We use data for fraud prevention and analytics.</p>
<h2>Data Retention and Security</h2>
<p>We retain data for 2 years and use SSL encryption technology for payment transactions.</p>
<h2>Your Rights and Choices</h2>
<p>You may opt out by clicking the unsubscribe link in our emails.</p>
<h2>Children's Privacy</h2>
<p>Our services are not directed to children under 13.</p>
<h2>Changes to this Policy</h2>
<p>We may update this policy from time to time.</p>
<h2>Contact Us</h2>
<p>Email privacy@acme.example.</p>
</body></html>`

func seg(t *testing.T, html string) *Result {
	t.Helper()
	doc := textify.RenderHTML(html)
	bot := chatbot.NewSim(chatbot.GPT4Profile())
	res, err := Segment(context.Background(), bot, doc)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSegmentByHeadings(t *testing.T) {
	res := seg(t, policyHTML)
	if res.UsedFallback {
		t.Fatal("should use heading-based segmentation (8 headings > 5)")
	}
	if !res.Success() {
		t.Fatal("segmentation should succeed")
	}
	checkSection := func(a taxonomy.Aspect, substr string) {
		t.Helper()
		text := res.NumberedText(a)
		if !strings.Contains(text, substr) {
			t.Errorf("aspect %s missing %q; got:\n%s", a, substr, text)
		}
	}
	checkSection(taxonomy.AspectTypes, "email address")
	checkSection(taxonomy.AspectPurposes, "fraud prevention")
	checkSection(taxonomy.AspectHandling, "SSL encryption")
	checkSection(taxonomy.AspectRights, "unsubscribe link")
	checkSection(taxonomy.AspectAudiences, "children")
	checkSection(taxonomy.AspectChanges, "update this policy")

	// The types section must NOT contain the rights text.
	if strings.Contains(res.NumberedText(taxonomy.AspectTypes), "unsubscribe") {
		t.Error("section bleed: rights text in types section")
	}
}

func TestSegmentPreservesLineNumbers(t *testing.T) {
	doc := textify.RenderHTML(policyHTML)
	res := seg(t, policyHTML)
	for _, lines := range res.Sections {
		for _, l := range lines {
			orig, ok := doc.LineByNumber(l.Number)
			if !ok || orig.Text != l.Text {
				t.Errorf("line %d does not match source: %q vs %q", l.Number, l.Text, orig.Text)
			}
		}
	}
}

const shortPolicyHTML = `<html><body>
<p>ACME values your privacy. We collect your email address and device identifiers.
We use this data to provide our services and prevent fraud.
We retain data only as long as necessary.
You may opt out by contacting us at privacy@acme.example.</p>
</body></html>`

func TestSegmentFallbackForShortPolicy(t *testing.T) {
	res := seg(t, shortPolicyHTML)
	if !res.UsedFallback {
		t.Fatal("short policy (no headings) must use the text-analysis fallback")
	}
	if !res.Success() {
		t.Fatal("fallback segmentation should succeed")
	}
	if !strings.Contains(res.NumberedText(taxonomy.AspectTypes), "email address") {
		t.Errorf("types section: %q", res.NumberedText(taxonomy.AspectTypes))
	}
	if !strings.Contains(res.NumberedText(taxonomy.AspectRights), "opt out") {
		t.Errorf("rights section: %q", res.NumberedText(taxonomy.AspectRights))
	}
}

const boldHeadingHTML = `<html><body>
<div><b>Privacy Policy</b></div>
<p>Intro text about the company and its practices in general.</p>
<div><b>What We Collect</b></div>
<p>We collect your name and email address.</p>
<div><b>How We Use Data</b></div>
<p>We use data for analytics.</p>
<div><b>Data Security</b></div>
<p>We protect your information with appropriate safeguards.</p>
<div><b>Your Choices</b></div>
<p>You can opt out with your consent settings.</p>
<div><b>Contact</b></div>
<p>Reach us at privacy@x.example.</p>
</body></html>`

func TestSegmentBoldHeadings(t *testing.T) {
	doc := textify.RenderHTML(boldHeadingHTML)
	hs := DetectHeadings(doc)
	if len(hs) != 6 {
		t.Fatalf("detected %d bold headings, want 6", len(hs))
	}
	res := seg(t, boldHeadingHTML)
	if res.UsedFallback {
		t.Error("bold-heading policy should use heading segmentation")
	}
	if !strings.Contains(res.NumberedText(taxonomy.AspectTypes), "name and email") {
		t.Errorf("types: %q", res.NumberedText(taxonomy.AspectTypes))
	}
}

func TestDetectHeadingHierarchy(t *testing.T) {
	html := `<h1>Top</h1><h2>Sub A</h2><h3>Deep</h3><h2>Sub B</h2><div><b>Bold leaf</b></div>`
	doc := textify.RenderHTML(html)
	hs := DetectHeadings(doc)
	wantDepths := []int{0, 1, 2, 1, 2}
	if len(hs) != len(wantDepths) {
		t.Fatalf("got %d headings", len(hs))
	}
	for i, h := range hs {
		if h.Depth != wantDepths[i] {
			t.Errorf("heading %q depth = %d, want %d", h.Line.Text, h.Depth, wantDepths[i])
		}
	}
}

func TestSegmentEmptyDoc(t *testing.T) {
	res := seg(t, "")
	if res.Success() {
		t.Error("empty doc should not be a successful extraction")
	}
	if res.CoreWordCount() != 0 {
		t.Error("empty doc word count")
	}
}

func TestCoreWordCountExcludesBoilerplate(t *testing.T) {
	res := seg(t, policyHTML)
	full := textify.RenderHTML(policyHTML).WordCount()
	core := res.CoreWordCount()
	if core <= 0 || core >= full {
		t.Errorf("core word count %d should be positive and below full %d", core, full)
	}
}

func TestSuccessRequiresCoreAspect(t *testing.T) {
	r := &Result{Sections: map[taxonomy.Aspect][]textify.Line{
		taxonomy.AspectOther:     {{Number: 1, Text: "hello"}},
		taxonomy.AspectChanges:   {{Number: 2, Text: "changes"}},
		taxonomy.AspectAudiences: {{Number: 3, Text: "california"}},
	}}
	if r.Success() {
		t.Error("boilerplate-only result must not count as success")
	}
	r.Sections[taxonomy.AspectTypes] = []textify.Line{{Number: 4, Text: "email"}}
	if !r.Success() {
		t.Error("types section should make it a success")
	}
}

// BenchmarkSegment is the hot-path microbenchmark referenced in
// CHANGES.md: heading detection plus the full chatbot-driven aspect
// segmentation over a rendered policy document.
func BenchmarkSegment(b *testing.B) {
	doc := textify.RenderHTML(policyHTML)
	bot := chatbot.NewSim(chatbot.GPT4Profile())
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Segment(ctx, bot, doc); err != nil {
			b.Fatal(err)
		}
	}
}
