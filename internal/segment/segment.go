// Package segment implements the paper's two-step segmentation of privacy
// policies (§3.2.1, Appendix B): (1) detect headings (<h1>..<h6> plus
// standalone bold lines), build a table of contents, and have the chatbot
// label each heading with the nine aspects, assigning every body line to
// the first heading preceding it; (2) if that fails to surface any core
// aspect, fall back to having the chatbot label the entire text line by
// line.
package segment

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"aipan/internal/chatbot"
	"aipan/internal/taxonomy"
	"aipan/internal/textify"
)

// minHeadings is the Appendix B threshold: heading-based segmentation only
// runs when a page contains more than five headings.
const minHeadings = 5

// Heading is one table-of-contents entry.
type Heading struct {
	// Line is the heading's rendered line (with its original number).
	Line textify.Line
	// Depth is the 0-based indentation depth in the section hierarchy.
	Depth int
}

// Result is a segmented document.
type Result struct {
	// Sections maps each aspect to the body lines assigned to it, in
	// document order, keeping original line numbers.
	Sections map[taxonomy.Aspect][]textify.Line
	// Headings is the table of contents (empty when the fallback ran).
	Headings []Heading
	// UsedFallback reports that step 2 (full-text analysis) produced the
	// result.
	UsedFallback bool
}

// Success reports a successful extraction per §3.2.1: text was found for
// at least one aspect other than audiences, changes, or other.
func (r *Result) Success() bool {
	for a, lines := range r.Sections {
		switch a {
		case taxonomy.AspectAudiences, taxonomy.AspectChanges, taxonomy.AspectOther:
			continue
		}
		if len(lines) > 0 {
			return true
		}
	}
	return false
}

// CoreWordCount counts words across all aspects except audiences, changes
// and other (the paper's policy-length metric; median 2,671 words).
func (r *Result) CoreWordCount() int {
	seen := map[int]bool{}
	n := 0
	for a, lines := range r.Sections {
		switch a {
		case taxonomy.AspectAudiences, taxonomy.AspectChanges, taxonomy.AspectOther:
			continue
		}
		for _, l := range lines {
			if !seen[l.Number] {
				seen[l.Number] = true
				n += textify.CountFields(l.Text)
			}
		}
	}
	return n
}

// LineCount counts distinct body lines assigned to any section — the
// flight recorder's clause count.
func (r *Result) LineCount() int {
	seen := map[int]bool{}
	for _, lines := range r.Sections {
		for _, l := range lines {
			seen[l.Number] = true
		}
	}
	return len(seen)
}

// SectionCount counts aspects that received at least one line.
func (r *Result) SectionCount() int {
	n := 0
	for _, lines := range r.Sections {
		if len(lines) > 0 {
			n++
		}
	}
	return n
}

// NumberedText renders an aspect's section in the "[n] text" prompt
// format, preserving original line numbers so downstream annotations refer
// back to the source document.
func (r *Result) NumberedText(a taxonomy.Aspect) string {
	lines := r.Sections[a]
	size := 0
	for _, l := range lines {
		size += len(l.Text) + 12
	}
	buf := make([]byte, 0, size)
	for _, l := range lines {
		buf = textify.AppendNumbered(buf, l.Number, l.Text)
	}
	return string(buf)
}

// DetectHeadings extracts the table of contents from a rendered document,
// recognizing the hierarchy implied by heading levels (<h1>..<h6> followed
// by bold text, Appendix B).
func DetectHeadings(doc *textify.Document) []Heading {
	var hs []Heading
	var levelStack []int
	for _, l := range doc.Lines {
		if !l.IsHeading() {
			continue
		}
		lvl := l.EffectiveLevel()
		// Depth = number of strictly smaller levels on the stack.
		for len(levelStack) > 0 && levelStack[len(levelStack)-1] >= lvl {
			levelStack = levelStack[:len(levelStack)-1]
		}
		depth := len(levelStack)
		levelStack = append(levelStack, lvl)
		hs = append(hs, Heading{Line: l, Depth: depth})
	}
	return hs
}

// tocText renders the numbered, indented table of contents for the
// heading-labeling prompt.
func tocText(hs []Heading) string {
	var buf []byte
	for _, h := range hs {
		buf = append(buf, '[')
		buf = fmt.Appendf(buf, "%d", h.Line.Number)
		buf = append(buf, ']', ' ')
		for i := 0; i < h.Depth; i++ {
			buf = append(buf, ' ', ' ')
		}
		buf = append(buf, h.Line.Text...)
		buf = append(buf, '\n')
	}
	return string(buf)
}

// Segment runs the two-step cascade over a rendered page.
func Segment(ctx context.Context, bot chatbot.Chatbot, doc *textify.Document) (*Result, error) {
	if len(doc.Lines) == 0 {
		return &Result{Sections: map[taxonomy.Aspect][]textify.Line{}}, nil
	}
	hs := DetectHeadings(doc)
	if len(hs) > minHeadings {
		res, err := segmentByHeadings(ctx, bot, doc, hs)
		if err != nil {
			return nil, err
		}
		if res.Success() {
			return res, nil
		}
	}
	return segmentByText(ctx, bot, doc)
}

// SegmentHeadingsOnly runs only Appendix B step 1 (heading-based
// segmentation, no fallback) — the ablation baseline. Documents with too
// few headings yield an empty, unsuccessful result.
func SegmentHeadingsOnly(ctx context.Context, bot chatbot.Chatbot, doc *textify.Document) (*Result, error) {
	hs := DetectHeadings(doc)
	if len(hs) <= minHeadings {
		return &Result{Sections: map[taxonomy.Aspect][]textify.Line{}, Headings: hs}, nil
	}
	return segmentByHeadings(ctx, bot, doc, hs)
}

// SegmentTextOnly runs only Appendix B step 2 (whole-text analysis) — the
// other ablation baseline.
func SegmentTextOnly(ctx context.Context, bot chatbot.Chatbot, doc *textify.Document) (*Result, error) {
	if len(doc.Lines) == 0 {
		return &Result{Sections: map[taxonomy.Aspect][]textify.Line{}}, nil
	}
	return segmentByText(ctx, bot, doc)
}

// segmentByHeadings is Appendix B step 1.
func segmentByHeadings(ctx context.Context, bot chatbot.Chatbot, doc *textify.Document, hs []Heading) (*Result, error) {
	req := chatbot.HeadingLabelsRequest(tocText(hs))
	resp, err := bot.Complete(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("segment: labeling headings: %w", err)
	}
	labels, err := chatbot.ParseLineLabels(resp.Content)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	aspectsOfHeading := map[int][]taxonomy.Aspect{}
	for _, ll := range labels {
		aspectsOfHeading[ll.Line] = toAspects(ll.Labels)
	}

	res := &Result{Sections: map[taxonomy.Aspect][]textify.Line{}, Headings: hs}
	// Assign each body line to the first heading preceding it.
	headingAt := map[int]bool{}
	for _, h := range hs {
		headingAt[h.Line.Number] = true
	}
	var current []taxonomy.Aspect
	for _, l := range doc.Lines {
		if headingAt[l.Number] {
			current = aspectsOfHeading[l.Number]
			continue
		}
		if len(current) == 0 {
			// Preamble before the first labeled heading.
			current = []taxonomy.Aspect{taxonomy.AspectOther}
		}
		for _, a := range current {
			res.Sections[a] = append(res.Sections[a], l)
		}
	}
	return res, nil
}

// segmentByText is Appendix B step 2: full-text analysis.
func segmentByText(ctx context.Context, bot chatbot.Chatbot, doc *textify.Document) (*Result, error) {
	req := chatbot.SegmentTextRequest(doc.NumberedText())
	resp, err := bot.Complete(ctx, req)
	if err != nil {
		return nil, fmt.Errorf("segment: full-text segmentation: %w", err)
	}
	labels, err := chatbot.ParseLineLabels(resp.Content)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	res := &Result{Sections: map[taxonomy.Aspect][]textify.Line{}, UsedFallback: true}
	for _, ll := range labels {
		line, ok := doc.LineByNumber(ll.Line)
		if !ok {
			continue // hallucinated line number: drop
		}
		for _, a := range toAspects(ll.Labels) {
			res.Sections[a] = append(res.Sections[a], line)
		}
	}
	return res, nil
}

// aspectSet memoizes the fixed aspect vocabulary for byte-wise lookup, so
// the per-line label path below avoids the old linear scan over Aspects().
var aspectSet = sync.OnceValue(func() map[string]taxonomy.Aspect {
	m := make(map[string]taxonomy.Aspect, len(taxonomy.Aspects()))
	for _, a := range taxonomy.Aspects() {
		m[string(a)] = a
	}
	return m
})

// toAspects converts label strings to known aspects, dropping junk labels
// a weaker model might emit. Labels arrive already trimmed and lowercase
// from well-behaved models, so the fast path allocates nothing; only
// mixed-case stragglers pay for a ToLower copy.
func toAspects(labels []string) []taxonomy.Aspect {
	var out []taxonomy.Aspect
	known := aspectSet()
	for _, l := range labels {
		t := strings.TrimSpace(l)
		a, ok := known[t]
		if !ok {
			a, ok = known[strings.ToLower(t)]
		}
		if ok {
			out = append(out, a)
		}
	}
	return out
}
