package langid

import "testing"

const enText = `We collect personal information that you provide to us, such as your
name, email address, and phone number. We use this information to provide and
improve our services, and we may share it with our partners as described in
this policy. You can opt out of marketing communications at any time.`

const deText = `Wir erheben personenbezogene Daten, die Sie uns zur Verfügung
stellen, wie zum Beispiel Ihren Namen und Ihre E-Mail-Adresse. Wir verwenden
diese Daten, um unsere Dienste bereitzustellen und zu verbessern. Sie können
der Verarbeitung Ihrer Daten jederzeit widersprechen.`

const frText = `Nous recueillons les informations personnelles que vous nous
fournissez, telles que votre nom et votre adresse électronique. Nous utilisons
ces données pour fournir et améliorer nos services. Vous pouvez vous opposer
au traitement de vos données à tout moment.`

const esText = `Recopilamos la información personal que usted nos proporciona,
como su nombre y su dirección de correo electrónico. Utilizamos estos datos
para proporcionar y mejorar nuestros servicios. Usted puede oponerse al
tratamiento de sus datos en cualquier momento.`

func TestDetect(t *testing.T) {
	cases := []struct {
		text string
		want Lang
	}{
		{enText, English},
		{deText, German},
		{frText, French},
		{esText, Spanish},
	}
	for _, c := range cases {
		got, score := Detect(c.text)
		if got != c.want {
			t.Errorf("Detect(...) = %v (score %.3f), want %v", got, score, c.want)
		}
	}
}

func TestIsEnglish(t *testing.T) {
	if !IsEnglish(enText) {
		t.Error("English text not detected")
	}
	if IsEnglish(deText) || IsEnglish(frText) || IsEnglish(esText) {
		t.Error("non-English text detected as English")
	}
}

func TestDetectShortText(t *testing.T) {
	if lang, _ := Detect("ok"); lang != Unknown {
		t.Errorf("short text = %v, want Unknown", lang)
	}
	if lang, _ := Detect(""); lang != Unknown {
		t.Errorf("empty = %v, want Unknown", lang)
	}
}

func TestDetectGibberish(t *testing.T) {
	if lang, _ := Detect("zzz qqq xxx www yyy vvv kkk jjj"); lang != Unknown {
		t.Errorf("gibberish = %v, want Unknown", lang)
	}
}

func TestMixedLanguageScoresLow(t *testing.T) {
	// A 50/50 mixed document should score lower than a pure one for any
	// single language (the §4 mixed-language policy was discarded).
	mixed := enText + " " + deText
	_, mixedScore := Detect(mixed)
	_, pureScore := Detect(enText)
	if mixedScore >= pureScore {
		t.Errorf("mixed score %.3f >= pure score %.3f", mixedScore, pureScore)
	}
}

func BenchmarkDetect(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Detect(enText)
	}
}
