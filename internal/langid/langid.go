// Package langid identifies the language of a text using stopword-profile
// scoring. The crawl pipeline (§3.1) drops non-English privacy pages before
// annotation; this detector distinguishes English from the European
// languages that dominate non-English corporate sites (German, French,
// Spanish), which is all the paper's filter needs.
package langid

import (
	"unicode"
	"unicode/utf8"
)

// Lang is an ISO-639-1 language code.
type Lang string

// Languages the detector scores.
const (
	English Lang = "en"
	German  Lang = "de"
	French  Lang = "fr"
	Spanish Lang = "es"
	Unknown Lang = "und"
)

var profiles = map[Lang][]string{
	English: {
		"the", "and", "of", "to", "in", "we", "you", "your", "that", "for",
		"is", "are", "with", "our", "this", "or", "as", "may", "not", "by",
		"on", "be", "from", "will", "can", "us", "have", "use", "any", "it",
	},
	German: {
		"der", "die", "das", "und", "wir", "sie", "ihre", "nicht", "mit",
		"von", "für", "auf", "werden", "eine", "ein", "zu", "den", "des",
		"im", "ist", "daten", "oder", "wie", "bei", "durch", "nach", "dem",
	},
	French: {
		"le", "la", "les", "et", "nous", "vous", "vos", "des", "que", "pour",
		"dans", "est", "sont", "avec", "votre", "une", "un", "du", "de",
		"ne", "pas", "sur", "par", "ces", "aux", "être", "données",
	},
	Spanish: {
		"el", "la", "los", "las", "y", "nosotros", "usted", "sus", "que",
		"para", "en", "es", "son", "con", "su", "una", "un", "del", "de",
		"no", "por", "se", "datos", "como", "más", "este", "esta",
	},
}

var profileSets = func() map[Lang]map[string]bool {
	m := make(map[Lang]map[string]bool, len(profiles))
	for l, ws := range profiles {
		set := make(map[string]bool, len(ws))
		for _, w := range ws {
			set[w] = true
		}
		m[l] = set
	}
	return m
}()

// langOrder fixes the scoring order (and therefore tie-breaking) instead
// of ranging over the profile map.
var langOrder = [...]Lang{English, German, French, Spanish}

// Detect returns the best-scoring language and its score (fraction of
// tokens found in that language's stopword profile). Texts under 5 tokens
// or with no stopword hits return Unknown.
//
// Tokens are scored as they are produced — the detector runs on every
// fetched page, and materializing a token slice per page was one of the
// crawl path's largest allocation sources. Mixed-case tokens are lowercased
// into a reused scratch buffer; the map probes via string(scratch) compile
// to lookups without a string copy.
func Detect(text string) (Lang, float64) {
	var sets [len(langOrder)]map[string]bool
	for i, l := range langOrder {
		sets[i] = profileSets[l]
	}
	var hits [len(langOrder)]int
	total := 0
	var scratch []byte
	for i := 0; i < len(text) && total < 4000; {
		r, sz := decodeRuneAt(text, i)
		if !unicode.IsLetter(r) {
			i += sz
			continue
		}
		start := i
		needsLower := unicode.ToLower(r) != r
		i += sz
		for i < len(text) {
			r, sz = decodeRuneAt(text, i)
			if !unicode.IsLetter(r) {
				break
			}
			if unicode.ToLower(r) != r {
				needsLower = true
			}
			i += sz
		}
		tok := text[start:i]
		total++
		if needsLower {
			scratch = appendLower(scratch[:0], tok)
			for j := range sets {
				if sets[j][string(scratch)] {
					hits[j]++
				}
			}
			continue
		}
		for j := range sets {
			if sets[j][tok] {
				hits[j]++
			}
		}
	}
	if total < 5 {
		return Unknown, 0
	}
	best, bestScore := Unknown, 0.0
	for j, l := range langOrder {
		score := float64(hits[j]) / float64(total)
		if score > bestScore {
			best, bestScore = l, score
		}
	}
	if bestScore < 0.05 {
		return Unknown, bestScore
	}
	return best, bestScore
}

// appendLower appends the lowercase form of tok to dst.
func appendLower(dst []byte, tok string) []byte {
	for _, r := range tok {
		dst = utf8.AppendRune(dst, unicode.ToLower(r))
	}
	return dst
}

// IsEnglish reports whether text is detected as English. This is the
// predicate the pipeline's pre-processing uses to discard non-English
// pages (and pages mixing languages, which score poorly for every single
// profile — the paper discards one such policy in §4).
func IsEnglish(text string) bool {
	lang, _ := Detect(text)
	return lang == English
}

// decodeRuneAt reads the rune starting at byte i, with a single-byte fast
// path for ASCII.
func decodeRuneAt(s string, i int) (rune, int) {
	if c := s[i]; c < utf8.RuneSelf {
		return rune(c), 1
	}
	return utf8.DecodeRuneInString(s[i:])
}
