// Package langid identifies the language of a text using stopword-profile
// scoring. The crawl pipeline (§3.1) drops non-English privacy pages before
// annotation; this detector distinguishes English from the European
// languages that dominate non-English corporate sites (German, French,
// Spanish), which is all the paper's filter needs.
package langid

import (
	"strings"
	"unicode"
)

// Lang is an ISO-639-1 language code.
type Lang string

// Languages the detector scores.
const (
	English Lang = "en"
	German  Lang = "de"
	French  Lang = "fr"
	Spanish Lang = "es"
	Unknown Lang = "und"
)

var profiles = map[Lang][]string{
	English: {
		"the", "and", "of", "to", "in", "we", "you", "your", "that", "for",
		"is", "are", "with", "our", "this", "or", "as", "may", "not", "by",
		"on", "be", "from", "will", "can", "us", "have", "use", "any", "it",
	},
	German: {
		"der", "die", "das", "und", "wir", "sie", "ihre", "nicht", "mit",
		"von", "für", "auf", "werden", "eine", "ein", "zu", "den", "des",
		"im", "ist", "daten", "oder", "wie", "bei", "durch", "nach", "dem",
	},
	French: {
		"le", "la", "les", "et", "nous", "vous", "vos", "des", "que", "pour",
		"dans", "est", "sont", "avec", "votre", "une", "un", "du", "de",
		"ne", "pas", "sur", "par", "ces", "aux", "être", "données",
	},
	Spanish: {
		"el", "la", "los", "las", "y", "nosotros", "usted", "sus", "que",
		"para", "en", "es", "son", "con", "su", "una", "un", "del", "de",
		"no", "por", "se", "datos", "como", "más", "este", "esta",
	},
}

var profileSets = func() map[Lang]map[string]bool {
	m := make(map[Lang]map[string]bool, len(profiles))
	for l, ws := range profiles {
		set := make(map[string]bool, len(ws))
		for _, w := range ws {
			set[w] = true
		}
		m[l] = set
	}
	return m
}()

// Detect returns the best-scoring language and its score (fraction of
// tokens found in that language's stopword profile). Texts under 5 tokens
// or with no stopword hits return Unknown.
func Detect(text string) (Lang, float64) {
	words := tokenize(text)
	if len(words) < 5 {
		return Unknown, 0
	}
	best, bestScore := Unknown, 0.0
	for lang, set := range profileSets {
		hits := 0
		for _, w := range words {
			if set[w] {
				hits++
			}
		}
		score := float64(hits) / float64(len(words))
		if score > bestScore {
			best, bestScore = lang, score
		}
	}
	if bestScore < 0.05 {
		return Unknown, bestScore
	}
	return best, bestScore
}

// IsEnglish reports whether text is detected as English. This is the
// predicate the pipeline's pre-processing uses to discard non-English
// pages (and pages mixing languages, which score poorly for every single
// profile — the paper discards one such policy in §4).
func IsEnglish(text string) bool {
	lang, _ := Detect(text)
	return lang == English
}

func tokenize(s string) []string {
	var out []string
	var b strings.Builder
	for _, r := range s {
		if unicode.IsLetter(r) {
			b.WriteRune(unicode.ToLower(r))
		} else if b.Len() > 0 {
			out = append(out, b.String())
			b.Reset()
		}
		if len(out) >= 4000 {
			return out // plenty for a confident decision
		}
	}
	if b.Len() > 0 {
		out = append(out, b.String())
	}
	return out
}
