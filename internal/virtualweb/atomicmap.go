package virtualweb

import (
	"sync"

	"aipan/internal/webgen"
)

// atomicMap is a small typed wrapper over sync.Map for the render cache.
type atomicMap struct {
	m sync.Map
}

func (a *atomicMap) load(host string) (map[string]webgen.Page, bool) {
	v, ok := a.m.Load(host)
	if !ok {
		return nil, false
	}
	return v.(map[string]webgen.Page), true
}

func (a *atomicMap) store(host string, pages map[string]webgen.Page) {
	a.m.Store(host, pages)
}
