package virtualweb

import (
	"container/list"
	"sync"

	"aipan/internal/webgen"
)

// defaultRenderCacheCap bounds the render cache. It comfortably holds
// the full AIPAN-3k corpus (2,892 domains), so default-universe runs
// behave exactly as the old unbounded cache did; at 100k–1M domains it
// is what keeps the transport's memory flat — a crawled domain's pages
// are dead weight the moment its crawl completes, so LRU eviction costs
// at most a re-render on the rare revisit.
const defaultRenderCacheCap = 4096

// renderCache is a bounded LRU over rendered sites, keyed by host.
type renderCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	l   list.List // front = most recently used
}

type renderEntry struct {
	host  string
	pages map[string]webgen.Page
}

func (c *renderCache) load(host string) (map[string]webgen.Page, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[host]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*renderEntry).pages, true
}

func (c *renderCache) store(host string, pages map[string]webgen.Page) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.m == nil {
		c.m = map[string]*list.Element{}
	}
	if c.cap <= 0 {
		c.cap = defaultRenderCacheCap
	}
	if el, ok := c.m[host]; ok {
		el.Value.(*renderEntry).pages = pages
		c.l.MoveToFront(el)
		return
	}
	c.m[host] = c.l.PushFront(&renderEntry{host: host, pages: pages})
	for c.l.Len() > c.cap {
		last := c.l.Back()
		c.l.Remove(last)
		delete(c.m, last.Value.(*renderEntry).host)
	}
}
