package virtualweb

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipan/internal/russell"
	"aipan/internal/webgen"
)

func gen() *webgen.Generator {
	return webgen.New(webgen.Seed, russell.UniqueDomains(russell.Universe(webgen.Seed)))
}

func pickSite(g *webgen.Generator, class webgen.FailureClass) *webgen.Site {
	for _, s := range g.Sites() {
		if s.Failure == class {
			return s
		}
	}
	return nil
}

func TestTransportServesHomepage(t *testing.T) {
	g := gen()
	tr := NewTransport(g)
	client := tr.Client()
	s := pickSite(g, webgen.FailNone)

	resp, err := client.Get("http://" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), s.Company) {
		t.Error("homepage missing company name")
	}
	if tr.Requests() == 0 {
		t.Error("request counter not incremented")
	}
}

func TestTransportWWWPrefixAndPort(t *testing.T) {
	g := gen()
	client := NewTransport(g).Client()
	s := pickSite(g, webgen.FailNone)
	resp, err := client.Get("http://www." + s.Domain + ":8080/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("www+port host resolution failed: %d", resp.StatusCode)
	}
}

func TestTransport404(t *testing.T) {
	g := gen()
	client := NewTransport(g).Client()
	s := pickSite(g, webgen.FailNone)
	resp, err := client.Get("http://" + s.Domain + "/no-such-page")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestTransportUnknownHost(t *testing.T) {
	g := gen()
	client := NewTransport(g).Client()
	_, err := client.Get("http://nonexistent.example.net/")
	if err == nil {
		t.Error("unknown host should error like a DNS failure")
	}
}

func TestTransportBlockedSite(t *testing.T) {
	g := gen()
	client := NewTransport(g).Client()
	s := pickSite(g, webgen.FailBlocked)
	resp, err := client.Get("http://" + s.Domain + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 403 {
		t.Errorf("blocked site status = %d, want 403", resp.StatusCode)
	}
}

func TestTransportTimeoutSite(t *testing.T) {
	g := gen()
	tr := NewTransport(g)
	s := pickSite(g, webgen.FailTimeout)
	_, err := tr.Client().Get("http://" + s.Domain + "/")
	if err == nil || !errors.Is(errors.Unwrap(errors.Unwrap(err)), ErrTimeout) && !strings.Contains(err.Error(), "timed out") {
		t.Errorf("timeout site error = %v", err)
	}
}

func TestTransportFollowsRedirect(t *testing.T) {
	g := gen()
	client := NewTransport(g).Client()
	var s *webgen.Site
	for _, cand := range g.Sites() {
		if cand.Failure != webgen.FailNone {
			continue
		}
		pages := g.RenderSite(cand.Domain)
		if p, ok := pages["/privacy-policy"]; ok && p.RedirectTo != "" {
			s = cand
			break
		}
	}
	if s == nil {
		t.Skip("no redirecting site in corpus")
	}
	resp, err := client.Get("http://" + s.Domain + "/privacy-policy")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("redirect not followed: %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "Privacy") {
		t.Error("redirect target is not the policy")
	}
}

func TestHandlerOverRealSocket(t *testing.T) {
	g := gen()
	srv := httptest.NewServer(NewHandler(g))
	defer srv.Close()
	s := pickSite(g, webgen.FailNone)

	// Path-based addressing.
	resp, err := http.Get(srv.URL + "/_site/" + s.Domain + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), s.Company) {
		t.Error("handler response missing company name")
	}

	// Host-based addressing.
	req, _ := http.NewRequest("GET", srv.URL+"/", nil)
	req.Host = s.Domain
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Errorf("host-based status = %d", resp2.StatusCode)
	}
}

func TestHandlerUnknownSite(t *testing.T) {
	g := gen()
	srv := httptest.NewServer(NewHandler(g))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/_site/bogus.example.org/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Errorf("status = %d, want 502", resp.StatusCode)
	}
}

func TestPDFContentType(t *testing.T) {
	g := gen()
	client := NewTransport(g).Client()
	s := pickSite(g, webgen.FailPDFOnly)
	resp, err := client.Get("http://" + s.Domain + "/privacy-policy.pdf")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/pdf" {
		t.Errorf("content type = %q", got)
	}
}

func BenchmarkTransportRoundTrip(b *testing.B) {
	g := gen()
	client := NewTransport(g).Client()
	s := pickSite(g, webgen.FailNone)
	url := "http://" + s.Domain + "/"
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		resp, err := client.Get(url)
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}
