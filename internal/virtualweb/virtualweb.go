// Package virtualweb serves a generated corporate web over the standard
// HTTP client/server interfaces. The Transport form plugs into an
// http.Client as an in-process RoundTripper (the crawler speaks real HTTP
// semantics — status codes, redirects, content types, timeouts — without
// sockets); the Handler form serves the same sites over TCP for demos and
// integration tests (cmd/wwwsim).
package virtualweb

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"aipan/internal/webgen"
)

// Provider renders sites on demand; *webgen.Generator implements it.
type Provider interface {
	RenderSite(domain string) map[string]webgen.Page
	Site(domain string) *webgen.Site
}

// ErrTimeout is returned for pages that simulate a hung server.
var ErrTimeout = errors.New("virtualweb: request timed out")

// Transport is an http.RoundTripper over the synthetic web.
type Transport struct {
	provider Provider
	requests atomic.Int64
	// cache avoids re-rendering a site for every request. It is a
	// bounded LRU (defaultRenderCacheCap hosts), so memory stays flat
	// however many domains the run visits.
	cache renderCache
}

// NewTransport builds a RoundTripper over the provider.
func NewTransport(p Provider) *Transport {
	return &Transport{provider: p}
}

// WithCacheSize bounds the render cache to at most n hosts (default
// defaultRenderCacheCap) and returns the transport for chaining.
func (t *Transport) WithCacheSize(n int) *Transport {
	t.cache.mu.Lock()
	t.cache.cap = n
	t.cache.mu.Unlock()
	return t
}

// Client returns an http.Client using this transport.
func (t *Transport) Client() *http.Client {
	return &http.Client{Transport: t}
}

// Requests reports how many requests the transport has served.
func (t *Transport) Requests() int64 { return t.requests.Load() }

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.requests.Add(1)
	host := hostname(req.URL.Host)
	pages := t.pagesFor(host)
	if pages == nil {
		return nil, fmt.Errorf("virtualweb: no such host %q", host)
	}
	path := req.URL.Path
	if path == "" {
		path = "/"
	}
	page, ok := pages[path]
	if !ok {
		if wild, wok := pages["*"]; wok {
			page = wild
		} else {
			return response(req, 404, "text/html", "<html><body><h1>404 Not Found</h1></body></html>"), nil
		}
	}
	if page.Hang {
		return nil, ErrTimeout
	}
	if page.RedirectTo != "" {
		resp := response(req, statusOr(page.Status, http.StatusMovedPermanently), "text/html", "")
		resp.Header.Set("Location", page.RedirectTo)
		return resp, nil
	}
	return response(req, statusOr(page.Status, 200), page.ContentType, page.Body), nil
}

func (t *Transport) pagesFor(host string) map[string]webgen.Page {
	if v, ok := t.cache.load(host); ok {
		return v
	}
	pages := t.provider.RenderSite(host)
	if pages != nil {
		t.cache.store(host, pages)
	}
	return pages
}

func statusOr(s, def int) int {
	if s == 0 {
		return def
	}
	return s
}

func response(req *http.Request, status int, contentType, body string) *http.Response {
	if contentType == "" {
		contentType = "text/html; charset=utf-8"
	}
	resp := &http.Response{
		StatusCode:    status,
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        http.Header{"Content-Type": []string{contentType}},
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
	return resp
}

// hostname strips the port and a leading www.
func hostname(host string) string {
	if i := strings.LastIndexByte(host, ':'); i >= 0 && !strings.Contains(host[i:], "]") {
		host = host[:i]
	}
	return strings.TrimPrefix(strings.ToLower(host), "www.")
}

// Handler serves the synthetic web over real sockets, routing by Host
// header (use curl --resolve or /etc/hosts entries), with a fallback
// /_site/<domain>/<path> form for plain browsers.
type Handler struct {
	provider  Provider
	transport *Transport
}

// NewHandler builds an http.Handler over the provider.
func NewHandler(p Provider) *Handler {
	return &Handler{provider: p, transport: NewTransport(p)}
}

// ServeHTTP implements http.Handler.
func (h *Handler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	host := hostname(r.Host)
	path := r.URL.Path
	if strings.HasPrefix(path, "/_site/") {
		rest := strings.TrimPrefix(path, "/_site/")
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			host, path = rest[:i], rest[i:]
		} else {
			host, path = rest, "/"
		}
	}
	pages := h.transport.pagesFor(host)
	if pages == nil {
		http.Error(w, "unknown site "+host, http.StatusBadGateway)
		return
	}
	page, ok := pages[path]
	if !ok {
		if wild, wok := pages["*"]; wok {
			page = wild
		} else {
			http.NotFound(w, r)
			return
		}
	}
	if page.Hang {
		// Over a real socket we cannot hang forever politely; emulate with
		// a gateway-timeout so demos terminate.
		http.Error(w, "upstream timeout", http.StatusGatewayTimeout)
		return
	}
	if page.RedirectTo != "" {
		http.Redirect(w, r, page.RedirectTo, statusOr(page.Status, http.StatusMovedPermanently))
		return
	}
	ct := page.ContentType
	if ct == "" {
		ct = "text/html; charset=utf-8"
	}
	w.Header().Set("Content-Type", ct)
	w.WriteHeader(statusOr(page.Status, 200))
	_, _ = io.WriteString(w, page.Body)
}
