package russell

import (
	"reflect"
	"strings"
	"testing"
)

func TestUniverseCardinalities(t *testing.T) {
	u := Universe(3000)
	if len(u) != NumCompanies {
		t.Fatalf("companies = %d, want %d", len(u), NumCompanies)
	}
	domains := UniqueDomains(u)
	if len(domains) != NumDomains {
		t.Fatalf("unique domains = %d, want %d", len(domains), NumDomains)
	}
}

func TestUniverseDeterminism(t *testing.T) {
	a := Universe(3000)
	b := Universe(3000)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed must give identical universes")
	}
	c := Universe(42)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds should differ")
	}
}

func TestAllElevenSectorsPresent(t *testing.T) {
	u := Universe(3000)
	bySector := map[string]int{}
	for _, c := range u {
		bySector[c.Sector]++
	}
	if len(bySector) != 11 {
		t.Fatalf("got %d sectors, want 11: %v", len(bySector), bySector)
	}
	for _, s := range Sectors() {
		if bySector[s] < 50 {
			t.Errorf("sector %s has only %d companies", s, bySector[s])
		}
	}
}

func TestAbbrev(t *testing.T) {
	want := map[string]string{
		ConsumerDiscretionary: "CD", ConsumerStaples: "CS", Energy: "EN",
		Financials: "FS", HealthCare: "HC", Industrials: "IN",
		InformationTechnology: "IT", Materials: "MT", RealEstate: "RE",
		Communication: "TC", Utilities: "UT",
	}
	for s, a := range want {
		if got := Abbrev(s); got != a {
			t.Errorf("Abbrev(%s) = %s, want %s", s, got, a)
		}
	}
	if Abbrev("bogus") != "??" {
		t.Error("unknown sector should map to ??")
	}
}

func TestDuplicateListingsShareDomain(t *testing.T) {
	u := Universe(3000)
	byDomain := map[string][]Company{}
	for _, c := range u {
		byDomain[c.Domain] = append(byDomain[c.Domain], c)
	}
	nDup := 0
	for _, cs := range byDomain {
		if len(cs) == 2 {
			nDup++
			if cs[0].Ticker == cs[1].Ticker {
				t.Errorf("duplicate listing with identical ticker: %+v", cs)
			}
			if cs[0].Sector != cs[1].Sector || cs[0].Name != cs[1].Name {
				t.Errorf("share classes must share name/sector: %+v", cs)
			}
		} else if len(cs) > 2 {
			t.Errorf("domain %s has %d listings", cs[0].Domain, len(cs))
		}
	}
	if nDup != NumCompanies-NumDomains {
		t.Errorf("duplicate domains = %d, want %d", nDup, NumCompanies-NumDomains)
	}
}

func TestUniqueTickersAndNames(t *testing.T) {
	u := Universe(3000)
	tickers := map[string]bool{}
	for _, c := range u {
		if tickers[c.Ticker] {
			t.Errorf("duplicate ticker %s", c.Ticker)
		}
		tickers[c.Ticker] = true
		if c.Name == "" || c.Domain == "" {
			t.Errorf("incomplete company: %+v", c)
		}
		if !strings.HasSuffix(c.Domain, ".example.com") {
			t.Errorf("domain %q not under .example.com", c.Domain)
		}
	}
}

func TestUniqueDomainsSorted(t *testing.T) {
	ds := UniqueDomains(Universe(3000))
	for i := 1; i < len(ds); i++ {
		if ds[i-1].Domain >= ds[i].Domain {
			t.Fatal("domains not sorted")
		}
	}
}

func BenchmarkUniverse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Universe(3000)
	}
}
