// Package russell synthesizes the study universe (§3.1): the constituents
// of the Russell 3000 index — 2,916 companies across the 11 S&P sectors,
// including duplicate listings (share classes of the same parent, like
// GOOG/GOOGL) so that domain deduplication yields the paper's 2,892 unique
// domains. Generation is fully deterministic in the seed.
package russell

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Sector names (S&P), with the paper's abbreviations.
const (
	ConsumerDiscretionary = "Consumer discretionary"
	ConsumerStaples       = "Consumer staples"
	Energy                = "Energy"
	Financials            = "Financials"
	HealthCare            = "Health care"
	Industrials           = "Industrials"
	InformationTechnology = "Information technology"
	Materials             = "Materials"
	RealEstate            = "Real estate"
	Communication         = "Communication services"
	Utilities             = "Utilities"
)

// Sectors lists the 11 S&P sectors in abbreviation order.
func Sectors() []string {
	return []string{
		ConsumerDiscretionary, ConsumerStaples, Energy, Financials,
		HealthCare, Industrials, InformationTechnology, Materials,
		RealEstate, Communication, Utilities,
	}
}

// Abbrev returns the paper's two-letter sector code (Table 2).
func Abbrev(sector string) string {
	switch sector {
	case ConsumerDiscretionary:
		return "CD"
	case ConsumerStaples:
		return "CS"
	case Energy:
		return "EN"
	case Financials:
		return "FS"
	case HealthCare:
		return "HC"
	case Industrials:
		return "IN"
	case InformationTechnology:
		return "IT"
	case Materials:
		return "MT"
	case RealEstate:
		return "RE"
	case Communication:
		return "TC"
	case Utilities:
		return "UT"
	}
	return "??"
}

// Company is one index constituent.
type Company struct {
	// Name is the legal name, e.g. "Northwind Dynamics Corp".
	Name string
	// Ticker is the exchange symbol; duplicate listings share a domain but
	// differ in ticker (the GOOG/GOOGL case).
	Ticker string
	// Sector is the S&P sector.
	Sector string
	// Domain is the company's Internet domain.
	Domain string
}

// Counts matching §3.1.
const (
	// NumCompanies is the constituent count of the Vanguard Russell 3000
	// ETF as of 2024-03-31.
	NumCompanies = 2916
	// NumDomains is the unique-domain count after deduplicating share
	// classes.
	NumDomains = 2892
)

// sectorShare approximates Russell 3000 sector weights by company count;
// they are normalized to sum to NumDomains unique companies.
var sectorShare = map[string]float64{
	Financials:            0.145,
	HealthCare:            0.140,
	Industrials:           0.150,
	InformationTechnology: 0.130,
	ConsumerDiscretionary: 0.140,
	RealEstate:            0.070,
	ConsumerStaples:       0.040,
	Energy:                0.040,
	Materials:             0.045,
	Communication:         0.040,
	Utilities:             0.060,
}

// Universe generates the deterministic synthetic index for a seed.
// len(result) == NumCompanies; unique domains == NumDomains.
func Universe(seed int64) []Company {
	rng := rand.New(rand.NewSource(seed))

	// Allocate per-sector counts over the unique companies.
	sectors := Sectors()
	counts := make(map[string]int, len(sectors))
	total := 0
	for _, s := range sectors {
		n := int(sectorShare[s] * NumDomains)
		counts[s] = n
		total += n
	}
	// Distribute the rounding remainder deterministically.
	for i := 0; total < NumDomains; i++ {
		counts[sectors[i%len(sectors)]]++
		total++
	}

	gen := newNameGen(rng)
	var companies []Company
	for _, s := range sectors {
		for i := 0; i < counts[s]; i++ {
			name, ticker, domain := gen.next(s)
			companies = append(companies, Company{Name: name, Ticker: ticker, Sector: s, Domain: domain})
		}
	}

	// Create duplicate listings: extra share classes of existing parents.
	nDup := NumCompanies - NumDomains
	for i := 0; i < nDup; i++ {
		parent := companies[rng.Intn(NumDomains)]
		// Avoid duplicating the same parent twice.
		for strings.HasSuffix(parent.Ticker, ".B") || gen.duped[parent.Domain] {
			parent = companies[rng.Intn(NumDomains)]
		}
		gen.duped[parent.Domain] = true
		dup := parent
		dup.Ticker = parent.Ticker + ".B"
		companies = append(companies, dup)
	}

	// Shuffle deterministically so sectors interleave like a real index.
	rng.Shuffle(len(companies), func(i, j int) {
		companies[i], companies[j] = companies[j], companies[i]
	})
	return companies
}

// UniqueDomains returns the deduplicated domain list with the owning
// companies, sorted by domain.
func UniqueDomains(companies []Company) []DomainInfo {
	byDomain := map[string]*DomainInfo{}
	for _, c := range companies {
		d, ok := byDomain[c.Domain]
		if !ok {
			d = &DomainInfo{Domain: c.Domain, Sector: c.Sector}
			byDomain[c.Domain] = d
		}
		d.Companies = append(d.Companies, c)
	}
	out := make([]DomainInfo, 0, len(byDomain))
	for _, d := range byDomain {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	return out
}

// DomainInfo is one unique domain with its listed companies.
type DomainInfo struct {
	Domain    string
	Sector    string
	Companies []Company
}

// ---------------------------------------------------------------- naming

type nameGen struct {
	rng     *rand.Rand
	names   map[string]bool
	tickers map[string]bool
	domains map[string]bool
	duped   map[string]bool
	// sized switches next to the scaled naming path (UniverseSized),
	// which numbers colliding domains instead of rejecting them; seq and
	// tickSeq are its per-base collision counters.
	sized   bool
	seq     map[string]int
	tickSeq map[string]int
}

func newNameGen(rng *rand.Rand) *nameGen {
	return &nameGen{
		rng:     rng,
		names:   map[string]bool{},
		tickers: map[string]bool{},
		domains: map[string]bool{},
		duped:   map[string]bool{},
		seq:     map[string]int{},
		tickSeq: map[string]int{},
	}
}

var nameRoots = []string{
	"Northwind", "Bluepeak", "Ironvale", "Crestline", "Silverbrook",
	"Oakhaven", "Redstone", "Clearwater", "Summit", "Pinnacle", "Horizon",
	"Vanguardia", "Meridian", "Atlas", "Beacon", "Cascade", "Drift",
	"Everfield", "Falcon", "Garnet", "Harbor", "Inlet", "Juniper", "Keystone",
	"Lakeshore", "Maple", "Nimbus", "Orchard", "Prairie", "Quarry", "Ridge",
	"Sable", "Tidewater", "Umber", "Vista", "Willow", "Xenon", "Yellowpine",
	"Zephyr", "Amber", "Boulder", "Cobalt", "Dunmore", "Ember", "Flint",
	"Granite", "Hollow", "Indigo", "Jasper", "Kestrel", "Larkspur", "Mesa",
	"Noble", "Onyx", "Peregrine", "Quill", "Raven", "Sterling", "Talon",
	"Ursa", "Vermilion", "Wren", "Yarrow", "Zinnia", "Arbor", "Brook",
	"Cinder", "Dell", "Elm", "Fern", "Grove", "Heath", "Iris", "Jade",
	"Knoll", "Loch", "Moor", "Nook", "Opal", "Pike", "Reed", "Slate",
	"Thorn", "Vale", "Wold", "Yew", "Aster", "Birch", "Cedar", "Dogwood",
}

var sectorFlavors = map[string][]string{
	ConsumerDiscretionary: {"Retail", "Outfitters", "Leisure", "Motors", "Apparel", "Hospitality", "Brands", "Stores"},
	ConsumerStaples:       {"Foods", "Beverages", "Grocers", "Household", "Farms", "Provisions"},
	Energy:                {"Energy", "Petroleum", "Drilling", "Pipelines", "Resources", "Oilfield"},
	Financials:            {"Financial", "Bancorp", "Capital", "Insurance", "Trust", "Securities", "Holdings"},
	HealthCare:            {"Health", "Therapeutics", "Biosciences", "Medical", "Pharma", "Diagnostics", "Clinics"},
	Industrials:           {"Industries", "Manufacturing", "Logistics", "Aerospace", "Engineering", "Machinery"},
	InformationTechnology: {"Technologies", "Systems", "Software", "Semiconductors", "Networks", "Digital", "Cloud"},
	Materials:             {"Materials", "Chemicals", "Mining", "Metals", "Packaging", "Minerals"},
	RealEstate:            {"Properties", "Realty", "REIT", "Estates", "Development"},
	Communication:         {"Media", "Communications", "Broadcasting", "Interactive", "Telecom", "Entertainment"},
	Utilities:             {"Utilities", "Power", "Electric", "Water", "Gas"},
}

var legalSuffixes = []string{"Inc", "Corp", "Group", "Co", "Ltd", "PLC", "Holdings"}

func (g *nameGen) next(sector string) (name, ticker, domain string) {
	if g.sized {
		return g.nextSized(sector)
	}
	flavors := sectorFlavors[sector]
	for tries := 0; ; tries++ {
		root := nameRoots[g.rng.Intn(len(nameRoots))]
		flavor := flavors[g.rng.Intn(len(flavors))]
		suffix := legalSuffixes[g.rng.Intn(len(legalSuffixes))]
		candidate := fmt.Sprintf("%s %s %s", root, flavor, suffix)
		if tries > 20 {
			candidate = fmt.Sprintf("%s %s %s %d", root, flavor, suffix, g.rng.Intn(1000))
		}
		if g.names[candidate] {
			continue
		}
		dom := strings.ToLower(root + strings.ReplaceAll(flavor, " ", ""))
		dom += ".example.com"
		if g.domains[dom] {
			continue
		}
		tick := g.makeTicker(root, flavor)
		g.names[candidate] = true
		g.domains[dom] = true
		return candidate, tick, dom
	}
}

func (g *nameGen) makeTicker(root, flavor string) string {
	base := strings.ToUpper(root[:min(3, len(root))] + flavor[:1])
	t := base
	for i := 2; g.tickers[t]; i++ {
		t = fmt.Sprintf("%s%d", base, i)
	}
	g.tickers[t] = true
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
