package russell

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
)

// UniverseSized generates a synthetic index with numDomains unique
// domains. numDomains <= 0 or == NumDomains delegates to Universe, so
// the paper's 2,892-domain universe stays byte-identical. Larger
// universes extend the index with a long tail: the paper's sector
// weights describe the large-cap head, but an index stretched toward
// PrivaSeer scale (100k–1M policies) is dominated by small caps whose
// sector concentration flattens out — so tail domains are allocated
// under a flattened (√share-renormalized) sector mix blended with the
// head mix. Duplicate share-class listings are created at the paper's
// head rate (24 per 2,892 domains), so len(result) > numDomains by the
// scaled duplicate count.
func UniverseSized(seed int64, numDomains int) []Company {
	if numDomains <= 0 || numDomains == NumDomains {
		return Universe(seed)
	}
	rng := rand.New(rand.NewSource(seed))

	sectors := Sectors()
	counts := sectorCountsSized(numDomains)

	gen := newNameGen(rng)
	gen.sized = true
	companies := make([]Company, 0, numDomains)
	for _, s := range sectors {
		for i := 0; i < counts[s]; i++ {
			name, ticker, domain := gen.next(s)
			companies = append(companies, Company{Name: name, Ticker: ticker, Sector: s, Domain: domain})
		}
	}

	// Duplicate listings at the head rate, floored so tiny test
	// universes still get none rather than a negative count.
	nDup := numDomains * (NumCompanies - NumDomains) / NumDomains
	for i := 0; i < nDup; i++ {
		parent := companies[rng.Intn(numDomains)]
		for strings.HasSuffix(parent.Ticker, ".B") || gen.duped[parent.Domain] {
			parent = companies[rng.Intn(numDomains)]
		}
		gen.duped[parent.Domain] = true
		dup := parent
		dup.Ticker = parent.Ticker + ".B"
		companies = append(companies, dup)
	}

	rng.Shuffle(len(companies), func(i, j int) {
		companies[i], companies[j] = companies[j], companies[i]
	})
	return companies
}

// sectorCountsSized allocates numDomains unique domains across sectors:
// the first NumDomains-worth follow the paper's head weights, and
// everything beyond follows the flattened long-tail mix.
func sectorCountsSized(numDomains int) map[string]int {
	sectors := Sectors()
	head := numDomains
	if head > NumDomains {
		head = NumDomains
	}
	tail := numDomains - head

	// Flattened tail mix: √share, renormalized.
	tailShare := make(map[string]float64, len(sectors))
	norm := 0.0
	for _, s := range sectors {
		tailShare[s] = math.Sqrt(sectorShare[s])
		norm += tailShare[s]
	}

	counts := make(map[string]int, len(sectors))
	total := 0
	for _, s := range sectors {
		n := int(sectorShare[s]*float64(head) + tailShare[s]/norm*float64(tail))
		counts[s] = n
		total += n
	}
	// Distribute the rounding remainder deterministically.
	for i := 0; total < numDomains; i++ {
		counts[sectors[i%len(sectors)]]++
		total++
	}
	for i := 0; total > numDomains; i++ {
		s := sectors[i%len(sectors)]
		if counts[s] > 0 {
			counts[s]--
			total--
		}
	}
	return counts
}

// nextSized is the scaled naming path: the root×flavor namespace holds
// only a few hundred combinations per sector, so beyond the paper's
// universe every collision takes a per-base sequence number on both the
// name and the domain (the default path never numbers domains, which is
// why Universe caps out — and why this path is kept separate instead of
// changing it).
func (g *nameGen) nextSized(sector string) (name, ticker, domain string) {
	flavors := sectorFlavors[sector]
	root := nameRoots[g.rng.Intn(len(nameRoots))]
	flavor := flavors[g.rng.Intn(len(flavors))]
	suffix := legalSuffixes[g.rng.Intn(len(legalSuffixes))]
	base := strings.ToLower(root + strings.ReplaceAll(flavor, " ", ""))
	name = fmt.Sprintf("%s %s %s", root, flavor, suffix)
	domain = base + ".example.com"
	if g.domains[domain] || g.names[name] {
		k := g.seq[base] + 1
		g.seq[base] = k
		name = fmt.Sprintf("%s %s %s %d", root, flavor, suffix, k)
		domain = fmt.Sprintf("%s-%d.example.com", base, k)
	}
	g.names[name] = true
	g.domains[domain] = true
	return name, g.makeTickerSized(root, flavor), domain
}

// makeTickerSized is makeTicker with a per-base sequence counter: the
// default path re-probes from 2 on every call, which is quadratic once
// hundreds of thousands of tickers share a few hundred bases.
func (g *nameGen) makeTickerSized(root, flavor string) string {
	base := strings.ToUpper(root[:min(3, len(root))] + flavor[:1])
	if !g.tickers[base] {
		g.tickers[base] = true
		return base
	}
	k := g.tickSeq[base]
	if k < 2 {
		k = 2
	}
	t := base + strconv.Itoa(k)
	for g.tickers[t] {
		k++
		t = base + strconv.Itoa(k)
	}
	g.tickSeq[base] = k + 1
	g.tickers[t] = true
	return t
}
