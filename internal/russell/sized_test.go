package russell

import (
	"reflect"
	"testing"
)

// TestUniverseSizedDefaultIdentical: the paper-sized call is the paper
// universe, byte for byte.
func TestUniverseSizedDefaultIdentical(t *testing.T) {
	if !reflect.DeepEqual(UniverseSized(3000, NumDomains), Universe(3000)) {
		t.Fatal("UniverseSized(seed, NumDomains) diverged from Universe(seed)")
	}
	if !reflect.DeepEqual(UniverseSized(3000, 0), Universe(3000)) {
		t.Fatal("UniverseSized(seed, 0) diverged from Universe(seed)")
	}
}

// TestUniverseSizedCardinalities: a scaled universe hits the requested
// unique-domain count exactly, with duplicates at the head rate, every
// sector represented, and full determinism.
func TestUniverseSizedCardinalities(t *testing.T) {
	const n = 10_000
	u := UniverseSized(3000, n)
	wantDup := n * (NumCompanies - NumDomains) / NumDomains
	if len(u) != n+wantDup {
		t.Fatalf("companies = %d, want %d (+%d dups)", len(u), n+wantDup, wantDup)
	}
	domains := UniqueDomains(u)
	if len(domains) != n {
		t.Fatalf("unique domains = %d, want %d", len(domains), n)
	}
	bySector := map[string]int{}
	for _, d := range domains {
		bySector[d.Sector]++
	}
	for _, s := range Sectors() {
		if bySector[s] == 0 {
			t.Fatalf("sector %q has no domains at n=%d", s, n)
		}
	}
	if !reflect.DeepEqual(u, UniverseSized(3000, n)) {
		t.Fatal("UniverseSized is not deterministic")
	}
}

// TestUniverseSizedLongTailFlattens: beyond the paper's head, the tail
// mix flattens — small sectors take a larger share of the tail than of
// the head, so their overall share grows with the universe.
func TestUniverseSizedLongTailFlattens(t *testing.T) {
	share := func(domains []DomainInfo, sector string) float64 {
		n := 0
		for _, d := range domains {
			if d.Sector == sector {
				n++
			}
		}
		return float64(n) / float64(len(domains))
	}
	head := UniqueDomains(Universe(3000))
	tail := UniqueDomains(UniverseSized(3000, 50_000))
	// Consumer staples is one of the smallest head sectors (4%).
	if share(tail, ConsumerStaples) <= share(head, ConsumerStaples) {
		t.Fatalf("long tail did not flatten: staples share %f -> %f",
			share(head, ConsumerStaples), share(tail, ConsumerStaples))
	}
	if share(tail, Industrials) >= share(head, Industrials) {
		t.Fatalf("long tail did not flatten: industrials share %f -> %f",
			share(head, Industrials), share(tail, Industrials))
	}
}
