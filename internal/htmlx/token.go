// Package htmlx implements an HTML tokenizer and a lenient tree parser
// sufficient for scraping real-world web pages: void elements, raw-text
// elements, implied end tags, attribute parsing, entity decoding, comments
// and doctypes. It is built from scratch on the standard library only.
//
// The parser is intentionally forgiving: malformed markup never returns an
// error; it produces the best tree it can, which is what a scraping pipeline
// needs when pointed at thousands of corporate websites.
package htmlx

import (
	"html"
	"strings"
)

// TokenType identifies the kind of a lexical token.
type TokenType int

const (
	// ErrorToken is returned when the input is exhausted.
	ErrorToken TokenType = iota
	// TextToken is a run of character data.
	TextToken
	// StartTagToken is <name attr...>.
	StartTagToken
	// EndTagToken is </name>.
	EndTagToken
	// SelfClosingTagToken is <name attr.../>.
	SelfClosingTagToken
	// CommentToken is <!-- ... -->.
	CommentToken
	// DoctypeToken is <!DOCTYPE ...>.
	DoctypeToken
)

// String returns a human-readable name for the token type.
func (t TokenType) String() string {
	switch t {
	case ErrorToken:
		return "Error"
	case TextToken:
		return "Text"
	case StartTagToken:
		return "StartTag"
	case EndTagToken:
		return "EndTag"
	case SelfClosingTagToken:
		return "SelfClosingTag"
	case CommentToken:
		return "Comment"
	case DoctypeToken:
		return "Doctype"
	}
	return "Unknown"
}

// Attribute is a single key="value" pair on a tag.
type Attribute struct {
	Key string
	Val string
}

// Token is a single lexical element of an HTML document.
type Token struct {
	Type TokenType
	// Data is the tag name for tag tokens (lowercased), the text for text
	// tokens (entity-decoded), or the comment/doctype body.
	Data string
	Attr []Attribute
}

// AttrVal returns the value of the named attribute and whether it exists.
// Keys are matched case-insensitively.
func (t *Token) AttrVal(key string) (string, bool) {
	for _, a := range t.Attr {
		if strings.EqualFold(a.Key, key) {
			return a.Val, true
		}
	}
	return "", false
}

// voidElements never have children or end tags.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// rawTextElements contain raw character data until their matching end tag.
var rawTextElements = map[string]bool{
	"script": true, "style": true, "textarea": true, "title": true,
	"noscript": true,
}

// IsVoid reports whether the named element is a void element (no end tag).
func IsVoid(name string) bool { return voidElements[name] }

// IsRawText reports whether the named element holds raw text content.
func IsRawText(name string) bool { return rawTextElements[name] }

// unescape decodes HTML entities using the standard library table.
func unescape(s string) string {
	if !strings.ContainsRune(s, '&') {
		return s
	}
	return html.UnescapeString(s)
}
