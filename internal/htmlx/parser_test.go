package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestParseSimpleTree(t *testing.T) {
	doc := Parse(`<html><body><div id="main"><p>one</p><p>two</p></div></body></html>`)
	main := doc.ByID("main")
	if main == nil {
		t.Fatal("no #main")
	}
	ps := main.ByTag("p")
	if len(ps) != 2 {
		t.Fatalf("got %d <p>, want 2", len(ps))
	}
	if ps[0].Text() != "one" || ps[1].Text() != "two" {
		t.Errorf("texts: %q %q", ps[0].Text(), ps[1].Text())
	}
}

func TestParseImpliedEndLi(t *testing.T) {
	doc := Parse(`<ul><li>a<li>b<li>c</ul>`)
	lis := doc.ByTag("li")
	if len(lis) != 3 {
		t.Fatalf("got %d li, want 3", len(lis))
	}
	for i, want := range []string{"a", "b", "c"} {
		if lis[i].Text() != want {
			t.Errorf("li %d text %q, want %q", i, lis[i].Text(), want)
		}
		if !lis[i].Parent.IsElement("ul") {
			t.Errorf("li %d parent is %q, want ul", i, lis[i].Parent.Data)
		}
	}
}

func TestParseImpliedEndP(t *testing.T) {
	doc := Parse(`<p>first<p>second<div>third</div>`)
	ps := doc.ByTag("p")
	if len(ps) != 2 {
		t.Fatalf("got %d p, want 2", len(ps))
	}
	if ps[0].Text() != "first" || ps[1].Text() != "second" {
		t.Errorf("p texts: %q %q", ps[0].Text(), ps[1].Text())
	}
	div := doc.ByTag("div")
	if len(div) != 1 || div[0].Text() != "third" {
		t.Fatalf("div wrong: %+v", div)
	}
	// The div must not be nested inside the p.
	if div[0].Ancestor("p") != nil {
		t.Error("div nested inside p")
	}
}

func TestParseTable(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	trs := doc.ByTag("tr")
	if len(trs) != 2 {
		t.Fatalf("got %d tr, want 2", len(trs))
	}
	tds := doc.ByTag("td")
	if len(tds) != 3 {
		t.Fatalf("got %d td, want 3", len(tds))
	}
}

func TestParseVoidElements(t *testing.T) {
	doc := Parse(`<p>a<br>b<img src="x">c</p>`)
	ps := doc.ByTag("p")
	if len(ps) != 1 {
		t.Fatalf("got %d p", len(ps))
	}
	if got := ps[0].Text(); got != "a b c" {
		t.Errorf("text = %q", got)
	}
	br := doc.ByTag("br")
	if len(br) != 1 || br[0].FirstChild != nil {
		t.Error("br should be empty void element")
	}
}

func TestParseMismatchedEndTags(t *testing.T) {
	doc := Parse(`<div><b>bold</div></b>trailing`)
	if doc.Text() != "bold trailing" {
		t.Errorf("text = %q", doc.Text())
	}
}

func TestParseScriptIgnoredInText(t *testing.T) {
	doc := Parse(`<body><script>var x = "<p>not a tag</p>";</script><p>real</p></body>`)
	ps := doc.ByTag("p")
	if len(ps) != 1 || ps[0].Text() != "real" {
		t.Fatalf("script content leaked into tree: %+v", ps)
	}
	if got := doc.Text(); got != "real" {
		t.Errorf("Text() includes script: %q", got)
	}
}

func TestSelect(t *testing.T) {
	doc := Parse(`
		<footer><a href="/privacy" class="legal">Privacy</a><a href="/tos" class="legal big">Terms</a></footer>
		<nav><a href="/home">Home</a></nav>`)
	if got := len(Select(doc, "footer a")); got != 2 {
		t.Errorf("footer a: got %d, want 2", got)
	}
	if got := len(Select(doc, "a.legal")); got != 2 {
		t.Errorf("a.legal: got %d, want 2", got)
	}
	if got := len(Select(doc, ".big")); got != 1 {
		t.Errorf(".big: got %d, want 1", got)
	}
	if n := SelectFirst(doc, "nav a"); n == nil || n.Text() != "Home" {
		t.Errorf("nav a: %+v", n)
	}
	if n := SelectFirst(doc, "#nope"); n != nil {
		t.Errorf("#nope should be nil, got %+v", n)
	}
}

func TestExtractLinks(t *testing.T) {
	doc := Parse(`<a href="/a">One</a><a>no href</a><a href="">empty</a><a href="/b"><span>Two</span></a>`)
	links := ExtractLinks(doc)
	if len(links) != 2 {
		t.Fatalf("got %d links, want 2: %+v", len(links), links)
	}
	if links[0].Href != "/a" || links[0].Text != "One" {
		t.Errorf("link 0: %+v", links[0])
	}
	if links[1].Href != "/b" || links[1].Text != "Two" {
		t.Errorf("link 1: %+v", links[1])
	}
}

func TestRenderRoundTrip(t *testing.T) {
	src := `<div id="x"><p>hi <b>there</b></p><ul><li>a</li><li>b</li></ul></div>`
	doc := Parse(src)
	re := Parse(doc.Render())
	if doc.Text() != re.Text() {
		t.Errorf("round trip text changed: %q vs %q", doc.Text(), re.Text())
	}
	if len(doc.ByTag("li")) != len(re.ByTag("li")) {
		t.Error("round trip structure changed")
	}
}

func TestParseNeverPanicsProperty(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 2048 {
			s = s[:2048]
		}
		doc := Parse(s)
		// The tree must be well-formed: every child's Parent pointer is right.
		ok := true
		doc.Walk(func(n *Node) bool {
			for c := n.FirstChild; c != nil; c = c.NextSibling {
				if c.Parent != n {
					ok = false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHasClassAndAttr(t *testing.T) {
	doc := Parse(`<div class="a B c" data-k="v"></div>`)
	d := doc.ByTag("div")[0]
	if !d.HasClass("b") || !d.HasClass("a") || d.HasClass("d") {
		t.Error("HasClass broken")
	}
	if v, ok := d.AttrVal("DATA-K"); !ok || v != "v" {
		t.Error("AttrVal case-insensitive lookup broken")
	}
}

func BenchmarkParse(b *testing.B) {
	page := `<html><head><title>T</title></head><body>` +
		strings.Repeat(`<div class="row"><h2>Heading</h2><p>Body with <a href="/x">link</a> and <b>bold</b>.</p><ul><li>a<li>b<li>c</ul></div>`, 100) +
		`</body></html>`
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(page)
	}
}

func TestSelectAttributeConditions(t *testing.T) {
	doc := Parse(`
		<a href="/privacy" rel="nofollow">Privacy</a>
		<a href="/terms">Terms</a>
		<a>No href</a>
		<input type="hidden" name="token">
		<input type="text" name="q">`)
	if got := len(Select(doc, "a[href]")); got != 2 {
		t.Errorf("a[href]: %d, want 2", got)
	}
	if got := len(Select(doc, `a[href="/privacy"]`)); got != 1 {
		t.Errorf(`a[href="/privacy"]: %d, want 1`, got)
	}
	if got := len(Select(doc, "a[rel=nofollow]")); got != 1 {
		t.Errorf("a[rel=nofollow]: %d, want 1", got)
	}
	if got := len(Select(doc, "input[type=hidden]")); got != 1 {
		t.Errorf("input[type=hidden]: %d, want 1", got)
	}
	if got := len(Select(doc, "a[download]")); got != 0 {
		t.Errorf("a[download]: %d, want 0", got)
	}
	// Compound with class and attribute.
	doc2 := Parse(`<a class="nav" target="_blank" href="/x">X</a><a class="nav" href="/y">Y</a>`)
	if got := len(Select(doc2, "a.nav[target=_blank]")); got != 1 {
		t.Errorf("compound: %d, want 1", got)
	}
	// Malformed selectors degrade gracefully (no panic, no match explosion).
	for _, sel := range []string{"a[", "a[]", "a[=x]", "[href"} {
		_ = Select(doc, sel)
	}
}
