package htmlx

// impliedEnd maps an element name to the set of open element names that an
// occurrence of it implicitly closes (HTML's optional end tags).
var impliedEnd = map[string]map[string]bool{
	"li":       {"li": true},
	"dt":       {"dt": true, "dd": true},
	"dd":       {"dt": true, "dd": true},
	"tr":       {"tr": true, "td": true, "th": true},
	"td":       {"td": true, "th": true},
	"th":       {"td": true, "th": true},
	"thead":    {"thead": true, "tbody": true, "tfoot": true, "tr": true, "td": true, "th": true},
	"tbody":    {"thead": true, "tbody": true, "tfoot": true, "tr": true, "td": true, "th": true},
	"tfoot":    {"thead": true, "tbody": true, "tfoot": true, "tr": true, "td": true, "th": true},
	"option":   {"option": true},
	"optgroup": {"option": true, "optgroup": true},
}

// blockStarters are elements whose start tag implicitly closes an open <p>.
var blockStarters = map[string]bool{
	"address": true, "article": true, "aside": true, "blockquote": true,
	"details": true, "div": true, "dl": true, "fieldset": true,
	"figcaption": true, "figure": true, "footer": true, "form": true,
	"h1": true, "h2": true, "h3": true, "h4": true, "h5": true, "h6": true,
	"header": true, "hr": true, "main": true, "menu": true, "nav": true,
	"ol": true, "p": true, "pre": true, "section": true, "table": true,
	"ul": true,
}

// nodeArena hands out Nodes from chunked slabs: one heap allocation per
// chunk instead of one per node. Nodes from one Parse call share slabs and
// die together with the tree, so the arena never frees individually.
type nodeArena struct {
	chunk []Node
}

// arenaChunk sizes the slab: a typical policy page parses to a few
// thousand nodes, so chunks stay small enough not to strand memory on
// tiny fragments while cutting allocation count ~256×.
const arenaChunk = 256

func (a *nodeArena) new(t NodeType, data string, attr []Attribute) *Node {
	if len(a.chunk) == 0 {
		a.chunk = make([]Node, arenaChunk)
	}
	n := &a.chunk[0]
	a.chunk = a.chunk[1:]
	n.Type, n.Data, n.Attr = t, data, attr
	return n
}

// Parse builds a Node tree from HTML source. It never returns an error:
// malformed input yields the most sensible tree we can construct.
func Parse(src string) *Node {
	var arena nodeArena
	doc := arena.new(DocumentNode, "", nil)
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	z := NewTokenizer(src)
	for {
		tok := z.Next()
		if tok.Type == ErrorToken {
			break
		}
		switch tok.Type {
		case TextToken:
			if tok.Data == "" {
				continue
			}
			top().AppendChild(arena.new(TextNode, tok.Data, nil))
		case CommentToken:
			top().AppendChild(arena.new(CommentNode, tok.Data, nil))
		case DoctypeToken:
			top().AppendChild(arena.new(DoctypeNode, tok.Data, nil))
		case SelfClosingTagToken:
			n := arena.new(ElementNode, tok.Data, tok.Attr)
			top().AppendChild(n)
		case StartTagToken:
			name := tok.Data
			// Apply implied end tags.
			if closes, ok := impliedEnd[name]; ok {
				for len(stack) > 1 && closes[top().Data] {
					stack = stack[:len(stack)-1]
				}
			}
			if blockStarters[name] {
				// A block element closes an open <p> (but only the nearest).
				for i := len(stack) - 1; i > 0; i-- {
					if stack[i].Data == "p" {
						stack = stack[:i]
						break
					}
					if blockStarters[stack[i].Data] && stack[i].Data != "p" {
						break
					}
				}
			}
			n := arena.new(ElementNode, name, tok.Attr)
			top().AppendChild(n)
			if !IsVoid(name) {
				stack = append(stack, n)
			}
		case EndTagToken:
			name := tok.Data
			if IsVoid(name) {
				continue
			}
			// Find the nearest matching open element; if none, ignore.
			for i := len(stack) - 1; i > 0; i-- {
				if stack[i].Data == name {
					stack = stack[:i]
					break
				}
			}
		}
	}
	return doc
}

// ParseFragment parses src as a fragment (same lenient algorithm as Parse;
// provided for readability at call sites handling snippets rather than
// whole documents).
func ParseFragment(src string) *Node { return Parse(src) }
