package htmlx

import (
	"strings"
	"testing"
	"testing/quick"
)

func collect(src string) []Token {
	z := NewTokenizer(src)
	var toks []Token
	for {
		t := z.Next()
		if t.Type == ErrorToken {
			return toks
		}
		toks = append(toks, t)
	}
}

func TestTokenizerBasic(t *testing.T) {
	toks := collect(`<p class="a">Hello <b>world</b></p>`)
	want := []struct {
		typ  TokenType
		data string
	}{
		{StartTagToken, "p"},
		{TextToken, "Hello "},
		{StartTagToken, "b"},
		{TextToken, "world"},
		{EndTagToken, "b"},
		{EndTagToken, "p"},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Type != w.typ || toks[i].Data != w.data {
			t.Errorf("token %d = %v %q, want %v %q", i, toks[i].Type, toks[i].Data, w.typ, w.data)
		}
	}
	if v, ok := toks[0].AttrVal("class"); !ok || v != "a" {
		t.Errorf("class attr = %q, %v", v, ok)
	}
}

func TestTokenizerAttributes(t *testing.T) {
	toks := collect(`<a href="/privacy" target=_blank data-x='q"v' disabled>x</a>`)
	if toks[0].Type != StartTagToken {
		t.Fatalf("expected start tag, got %v", toks[0])
	}
	cases := map[string]string{"href": "/privacy", "target": "_blank", "data-x": `q"v`, "disabled": ""}
	for k, want := range cases {
		got, ok := toks[0].AttrVal(k)
		if !ok || got != want {
			t.Errorf("attr %q = %q (ok=%v), want %q", k, got, ok, want)
		}
	}
}

func TestTokenizerEntities(t *testing.T) {
	toks := collect(`<p>AT&amp;T &lt;tag&gt; &copy; &#169;</p>`)
	if len(toks) < 2 {
		t.Fatal("too few tokens")
	}
	if got := toks[1].Data; got != "AT&T <tag> © ©" {
		t.Errorf("entity decoding: got %q", got)
	}
}

func TestTokenizerSelfClosing(t *testing.T) {
	toks := collect(`<br/><img src="x.png" />`)
	if toks[0].Type != SelfClosingTagToken || toks[0].Data != "br" {
		t.Errorf("got %v %q", toks[0].Type, toks[0].Data)
	}
	if toks[1].Type != SelfClosingTagToken || toks[1].Data != "img" {
		t.Errorf("got %v %q", toks[1].Type, toks[1].Data)
	}
}

func TestTokenizerComment(t *testing.T) {
	toks := collect(`a<!-- hidden <b>markup</b> -->b`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[1].Type != CommentToken || !strings.Contains(toks[1].Data, "hidden") {
		t.Errorf("comment token wrong: %+v", toks[1])
	}
}

func TestTokenizerDoctype(t *testing.T) {
	toks := collect(`<!DOCTYPE html><html></html>`)
	if toks[0].Type != DoctypeToken || !strings.EqualFold(toks[0].Data, "doctype html") {
		t.Errorf("doctype token wrong: %+v", toks[0])
	}
}

func TestTokenizerRawText(t *testing.T) {
	toks := collect(`<script>if (a < b && c > d) { x("</div>"); }</script><p>ok</p>`)
	// script content must be one opaque text token (it contains "</div>" which
	// the raw scanner must not treat as markup... note "</div>" inside the
	// string ends at the real </script>).
	if toks[0].Type != StartTagToken || toks[0].Data != "script" {
		t.Fatalf("first token: %+v", toks[0])
	}
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, "a < b") {
		t.Fatalf("script body not raw: %+v", toks[1])
	}
	if toks[2].Type != EndTagToken || toks[2].Data != "script" {
		t.Fatalf("script not closed: %+v", toks[2])
	}
}

func TestTokenizerStyleRaw(t *testing.T) {
	toks := collect(`<style>a > b { color: red }</style>`)
	if toks[1].Type != TextToken || !strings.Contains(toks[1].Data, "a > b") {
		t.Fatalf("style body not raw: %+v", toks)
	}
}

func TestTokenizerLoneLessThan(t *testing.T) {
	toks := collect(`price < 100 and > 50`)
	if len(toks) != 1 || toks[0].Type != TextToken {
		t.Fatalf("got %+v", toks)
	}
	if toks[0].Data != "price < 100 and > 50" {
		t.Errorf("got %q", toks[0].Data)
	}
}

func TestTokenizerUnterminatedTag(t *testing.T) {
	toks := collect(`<a href="x`)
	if len(toks) == 0 {
		t.Fatal("no tokens")
	}
	// Must terminate; content is best-effort.
}

func TestTokenizerNeverLoops(t *testing.T) {
	// A grab-bag of pathological inputs; the tokenizer must always terminate.
	inputs := []string{
		"<", "<>", "< >", "<<<>>>", "</>", "<!>", "<!-", "<!--", "<a", "<a ",
		"<a =x>", "<a 'b'>", "<a b=>", "<a b='x>", "<script>", "<p><p><p>",
		"&", "&amp", "a<b>c</b <i>", "<?xml?>", "\x00<\x00a>",
	}
	for _, in := range inputs {
		toks := collect(in)
		_ = toks
	}
}

func TestTokenizerTerminationProperty(t *testing.T) {
	// Property: for arbitrary input the tokenizer terminates and consumed
	// text round-trips reasonably (no panic, no infinite loop).
	f := func(s string) bool {
		if len(s) > 4096 {
			s = s[:4096]
		}
		_ = collect(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTokenizerTextRoundTripProperty(t *testing.T) {
	// Property: plain text with no markup characters tokenizes to itself.
	f := func(s string) bool {
		clean := strings.Map(func(r rune) rune {
			if r == '<' || r == '>' || r == '&' || r == 0 {
				return 'x'
			}
			return r
		}, s)
		if clean == "" {
			return true
		}
		toks := collect(clean)
		return len(toks) == 1 && toks[0].Type == TextToken && toks[0].Data == clean
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkTokenizer(b *testing.B) {
	page := strings.Repeat(`<div class="row"><a href="/x">Link &amp; text</a><p>Body with <b>bold</b> words.</p></div>`, 200)
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z := NewTokenizer(page)
		for {
			if z.Next().Type == ErrorToken {
				break
			}
		}
	}
}
