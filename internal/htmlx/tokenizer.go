package htmlx

import (
	"strings"
)

// Tokenizer splits HTML source into a stream of Tokens. It never fails on
// malformed input; garbage is emitted as text or skipped.
type Tokenizer struct {
	src string
	pos int
	// rawTag, when non-empty, means we are inside a raw-text element and
	// must scan for its end tag without interpreting markup.
	rawTag string
}

// NewTokenizer returns a Tokenizer reading from src.
func NewTokenizer(src string) *Tokenizer {
	return &Tokenizer{src: src}
}

// Next returns the next token. It returns a token of type ErrorToken when
// the input is exhausted.
func (z *Tokenizer) Next() Token {
	if z.pos >= len(z.src) {
		return Token{Type: ErrorToken}
	}
	if z.rawTag != "" {
		return z.nextRawText()
	}
	if z.src[z.pos] == '<' {
		if tok, ok := z.nextMarkup(); ok {
			return tok
		}
		// A lone '<' that does not open valid markup: treat as text.
	}
	return z.nextText()
}

// nextText scans character data up to the next '<' that plausibly begins
// markup.
func (z *Tokenizer) nextText() Token {
	start := z.pos
	for z.pos < len(z.src) {
		i := strings.IndexByte(z.src[z.pos:], '<')
		if i < 0 {
			z.pos = len(z.src)
			break
		}
		z.pos += i
		if z.pos > start && z.looksLikeMarkup(z.pos) {
			break
		}
		if z.pos == start && z.looksLikeMarkup(z.pos) {
			break
		}
		z.pos++ // consume the '<' as literal text
	}
	return Token{Type: TextToken, Data: unescape(z.src[start:z.pos])}
}

// looksLikeMarkup reports whether the '<' at index i begins a tag, comment,
// or doctype (as opposed to a literal less-than sign in text).
func (z *Tokenizer) looksLikeMarkup(i int) bool {
	if i+1 >= len(z.src) {
		return false
	}
	c := z.src[i+1]
	return isAlpha(c) || c == '/' || c == '!' || c == '?'
}

// nextMarkup consumes a tag/comment/doctype at the current position.
// It reports ok=false if the '<' does not actually begin markup.
func (z *Tokenizer) nextMarkup() (Token, bool) {
	if !z.looksLikeMarkup(z.pos) {
		return Token{}, false
	}
	c := z.src[z.pos+1]
	switch {
	case c == '!':
		if strings.HasPrefix(z.src[z.pos:], "<!--") {
			return z.nextComment(), true
		}
		return z.nextDoctype(), true
	case c == '?':
		// Processing instruction (e.g. <?xml ...?>): skip to '>'.
		end := strings.IndexByte(z.src[z.pos:], '>')
		if end < 0 {
			z.pos = len(z.src)
		} else {
			z.pos += end + 1
		}
		return Token{Type: CommentToken, Data: ""}, true
	case c == '/':
		return z.nextEndTag(), true
	default:
		return z.nextStartTag(), true
	}
}

func (z *Tokenizer) nextComment() Token {
	z.pos += 4 // consume "<!--"
	end := strings.Index(z.src[z.pos:], "-->")
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + 3
	}
	return Token{Type: CommentToken, Data: body}
}

func (z *Tokenizer) nextDoctype() Token {
	z.pos += 2 // consume "<!"
	end := strings.IndexByte(z.src[z.pos:], '>')
	var body string
	if end < 0 {
		body = z.src[z.pos:]
		z.pos = len(z.src)
	} else {
		body = z.src[z.pos : z.pos+end]
		z.pos += end + 1
	}
	return Token{Type: DoctypeToken, Data: strings.TrimSpace(body)}
}

func (z *Tokenizer) nextEndTag() Token {
	z.pos += 2 // consume "</"
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	name := lowerASCII(z.src[start:z.pos])
	// Skip to '>'.
	if i := strings.IndexByte(z.src[z.pos:], '>'); i >= 0 {
		z.pos += i + 1
	} else {
		z.pos = len(z.src)
	}
	return Token{Type: EndTagToken, Data: name}
}

func (z *Tokenizer) nextStartTag() Token {
	z.pos++ // consume '<'
	start := z.pos
	for z.pos < len(z.src) && isNameChar(z.src[z.pos]) {
		z.pos++
	}
	name := lowerASCII(z.src[start:z.pos])
	tok := Token{Type: StartTagToken, Data: name}

	for {
		z.skipSpace()
		if z.pos >= len(z.src) {
			break
		}
		c := z.src[z.pos]
		if c == '>' {
			z.pos++
			break
		}
		if c == '/' {
			z.pos++
			z.skipSpace()
			if z.pos < len(z.src) && z.src[z.pos] == '>' {
				z.pos++
				tok.Type = SelfClosingTagToken
			}
			break
		}
		key, val, ok := z.nextAttr()
		if !ok {
			break
		}
		tok.Attr = append(tok.Attr, Attribute{Key: key, Val: val})
	}

	if tok.Type == StartTagToken && IsRawText(name) {
		z.rawTag = name
	}
	return tok
}

// nextAttr parses one attribute. ok=false means no progress could be made.
func (z *Tokenizer) nextAttr() (key, val string, ok bool) {
	start := z.pos
	for z.pos < len(z.src) {
		c := z.src[z.pos]
		if c == '=' || c == '>' || c == '/' || isSpace(c) {
			break
		}
		z.pos++
	}
	if z.pos == start {
		// Unparseable character; skip it to guarantee progress.
		z.pos++
		return "", "", false
	}
	key = lowerASCII(z.src[start:z.pos])
	z.skipSpace()
	if z.pos >= len(z.src) || z.src[z.pos] != '=' {
		return key, "", true
	}
	z.pos++ // consume '='
	z.skipSpace()
	if z.pos >= len(z.src) {
		return key, "", true
	}
	switch q := z.src[z.pos]; q {
	case '"', '\'':
		z.pos++
		vstart := z.pos
		i := strings.IndexByte(z.src[z.pos:], q)
		if i < 0 {
			val = z.src[vstart:]
			z.pos = len(z.src)
		} else {
			val = z.src[vstart : vstart+i]
			z.pos += i + 1
		}
	default:
		vstart := z.pos
		for z.pos < len(z.src) {
			c := z.src[z.pos]
			if isSpace(c) || c == '>' {
				break
			}
			z.pos++
		}
		val = z.src[vstart:z.pos]
	}
	return key, unescape(val), true
}

// rawClosers precomputes the "</name" search needle for each raw-text
// element, so the scan loop below allocates nothing.
var rawClosers = map[string]string{
	"script": "</script", "style": "</style", "textarea": "</textarea",
	"title": "</title", "noscript": "</noscript",
}

// nextRawText scans the content of a raw-text element up to its end tag.
func (z *Tokenizer) nextRawText() Token {
	closer, ok := rawClosers[z.rawTag]
	if !ok {
		closer = "</" + z.rawTag
	}
	i := indexFoldASCII(z.src[z.pos:], closer)
	if i < 0 {
		text := z.src[z.pos:]
		z.pos = len(z.src)
		z.rawTag = ""
		return Token{Type: TextToken, Data: text}
	}
	if i == 0 {
		// Emit the end tag itself.
		name := z.rawTag
		z.rawTag = ""
		z.pos += len(closer)
		if j := strings.IndexByte(z.src[z.pos:], '>'); j >= 0 {
			z.pos += j + 1
		} else {
			z.pos = len(z.src)
		}
		return Token{Type: EndTagToken, Data: name}
	}
	text := z.src[z.pos : z.pos+i]
	z.pos += i
	return Token{Type: TextToken, Data: text}
}

func (z *Tokenizer) skipSpace() {
	for z.pos < len(z.src) && isSpace(z.src[z.pos]) {
		z.pos++
	}
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f'
}

func isAlpha(c byte) bool {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isNameChar(c byte) bool {
	return isAlpha(c) || (c >= '0' && c <= '9') || c == '-' || c == '_' || c == ':'
}

// lowerASCII lowercases a tag/attribute name. Names are scanned with
// isNameChar, so they are pure ASCII; the common already-lowercase case
// returns s unchanged without allocating.
func lowerASCII(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 'A' && c <= 'Z' {
			b := []byte(s)
			for j := i; j < len(b); j++ {
				if b[j] >= 'A' && b[j] <= 'Z' {
					b[j] += 'a' - 'A'
				}
			}
			return string(b)
		}
	}
	return s
}

// indexFoldASCII returns the index of the first ASCII-case-insensitive
// occurrence of sub (which must be lowercase ASCII) in s, or -1. It
// replaces lowercasing the entire remaining source per raw-text scan.
func indexFoldASCII(s, sub string) int {
	if len(sub) == 0 {
		return 0
	}
	c0 := sub[0]
	u0 := c0
	if c0 >= 'a' && c0 <= 'z' {
		u0 = c0 - ('a' - 'A')
	}
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i] != c0 && s[i] != u0 {
			continue
		}
		match := true
		for j := 1; j < len(sub); j++ {
			c := s[i+j]
			if c >= 'A' && c <= 'Z' {
				c += 'a' - 'A'
			}
			if c != sub[j] {
				match = false
				break
			}
		}
		if match {
			return i
		}
	}
	return -1
}
