package htmlx

import (
	"strings"
)

// NodeType identifies the kind of a tree node.
type NodeType int

const (
	// DocumentNode is the root of a parsed tree.
	DocumentNode NodeType = iota
	// ElementNode is an HTML element.
	ElementNode
	// TextNode is character data.
	TextNode
	// CommentNode is an HTML comment.
	CommentNode
	// DoctypeNode is a <!DOCTYPE> declaration.
	DoctypeNode
)

// Node is a node in the parsed HTML tree.
type Node struct {
	Type NodeType
	// Data is the element name (lowercased) for elements, or the text for
	// text/comment nodes.
	Data string
	Attr []Attribute

	Parent, FirstChild, LastChild, PrevSibling, NextSibling *Node
}

// AppendChild adds c as the last child of n.
func (n *Node) AppendChild(c *Node) {
	c.Parent = n
	c.PrevSibling = n.LastChild
	c.NextSibling = nil
	if n.LastChild != nil {
		n.LastChild.NextSibling = c
	} else {
		n.FirstChild = c
	}
	n.LastChild = c
}

// AttrVal returns the value of the named attribute and whether it exists.
func (n *Node) AttrVal(key string) (string, bool) {
	for _, a := range n.Attr {
		if strings.EqualFold(a.Key, key) {
			return a.Val, true
		}
	}
	return "", false
}

// ID returns the element's id attribute (or "").
func (n *Node) ID() string {
	v, _ := n.AttrVal("id")
	return v
}

// HasClass reports whether the element's class list contains name.
func (n *Node) HasClass(name string) bool {
	v, ok := n.AttrVal("class")
	if !ok {
		return false
	}
	for _, f := range strings.Fields(v) {
		if strings.EqualFold(f, name) {
			return true
		}
	}
	return false
}

// IsElement reports whether n is an element with the given (lowercase) name.
func (n *Node) IsElement(name string) bool {
	return n.Type == ElementNode && n.Data == name
}

// Walk visits n and all its descendants in document order. If fn returns
// false for a node, that node's subtree is skipped.
func (n *Node) Walk(fn func(*Node) bool) {
	if !fn(n) {
		return
	}
	for c := n.FirstChild; c != nil; c = c.NextSibling {
		c.Walk(fn)
	}
}

// Text returns the concatenated text of the subtree with runs of whitespace
// collapsed to single spaces, skipping script/style content.
func (n *Node) Text() string {
	var b strings.Builder
	n.Walk(func(c *Node) bool {
		if c.Type == ElementNode && (c.Data == "script" || c.Data == "style") {
			return false
		}
		if c.Type == TextNode {
			b.WriteString(c.Data)
			b.WriteByte(' ')
		}
		return true
	})
	return strings.Join(strings.Fields(b.String()), " ")
}

// Find returns the first descendant element (in document order) for which
// match returns true, or nil.
func (n *Node) Find(match func(*Node) bool) *Node {
	var found *Node
	n.Walk(func(c *Node) bool {
		if found != nil {
			return false
		}
		if c != n && c.Type == ElementNode && match(c) {
			found = c
			return false
		}
		return true
	})
	return found
}

// FindAll returns all descendant elements for which match returns true.
func (n *Node) FindAll(match func(*Node) bool) []*Node {
	var out []*Node
	n.Walk(func(c *Node) bool {
		if c != n && c.Type == ElementNode && match(c) {
			out = append(out, c)
		}
		return true
	})
	return out
}

// ByTag returns all descendant elements with the given name.
func (n *Node) ByTag(name string) []*Node {
	name = strings.ToLower(name)
	return n.FindAll(func(c *Node) bool { return c.Data == name })
}

// ByID returns the first descendant with the given id, or nil.
func (n *Node) ByID(id string) *Node {
	return n.Find(func(c *Node) bool { return c.ID() == id })
}

// Ancestor returns the nearest ancestor element with the given name, or nil.
func (n *Node) Ancestor(name string) *Node {
	for p := n.Parent; p != nil; p = p.Parent {
		if p.IsElement(name) {
			return p
		}
	}
	return nil
}

// Render serializes the subtree back to HTML. It is primarily a debugging
// and testing aid; entity escaping is minimal (&, <, > in text; quotes in
// attribute values).
func (n *Node) Render() string {
	var b strings.Builder
	n.render(&b)
	return b.String()
}

func (n *Node) render(b *strings.Builder) {
	switch n.Type {
	case DocumentNode:
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			c.render(b)
		}
	case TextNode:
		b.WriteString(escapeText(n.Data))
	case CommentNode:
		b.WriteString("<!--")
		b.WriteString(n.Data)
		b.WriteString("-->")
	case DoctypeNode:
		b.WriteString("<!")
		b.WriteString(n.Data)
		b.WriteString(">")
	case ElementNode:
		b.WriteByte('<')
		b.WriteString(n.Data)
		for _, a := range n.Attr {
			b.WriteByte(' ')
			b.WriteString(a.Key)
			b.WriteString(`="`)
			b.WriteString(escapeAttr(a.Val))
			b.WriteByte('"')
		}
		b.WriteByte('>')
		if IsVoid(n.Data) {
			return
		}
		for c := n.FirstChild; c != nil; c = c.NextSibling {
			c.render(b)
		}
		b.WriteString("</")
		b.WriteString(n.Data)
		b.WriteByte('>')
	}
}

func escapeText(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}

func escapeAttr(s string) string {
	r := strings.NewReplacer("&", "&amp;", `"`, "&quot;")
	return r.Replace(s)
}
