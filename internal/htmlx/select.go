package htmlx

import "strings"

// simpleSelector matches a single compound selector: tag, #id, .class,
// [attr], [attr=value], and combinations like "a.footer-link[href]".
type simpleSelector struct {
	tag     string
	id      string
	classes []string
	attrs   []attrCond
}

// attrCond is one [key] or [key=value] condition.
type attrCond struct {
	key      string
	value    string
	hasValue bool
}

func parseSimple(s string) simpleSelector {
	var sel simpleSelector
	// Split off [attr...] conditions first.
	for {
		open := strings.IndexByte(s, '[')
		if open < 0 {
			break
		}
		end := strings.IndexByte(s[open:], ']')
		if end < 0 {
			s = s[:open]
			break
		}
		body := s[open+1 : open+end]
		s = s[:open] + s[open+end+1:]
		cond := attrCond{key: strings.ToLower(strings.TrimSpace(body))}
		if eq := strings.IndexByte(body, '='); eq >= 0 {
			cond.key = strings.ToLower(strings.TrimSpace(body[:eq]))
			cond.value = strings.Trim(strings.TrimSpace(body[eq+1:]), `"'`)
			cond.hasValue = true
		}
		if cond.key != "" {
			sel.attrs = append(sel.attrs, cond)
		}
	}
	cur := &sel.tag
	var buf strings.Builder
	flush := func() {
		switch cur {
		case &sel.tag:
			sel.tag = buf.String()
		case &sel.id:
			sel.id = buf.String()
		default:
			if buf.Len() > 0 {
				sel.classes = append(sel.classes, buf.String())
			}
		}
		buf.Reset()
	}
	var classMode bool
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '#':
			flush()
			cur = &sel.id
			classMode = false
		case '.':
			flush()
			cur = nil
			classMode = true
		default:
			buf.WriteByte(s[i])
		}
	}
	if classMode {
		cur = nil
	}
	flush()
	// Node names are stored lowercase; folding the tag here keeps matches
	// a plain comparison per visited node.
	sel.tag = strings.ToLower(sel.tag)
	return sel
}

func (s simpleSelector) matches(n *Node) bool {
	if n.Type != ElementNode {
		return false
	}
	if s.tag != "" && s.tag != "*" && n.Data != s.tag {
		return false
	}
	if s.id != "" && n.ID() != s.id {
		return false
	}
	for _, c := range s.classes {
		if !n.HasClass(c) {
			return false
		}
	}
	for _, a := range s.attrs {
		v, ok := n.AttrVal(a.key)
		if !ok {
			return false
		}
		if a.hasValue && v != a.value {
			return false
		}
	}
	return true
}

// Select returns all descendants of n matching the selector, which supports
// tag names, #id, .class, [attr] / [attr=value] conditions, compounds
// ("a.nav[target=_blank]"), and the descendant combinator ("footer a").
// This is a small, predictable subset of CSS.
func Select(n *Node, selector string) []*Node {
	parts := strings.Fields(selector)
	if len(parts) == 0 {
		return nil
	}
	ctx := []*Node{n}
	for _, p := range parts {
		sel := parseSimple(p)
		var next []*Node
		seen := map[*Node]bool{}
		for _, c := range ctx {
			for _, m := range c.FindAll(sel.matches) {
				if !seen[m] {
					seen[m] = true
					next = append(next, m)
				}
			}
		}
		ctx = next
	}
	return ctx
}

// SelectFirst returns the first match of Select, or nil.
func SelectFirst(n *Node, selector string) *Node {
	m := Select(n, selector)
	if len(m) == 0 {
		return nil
	}
	return m[0]
}

// Links returns the href values of all <a> descendants, in document order,
// paired with their anchor text.
type Link struct {
	Href string
	Text string
}

// ExtractLinks collects every <a href> under n with its visible text.
func ExtractLinks(n *Node) []Link {
	var out []Link
	for _, a := range n.ByTag("a") {
		href, ok := a.AttrVal("href")
		if !ok || href == "" {
			continue
		}
		out = append(out, Link{Href: href, Text: a.Text()})
	}
	return out
}
