// Package core orchestrates the paper's end-to-end pipeline (Figure 1):
// build the study universe, resolve domains through (simulated) web
// search, crawl each domain for privacy pages, convert and segment the
// text, annotate every aspect through the chatbot, and persist one dataset
// record per domain — tracking the §3/§4 funnel counts along the way.
package core

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"aipan/internal/annotate"
	"aipan/internal/chatbot"
	"aipan/internal/crawler"
	"aipan/internal/engine"
	"aipan/internal/obs"
	"aipan/internal/risk"
	"aipan/internal/russell"
	"aipan/internal/store"
	"aipan/internal/textify"
	"aipan/internal/virtualweb"
	"aipan/internal/webgen"

	segpkg "aipan/internal/segment"
)

// Config parameterizes a pipeline run. The zero value runs the full
// AIPAN-3k reproduction against the synthetic web with the GPT-4-class
// simulated chatbot.
type Config struct {
	// Seed drives universe + web generation (default webgen.Seed).
	Seed int64
	// Bot is the annotation chatbot (default: sim GPT-4 behind a Client).
	Bot chatbot.Chatbot
	// HTTPClient fetches pages (default: in-process synthetic web).
	HTTPClient *http.Client
	// Workers bounds per-domain parallelism (default 8).
	Workers int
	// LLMConcurrency bounds in-flight chatbot calls across all workers
	// (default 4×Workers — each domain worker fans out its four annotation
	// aspects concurrently). Ignored when Bot is supplied: a caller-built
	// chatbot carries its own concurrency limit.
	LLMConcurrency int
	// Limit processes only the first N domains (0 = all).
	Limit int
	// DomainFilter, when set, restricts the run to the study domains the
	// filter admits, applied after Limit. The filtered list keeps
	// study-list (sorted-domain) order, so positional resume and
	// checkpointing work unchanged against the filtered list. The
	// distributed dispatcher uses this to hand a worker exactly one
	// store shard's domains.
	DomainFilter func(domain string) bool
	// UniverseDomains scales the study universe to N unique domains
	// (0 = the paper's 2,892). A scaled universe extends the synthetic
	// index with a long-tail sector mix and generates sites lazily —
	// only the company roster is held in memory, each site derived on
	// demand from the seed — so runs of 100k+ domains keep a flat
	// footprint. The default size is byte-identical to prior releases.
	UniverseDomains int
	// Window bounds the delivery lookahead: at most Window domain
	// outcomes are in flight or parked awaiting in-order delivery at
	// once (default 4×Workers, min Workers). The pipeline never holds
	// more than this many completed-but-undelivered records, whatever
	// the universe size.
	Window int
	// DiscardRecords drops the per-domain records from the returned
	// Result (Result.Records is nil): records stream to Store/Checkpoint
	// and the funnel accumulates incrementally, so a 100k-domain run's
	// memory stays flat instead of growing with the dataset. Requires a
	// Store or Checkpoint if the records are wanted afterwards.
	DiscardRecords bool
	// AnnotateOptions tune the annotator (glossary size, filters, ...).
	AnnotateOptions []annotate.Option
	// Crawler overrides crawl policy knobs (Client is filled in by the
	// pipeline).
	Crawler crawler.Config
	// Progress, when set, receives (stage, done, total) updates. The
	// callback is serialized under a mutex, so it need not be
	// goroutine-safe. For the "process" stage, done is cumulative —
	// resumed runs start at the checkpointed count, so a progress bar
	// drawn from these ticks always reflects overall completion — and
	// ticks arrive in strictly increasing done order. Every Run ends with
	// exactly one terminal (stage, total, total) tick, even on error or
	// cancellation, so consumers can close out their display
	// unconditionally. "checkpoint-error" is a pseudo-stage reported as
	// (0, 0) when a checkpoint append fails; it never carries the
	// terminal tick.
	Progress func(stage string, done, total int)
	// Checkpoint, when set, streams each completed record to this JSONL
	// file and, on start, skips domains already present in it — an
	// interrupted multi-hour crawl resumes where it stopped. The
	// checkpoint is stamped with the run Seed; resuming it under a
	// different seed is refused (the synthetic web, and therefore every
	// record, is a function of the seed — mixing seeds would silently
	// corrupt the dataset).
	Checkpoint string
	// Store, when set, overrides Checkpoint with a caller-supplied
	// backend (in-memory, sharded, ...). Completed records stream into
	// it, domains already present are skipped on start, and the caller
	// keeps ownership: the pipeline never closes it.
	Store store.Store
	// Registry receives all pipeline metrics — its own and those of the
	// crawler, chatbot client, and annotator it builds (default: the
	// process-wide obs.Default() registry). Tests pass a fresh registry
	// for isolation.
	Registry *obs.Registry
	// Logger, when set, receives structured run events, scoped per
	// component ("core", "crawler", ...). Nil disables logging. Every
	// line carries the run ID so interleaved multi-run streams separate.
	Logger *obs.Logger
	// RunID labels this run's logs, spans, and flight-recorder events
	// (default: obs.DeriveRunID(Seed) — seed-derived, so same-seed runs
	// carry the same ID and their telemetry is byte-comparable).
	RunID string
	// TraceExporter, when set, receives every completed span (see
	// obs.NewFileExporter). The caller owns Close. Unless
	// TelemetryTimings is set, spans export with deterministic IDs and
	// without wall-clock fields.
	TraceExporter obs.Exporter
	// Events, when set, receives one flight-recorder store.Event per
	// processed domain, in submission order (emitted from the serialized
	// delivery callback). The caller owns the sink's lifecycle.
	Events store.EventSink
	// TelemetryTimings includes wall-clock fields (span start/duration,
	// event latency class and stage millis) in exported telemetry. Off
	// by default so same-seed exports are byte-identical — the
	// determinism property check.sh's telemetry smoke asserts.
	TelemetryTimings bool
	// Clock is the time source for event timings (default
	// obs.SystemClock). Only read when TelemetryTimings is set.
	Clock obs.Clock
}

// Pipeline is a configured end-to-end run.
type Pipeline struct {
	cfg       Config
	gen       *webgen.Generator
	companies []russell.Company
	domains   []russell.DomainInfo
	corrected int
	crawler   *crawler.Crawler
	bot       chatbot.Chatbot
	annotator *annotate.Annotator
	reg       *obs.Registry
	log       *obs.Logger
	met       *pipeMetrics
	riskW     risk.Weights
	procStage *engine.Stage[russell.DomainInfo, domainOutcome]
	pageStage *engine.Stage[*crawler.Page, pageOutcome]
}

// pipeMetrics instruments the orchestration layer: throughput,
// checkpoint IO, and the end-of-run funnel snapshot. Dispatch backlog
// and in-flight counts come from the engine stages
// (aipan_engine_queue_depth, aipan_engine_inflight).
type pipeMetrics struct {
	domains    *obs.Counter
	ckptWrites *obs.Counter
	ckptErrors *obs.Counter
	funnel     *obs.GaugeVec // by stage
}

func newPipeMetrics(reg *obs.Registry) *pipeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &pipeMetrics{
		domains: reg.Counter("aipan_pipeline_domains_processed_total",
			"Domains fully processed (crawl through annotate) this process."),
		ckptWrites: reg.Counter("aipan_pipeline_checkpoint_writes_total",
			"Records appended to the checkpoint file."),
		ckptErrors: reg.Counter("aipan_pipeline_checkpoint_errors_total",
			"Failed checkpoint appends (also reported as the checkpoint-error progress pseudo-stage)."),
		funnel: reg.GaugeVec("aipan_funnel",
			"Figure 1 funnel counts from the most recently completed run, by stage.", "stage"),
	}
}

// setFunnel publishes every Funnel field as a gauge; values match the
// returned core.Result.Funnel exactly.
func (m *pipeMetrics) setFunnel(f Funnel) {
	m.funnel.With("companies").Set(float64(f.Companies))
	m.funnel.With("domains").Set(float64(f.Domains))
	m.funnel.With("search_corrected").Set(float64(f.SearchCorrected))
	m.funnel.With("crawl_ok").Set(float64(f.CrawlOK))
	m.funnel.With("extract_ok").Set(float64(f.ExtractOK))
	m.funnel.With("annotated").Set(float64(f.Annotated))
	m.funnel.With("avg_pages_crawled").Set(f.AvgPagesCrawled)
	m.funnel.With("avg_privacy_pages").Set(f.AvgPrivacyPages)
	m.funnel.With("well_known_policy").Set(float64(f.WellKnownPolicy))
	m.funnel.With("well_known_privacy").Set(float64(f.WellKnownPriv))
	m.funnel.With("median_words").Set(f.MedianWords)
	m.funnel.With("fallback_used").Set(float64(f.FallbackUsed))
}

// Funnel is the §3/§4 pipeline funnel.
type Funnel struct {
	Companies       int     // index constituents (paper: 2,916)
	Domains         int     // unique domains (2,892)
	SearchCorrected int     // first results fixed in review
	CrawlOK         int     // ≥1 potential privacy page, status <400 (2,648)
	ExtractOK       int     // successful text extraction (2,545)
	Annotated       int     // ≥1 annotation (2,529)
	AvgPagesCrawled float64 // fetched pages incl. homepage (5.1)
	AvgPrivacyPages float64 // deduped English privacy pages per crawl-OK domain (1.8)
	WellKnownPolicy int     // domains where /privacy-policy resolves (54.5%)
	WellKnownPriv   int     // domains where /privacy resolves (48.6%)
	MedianWords     float64 // median core policy length (2,671)
	FallbackUsed    int     // policies with ≥1 whole-text annotation fallback (708)
}

// Result is a completed run.
type Result struct {
	// Records holds one record per study domain, in domain order — nil
	// when the run was configured with DiscardRecords (the records then
	// live only in the configured store).
	Records []store.Record
	Funnel  Funnel
	// Trace is the per-run stage tree with aggregated wall times. It is
	// observability metadata, not dataset content: it is never persisted
	// alongside the records and is excluded from determinism
	// comparisons (span durations vary run to run).
	Trace *obs.TraceSummary
}

// New builds a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Seed == 0 {
		cfg.Seed = webgen.Seed
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.LLMConcurrency <= 0 {
		cfg.LLMConcurrency = 4 * cfg.Workers
	}
	if cfg.RunID == "" {
		cfg.RunID = obs.DeriveRunID(cfg.Seed)
	}
	if cfg.Clock == nil {
		cfg.Clock = obs.SystemClock
	}
	// Bind the run ID before any component logger is derived, so the
	// crawler's and annotator's lines carry it too.
	cfg.Logger = cfg.Logger.WithAttrs("run", cfg.RunID)
	p := &Pipeline{cfg: cfg, reg: cfg.Registry, log: cfg.Logger.With("core")}
	p.met = newPipeMetrics(cfg.Registry)
	// One weights table for the whole run: the flight recorder scores
	// every annotated record, and DefaultWeights allocates maps.
	p.riskW = risk.DefaultWeights()

	// Universe, domain resolution (§3.1), and the synthetic web — all a
	// deterministic function of (seed, universe size), shared across
	// pipelines.
	corp := corpusFor(cfg.Seed, cfg.UniverseDomains)
	p.companies = corp.companies
	p.domains = corp.domains
	p.corrected = corp.corrected
	p.gen = corp.gen

	client := cfg.HTTPClient
	if client == nil {
		client = virtualweb.NewTransport(p.gen).Client()
	}
	ccfg := cfg.Crawler
	ccfg.Client = client
	if ccfg.Registry == nil {
		ccfg.Registry = cfg.Registry
	}
	if ccfg.Logger == nil {
		ccfg.Logger = cfg.Logger
	}
	cr, err := crawler.New(ccfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p.crawler = cr

	// Chatbot + annotator.
	p.bot = cfg.Bot
	if p.bot == nil {
		p.bot = chatbot.NewClient(chatbot.NewSim(chatbot.GPT4Profile()),
			chatbot.WithConcurrency(cfg.LLMConcurrency), chatbot.WithCache(false),
			chatbot.WithRegistry(cfg.Registry))
	}
	// WithRegistry goes first so caller-supplied options can override it.
	aopts := append([]annotate.Option{annotate.WithRegistry(cfg.Registry)}, cfg.AnnotateOptions...)
	p.annotator = annotate.New(p.bot, aopts...)

	// The two engine stages this pipeline dispatches onto: domains fan
	// out across cfg.Workers, and each domain's privacy pages fan out
	// unbounded (page count per domain is small and each page is an
	// independent extract→segment→annotate chain; the chatbot client's
	// limiter is the real throttle).
	p.procStage = engine.NewStage(cfg.Registry, "process", engine.Policy{Workers: cfg.Workers},
		func(ctx context.Context, d russell.DomainInfo) (domainOutcome, error) {
			rec, ev := p.processDomain(ctx, d)
			p.met.domains.Inc()
			return domainOutcome{rec: rec, ev: ev}, nil
		})
	p.pageStage = engine.NewStage(cfg.Registry, "page", engine.Policy{Workers: engine.Unbounded},
		p.processPage)
	return p, nil
}

// Generator exposes the synthetic web (ground truth for validation).
func (p *Pipeline) Generator() *webgen.Generator { return p.gen }

// Domains exposes the resolved study domains.
func (p *Pipeline) Domains() []russell.DomainInfo { return p.domains }

// Bot exposes the chatbot in use.
func (p *Pipeline) Bot() chatbot.Chatbot { return p.bot }

// RunID exposes the run identifier stamped on this run's telemetry.
func (p *Pipeline) RunID() string { return p.cfg.RunID }

// Run executes the full pipeline.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	domains := p.domains
	if p.cfg.Limit > 0 && p.cfg.Limit < len(domains) {
		domains = domains[:p.cfg.Limit]
	}
	if p.cfg.DomainFilter != nil {
		kept := make([]russell.DomainInfo, 0, len(domains))
		for _, d := range domains {
			if p.cfg.DomainFilter(d.Domain) {
				kept = append(kept, d)
			}
		}
		domains = kept
	}
	// The streaming pipeline's fixed per-domain state: a funnel cell
	// (a few dozen bytes) always; the full record only when the caller
	// wants Result.Records. DiscardRecords is what keeps a 100k-domain
	// run's memory flat — records then exist only in flight (bounded by
	// Window) and in the store.
	cells := make([]FunnelCell, len(domains))
	var records []store.Record
	if !p.cfg.DiscardRecords {
		records = make([]store.Record, len(domains))
	}

	// One tracer per run; spans started anywhere below nest into its
	// stage tree, which is attached to the Result as Trace. With an
	// exporter configured, completed spans also stream to it — with
	// deterministic IDs unless the caller asked for wall timings.
	topts := []obs.TracerOption{obs.WithRunID(p.cfg.RunID), obs.WithTracerClock(p.cfg.Clock)}
	if p.cfg.TraceExporter != nil {
		topts = append(topts, obs.WithExporter(p.cfg.TraceExporter))
		if !p.cfg.TelemetryTimings {
			topts = append(topts, obs.WithDeterministicIDs(p.cfg.Seed))
		}
	}
	tracer := obs.NewTracer(p.reg, topts...)
	ctx = obs.WithTracer(ctx, tracer)
	ctx, runSpan := obs.StartSpan(ctx, "run")
	runEnded := false
	endRun := func() {
		if !runEnded {
			runEnded = true
			runSpan.End()
		}
	}
	defer endRun()

	// Progress bookkeeping. done is cumulative: a resumed run starts at
	// the checkpointed count so ticks report overall completion, and the
	// deferred finish() guarantees exactly one terminal
	// ("process", total, total) tick on every return path — early error,
	// cancellation, or a fully-resumed run with no work left — unless a
	// worker tick already reached done == total.
	var progressMu sync.Mutex
	var done int
	finalSent := false
	finish := func() {
		progressMu.Lock()
		defer progressMu.Unlock()
		if finalSent {
			return
		}
		finalSent = true
		if p.cfg.Progress != nil {
			p.cfg.Progress("process", len(domains), len(domains))
		}
	}
	defer finish()

	// Storage: a caller-supplied Store wins; otherwise Checkpoint names a
	// JSONL store the pipeline owns (and closes). Records stream in as
	// they complete and domains already present are skipped.
	st := p.cfg.Store
	if st == nil && p.cfg.Checkpoint != "" {
		js, err := store.OpenJSONL(p.cfg.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer js.Close()
		st = js
	}
	// Resume bookkeeping is positional: the study list is domain-sorted
	// (search.ResolveUniverse sorts it), so a binary search maps each
	// checkpointed record to its slot without holding a map of full
	// records — the store streams through once and only the cells (and,
	// in retained mode, the record slots) are kept.
	processed := make([]bool, len(domains))
	resumed := 0
	if st != nil {
		if err := p.stampSeed(st); err != nil {
			return nil, err
		}
		names := make([]string, len(domains))
		for i := range domains {
			names[i] = domains[i].Domain
		}
		err := st.Scan(func(r *store.Record) error {
			i := sort.SearchStrings(names, r.Domain)
			if i >= len(names) || names[i] != r.Domain {
				return nil // outside this run's (possibly limited) universe
			}
			if !processed[i] {
				resumed++
			}
			processed[i] = true
			cells[i] = CellOf(r)
			if records != nil {
				records[i] = *r
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	done = resumed
	p.log.Info("run starting", "domains", len(domains), "resumed", resumed,
		"workers", p.cfg.Workers, "llm_concurrency", p.cfg.LLMConcurrency)

	// The unprocessed tail, in submission order; todoIdx maps each item
	// back to its slot in the study list.
	var todo []russell.DomainInfo
	var todoIdx []int
	for i := range domains {
		if !processed[i] {
			todo = append(todo, domains[i])
			todoIdx = append(todoIdx, i)
		}
	}

	report := func(stage string, done, total int) {
		if p.cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		p.cfg.Progress(stage, done, total)
	}
	// deliver runs serialized and in submission order (the engine's
	// ordered-delivery contract), so checkpoint appends land in domain
	// order regardless of worker count and progress ticks are strictly
	// increasing without extra locking around the store.
	deliver := func(i int, out domainOutcome, _ error) {
		rec := &out.rec
		idx := todoIdx[i]
		cells[idx] = CellOf(rec)
		if records != nil {
			records[idx] = out.rec
		}
		if st != nil && ctx.Err() == nil {
			// Skip the write once the run is canceled: a domain
			// interrupted mid-processing produces a truncated record
			// that would poison the checkpoint and be trusted as
			// complete on resume.
			if err := st.Append(rec); err != nil {
				p.met.ckptErrors.Inc()
				p.log.Error("checkpoint append failed", "domain", rec.Domain, "err", err)
				report("checkpoint-error", 0, 0)
			} else {
				p.met.ckptWrites.Inc()
			}
		}
		if p.cfg.Events != nil && ctx.Err() == nil {
			// Emitting here — not in the worker — keeps the event
			// stream in submission order (deliver is serialized), which
			// is what makes same-seed event shards byte-identical.
			out.ev.Seq = idx
			if err := p.cfg.Events.Append(&out.ev); err != nil {
				p.log.Error("event append failed", "domain", rec.Domain, "err", err)
			}
		}
		progressMu.Lock()
		done++
		d := done
		if d == len(domains) {
			finalSent = true // this tick IS the terminal tick
		}
		if p.cfg.Progress != nil {
			p.cfg.Progress("process", d, len(domains))
		}
		progressMu.Unlock()
	}
	// Dispatch through the bounded stream: the stage holds at most
	// window outcomes in flight or parked for in-order delivery, so the
	// producer→stage→sink chain runs in constant memory however long the
	// study list is.
	window := p.cfg.Window
	if window <= 0 {
		window = 4 * p.cfg.Workers
	}
	if window < p.cfg.Workers {
		window = p.cfg.Workers
	}
	item := func(i int) russell.DomainInfo { return todo[i] }
	if err := p.procStage.StreamDeliver(ctx, len(todo), window, item, deliver); err != nil {
		progressMu.Lock()
		dispatched := done - resumed
		progressMu.Unlock()
		p.log.Warn("run canceled", "dispatched", dispatched, "domains", len(domains))
		return nil, err
	}
	endRun()

	res := &Result{Records: records}
	res.Funnel = p.funnelFromCells(cells)
	p.met.setFunnel(res.Funnel)
	res.Trace = tracer.Summary()
	p.log.Info("run complete", "domains", len(domains),
		"crawl_ok", res.Funnel.CrawlOK, "extract_ok", res.Funnel.ExtractOK,
		"annotated", res.Funnel.Annotated)
	return res, nil
}

// stampSeed enforces the checkpoint/seed contract on store backends that
// carry metadata: a store stamped by a run with a different seed refuses
// to resume (every record is a deterministic function of the seed, so
// mixing seeds would silently corrupt the dataset), and an unstamped
// store is stamped with this run's seed before any record is appended.
func (p *Pipeline) stampSeed(st store.Store) error {
	ms, ok := st.(store.MetaStore)
	if !ok {
		return nil
	}
	m, stamped, err := ms.Meta()
	if err != nil {
		return fmt.Errorf("core: reading store metadata: %w", err)
	}
	if stamped && m.Seed != p.cfg.Seed {
		return fmt.Errorf("core: checkpoint was written by a run with seed %d; refusing to resume it with seed %d (use the original seed or start a fresh checkpoint)",
			m.Seed, p.cfg.Seed)
	}
	if !stamped {
		m.Seed = p.cfg.Seed
		if err := ms.SetMeta(m); err != nil {
			return fmt.Errorf("core: stamping store metadata: %w", err)
		}
	}
	return nil
}

// ProcessDomains runs crawl → extract → annotate for a specific domain
// subset (used by the §6 model-comparison harness), sequentially.
func (p *Pipeline) ProcessDomains(ctx context.Context, domains []string) ([]store.Record, error) {
	byDomain := map[string]russell.DomainInfo{}
	for _, d := range p.domains {
		byDomain[d.Domain] = d
	}
	var out []store.Record
	for _, dom := range domains {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		info, ok := byDomain[dom]
		if !ok {
			return nil, fmt.Errorf("core: domain %q is not in the study universe", dom)
		}
		rec, _ := p.processDomain(ctx, info)
		out = append(out, rec)
	}
	return out, nil
}

// domainOutcome pairs a domain's dataset record with its flight-recorder
// event; the engine carries both to the serialized delivery callback,
// which appends them to the store and the event sink respectively.
type domainOutcome struct {
	rec store.Record
	ev  store.Event
}

// toAspectOutcomes converts the annotator's per-aspect stats into the
// flight recorder's persisted form.
func toAspectOutcomes(in []annotate.AspectStats) []store.AspectOutcome {
	if len(in) == 0 {
		return nil
	}
	out := make([]store.AspectOutcome, len(in))
	for i, a := range in {
		out[i] = store.AspectOutcome{
			Aspect:      a.Aspect,
			Annotations: a.Annotations,
			Dropped:     a.Dropped,
			Fallback:    a.Fallback,
		}
	}
	return out
}

// latencyClass buckets a domain's wall time for the flight recorder.
func latencyClass(d time.Duration) string {
	switch {
	case d < 100*time.Millisecond:
		return "fast"
	case d < time.Second:
		return "ok"
	}
	return "slow"
}

// processDomain runs crawl → extract → annotate for one domain,
// producing its dataset record and flight-recorder event. Wall-clock
// fields are only measured (and the clock only read) when
// TelemetryTimings is on, keeping the default event stream a pure
// function of the seed.
func (p *Pipeline) processDomain(ctx context.Context, d russell.DomainInfo) (store.Record, store.Event) {
	if !p.cfg.TelemetryTimings {
		return p.domainWork(ctx, d, nil)
	}
	start := p.cfg.Clock()
	stages := map[string]int64{}
	rec, ev := p.domainWork(ctx, d, stages)
	wall := p.cfg.Clock().Sub(start)
	ev.WallMillis = wall.Milliseconds()
	ev.LatencyClass = latencyClass(wall)
	ev.StageMillis = stages
	return rec, ev
}

// domainWork is processDomain's body; stages, when non-nil, receives
// per-stage wall millis.
func (p *Pipeline) domainWork(ctx context.Context, d russell.DomainInfo, stages map[string]int64) (store.Record, store.Event) {
	rec := store.Record{
		Domain:       d.Domain,
		Company:      d.Companies[0].Name,
		Sector:       d.Sector,
		SectorAbbrev: russell.Abbrev(d.Sector),
	}
	for _, c := range d.Companies {
		rec.Tickers = append(rec.Tickers, c.Ticker)
	}
	sort.Strings(rec.Tickers)
	ev := store.Event{RunID: p.cfg.RunID, Domain: d.Domain, Sector: d.Sector}

	ctx, dspan := obs.StartSpanWith(ctx, "domain", obs.A("domain", d.Domain))
	defer dspan.End()

	cctx, cspan := obs.StartSpan(ctx, "crawl")
	var crawlStart time.Time
	if stages != nil {
		crawlStart = p.cfg.Clock()
	}
	cres := p.crawler.CrawlDomain(cctx, d.Domain)
	if stages != nil {
		stages["crawl"] = p.cfg.Clock().Sub(crawlStart).Milliseconds()
	}
	cspan.End()
	rec.Crawl = store.CrawlInfo{
		Success:          cres.Success,
		PagesFetched:     cres.PagesFetched(),
		PrivacyPages:     len(cres.PrivacyPages),
		Duplicates:       cres.DuplicateCount,
		NonEnglish:       cres.NonEnglish,
		PDFs:             cres.PDFCount,
		WellKnownPolicy:  cres.WellKnownPolicyOK,
		WellKnownPrivacy: cres.WellKnownPrivacyOK,
		Error:            cres.HomeErr,
	}
	ev.FetchStatus = cres.HomeStatus()
	ev.FetchClass = cres.HomeClass()
	ev.PagesFetched = cres.PagesFetched()
	ev.PolicyPages = len(cres.PrivacyPages)
	if cres.HomeErr != "" {
		ev.Errors = append(ev.Errors, "crawl: "+cres.HomeErr)
	}
	switch {
	case len(cres.PrivacyPages) > 0:
		ev.Language = "en"
	case cres.NonEnglish > 0:
		// Every candidate was filtered as non-English — the §3.1
		// language-based exclusion.
		ev.Language = "non-english"
	}
	if !cres.Success || len(cres.PrivacyPages) == 0 {
		if !cres.Success {
			ev.Outcome = store.OutcomeCrawlFailed
		} else {
			ev.Outcome = store.OutcomeNoPolicy
		}
		return rec, ev
	}

	// Extract + segment + annotate each privacy page — concurrently on the
	// page stage, since pages are independent — then fold the outcomes in
	// page order so every aggregate (coreWords sum, first-wins main-page
	// tie break, merge input order) matches the sequential loop byte for
	// byte. The whole-text annotation fallback is reported for the
	// domain's main policy page only (§3.2.2 counts fallbacks per policy;
	// auxiliary choices/cookie pages always fall back for their missing
	// aspects and would swamp the statistic).
	pages := make([]*crawler.Page, len(cres.PrivacyPages))
	for pi := range cres.PrivacyPages {
		pages[pi] = &cres.PrivacyPages[pi]
	}
	outcomes, _ := p.pageStage.Map(ctx, pages)

	var pageAnns [][]annotate.Annotation
	fallbacks := map[string]bool{}
	coreWords := 0
	mainWords := -1
	anySuccess, anyFallbackSeg := false, false
	for pi := range outcomes {
		out := &outcomes[pi]
		if !out.segOK {
			continue
		}
		anySuccess = true
		anyFallbackSeg = anyFallbackSeg || out.usedFallback
		coreWords += out.pageWords
		ev.Segments += out.segSections
		ev.Clauses += out.segLines
		if !out.annOK {
			continue
		}
		pageAnns = append(pageAnns, out.anns)
		if out.pageWords > mainWords {
			mainWords = out.pageWords
			fallbacks = map[string]bool{}
			for a := range out.annFallbacks {
				fallbacks[a] = true
			}
			// The main policy page also supplies the event's per-aspect
			// breakdown (auxiliary pages would swamp it, same rationale
			// as the fallback accounting above).
			ev.Aspects = toAspectOutcomes(out.aspects)
		}
	}
	rec.Extraction = store.ExtractionInfo{
		Success:      anySuccess,
		UsedFallback: anyFallbackSeg,
		CoreWords:    coreWords,
	}
	ev.Words = coreWords
	if !anySuccess {
		ev.Outcome = store.OutcomeExtractFailed
		ev.Errors = append(ev.Errors, "extract: no privacy page segmented")
		return rec, ev
	}
	rec.Annotations = annotate.Merge(pageAnns...)
	for a := range fallbacks {
		rec.AnnotationFallback = append(rec.AnnotationFallback, a)
	}
	sort.Strings(rec.AnnotationFallback)

	ev.Annotations = len(rec.Annotations)
	for i := range rec.Annotations {
		if !rec.Annotations[i].Novel {
			ev.TaxonomyHits++
		}
	}
	if len(rec.Annotations) == 0 {
		ev.Outcome = store.OutcomeAnnotateFailed
		ev.Errors = append(ev.Errors, "annotate: no annotations kept")
		return rec, ev
	}
	ev.Outcome = store.OutcomeAnnotated
	ev.RiskScore = risk.ScoreRecord(&rec, p.riskW).Total
	return rec, ev
}

// pageOutcome is one privacy page's extract → segment → annotate result.
type pageOutcome struct {
	segOK        bool
	usedFallback bool
	pageWords    int
	segSections  int
	segLines     int
	annOK        bool
	anns         []annotate.Annotation
	annFallbacks map[string]bool
	aspects      []annotate.AspectStats
}

// processPage is the page stage's unit of work: render, segment, and
// annotate one privacy page. Per-page failures fold into the outcome (a
// page that fails to segment or annotate simply contributes nothing), so
// the stage function never reports an error.
func (p *Pipeline) processPage(ctx context.Context, page *crawler.Page) (pageOutcome, error) {
	var out pageOutcome
	pctx, pspan := obs.StartSpanWith(ctx, "page", obs.A("path", page.Path))
	defer pspan.End()
	doc := textify.Render(parseHTML(page.Body))
	sctx, sspan := obs.StartSpan(pctx, "segment")
	seg, err := segpkg.Segment(sctx, p.bot, doc)
	sspan.End()
	if err != nil || !seg.Success() {
		return out, nil
	}
	out.segOK = true
	out.usedFallback = seg.UsedFallback
	out.pageWords = seg.CoreWordCount()
	out.segSections = seg.SectionCount()
	out.segLines = seg.LineCount()
	actx, aspan := obs.StartSpan(pctx, "annotate")
	ares, err := p.annotator.Annotate(actx, doc, seg)
	aspan.End()
	if err != nil {
		return out, nil
	}
	out.annOK = true
	out.anns = ares.Annotations
	out.annFallbacks = ares.FallbackUsed
	out.aspects = ares.Aspects
	return out, nil
}

// The Figure 1 / §3.1 / §4 funnel aggregation lives in funnel.go: each
// record reduces to a fixed-size FunnelCell as it is delivered (or
// resumed), and funnelFromCells folds the cells in study-list order —
// identical arithmetic whether records were retained or discarded.
