// Package core orchestrates the paper's end-to-end pipeline (Figure 1):
// build the study universe, resolve domains through (simulated) web
// search, crawl each domain for privacy pages, convert and segment the
// text, annotate every aspect through the chatbot, and persist one dataset
// record per domain — tracking the §3/§4 funnel counts along the way.
package core

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"

	"aipan/internal/annotate"
	"aipan/internal/chatbot"
	"aipan/internal/crawler"
	"aipan/internal/obs"
	"aipan/internal/russell"
	"aipan/internal/stats"
	"aipan/internal/store"
	"aipan/internal/textify"
	"aipan/internal/virtualweb"
	"aipan/internal/webgen"

	segpkg "aipan/internal/segment"
)

// Config parameterizes a pipeline run. The zero value runs the full
// AIPAN-3k reproduction against the synthetic web with the GPT-4-class
// simulated chatbot.
type Config struct {
	// Seed drives universe + web generation (default webgen.Seed).
	Seed int64
	// Bot is the annotation chatbot (default: sim GPT-4 behind a Client).
	Bot chatbot.Chatbot
	// HTTPClient fetches pages (default: in-process synthetic web).
	HTTPClient *http.Client
	// Workers bounds per-domain parallelism (default 8).
	Workers int
	// LLMConcurrency bounds in-flight chatbot calls across all workers
	// (default 4×Workers — each domain worker fans out its four annotation
	// aspects concurrently). Ignored when Bot is supplied: a caller-built
	// chatbot carries its own concurrency limit.
	LLMConcurrency int
	// Limit processes only the first N domains (0 = all 2,892).
	Limit int
	// AnnotateOptions tune the annotator (glossary size, filters, ...).
	AnnotateOptions []annotate.Option
	// Crawler overrides crawl policy knobs (Client is filled in by the
	// pipeline).
	Crawler crawler.Config
	// Progress, when set, receives (stage, done, total) updates. The
	// callback is serialized under a mutex, so it need not be
	// goroutine-safe. For the "process" stage, done is cumulative —
	// resumed runs start at the checkpointed count, so a progress bar
	// drawn from these ticks always reflects overall completion — and
	// ticks arrive in strictly increasing done order. Every Run ends with
	// exactly one terminal (stage, total, total) tick, even on error or
	// cancellation, so consumers can close out their display
	// unconditionally. "checkpoint-error" is a pseudo-stage reported as
	// (0, 0) when a checkpoint append fails; it never carries the
	// terminal tick.
	Progress func(stage string, done, total int)
	// Checkpoint, when set, streams each completed record to this JSONL
	// file and, on start, skips domains already present in it — an
	// interrupted multi-hour crawl resumes where it stopped.
	Checkpoint string
	// Registry receives all pipeline metrics — its own and those of the
	// crawler, chatbot client, and annotator it builds (default: the
	// process-wide obs.Default() registry). Tests pass a fresh registry
	// for isolation.
	Registry *obs.Registry
	// Logger, when set, receives structured run events, scoped per
	// component ("core", "crawler", ...). Nil disables logging.
	Logger *obs.Logger
}

// Pipeline is a configured end-to-end run.
type Pipeline struct {
	cfg       Config
	gen       *webgen.Generator
	companies []russell.Company
	domains   []russell.DomainInfo
	corrected int
	crawler   *crawler.Crawler
	bot       chatbot.Chatbot
	annotator *annotate.Annotator
	reg       *obs.Registry
	log       *obs.Logger
	met       *pipeMetrics
}

// pipeMetrics instruments the orchestration layer: dispatch backlog,
// throughput, checkpoint IO, and the end-of-run funnel snapshot.
type pipeMetrics struct {
	queueDepth *obs.Gauge
	domains    *obs.Counter
	ckptWrites *obs.Counter
	ckptErrors *obs.Counter
	funnel     *obs.GaugeVec // by stage
}

func newPipeMetrics(reg *obs.Registry) *pipeMetrics {
	if reg == nil {
		reg = obs.Default()
	}
	return &pipeMetrics{
		queueDepth: reg.Gauge("aipan_pipeline_queue_depth",
			"Domains waiting to be dispatched to a worker."),
		domains: reg.Counter("aipan_pipeline_domains_processed_total",
			"Domains fully processed (crawl through annotate) this process."),
		ckptWrites: reg.Counter("aipan_pipeline_checkpoint_writes_total",
			"Records appended to the checkpoint file."),
		ckptErrors: reg.Counter("aipan_pipeline_checkpoint_errors_total",
			"Failed checkpoint appends (also reported as the checkpoint-error progress pseudo-stage)."),
		funnel: reg.GaugeVec("aipan_funnel",
			"Figure 1 funnel counts from the most recently completed run, by stage.", "stage"),
	}
}

// setFunnel publishes every Funnel field as a gauge; values match the
// returned core.Result.Funnel exactly.
func (m *pipeMetrics) setFunnel(f Funnel) {
	m.funnel.With("companies").Set(float64(f.Companies))
	m.funnel.With("domains").Set(float64(f.Domains))
	m.funnel.With("search_corrected").Set(float64(f.SearchCorrected))
	m.funnel.With("crawl_ok").Set(float64(f.CrawlOK))
	m.funnel.With("extract_ok").Set(float64(f.ExtractOK))
	m.funnel.With("annotated").Set(float64(f.Annotated))
	m.funnel.With("avg_pages_crawled").Set(f.AvgPagesCrawled)
	m.funnel.With("avg_privacy_pages").Set(f.AvgPrivacyPages)
	m.funnel.With("well_known_policy").Set(float64(f.WellKnownPolicy))
	m.funnel.With("well_known_privacy").Set(float64(f.WellKnownPriv))
	m.funnel.With("median_words").Set(f.MedianWords)
	m.funnel.With("fallback_used").Set(float64(f.FallbackUsed))
}

// Funnel is the §3/§4 pipeline funnel.
type Funnel struct {
	Companies       int     // index constituents (paper: 2,916)
	Domains         int     // unique domains (2,892)
	SearchCorrected int     // first results fixed in review
	CrawlOK         int     // ≥1 potential privacy page, status <400 (2,648)
	ExtractOK       int     // successful text extraction (2,545)
	Annotated       int     // ≥1 annotation (2,529)
	AvgPagesCrawled float64 // fetched pages incl. homepage (5.1)
	AvgPrivacyPages float64 // deduped English privacy pages per crawl-OK domain (1.8)
	WellKnownPolicy int     // domains where /privacy-policy resolves (54.5%)
	WellKnownPriv   int     // domains where /privacy resolves (48.6%)
	MedianWords     float64 // median core policy length (2,671)
	FallbackUsed    int     // policies with ≥1 whole-text annotation fallback (708)
}

// Result is a completed run.
type Result struct {
	Records []store.Record
	Funnel  Funnel
	// Trace is the per-run stage tree with aggregated wall times. It is
	// observability metadata, not dataset content: it is never persisted
	// alongside the records and is excluded from determinism
	// comparisons (span durations vary run to run).
	Trace *obs.TraceSummary
}

// New builds a pipeline.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Seed == 0 {
		cfg.Seed = webgen.Seed
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.LLMConcurrency <= 0 {
		cfg.LLMConcurrency = 4 * cfg.Workers
	}
	p := &Pipeline{cfg: cfg, reg: cfg.Registry, log: cfg.Logger.With("core")}
	p.met = newPipeMetrics(cfg.Registry)

	// Universe, domain resolution (§3.1), and the synthetic web — all a
	// deterministic function of the seed, shared across pipelines.
	corp := corpusFor(cfg.Seed)
	p.companies = corp.companies
	p.domains = corp.domains
	p.corrected = corp.corrected
	p.gen = corp.gen

	client := cfg.HTTPClient
	if client == nil {
		client = virtualweb.NewTransport(p.gen).Client()
	}
	ccfg := cfg.Crawler
	ccfg.Client = client
	if ccfg.Registry == nil {
		ccfg.Registry = cfg.Registry
	}
	if ccfg.Logger == nil {
		ccfg.Logger = cfg.Logger
	}
	cr, err := crawler.New(ccfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p.crawler = cr

	// Chatbot + annotator.
	p.bot = cfg.Bot
	if p.bot == nil {
		p.bot = chatbot.NewClient(chatbot.NewSim(chatbot.GPT4Profile()),
			chatbot.WithConcurrency(cfg.LLMConcurrency), chatbot.WithCache(false),
			chatbot.WithRegistry(cfg.Registry))
	}
	// WithRegistry goes first so caller-supplied options can override it.
	aopts := append([]annotate.Option{annotate.WithRegistry(cfg.Registry)}, cfg.AnnotateOptions...)
	p.annotator = annotate.New(p.bot, aopts...)
	return p, nil
}

// Generator exposes the synthetic web (ground truth for validation).
func (p *Pipeline) Generator() *webgen.Generator { return p.gen }

// Domains exposes the resolved study domains.
func (p *Pipeline) Domains() []russell.DomainInfo { return p.domains }

// Bot exposes the chatbot in use.
func (p *Pipeline) Bot() chatbot.Chatbot { return p.bot }

// Run executes the full pipeline.
func (p *Pipeline) Run(ctx context.Context) (*Result, error) {
	domains := p.domains
	if p.cfg.Limit > 0 && p.cfg.Limit < len(domains) {
		domains = domains[:p.cfg.Limit]
	}
	records := make([]store.Record, len(domains))

	// One tracer per run; spans started anywhere below nest into its
	// stage tree, which is attached to the Result as Trace.
	tracer := obs.NewTracer(p.reg)
	ctx = obs.WithTracer(ctx, tracer)
	ctx, runSpan := obs.StartSpan(ctx, "run")
	runEnded := false
	endRun := func() {
		if !runEnded {
			runEnded = true
			runSpan.End()
		}
	}
	defer endRun()

	// Progress bookkeeping. done is cumulative: a resumed run starts at
	// the checkpointed count so ticks report overall completion, and the
	// deferred finish() guarantees exactly one terminal
	// ("process", total, total) tick on every return path — early error,
	// cancellation, or a fully-resumed run with no work left — unless a
	// worker tick already reached done == total.
	var progressMu sync.Mutex
	var done int
	finalSent := false
	finish := func() {
		progressMu.Lock()
		defer progressMu.Unlock()
		if finalSent {
			return
		}
		finalSent = true
		if p.cfg.Progress != nil {
			p.cfg.Progress("process", len(domains), len(domains))
		}
	}
	defer finish()

	// Resume from a checkpoint: pre-fill finished domains and skip them.
	processed := map[string]bool{}
	var appender *store.Appender
	if p.cfg.Checkpoint != "" {
		prior, err := store.LoadCheckpoint(p.cfg.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		byDomain := map[string]*store.Record{}
		for i := range prior {
			byDomain[prior[i].Domain] = &prior[i]
		}
		for i, d := range domains {
			if rec, ok := byDomain[d.Domain]; ok {
				records[i] = *rec
				processed[d.Domain] = true
			}
		}
		appender, err = store.OpenAppender(p.cfg.Checkpoint)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		defer appender.Close()
	}
	done = len(processed)
	p.log.Info("run starting", "domains", len(domains), "resumed", len(processed),
		"workers", p.cfg.Workers, "llm_concurrency", p.cfg.LLMConcurrency)

	jobs := make(chan int)
	var wg sync.WaitGroup
	// appendMu guards only the checkpoint write; progressMu serializes the
	// user's Progress callback (callbacks are not required to be
	// goroutine-safe). Keeping them separate means a slow checkpoint fsync
	// never blocks progress reporting, and vice versa.
	var appendMu sync.Mutex
	report := func(stage string, done, total int) {
		if p.cfg.Progress == nil {
			return
		}
		progressMu.Lock()
		defer progressMu.Unlock()
		p.cfg.Progress(stage, done, total)
	}
	for w := 0; w < p.cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				records[i] = p.processDomain(ctx, domains[i])
				p.met.domains.Inc()
				if appender != nil && ctx.Err() == nil {
					// Skip the write once the run is canceled: a domain
					// interrupted mid-processing produces a truncated record
					// that would poison the checkpoint and be trusted as
					// complete on resume.
					appendMu.Lock()
					err := appender.Append(&records[i])
					appendMu.Unlock()
					if err != nil {
						p.met.ckptErrors.Inc()
						p.log.Error("checkpoint append failed", "domain", domains[i].Domain, "err", err)
						report("checkpoint-error", 0, 0)
					} else {
						p.met.ckptWrites.Inc()
					}
				}
				progressMu.Lock()
				done++
				d := done
				if d == len(domains) {
					finalSent = true // this tick IS the terminal tick
				}
				if p.cfg.Progress != nil {
					p.cfg.Progress("process", d, len(domains))
				}
				progressMu.Unlock()
			}
		}()
	}
	pending := len(domains) - len(processed)
	p.met.queueDepth.Set(float64(pending))
	for i := range domains {
		if processed[domains[i].Domain] {
			continue
		}
		select {
		case jobs <- i:
			pending--
			p.met.queueDepth.Set(float64(pending))
		case <-ctx.Done():
			close(jobs)
			wg.Wait()
			p.log.Warn("run canceled", "dispatched", len(domains)-len(processed)-pending,
				"domains", len(domains))
			return nil, ctx.Err()
		}
	}
	close(jobs)
	wg.Wait()
	endRun()

	res := &Result{Records: records}
	res.Funnel = p.funnel(records)
	p.met.setFunnel(res.Funnel)
	res.Trace = tracer.Summary()
	p.log.Info("run complete", "domains", len(domains),
		"crawl_ok", res.Funnel.CrawlOK, "extract_ok", res.Funnel.ExtractOK,
		"annotated", res.Funnel.Annotated)
	return res, nil
}

// ProcessDomains runs crawl → extract → annotate for a specific domain
// subset (used by the §6 model-comparison harness), sequentially.
func (p *Pipeline) ProcessDomains(ctx context.Context, domains []string) ([]store.Record, error) {
	byDomain := map[string]russell.DomainInfo{}
	for _, d := range p.domains {
		byDomain[d.Domain] = d
	}
	var out []store.Record
	for _, dom := range domains {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		info, ok := byDomain[dom]
		if !ok {
			return nil, fmt.Errorf("core: domain %q is not in the study universe", dom)
		}
		out = append(out, p.processDomain(ctx, info))
	}
	return out, nil
}

// processDomain runs crawl → extract → annotate for one domain.
func (p *Pipeline) processDomain(ctx context.Context, d russell.DomainInfo) store.Record {
	rec := store.Record{
		Domain:       d.Domain,
		Company:      d.Companies[0].Name,
		Sector:       d.Sector,
		SectorAbbrev: russell.Abbrev(d.Sector),
	}
	for _, c := range d.Companies {
		rec.Tickers = append(rec.Tickers, c.Ticker)
	}
	sort.Strings(rec.Tickers)

	ctx, dspan := obs.StartSpan(ctx, "domain")
	defer dspan.End()

	cctx, cspan := obs.StartSpan(ctx, "crawl")
	cres := p.crawler.CrawlDomain(cctx, d.Domain)
	cspan.End()
	rec.Crawl = store.CrawlInfo{
		Success:          cres.Success,
		PagesFetched:     cres.PagesFetched(),
		PrivacyPages:     len(cres.PrivacyPages),
		Duplicates:       cres.DuplicateCount,
		NonEnglish:       cres.NonEnglish,
		PDFs:             cres.PDFCount,
		WellKnownPolicy:  cres.WellKnownPolicyOK,
		WellKnownPrivacy: cres.WellKnownPrivacyOK,
		Error:            cres.HomeErr,
	}
	if !cres.Success || len(cres.PrivacyPages) == 0 {
		return rec
	}

	// Extract + segment + annotate each privacy page — concurrently, since
	// pages are independent — then fold the outcomes in page order so every
	// aggregate (coreWords sum, first-wins main-page tie break, merge input
	// order) matches the sequential loop byte for byte. The whole-text
	// annotation fallback is reported for the domain's main policy page
	// only (§3.2.2 counts fallbacks per policy; auxiliary choices/cookie
	// pages always fall back for their missing aspects and would swamp the
	// statistic).
	type pageOutcome struct {
		segOK        bool
		usedFallback bool
		pageWords    int
		annOK        bool
		anns         []annotate.Annotation
		annFallbacks map[string]bool
	}
	outcomes := make([]pageOutcome, len(cres.PrivacyPages))
	var pwg sync.WaitGroup
	for pi := range cres.PrivacyPages {
		pwg.Add(1)
		go func(pi int) {
			defer pwg.Done()
			out := &outcomes[pi]
			pctx, pspan := obs.StartSpan(ctx, "page")
			defer pspan.End()
			doc := textify.Render(parseHTML(cres.PrivacyPages[pi].Body))
			sctx, sspan := obs.StartSpan(pctx, "segment")
			seg, err := segpkg.Segment(sctx, p.bot, doc)
			sspan.End()
			if err != nil || !seg.Success() {
				return
			}
			out.segOK = true
			out.usedFallback = seg.UsedFallback
			out.pageWords = seg.CoreWordCount()
			actx, aspan := obs.StartSpan(pctx, "annotate")
			ares, err := p.annotator.Annotate(actx, doc, seg)
			aspan.End()
			if err != nil {
				return
			}
			out.annOK = true
			out.anns = ares.Annotations
			out.annFallbacks = ares.FallbackUsed
		}(pi)
	}
	pwg.Wait()

	var pageAnns [][]annotate.Annotation
	fallbacks := map[string]bool{}
	coreWords := 0
	mainWords := -1
	anySuccess, anyFallbackSeg := false, false
	for pi := range outcomes {
		out := &outcomes[pi]
		if !out.segOK {
			continue
		}
		anySuccess = true
		anyFallbackSeg = anyFallbackSeg || out.usedFallback
		coreWords += out.pageWords
		if !out.annOK {
			continue
		}
		pageAnns = append(pageAnns, out.anns)
		if out.pageWords > mainWords {
			mainWords = out.pageWords
			fallbacks = map[string]bool{}
			for a := range out.annFallbacks {
				fallbacks[a] = true
			}
		}
	}
	rec.Extraction = store.ExtractionInfo{
		Success:      anySuccess,
		UsedFallback: anyFallbackSeg,
		CoreWords:    coreWords,
	}
	if !anySuccess {
		return rec
	}
	rec.Annotations = annotate.Merge(pageAnns...)
	for a := range fallbacks {
		rec.AnnotationFallback = append(rec.AnnotationFallback, a)
	}
	sort.Strings(rec.AnnotationFallback)
	return rec
}

// funnel aggregates the Figure 1 / §3.1 / §4 counts.
func (p *Pipeline) funnel(records []store.Record) Funnel {
	f := Funnel{
		Companies:       len(p.companies),
		Domains:         len(records),
		SearchCorrected: p.corrected,
	}
	var pages []float64
	var privacyPages []float64
	var words []float64
	for i := range records {
		r := &records[i]
		pages = append(pages, float64(r.Crawl.PagesFetched))
		if r.Crawl.Success {
			f.CrawlOK++
			privacyPages = append(privacyPages, float64(r.Crawl.PrivacyPages))
		}
		if r.Crawl.WellKnownPolicy {
			f.WellKnownPolicy++
		}
		if r.Crawl.WellKnownPrivacy {
			f.WellKnownPriv++
		}
		if r.Extraction.Success {
			f.ExtractOK++
			words = append(words, float64(r.Extraction.CoreWords))
		}
		if r.Annotated() {
			f.Annotated++
		}
		if len(r.AnnotationFallback) > 0 {
			f.FallbackUsed++
		}
	}
	f.AvgPagesCrawled = stats.Mean(pages)
	f.AvgPrivacyPages = stats.Mean(privacyPages)
	f.MedianWords = stats.Median(words)
	return f
}
