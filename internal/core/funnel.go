package core

import (
	"aipan/internal/stats"
	"aipan/internal/store"
)

// funnelCell is the fixed-size funnel contribution of one domain — the
// only thing the streaming pipeline retains per record. Cells are
// position-indexed by the domain's slot in the (sorted) study list, so
// the end-of-run aggregation visits them in exactly the order the
// retained-records path visits its record slice and every float sum
// reduces in the same order, whichever mode produced them.
type funnelCell struct {
	pages     float64
	privPages float64 // meaningful when crawlOK
	words     float64 // meaningful when extractOK
	crawlOK   bool
	wkPolicy  bool
	wkPriv    bool
	extractOK bool
	annotated bool
	fallback  bool
}

// cellOf reduces one record to its funnel contribution.
func cellOf(r *store.Record) funnelCell {
	return funnelCell{
		pages:     float64(r.Crawl.PagesFetched),
		privPages: float64(r.Crawl.PrivacyPages),
		words:     float64(r.Extraction.CoreWords),
		crawlOK:   r.Crawl.Success,
		wkPolicy:  r.Crawl.WellKnownPolicy,
		wkPriv:    r.Crawl.WellKnownPrivacy,
		extractOK: r.Extraction.Success,
		annotated: r.Annotated(),
		fallback:  len(r.AnnotationFallback) > 0,
	}
}

// funnelFromCells aggregates the Figure 1 / §3.1 / §4 counts from the
// per-domain cells.
func (p *Pipeline) funnelFromCells(cells []funnelCell) Funnel {
	f := Funnel{
		Companies:       len(p.companies),
		Domains:         len(cells),
		SearchCorrected: p.corrected,
	}
	var pages []float64
	var privacyPages []float64
	var words []float64
	for i := range cells {
		c := &cells[i]
		pages = append(pages, c.pages)
		if c.crawlOK {
			f.CrawlOK++
			privacyPages = append(privacyPages, c.privPages)
		}
		if c.wkPolicy {
			f.WellKnownPolicy++
		}
		if c.wkPriv {
			f.WellKnownPriv++
		}
		if c.extractOK {
			f.ExtractOK++
			words = append(words, c.words)
		}
		if c.annotated {
			f.Annotated++
		}
		if c.fallback {
			f.FallbackUsed++
		}
	}
	f.AvgPagesCrawled = stats.Mean(pages)
	f.AvgPrivacyPages = stats.Mean(privacyPages)
	f.MedianWords = stats.Median(words)
	return f
}
