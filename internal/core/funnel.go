package core

import (
	"aipan/internal/stats"
	"aipan/internal/store"
)

// FunnelCell is the fixed-size funnel contribution of one domain — the
// only thing the streaming pipeline retains per record. Cells are
// position-indexed by the domain's slot in the (sorted) study list, so
// the end-of-run aggregation visits them in exactly the order the
// retained-records path visits its record slice and every float sum
// reduces in the same order, whichever mode produced them. Workers of a
// distributed run ship cells to the coordinator (snake_case JSON), and
// the coordinator folds them in study-list order, so the aggregate is
// identical to a single-process run of the same seed.
type FunnelCell struct {
	Pages     float64 `json:"pages"`
	PrivPages float64 `json:"priv_pages,omitempty"` // meaningful when crawlOK
	Words     float64 `json:"words,omitempty"`      // meaningful when extractOK
	CrawlOK   bool    `json:"crawl_ok,omitempty"`
	WkPolicy  bool    `json:"wk_policy,omitempty"`
	WkPriv    bool    `json:"wk_priv,omitempty"`
	ExtractOK bool    `json:"extract_ok,omitempty"`
	Annotated bool    `json:"annotated,omitempty"`
	Fallback  bool    `json:"fallback,omitempty"`
}

// CellOf reduces one record to its funnel contribution.
func CellOf(r *store.Record) FunnelCell {
	return FunnelCell{
		Pages:     float64(r.Crawl.PagesFetched),
		PrivPages: float64(r.Crawl.PrivacyPages),
		Words:     float64(r.Extraction.CoreWords),
		CrawlOK:   r.Crawl.Success,
		WkPolicy:  r.Crawl.WellKnownPolicy,
		WkPriv:    r.Crawl.WellKnownPrivacy,
		ExtractOK: r.Extraction.Success,
		Annotated: r.Annotated(),
		Fallback:  len(r.AnnotationFallback) > 0,
	}
}

// FoldFunnel aggregates the Figure 1 / §3.1 / §4 counts from per-domain
// cells. cells must be in study-list (sorted-domain) order: the float
// means and medians reduce in slice order, and byte-identical funnel
// output across run modes depends on every mode folding the same order.
func FoldFunnel(companies, corrected int, cells []FunnelCell) Funnel {
	f := Funnel{
		Companies:       companies,
		Domains:         len(cells),
		SearchCorrected: corrected,
	}
	var pages []float64
	var privacyPages []float64
	var words []float64
	for i := range cells {
		c := &cells[i]
		pages = append(pages, c.Pages)
		if c.CrawlOK {
			f.CrawlOK++
			privacyPages = append(privacyPages, c.PrivPages)
		}
		if c.WkPolicy {
			f.WellKnownPolicy++
		}
		if c.WkPriv {
			f.WellKnownPriv++
		}
		if c.ExtractOK {
			f.ExtractOK++
			words = append(words, c.Words)
		}
		if c.Annotated {
			f.Annotated++
		}
		if c.Fallback {
			f.FallbackUsed++
		}
	}
	f.AvgPagesCrawled = stats.Mean(pages)
	f.AvgPrivacyPages = stats.Mean(privacyPages)
	f.MedianWords = stats.Median(words)
	return f
}

// funnelFromCells folds this pipeline's study parameters over the cells.
func (p *Pipeline) funnelFromCells(cells []FunnelCell) Funnel {
	return FoldFunnel(len(p.companies), p.corrected, cells)
}
