package core

import (
	"sync"

	"aipan/internal/russell"
	"aipan/internal/search"
	"aipan/internal/webgen"
)

// corpus is the deterministic study substrate for one (seed, size): the
// synthetic Russell-like universe, its search-resolved domains, and the
// generated web. Everything in it is a pure function of the key and
// read-only after construction, but building it costs roughly a third of
// a 50-domain pipeline run — so pipelines sharing a key share one corpus
// instead of regenerating the sites each.
//
// At the paper's default size the web is generated eagerly (the
// historical, byte-identical path). A scaled universe (Config.
// UniverseDomains) switches to the lazy generator: only the company
// roster is materialized, and each domain's site is derived on demand
// from the seed — which is what keeps a 100k-domain run's memory flat.
type corpus struct {
	seed      int64
	size      int // unique domains; 0 = the paper's default universe
	companies []russell.Company
	domains   []russell.DomainInfo
	corrected int
	gen       *webgen.Generator
}

var (
	corpusMu sync.Mutex
	// corpusLast caches the most recently built corpus only: repeated runs
	// almost always reuse one key, and a single entry bounds memory.
	corpusLast *corpus
)

// corpusFor returns the (possibly cached) corpus for seed at size unique
// domains (0 = the paper's 2,892-domain default).
func corpusFor(seed int64, size int) *corpus {
	if size == russell.NumDomains {
		size = 0 // the explicit paper size is the default universe
	}
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if corpusLast != nil && corpusLast.seed == seed && corpusLast.size == size {
		return corpusLast
	}
	var companies []russell.Company
	if size == 0 {
		companies = russell.Universe(seed)
	} else {
		companies = russell.UniverseSized(seed, size)
	}
	res := search.ResolveUniverse(search.NewEngine(companies, seed), companies)
	var gen *webgen.Generator
	if size == 0 {
		gen = webgen.New(seed, res.Domains)
	} else {
		gen = webgen.NewLazy(seed, res.Domains)
	}
	corpusLast = &corpus{
		seed:      seed,
		size:      size,
		companies: companies,
		domains:   res.Domains,
		corrected: res.Corrected,
		gen:       gen,
	}
	return corpusLast
}
