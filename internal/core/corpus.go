package core

import (
	"sync"

	"aipan/internal/russell"
	"aipan/internal/search"
	"aipan/internal/webgen"
)

// corpus is the deterministic study substrate for one seed: the synthetic
// Russell 3000 universe, its search-resolved domains, and the generated
// web. Everything in it is a pure function of the seed and read-only after
// construction, but building it costs roughly a third of a 50-domain
// pipeline run — so pipelines sharing a seed share one corpus instead of
// regenerating 2,892 sites each.
type corpus struct {
	seed      int64
	companies []russell.Company
	domains   []russell.DomainInfo
	corrected int
	gen       *webgen.Generator
}

var (
	corpusMu sync.Mutex
	// corpusLast caches the most recently built corpus only: repeated runs
	// almost always reuse one seed, and a single entry bounds memory.
	corpusLast *corpus
)

// corpusFor returns the (possibly cached) corpus for seed.
func corpusFor(seed int64) *corpus {
	corpusMu.Lock()
	defer corpusMu.Unlock()
	if corpusLast != nil && corpusLast.seed == seed {
		return corpusLast
	}
	companies := russell.Universe(seed)
	res := search.ResolveUniverse(search.NewEngine(companies, seed), companies)
	corpusLast = &corpus{
		seed:      seed,
		companies: companies,
		domains:   res.Domains,
		corrected: res.Corrected,
		gen:       webgen.New(seed, res.Domains),
	}
	return corpusLast
}
