package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"aipan/internal/store"
)

// runWithStore runs a Limit-40 pipeline against the given store (nil =
// no persistence) and returns the result.
func runWithStore(t *testing.T, workers int, st store.Store) *Result {
	t.Helper()
	p, err := New(Config{Limit: 40, Workers: workers, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestPipelineDeterminismAcrossStoreBackends is the tentpole acceptance
// bar: Result.Records and the funnel must be identical for every
// (worker count × store backend) combination — the storage layer and
// the engine's scheduling must never leak into the dataset.
func TestPipelineDeterminismAcrossStoreBackends(t *testing.T) {
	baseline := runWithStore(t, 1, nil)
	wantRecords, err := json.Marshal(baseline.Records)
	if err != nil {
		t.Fatal(err)
	}

	backends := func(t *testing.T) map[string]store.Store {
		dir := t.TempDir()
		js, err := store.OpenJSONL(dir + "/ck.jsonl")
		if err != nil {
			t.Fatal(err)
		}
		sh, err := store.OpenSharded(dir+"/shards", 4)
		if err != nil {
			t.Fatal(err)
		}
		bn, err := store.OpenBinary(dir+"/bins", 4)
		if err != nil {
			t.Fatal(err)
		}
		return map[string]store.Store{"jsonl": js, "sharded4": sh, "binary4": bn, "mem": store.NewMem()}
	}
	for _, workers := range []int{1, 16} {
		for name, st := range backends(t) {
			res := runWithStore(t, workers, st)
			if res.Funnel != baseline.Funnel {
				t.Errorf("workers=%d store=%s: funnel differs from baseline:\n  got  %+v\n  want %+v",
					workers, name, res.Funnel, baseline.Funnel)
			}
			got, err := json.Marshal(res.Records)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(wantRecords) {
				t.Errorf("workers=%d store=%s: records differ from baseline", workers, name)
			}
			// The store captured every record, and exporting it yields the
			// same bytes regardless of backend.
			if n, err := st.Len(); err != nil || n != len(res.Records) {
				t.Errorf("workers=%d store=%s: store holds %d records (err=%v), want %d",
					workers, name, n, err, len(res.Records))
			}
			st.Close()
		}
	}
}

// TestSeedStampRefusesMismatchedResume covers the checkpoint-safety
// satellite: a store written under one seed must refuse to resume under
// another, on every backend that carries metadata.
func TestSeedStampRefusesMismatchedResume(t *testing.T) {
	dir := t.TempDir()
	js, err := store.OpenJSONL(dir + "/ck.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	sh, err := store.OpenSharded(dir+"/shards", 2)
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range map[string]store.Store{"jsonl": js, "sharded": sh, "mem": store.NewMem()} {
		t.Run(name, func(t *testing.T) {
			p, err := New(Config{Limit: 3, Workers: 2, Store: st})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p.Run(context.Background()); err != nil {
				t.Fatal(err)
			}

			// Same store, different seed: refused before any processing.
			p2, err := New(Config{Limit: 3, Workers: 2, Seed: 99, Store: st})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p2.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "seed") {
				t.Fatalf("mismatched-seed resume: err = %v, want a seed refusal", err)
			}

			// Same seed resumes fine.
			p3, err := New(Config{Limit: 3, Workers: 2, Store: st})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := p3.Run(context.Background()); err != nil {
				t.Fatalf("same-seed resume: %v", err)
			}
			st.Close()
		})
	}
}

// TestSeedMismatchOnCheckpointPath exercises the same refusal through
// the legacy Config.Checkpoint path (JSONL + sidecar).
func TestSeedMismatchOnCheckpointPath(t *testing.T) {
	ckpt := t.TempDir() + "/ck.jsonl"
	p, err := New(Config{Limit: 3, Workers: 2, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	p2, err := New(Config{Limit: 3, Workers: 2, Seed: 77, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Run(context.Background()); err == nil || !strings.Contains(err.Error(), "seed") {
		t.Fatalf("mismatched-seed checkpoint resume: err = %v, want a seed refusal", err)
	}
}

// TestShardedResumeAfterCancel is the resume-after-cancel acceptance
// check on the sharded backend: cancel mid-run, reopen the shard
// directory, finish, and the stitched dataset matches a clean run.
func TestShardedResumeAfterCancel(t *testing.T) {
	const limit = 30
	dir := t.TempDir() + "/shards"

	st1, err := store.OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p1, err := New(Config{Limit: limit, Workers: 4, Store: st1,
		Progress: func(stage string, done, total int) {
			if stage == "process" && done >= 10 {
				cancel()
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Run(ctx); err == nil {
		t.Fatal("canceled run should return an error")
	}
	st1.Close()

	st2, err := store.OpenSharded(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	prior, err := st2.Len()
	if err != nil {
		t.Fatal(err)
	}
	if prior == 0 || prior >= limit {
		t.Fatalf("shard store has %d records after cancel, want 1..%d", prior, limit-1)
	}
	reprocessed := 0
	p2, err := New(Config{Limit: limit, Workers: 4, Store: st2,
		Progress: func(stage string, done, total int) {
			if stage == "process" {
				reprocessed++
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := p2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	if want := limit - prior; reprocessed != want {
		t.Errorf("resume reprocessed %d domains, want %d", reprocessed, want)
	}

	p3, err := New(Config{Limit: limit, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := p3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Funnel != clean.Funnel {
		t.Errorf("funnel differs after sharded resume:\n  resumed: %+v\n  clean:   %+v",
			resumed.Funnel, clean.Funnel)
	}
	for i := range clean.Records {
		a, _ := json.Marshal(resumed.Records[i])
		b, _ := json.Marshal(clean.Records[i])
		if string(a) != string(b) {
			t.Errorf("record %d (%s) differs after sharded resume", i, clean.Records[i].Domain)
		}
	}
}

// TestProcessDomainsErrorPaths covers the §6 harness entry point's
// failure modes: a domain outside the study universe and a canceled
// context both error out instead of returning partial data.
func TestProcessDomainsErrorPaths(t *testing.T) {
	p, err := New(Config{Limit: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	known := p.Domains()[0].Domain

	if _, err := p.ProcessDomains(context.Background(), []string{"not-in-universe.example"}); err == nil ||
		!strings.Contains(err.Error(), "not in the study universe") {
		t.Fatalf("unknown domain: err = %v, want a study-universe error", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.ProcessDomains(ctx, []string{known}); err != context.Canceled {
		t.Fatalf("canceled ProcessDomains: err = %v, want context.Canceled", err)
	}

	// The happy path still works after the failures above.
	recs, err := p.ProcessDomains(context.Background(), []string{known})
	if err != nil || len(recs) != 1 || recs[0].Domain != known {
		t.Fatalf("ProcessDomains(%s) = %d records, %v", known, len(recs), err)
	}
}
