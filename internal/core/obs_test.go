package core

import (
	"context"
	"testing"

	"aipan/internal/obs"
)

// funnelGauge reads one aipan_funnel stage gauge back out of reg
// (registration is idempotent, so re-registering returns the live vec).
func funnelGauge(reg *obs.Registry, stage string) float64 {
	vec := reg.GaugeVec("aipan_funnel",
		"Figure 1 funnel counts from the most recently completed run, by stage.", "stage")
	return vec.With(stage).Value()
}

// TestFunnelMetricsMatchResult is the funnel-parity acceptance test: the
// aipan_funnel gauges published at the end of a run must equal the
// returned core.Result.Funnel field for field.
func TestFunnelMetricsMatchResult(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := New(Config{Limit: 30, Workers: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	f := res.Funnel
	for stage, want := range map[string]float64{
		"companies":          float64(f.Companies),
		"domains":            float64(f.Domains),
		"search_corrected":   float64(f.SearchCorrected),
		"crawl_ok":           float64(f.CrawlOK),
		"extract_ok":         float64(f.ExtractOK),
		"annotated":          float64(f.Annotated),
		"avg_pages_crawled":  f.AvgPagesCrawled,
		"avg_privacy_pages":  f.AvgPrivacyPages,
		"well_known_policy":  float64(f.WellKnownPolicy),
		"well_known_privacy": float64(f.WellKnownPriv),
		"median_words":       f.MedianWords,
		"fallback_used":      float64(f.FallbackUsed),
	} {
		if got := funnelGauge(reg, stage); got != want {
			t.Errorf("aipan_funnel{stage=%q} = %v, want %v", stage, got, want)
		}
	}

	// The run also attaches a stage trace rooted at "run" with the
	// domain → crawl/page hierarchy underneath.
	if res.Trace == nil || len(res.Trace.Stages) == 0 {
		t.Fatal("result carries no trace summary")
	}
	if res.Trace.Stages[0].Name != "run" || res.Trace.Stages[0].Count != 1 {
		t.Fatalf("trace root: %+v", res.Trace.Stages[0])
	}
	var sawDomain bool
	for _, s := range res.Trace.Stages[0].Children {
		if s.Name == "domain" {
			sawDomain = true
			if s.Count != 30 {
				t.Errorf("domain span count = %d, want 30", s.Count)
			}
		}
	}
	if !sawDomain {
		t.Error("trace has no domain stage")
	}

	// Pipeline throughput counters match the work actually done.
	domains := reg.Counter("aipan_pipeline_domains_processed_total",
		"Domains fully processed (crawl through annotate) this process.")
	if domains.Value() != 30 {
		t.Errorf("domains processed counter = %v, want 30", domains.Value())
	}
}

// TestProgressTerminalTickOnCancel verifies the Progress contract's
// guarantee: even a canceled run ends with exactly one terminal
// (process, total, total) tick.
func TestProgressTerminalTickOnCancel(t *testing.T) {
	type tick struct{ done, total int }
	var ticks []tick
	p, err := New(Config{Limit: 20, Workers: 2, Progress: func(stage string, done, total int) {
		if stage == "process" {
			ticks = append(ticks, tick{done, total})
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx); err == nil {
		t.Fatal("canceled run should error")
	}
	terminal := 0
	for _, tk := range ticks {
		if tk.done == tk.total && tk.total == 20 {
			terminal++
		}
	}
	if terminal != 1 {
		t.Errorf("terminal (20, 20) ticks = %d, want exactly 1 (ticks: %v)", terminal, ticks)
	}
	if last := ticks[len(ticks)-1]; last.done != 20 || last.total != 20 {
		t.Errorf("last tick = %+v, want (20, 20)", last)
	}
}
