package core

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"aipan/internal/russell"
	"aipan/internal/virtualweb"
	"aipan/internal/webgen"
)

// rewriteTransport sends every request to the test server while
// preserving the original host in the Host header — the synthetic web's
// handler routes by Host, so the pipeline crawls over a real TCP socket.
type rewriteTransport struct {
	target string
}

func (t *rewriteTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	clone := req.Clone(req.Context())
	clone.Host = req.URL.Host
	clone.URL.Scheme = "http"
	clone.URL.Host = t.target
	resp, err := http.DefaultTransport.RoundTrip(clone)
	if resp != nil {
		// Restore the logical request so redirect resolution and
		// resp.Request.URL (the crawler's FinalURL) stay in domain space.
		resp.Request = req
	}
	return resp, err
}

// TestPipelineOverRealTCP runs the whole stack — crawler, segmentation,
// annotation — against the synthetic web served over an actual socket,
// proving nothing depends on the in-process transport shortcut.
func TestPipelineOverRealTCP(t *testing.T) {
	gen := webgen.New(webgen.Seed, russell.UniqueDomains(russell.Universe(webgen.Seed)))
	srv := httptest.NewServer(virtualweb.NewHandler(gen))
	defer srv.Close()

	client := &http.Client{Transport: &rewriteTransport{target: srv.Listener.Addr().String()}}
	p, err := New(Config{Limit: 40, Workers: 4, HTTPClient: client})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.CrawlOK == 0 || res.Funnel.Annotated == 0 {
		t.Fatalf("funnel empty over TCP: %+v", res.Funnel)
	}

	// The TCP run must agree with the in-process run on every domain,
	// modulo the timeout failure class (over a socket the handler answers
	// 504 instead of hanging — still a crawl failure, different error text).
	p2, err := New(Config{Limit: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Records {
		a, b := res.Records[i], res2.Records[i]
		if a.Domain != b.Domain {
			t.Fatalf("domain order differs: %s vs %s", a.Domain, b.Domain)
		}
		if a.Crawl.Success != b.Crawl.Success {
			t.Errorf("%s: crawl success differs over TCP (%v vs %v)", a.Domain, a.Crawl.Success, b.Crawl.Success)
		}
		if len(a.Annotations) != len(b.Annotations) {
			t.Errorf("%s: annotation count differs over TCP (%d vs %d)",
				a.Domain, len(a.Annotations), len(b.Annotations))
		}
	}
}
