package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"aipan/internal/store"
)

// TestDiscardRecordsMatchesRetained is the constant-memory contract:
// a DiscardRecords run keeps no record slice, yet its funnel and its
// store-side export must be byte-identical to a retained run's — the
// streaming path changes memory shape, never results.
func TestDiscardRecordsMatchesRetained(t *testing.T) {
	dir := t.TempDir()

	retainedStore := store.NewMem()
	retained := runWithStore(t, 8, retainedStore)
	if retained.Records == nil {
		t.Fatal("retained run returned no records")
	}

	discardStore := store.NewMem()
	p, err := New(Config{Limit: 40, Workers: 8, Store: discardStore, DiscardRecords: true, Window: 9})
	if err != nil {
		t.Fatal(err)
	}
	discarded, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if discarded.Records != nil {
		t.Errorf("DiscardRecords run retained %d records, want nil", len(discarded.Records))
	}
	if discarded.Funnel != retained.Funnel {
		t.Errorf("funnel differs under DiscardRecords:\n  streaming %+v\n  retained  %+v",
			discarded.Funnel, retained.Funnel)
	}

	// The store is the dataset: both runs export the same bytes.
	retPath := filepath.Join(dir, "retained.jsonl")
	disPath := filepath.Join(dir, "discarded.jsonl")
	if err := store.SaveJSONL(retPath, retainedStore); err != nil {
		t.Fatal(err)
	}
	if err := store.SaveJSONL(disPath, discardStore); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(retPath)
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(disPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(want) != string(got) {
		t.Error("store export differs between retained and DiscardRecords runs")
	}
}

// TestScaledUniverseDeterministic smoke-tests the parameterized
// universe: a scaled corpus runs end to end and is deterministic across
// worker counts, same as the paper-sized one.
func TestScaledUniverseDeterministic(t *testing.T) {
	run := func(workers int) *Result {
		st := store.NewMem()
		p, err := New(Config{UniverseDomains: 400, Limit: 60, Workers: workers,
			Store: st, DiscardRecords: true})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if n, _ := st.Len(); n != 60 {
			t.Fatalf("workers=%d: store holds %d records, want 60", workers, n)
		}
		return res
	}
	a, b := run(1), run(12)
	if a.Funnel != b.Funnel {
		t.Errorf("scaled universe funnel differs across worker counts:\n  w=1  %+v\n  w=12 %+v",
			a.Funnel, b.Funnel)
	}
	if a.Funnel.Domains != 60 {
		t.Errorf("scaled funnel covers %d domains, want 60", a.Funnel.Domains)
	}
	// The scaled universe is a different corpus, not a resample of the
	// paper's: domains past the paper-sized namespace must exist.
	p, err := New(Config{UniverseDomains: 400, Limit: 400, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Domains()); got != 400 {
		t.Errorf("scaled universe has %d domains, want 400", got)
	}
}

// progressTick is one recorded Progress callback.
type progressTick struct {
	stage       string
	done, total int
}

// TestProgressTicksMonotoneWithTerminal is the progress-contract
// regression test: on the streaming path, "process" ticks are strictly
// increasing with a constant total, and exactly one terminal
// (done == total) tick is delivered — whether the run does the work,
// resumes it all from a checkpoint, or is canceled early.
func TestProgressTicksMonotoneWithTerminal(t *testing.T) {
	checkTicks := func(t *testing.T, ticks []progressTick, total int) {
		t.Helper()
		if len(ticks) == 0 {
			t.Fatal("no progress ticks delivered")
		}
		prev := 0
		terminal := 0
		for i, tk := range ticks {
			if tk.stage != "process" {
				t.Fatalf("tick %d: stage %q, want process", i, tk.stage)
			}
			if tk.total != total {
				t.Fatalf("tick %d: total %d, want %d", i, tk.total, total)
			}
			if tk.done == total {
				terminal++
				continue
			}
			if tk.done <= prev {
				t.Fatalf("tick %d: done went %d -> %d, want strictly increasing", i, prev, tk.done)
			}
			prev = tk.done
		}
		if terminal != 1 {
			t.Fatalf("saw %d terminal (done == total) ticks, want exactly 1", terminal)
		}
		if last := ticks[len(ticks)-1]; last.done != total {
			t.Fatalf("final tick is (%d/%d), want the terminal tick last", last.done, last.total)
		}
	}

	record := func(ticks *[]progressTick) func(string, int, int) {
		return func(stage string, done, total int) {
			*ticks = append(*ticks, progressTick{stage, done, total})
		}
	}

	t.Run("fresh-run", func(t *testing.T) {
		var ticks []progressTick
		p, err := New(Config{Limit: 25, Workers: 6, Window: 7, Progress: record(&ticks)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if len(ticks) != 25 {
			t.Fatalf("fresh run delivered %d ticks, want 25", len(ticks))
		}
		checkTicks(t, ticks, 25)
	})

	t.Run("fully-resumed", func(t *testing.T) {
		st := store.NewMem()
		runWithStore(t, 4, st)
		var ticks []progressTick
		p, err := New(Config{Limit: 40, Workers: 4, Store: st, Progress: record(&ticks)})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		// Nothing to do: the run still reports completion, exactly once.
		checkTicks(t, ticks, 40)
	})

	t.Run("canceled", func(t *testing.T) {
		var ticks []progressTick
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		p, err := New(Config{Limit: 30, Workers: 4, Store: store.NewMem(),
			Progress: func(stage string, done, total int) {
				ticks = append(ticks, progressTick{stage, done, total})
				if stage == "process" && done == 5 {
					cancel()
				}
			}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(ctx); err == nil {
			t.Fatal("canceled run should error")
		}
		checkTicks(t, ticks, 30)
	})
}
