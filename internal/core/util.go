package core

import "aipan/internal/htmlx"

// parseHTML is a seam for the HTML parser (kept separate for clarity at
// the call site in processDomain).
func parseHTML(src string) *htmlx.Node { return htmlx.Parse(src) }
