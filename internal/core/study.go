package core

import "aipan/internal/webgen"

// Study is the deterministic study list for one (seed, universe,
// limit): the sorted domain names a pipeline with the same parameters
// will process, plus the company and search-correction counts the
// funnel fold needs. It is what a dispatch coordinator partitions
// across workers — both sides derive it from the same cached corpus, so
// they agree on every domain and its position without shipping the
// list over the wire.
type Study struct {
	Domains   []string
	Companies int
	Corrected int
}

// StudyFor computes the study list for a seed (0 = the default seed) at
// universe size (0 = the paper's default) under limit (0 = all). The
// corpus behind it is cached, so repeated calls with one key are cheap.
func StudyFor(seed int64, universeDomains, limit int) Study {
	if seed == 0 {
		seed = webgen.Seed
	}
	corp := corpusFor(seed, universeDomains)
	domains := corp.domains
	if limit > 0 && limit < len(domains) {
		domains = domains[:limit]
	}
	names := make([]string, len(domains))
	for i := range domains {
		names[i] = domains[i].Domain
	}
	return Study{
		Domains:   names,
		Companies: len(corp.companies),
		Corrected: corp.corrected,
	}
}
