package core

import (
	"context"
	"testing"

	"aipan/internal/webgen"
)

// runLimited runs the pipeline over the first n domains.
func runLimited(t *testing.T, n int) (*Pipeline, *Result) {
	t.Helper()
	p, err := New(Config{Limit: n, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

func TestPipelineSmallRun(t *testing.T) {
	p, res := runLimited(t, 60)
	if len(res.Records) != 60 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if res.Funnel.CrawlOK == 0 || res.Funnel.ExtractOK == 0 || res.Funnel.Annotated == 0 {
		t.Fatalf("funnel empty: %+v", res.Funnel)
	}
	if res.Funnel.CrawlOK < res.Funnel.ExtractOK || res.Funnel.ExtractOK < res.Funnel.Annotated {
		t.Errorf("funnel not monotone: %+v", res.Funnel)
	}
	// Ground truth cross-check on a few healthy domains.
	checked := 0
	for _, rec := range res.Records {
		site := p.Generator().Site(rec.Domain)
		if site == nil {
			t.Fatalf("no site for %s", rec.Domain)
		}
		switch {
		case site.Failure.IsCrawlFailure():
			if rec.Crawl.Success && len(rec.Annotations) > 0 {
				t.Errorf("%s (%s): crawl-failure site produced annotations", rec.Domain, site.Failure)
			}
		case site.Failure.IsExtractionFailure():
			if rec.Extraction.Success {
				t.Errorf("%s (%s): extraction-failure site extracted", rec.Domain, site.Failure)
			}
		case site.Failure == webgen.FailVague:
			if len(rec.Annotations) > 0 {
				t.Errorf("%s: vague site got %d annotations", rec.Domain, len(rec.Annotations))
			}
		default:
			checked++
			if !rec.Annotated() {
				t.Errorf("%s: healthy site got no annotations", rec.Domain)
			}
		}
	}
	if checked == 0 {
		t.Error("no healthy domains in sample")
	}
}

func TestPipelineRecallAgainstGroundTruth(t *testing.T) {
	p, res := runLimited(t, 40)
	var planted, recovered int
	for _, rec := range res.Records {
		site := p.Generator().Site(rec.Domain)
		if site.Failure != webgen.FailNone {
			continue
		}
		have := map[string]bool{}
		for _, a := range rec.Annotations {
			if a.Aspect == "types" {
				have[a.Category+"|"+a.Descriptor] = true
			}
		}
		seen := map[string]bool{}
		for _, m := range site.Truth.Types {
			key := m.Category + "|" + m.Descriptor
			if seen[key] {
				continue
			}
			seen[key] = true
			planted++
			if have[key] {
				recovered++
			}
		}
	}
	if planted == 0 {
		t.Fatal("no planted truth in sample")
	}
	recall := float64(recovered) / float64(planted)
	if recall < 0.85 {
		t.Errorf("type recall = %.3f (%d/%d), want >= 0.85", recall, recovered, planted)
	}
}

func TestPipelineProgressCallback(t *testing.T) {
	var calls int
	p, err := New(Config{Limit: 10, Workers: 2, Progress: func(stage string, done, total int) {
		calls++
		if total != 10 {
			t.Errorf("total = %d", total)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls != 10 {
		t.Errorf("progress calls = %d", calls)
	}
}

func TestPipelineCancel(t *testing.T) {
	p, err := New(Config{Limit: 50, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.Run(ctx); err == nil {
		t.Error("canceled run should error")
	}
}

func TestFunnelUniverseNumbers(t *testing.T) {
	p, err := New(Config{Limit: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Funnel.Companies != 2916 {
		t.Errorf("companies = %d, want 2916", res.Funnel.Companies)
	}
	if len(p.Domains()) != 2892 {
		t.Errorf("domains = %d, want 2892", len(p.Domains()))
	}
}

func TestCheckpointResume(t *testing.T) {
	ckpt := t.TempDir() + "/checkpoint.jsonl"

	// First run: 12 domains, all written to the checkpoint.
	p1, err := New(Config{Limit: 12, Workers: 4, Checkpoint: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p1.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Second run resumes: every domain is already checkpointed, so no
	// chatbot work happens. The progress callback still fires exactly
	// once — the guaranteed terminal (total, total) tick that lets
	// progress bars close even when there is nothing left to do.
	calls := 0
	var lastDone, lastTotal int
	p2, err := New(Config{Limit: 12, Workers: 4, Checkpoint: ckpt,
		Progress: func(_ string, done, total int) { calls++; lastDone, lastTotal = done, total }})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || lastDone != 12 || lastTotal != 12 {
		t.Errorf("resume progress: %d calls, last (%d, %d), want exactly one (12, 12) terminal tick",
			calls, lastDone, lastTotal)
	}
	if len(res2.Records) != len(res1.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(res2.Records), len(res1.Records))
	}
	for i := range res1.Records {
		if res1.Records[i].Domain != res2.Records[i].Domain ||
			len(res1.Records[i].Annotations) != len(res2.Records[i].Annotations) {
			t.Errorf("record %d differs after resume", i)
		}
	}

	// Third run extends the limit: only the new domains are processed.
	calls = 0
	p3, err := New(Config{Limit: 15, Workers: 4, Checkpoint: ckpt,
		Progress: func(string, int, int) { calls++ }})
	if err != nil {
		t.Fatal(err)
	}
	res3, err := p3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("extension run processed %d domains, want 3", calls)
	}
	if len(res3.Records) != 15 {
		t.Errorf("records = %d", len(res3.Records))
	}
	for _, rec := range res3.Records {
		if rec.Domain == "" {
			t.Error("empty record slipped into resumed results")
		}
	}
}
