package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"aipan/internal/obs"
	"aipan/internal/store"
	"aipan/internal/webgen"
)

// TestTelemetryByteIdenticalAcrossRuns is the acceptance bar for durable
// telemetry (DESIGN.md §14): two runs over the same seed must export
// byte-identical trace files and flight-recorder event streams, even at
// different worker counts. Deterministic mode (no TelemetryTimings)
// derives span IDs from content and strips wall-clock fields, and the
// flight recorder stamps events with the serialized delivery sequence,
// so concurrency never leaks into the exported bytes.
func TestTelemetryByteIdenticalAcrossRuns(t *testing.T) {
	const limit = 12
	run := func(workers int) (traceFile, eventDir string) {
		t.Helper()
		dir := t.TempDir()
		traceFile = filepath.Join(dir, "run.trace")
		eventDir = filepath.Join(dir, "events")
		exp, err := obs.NewFileExporter(traceFile, true)
		if err != nil {
			t.Fatal(err)
		}
		ev, err := store.OpenEventLog(eventDir, 4)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{Limit: limit, Workers: workers,
			TraceExporter: exp, Events: ev})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		if err := exp.Close(); err != nil {
			t.Fatal(err)
		}
		if err := ev.Close(); err != nil {
			t.Fatal(err)
		}
		return traceFile, eventDir
	}

	trace1, events1 := run(1)
	trace2, events2 := run(16)

	b1, err := os.ReadFile(trace1)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := os.ReadFile(trace2)
	if err != nil {
		t.Fatal(err)
	}
	if len(b1) == 0 {
		t.Fatal("trace export is empty")
	}
	if string(b1) != string(b2) {
		t.Errorf("trace bytes differ across same-seed runs (%d vs %d bytes)", len(b1), len(b2))
	}

	// Every event shard must match byte for byte. Shard files are created
	// lazily, so compare the union of both directories.
	names := map[string]bool{}
	for _, dir := range []string{events1, events2} {
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			names[e.Name()] = true
		}
	}
	if len(names) == 0 {
		t.Fatal("no event files written")
	}
	for name := range names {
		s1, err1 := os.ReadFile(filepath.Join(events1, name))
		s2, err2 := os.ReadFile(filepath.Join(events2, name))
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("%s exists in only one run: %v vs %v", name, err1, err2)
		}
		if string(s1) != string(s2) {
			t.Errorf("%s differs across same-seed runs", name)
		}
	}

	// The exported spans must parse, share the seed-derived run ID, and
	// carry no wall-clock fields in deterministic mode.
	recs, err := obs.ReadTrace(trace1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("trace parsed to zero spans")
	}
	wantRun := obs.DeriveRunID(webgen.Seed)
	for i := range recs {
		if recs[i].RunID != wantRun {
			t.Fatalf("span %d run ID = %q, want %q", i, recs[i].RunID, wantRun)
		}
		if recs[i].StartUnixNano != 0 || recs[i].DurationNanos != 0 {
			t.Fatalf("span %d (%s) carries wall-clock timings in deterministic mode", i, recs[i].Path)
		}
	}

	// The recorded event stream must cover every processed domain.
	log, err := store.OpenEventDir(events1)
	if err != nil {
		t.Fatal(err)
	}
	defer log.Close()
	if n, err := log.Len(); err != nil || n != limit {
		t.Fatalf("event stream holds %d events, %v; want %d", n, err, limit)
	}
}
