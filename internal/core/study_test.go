package core

import (
	"context"
	"reflect"
	"testing"

	"aipan/internal/store"
)

func TestStudyForMatchesPipelineDomains(t *testing.T) {
	p, err := New(Config{Limit: 12})
	if err != nil {
		t.Fatal(err)
	}
	study := StudyFor(0, 0, 12)
	if len(study.Domains) != 12 {
		t.Fatalf("StudyFor returned %d domains, want 12", len(study.Domains))
	}
	var want []string
	for _, d := range p.Domains()[:12] {
		want = append(want, d.Domain)
	}
	if !reflect.DeepEqual(study.Domains, want) {
		t.Fatalf("study list diverges from pipeline domains:\n%v\n%v", study.Domains, want)
	}
	if study.Companies == 0 {
		t.Fatalf("study reports zero companies")
	}
}

// TestDomainFilterPartition runs two pipelines whose filters split the
// study list by shard hash and checks their stores union to exactly the
// unfiltered run's records — the property the distributed dispatcher
// leans on.
func TestDomainFilterPartition(t *testing.T) {
	const limit = 10
	runWith := func(filter func(string) bool) map[string]bool {
		t.Helper()
		st := store.NewMem()
		p, err := New(Config{Limit: limit, Store: st, DiscardRecords: true, DomainFilter: filter})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		if err := st.Scan(func(r *store.Record) error {
			got[r.Domain] = true
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return got
	}

	all := runWith(nil)
	if len(all) != limit {
		t.Fatalf("unfiltered run stored %d records, want %d", len(all), limit)
	}
	even := runWith(func(d string) bool { return store.ShardOf(d, 2) == 0 })
	odd := runWith(func(d string) bool { return store.ShardOf(d, 2) == 1 })
	if len(even)+len(odd) != limit {
		t.Fatalf("partition sizes %d + %d != %d", len(even), len(odd), limit)
	}
	for d := range even {
		if odd[d] {
			t.Fatalf("domain %s in both partitions", d)
		}
		delete(all, d)
	}
	for d := range odd {
		delete(all, d)
	}
	if len(all) != 0 {
		t.Fatalf("domains missing from the partitioned runs: %v", all)
	}
}

func TestFoldFunnelMatchesPipelineFunnel(t *testing.T) {
	st := store.NewMem()
	p, err := New(Config{Limit: 8, Store: st})
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	study := StudyFor(0, 0, 8)
	cells := make([]FunnelCell, len(study.Domains))
	byDomain := map[string]int{}
	for i, d := range study.Domains {
		byDomain[d] = i
	}
	if err := st.Scan(func(r *store.Record) error {
		cells[byDomain[r.Domain]] = CellOf(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	folded := FoldFunnel(study.Companies, study.Corrected, cells)
	if !reflect.DeepEqual(folded, res.Funnel) {
		t.Fatalf("FoldFunnel diverges from the pipeline funnel:\n%+v\n%+v", folded, res.Funnel)
	}
}
