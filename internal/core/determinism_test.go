package core

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"aipan/internal/store"
)

// TestPipelineDeterminismAcrossWorkerCounts is the acceptance bar for the
// stage-parallel engine: a serial run and a heavily parallel run over the
// same seed must produce identical records and funnel counts. Every layer
// of fan-out (domain workers, crawl stages, per-page segment+annotate,
// per-aspect annotation) folds its results back in a deterministic order,
// so worker count must never show up in the output.
func TestPipelineDeterminismAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Result {
		t.Helper()
		p, err := New(Config{Limit: 100, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial := run(1)
	parallel := run(16)

	if serial.Funnel != parallel.Funnel {
		t.Errorf("funnel differs across worker counts:\n  workers=1:  %+v\n  workers=16: %+v",
			serial.Funnel, parallel.Funnel)
	}
	if len(serial.Records) != len(parallel.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(serial.Records), len(parallel.Records))
	}
	for i := range serial.Records {
		if !reflect.DeepEqual(serial.Records[i], parallel.Records[i]) {
			t.Errorf("record %d (%s) differs across worker counts", i, serial.Records[i].Domain)
		}
	}
}

// TestCheckpointResumeAfterCancel interrupts a checkpointed run mid-flight
// and verifies that (a) the resumed run skips the already-checkpointed
// domains, (b) no truncated record from the canceled processing poisons
// the checkpoint, and (c) the final result is identical to an
// uninterrupted run.
func TestCheckpointResumeAfterCancel(t *testing.T) {
	const limit = 30
	ckpt := t.TempDir() + "/checkpoint.jsonl"

	// First run: cancel once a third of the domains have completed.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	p1, err := New(Config{Limit: limit, Workers: 4, Checkpoint: ckpt,
		Progress: func(stage string, done, total int) {
			if stage == "process" && done >= 10 {
				cancel()
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p1.Run(ctx); err == nil {
		t.Fatal("canceled run should return an error")
	}

	prior, err := store.LoadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior) == 0 || len(prior) >= limit {
		t.Fatalf("checkpoint has %d records after cancel, want 1..%d", len(prior), limit-1)
	}
	for _, rec := range prior {
		if rec.Domain == "" {
			t.Error("checkpoint contains a record with no domain")
		}
	}

	// Resume: only the domains missing from the checkpoint are processed.
	reprocessed := 0
	p2, err := New(Config{Limit: limit, Workers: 4, Checkpoint: ckpt,
		Progress: func(stage string, done, total int) {
			if stage == "process" {
				reprocessed++
			}
		}})
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := p2.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := limit - len(prior); reprocessed != want {
		t.Errorf("resume reprocessed %d domains, want %d", reprocessed, want)
	}

	// The stitched-together result must match a clean, uninterrupted run.
	// Records restored from the checkpoint went through a JSON round trip,
	// so compare marshaled forms rather than in-memory values.
	p3, err := New(Config{Limit: limit, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	clean, err := p3.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Funnel != clean.Funnel {
		t.Errorf("funnel differs after resume:\n  resumed: %+v\n  clean:   %+v",
			resumed.Funnel, clean.Funnel)
	}
	if len(resumed.Records) != len(clean.Records) {
		t.Fatalf("record counts differ: %d vs %d", len(resumed.Records), len(clean.Records))
	}
	for i := range clean.Records {
		a, err := json.Marshal(resumed.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(clean.Records[i])
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("record %d (%s) differs after resume", i, clean.Records[i].Domain)
		}
	}
}
