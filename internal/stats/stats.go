// Package stats provides the descriptive statistics and table rendering
// the paper's analysis section (§5) needs: means, standard deviations,
// medians, coverage percentages, per-sector group-bys, and fixed-width
// text tables that mirror the paper's layout.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// SD returns the population standard deviation (0 for n < 2).
func SD(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Median returns the middle value (mean of middle two for even n).
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) by linear interpolation.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the extremes (0,0 for empty input).
func MinMax(xs []float64) (float64, float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// Pct formats a fraction as a percentage with one decimal ("60.9%").
func Pct(fraction float64) string {
	return fmt.Sprintf("%.1f%%", fraction*100)
}

// MeanSD formats the paper's "mean±sd" cells.
func MeanSD(xs []float64) string {
	return fmt.Sprintf("%.1f±%.1f", Mean(xs), SD(xs))
}

// Coverage is a (covered, total) pair.
type Coverage struct {
	Covered int
	Total   int
}

// Fraction returns covered/total (0 when total is 0).
func (c Coverage) Fraction() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Covered) / float64(c.Total)
}

// String formats the coverage as a percentage.
func (c Coverage) String() string { return Pct(c.Fraction()) }

// SectorStat is one sector's (coverage, values) pair for a category,
// used to find the paper's highest/2nd/3rd/lowest sector columns.
type SectorStat struct {
	Sector   string
	Coverage Coverage
	Values   []float64
}

// RankSectors sorts sectors by descending coverage (ties broken by name
// for determinism) and returns them.
func RankSectors(m map[string]*SectorStat) []SectorStat {
	out := make([]SectorStat, 0, len(m))
	for _, s := range m {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		fi, fj := out[i].Coverage.Fraction(), out[j].Coverage.Fraction()
		if fi != fj {
			return fi > fj
		}
		return out[i].Sector < out[j].Sector
	})
	return out
}

// Table is a fixed-width text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned text rendering.
func (t *Table) Render() string {
	ncol := len(t.Headers)
	for _, r := range t.Rows {
		if len(r) > ncol {
			ncol = len(r)
		}
	}
	widths := make([]int, ncol)
	measure := func(cells []string) {
		for i, c := range cells {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	measure(t.Headers)
	for _, r := range t.Rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteString("\n")
	}
	writeRow := func(cells []string) {
		for i := 0; i < ncol; i++ {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", widths[i]+2, c)
		}
		b.WriteString("\n")
	}
	if len(t.Headers) > 0 {
		writeRow(t.Headers)
		var sep []string
		for i := 0; i < ncol; i++ {
			sep = append(sep, strings.Repeat("-", widths[i]))
		}
		writeRow(sep)
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}
