package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanSDMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if !almost(Mean(xs), 5) {
		t.Errorf("mean = %v", Mean(xs))
	}
	if !almost(SD(xs), 2) {
		t.Errorf("sd = %v", SD(xs))
	}
	if !almost(Median(xs), 4.5) {
		t.Errorf("median = %v", Median(xs))
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || SD(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs should give 0")
	}
	lo, hi := MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Error("MinMax empty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	if !almost(Quantile(xs, 0), 1) || !almost(Quantile(xs, 1), 5) {
		t.Error("extreme quantiles")
	}
	if !almost(Quantile(xs, 0.5), 3) {
		t.Errorf("median = %v", Quantile(xs, 0.5))
	}
	if !almost(Quantile(xs, 0.25), 2) {
		t.Errorf("q25 = %v", Quantile(xs, 0.25))
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	Quantile(xs, 0.5)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("input mutated")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, a, b float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		qa := math.Mod(math.Abs(a), 1)
		qb := math.Mod(math.Abs(b), 1)
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(xs, qa) <= Quantile(xs, qb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7, 0})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v", lo, hi)
	}
}

func TestCoverage(t *testing.T) {
	c := Coverage{Covered: 609, Total: 1000}
	if c.String() != "60.9%" {
		t.Errorf("got %s", c.String())
	}
	if (Coverage{}).Fraction() != 0 {
		t.Error("zero coverage")
	}
}

func TestPctAndMeanSD(t *testing.T) {
	if Pct(0.975) != "97.5%" {
		t.Errorf("Pct = %s", Pct(0.975))
	}
	got := MeanSD([]float64{12, 14})
	if got != "13.0±1.0" {
		t.Errorf("MeanSD = %s", got)
	}
}

func TestRankSectors(t *testing.T) {
	m := map[string]*SectorStat{
		"CD": {Sector: "CD", Coverage: Coverage{90, 100}},
		"EN": {Sector: "EN", Coverage: Coverage{10, 100}},
		"IT": {Sector: "IT", Coverage: Coverage{95, 100}},
	}
	ranked := RankSectors(m)
	if ranked[0].Sector != "IT" || ranked[2].Sector != "EN" {
		t.Errorf("ranked = %+v", ranked)
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"Category", "Coverage"}}
	tb.AddRow("Contact info", "86.4%")
	tb.AddRow("Vehicle info", "5.0%")
	out := tb.Render()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "Contact info") {
		t.Errorf("render:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, sep, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line at least as wide as the header line.
	if len(lines[3]) < len("Contact info") {
		t.Error("row truncated")
	}
}
