package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// nondetflowChecker is the interprocedural companion to `determinism`:
// where determinism flags nondeterminism *sources* syntactically inside
// the dataset-byte-path packages, nondetflow proves — module-wide, and
// through any call chain — that no value *derived from* a source ever
// reaches a byte-producing sink. Sources are wall-clock reads
// (time.Now/Since/Until), draws from the global math/rand source, and
// map-iteration order (a slice appended under a map range). Sinks are
// Config.TaintSinks: store record appends, the JSONL/CSV export
// writers, trace export, ETag computation, and /v1 response encoding.
// Two launderings are recognized: sorting (an order-tainted collection
// sorted before it reaches the sink is the repo's sanctioned
// collect-then-sort pattern), and the injected obs.Clock seam (a call
// through a function *value* is never a source — which is exactly why
// injected clocks keep same-seed runs byte-identical while direct
// time.Now calls do not).
//
// The engine computes one summary per module function by fixpoint over
// the shared call graph: whether its return value can carry source
// taint, which parameters pass through to its return value, and which
// parameters flow into a sink (with the call chain, for the report).
// Intraprocedural propagation is flow-insensitive over assignments with
// positional sort laundering, matching the determinism checker's
// collect-then-sort rule.
var nondetflowChecker = &Checker{
	Name: "nondetflow",
	Doc:  "no wall-clock, global-rand, or map-order derived value may flow into store/export/trace/ETag/response sinks",
	Rationale: "Same-seed runs must be byte-identical across worker counts, store backends, " +
		"and (ROADMAP item 3) worker processes; a wall-clock read or map-order dependence " +
		"three calls upstream of a store append silently breaks that contract in a way no " +
		"syntactic check can see. The taint fixpoint tracks values derived from time.Now, " +
		"the global math/rand source, and map-iteration order through every static call " +
		"chain into the byte-producing sinks, accepting only the two audited launderings: " +
		"a sort before the sink, or the injected obs.Clock seam.",
	Example: `internal/obs/span.go:208: [nondetflow] value derived from time.Since flows into trace export (ExportSpan)`,
	Run:     runNondetflow,
}

// taint is the per-value lattice element: a source reason chain (with
// an ordering-only flag — order taint is laundered by sorting, value
// taint is not) plus a bitmask of the enclosing function's parameters
// whose taint would flow into this value.
type taint struct {
	src    string
	order  bool
	params uint64
}

func (t taint) empty() bool { return t.src == "" && t.params == 0 }

func (t *taint) merge(o taint) {
	if t.src == "" {
		t.src, t.order = o.src, o.order
	} else if o.src != "" && !o.order {
		// A value-level taint (clock/rand) dominates an ordering-only
		// one: sorting must not launder the merged value.
		t.order = false
	}
	t.params |= o.params
}

// sinkFlow records that a function parameter reaches a sink: the sink's
// description, the call chain to it, and whether the path sorts the
// value first (laundering ordering-only taint).
type sinkFlow struct {
	desc   string
	via    string
	sorted bool
}

// fnTaint is one function's interprocedural summary.
type fnTaint struct {
	retSrc    string          // source reason chain carried by a return value
	retOrder  bool            // that source taint is ordering-only
	retParams uint64          // parameter bits whose taint passes to the return value
	sinks     map[int]sinkFlow // parameter index (receiver = 0 for methods) → sink reached
}

func (s *fnTaint) equal(o *fnTaint) bool {
	if s.retSrc != o.retSrc || s.retOrder != o.retOrder || s.retParams != o.retParams ||
		len(s.sinks) != len(o.sinks) {
		return false
	}
	for k, v := range s.sinks {
		if o.sinks[k] != v {
			return false
		}
	}
	return true
}

type taintEngine struct {
	pass      *Pass
	summaries map[*types.Func]*fnTaint
}

func runNondetflow(p *Pass) {
	if len(p.Cfg.TaintSinks) == 0 {
		return
	}
	g := p.Graph
	e := &taintEngine{pass: p, summaries: map[*types.Func]*fnTaint{}}
	// Summary fixpoint: recompute every function from the current
	// summaries of its callees until nothing changes. Facts only grow
	// (bitmasks and non-empty strings derived from them), so this
	// terminates; the round cap is a safety net against pathological
	// mutual recursion.
	for round := 0; round < 32; round++ {
		changed := false
		for _, obj := range g.Order {
			s := e.analyze(g.Nodes[obj], false)
			if old := e.summaries[obj]; old == nil || !old.equal(s) {
				e.summaries[obj] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Report pass: summaries are stable; now emit diagnostics.
	for _, obj := range g.Order {
		e.analyze(g.Nodes[obj], true)
	}
}

// fnScope is the per-function analysis state.
type fnScope struct {
	e       *taintEngine
	node    *FuncNode
	params  map[types.Object]int      // param object → summary index
	taints  map[types.Object]*taint   // current per-variable taint
	sorted  map[types.Object][]token.Pos // positions of sort calls per variable
	regions [][2]token.Pos            // map-range body extents (order regions)
	report  bool
}

// analyze runs the intraprocedural engine over one function and returns
// its fresh summary. With report=true it additionally emits diagnostics
// for source-tainted values reaching sinks.
func (e *taintEngine) analyze(node *FuncNode, report bool) *fnTaint {
	sc := &fnScope{
		e: e, node: node, report: report,
		params: map[types.Object]int{},
		taints: map[types.Object]*taint{},
		sorted: map[types.Object][]token.Pos{},
	}
	// Parameter indexing: receiver first (methods), then declared params.
	idx := 0
	if node.Decl.Recv != nil {
		for _, field := range node.Decl.Recv.List {
			for _, name := range field.Names {
				if obj := node.Pkg.Info.Defs[name]; obj != nil {
					sc.params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	if node.Decl.Type.Params != nil {
		for _, field := range node.Decl.Type.Params.List {
			for _, name := range field.Names {
				if obj := node.Pkg.Info.Defs[name]; obj != nil {
					sc.params[obj] = idx
				}
				idx++
			}
			if len(field.Names) == 0 {
				idx++
			}
		}
	}
	for obj, i := range sc.params {
		if i < 64 {
			sc.taints[obj] = &taint{params: 1 << i}
		}
	}

	sc.collectRegionsAndSorts()

	// Assignment fixpoint: flow-insensitive, repeated until no variable
	// gains taint (capped; each round only adds facts).
	for round := 0; round < 32; round++ {
		if !sc.propagateOnce() {
			break
		}
	}

	sum := &fnTaint{sinks: map[int]sinkFlow{}}
	sc.finish(sum)
	return sum
}

// collectRegionsAndSorts records map-range body extents (the order
// regions: appends inside them depend on Go's randomized iteration
// order) and sort-call positions per sorted variable (the positional
// laundering rule: a sort after the taint and before the use cleans
// ordering-only taint, mirroring the determinism checker).
func (sc *fnScope) collectRegionsAndSorts() {
	info := sc.node.Pkg.Info
	ast.Inspect(sc.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					sc.regions = append(sc.regions, [2]token.Pos{n.Body.Pos(), n.Body.End()})
				}
			}
		case *ast.CallExpr:
			fn := funcObj(info, n)
			if fn == nil || len(n.Args) == 0 {
				return true
			}
			switch pkgPathOf(fn) {
			case "sort", "slices":
				if obj := baseObj(info, n.Args[0]); obj != nil {
					sc.sorted[obj] = append(sc.sorted[obj], n.Pos())
				}
			}
		}
		return true
	})
}

// inOrderRegion reports whether pos sits inside a map-range body.
func (sc *fnScope) inOrderRegion(pos token.Pos) bool {
	for _, r := range sc.regions {
		if pos >= r[0] && pos < r[1] {
			return true
		}
	}
	return false
}

// sortedBefore reports whether obj was sorted at a position before use.
func (sc *fnScope) sortedBefore(obj types.Object, use token.Pos) bool {
	for _, sp := range sc.sorted[obj] {
		if sp < use {
			return true
		}
	}
	return false
}

// propagateOnce walks every assignment-like construct once, merging RHS
// taint into LHS variables. Returns whether anything changed.
func (sc *fnScope) propagateOnce() bool {
	changed := false
	absorb := func(target ast.Expr, t taint) {
		if t.empty() {
			return
		}
		obj := baseObj(sc.node.Pkg.Info, target)
		if obj == nil {
			return
		}
		cur := sc.taints[obj]
		if cur == nil {
			cur = &taint{}
			sc.taints[obj] = cur
		}
		before := *cur
		cur.merge(t)
		if *cur != before {
			changed = true
		}
	}
	ast.Inspect(sc.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					absorb(n.Lhs[i], sc.exprTaint(n.Rhs[i]))
				}
			} else if len(n.Rhs) == 1 {
				t := sc.exprTaint(n.Rhs[0])
				for _, lhs := range n.Lhs {
					absorb(lhs, t)
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					absorb(n.Names[i], sc.exprTaint(n.Values[i]))
				}
			} else if len(n.Values) == 1 {
				t := sc.exprTaint(n.Values[0])
				for _, name := range n.Names {
					absorb(name, t)
				}
			}
		case *ast.RangeStmt:
			t := sc.exprTaint(n.X)
			if !t.empty() {
				if n.Key != nil {
					absorb(n.Key, t)
				}
				if n.Value != nil {
					absorb(n.Value, t)
				}
			}
		}
		return true
	})
	return changed
}

// exprTaint evaluates the taint carried by an expression under the
// current variable state.
func (sc *fnScope) exprTaint(e ast.Expr) taint {
	info := sc.node.Pkg.Info
	switch e := e.(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if obj == nil {
			return taint{}
		}
		t := sc.taints[obj]
		if t == nil {
			return taint{}
		}
		out := *t
		// Positional laundering: ordering-only taint read after a sort
		// of the same variable is clean.
		if out.order && sc.sortedBefore(obj, e.Pos()) {
			out.src, out.order = "", false
		}
		return out
	case *ast.SelectorExpr:
		// Field read of a tainted value, or a qualified package var.
		t := sc.exprTaint(e.X)
		if obj := info.Uses[e.Sel]; obj != nil {
			if vt := sc.taints[obj]; vt != nil {
				t.merge(*vt)
			}
		}
		return t
	case *ast.CallExpr:
		return sc.callTaint(e)
	case *ast.ParenExpr:
		return sc.exprTaint(e.X)
	case *ast.StarExpr:
		return sc.exprTaint(e.X)
	case *ast.UnaryExpr:
		return sc.exprTaint(e.X)
	case *ast.BinaryExpr:
		t := sc.exprTaint(e.X)
		t.merge(sc.exprTaint(e.Y))
		return t
	case *ast.IndexExpr:
		t := sc.exprTaint(e.X)
		t.merge(sc.exprTaint(e.Index))
		return t
	case *ast.SliceExpr:
		return sc.exprTaint(e.X)
	case *ast.TypeAssertExpr:
		return sc.exprTaint(e.X)
	case *ast.CompositeLit:
		var t taint
		for _, el := range e.Elts {
			t.merge(sc.exprTaint(el))
		}
		return t
	case *ast.KeyValueExpr:
		return sc.exprTaint(e.Value)
	}
	return taint{}
}

// callTaint evaluates a call expression: sources, module summaries,
// sort laundering, conversions, and the conservative argument
// passthrough for everything the engine cannot see into. A call through
// a function value resolves to nothing and taints nothing — that is
// the obs.Clock seam: injected clocks are deterministic by contract.
func (sc *fnScope) callTaint(call *ast.CallExpr) taint {
	info := sc.node.Pkg.Info
	// Type conversion: taint of the operand.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		return sc.exprTaint(call.Args[0])
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				var t taint
				for _, a := range call.Args {
					t.merge(sc.exprTaint(a))
				}
				if sc.inOrderRegion(call.Pos()) {
					t.merge(taint{src: "map iteration order", order: true})
				}
				return t
			case "len", "cap", "make", "new":
				return taint{}
			default:
				var t taint
				for _, a := range call.Args {
					t.merge(sc.exprTaint(a))
				}
				return t
			}
		}
	}
	fn := funcObj(info, call)
	if fn == nil {
		// Function value or interface the engine cannot resolve: the
		// injected-seam laundering. obs.Clock reads land here.
		return taint{}
	}
	if src := sourceOf(fn); src != "" {
		return taint{src: src}
	}
	argTaint := func() taint {
		var t taint
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := info.Selections[sel]; isMethod {
				t.merge(sc.exprTaint(sel.X))
			}
		}
		for _, a := range call.Args {
			t.merge(sc.exprTaint(a))
		}
		return t
	}
	switch pkgPathOf(fn) {
	case "sort", "slices":
		// Sorting launders ordering-only taint; value taint survives.
		t := argTaint()
		if t.order {
			t.src, t.order = "", false
		}
		return t
	}
	if node := sc.e.nodeFor(fn); node != nil {
		sum := sc.e.summaries[fn]
		var t taint
		if sum != nil {
			if sum.retSrc != "" {
				t.merge(taint{src: fn.Name() + " (" + sum.retSrc + ")", order: sum.retOrder})
			}
			if sum.retParams != 0 {
				args := sc.callArgs(call, fn)
				for i, a := range args {
					bit := i
					if bit > 63 {
						bit = 63
					}
					if sum.retParams&(1<<bit) != 0 {
						t.merge(sc.exprTaint(a))
					}
				}
			}
		}
		return t
	}
	// Unknown externals (fmt, strconv, strings, time arithmetic, ...):
	// conservative passthrough — derived output carries input taint.
	return argTaint()
}

// callArgs aligns a call's argument expressions with the callee's
// summary parameter indexing: receiver first for methods.
func (sc *fnScope) callArgs(call *ast.CallExpr, fn *types.Func) []ast.Expr {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if _, isMethod := sc.node.Pkg.Info.Selections[sel]; isMethod {
				return append([]ast.Expr{sel.X}, call.Args...)
			}
		}
	}
	return call.Args
}

// nodeFor returns the call-graph node for a module function, nil for
// externals.
func (e *taintEngine) nodeFor(fn *types.Func) *FuncNode {
	return e.pass.Graph.Nodes[fn]
}

// finish runs the sink-and-return pass: emit reports (report mode),
// and fold sink flows and return taint into the summary.
func (sc *fnScope) finish(sum *fnTaint) {
	ast.Inspect(sc.node.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sc.checkCall(n, sum)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				t := sc.exprTaint(res)
				if t.src != "" && sum.retSrc == "" {
					sum.retSrc, sum.retOrder = t.src, t.order
				}
				sum.retParams |= t.params
			}
		}
		return true
	})
}

// checkCall inspects one call: a configured sink, or a module function
// whose summary says a parameter reaches a sink.
func (sc *fnScope) checkCall(call *ast.CallExpr, sum *fnTaint) {
	fn := funcObj(sc.node.Pkg.Info, call)
	if fn == nil {
		return
	}
	if desc := sinkOf(sc.e.pass.Cfg, fn); desc != "" {
		for _, a := range call.Args {
			t := sc.exprTaint(a)
			if t.src != "" {
				sc.reportFlow(call, t.src, desc, fn.Name(), "")
			}
			sc.recordParamSinks(sum, t, desc, "", false)
		}
		return
	}
	if sc.e.nodeFor(fn) == nil {
		return
	}
	calleeSum := sc.e.summaries[fn]
	if calleeSum == nil || len(calleeSum.sinks) == 0 {
		return
	}
	args := sc.callArgs(call, fn)
	// Deterministic order over the callee's sink params.
	idxs := make([]int, 0, len(calleeSum.sinks))
	for i := range calleeSum.sinks {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	for _, i := range idxs {
		if i >= len(args) {
			continue
		}
		flow := calleeSum.sinks[i]
		via := fn.Name()
		if flow.via != "" {
			via += " → " + flow.via
		}
		t := sc.exprTaint(args[i])
		if t.src != "" && !(t.order && flow.sorted) {
			sc.reportFlow(call, t.src, flow.desc, "", via)
		}
		sc.recordParamSinks(sum, t, flow.desc, via, flow.sorted)
	}
}

// recordParamSinks folds "this function's parameter reaches a sink"
// facts into the summary.
func (sc *fnScope) recordParamSinks(sum *fnTaint, t taint, desc, via string, sorted bool) {
	if t.params == 0 {
		return
	}
	for bit := 0; bit < 64; bit++ {
		if t.params&(1<<bit) == 0 {
			continue
		}
		if _, exists := sum.sinks[bit]; !exists {
			sum.sinks[bit] = sinkFlow{desc: desc, via: via, sorted: sorted}
		}
	}
}

// reportFlow emits one nondetflow diagnostic at the sink-reaching call.
func (sc *fnScope) reportFlow(call *ast.CallExpr, src, desc, direct, via string) {
	if !sc.report {
		return
	}
	switch {
	case via != "":
		sc.e.pass.Reportf(call.Pos(),
			"value derived from %s flows into %s via %s", src, desc, via)
	case direct != "":
		sc.e.pass.Reportf(call.Pos(),
			"value derived from %s flows into %s (%s)", src, desc, direct)
	default:
		sc.e.pass.Reportf(call.Pos(),
			"value derived from %s flows into %s", src, desc)
	}
}

// sourceOf classifies a resolved callee as a nondeterminism source.
func sourceOf(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return ""
	}
	switch pkgPathOf(fn) {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name()
		}
	case "math/rand", "math/rand/v2":
		if !globalRandOK[fn.Name()] {
			return "rand." + fn.Name()
		}
	}
	return ""
}

// sinkOf matches a resolved callee against Config.TaintSinks.
func sinkOf(cfg Config, fn *types.Func) string {
	pkg, name := pkgPathOf(fn), fn.Name()
	for _, s := range cfg.TaintSinks {
		if s.Pkg == pkg && s.Name == name {
			return s.Desc
		}
	}
	return ""
}

// baseObj resolves the root variable of an lvalue-ish expression:
// x, x.f, x[i], *x, (x) all resolve to x's object.
func baseObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch ee := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[ee]; obj != nil {
				return obj
			}
			return info.Defs[ee]
		case *ast.SelectorExpr:
			e = ee.X
		case *ast.IndexExpr:
			e = ee.X
		case *ast.StarExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		case *ast.SliceExpr:
			e = ee.X
		default:
			return nil
		}
	}
}
