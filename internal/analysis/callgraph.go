package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// This file is the shared interprocedural substrate: one whole-module
// call graph, built once per Run and reused by every checker that needs
// to reason across function boundaries (ctxthread, nondetflow,
// lockorder, leakcheck). Building it once is what keeps the analyzer's
// wall time flat as interprocedural checkers accumulate: the expensive
// parts — parsing, type-checking, and the per-function AST walk that
// extracts call edges — happen exactly once per module load.
//
// The graph is position-stable by construction: node order is sorted by
// (package path, file name, declaration offset), never by package load
// order, so every fixpoint that iterates Order produces identical
// summaries — and therefore identical diagnostic messages — regardless
// of how the module's packages were enumerated.

// CallSite is one static call edge out of a function: the resolved
// callee plus where the call sits relative to concurrency constructs.
// Checkers choose which sites count: ctxthread ignores sites inside go
// statements and function literals (spawned or deferred work does not
// block the spawner), while the taint engine follows every site.
type CallSite struct {
	Callee *types.Func
	Call   *ast.CallExpr
	InGo   bool // inside a go statement's subtree
	InLit  bool // inside a nested function literal
}

// FuncNode is the per-function call-graph node: its declaration, its
// resolved module-internal call sites, and the function's direct
// blocking fact (the ctxthread seed, computed with identical semantics
// to the pre-graph checker: goroutine and closure bodies excluded,
// select-with-default nonblocking, comm-clause channel ops attributed
// to their select).
type FuncNode struct {
	Obj   *types.Func
	Pkg   *Package
	Decl  *ast.FuncDecl
	Sites []CallSite

	// BlockReason is the function's *direct* blocking reason outside go
	// statements and function literals ("" if none): a channel op, a
	// select without default, or a call into the known-blocking stdlib
	// set. Transitive blocking lives in CallGraph.Blocked.
	BlockReason string
}

// CallGraph is the whole-module graph plus lazily computed shared
// fixpoints. One instance is built per Run (cached on the Module) and
// handed to every checker through the Pass.
type CallGraph struct {
	Nodes map[*types.Func]*FuncNode
	// Order holds every node's *types.Func sorted by (package path,
	// file name, declaration offset) — the canonical iteration order for
	// all fixpoints, invariant under package load order.
	Order []*types.Func

	// ClosedChans holds every types.Object (variable or struct field)
	// that some close(x) call in the module closes. leakcheck uses it to
	// prove a goroutine's receive can terminate.
	ClosedChans map[types.Object]bool

	blocked map[*types.Func]string // lazy: transitive blocking reasons
}

// NewCallGraph builds the graph over every function declaration in the
// module. The walk is a single pass per function body.
func NewCallGraph(mod *Module) *CallGraph {
	g := &CallGraph{
		Nodes:       map[*types.Func]*FuncNode{},
		ClosedChans: map[types.Object]bool{},
	}
	for _, pkg := range mod.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &FuncNode{Obj: obj, Pkg: pkg, Decl: fd}
				g.buildNode(mod, node)
				g.Nodes[obj] = node
				g.Order = append(g.Order, obj)
			}
		}
	}
	sort.Slice(g.Order, func(i, j int) bool {
		a, b := g.Nodes[g.Order[i]], g.Nodes[g.Order[j]]
		if a.Pkg.Path != b.Pkg.Path {
			return a.Pkg.Path < b.Pkg.Path
		}
		pa := mod.Fset.Position(a.Decl.Pos())
		pb := mod.Fset.Position(b.Decl.Pos())
		if pa.Filename != pb.Filename {
			return pa.Filename < pb.Filename
		}
		return pa.Offset < pb.Offset
	})
	return g
}

// buildNode extracts one function's call sites, direct blocking fact,
// and module-wide close() registrations.
func (g *CallGraph) buildNode(mod *Module, node *FuncNode) {
	pkg, body := node.Pkg, node.Decl.Body
	inComm := selectCommOps(body)
	walkFlagged(body, false, false, func(n ast.Node, inGo, inLit bool) {
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inGo && !inLit && !inComm[n] {
				node.block("channel send")
			}
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" && !inGo && !inLit && !inComm[n] {
				node.block("channel receive")
			}
		case *ast.SelectStmt:
			if !inGo && !inLit && !selectHasDefault(n) {
				node.block("select")
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin && len(n.Args) == 1 {
					if obj := chanObj(pkg, n.Args[0]); obj != nil {
						g.ClosedChans[obj] = true
					}
				}
			}
			callee := funcObj(pkg.Info, n)
			if callee == nil {
				return
			}
			if !inGo && !inLit {
				if why, ok := blockingCalls[callee.FullName()]; ok {
					node.block(why)
				} else if pkgPathOf(callee) == "net" && strings.HasPrefix(callee.Name(), "Dial") {
					node.block("net." + callee.Name())
				}
			}
			if strings.HasPrefix(pkgPathOf(callee), mod.Path) {
				node.Sites = append(node.Sites,
					CallSite{Callee: callee, Call: n, InGo: inGo, InLit: inLit})
			}
		}
	})
}

// block records the first direct blocking reason (matching the
// pre-graph ctxthread semantics: first fact in walk order wins).
func (n *FuncNode) block(why string) {
	if n.BlockReason == "" {
		n.BlockReason = why
	}
}

// Blocked computes (once) the transitive blocking fixpoint: a function
// blocks if it blocks directly or calls — outside go statements and
// function literals — a module function that blocks. The returned map
// holds a human-readable reason chain per blocking function, identical
// in form to the pre-graph ctxthread reasons ("calls X (why)").
func (g *CallGraph) Blocked() map[*types.Func]string {
	if g.blocked != nil {
		return g.blocked
	}
	blocked := map[*types.Func]string{}
	for _, obj := range g.Order {
		if r := g.Nodes[obj].BlockReason; r != "" {
			blocked[obj] = r
		}
	}
	for changed := true; changed; {
		changed = false
		for _, obj := range g.Order {
			if _, done := blocked[obj]; done {
				continue
			}
			for _, site := range g.Nodes[obj].Sites {
				if site.InGo || site.InLit {
					continue
				}
				if why, ok := blocked[site.Callee]; ok {
					blocked[obj] = "calls " + site.Callee.Name() + " (" + why + ")"
					changed = true
					break
				}
			}
		}
	}
	g.blocked = blocked
	return blocked
}

// walkFlagged visits every node under root, tracking whether the node
// sits inside a go statement's subtree or a nested function literal.
// Both subtree kinds are still visited (unlike ast.Inspect pruning) —
// checkers decide per-site what the flags mean.
func walkFlagged(root ast.Node, inGo, inLit bool, visit func(n ast.Node, inGo, inLit bool)) {
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if n != root {
			switch nn := n.(type) {
			case *ast.GoStmt:
				visit(n, inGo, inLit)
				walkFlagged(nn.Call, true, inLit, visit)
				return false
			case *ast.FuncLit:
				visit(n, inGo, inLit)
				walkFlagged(nn.Body, inGo, true, visit)
				return false
			}
		}
		visit(n, inGo, inLit)
		return true
	})
}

// chanObj resolves the object a close(x) call closes: a plain variable
// or, for close(s.done), the struct field — so a goroutine receiving
// from the same variable or field is provably gated on channel close.
func chanObj(pkg *Package, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pkg.Info.Uses[e]; obj != nil {
			return obj
		}
		return pkg.Info.Defs[e]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[e.Sel]
	}
	return nil
}
