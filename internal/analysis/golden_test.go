package analysis

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

// The module is loaded once and shared by every test in the package:
// from-source type-checking of the stdlib closure is the dominant cost.
var (
	modOnce sync.Once
	modVal  *Module
	modErr  error

	tdOnce sync.Once
	tdPkgs map[string]*Package
	tdErr  error
)

func loadRepo(t testing.TB) *Module {
	t.Helper()
	modOnce.Do(func() {
		root, err := FindModuleRoot(".")
		if err != nil {
			modErr = err
			return
		}
		modVal, modErr = LoadModule(root)
	})
	if modErr != nil {
		t.Fatalf("LoadModule: %v", modErr)
	}
	return modVal
}

// loadTestdata loads every golden corpus package exactly once, against
// the shared module (met imports the real internal/obs).
func loadTestdata(t *testing.T) map[string]*Package {
	t.Helper()
	mod := loadRepo(t)
	tdOnce.Do(func() {
		tdPkgs = map[string]*Package{}
		for _, name := range []string{"det", "gor", "ctx", "met", "wrap", "churn", "spanend", "nondet", "lock", "leak"} {
			pkg, err := mod.LoadPackageDir(filepath.Join("testdata", "src", name), name)
			if err != nil {
				tdErr = fmt.Errorf("loading testdata %s: %w", name, err)
				return
			}
			tdPkgs[name] = pkg
		}
	})
	if tdErr != nil {
		t.Fatalf("%v", tdErr)
	}
	return tdPkgs
}

// testModule wraps one testdata package as a standalone analysis target.
// Path is empty so the ctxthread call graph treats the package's own
// functions as module-internal.
func testModule(mod *Module, pkg *Package) *Module {
	return &Module{Root: mod.Root, Path: "", Fset: mod.Fset, Pkgs: []*Package{pkg}}
}

// wantAt extracts `// want <regex>` expectations per line of the
// package's files.
func wantAt(t *testing.T, mod *Module, pkg *Package) map[int]*regexp.Regexp {
	t.Helper()
	wants := map[int]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				re, err := regexp.Compile(strings.TrimSpace(text))
				if err != nil {
					t.Fatalf("bad want regexp %q: %v", text, err)
				}
				wants[mod.Fset.Position(c.Pos()).Line] = re
			}
		}
	}
	if len(wants) == 0 {
		t.Fatalf("testdata package %s has no // want annotations", pkg.Path)
	}
	return wants
}

// runGolden checks one checker against one testdata package: every want
// line must produce a matching diagnostic, and no diagnostic may appear
// on an unannotated line.
func runGolden(t *testing.T, checker, pkgName string, cfg Config) {
	t.Helper()
	mod := loadRepo(t)
	pkg := loadTestdata(t)[pkgName]
	view := testModule(mod, pkg)
	diags := Run(view, cfg, []*Checker{CheckerByName(checker)})
	wants := wantAt(t, mod, pkg)
	matched := map[int]bool{}
	for _, d := range diags {
		re, ok := wants[d.Line]
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: [%s] %s", d.File, d.Line, d.Check, d.Message)
			continue
		}
		if !re.MatchString(d.Message) {
			t.Errorf("%s:%d: diagnostic %q does not match want %q", d.File, d.Line, d.Message, re)
			continue
		}
		matched[d.Line] = true
	}
	for line, re := range wants {
		if !matched[line] {
			t.Errorf("missing diagnostic at line %d: want match for %q", line, re)
		}
	}
}

func TestDeterminismGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DeterministicPkgs = []string{"det"}
	runGolden(t, "determinism", "det", cfg)
}

// TestDeterminismOutOfScope is the by-construction allowlist: the same
// corpus in a package that is not deterministic (a seeded generator, the
// obs layer) produces nothing.
func TestDeterminismOutOfScope(t *testing.T) {
	mod := loadRepo(t)
	view := testModule(mod, loadTestdata(t)["det"])
	cfg := DefaultConfig() // det is not in DeterministicPkgs
	if diags := Run(view, cfg, []*Checker{CheckerByName("determinism")}); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestGoroutineGolden(t *testing.T) {
	runGolden(t, "goroutine", "gor", DefaultConfig())
}

// TestGoroutineAllowlisted: the identical package inside GoroutinePkgs
// (how internal/engine and internal/obs are exempted) is silent.
func TestGoroutineAllowlisted(t *testing.T) {
	mod := loadRepo(t)
	view := testModule(mod, loadTestdata(t)["gor"])
	cfg := DefaultConfig()
	cfg.GoroutinePkgs = append(cfg.GoroutinePkgs, "gor")
	if diags := Run(view, cfg, []*Checker{CheckerByName("goroutine")}); len(diags) != 0 {
		t.Fatalf("allowlisted package produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestCtxthreadGolden(t *testing.T) {
	runGolden(t, "ctxthread", "ctx", DefaultConfig())
}

func TestMetricnameGolden(t *testing.T) {
	runGolden(t, "metricname", "met", DefaultConfig())
}

func TestSpanendGolden(t *testing.T) {
	runGolden(t, "spanend", "spanend", DefaultConfig())
}

func TestErrwrapGolden(t *testing.T) {
	runGolden(t, "errwrap", "wrap", DefaultConfig())
}

func TestBytechurnGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.BytePathPkgs = []string{"churn"}
	runGolden(t, "bytechurn", "churn", cfg)
}

// TestBytechurnOutOfScope: the identical package outside BytePathPkgs is
// silent — the rule scopes to the hot byte path, not the whole module.
func TestBytechurnOutOfScope(t *testing.T) {
	mod := loadRepo(t)
	view := testModule(mod, loadTestdata(t)["churn"])
	cfg := DefaultConfig() // churn is not in BytePathPkgs
	if diags := Run(view, cfg, []*Checker{CheckerByName("bytechurn")}); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestNondetflowGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TaintSinks = []TaintSink{{Pkg: "nondet", Name: "Sink", Desc: "test sink"}}
	runGolden(t, "nondetflow", "nondet", cfg)
}

// TestNondetflowNoSinkSilent: with no sink configured in the corpus
// package, the taint fixpoint still runs but nothing is reportable.
func TestNondetflowNoSinkSilent(t *testing.T) {
	mod := loadRepo(t)
	view := testModule(mod, loadTestdata(t)["nondet"])
	cfg := DefaultConfig() // sinks name aipan/... packages, not nondet
	if diags := Run(view, cfg, []*Checker{CheckerByName("nondetflow")}); len(diags) != 0 {
		t.Fatalf("sink-free package produced %d diagnostics: %v", len(diags), diags)
	}
}

func TestLockorderGolden(t *testing.T) {
	runGolden(t, "lockorder", "lock", DefaultConfig())
}

func TestLeakcheckGolden(t *testing.T) {
	cfg := DefaultConfig()
	cfg.GoroutinePkgs = append(cfg.GoroutinePkgs, "leak")
	runGolden(t, "leakcheck", "leak", cfg)
}

// TestLeakcheckOutOfScope: leakcheck only governs the packages allowed
// to spawn goroutines at all; elsewhere the goroutine checker owns the
// finding.
func TestLeakcheckOutOfScope(t *testing.T) {
	mod := loadRepo(t)
	view := testModule(mod, loadTestdata(t)["leak"])
	cfg := DefaultConfig() // leak is not in GoroutinePkgs
	if diags := Run(view, cfg, []*Checker{CheckerByName("leakcheck")}); len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics: %v", len(diags), diags)
	}
}

// TestTwoCheckersSameLine: determinism (syntactic source) and nondetflow
// (interprocedural sink flow) both fire on the single line that reads
// the clock and feeds the sink — and the merged report is byte-identical
// whichever order the two checkers run in.
func TestTwoCheckersSameLine(t *testing.T) {
	mod := loadRepo(t)
	pkg := loadTestdata(t)["nondet"]
	cfg := DefaultConfig()
	cfg.DeterministicPkgs = []string{"nondet"}
	cfg.TaintSinks = []TaintSink{{Pkg: "nondet", Name: "Sink", Desc: "test sink"}}

	render := func(ds []Diagnostic) string {
		var b strings.Builder
		for _, d := range ds {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	fwd := Run(testModule(mod, pkg), cfg,
		[]*Checker{CheckerByName("determinism"), CheckerByName("nondetflow")})
	rev := Run(testModule(mod, pkg), cfg,
		[]*Checker{CheckerByName("nondetflow"), CheckerByName("determinism")})
	if render(fwd) != render(rev) {
		t.Errorf("checker order changed the report:\nfwd:\n%s\nrev:\n%s", render(fwd), render(rev))
	}

	byLine := map[int]map[string]bool{}
	for _, d := range fwd {
		if byLine[d.Line] == nil {
			byLine[d.Line] = map[string]bool{}
		}
		byLine[d.Line][d.Check] = true
	}
	both := 0
	for _, checks := range byLine {
		if checks["determinism"] && checks["nondetflow"] {
			both++
		}
	}
	if both == 0 {
		t.Fatalf("no line carries both determinism and nondetflow findings; diags:\n%s", render(fwd))
	}
}

// TestDiagnosticOrderIsLoadOrderInvariant runs the full registry over
// the module with the package list reversed and rotated; the report
// must be byte-identical — diagnostic ordering is a sort guarantee, not
// a load-order accident.
func TestDiagnosticOrderIsLoadOrderInvariant(t *testing.T) {
	mod := loadRepo(t)
	baseline := Run(mod, DefaultConfig(), Checkers())
	render := func(ds []Diagnostic) string {
		var b strings.Builder
		for _, d := range ds {
			b.WriteString(d.String())
			b.WriteByte('\n')
		}
		return b.String()
	}
	want := render(baseline)

	perms := [][]*Package{reversed(mod.Pkgs), rotated(mod.Pkgs, 7), rotated(mod.Pkgs, len(mod.Pkgs)/2)}
	for i, pkgs := range perms {
		shuffled := &Module{Root: mod.Root, Path: mod.Path, Fset: mod.Fset, Pkgs: pkgs}
		if got := render(Run(shuffled, DefaultConfig(), Checkers())); got != want {
			t.Errorf("permutation %d changed the report:\nwant:\n%s\ngot:\n%s", i, want, got)
		}
	}

	// Checker registration order must not matter either: the new
	// interprocedural checkers share one call graph, and their fixpoint
	// summaries must not leak state between orderings.
	revCheckers := make([]*Checker, 0, len(Checkers()))
	for _, c := range Checkers() {
		revCheckers = append([]*Checker{c}, revCheckers...)
	}
	fresh := &Module{Root: mod.Root, Path: mod.Path, Fset: mod.Fset, Pkgs: reversed(mod.Pkgs)}
	if got := render(Run(fresh, DefaultConfig(), revCheckers)); got != want {
		t.Errorf("reversed checker order changed the report:\nwant:\n%s\ngot:\n%s", want, got)
	}
}

func reversed(pkgs []*Package) []*Package {
	out := make([]*Package, len(pkgs))
	for i, p := range pkgs {
		out[len(pkgs)-1-i] = p
	}
	return out
}

func rotated(pkgs []*Package, by int) []*Package {
	if len(pkgs) == 0 {
		return nil
	}
	by %= len(pkgs)
	return append(append([]*Package{}, pkgs[by:]...), pkgs[:by]...)
}

// TestCheckerDocs: every registered checker is named, documented, and
// findable by name.
func TestCheckerDocs(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checkers() {
		if c.Name == "" || c.Doc == "" || c.Run == nil {
			t.Errorf("checker %+v is missing name, doc, or run", c)
		}
		if c.Rationale == "" || c.Example == "" {
			t.Errorf("checker %s is missing the rationale or example that -explain prints", c.Name)
		}
		if c.Example != "" && !strings.Contains(c.Example, "["+c.Name+"]") {
			t.Errorf("checker %s: example %q is not in canonical report form", c.Name, c.Example)
		}
		if seen[c.Name] {
			t.Errorf("duplicate checker name %q", c.Name)
		}
		seen[c.Name] = true
		if CheckerByName(c.Name) != c {
			t.Errorf("CheckerByName(%q) did not return the registered checker", c.Name)
		}
	}
	if CheckerByName("no-such-checker") != nil {
		t.Error("CheckerByName of unknown name should be nil")
	}
}

// BenchmarkAipanvet measures one full analysis pass (call-graph build
// plus every checker) over the already loaded module — the marginal
// cost of a vet run once parsing and type-checking are paid.
func BenchmarkAipanvet(b *testing.B) {
	mod := loadRepo(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh view forces the graph rebuild, so the benchmark covers
		// the shared substrate, not just the checker walks.
		view := &Module{Root: mod.Root, Path: mod.Path, Fset: mod.Fset, Pkgs: mod.Pkgs}
		if diags, _ := RunTimed(view, DefaultConfig(), Checkers()); len(diags) == 0 {
			b.Fatal("expected baseline findings from the repo module")
		}
	}
}
