// Package wrap is the errwrap checker's golden corpus.
package wrap

import (
	"fmt"
	"os"
	"strings"
)

// wrapped is the contract: error operands travel through %w.
func wrapped(err error) error {
	return fmt.Errorf("doing thing: %w", err)
}

func unwrapped(err error) error {
	return fmt.Errorf("doing thing: %v", err) // want fmt\.Errorf formats an error operand without %w
}

// noErrOperand formats plain data; nothing to wrap.
func noErrOperand(name string) error {
	return fmt.Errorf("unknown task %q", name)
}

func discard(path string) {
	os.Remove(path) // want error return of Remove silently discarded
}

// explicit is the sanctioned spelling of an intentional discard.
func explicit(path string) {
	_ = os.Remove(path)
}

// printing exercises the conventional allowlist: terminal printing and
// in-memory builders never have a recovery path.
func printing(b *strings.Builder) {
	fmt.Println("hi")
	b.WriteString("x")
}
