// Package ctx is the ctxthread checker's golden corpus.
package ctx

import (
	"context"
	"time"
)

func Nap() { // want exported Nap blocks \(time\.Sleep\)
	time.Sleep(time.Millisecond)
}

// NapCtx blocks but takes ctx first — the contract the checker wants.
func NapCtx(ctx context.Context, d time.Duration) {
	_ = ctx
	time.Sleep(d)
}

func Indirect() { // want exported Indirect blocks \(calls helper \(time\.Sleep\)\)
	helper()
}

func helper() { time.Sleep(time.Millisecond) }

func Recv(ch chan int) int { // want exported Recv blocks \(channel receive\)
	return <-ch
}

// Spawn hands the blocking send to a goroutine; the spawner itself
// returns immediately, so it needs no ctx.
func Spawn(ch chan int) {
	go func() { ch <- 1 }()
}

// TryRecv uses a select with default: non-blocking by construction.
func TryRecv(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

type waiter struct{ ch chan int }

// Wait blocks, but its receiver type is unexported — not public API,
// so the exported-surface contract does not apply.
func (w waiter) Wait() int {
	return <-w.ch
}
