// Package leak is the golden corpus for the leakcheck checker: every
// goroutine spawned in a concurrency package must have a provable
// termination path — a ctx gate, a receive from a channel the module
// closes, a stage-drain range, or a finite body.
package leak

import "context"

func spin() {
	go func() { // want goroutine has no provable termination path
		for {
		}
	}()
}

// ctxGated is clean: the loop consults ctx.Done, so cancellation
// reaches it.
func ctxGated(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			default:
			}
		}
	}()
}

// errGated is clean: the loop condition consults ctx.Err.
func errGated(ctx context.Context) {
	go func() {
		for ctx.Err() == nil {
		}
	}()
}

type sampler struct {
	done chan struct{}
}

// start is clean: the goroutine receives from s.done, and stop's
// close(s.done) proves the receive can complete.
func (s *sampler) start() {
	go func() {
		for {
			select {
			case <-s.done:
				return
			}
		}
	}()
}

func (s *sampler) stop() {
	close(s.done)
}

var never chan struct{}

func waitForever() {
	go func() { // want goroutine has no provable termination path
		<-never
	}()
}

// logOnce is clean: a finite straight-line body runs to completion.
func logOnce(f func(string)) {
	go func() {
		f("started")
	}()
}

func notify(ch chan int) {
	go func() { // want goroutine has no provable termination path
		ch <- 1
	}()
}

// drain is clean: ranging over a channel is the stage-drain idiom —
// the upstream close ends the range.
func drain(in chan int, f func(int)) {
	go func() {
		for v := range in {
			f(v)
		}
	}()
}

type worker struct{ done chan struct{} }

func (w *worker) loop() {
	<-w.done
}

// launch is clean: the named method's body receives from a channel
// that shutdown provably closes.
func (w *worker) launch() {
	go w.loop()
}

func shutdown(w *worker) {
	close(w.done)
}

func spawnValue(f func()) {
	go f() // want goroutine body cannot be resolved to a provable termination path
}
