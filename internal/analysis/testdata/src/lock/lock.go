// Package lock is the golden corpus for the lockorder checker: the
// acquisition graph must be acyclic (including edges discovered through
// helper calls) and no lock may be held across a blocking operation.
package lock

import (
	"sync"
	"time"
)

var a, b sync.Mutex

func lockAB() {
	a.Lock()
	b.Lock() // want acquiring lock\.b while holding lock\.a creates a lock-order cycle
	b.Unlock()
	a.Unlock()
}

func lockBA() {
	b.Lock()
	a.Lock() // want acquiring lock\.a while holding lock\.b creates a lock-order cycle
	a.Unlock()
	b.Unlock()
}

type Q struct {
	mu sync.Mutex
	ch chan int
}

func (q *Q) heldSend(v int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ch <- v // want lock \(Q\)\.mu held across channel send
}

// sendAfterUnlock is clean: the lock is released before the send.
func (q *Q) sendAfterUnlock(v int) {
	q.mu.Lock()
	v++
	q.mu.Unlock()
	q.ch <- v
}

type W struct {
	mu   sync.Mutex
	cond *sync.Cond
	n    int
}

// wait is clean: sync.Cond.Wait releases the mutex while parked.
func (w *W) wait() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.n == 0 {
		w.cond.Wait()
	}
	w.n--
}

var c, d sync.Mutex

// lockCthenD takes d *through a helper* while holding c: the inversion
// against lockDthenC is only visible interprocedurally.
func lockCthenD() {
	c.Lock()
	defer c.Unlock()
	takeD() // want acquiring lock\.d while holding lock\.c creates a lock-order cycle \(via call to takeD\)
}

func takeD() {
	d.Lock()
	d.Unlock()
}

func lockDthenC() {
	d.Lock()
	c.Lock() // want acquiring lock\.c while holding lock\.d creates a lock-order cycle
	c.Unlock()
	d.Unlock()
}

var e sync.Mutex

func sleepHelper() { time.Sleep(time.Millisecond) }

func heldAcrossSleep() {
	e.Lock()
	sleepHelper() // want lock lock\.e held across call to sleepHelper \(time\.Sleep\)
	e.Unlock()
}

// litScope is clean: a function literal is its own scope — the lock
// held in the enclosing function is not held when the literal runs.
func litScope() {
	a.Lock()
	f := func() {
		var local sync.Mutex
		local.Lock()
		local.Unlock()
	}
	a.Unlock()
	f()
}
