// Package met is the metricname checker's golden corpus; it registers
// against the real internal/obs constructors.
package met

import "aipan/internal/obs"

// goodName is the allowlisted shape: a named string constant still
// resolves and validates.
const goodName = "aipan_demo_items_total"

func register(reg *obs.Registry, dynamic string) {
	reg.Counter(goodName, "ok")
	reg.Counter("demo_total", "x")                  // want metric "demo_total" must start with "aipan_"
	reg.Counter("aipan_demo", "x")                  // want counter "aipan_demo" must end in _total
	reg.Gauge("aipan_items_total", "x")             // want gauge "aipan_items_total" must not end in _total
	reg.Histogram("aipan_latency", "x", nil)        // want histogram "aipan_latency" must end in a unit suffix
	reg.Histogram("aipan_latency_seconds", "x", nil)
	reg.GaugeVec("aipan_queue_depth", "ok", "stage")
	reg.Gauge("aipan_latency_sum", "x")       // want gauge "aipan_latency_sum" must not end in _sum
	reg.Gauge("aipan_request_count", "x")     // want gauge "aipan_request_count" must not end in _count
	reg.GaugeVec("aipan_le_bucket", "x", "l") // want gauge "aipan_le_bucket" must not end in _bucket
	reg.CounterVec("aipan_Bad_total", "x", "l") // want lowercase snake_case
	reg.Counter(dynamic, "x")                   // want must be a string constant
}
