// Package nondet is the golden corpus for the nondetflow checker: taint
// from wall-clock reads, the global math/rand source, and map-iteration
// order must not reach the configured sink — through any call chain —
// unless laundered by a sort or the injected clock seam.
package nondet

import (
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Sink is the configured taint sink for this corpus (Config.TaintSinks
// names it with Desc "test sink").
func Sink(s string) {}

// Clock mirrors the obs.Clock seam: a call through a function value is
// structurally invisible to the resolver and therefore never a source.
type Clock func() time.Time

func direct() {
	Sink(time.Now().String()) // want value derived from time\.Now flows into test sink \(Sink\)
}

func helperA() string { return helperB() }

func helperB() string { return time.Now().Format(time.RFC3339) }

// laundered demonstrates the interprocedural case the determinism
// checker cannot see: the wall-clock read is two helpers upstream.
func laundered() {
	v := helperA()
	Sink(v) // want value derived from helperA \(helperB \(time\.Now\)\) flows into test sink \(Sink\)
}

// emit gives the corpus a function whose parameter flows into the sink,
// so callers are checked against its summary.
func emit(v string) { Sink(v) }

func paramFlow() {
	emit(time.Now().String()) // want value derived from time\.Now flows into test sink via emit
}

func mapOrder(m map[string]string) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	Sink(strings.Join(keys, ",")) // want value derived from map iteration order flows into test sink \(Sink\)
}

// mapOrderSorted is the sanctioned collect-then-sort pattern: the sort
// launders ordering-only taint before the sink.
func mapOrderSorted(m map[string]string) {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	Sink(strings.Join(keys, ","))
}

// clockSeam is clean: the injected clock is called through a function
// value, which the engine treats as deterministic by contract.
func clockSeam(c Clock) {
	Sink(c().Format(time.RFC3339))
}

func globalRand() {
	Sink(strconv.Itoa(rand.Intn(10))) // want value derived from rand\.Intn flows into test sink \(Sink\)
}

// seededRand is clean: methods on an explicitly seeded *rand.Rand are
// reproducible for a given seed.
func seededRand(r *rand.Rand) {
	Sink(strconv.Itoa(r.Intn(10)))
}
