// Package churn is the bytechurn golden corpus: each annotated line must
// produce exactly the diagnostic its want regexp describes, and the
// unannotated lines (compiler-recognized zero-copy forms, package-level
// tables) must stay silent.
package churn

import "strings"

// roundTrip is the classic churn pattern: both directions copy.
func roundTrip(b []byte) []byte {
	s := string(b)   // want string\(\[\]byte\) conversion copies
	return []byte(s) // want \[\]byte\(string\) conversion copies
}

// mapProbe is exempt: m[string(b)] compiles to a zero-copy map lookup.
func mapProbe(m map[string]int, b []byte) int {
	return m[string(b)]
}

// compare is exempt: string(b) == lit compiles to a zero-copy comparison.
func compare(b []byte) bool {
	return string(b) == "privacy" || string(b) != "policy"
}

// fold flags the allocating strings case folders.
func fold(s string) string {
	if strings.ToUpper(s) == s { // want strings\.ToUpper allocates per call
		return s
	}
	return strings.ToLower(s) // want strings\.ToLower allocates per call
}

// nonByte conversions are not the checker's business.
func nonByte(rs []rune, r rune) string {
	return string(rs) + string(r)
}

// table is package-level initialization, not churn: no finding.
var table = []byte("privacy policy")

// titleOK: other strings helpers stay allowed.
func titleOK(s string) string {
	return strings.TrimSpace(s)
}
