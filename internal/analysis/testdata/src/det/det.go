// Package det is the determinism checker's golden corpus: each site
// marked `// want <regex>` must produce exactly that finding, and the
// unmarked sites are the sanctioned patterns that must stay silent.
package det

import (
	"math/rand"
	"sort"
	"time"
)

func clock() time.Time {
	return time.Now() // want call to time\.Now in deterministic package
}

func draw() int {
	return rand.Intn(10) // want global math/rand source \(rand\.Intn\)
}

// seeded is the allowlisted pattern: an explicit seeded source.
func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

func keysUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want map iteration appending to a slice without a following sort
		out = append(out, k)
	}
	return out
}

// keysSorted is the sanctioned collect-then-sort pattern.
func keysSorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// sum accumulates commutatively; iteration order cannot leak.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
