// Package spanend is the spanend checker's golden corpus; it starts
// spans against the real internal/obs tracing API.
package spanend

import (
	"context"

	"aipan/internal/obs"
)

// deferred is the canonical shape: defer runs on every exit path.
func deferred(ctx context.Context) {
	ctx, span := obs.StartSpan(ctx, "deferred")
	defer span.End()
	_ = ctx
}

// straightLine ends the span in the same block with no return between —
// accepted, though defer is preferred.
func straightLine(ctx context.Context) {
	_, span := obs.StartSpanWith(ctx, "straight", obs.A("k", "v"))
	work()
	span.End()
}

// closureEnd is the deferred-wrapper pattern the pipeline run span
// uses: End lives in a closure the function runs on every exit path.
func closureEnd(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "closure")
	ended := false
	end := func() {
		if !ended {
			ended = true
			span.End()
		}
	}
	defer end()
	work()
}

// transfer returns the span, handing the End obligation to the caller
// (obs.StartSpan itself delegates to StartSpanWith this way).
func transfer(ctx context.Context) (context.Context, *obs.Span) {
	return obs.StartSpan(ctx, "transfer")
}

// insideLit starts and ends within one function literal.
func insideLit(ctx context.Context) func() {
	return func() {
		_, span := obs.StartSpan(ctx, "lit")
		defer span.End()
	}
}

func neverEnded(ctx context.Context) {
	_, span := obs.StartSpan(ctx, "leak") // want span "span" from obs.StartSpan is never ended
	_ = span
	work()
}

func blankSpan(ctx context.Context) {
	ctx, _ = obs.StartSpan(ctx, "blank") // want blank identifier and can never be ended
	_ = ctx
}

func discarded(ctx context.Context) {
	obs.StartSpan(ctx, "dropped") // want result of obs.StartSpan is discarded
}

// returnBetween has an early return between start and the straight-line
// End, so the error path leaks the span.
func returnBetween(ctx context.Context, fail bool) {
	_, span := obs.StartSpan(ctx, "early") // want not ended on all paths
	if fail {
		return
	}
	span.End()
}

// conditionalEnd only ends the span on one branch.
func conditionalEnd(ctx context.Context, ok bool) {
	_, span := obs.StartSpan(ctx, "branch") // want not ended on all paths
	if ok {
		span.End()
	}
	work()
}

func work() {}
