// Package gor is the goroutine checker's golden corpus. The same
// package is loaded twice by the test: once outside the allowlist
// (the want below fires) and once inside it (nothing fires) — the
// allowlisted negative.
package gor

func spawn(f func()) {
	go f() // want naked go statement
}

// serial is ordinary code: calling a function value is not spawning.
func serial(f func()) {
	f()
}
