package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// errwrapChecker enforces the error-chain discipline resume and
// refusal paths depend on: store/engine callers match sentinel and
// wrapped errors with errors.Is/As, which only works when every
// fmt.Errorf that carries an error operand uses %w. It also flags
// silently discarded error returns (a bare `f()` expression statement
// dropping an error) in non-test pipeline code — an ignored Append or
// Close is how checkpoint corruption escapes unnoticed. An explicit
// `_ = f()` stays legal: it is a visible, reviewable statement of
// intent.
var errwrapChecker = &Checker{
	Name: "errwrap",
	Doc:  "fmt.Errorf with an error operand uses %w; no silently discarded error returns",
	Rationale: "Corpus runs triage failures by errors.Is/As walking wrapped chains; a %v " +
		"where %w belongs severs the chain and turns a typed, retryable fetch error into an " +
		"opaque string. Discarded error returns are worse: a store append that failed " +
		"silently is a dataset with holes no checksum will explain.",
	Example: `internal/crawler/fetch.go:131: [errwrap] fmt.Errorf formats an error with %v; use %w so errors.Is/As see the cause`,
	Run:     runErrwrap,
}

// discardOK lists callees whose error returns are conventionally
// meaningless to check: terminal printing (an error writing to stderr
// has no recovery path) and in-memory builders documented never to fail.
func discardOK(fn *types.Func) bool {
	switch pkgPathOf(fn) {
	case "fmt":
		return strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint")
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		switch named.Obj().Pkg().Path() + "." + named.Obj().Name() {
		case "strings.Builder", "bytes.Buffer":
			return true
		}
	}
	return false
}

// isHashInterface reports whether t is one of package hash's interfaces
// (hash.Hash, hash.Hash32, hash.Hash64).
func isHashInterface(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "hash" && strings.HasPrefix(named.Obj().Name(), "Hash")
}

func runErrwrap(p *Pass) {
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	for _, pkg := range p.Module.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkErrorf(p, pkg, n, errType)
				case *ast.ExprStmt:
					checkDiscard(p, pkg, n, errType)
				}
				return true
			})
		}
	}
}

// checkErrorf flags fmt.Errorf calls that format an error operand with
// anything other than %w.
func checkErrorf(p *Pass, pkg *Package, call *ast.CallExpr, errType *types.Interface) {
	fn := funcObj(pkg.Info, call)
	if fn == nil || fn.FullName() != "fmt.Errorf" || len(call.Args) < 2 {
		return
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		tv, ok := pkg.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if types.Implements(tv.Type, errType) || types.Implements(types.NewPointer(tv.Type), errType) {
			p.Reportf(arg.Pos(),
				"fmt.Errorf formats an error operand without %%w (breaks errors.Is/As matching up the chain)")
			return
		}
	}
}

// checkDiscard flags expression statements whose call result includes an
// error that nothing consumes.
func checkDiscard(p *Pass, pkg *Package, stmt *ast.ExprStmt, errType *types.Interface) {
	call, ok := stmt.X.(*ast.CallExpr)
	if !ok {
		return
	}
	fn := funcObj(pkg.Info, call)
	if fn == nil || discardOK(fn) {
		return
	}
	// hash.Hash.Write (reached through the embedded io.Writer method) is
	// documented to never return an error; recognize it by the static
	// receiver type at the call site.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if tv, ok := pkg.Info.Types[sel.X]; ok && isHashInterface(tv.Type) {
			return
		}
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Implements(sig.Results().At(i).Type(), errType) {
			p.Reportf(call.Pos(),
				"error return of %s silently discarded (handle it, or discard explicitly with _ =)", fn.Name())
			return
		}
	}
}
