package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	Path  string // import path ("aipan/internal/core")
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Module is the fully loaded target: every non-test package under the
// module root, type-checked against a from-source stdlib importer.
type Module struct {
	Root string // absolute module root (directory of go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // sorted by import path

	imp *moduleImporter

	graphOnce sync.Once
	graph     *CallGraph
}

// Graph returns the module's shared call graph, building it on first
// use and caching it for every subsequent checker and Run over this
// Module instance. The graph's iteration order is position-sorted, so a
// Module with a permuted Pkgs slice still produces an identical graph.
func (m *Module) Graph() *CallGraph {
	m.graphOnce.Do(func() { m.graph = NewCallGraph(m) })
	return m.graph
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		d = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod []byte) (string, error) {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: go.mod has no module directive")
}

// moduleImporter resolves module-internal imports from the loaded set
// and everything else (the stdlib) through a from-source importer, so
// the tool needs no compiled export data and no third-party loader.
type moduleImporter struct {
	pkgs     map[string]*types.Package
	fallback types.Importer
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// LoadModule parses and type-checks every non-test package under root
// (skipping testdata, hidden, and scripts directories). Test files are
// excluded: the invariants govern shipped pipeline code, and test-only
// wall-clock or goroutine use is legitimate.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %s is not a module root: %w", root, err)
	}
	modPath, err := modulePath(gomod)
	if err != nil {
		return nil, err
	}

	// The stdlib is type-checked from GOROOT source; cgo variants of net
	// et al. cannot be (no preprocessor), so force the pure-Go builds.
	build.Default.CgoEnabled = false

	fset := token.NewFileSet()
	mod := &Module{
		Root: root, Path: modPath, Fset: fset,
		imp: &moduleImporter{
			pkgs:     map[string]*types.Package{},
			fallback: importer.ForCompiler(fset, "source", nil),
		},
	}

	type parsed struct {
		pkg     *Package
		imports map[string]bool
	}
	var order []string
	byPath := map[string]*parsed{}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "scripts" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			return err
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		p := byPath[importPath]
		if p == nil {
			p = &parsed{pkg: &Package{Path: importPath, Dir: dir}, imports: map[string]bool{}}
			byPath[importPath] = p
			order = append(order, importPath)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("analysis: %w", err)
		}
		p.pkg.Files = append(p.pkg.Files, f)
		for _, im := range f.Imports {
			p.imports[strings.Trim(im.Path.Value, `"`)] = true
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(order)

	// Type-check module packages in dependency order: repeatedly check
	// every package whose module-internal imports are already done.
	done := 0
	for done < len(order) {
		progress := false
		for _, path := range order {
			p := byPath[path]
			if p.pkg.Types != nil {
				continue
			}
			ready := true
			for im := range p.imports {
				if byPath[im] != nil && byPath[im].pkg.Types == nil {
					ready = false
					break
				}
			}
			if !ready {
				continue
			}
			if err := mod.typeCheck(p.pkg); err != nil {
				return nil, err
			}
			done++
			progress = true
		}
		if !progress {
			return nil, fmt.Errorf("analysis: import cycle among module packages")
		}
	}
	for _, path := range order {
		mod.Pkgs = append(mod.Pkgs, byPath[path].pkg)
	}
	return mod, nil
}

// typeCheck populates pkg.Types and pkg.Info and registers the package
// with the module importer.
func (m *Module) typeCheck(pkg *Package) error {
	// Deterministic type-check input: files in name order regardless of
	// directory-walk order.
	sort.Slice(pkg.Files, func(i, j int) bool {
		return m.Fset.File(pkg.Files[i].Pos()).Name() < m.Fset.File(pkg.Files[j].Pos()).Name()
	})
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: m.imp}
	tpkg, err := conf.Check(pkg.Path, m.Fset, pkg.Files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", pkg.Path, err)
	}
	pkg.Types, pkg.Info = tpkg, info
	m.imp.pkgs[pkg.Path] = tpkg
	return nil
}

// LoadPackageDir parses and type-checks one extra directory (a checker's
// testdata package) as importPath, resolving module-internal imports
// against the already loaded module. The package is returned but not
// added to mod.Pkgs.
func (m *Module) LoadPackageDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: importPath, Dir: dir}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	if err := m.typeCheck(pkg); err != nil {
		return nil, err
	}
	return pkg, nil
}
