package analysis

import (
	"go/ast"
	"go/types"
)

// ctxthreadChecker keeps corpus-scale runs cancellable: an exported
// function that transitively performs network I/O, sleeps, or blocks on
// a channel must take a context.Context as its first parameter, so a
// caller can always bound it. Blocking facts and call edges come from
// the shared module call graph (one build per run, reused by every
// interprocedural checker); interface dispatch is invisible to the
// graph — the repo's interfaces already carry ctx in their method
// signatures. Goroutine bodies are excluded: `go f()` returns
// immediately in the spawning function.
var ctxthreadChecker = &Checker{
	Name: "ctxthread",
	Doc:  "exported functions that transitively block must take context.Context first",
	Rationale: "A function that can stall on external state — a channel peer, a network " +
		"round trip, a sleep — must be boundable by its caller, or one wedged stage pins an " +
		"entire corpus run. The call graph's blocking fixpoint finds transitive blockers " +
		"(a function is blocking if it blocks directly or calls a module function that does), " +
		"so the ctx-first convention cannot be laundered through a helper.",
	Example: `internal/engine/limiter.go:42: [ctxthread] exported Release blocks (channel receive) but does not take context.Context as its first parameter`,
	Run:     runCtxthread,
}

// blockingCalls maps a types.Func full name to a short reason. The set
// is deliberately conservative: only primitives that can stall for
// unbounded time on external state.
var blockingCalls = map[string]string{
	"time.Sleep":                           "time.Sleep",
	"net/http.Get":                         "http.Get",
	"net/http.Head":                        "http.Head",
	"net/http.Post":                        "http.Post",
	"net/http.PostForm":                    "http.PostForm",
	"net/http.ListenAndServe":              "http.ListenAndServe",
	"net/http.ListenAndServeTLS":           "http.ListenAndServeTLS",
	"net/http.Serve":                       "http.Serve",
	"net/http.ServeTLS":                    "http.ServeTLS",
	"(*net/http.Client).Do":                "http Client.Do",
	"(*net/http.Client).Get":               "http Client.Get",
	"(*net/http.Client).Head":              "http Client.Head",
	"(*net/http.Client).Post":              "http Client.Post",
	"(*net/http.Client).PostForm":          "http Client.PostForm",
	"(*net/http.Server).ListenAndServe":    "http Server.ListenAndServe",
	"(*net/http.Server).ListenAndServeTLS": "http Server.ListenAndServeTLS",
	"(*net/http.Server).Serve":             "http Server.Serve",
	"(*net/http.Server).ServeTLS":          "http Server.ServeTLS",
}

// fixedSignatures are interface-mandated method names whose signatures
// cannot grow a ctx parameter; the interface contract, not this checker,
// governs them.
var fixedSignatures = map[string]bool{"ServeHTTP": true}

func runCtxthread(p *Pass) {
	g := p.Graph
	blocked := g.Blocked()
	for _, obj := range g.Order {
		node := g.Nodes[obj]
		reason, ok := blocked[obj]
		if !ok || !node.Decl.Name.IsExported() || !receiverExported(node.Decl) {
			continue
		}
		if fixedSignatures[node.Decl.Name.Name] {
			continue
		}
		sig := obj.Type().(*types.Signature)
		if firstParamIsContext(sig) {
			continue
		}
		p.Reportf(node.Decl.Pos(),
			"exported %s blocks (%s) but does not take context.Context as its first parameter",
			obj.Name(), reason)
	}
}

// selectCommOps collects the nodes inside select comm clauses (the
// `case <-ch:` operations); those channel ops are accounted to the
// select itself, not double-counted as bare blocking ops.
func selectCommOps(body *ast.BlockStmt) map[ast.Node]bool {
	ops := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					if m != nil {
						ops[m] = true
					}
					return true
				})
			}
		}
		return true
	})
	return ops
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// receiverExported reports whether a method's receiver base type is
// exported (true for plain functions): methods on unexported types are
// not public API even when their names are capitalized.
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func firstParamIsContext(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
