package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ctxthreadChecker keeps corpus-scale runs cancellable: an exported
// function that transitively performs network I/O, sleeps, or blocks on
// a channel must take a context.Context as its first parameter, so a
// caller can always bound it. The call graph is built over the whole
// module from static call edges (interface dispatch is invisible to the
// checker — the repo's interfaces already carry ctx in their method
// signatures). Goroutine bodies are excluded: `go f()` returns
// immediately in the spawning function.
var ctxthreadChecker = &Checker{
	Name: "ctxthread",
	Doc:  "exported functions that transitively block must take context.Context first",
	Run:  runCtxthread,
}

// blockingCalls maps a types.Func full name to a short reason. The set
// is deliberately conservative: only primitives that can stall for
// unbounded time on external state.
var blockingCalls = map[string]string{
	"time.Sleep":                                "time.Sleep",
	"net/http.Get":                              "http.Get",
	"net/http.Head":                             "http.Head",
	"net/http.Post":                             "http.Post",
	"net/http.PostForm":                         "http.PostForm",
	"net/http.ListenAndServe":                   "http.ListenAndServe",
	"net/http.ListenAndServeTLS":                "http.ListenAndServeTLS",
	"net/http.Serve":                            "http.Serve",
	"net/http.ServeTLS":                         "http.ServeTLS",
	"(*net/http.Client).Do":                     "http Client.Do",
	"(*net/http.Client).Get":                    "http Client.Get",
	"(*net/http.Client).Head":                   "http Client.Head",
	"(*net/http.Client).Post":                   "http Client.Post",
	"(*net/http.Client).PostForm":               "http Client.PostForm",
	"(*net/http.Server).ListenAndServe":         "http Server.ListenAndServe",
	"(*net/http.Server).ListenAndServeTLS":      "http Server.ListenAndServeTLS",
	"(*net/http.Server).Serve":                  "http Server.Serve",
	"(*net/http.Server).ServeTLS":               "http Server.ServeTLS",
}

// fixedSignatures are interface-mandated method names whose signatures
// cannot grow a ctx parameter; the interface contract, not this checker,
// governs them.
var fixedSignatures = map[string]bool{"ServeHTTP": true}

// funcInfo is the per-function call-graph node.
type funcInfo struct {
	pkg     *Package
	decl    *ast.FuncDecl
	blocked bool
	reason  string
	callees []*types.Func
}

func runCtxthread(p *Pass) {
	funcs := map[*types.Func]*funcInfo{}
	// order carries declaration order (packages are sorted by path,
	// files by name), so fixpoint propagation — and therefore the
	// "calls X (why)" reason chains — is deterministic.
	var order []*types.Func

	// Pass 1: per-function direct blocking facts and static call edges.
	for _, pkg := range p.Module.Pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				fi := &funcInfo{pkg: pkg, decl: fd}
				funcs[obj] = fi
				order = append(order, obj)
				inComm := selectCommOps(fd.Body)
				inspectOutsideGo(fd.Body, func(n ast.Node) {
					switch n := n.(type) {
					case *ast.SendStmt:
						if !inComm[n] {
							fi.block("channel send")
						}
					case *ast.UnaryExpr:
						if n.Op.String() == "<-" && !inComm[n] {
							fi.block("channel receive")
						}
					case *ast.SelectStmt:
						if !selectHasDefault(n) {
							fi.block("select")
						}
					case *ast.CallExpr:
						callee := funcObj(pkg.Info, n)
						if callee == nil {
							return
						}
						if why, ok := blockingCalls[callee.FullName()]; ok {
							fi.block(why)
						} else if pkgPathOf(callee) == "net" &&
							strings.HasPrefix(callee.Name(), "Dial") {
							fi.block("net." + callee.Name())
						} else if strings.HasPrefix(pkgPathOf(callee), p.Module.Path) {
							fi.callees = append(fi.callees, callee)
						}
					}
				})
			}
		}
	}

	// Pass 2: propagate blocking-ness over call edges to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, obj := range order {
			fi := funcs[obj]
			if fi.blocked {
				continue
			}
			for _, callee := range fi.callees {
				if cfi := funcs[callee]; cfi != nil && cfi.blocked {
					fi.blocked = true
					fi.reason = "calls " + callee.Name() + " (" + cfi.reason + ")"
					changed = true
					break
				}
			}
		}
	}

	// Pass 3: report exported blocking functions without a leading ctx.
	for _, obj := range order {
		fi := funcs[obj]
		if !fi.blocked || !fi.decl.Name.IsExported() || !receiverExported(fi.decl) {
			continue
		}
		if fixedSignatures[fi.decl.Name.Name] {
			continue
		}
		sig := obj.Type().(*types.Signature)
		if firstParamIsContext(sig) {
			continue
		}
		p.Reportf(fi.decl.Pos(),
			"exported %s blocks (%s) but does not take context.Context as its first parameter",
			obj.Name(), fi.reason)
	}
}

// block records the first direct blocking reason.
func (fi *funcInfo) block(why string) {
	if !fi.blocked {
		fi.blocked = true
		fi.reason = why
	}
}

// inspectOutsideGo walks body, skipping the subtrees of go statements
// (spawned work does not block the spawner) and of function literals
// (a closure blocks whoever eventually invokes it — typically an engine
// stage, whose Map caller holds the ctx — not the function that merely
// constructs and registers it).
func inspectOutsideGo(body *ast.BlockStmt, visit func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.GoStmt, *ast.FuncLit:
			return false
		}
		if n != nil {
			visit(n)
		}
		return true
	})
}

// selectCommOps collects the nodes inside select comm clauses (the
// `case <-ch:` operations); those channel ops are accounted to the
// select itself, not double-counted as bare blocking ops.
func selectCommOps(body *ast.BlockStmt) map[ast.Node]bool {
	ops := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				ast.Inspect(cc.Comm, func(m ast.Node) bool {
					if m != nil {
						ops[m] = true
					}
					return true
				})
			}
		}
		return true
	})
	return ops
}

func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// receiverExported reports whether a method's receiver base type is
// exported (true for plain functions): methods on unexported types are
// not public API even when their names are capitalized.
func receiverExported(fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return true
	}
	t := fd.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

func firstParamIsContext(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	named, ok := sig.Params().At(0).Type().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
