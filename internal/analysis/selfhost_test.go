package analysis

import (
	"os"
	"path/filepath"
	"testing"
)

// TestSelfHost is the tier-1 gate: aipanvet run over its own repository
// must be clean — zero non-baselined diagnostics and zero stale
// baseline entries. Deliberately inserting a time.Now() into
// internal/annotate or a naked `go func` into internal/core fails this
// test (and therefore `go test ./...`).
func TestSelfHost(t *testing.T) {
	mod := loadRepo(t)
	diags := Run(mod, DefaultConfig(), Checkers())

	var entries []BaselineEntry
	data, err := os.ReadFile(filepath.Join(mod.Root, DefaultBaselineName))
	if err == nil {
		entries, err = ParseBaseline(data)
		if err != nil {
			t.Fatalf("committed baseline is malformed: %v", err)
		}
	} else if !os.IsNotExist(err) {
		t.Fatalf("reading baseline: %v", err)
	}

	active, stale := ApplyBaseline(entries, diags)
	for _, d := range active {
		t.Errorf("non-baselined finding: %s", d.String())
	}
	for _, e := range stale {
		t.Errorf("stale baseline entry (finding fixed? remove line %d): %s", e.Line, e.Key)
	}
}

// TestSelfHostCoversDeterministicPackages pins the gate's scope: the
// packages on the dataset byte path must stay in the determinism
// checker's scope, and the engine/obs goroutine monopoly must hold.
// Narrowing DefaultConfig silently would disarm the acceptance
// guarantee above.
func TestSelfHostCoversDeterministicPackages(t *testing.T) {
	cfg := DefaultConfig()
	for _, must := range []string{
		"aipan/internal/core", "aipan/internal/annotate", "aipan/internal/segment",
		"aipan/internal/taxonomy", "aipan/internal/stats", "aipan/internal/store",
		"aipan/internal/report",
	} {
		if !cfg.deterministic(must) {
			t.Errorf("DeterministicPkgs no longer covers %s", must)
		}
	}
	if cfg.deterministic("aipan/internal/webgen") || cfg.deterministic("aipan/internal/obs") {
		t.Error("seeded generators and obs must stay allowlisted by construction, not scoped in")
	}
	if !cfg.goroutineOK("aipan/internal/engine") || !cfg.goroutineOK("aipan/internal/obs") {
		t.Error("engine and obs must remain the only goroutine-bearing packages")
	}
	if cfg.goroutineOK("aipan/internal/core") {
		t.Error("core must not be allowed naked goroutines")
	}
}
