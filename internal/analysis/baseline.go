package analysis

import (
	"fmt"
	"sort"
	"strings"
)

// A baseline file grandfathers known findings so the gate can be
// adopted without a flag day, while still failing on anything new. One
// entry per line, in Diagnostic.Key form (line numbers are omitted so
// entries survive unrelated edits), with a mandatory trailing
// justification comment:
//
//	internal/engine/limiter.go: [ctxthread] exported Release ... # never blocks: slot held by contract
//
// Entries are a contract in both directions: a finding without an entry
// fails the gate, and an entry without a finding is stale and fails the
// gate too — fixed findings must leave the baseline in the same change.
type BaselineEntry struct {
	Key           string `json:"key"`
	Justification string `json:"justification"`
	Line          int    `json:"-"` // line in the baseline file, for stale reports
}

// ParseBaseline parses the baseline format: '#'-prefixed comment lines
// and blank lines are skipped; every other line is "key # justification".
func ParseBaseline(data []byte) ([]BaselineEntry, error) {
	var entries []BaselineEntry
	for i, line := range strings.Split(string(data), "\n") {
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		key, just, found := strings.Cut(trimmed, " # ")
		if !found || strings.TrimSpace(just) == "" {
			return nil, fmt.Errorf("analysis: baseline line %d: every entry needs a ' # justification' suffix", i+1)
		}
		key = strings.TrimSpace(key)
		if !strings.Contains(key, ": [") {
			return nil, fmt.Errorf("analysis: baseline line %d: entry %q is not in 'file: [check] message' form", i+1, key)
		}
		entries = append(entries, BaselineEntry{Key: key, Justification: strings.TrimSpace(just), Line: i + 1})
	}
	return entries, nil
}

// ApplyBaseline splits findings into active (not baselined) and reports
// stale entries (baselined but no longer found). One entry suppresses
// every diagnostic with its key: a message that appears twice in a file
// is one decision, not two.
func ApplyBaseline(entries []BaselineEntry, diags []Diagnostic) (active []Diagnostic, stale []BaselineEntry) {
	matched := make([]bool, len(entries))
	byKey := map[string]int{}
	for i, e := range entries {
		if _, dup := byKey[e.Key]; !dup {
			byKey[e.Key] = i
		}
	}
	for _, d := range diags {
		if i, ok := byKey[d.Key()]; ok {
			matched[i] = true
			continue
		}
		active = append(active, d)
	}
	for i, e := range entries {
		if !matched[i] {
			stale = append(stale, e)
		}
	}
	return active, stale
}

// Check extracts the checker name from the entry key, "" if malformed.
func (e BaselineEntry) Check() string {
	_, rest, ok := strings.Cut(e.Key, ": [")
	if !ok {
		return ""
	}
	name, _, ok := strings.Cut(rest, "]")
	if !ok {
		return ""
	}
	return name
}

// FilterBaseline keeps the entries belonging to the given checkers.
// When only a subset of checkers runs (-checks), entries for the
// others are out of scope — neither matched nor stale.
func FilterBaseline(entries []BaselineEntry, checkers []*Checker) []BaselineEntry {
	names := map[string]bool{}
	for _, c := range checkers {
		names[c.Name] = true
	}
	var out []BaselineEntry
	for _, e := range entries {
		if names[e.Check()] {
			out = append(out, e)
		}
	}
	return out
}

// FormatBaseline renders findings as a baseline file skeleton, one
// entry per unique key with a placeholder justification to be filled in
// by hand. Keys are sorted and deduplicated.
func FormatBaseline(diags []Diagnostic) []byte {
	seen := map[string]bool{}
	var keys []string
	for _, d := range diags {
		if k := d.Key(); !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# aipanvet baseline — grandfathered findings, one per line.\n")
	b.WriteString("# Every entry carries a justification after ' # '. Stale entries fail the gate.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteString(" # TODO: justify or fix\n")
	}
	return []byte(b.String())
}
