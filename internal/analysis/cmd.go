package analysis

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// DefaultBaselineName is the committed baseline file at the module root.
const DefaultBaselineName = "aipanvet.baseline"

// VetFlags are the shared CLI knobs behind `aipanvet` and `aipan vet`,
// validated as a set before any loading starts.
type VetFlags struct {
	Dir           string // module directory (or any directory inside it)
	JSON          bool   // machine-readable report on stdout
	Baseline      string // baseline path ("" = <root>/aipanvet.baseline if present, "none" = ignore)
	WriteBaseline string // regenerate the baseline skeleton here and exit
	Checks        string // comma-separated checker subset ("" = all)
	Timing        bool   // print per-checker wall times to stderr
	Explain       string // print one checker's rationale and exit (no module load)
}

// Validate rejects nonsensical flag combinations up front, in the style
// of the run command's flag validation.
func (vf *VetFlags) Validate() error {
	if vf.Dir == "" {
		return fmt.Errorf("-C must name a directory inside the module (got empty)")
	}
	if vf.JSON && vf.WriteBaseline != "" {
		return fmt.Errorf("-json and -write-baseline are mutually exclusive (the baseline skeleton is the output)")
	}
	if vf.Checks != "" {
		for _, name := range strings.Split(vf.Checks, ",") {
			if CheckerByName(strings.TrimSpace(name)) == nil {
				return fmt.Errorf("-checks: unknown checker %q (have %s)", name, checkerNames())
			}
		}
	}
	if vf.Explain != "" && CheckerByName(vf.Explain) == nil {
		return fmt.Errorf("-explain: unknown checker %q (have %s)", vf.Explain, checkerNames())
	}
	return nil
}

// Explain prints one checker's one-line doc, rationale paragraph, and a
// representative finding — the stable reference a baseline justification
// can cite. It needs no module load.
func Explain(w io.Writer, c *Checker) {
	fmt.Fprintf(w, "%s — %s\n\n", c.Name, c.Doc)
	fmt.Fprintln(w, c.Rationale)
	if c.Example != "" {
		fmt.Fprintf(w, "\nExample finding:\n  %s\n", c.Example)
	}
}

func checkerNames() string {
	var names []string
	for _, c := range Checkers() {
		names = append(names, c.Name)
	}
	return strings.Join(names, ", ")
}

// selected resolves the -checks subset.
func (vf *VetFlags) selected() []*Checker {
	if vf.Checks == "" {
		return Checkers()
	}
	var out []*Checker
	for _, name := range strings.Split(vf.Checks, ",") {
		out = append(out, CheckerByName(strings.TrimSpace(name)))
	}
	return out
}

// jsonReport is the -json output shape, scrapeable by CI.
type jsonReport struct {
	ModulePath  string          `json:"module"`
	Checkers    []string        `json:"checkers"`
	Diagnostics []Diagnostic    `json:"diagnostics"`
	Baselined   int             `json:"baselined"`
	Stale       []BaselineEntry `json:"stale_baseline"`
}

// Main is the whole tool: parse flags from argv, load the module, run
// the checkers, apply the baseline, print the report. Both cmd/aipanvet
// and the `aipan vet` subcommand delegate here. Exit codes: 0 clean,
// 1 findings (or stale baseline entries), 2 usage or load failure.
func Main(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("aipanvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	vf := VetFlags{}
	fs.StringVar(&vf.Dir, "C", ".", "module directory (or any directory inside it)")
	fs.BoolVar(&vf.JSON, "json", false, "emit a machine-readable JSON report on stdout")
	fs.StringVar(&vf.Baseline, "baseline", "",
		"baseline file (default <module>/"+DefaultBaselineName+" when present; 'none' disables)")
	fs.StringVar(&vf.WriteBaseline, "write-baseline", "",
		"write a baseline skeleton for the current findings to this path and exit")
	fs.StringVar(&vf.Checks, "checks", "", "comma-separated checker subset (default all: "+checkerNames()+")")
	fs.BoolVar(&vf.Timing, "timing", false, "print per-checker wall times (and the shared call-graph build) to stderr")
	fs.StringVar(&vf.Explain, "explain", "", "print the named checker's rationale and a representative finding, then exit")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: aipanvet [flags] [./...]")
		fmt.Fprintln(stderr, "\nCheckers:")
		for _, c := range Checkers() {
			fmt.Fprintf(stderr, "  %-12s %s\n", c.Name, c.Doc)
		}
		fmt.Fprintln(stderr, "\nFlags:")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	for _, arg := range fs.Args() {
		// The only supported pattern is the whole module; accept the
		// conventional spellings of it.
		if arg != "./..." && arg != "all" {
			fmt.Fprintf(stderr, "aipanvet: unsupported package pattern %q (the tool always checks the whole module; use ./...)\n", arg)
			return 2
		}
	}
	if err := vf.Validate(); err != nil {
		fmt.Fprintln(stderr, "aipanvet:", err)
		return 2
	}
	if vf.Explain != "" {
		Explain(stdout, CheckerByName(vf.Explain))
		return 0
	}

	root, err := FindModuleRoot(vf.Dir)
	if err != nil {
		fmt.Fprintln(stderr, "aipanvet:", err)
		return 2
	}
	mod, err := LoadModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "aipanvet:", err)
		return 2
	}
	diags, timings := RunTimed(mod, DefaultConfig(), vf.selected())
	if vf.Timing {
		var total time.Duration
		for _, t := range timings {
			fmt.Fprintf(stderr, "aipanvet: %-12s %v\n", t.Name, t.Duration.Round(time.Microsecond))
			total += t.Duration
		}
		fmt.Fprintf(stderr, "aipanvet: %-12s %v\n", "total", total.Round(time.Microsecond))
	}

	if vf.WriteBaseline != "" {
		if err := os.WriteFile(vf.WriteBaseline, FormatBaseline(diags), 0o644); err != nil {
			fmt.Fprintln(stderr, "aipanvet:", err)
			return 2
		}
		fmt.Fprintf(stderr, "aipanvet: wrote %d baseline entries to %s (justifications pending)\n",
			len(diags), vf.WriteBaseline)
		return 0
	}

	var entries []BaselineEntry
	switch vf.Baseline {
	case "none":
	case "":
		if data, err := os.ReadFile(filepath.Join(root, DefaultBaselineName)); err == nil {
			if entries, err = ParseBaseline(data); err != nil {
				fmt.Fprintln(stderr, "aipanvet:", err)
				return 2
			}
		}
	default:
		data, err := os.ReadFile(vf.Baseline)
		if err != nil {
			fmt.Fprintln(stderr, "aipanvet:", err)
			return 2
		}
		if entries, err = ParseBaseline(data); err != nil {
			fmt.Fprintln(stderr, "aipanvet:", err)
			return 2
		}
	}
	active, stale := ApplyBaseline(FilterBaseline(entries, vf.selected()), diags)

	if vf.JSON {
		var names []string
		for _, c := range vf.selected() {
			names = append(names, c.Name)
		}
		rep := jsonReport{
			ModulePath: mod.Path, Checkers: names,
			Diagnostics: active, Baselined: len(diags) - len(active), Stale: stale,
		}
		if rep.Diagnostics == nil {
			rep.Diagnostics = []Diagnostic{}
		}
		if rep.Stale == nil {
			rep.Stale = []BaselineEntry{}
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "aipanvet:", err)
			return 2
		}
	} else {
		for _, d := range active {
			fmt.Fprintln(stdout, d.String())
		}
		for _, e := range stale {
			fmt.Fprintf(stderr, "aipanvet: stale baseline entry (line %d, finding fixed? remove it): %s\n", e.Line, e.Key)
		}
	}
	if len(active) > 0 || len(stale) > 0 {
		return 1
	}
	return 0
}
