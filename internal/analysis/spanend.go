package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// spanendChecker keeps the trace tree honest: a span that is started but
// never ended records nothing (its duration is lost and the exporter
// never sees it), and one that is ended only on some control-flow paths
// leaks whenever the other path is taken. Every obs.StartSpan /
// obs.StartSpanWith call in non-test code must therefore bind the span
// and end it on every path out of the enclosing function — `defer
// span.End()` by preference, or a straight-line `span.End()` with no
// return between start and end. Ending inside a nested function literal
// is accepted (the deferred-closure pattern the pipeline uses to end its
// run span exactly once), as is returning the span to the caller, which
// transfers the obligation.
var spanendChecker = &Checker{
	Name: "spanend",
	Doc:  "spans from obs.StartSpan/StartSpanWith are ended on all paths (prefer defer span.End())",
	Rationale: "A span that is started but not ended on some return path exports a trace " +
		"tree with silently missing subtrees — the trace viewer shows a gap, not an error, " +
		"and the flight recorder's ring retains a half-open span forever. Requiring an " +
		"End on every path (defer, always-run closure, or straight-line) keeps exported " +
		"traces structurally complete.",
	Example: `internal/core/pipeline.go:350: [spanend] span from StartSpan is not ended on all paths (prefer defer span.End())`,
	Run:     runSpanend,
}

func runSpanend(p *Pass) {
	for _, pkg := range p.Module.Pkgs {
		for _, f := range pkg.Files {
			name := p.Module.Fset.Position(f.Pos()).Filename
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
					checkSpanScope(p, pkg, fd.Body)
				}
			}
		}
	}
}

// spanStart is one StartSpan call bound to a variable in the scope under
// check, with the block position needed for the straight-line analysis.
type spanStart struct {
	obj   types.Object
	name  string // "StartSpan" or "StartSpanWith"
	stmt  *ast.AssignStmt
	block *ast.BlockStmt
	idx   int // index of stmt in block.List (-1 if not a direct block child)
}

// checkSpanScope analyzes one function body. Nested function literals
// are separate scopes: a span started inside a closure must be ended by
// that closure, and conversely a span started outside may be ended by a
// closure the outer function runs on every exit path.
func checkSpanScope(p *Pass, pkg *Package, body *ast.BlockStmt) {
	stmtPos := indexStatements(body)

	var starts []spanStart
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkSpanScope(p, pkg, n.Body)
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if fn := startSpanCallee(pkg, call); fn != "" {
					p.Reportf(call.Pos(),
						"result of obs.%s is discarded; bind the span and defer span.End()", fn)
				}
			}
		// A StartSpan call inside a return statement transfers the End
		// obligation to the caller (this is how obs.StartSpan itself
		// delegates to StartSpanWith); it needs no case here because
		// only assignment and bare-statement uses are ever reported.
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 {
				return true
			}
			call, ok := n.Rhs[0].(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := startSpanCallee(pkg, call)
			if fn == "" {
				return true
			}
			if len(n.Lhs) != 2 {
				return true
			}
			ident, ok := n.Lhs[1].(*ast.Ident)
			if !ok {
				return true
			}
			if ident.Name == "_" {
				p.Reportf(ident.Pos(),
					"span from obs.%s is assigned to the blank identifier and can never be ended", fn)
				return true
			}
			obj := pkg.Info.Defs[ident]
			if obj == nil {
				obj = pkg.Info.Uses[ident]
			}
			if obj == nil {
				return true
			}
			st := spanStart{obj: obj, name: fn, stmt: n, idx: -1}
			if pos, ok := stmtPos[ast.Stmt(n)]; ok {
				st.block, st.idx = pos.block, pos.idx
			}
			starts = append(starts, st)
		}
		return true
	})

	for _, st := range starts {
		checkSpanEnds(p, pkg, body, st, stmtPos)
	}
}

// endSite classifies one span.End() use inside the scope.
type endSite struct {
	deferred bool
	inLit    bool
	block    *ast.BlockStmt
	idx      int
}

// checkSpanEnds verifies one started span has a dominating End within
// the scope and reports otherwise.
func checkSpanEnds(p *Pass, pkg *Package, body *ast.BlockStmt, st spanStart, stmtPos map[ast.Stmt]stmtAt) {
	var sites []endSite
	depth := 0
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			depth++
			ast.Inspect(n.Body, walk)
			depth--
			return false
		case *ast.DeferStmt:
			if isEndCall(pkg, n.Call, st.obj) {
				sites = append(sites, endSite{deferred: true, inLit: depth > 0})
				return false
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok || !isEndCall(pkg, call, st.obj) {
				return true
			}
			site := endSite{inLit: depth > 0, idx: -1}
			if pos, ok := stmtPos[ast.Stmt(n)]; ok {
				site.block, site.idx = pos.block, pos.idx
			}
			sites = append(sites, site)
		}
		return true
	}
	ast.Inspect(body, walk)

	if len(sites) == 0 {
		p.Reportf(st.stmt.Pos(),
			"span %q from obs.%s is never ended in this function; defer %s.End() after starting it",
			st.obj.Name(), st.name, st.obj.Name())
		return
	}
	for _, site := range sites {
		if site.deferred || site.inLit {
			// defer runs on every exit path; a closure end-site is the
			// deferred-wrapper pattern and is accepted as dominating.
			return
		}
		if site.block == st.block && st.idx >= 0 && site.idx > st.idx &&
			!returnsBetween(st.block, st.idx+1, site.idx) {
			return
		}
	}
	p.Reportf(st.stmt.Pos(),
		"span %q from obs.%s is not ended on all paths (a return can skip %s.End(); use defer)",
		st.obj.Name(), st.name, st.obj.Name())
}

// stmtAt locates a statement as a direct child of a block.
type stmtAt struct {
	block *ast.BlockStmt
	idx   int
}

// indexStatements maps every direct block-child statement in the scope
// (excluding nested function literals) to its block and index.
func indexStatements(body *ast.BlockStmt) map[ast.Stmt]stmtAt {
	pos := map[ast.Stmt]stmtAt{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			for i, s := range b.List {
				pos[s] = stmtAt{block: b, idx: i}
			}
		}
		return true
	})
	return pos
}

// returnsBetween reports whether any statement in block.List[from:to]
// contains a return (at any depth outside nested function literals),
// which would let control skip a straight-line End below it.
func returnsBetween(block *ast.BlockStmt, from, to int) bool {
	for _, s := range block.List[from:to] {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			switch n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// startSpanCallee returns "StartSpan" / "StartSpanWith" when the call
// resolves to the internal/obs span constructors, else "".
func startSpanCallee(pkg *Package, call *ast.CallExpr) string {
	fn := funcObj(pkg.Info, call)
	if fn == nil || pkgPathOf(fn) != "aipan/internal/obs" {
		return ""
	}
	if name := fn.Name(); name == "StartSpan" || name == "StartSpanWith" {
		return name
	}
	return ""
}

// isEndCall reports whether call is `<span>.End()` on the given span
// object.
func isEndCall(pkg *Package, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	return ok && pkg.Info.Uses[ident] == obj
}
