package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorderChecker proves two freedom properties over every mutex in
// the module, interprocedurally:
//
//  1. Order: the acquisition graph (an edge L→M whenever M is acquired
//     — directly or through any call chain — while L is held) has no
//     cycles. Two goroutines taking the same pair of locks in opposite
//     orders is the classic unkillable deadlock; the cycle check makes
//     the whole module's lock hierarchy a DAG by construction.
//  2. No blocking under a lock: while a mutex is held, the code must
//     not perform a channel operation, a select without default, a
//     known-blocking network/http call, or a call into a
//     Config.LockBlockers function (store appends and scans: disk I/O
//     under a caller's lock serializes every worker behind one fd).
//     sync.Cond.Wait is exempt — it releases the mutex while parked.
//
// Lock identity is the types.Object of the mutex variable or struct
// field; goroutine bodies and function literals are separate scopes
// (their events do not execute under the spawning function's held set),
// and a deferred Unlock pins the lock as held to the end of the
// function, exactly like the runtime does.
var lockorderChecker = &Checker{
	Name: "lockorder",
	Doc:  "mutex acquisition graph must be acyclic and locks must not be held across blocking operations",
	Rationale: "A lock-order inversion deadlocks only under the precise interleaving that " +
		"production finds and tests do not, and a store append or channel send under a mutex " +
		"turns one slow disk write into a fleet-wide stall. The checker builds the module-wide " +
		"acquisition graph from per-function acquire summaries (so an inversion laundered " +
		"through a helper call is still an edge), rejects cycles, and rejects any blocking " +
		"operation — channel ops, selects, network calls, store I/O — inside a held region.",
	Example: `internal/server/cache.go:31: [lockorder] acquiring (pageCache).mu while holding (Server).mu creates a lock-order cycle`,
	Run:     runLockorder,
}

// mutexAcquire / mutexRelease classify sync primitive calls by the
// resolved method's full name (embedding resolves to the same objects).
var mutexAcquire = map[string]bool{
	"(*sync.Mutex).Lock":      true,
	"(*sync.Mutex).TryLock":   true,
	"(*sync.RWMutex).Lock":    true,
	"(*sync.RWMutex).TryLock": true,
	"(*sync.RWMutex).RLock":   true,
}

var mutexRelease = map[string]bool{
	"(*sync.Mutex).Unlock":    true,
	"(*sync.RWMutex).Unlock":  true,
	"(*sync.RWMutex).RUnlock": true,
}

// lockRef pairs a lock's identity with its stable display name.
type lockRef struct {
	obj  types.Object
	name string
}

// lockSummary is one function's interprocedural lock behavior: every
// lock it may acquire (transitively, outside go statements and
// literals) and whether calling it may block.
type lockSummary struct {
	acquires []lockRef // sorted by name, deduped by object
	blocks   string    // "" or a reason chain
}

func (s *lockSummary) addAcquire(r lockRef) bool {
	for _, a := range s.acquires {
		if a.obj == r.obj {
			return false
		}
	}
	s.acquires = append(s.acquires, r)
	sort.Slice(s.acquires, func(i, j int) bool { return s.acquires[i].name < s.acquires[j].name })
	return true
}

// lockEdge is one acquisition-order edge with the position and call
// chain that witnesses it.
type lockEdge struct {
	from, to lockRef
	pos      token.Pos
	via      string // "" for a direct acquire, else the callee name
}

type lockAnalysis struct {
	pass      *Pass
	summaries map[*types.Func]*lockSummary
	edges     []lockEdge
	edgeSeen  map[[2]types.Object]bool
	adj       map[types.Object][]types.Object
}

func runLockorder(p *Pass) {
	la := &lockAnalysis{
		pass:      p,
		summaries: map[*types.Func]*lockSummary{},
		edgeSeen:  map[[2]types.Object]bool{},
		adj:       map[types.Object][]types.Object{},
	}
	g := p.Graph
	// Pass A: per-function summaries, then the transitive fixpoint.
	for _, obj := range g.Order {
		la.summaries[obj] = la.directSummary(g.Nodes[obj])
	}
	for round := 0; round < 32; round++ {
		changed := false
		for _, obj := range g.Order {
			sum := la.summaries[obj]
			for _, site := range g.Nodes[obj].Sites {
				if site.InGo || site.InLit {
					continue
				}
				callee := la.summaries[site.Callee]
				if callee == nil {
					continue
				}
				for _, a := range callee.acquires {
					if sum.addAcquire(a) {
						changed = true
					}
				}
				if sum.blocks == "" && callee.blocks != "" {
					sum.blocks = "calls " + site.Callee.Name() + " (" + callee.blocks + ")"
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	// Pass B: held-set walk per function — emits blocking reports and
	// collects order edges.
	for _, obj := range g.Order {
		la.heldWalk(g.Nodes[obj])
	}
	// Pass C: cycle detection over the collected edges.
	for _, e := range la.edges {
		if la.reachable(e.to.obj, e.from.obj, map[types.Object]bool{}) {
			msg := "acquiring " + e.to.name + " while holding " + e.from.name + " creates a lock-order cycle"
			if e.via != "" {
				msg += " (via call to " + e.via + ")"
			}
			la.pass.Reportf(e.pos, "%s", msg)
		}
	}
}

// directSummary computes one function's own acquires and direct
// blocking reason (outside go statements and function literals).
func (la *lockAnalysis) directSummary(node *FuncNode) *lockSummary {
	sum := &lockSummary{}
	inComm := selectCommOps(node.Decl.Body)
	walkFlagged(node.Decl.Body, false, false, func(n ast.Node, inGo, inLit bool) {
		if inGo || inLit {
			return
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			if !inComm[n] && sum.blocks == "" {
				sum.blocks = "channel send"
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !inComm[n] && sum.blocks == "" {
				sum.blocks = "channel receive"
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) && sum.blocks == "" {
				sum.blocks = "select"
			}
		case *ast.CallExpr:
			if ref, ok := la.lockTarget(node.Pkg, n, mutexAcquire); ok {
				sum.addAcquire(ref)
				return
			}
			callee := funcObj(node.Pkg.Info, n)
			if callee == nil {
				return
			}
			if why := externalBlockReason(la.pass.Cfg, callee); why != "" && sum.blocks == "" {
				sum.blocks = why
			}
		}
	})
	return sum
}

// externalBlockReason classifies a non-module callee (or a configured
// LockBlocker) as blocking.
func externalBlockReason(cfg Config, fn *types.Func) string {
	if why, ok := blockingCalls[fn.FullName()]; ok {
		return why
	}
	if pkgPathOf(fn) == "net" && strings.HasPrefix(fn.Name(), "Dial") {
		return "net." + fn.Name()
	}
	for _, b := range cfg.LockBlockers {
		if b.Pkg == pkgPathOf(fn) && b.Name == fn.Name() {
			return fn.Name() + " (store I/O)"
		}
	}
	return ""
}

// heldLock is one entry of the walker's held set.
type heldLock struct {
	ref    lockRef
	sticky bool // deferred unlock: held to function end
}

// lockWalker runs the sequential held-set walk over one scope (a
// function body or a function literal, each with a fresh held set).
type lockWalker struct {
	la     *lockAnalysis
	node   *FuncNode
	inComm map[ast.Node]bool
	held   []heldLock
}

func (la *lockAnalysis) heldWalk(node *FuncNode) {
	lw := &lockWalker{la: la, node: node, inComm: selectCommOps(node.Decl.Body)}
	lw.walk(node.Decl.Body)
}

// sub analyzes a nested scope (function literal body) with its own
// empty held set, sharing the comm-op map and edge sink.
func (lw *lockWalker) sub(body *ast.BlockStmt) {
	inner := &lockWalker{la: lw.la, node: lw.node, inComm: lw.inComm}
	inner.walk(body)
}

func (lw *lockWalker) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// Spawned code runs concurrently, not under this held set —
			// but it is its own scope worth checking.
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				lw.sub(lit.Body)
			}
			return false
		case *ast.FuncLit:
			lw.sub(n.Body)
			return false
		case *ast.DeferStmt:
			lw.handleDefer(n)
			return false
		case *ast.SendStmt:
			if !lw.inComm[n] {
				lw.blocking(n.Pos(), "channel send")
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !lw.inComm[n] {
				lw.blocking(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				lw.blocking(n.Pos(), "select")
			}
		case *ast.CallExpr:
			lw.call(n)
		}
		return true
	})
}

// handleDefer pins locks released by a deferred call (or anywhere
// inside a deferred function literal) as held to the end of the scope.
func (lw *lockWalker) handleDefer(d *ast.DeferStmt) {
	pin := func(call *ast.CallExpr) {
		if ref, ok := lw.la.lockTarget(lw.node.Pkg, call, mutexRelease); ok {
			for i := range lw.held {
				if lw.held[i].ref.obj == ref.obj {
					lw.held[i].sticky = true
				}
			}
		}
	}
	pin(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				pin(call)
			}
			return true
		})
	}
}

func (lw *lockWalker) call(call *ast.CallExpr) {
	pkg := lw.node.Pkg
	if ref, ok := lw.la.lockTarget(pkg, call, mutexAcquire); ok {
		for _, h := range lw.held {
			if h.ref.obj != ref.obj {
				lw.la.addEdge(h.ref, ref, call.Pos(), "")
			}
		}
		lw.held = append(lw.held, heldLock{ref: ref})
		return
	}
	if ref, ok := lw.la.lockTarget(pkg, call, mutexRelease); ok {
		for i := len(lw.held) - 1; i >= 0; i-- {
			if lw.held[i].ref.obj == ref.obj && !lw.held[i].sticky {
				lw.held = append(lw.held[:i], lw.held[i+1:]...)
				break
			}
		}
		return
	}
	callee := funcObj(pkg.Info, call)
	if callee == nil {
		return
	}
	// sync.Cond.Wait releases the mutex while parked: exempt.
	if callee.FullName() == "(*sync.Cond).Wait" {
		return
	}
	if why := externalBlockReason(lw.la.pass.Cfg, callee); why != "" {
		lw.blocking(call.Pos(), "call to "+callee.Name()+" ("+why+")")
		return
	}
	sum := lw.la.summaries[callee]
	if sum == nil {
		return
	}
	if sum.blocks != "" {
		lw.blocking(call.Pos(), "call to "+callee.Name()+" ("+sum.blocks+")")
	}
	for _, h := range lw.held {
		for _, a := range sum.acquires {
			if h.ref.obj != a.obj {
				lw.la.addEdge(h.ref, a, call.Pos(), callee.Name())
			}
		}
	}
}

// blocking reports a blocking operation inside a held region.
func (lw *lockWalker) blocking(pos token.Pos, what string) {
	if len(lw.held) == 0 {
		return
	}
	names := make([]string, len(lw.held))
	for i, h := range lw.held {
		names[i] = h.ref.name
	}
	lw.la.pass.Reportf(pos, "lock %s held across %s", strings.Join(names, ", "), what)
}

// addEdge records one acquisition-order edge (first witness wins).
func (la *lockAnalysis) addEdge(from, to lockRef, pos token.Pos, via string) {
	key := [2]types.Object{from.obj, to.obj}
	if la.edgeSeen[key] {
		return
	}
	la.edgeSeen[key] = true
	la.edges = append(la.edges, lockEdge{from: from, to: to, pos: pos, via: via})
	la.adj[from.obj] = append(la.adj[from.obj], to.obj)
}

// reachable reports whether `to` is reachable from `from` in the
// acquisition graph.
func (la *lockAnalysis) reachable(from, to types.Object, seen map[types.Object]bool) bool {
	if from == to {
		return true
	}
	if seen[from] {
		return false
	}
	seen[from] = true
	for _, next := range la.adj[from] {
		if la.reachable(next, to, seen) {
			return true
		}
	}
	return false
}

// lockTarget classifies a call as a mutex acquire/release (per the
// given method set) and resolves the lock's identity and display name.
func (la *lockAnalysis) lockTarget(pkg *Package, call *ast.CallExpr, set map[string]bool) (lockRef, bool) {
	fn := funcObj(pkg.Info, call)
	if fn == nil || !set[fn.FullName()] {
		return lockRef{}, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockRef{}, false
	}
	return la.lockIdent(pkg, sel.X)
}

// lockIdent resolves a mutex expression to (object, display name):
// struct fields render as "(Type).field", package vars as "pkg.var",
// locals as their name. Embedded mutexes (s.Lock()) identify as the
// holder variable.
func (la *lockAnalysis) lockIdent(pkg *Package, e ast.Expr) (lockRef, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		if obj == nil {
			return lockRef{}, false
		}
		name := obj.Name()
		if obj.Parent() == pkg.Types.Scope() {
			name = pkg.Types.Name() + "." + name
		}
		return lockRef{obj: obj, name: name}, true
	case *ast.SelectorExpr:
		obj := pkg.Info.Uses[e.Sel]
		if obj == nil {
			return lockRef{}, false
		}
		name := obj.Name()
		if tv, ok := pkg.Info.Types[e.X]; ok {
			t := tv.Type
			for {
				if p, ok := t.(*types.Pointer); ok {
					t = p.Elem()
					continue
				}
				break
			}
			if named, ok := t.(*types.Named); ok {
				name = "(" + named.Obj().Name() + ")." + name
			}
		}
		return lockRef{obj: obj, name: name}, true
	}
	return lockRef{}, false
}
