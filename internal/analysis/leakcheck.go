package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// leakcheckChecker proves every goroutine spawned in the concurrency
// packages (Config.GoroutinePkgs: engine and obs — the only packages the
// goroutine checker lets spawn at all) has a termination path the
// analyzer can actually see. A goroutine is accepted when its body is:
//
//   - ctx-gated: it consults ctx.Done() or ctx.Err() somewhere, so
//     cancellation reaches it;
//   - closed-channel-gated: it receives from a channel variable or
//     struct field that some close(x) in the module provably closes
//     (the obs runtime sampler's `done` channel);
//   - stage-drained: it ranges over a channel — the engine idiom where
//     the upstream stage closes its output and the worker drains to
//     exit; or
//   - finite: no loops and no blocking operations, so it runs to
//     completion unconditionally.
//
// Anything else — a bare for {}, a receive on a channel nothing closes,
// a spawned function the graph cannot resolve — is a leak the
// cancellation-drain audit cannot vouch for, and is reported at the go
// statement.
var leakcheckChecker = &Checker{
	Name: "leakcheck",
	Doc:  "every goroutine in engine/obs must have a provable termination path (ctx gate, closed channel, stage drain, or finite body)",
	Rationale: "A goroutine with no reachable exit outlives its run: it pins memory, holds " +
		"channel peers, and turns graceful shutdown into a hang that only appears at corpus " +
		"scale. Restricting spawns to engine/obs (the goroutine checker) is not enough — the " +
		"spawned body must also provably stop. The checker accepts exactly the audited exit " +
		"idioms: a ctx.Done/ctx.Err gate, a receive from a channel the module closes, a " +
		"range over a stage channel drained by upstream close, or a finite straight-line body.",
	Example: `internal/obs/http.go:45: [leakcheck] goroutine has no provable termination path (needs a ctx.Done/ctx.Err gate, a closed-channel receive, a channel range, or a finite body)`,
	Run:     runLeakcheck,
}

func runLeakcheck(p *Pass) {
	g := p.Graph
	for _, obj := range g.Order {
		node := g.Nodes[obj]
		if !p.Cfg.goroutineOK(node.Pkg.Path) {
			continue
		}
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			checkGoStmt(p, node.Pkg, gs)
			return true
		})
	}
}

// checkGoStmt resolves the spawned body and tests the termination gates.
func checkGoStmt(p *Pass, pkg *Package, gs *ast.GoStmt) {
	var body *ast.BlockStmt
	if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
		body = lit.Body
	} else if fn := funcObj(pkg.Info, gs.Call); fn != nil {
		if node := p.Graph.Nodes[fn]; node != nil {
			body = node.Decl.Body
		}
	}
	if body == nil {
		// A function value or external callee: nothing to prove against.
		p.Reportf(gs.Pos(), "goroutine body cannot be resolved to a provable termination path")
		return
	}
	if ctxGated(pkg.Info, body) || closedChanGated(p.Graph, pkg, body) || finiteBody(p, pkg, body) {
		return
	}
	p.Reportf(gs.Pos(), "goroutine has no provable termination path "+
		"(needs a ctx.Done/ctx.Err gate, a closed-channel receive, a channel range, or a finite body)")
}

// ctxGated reports whether the body consults context cancellation:
// any call to the Done or Err methods of context.Context.
func ctxGated(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(info, call)
		if fn != nil && pkgPathOf(fn) == "context" && (fn.Name() == "Done" || fn.Name() == "Err") {
			found = true
			return false
		}
		return true
	})
	return found
}

// closedChanGated reports whether the body receives from a channel the
// module provably closes, or ranges over a channel at all (the stage
// drain idiom: upstream close ends the range).
func closedChanGated(g *CallGraph, pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if obj := chanObj(pkg, n.X); obj != nil && g.ClosedChans[obj] {
					found = true
					return false
				}
			}
		case *ast.RangeStmt:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// finiteBody reports whether the body provably runs to completion: no
// loops, no channel operations, no blocking selects, and no calls into
// known-blocking functions (stdlib set, net dials, configured
// LockBlockers, or module functions the shared blocking fixpoint marks).
func finiteBody(p *Pass, pkg *Package, body *ast.BlockStmt) bool {
	blocked := p.Graph.Blocked()
	finite := true
	ast.Inspect(body, func(n ast.Node) bool {
		if !finite {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt, *ast.RangeStmt, *ast.SendStmt:
			finite = false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				finite = false
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				finite = false
			}
		case *ast.CallExpr:
			fn := funcObj(pkg.Info, n)
			if fn == nil {
				return true
			}
			if _, ok := blockingCalls[fn.FullName()]; ok {
				finite = false
			} else if pkgPathOf(fn) == "net" && strings.HasPrefix(fn.Name(), "Dial") {
				finite = false
			} else if _, ok := blocked[fn]; ok {
				finite = false
			} else {
				for _, b := range p.Cfg.LockBlockers {
					if b.Pkg == pkgPathOf(fn) && b.Name == fn.Name() {
						finite = false
						break
					}
				}
			}
		}
		return finite
	})
	return finite
}
