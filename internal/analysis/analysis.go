// Package analysis is aipanvet: a from-scratch static-analysis driver on
// the stdlib go/parser, go/ast, and go/types (no x/tools — the module
// stays dependency-free) that loads every package in the module and runs
// a registry of repo-specific checkers. Each checker mechanically
// enforces one invariant the AIPAN-3k reproduction's guarantees rest on:
//
//   - determinism: the packages that produce dataset bytes never read the
//     wall clock, the global math/rand source, or map iteration order
//     (§3/§5 reproducibility — byte-identical output across worker counts
//     and store backends).
//   - goroutine: all concurrency routes through internal/engine — no
//     naked go statements elsewhere, so every pool inherits the audited
//     ordered-delivery and cancellation-drain semantics.
//   - ctxthread: exported functions that transitively block (network I/O,
//     sleeps, channel operations) take a context.Context first parameter,
//     keeping corpus-scale runs cancellable end to end.
//   - metricname: metric names registered with internal/obs match
//     ^aipan_[a-z0-9_]+$ and the per-kind unit suffix conventions, so the
//     /metrics surface stays scrapeable by one dashboard config.
//   - errwrap: fmt.Errorf with an error operand uses %w, and pipeline
//     code never silently discards an error return.
//   - bytechurn: the per-document byte path (htmlx → textify → segment →
//     taxonomy) never round-trips string/[]byte copies or calls the
//     allocating strings case folders inside function bodies, so the
//     pooled-buffer discipline survives future edits.
//   - spanend: every span started with obs.StartSpan/StartSpanWith in
//     non-test code is ended on all paths (defer span.End(), an
//     always-run closure, or straight-line End with no return between),
//     so exported traces never silently drop subtrees.
//
// Diagnostics are emitted as "file:line: [check] message" with
// deterministic ordering; a committed baseline file grandfathers known
// findings, each with a one-line justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the checker that produced it,
// and a message. File is the module-root-relative, slash-separated path.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the finding in the canonical "file:line: [check] msg"
// form the gate and the baseline file use.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Check, d.Message)
}

// Key is the line-insensitive identity used for baseline matching:
// "file: [check] message". Dropping the line number keeps baseline
// entries stable under unrelated edits to the same file.
func (d Diagnostic) Key() string {
	return fmt.Sprintf("%s: [%s] %s", d.File, d.Check, d.Message)
}

// Checker is one registered invariant. Run receives the loaded module
// and reports findings through the pass.
type Checker struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands a checker the loaded module plus reporting plumbing.
type Pass struct {
	Module *Module
	Cfg    Config
	check  string
	out    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Module.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.out = append(*p.out, Diagnostic{
		File: file, Line: position.Line, Col: position.Column,
		Check: p.check, Message: fmt.Sprintf(format, args...),
	})
}

// Config scopes the checkers to the repo's architecture. Allowlists are
// structural ("by construction"): a package listed here is exempt from
// the matching rule entirely, which is different from a baselined
// finding (a known violation carried with a justification).
type Config struct {
	// DeterministicPkgs are the import paths whose output bytes must be
	// reproducible; the determinism checker applies only here. The
	// seeded-random generators (webgen, russell, downstream) and the
	// wall-clock-reading observability layer (obs) are allowlisted by
	// construction simply by not being listed.
	DeterministicPkgs []string
	// GoroutinePkgs are the import paths allowed to contain go
	// statements; everything else must route concurrency through
	// engine.Stage / engine.Limiter.
	GoroutinePkgs []string
	// MetricPrefix is the mandatory metric-name prefix (default "aipan").
	MetricPrefix string
	// BytePathPkgs are the import paths on the per-document hot byte path
	// (HTML tokenization through numbered-text rendering); the bytechurn
	// checker applies only here.
	BytePathPkgs []string
}

// DefaultConfig is the repo's own scoping: the packages on the dataset
// byte path are deterministic, and only engine and obs may spawn
// goroutines.
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"aipan/internal/core",
			"aipan/internal/annotate",
			"aipan/internal/segment",
			"aipan/internal/taxonomy",
			"aipan/internal/stats",
			"aipan/internal/store",
			"aipan/internal/report",
		},
		GoroutinePkgs: []string{
			"aipan/internal/engine",
			"aipan/internal/obs",
		},
		MetricPrefix: "aipan",
		BytePathPkgs: []string{
			"aipan/internal/htmlx",
			"aipan/internal/textify",
			"aipan/internal/segment",
			"aipan/internal/taxonomy",
		},
	}
}

func (c Config) deterministic(path string) bool { return containsString(c.DeterministicPkgs, path) }
func (c Config) goroutineOK(path string) bool   { return containsString(c.GoroutinePkgs, path) }
func (c Config) bytePath(path string) bool      { return containsString(c.BytePathPkgs, path) }

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Checkers returns the full registry in registration order. The order
// never affects output: diagnostics are sorted before they are returned.
func Checkers() []*Checker {
	return []*Checker{
		determinismChecker,
		goroutineChecker,
		ctxthreadChecker,
		metricnameChecker,
		errwrapChecker,
		bytechurnChecker,
		spanendChecker,
	}
}

// CheckerByName returns the named checker, or nil.
func CheckerByName(name string) *Checker {
	for _, c := range Checkers() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// Run executes the given checkers over the module and returns the
// findings in deterministic order (file, line, column, check, message),
// independent of package load order and checker registration order.
func Run(mod *Module, cfg Config, checkers []*Checker) []Diagnostic {
	var diags []Diagnostic
	for _, c := range checkers {
		pass := &Pass{Module: mod, Cfg: cfg, check: c.Name, out: &diags}
		c.Run(pass)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	// Dedup: two checkers (or one checker on re-walked syntax) must not
	// double-report the same finding.
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// funcObj resolves the called function object of a call expression, or
// nil for calls through function values, interface methods the checker
// cannot see, and type conversions.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of a function's package ("" for
// builtins).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
