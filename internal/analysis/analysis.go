// Package analysis is aipanvet: a from-scratch static-analysis driver on
// the stdlib go/parser, go/ast, and go/types (no x/tools — the module
// stays dependency-free) that loads every package in the module and runs
// a registry of repo-specific checkers. Each checker mechanically
// enforces one invariant the AIPAN-3k reproduction's guarantees rest on:
//
//   - determinism: the packages that produce dataset bytes never read the
//     wall clock, the global math/rand source, or map iteration order
//     (§3/§5 reproducibility — byte-identical output across worker counts
//     and store backends).
//   - goroutine: all concurrency routes through internal/engine — no
//     naked go statements elsewhere, so every pool inherits the audited
//     ordered-delivery and cancellation-drain semantics.
//   - ctxthread: exported functions that transitively block (network I/O,
//     sleeps, channel operations) take a context.Context first parameter,
//     keeping corpus-scale runs cancellable end to end.
//   - metricname: metric names registered with internal/obs match
//     ^aipan_[a-z0-9_]+$ and the per-kind unit suffix conventions, so the
//     /metrics surface stays scrapeable by one dashboard config.
//   - errwrap: fmt.Errorf with an error operand uses %w, and pipeline
//     code never silently discards an error return.
//   - bytechurn: the per-document byte path (htmlx → textify → segment →
//     taxonomy) never round-trips string/[]byte copies or calls the
//     allocating strings case folders inside function bodies, so the
//     pooled-buffer discipline survives future edits.
//   - spanend: every span started with obs.StartSpan/StartSpanWith in
//     non-test code is ended on all paths (defer span.End(), an
//     always-run closure, or straight-line End with no return between),
//     so exported traces never silently drop subtrees.
//
// Diagnostics are emitted as "file:line: [check] message" with
// deterministic ordering; a committed baseline file grandfathers known
// findings, each with a one-line justification.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Diagnostic is one finding: a position, the checker that produced it,
// and a message. File is the module-root-relative, slash-separated path.
type Diagnostic struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

// String renders the finding in the canonical "file:line: [check] msg"
// form the gate and the baseline file use.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Check, d.Message)
}

// Key is the line-insensitive identity used for baseline matching:
// "file: [check] message". Dropping the line number keeps baseline
// entries stable under unrelated edits to the same file.
func (d Diagnostic) Key() string {
	return fmt.Sprintf("%s: [%s] %s", d.File, d.Check, d.Message)
}

// Checker is one registered invariant. Run receives the loaded module
// and reports findings through the pass. Doc is the one-line summary
// shown in -help; Rationale and Example feed `aipanvet -explain <name>`
// (and the DESIGN.md §11 table), so baseline justifications can cite a
// stable, versioned explanation of what each checker proves.
type Checker struct {
	Name      string
	Doc       string
	Rationale string // one paragraph: what the checker proves and why it matters
	Example   string // one representative finding, in canonical report form
	Run       func(*Pass)
}

// Pass hands a checker the loaded module plus reporting plumbing. Graph
// is the shared whole-module call graph, built once per Run and reused
// by every interprocedural checker (ctxthread, nondetflow, lockorder,
// leakcheck).
type Pass struct {
	Module *Module
	Cfg    Config
	Graph  *CallGraph
	check  string
	out    *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Module.Fset.Position(pos)
	file := position.Filename
	if rel, err := filepath.Rel(p.Module.Root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	*p.out = append(*p.out, Diagnostic{
		File: file, Line: position.Line, Col: position.Column,
		Check: p.check, Message: fmt.Sprintf(format, args...),
	})
}

// Config scopes the checkers to the repo's architecture. Allowlists are
// structural ("by construction"): a package listed here is exempt from
// the matching rule entirely, which is different from a baselined
// finding (a known violation carried with a justification).
type Config struct {
	// DeterministicPkgs are the import paths whose output bytes must be
	// reproducible; the determinism checker applies only here. The
	// seeded-random generators (webgen, russell, downstream) and the
	// wall-clock-reading observability layer (obs) are allowlisted by
	// construction simply by not being listed.
	DeterministicPkgs []string
	// GoroutinePkgs are the import paths allowed to contain go
	// statements; everything else must route concurrency through
	// engine.Stage / engine.Limiter.
	GoroutinePkgs []string
	// MetricPrefix is the mandatory metric-name prefix (default "aipan").
	MetricPrefix string
	// BytePathPkgs are the import paths on the per-document hot byte path
	// (HTML tokenization through numbered-text rendering); the bytechurn
	// checker applies only here.
	BytePathPkgs []string
	// TaintSinks are the functions whose arguments must never carry a
	// value derived from the wall clock, the global math/rand source, or
	// map-iteration order (the nondetflow checker). A sink matches any
	// function or method with the given name declared in the given
	// package — covering every store backend's Append and the interface
	// method in one entry.
	TaintSinks []TaintSink
	// LockBlockers are module functions treated as blocking operations by
	// the lockorder checker when called with a mutex held (store appends
	// and scans: disk I/O under a caller's lock serializes the fleet),
	// in addition to channel ops and the known-blocking stdlib set.
	LockBlockers []PkgFunc
}

// TaintSink names one nondeterminism sink: any function or method
// called Name declared in package Pkg, described as Desc in reports.
type TaintSink struct {
	Pkg  string
	Name string
	Desc string
}

// PkgFunc names a function or method by package path and name.
type PkgFunc struct {
	Pkg  string
	Name string
}

// DefaultConfig is the repo's own scoping: the packages on the dataset
// byte path are deterministic, and only engine and obs may spawn
// goroutines.
func DefaultConfig() Config {
	return Config{
		DeterministicPkgs: []string{
			"aipan/internal/core",
			"aipan/internal/annotate",
			"aipan/internal/segment",
			"aipan/internal/taxonomy",
			"aipan/internal/stats",
			"aipan/internal/store",
			"aipan/internal/report",
		},
		GoroutinePkgs: []string{
			"aipan/internal/engine",
			"aipan/internal/obs",
		},
		MetricPrefix: "aipan",
		BytePathPkgs: []string{
			"aipan/internal/htmlx",
			"aipan/internal/textify",
			"aipan/internal/segment",
			"aipan/internal/taxonomy",
		},
		TaintSinks: []TaintSink{
			// Dataset bytes: every store backend's Append (and the Store
			// interface method) plus the event log's.
			{Pkg: "aipan/internal/store", Name: "Append", Desc: "store record append"},
			// Export writers: the byte-identity contract covers all of them.
			{Pkg: "aipan/internal/store", Name: "SaveJSONL", Desc: "JSONL export"},
			{Pkg: "aipan/internal/store", Name: "ExportAnnotationsCSV", Desc: "CSV export"},
			{Pkg: "aipan/internal/store", Name: "ExportDomainsCSV", Desc: "CSV export"},
			// Trace bytes: same-seed runs must export identical traces.
			{Pkg: "aipan/internal/obs", Name: "ExportSpan", Desc: "trace export"},
			// Serving: ETags and /v1 response bodies must be pure
			// functions of (generation, request). The machinery lives
			// in internal/api, shared by the dataset server and the
			// dispatch coordinator, so one entry covers both surfaces.
			{Pkg: "aipan/internal/api", Name: "ETagFor", Desc: "ETag computation"},
			{Pkg: "aipan/internal/api", Name: "EncodeResult", Desc: "/v1 response body"},
		},
		LockBlockers: []PkgFunc{
			{Pkg: "aipan/internal/store", Name: "Append"},
			{Pkg: "aipan/internal/store", Name: "Scan"},
		},
	}
}

func (c Config) deterministic(path string) bool { return containsString(c.DeterministicPkgs, path) }
func (c Config) goroutineOK(path string) bool   { return containsString(c.GoroutinePkgs, path) }
func (c Config) bytePath(path string) bool      { return containsString(c.BytePathPkgs, path) }

func containsString(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

// Checkers returns the full registry in registration order. The order
// never affects output: diagnostics are sorted before they are returned.
func Checkers() []*Checker {
	return []*Checker{
		determinismChecker,
		goroutineChecker,
		ctxthreadChecker,
		metricnameChecker,
		errwrapChecker,
		bytechurnChecker,
		spanendChecker,
		nondetflowChecker,
		lockorderChecker,
		leakcheckChecker,
	}
}

// CheckerByName returns the named checker, or nil.
func CheckerByName(name string) *Checker {
	for _, c := range Checkers() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// CheckerTiming is one checker's wall time within a Run, plus the
// shared call-graph build as its own entry ("callgraph").
type CheckerTiming struct {
	Name     string        `json:"name"`
	Duration time.Duration `json:"duration_ns"`
}

// Run executes the given checkers over the module and returns the
// findings in deterministic order (file, line, column, check, message),
// independent of package load order and checker registration order.
func Run(mod *Module, cfg Config, checkers []*Checker) []Diagnostic {
	diags, _ := RunTimed(mod, cfg, checkers)
	return diags
}

// RunTimed is Run plus per-checker wall times (registration order: the
// shared call-graph build first, then one entry per checker). Timings
// are observability, never part of the report bytes — the diagnostic
// ordering contract is unchanged.
func RunTimed(mod *Module, cfg Config, checkers []*Checker) ([]Diagnostic, []CheckerTiming) {
	var timings []CheckerTiming
	start := time.Now()
	graph := mod.Graph()
	timings = append(timings, CheckerTiming{Name: "callgraph", Duration: time.Since(start)})

	var diags []Diagnostic
	for _, c := range checkers {
		start = time.Now()
		pass := &Pass{Module: mod, Cfg: cfg, Graph: graph, check: c.Name, out: &diags}
		c.Run(pass)
		timings = append(timings, CheckerTiming{Name: c.Name, Duration: time.Since(start)})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Check != b.Check {
			return a.Check < b.Check
		}
		return a.Message < b.Message
	})
	// Dedup: two checkers (or one checker on re-walked syntax) must not
	// double-report the same finding.
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out, timings
}

// funcObj resolves the called function object of a call expression, or
// nil for calls through function values, interface methods the checker
// cannot see, and type conversions.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// pkgPathOf returns the import path of a function's package ("" for
// builtins).
func pkgPathOf(fn *types.Func) string {
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path()
}
