package analysis

import "go/ast"

// goroutineChecker enforces the engine monopoly on concurrency: outside
// Config.GoroutinePkgs (internal/engine and internal/obs), no package
// may contain a go statement. Everything else must run through
// engine.Stage or engine.Limiter, which is what guarantees
// submission-order delivery (determinism across worker counts) and
// cancellation drain (no goroutine outlives its Map call). A naked
// goroutine added anywhere on the pipeline path silently forfeits both.
var goroutineChecker = &Checker{
	Name: "goroutine",
	Doc:  "go statements only in internal/engine and internal/obs; use engine.Stage/Limiter elsewhere",
	Rationale: "Ordered delivery, bounded concurrency, and cancellation drain are audited " +
		"properties of internal/engine's pools — a naked go statement anywhere else creates " +
		"concurrency those audits never covered. Confining spawns to engine and obs means " +
		"every goroutine in the module either is part of the audited machinery or sits next " +
		"to it where leakcheck proves its termination path.",
	Example: `internal/crawler/crawler.go:88: [goroutine] go statement outside aipan/internal/engine (use engine.Stage or engine.Limiter)`,
	Run:     runGoroutine,
}

func runGoroutine(p *Pass) {
	for _, pkg := range p.Module.Pkgs {
		if p.Cfg.goroutineOK(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					p.Reportf(g.Pos(),
						"naked go statement in %s: route concurrency through engine.Stage or engine.Limiter", pkg.Path)
				}
				return true
			})
		}
	}
}
