package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// metricnameChecker keeps the /metrics surface coherent: every metric
// name registered through the internal/obs constructors must be a
// string literal (greppable, diffable) matching ^<prefix>_[a-z0-9_]+$,
// and must carry the unit suffix its kind mandates — counters end in
// _total, histograms in _seconds or _bytes, and gauges in neither
// (a gauge named like a counter lies to every dashboard that rates it).
var metricnameChecker = &Checker{
	Name: "metricname",
	Doc:  "obs metric names are literals matching ^aipan_[a-z0-9_]+$ with kind-correct unit suffixes",
	Rationale: "The /metrics surface is scraped by one dashboard config; a metric that " +
		"drifts from the aipan_ prefix or the per-kind unit-suffix convention (_total for " +
		"counters, _seconds/_bytes for histograms) silently vanishes from every panel. " +
		"Requiring literal names keeps the full metric inventory greppable — no " +
		"runtime-assembled names the dashboard cannot know about.",
	Example: `internal/server/api.go:55: [metricname] metric name "requests" must match ^aipan_[a-z0-9_]+$`,
	Run:     runMetricname,
}

// metricKinds maps obs.Registry constructor names to the metric kind
// they register.
var metricKinds = map[string]string{
	"Counter": "counter", "CounterVec": "counter",
	"Gauge": "gauge", "GaugeVec": "gauge",
	"Histogram": "histogram", "HistogramVec": "histogram",
}

var metricNameShape = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

func runMetricname(p *Pass) {
	prefix := p.Cfg.MetricPrefix
	if prefix == "" {
		prefix = "aipan"
	}
	for _, pkg := range p.Module.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := funcObj(pkg.Info, call)
				if fn == nil || pkgPathOf(fn) != "aipan/internal/obs" {
					return true
				}
				kind, ok := metricKinds[fn.Name()]
				if !ok || !isRegistryMethod(fn) || len(call.Args) == 0 {
					return true
				}
				arg := ast.Unparen(call.Args[0])
				tv, ok := pkg.Info.Types[arg]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					p.Reportf(call.Args[0].Pos(),
						"metric name passed to obs.Registry.%s must be a string constant", fn.Name())
					return true
				}
				checkMetricName(p, arg, kind, prefix, constant.StringVal(tv.Value))
				return true
			})
		}
	}
}

// isRegistryMethod confirms the callee is a method on *obs.Registry —
// obs.Counter the instrument type has methods with colliding names.
func isRegistryMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "Registry"
}

func checkMetricName(p *Pass, arg ast.Expr, kind, prefix, name string) {
	if !strings.HasPrefix(name, prefix+"_") {
		p.Reportf(arg.Pos(), "metric %q must start with %q", name, prefix+"_")
		return
	}
	if !metricNameShape.MatchString(name) {
		p.Reportf(arg.Pos(), "metric %q must match ^%s_[a-z0-9_]+$ (lowercase snake_case only)", name, prefix)
		return
	}
	switch kind {
	case "counter":
		if !strings.HasSuffix(name, "_total") {
			p.Reportf(arg.Pos(), "counter %q must end in _total", name)
		}
	case "histogram":
		if !strings.HasSuffix(name, "_seconds") && !strings.HasSuffix(name, "_bytes") {
			p.Reportf(arg.Pos(), "histogram %q must end in a unit suffix (_seconds or _bytes)", name)
		}
	case "gauge":
		if strings.HasSuffix(name, "_total") {
			p.Reportf(arg.Pos(), "gauge %q must not end in _total (that suffix marks counters)", name)
		}
		for _, reserved := range []string{"_sum", "_count", "_bucket"} {
			if strings.HasSuffix(name, reserved) {
				p.Reportf(arg.Pos(),
					"gauge %q must not end in %s (Prometheus reserves that suffix for histogram series)",
					name, reserved)
			}
		}
	}
}
