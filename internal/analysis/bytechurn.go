package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// bytechurnChecker polices the hot byte path (Config.BytePathPkgs): the
// packages that turn raw HTML into numbered text run per document, per
// node, and per line, so a stray copy conversion there multiplies into
// megabytes of garbage per crawl. Two patterns are flagged inside function
// bodies:
//
//  1. string([]byte) / []byte(string) conversions — each copies the whole
//     payload. The zero-alloc forms the compiler recognizes are exempt:
//     a conversion used directly as a map index (m[string(b)]) or as an
//     operand of ==/!= against a string.
//  2. strings.ToLower / strings.ToUpper calls — the byte path owns its
//     case folding (ASCII tables, lazy copies); the strings versions
//     allocate a fresh string per call even when nothing changes case on
//     non-ASCII input paths.
//
// Package-level declarations are not walked: one-time table construction
// is initialization, not churn. Legitimate per-call conversions (e.g. the
// final []byte→string hand-off of an owned buffer) are carried in the
// baseline with a justification.
var bytechurnChecker = &Checker{
	Name: "bytechurn",
	Doc:  "no string/[]byte copy conversions or strings case folding inside hot byte-path functions",
	Rationale: "The per-document byte path (htmlx → textify → segment → taxonomy) runs " +
		"millions of times per corpus and was tuned to near-zero allocations with pooled " +
		"buffers; one casual string([]byte) round-trip or strings.ToLower in a hot function " +
		"reintroduces a per-document copy that the funnel allocation ceiling then catches " +
		"only after the regression lands. This checker catches it at vet time instead.",
	Example: `internal/textify/textify.go:204: [bytechurn] string([]byte) conversion copies the payload on the hot byte path of aipan/internal/textify (keep the []byte, or baseline the owned-buffer hand-off)`,
	Run:     runBytechurn,
}

func runBytechurn(p *Pass) {
	for _, pkg := range p.Module.Pkgs {
		if !p.Cfg.bytePath(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			exempt := exemptConversions(pkg, f)
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				checkBytechurnFunc(p, pkg, fn.Body, exempt)
			}
		}
	}
}

// exemptConversions collects the positions of conversions the compiler
// performs without a copy: map probes keyed by string(b) and string
// comparisons against string(b).
func exemptConversions(pkg *Package, f *ast.File) map[token.Pos]bool {
	exempt := map[token.Pos]bool{}
	mark := func(e ast.Expr) {
		e = ast.Unparen(e)
		if call, ok := e.(*ast.CallExpr); ok {
			exempt[call.Pos()] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			if tv, ok := pkg.Info.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					mark(n.Index)
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				mark(n.X)
				mark(n.Y)
			}
		}
		return true
	})
	return exempt
}

func checkBytechurnFunc(p *Pass, pkg *Package, body *ast.BlockStmt, exempt map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// strings.ToLower / strings.ToUpper.
		if fn := funcObj(pkg.Info, call); fn != nil && pkgPathOf(fn) == "strings" {
			switch fn.Name() {
			case "ToLower", "ToUpper":
				p.Reportf(call.Pos(),
					"strings.%s allocates per call on the hot byte path of %s (use the package's ASCII fold or a lazy-copy tokenizer)",
					fn.Name(), pkg.Path)
			}
			return true
		}
		// Copy conversions.
		if len(call.Args) != 1 {
			return true
		}
		tv, ok := pkg.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		argTv, ok := pkg.Info.Types[call.Args[0]]
		if !ok {
			return true
		}
		switch {
		case isStringType(tv.Type) && isByteSlice(argTv.Type):
			if !exempt[call.Pos()] {
				p.Reportf(call.Pos(),
					"string([]byte) conversion copies the payload on the hot byte path of %s (keep the []byte, or baseline the owned-buffer hand-off)",
					pkg.Path)
			}
		case isByteSlice(tv.Type) && isStringType(argTv.Type):
			p.Reportf(call.Pos(),
				"[]byte(string) conversion copies the payload on the hot byte path of %s (index the string directly)",
				pkg.Path)
		}
		return true
	})
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}
