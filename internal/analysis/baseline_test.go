package analysis

import (
	"strings"
	"testing"
)

func fakeDiags() []Diagnostic {
	return []Diagnostic{
		{File: "internal/a/a.go", Line: 10, Check: "determinism", Message: "call to time.Now in deterministic package a"},
		{File: "internal/b/b.go", Line: 3, Check: "errwrap", Message: "error return of Close silently discarded"},
		{File: "internal/b/b.go", Line: 9, Check: "errwrap", Message: "error return of Close silently discarded"},
		// Two interprocedural checkers reporting on the same line of the
		// same file: distinct keys, independently baselineable.
		{File: "internal/d/d.go", Line: 7, Check: "nondetflow", Message: "value derived from time.Now flows into store record append via save"},
		{File: "internal/d/d.go", Line: 7, Check: "lockorder", Message: "lock (S).mu held across call to save (Append (store I/O))"},
		{File: "internal/e/e.go", Line: 4, Check: "leakcheck", Message: "goroutine has no provable termination path (needs a ctx.Done/ctx.Err gate, a closed-channel receive, a channel range, or a finite body)"},
	}
}

// TestBaselineRoundTrip is the add/expire lifecycle: format the current
// findings into a baseline, justify it, and the gate is clean; fix a
// finding and its entry turns stale; introduce a finding and it is
// active.
func TestBaselineRoundTrip(t *testing.T) {
	diags := fakeDiags()

	skeleton := FormatBaseline(diags)
	entries, err := ParseBaseline(skeleton)
	if err != nil {
		t.Fatalf("ParseBaseline(FormatBaseline(...)): %v", err)
	}
	// Distinct keys: the duplicated Close finding collapses to one entry
	// (one decision, not two), while the same-line nondetflow/lockorder
	// pair stays two entries — the check name is part of the key.
	if len(entries) != 5 {
		t.Fatalf("got %d entries, want 5: %+v", len(entries), entries)
	}

	active, stale := ApplyBaseline(entries, diags)
	if len(active) != 0 || len(stale) != 0 {
		t.Fatalf("fresh baseline should fully suppress: active=%v stale=%v", active, stale)
	}

	// Expire: the time.Now finding is fixed, its entry must go stale.
	fixed := diags[1:]
	active, stale = ApplyBaseline(entries, fixed)
	if len(active) != 0 {
		t.Fatalf("no new findings expected, got %v", active)
	}
	if len(stale) != 1 || !strings.Contains(stale[0].Key, "determinism") {
		t.Fatalf("want the determinism entry stale, got %+v", stale)
	}

	// Expire half of a same-line pair: fixing the lockorder finding while
	// the nondetflow one remains must stale exactly the lockorder entry.
	var sansLockorder []Diagnostic
	for _, d := range diags {
		if d.Check != "lockorder" {
			sansLockorder = append(sansLockorder, d)
		}
	}
	active, stale = ApplyBaseline(entries, sansLockorder)
	if len(active) != 0 {
		t.Fatalf("no new findings expected, got %v", active)
	}
	if len(stale) != 1 || stale[0].Check() != "lockorder" {
		t.Fatalf("want exactly the lockorder entry stale, got %+v", stale)
	}

	// Regress: a brand-new finding is active regardless of the baseline.
	regressed := append(fakeDiags(), Diagnostic{
		File: "internal/c/c.go", Line: 1, Check: "goroutine", Message: "naked go statement in c",
	})
	active, stale = ApplyBaseline(entries, regressed)
	if len(active) != 1 || active[0].Check != "goroutine" {
		t.Fatalf("want exactly the new goroutine finding active, got %v", active)
	}
	if len(stale) != 0 {
		t.Fatalf("want no stale entries, got %+v", stale)
	}
}

func TestParseBaselineRejectsUnjustifiedEntries(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string // error substring; "" = valid
	}{
		{"comment and blank lines", "# header\n\n# more\n", ""},
		{"justified entry", "internal/a/a.go: [determinism] msg # because reasons\n", ""},
		{"missing justification", "internal/a/a.go: [determinism] msg\n", "justification"},
		{"empty justification", "internal/a/a.go: [determinism] msg # \n", "justification"},
		{"malformed key", "not a key # but justified\n", "file: [check] message"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseBaseline([]byte(tc.in))
			if tc.want == "" {
				if err != nil {
					t.Fatalf("ParseBaseline(%q) = %v, want nil", tc.in, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseBaseline(%q) = %v, want error containing %q", tc.in, err, tc.want)
			}
		})
	}
}

// TestFilterBaselineScopesToSelectedCheckers: running a -checks subset
// must not report entries for unselected checkers as stale.
func TestFilterBaselineScopesToSelectedCheckers(t *testing.T) {
	entries := []BaselineEntry{
		{Key: "internal/a/a.go: [determinism] msg", Justification: "j"},
		{Key: "internal/b/b.go: [ctxthread] msg", Justification: "j"},
	}
	if got := entries[1].Check(); got != "ctxthread" {
		t.Fatalf("Check() = %q, want ctxthread", got)
	}
	kept := FilterBaseline(entries, []*Checker{CheckerByName("determinism")})
	if len(kept) != 1 || kept[0].Check() != "determinism" {
		t.Fatalf("FilterBaseline kept %+v, want only the determinism entry", kept)
	}
	// The out-of-scope ctxthread entry must not surface as stale.
	_, stale := ApplyBaseline(kept, nil)
	if len(stale) != 1 || stale[0].Check() != "determinism" {
		t.Fatalf("want exactly the in-scope entry stale against no findings, got %+v", stale)
	}
}

// TestBaselineKeyIgnoresLine: moving a finding within its file must not
// invalidate the entry.
func TestBaselineKeyIgnoresLine(t *testing.T) {
	a := Diagnostic{File: "f.go", Line: 10, Check: "c", Message: "m"}
	b := Diagnostic{File: "f.go", Line: 99, Check: "c", Message: "m"}
	if a.Key() != b.Key() {
		t.Fatalf("keys differ across lines: %q vs %q", a.Key(), b.Key())
	}
	if a.String() == b.String() {
		t.Fatal("String() should include the line number")
	}
}
