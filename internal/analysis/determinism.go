package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// determinismChecker guards the paper's reproducibility claim (§3, §5):
// the packages that produce dataset bytes must be pure functions of
// (seed, corpus, taxonomy). Three nondeterminism sources are banned
// inside Config.DeterministicPkgs:
//
//  1. time.Now — wall-clock reads belong to obs (inject obs.Clock).
//  2. the global math/rand source — rand.Intn and friends share
//     process-global state; only seeded *rand.Rand instances
//     (rand.New(rand.NewSource(seed))) are deterministic.
//  3. map iteration feeding output — ranging over a map and appending,
//     sending, or writing rows leaks Go's randomized map order into the
//     result, unless the enclosing function sorts afterwards
//     (collect-then-sort is the repo's sanctioned pattern).
//
// webgen/russell/downstream (seeded rand) and obs (wall clock) are
// allowlisted by construction: they are not in DeterministicPkgs.
var determinismChecker = &Checker{
	Name: "determinism",
	Doc:  "no wall clock, global rand, or unsorted map iteration in dataset-producing packages",
	Rationale: "The reproduction's core guarantee is byte-identical dataset output for a " +
		"given seed, across worker counts and store backends. Any wall-clock read, draw from " +
		"the unseeded global math/rand source, or map-iteration-ordered output inside the " +
		"dataset-producing packages breaks that silently. This checker bans the sources " +
		"syntactically inside Config.DeterministicPkgs; nondetflow complements it by tracking " +
		"derived values through call chains module-wide.",
	Example: `internal/core/pipeline.go:101: [determinism] time.Now is nondeterministic; inject obs.Clock or derive from the seed`,
	Run:     runDeterminism,
}

// globalRandOK are the math/rand package-level functions that construct
// seeded sources rather than draw from the global one.
var globalRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(p *Pass) {
	for _, pkg := range p.Module.Pkgs {
		if !p.Cfg.deterministic(pkg.Path) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkDeterminismCall(p, pkg, n)
				case *ast.FuncDecl:
					if n.Body != nil {
						checkMapRanges(p, pkg, n.Body)
					}
				}
				return true
			})
		}
	}
}

func checkDeterminismCall(p *Pass, pkg *Package, call *ast.CallExpr) {
	fn := funcObj(pkg.Info, call)
	if fn == nil {
		return
	}
	switch pkgPathOf(fn) {
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			p.Reportf(call.Pos(),
				"call to time.Now in deterministic package %s (inject an obs.Clock seam instead)", pkg.Path)
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !globalRandOK[fn.Name()] {
			p.Reportf(call.Pos(),
				"use of the global math/rand source (rand.%s) in deterministic package %s (use a seeded rand.New(rand.NewSource(seed)))",
				fn.Name(), pkg.Path)
		}
	}
}

// checkMapRanges walks one function body and flags map-range loops that
// feed output without a later sort in the same function.
func checkMapRanges(p *Pass, pkg *Package, body *ast.BlockStmt) {
	// Collect the positions after which a sort call occurs.
	var sortPositions []token.Pos
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := funcObj(pkg.Info, call); fn != nil {
			switch pkgPathOf(fn) {
			case "sort", "slices":
				sortPositions = append(sortPositions, call.Pos())
			}
		}
		return true
	})
	sortedAfter := func(pos token.Pos) bool {
		for _, sp := range sortPositions {
			if sp > pos {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if reason := feedsOutput(pkg, rng.Body); reason != "" && !sortedAfter(rng.End()) {
			p.Reportf(rng.Pos(),
				"map iteration %s without a following sort leaks randomized map order into output in deterministic package %s",
				reason, pkg.Path)
		}
		return true
	})
}

// feedsOutput reports how a map-range body makes iteration order
// observable: appending to a slice, sending on a channel, or calling an
// order-sensitive sink method. Pure numeric accumulation and map/set
// writes are commutative and therefore fine.
func feedsOutput(pkg *Package, body *ast.BlockStmt) string {
	// Order-sensitive sink methods in this codebase: table row builders
	// and stream writers.
	sinks := map[string]bool{
		"Append": true, "AddRow": true, "Write": true, "WriteString": true,
		"WriteRune": true, "WriteByte": true, "Fprintf": true, "Fprintln": true, "Fprint": true,
		"Print": true, "Printf": true, "Println": true,
	}
	reason := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			reason = "sending on a channel"
		case *ast.CallExpr:
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "append" {
					if _, isBuiltin := pkg.Info.Uses[fun].(*types.Builtin); isBuiltin {
						reason = "appending to a slice"
					}
				}
			case *ast.SelectorExpr:
				if sinks[fun.Sel.Name] {
					reason = "calling " + fun.Sel.Name
				}
			}
		}
		return true
	})
	return reason
}
