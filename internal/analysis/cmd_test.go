package analysis

import (
	"strings"
	"testing"
)

func TestVetFlagsValidate(t *testing.T) {
	cases := []struct {
		name    string
		vf      VetFlags
		wantErr string // substring; "" = valid
	}{
		{"defaults", VetFlags{Dir: "."}, ""},
		{"empty dir", VetFlags{}, "-C must name a directory"},
		{"json report", VetFlags{Dir: ".", JSON: true}, ""},
		{"write baseline", VetFlags{Dir: ".", WriteBaseline: "b.txt"}, ""},
		{"json and write-baseline", VetFlags{Dir: ".", JSON: true, WriteBaseline: "b.txt"}, "mutually exclusive"},
		{"one checker", VetFlags{Dir: ".", Checks: "determinism"}, ""},
		{"checker subset with spaces", VetFlags{Dir: ".", Checks: "goroutine, errwrap"}, ""},
		{"unknown checker", VetFlags{Dir: ".", Checks: "determinism,spellcheck"}, "unknown checker"},
		{"explain known", VetFlags{Dir: ".", Explain: "nondetflow"}, ""},
		{"explain unknown", VetFlags{Dir: ".", Explain: "spellcheck"}, "unknown checker"},
		{"timing", VetFlags{Dir: ".", Timing: true}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.vf.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate(%+v) = %v, want nil", tc.vf, err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate(%+v) = %v, want error containing %q", tc.vf, err, tc.wantErr)
			}
		})
	}
}

// TestMainUsageErrors exercises the argv-level contract shared by
// cmd/aipanvet and `aipan vet`: bad input is a usage error (exit 2)
// before any module loading happens.
func TestMainUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		argv []string
		want string // stderr substring
	}{
		{"unknown flag", []string{"-frobnicate"}, "flag provided but not defined"},
		{"package pattern", []string{"./internal/core"}, "unsupported package pattern"},
		{"json with write-baseline", []string{"-json", "-write-baseline", "b.txt", "./..."}, "mutually exclusive"},
		{"unknown checker", []string{"-checks", "nope", "./..."}, "unknown checker"},
		{"explain unknown checker", []string{"-explain", "nope"}, "unknown checker"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out, errBuf strings.Builder
			if code := Main(tc.argv, &out, &errBuf); code != 2 {
				t.Fatalf("Main(%v) = %d, want 2 (stderr: %s)", tc.argv, code, errBuf.String())
			}
			if !strings.Contains(errBuf.String(), tc.want) {
				t.Fatalf("Main(%v) stderr = %q, want substring %q", tc.argv, errBuf.String(), tc.want)
			}
		})
	}
}

// TestVetSelectedResolvesSubset pins that -checks runs exactly the
// named checkers, in the order given.
func TestVetSelectedResolvesSubset(t *testing.T) {
	vf := VetFlags{Dir: ".", Checks: "errwrap,determinism"}
	got := vf.selected()
	if len(got) != 2 || got[0].Name != "errwrap" || got[1].Name != "determinism" {
		t.Fatalf("selected() = %v, want [errwrap determinism]", got)
	}
	if all := (&VetFlags{Dir: "."}).selected(); len(all) != len(Checkers()) {
		t.Fatalf("empty -checks selected %d checkers, want all %d", len(all), len(Checkers()))
	}
}

// TestMainExplain: -explain prints the checker's rationale and example
// without loading the module, and exits 0.
func TestMainExplain(t *testing.T) {
	var out, errBuf strings.Builder
	if code := Main([]string{"-explain", "lockorder"}, &out, &errBuf); code != 0 {
		t.Fatalf("Main(-explain lockorder) = %d, want 0 (stderr: %s)", code, errBuf.String())
	}
	for _, want := range []string{"lockorder — ", lockorderChecker.Rationale, "[lockorder]"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-explain output missing %q:\n%s", want, out.String())
		}
	}
}
