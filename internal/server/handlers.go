package server

import (
	"net/http"
	"sort"
	"strconv"
	"strings"

	"aipan/internal/nutrition"
	"aipan/internal/qa"
)

// Pagination bounds for /v1/domains.
const (
	defaultPageLimit = 100
	maxPageLimit     = 1000
)

// routes wires the /v1 surface. Dataset routes are cacheable and
// subject to shedding; the health pair is neither.
func (s *Server) routes() *router {
	rt := &router{}
	rt.add(http.MethodGet, "/v1/summary", s.v1Summary, true, true)
	rt.add(http.MethodGet, "/v1/domains", s.v1Domains, true, true)
	rt.add(http.MethodGet, "/v1/domains/{domain}", s.v1Domain, true, true)
	rt.add(http.MethodGet, "/v1/domains/{domain}/label", s.v1Label, true, true)
	rt.add(http.MethodGet, "/v1/domains/{domain}/ask", s.v1Ask, true, true)
	rt.add(http.MethodGet, "/v1/domains/{domain}/provenance", s.v1Provenance, true, true)
	rt.add(http.MethodGet, "/v1/events", s.v1Events, true, true)
	rt.add(http.MethodGet, "/v1/risk", s.v1Risk, true, true)
	rt.add(http.MethodGet, "/v1/tables/{table}", s.v1Table, true, true)
	rt.add(http.MethodGet, "/v1/healthz", s.v1Healthz, false, false)
	rt.add(http.MethodGet, "/v1/readyz", s.v1Readyz, false, false)
	return rt
}

func (s *Server) v1Summary(v *view, _ params, _ *http.Request) (*result, *apiErr) {
	return &result{Raw: v.summaryJSON}, nil
}

func (s *Server) v1Domains(v *view, _ params, r *http.Request) (*result, *apiErr) {
	query := r.URL.Query()
	q := domainsQuery{
		sector: query.Get("sector"),
		aspect: query.Get("aspect"),
		label:  query.Get("label"),
		limit:  defaultPageLimit,
	}
	if raw := query.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return nil, errBadRequest("limit must be a positive integer (got %q)", raw)
		}
		if n > maxPageLimit {
			return nil, errBadRequest("limit must be at most %d (got %d)", maxPageLimit, n)
		}
		q.limit = n
	}
	if raw := query.Get("cursor"); raw != "" {
		domain, err := decodeCursor(raw)
		if err != nil {
			return nil, errBadRequest("cursor is not a token from a previous response")
		}
		q.cursor = domain
	}
	return &result{Obj: v.domainsPage(q)}, nil
}

// domainRecord resolves the {domain} path parameter against the hash
// index shared by the per-domain routes.
func (v *view) domainRecord(ps params) (int, *apiErr) {
	domain := ps["domain"]
	i, ok := v.byDomain[domain]
	if !ok {
		return 0, errNotFound("domain %q not in dataset", domain)
	}
	return i, nil
}

func (s *Server) v1Domain(v *view, ps params, _ *http.Request) (*result, *apiErr) {
	i, aerr := v.domainRecord(ps)
	if aerr != nil {
		return nil, aerr
	}
	return &result{Obj: &v.records[i]}, nil
}

func (s *Server) v1Label(v *view, ps params, _ *http.Request) (*result, *apiErr) {
	i, aerr := v.domainRecord(ps)
	if aerr != nil {
		return nil, aerr
	}
	rec := &v.records[i]
	return &result{Text: nutrition.Build(rec.Annotations).Render(rec.Company)}, nil
}

// AskResponse is the /v1/domains/{domain}/ask payload.
type AskResponse struct {
	Question  string   `json:"question"`
	Answer    string   `json:"answer"`
	Evidence  []string `json:"evidence"`
	Confident bool     `json:"confident"`
}

func (s *Server) v1Ask(v *view, ps params, r *http.Request) (*result, *apiErr) {
	i, aerr := v.domainRecord(ps)
	if aerr != nil {
		return nil, aerr
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		return nil, errBadRequest("missing ?q= question")
	}
	ans, ok := qa.Ask(q, v.records[i].Annotations)
	if !ok {
		return nil, &apiErr{Status: http.StatusUnprocessableEntity, Code: "unsupported_question",
			Message: "unsupported question; families: " + strings.Join(qa.Intents(), ", ")}
	}
	return &result{Obj: AskResponse{
		Question: q, Answer: ans.Text, Evidence: ans.Evidence, Confident: ans.Confident,
	}}, nil
}

func (s *Server) v1Provenance(v *view, ps params, _ *http.Request) (*result, *apiErr) {
	if s.events == nil {
		return nil, errNotFound("no event stream attached; start the server with --events")
	}
	domain := ps["domain"]
	if _, inDataset := v.byDomain[domain]; !inDataset && len(v.eventsByDomain[domain]) == 0 {
		return nil, errNotFound("domain %q not in dataset", domain)
	}
	return &result{Obj: v.provenance(domain)}, nil
}

func (s *Server) v1Events(v *view, _ params, r *http.Request) (*result, *apiErr) {
	if s.events == nil {
		return nil, errNotFound("no event stream attached; start the server with --events")
	}
	query := r.URL.Query()
	q := eventsQuery{
		outcome: query.Get("outcome"),
		limit:   defaultPageLimit,
		cursor:  -1,
	}
	if raw := query.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return nil, errBadRequest("limit must be a positive integer (got %q)", raw)
		}
		if n > maxPageLimit {
			return nil, errBadRequest("limit must be at most %d (got %d)", maxPageLimit, n)
		}
		q.limit = n
	}
	if raw := query.Get("cursor"); raw != "" {
		decoded, err := decodeCursor(raw)
		if err != nil {
			return nil, errBadRequest("cursor is not a token from a previous response")
		}
		pos, err := strconv.Atoi(decoded)
		if err != nil || pos < 0 {
			return nil, errBadRequest("cursor is not a token from a previous response")
		}
		q.cursor = pos
	}
	return &result{Obj: v.eventsPage(q)}, nil
}

func (s *Server) v1Risk(v *view, _ params, r *http.Request) (*result, *apiErr) {
	top := 25
	if raw := r.URL.Query().Get("top"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return nil, errBadRequest("top must be a positive integer (got %q)", raw)
		}
		top = n
	}
	scores := v.risk
	if len(scores) > top {
		scores = scores[:top]
	}
	return &result{Obj: RiskPage{Scores: scores, Total: len(v.risk)}}, nil
}

func (s *Server) v1Table(v *view, ps params, _ *http.Request) (*result, *apiErr) {
	table, ok := v.tables[ps["table"]]
	if !ok {
		ids := append([]string(nil), tableIDs...)
		sort.Strings(ids)
		return nil, errNotFound("unknown table %q (have: %s)", ps["table"], strings.Join(ids, ", "))
	}
	return &result{Text: table}, nil
}

// The /v1/healthz and /v1/readyz payload is the shared api.Health
// shape (aliased as healthStatus); here Warning is set while the SLO
// monitor sees a budget burning.
func (s *Server) v1Healthz(v *view, _ params, _ *http.Request) (*result, *apiErr) {
	return &result{Obj: healthStatus{Status: "ok", Generation: v.gen, Records: len(v.records)}}, nil
}

func (s *Server) v1Readyz(v *view, _ params, _ *http.Request) (*result, *apiErr) {
	if !s.ready.Load() {
		return nil, &apiErr{Status: http.StatusServiceUnavailable, Code: "draining", Message: "server is draining"}
	}
	hs := healthStatus{Status: "ready", Generation: v.gen, Records: len(v.records)}
	if st := s.slo.Status(); st.Burning {
		hs.Status = "degraded"
		hs.Warning = st.Warning
	}
	return &result{Obj: hs}, nil
}
