package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipan/internal/obs"
	"aipan/internal/store"
)

// paperDatasetSize matches the corpus size in the source paper (2,892
// privacy policies), so the speedup is measured at the scale the server
// actually runs at.
const paperDatasetSize = 2892

// naiveHandler is the pre-redesign serving strategy: every request
// walks the full record slice and re-encodes the response from scratch.
// It exists only as the benchmark baseline.
func naiveHandler(recs []store.Record) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var payload any
		switch r.URL.Path {
		case "/v1/summary":
			sum := Summary{ByAspect: map[string]int{}, SectorCounts: map[string]int{}}
			for i := range recs {
				rec := &recs[i]
				sum.Domains++
				if rec.Crawl.Success {
					sum.CrawlOK++
				}
				if rec.Extraction.Success {
					sum.ExtractOK++
				}
				if rec.Annotated() {
					sum.Annotated++
				}
				sum.SectorCounts[rec.SectorAbbrev]++
				sum.Annotations += len(rec.Annotations)
				for _, a := range rec.Annotations {
					sum.ByAspect[a.Aspect]++
				}
			}
			payload = sum
		case "/v1/domains":
			sector := r.URL.Query().Get("sector")
			page := DomainsPage{Domains: []DomainSummary{}}
			for i := range recs {
				rec := &recs[i]
				if sector != "" && !strings.EqualFold(rec.SectorAbbrev, sector) {
					continue
				}
				page.Domains = append(page.Domains, DomainSummary{
					Domain: rec.Domain, Company: rec.Company, Sector: rec.SectorAbbrev,
					Annotations: len(rec.Annotations), CrawlOK: rec.Crawl.Success,
				})
			}
			page.Total = len(page.Domains)
			payload = page
		default:
			http.NotFound(w, r)
			return
		}
		data, err := json.MarshalIndent(payload, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), 500)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(append(data, '\n'))
	})
}

// BenchmarkServerQPS compares the indexed+cached /v1 query engine
// against the naive full-scan baseline at the paper's dataset size.
// The acceptance bar for the redesign is >=5x on both routes.
func BenchmarkServerQPS(b *testing.B) {
	recs := makeRecords(paperDatasetSize)
	s, err := NewServer(Records(recs), WithRegistry(obs.NewRegistry()))
	if err != nil {
		b.Fatal(err)
	}
	naive := naiveHandler(recs)

	bench := func(h http.Handler, path string, wantStatus int) func(*testing.B) {
		return func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodGet, path, nil)
				req.RemoteAddr = "10.0.0.1:12345"
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != wantStatus {
					b.Fatalf("%s: status %d, want %d", path, rec.Code, wantStatus)
				}
			}
		}
	}

	b.Run("summary/naive", bench(naive, "/v1/summary", 200))
	b.Run("summary/indexed", bench(s, "/v1/summary", 200))
	b.Run("domains_sector/naive", bench(naive, "/v1/domains?sector=fs", 200))
	b.Run("domains_sector/indexed", bench(s, "/v1/domains?sector=fs", 200))
}

// BenchmarkViewBuild prices the startup/refresh cost the request path
// no longer pays: one full index + table + risk build per generation.
func BenchmarkViewBuild(b *testing.B) {
	recs := makeRecords(paperDatasetSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := buildView(recs, nil, uint64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
