package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"aipan/internal/obs"
	"aipan/internal/store"
)

// TestConcurrentClients runs 32 clients over mixed routes while the
// dataset refreshes underneath them. Run under -race (scripts/check.sh
// does), this exercises the atomic view swap, the LRU cache, the
// limiter, and the metric vecs together. Every response must be a
// well-formed API status — never a torn body or transport error.
func TestConcurrentClients(t *testing.T) {
	st := store.NewMem()
	recs := makeRecords(64)
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	s, err := NewServer(FromStore(st), WithRegistry(reg), WithCacheSize(8))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	paths := []string{
		"/v1/summary",
		"/v1/domains?limit=10",
		"/v1/domains?sector=fs",
		"/v1/domains/d0000.example.com",
		"/v1/domains/d0001.example.com/label",
		"/v1/domains/d0000.example.com/ask?q=do+you+sell+my+data",
		"/v1/risk?top=5",
		"/v1/tables/3",
		"/v1/healthz",
		"/v1/domains/absent.example.com", // deliberate 404
	}

	const clients = 32
	const perClient = 25
	errc := make(chan error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				path := paths[(c+i)%len(paths)]
				resp, err := http.Get(srv.URL + path)
				if err != nil {
					errc <- fmt.Errorf("client %d %s: %w", c, path, err)
					return
				}
				_, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					errc <- fmt.Errorf("client %d %s: read: %w", c, path, rerr)
					return
				}
				switch resp.StatusCode {
				case 200, 404:
				default:
					errc <- fmt.Errorf("client %d %s: status %d", c, path, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	// Refresh concurrently with the client storm: readers must keep
	// seeing a complete view from one generation or the other.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			extra := store.Record{
				Domain:  fmt.Sprintf("fresh%02d.example.com", i),
				Company: "Fresh", Sector: "Tech", SectorAbbrev: "IT",
			}
			if err := st.Append(&extra); err != nil {
				errc <- fmt.Errorf("append: %w", err)
				return
			}
			if err := s.Refresh(context.Background()); err != nil {
				errc <- fmt.Errorf("refresh: %w", err)
				return
			}
		}
	}()

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if got := s.Generation(); got != 11 {
		t.Errorf("final generation = %d, want 11", got)
	}
	// The soak must leave coherent metrics behind.
	if n := metricValue(t, reg, "aipan_server_inflight"); n != 0 {
		t.Errorf("inflight gauge = %v after quiesce, want 0", n)
	}
}
