package server

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aipan/internal/obs"
)

// fakeClock is a hand-cranked obs.Clock for deterministic admission.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// TestRateLimit429 drives the per-client token bucket with a frozen
// clock: the burst admits, the next request sheds with 429 and a
// Retry-After, and advancing the clock re-admits.
func TestRateLimit429(t *testing.T) {
	clock := &fakeClock{now: time.Unix(1700000000, 0)}
	reg := obs.NewRegistry()
	s, err := NewServer(Records(testRecords()),
		WithRegistry(reg), WithClock(clock.Now), WithRateLimit(1, 3))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	for i := 0; i < 3; i++ {
		if status, body := get(t, srv.URL+"/v1/summary"); status != 200 {
			t.Fatalf("burst request %d: status %d: %s", i, status, body)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-burst status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\" (1 rps, empty bucket)", ra)
	}
	if !strings.Contains(string(body), `"rate_limited"`) {
		t.Errorf("429 body: %s", body)
	}
	// Health stays reachable while the dataset surface sheds.
	if status, _ := get(t, srv.URL+"/v1/healthz"); status != 200 {
		t.Errorf("healthz rate-limited")
	}

	// One token accrues per second of clock time.
	clock.Advance(time.Second)
	if status, _ := get(t, srv.URL+"/v1/summary"); status != 200 {
		t.Errorf("post-refill status = %d, want 200", status)
	}
	if status, _ := get(t, srv.URL+"/v1/summary"); status != http.StatusTooManyRequests {
		t.Errorf("second post-refill request should shed again, got %d", status)
	}
	if n := metricValue(t, reg, `aipan_server_shed_total{reason="rate_limit"}`); n < 2 {
		t.Errorf("shed counter = %v, want >= 2", n)
	}
}

// TestRateLimiterPerClient checks buckets are keyed by client IP, not
// shared, and that prune only forgets refilled buckets.
func TestRateLimiterPerClient(t *testing.T) {
	rl := newRateLimiter(1, 2)
	now := time.Unix(1700000000, 0)
	// Drain the first client's burst of 2 entirely.
	for i := 0; i < 2; i++ {
		if ok, _ := rl.allow("10.0.0.1", now); !ok {
			t.Fatalf("first client request %d denied", i)
		}
	}
	if ok, wait := rl.allow("10.0.0.1", now); ok || wait <= 0 {
		t.Fatalf("drained bucket admitted (wait %v)", wait)
	}
	// A second client has its own full bucket.
	if ok, _ := rl.allow("10.0.0.2", now); !ok {
		t.Fatal("second client shares first client's bucket")
	}

	rl.maxClients = 2
	// After 1s at 1 rps: 10.0.0.1 holds 1 of 2 tokens (not prunable),
	// 10.0.0.2 is back to full (prunable losslessly).
	if ok, _ := rl.allow("10.0.0.3", now.Add(time.Second)); !ok {
		t.Fatal("third client denied")
	}
	rl.mu.Lock()
	_, drained := rl.buckets["10.0.0.1"]
	_, refilled := rl.buckets["10.0.0.2"]
	rl.mu.Unlock()
	if !drained {
		t.Error("prune dropped a drained bucket (would reset a hot client's limit)")
	}
	if refilled {
		t.Error("prune kept a fully-refilled bucket")
	}
}

// TestInflightShed503 fills the in-flight ceiling white-box and checks
// the next request sheds with 503 + Retry-After instead of queueing.
func TestInflightShed503(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(Records(testRecords()), WithRegistry(reg), WithMaxInflight(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	for i := 0; i < 2; i++ {
		if !s.inflight.TryAcquire() {
			t.Fatalf("could not take slot %d", i)
		}
	}
	resp, err := http.Get(srv.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 missing Retry-After")
	}
	if !strings.Contains(string(body), `"overloaded"`) {
		t.Errorf("503 body: %s", body)
	}
	if n := metricValue(t, reg, `aipan_server_shed_total{reason="inflight"}`); n != 1 {
		t.Errorf("shed counter = %v, want 1", n)
	}

	// Releasing the slots restores service.
	s.inflight.Release()
	s.inflight.Release()
	if status, _ := get(t, srv.URL+"/v1/summary"); status != 200 {
		t.Errorf("post-release status = %d", status)
	}
}

// TestInflightCeilingUnderBurst fires a burst well beyond the ceiling
// at a handler that blocks, and requires at least one shed plus zero
// failures that aren't clean 200/503 responses.
func TestInflightCeilingUnderBurst(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(Records(testRecords()), WithRegistry(reg), WithMaxInflight(2))
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	s.router.add(http.MethodGet, "/v1/block", func(*view, params, *http.Request) (*result, *apiErr) {
		<-release
		return &result{Text: "done"}, nil
	}, false, true)
	srv := httptest.NewServer(s)
	defer srv.Close()

	const burst = 12
	statuses := make(chan int, burst)
	var answered atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(srv.URL + "/v1/block")
			if err != nil {
				statuses <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			answered.Add(1)
			statuses <- resp.StatusCode
		}()
	}
	// Wait for the ceiling to fill, then for a response to come back
	// while both slots are still blocked — necessarily a shed (the two
	// admitted requests cannot answer before release closes) — and only
	// then let the in-flight pair finish. Closing on ceiling-full alone
	// races the other ten arrivals: a fast drain serves them all 200.
	deadline := time.Now().Add(5 * time.Second)
	for s.inflight.InUse() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	for answered.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	close(release)
	wg.Wait()
	close(statuses)

	counts := map[int]int{}
	for st := range statuses {
		counts[st]++
	}
	if counts[-1] > 0 {
		t.Fatalf("transport errors during burst: %v", counts)
	}
	if counts[200]+counts[503] != burst {
		t.Fatalf("unexpected statuses: %v", counts)
	}
	if counts[503] == 0 {
		t.Fatalf("burst of %d over ceiling 2 shed nothing: %v", burst, counts)
	}
	if counts[200] < 2 {
		t.Fatalf("blocked requests inside the ceiling should complete: %v", counts)
	}
}

// TestRequestTimeout gives the request context a tiny deadline and a
// handler that waits it out; the response is a 503 timeout envelope.
func TestRequestTimeout(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(Records(testRecords()), WithRegistry(reg), WithRequestTimeout(10*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	s.router.add(http.MethodGet, "/v1/slow", func(_ *view, _ params, r *http.Request) (*result, *apiErr) {
		<-r.Context().Done()
		return &result{Text: "too late"}, nil
	}, false, true)
	srv := httptest.NewServer(s)
	defer srv.Close()

	status, body := get(t, srv.URL+"/v1/slow")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, `"timeout"`) {
		t.Errorf("slow route: status %d, body %s", status, body)
	}
}

func TestRetryAfterSeconds(t *testing.T) {
	for _, tc := range []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1500 * time.Millisecond, 2},
		{3 * time.Second, 3},
	} {
		if got := retryAfterSeconds(tc.d); got != tc.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}
}
