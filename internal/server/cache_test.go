package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipan/internal/obs"
	"aipan/internal/store"
)

// TestETagConditionalGet covers the conditional-GET round trip: a 200
// carries a strong ETag, replaying it in If-None-Match yields an empty
// 304 with the same tag, and a different tag yields the full body.
func TestETagConditionalGet(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/summary")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want strong quoted tag", etag)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q", cc)
	}

	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/summary", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("conditional GET status = %d, want 304", resp2.StatusCode)
	}
	if len(body2) != 0 {
		t.Errorf("304 carried %d body bytes", len(body2))
	}
	if got := resp2.Header.Get("ETag"); got != etag {
		t.Errorf("304 ETag = %q, want %q", got, etag)
	}

	req.Header.Set("If-None-Match", `"0-deadbeef"`)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body3, _ := io.ReadAll(resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != 200 || string(body3) != string(body) {
		t.Errorf("mismatched tag: status %d, body equal=%v", resp3.StatusCode, string(body3) == string(body))
	}

	// W/ prefix and list syntax still match strongly after stripping.
	req.Header.Set("If-None-Match", `"x", W/`+etag)
	resp4, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp4.Body.Close()
	if resp4.StatusCode != http.StatusNotModified {
		t.Errorf("list If-None-Match status = %d, want 304", resp4.StatusCode)
	}
}

// TestRefreshInvalidatesCache appends to the backing store mid-flight
// and checks that Refresh atomically swaps the view: responses, ETags,
// and the generation all move, with no stale cache hits.
func TestRefreshInvalidatesCache(t *testing.T) {
	st := store.NewMem()
	recs := testRecords()
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	reg := obs.NewRegistry()
	s, err := NewServer(FromStore(st), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Prime the cache and grab the generation-1 ETag.
	resp, err := http.Get(srv.URL + "/v1/domains")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	etag1 := resp.Header.Get("ETag")
	if s.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", s.Generation())
	}

	extra := store.Record{Domain: "new.example.com", Company: "New Co", Sector: "Tech", SectorAbbrev: "IT"}
	if err := st.Append(&extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation after refresh = %d, want 2", s.Generation())
	}

	// The cached generation-1 entry must not serve: the new domain
	// appears and the ETag changes.
	status, body := get(t, srv.URL+"/v1/domains")
	if status != 200 || !strings.Contains(body, "new.example.com") {
		t.Fatalf("post-refresh listing stale: status %d, has new domain: %v",
			status, strings.Contains(body, "new.example.com"))
	}
	resp2, err := http.Get(srv.URL + "/v1/domains")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if etag2 := resp2.Header.Get("ETag"); etag2 == etag1 {
		t.Errorf("ETag unchanged across refresh: %q", etag2)
	}

	// A conditional GET with the stale tag revalidates to a full 200.
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/domains", nil)
	req.Header.Set("If-None-Match", etag1)
	resp3, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != 200 {
		t.Errorf("stale conditional GET status = %d, want 200", resp3.StatusCode)
	}

	// New domain resolves via the rebuilt hash index.
	if status, _ := get(t, srv.URL+"/v1/domains/new.example.com"); status != 200 {
		t.Errorf("new domain lookup status = %d", status)
	}
}

// TestCacheLRUEviction bounds the cache: with capacity 2, three
// distinct keys leave two entries and re-fetching the evicted key is a
// miss (hit counters tell the story).
func TestCacheLRUEviction(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(Records(makeRecords(6)), WithRegistry(reg), WithCacheSize(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	for _, p := range []string{"/v1/summary", "/v1/risk", "/v1/domains"} {
		if status, _ := get(t, srv.URL+p); status != 200 {
			t.Fatalf("%s status %d", p, status)
		}
	}
	if n := s.cache.len(); n != 2 {
		t.Fatalf("cache len = %d, want 2 (LRU bound)", n)
	}
	// /v1/summary was least recently used — it should have been evicted.
	if _, ok := s.cache.get(cacheKeyForPath("/v1/summary"), s.Generation()); ok {
		t.Errorf("evicted key still present")
	}
	if _, ok := s.cache.get(cacheKeyForPath("/v1/domains"), s.Generation()); !ok {
		t.Errorf("most recent key missing")
	}
}

// cacheKeyForPath builds the cache key for a bare path request.
func cacheKeyForPath(path string) string {
	r := httptest.NewRequest(http.MethodGet, path, nil)
	return cacheKey(r)
}

func TestCacheKeyNormalization(t *testing.T) {
	a := cacheKeyForPath("/v1/domains?sector=FS&aspect=Types")
	b := cacheKeyForPath("/v1/domains?aspect=types&sector=fs")
	if a != b {
		t.Errorf("equivalent queries got distinct keys: %q vs %q", a, b)
	}
	c := cacheKeyForPath("/v1/domains?sector=en")
	if a == c {
		t.Errorf("distinct queries share a key: %q", a)
	}
	// Cursor values are case-sensitive tokens and must not be folded.
	d := cacheKeyForPath("/v1/domains?cursor=QQ")
	e := cacheKeyForPath("/v1/domains?cursor=qq")
	if d == e {
		t.Errorf("cursor values were case-folded into one key")
	}
}
