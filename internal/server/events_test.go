package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"aipan/internal/obs"
	"aipan/internal/store"
)

func testEvents() *store.MemEvents {
	m := store.NewMemEvents()
	_ = m.Append(&store.Event{
		RunID: "r1", Seq: 0, Domain: "acme.example.com", Sector: "Financials",
		Outcome: store.OutcomeAnnotated, FetchStatus: 200, FetchClass: "2xx",
		Language: "en", PagesFetched: 5, PolicyPages: 1, Annotations: 4,
		TaxonomyHits: 4, RiskScore: 3.5,
		Aspects: []store.AspectOutcome{{Aspect: "types", Annotations: 2}},
	})
	_ = m.Append(&store.Event{
		RunID: "r1", Seq: 1, Domain: "other.example.com", Sector: "Energy",
		Outcome: store.OutcomeCrawlFailed, FetchClass: "error",
		Errors: []string{"crawl: timeout"},
	})
	return m
}

func newEventsServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	opts = append([]Option{WithRegistry(obs.NewRegistry()), WithEvents(testEvents())}, opts...)
	s, err := NewServer(Records(testRecords()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func TestProvenanceEndpoint(t *testing.T) {
	_, srv := newEventsServer(t)
	status, body := get(t, srv.URL+"/v1/domains/acme.example.com/provenance")
	if status != 200 {
		t.Fatalf("status = %d, body: %s", status, body)
	}
	var page ProvenancePage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Domain != "acme.example.com" || page.Total != 1 || len(page.Events) != 1 {
		t.Fatalf("unexpected page: %+v", page)
	}
	ev := page.Events[0]
	if ev.Outcome != store.OutcomeAnnotated || ev.RunID != "r1" || ev.RiskScore != 3.5 {
		t.Errorf("event round-trip mismatch: %+v", ev)
	}
	if len(ev.Aspects) != 1 || ev.Aspects[0].Aspect != "types" {
		t.Errorf("aspects lost in transit: %+v", ev.Aspects)
	}

	if status, _ := get(t, srv.URL+"/v1/domains/nosuch.example.com/provenance"); status != 404 {
		t.Errorf("unknown domain: status = %d, want 404", status)
	}
}

func TestProvenanceETagRevalidation(t *testing.T) {
	_, srv := newEventsServer(t)
	resp, err := http.Get(srv.URL + "/v1/domains/acme.example.com/provenance")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("provenance response carries no ETag")
	}
	req, _ := http.NewRequest(http.MethodGet, srv.URL+"/v1/domains/acme.example.com/provenance", nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("revalidation status = %d, want 304", resp2.StatusCode)
	}
}

func TestEventsEndpointFilterAndPagination(t *testing.T) {
	_, srv := newEventsServer(t)

	status, body := get(t, srv.URL+"/v1/events?outcome=crawl_failed")
	if status != 200 {
		t.Fatalf("status = %d, body: %s", status, body)
	}
	var page EventsPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if page.Total != 1 || len(page.Events) != 1 || page.Events[0].Domain != "other.example.com" {
		t.Fatalf("outcome filter: %+v", page)
	}

	// limit=1 pages through both events via the cursor.
	status, body = get(t, srv.URL+"/v1/events?limit=1")
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var page1 EventsPage
	if err := json.Unmarshal([]byte(body), &page1); err != nil {
		t.Fatal(err)
	}
	if page1.Total != 2 || len(page1.Events) != 1 || page1.NextCursor == "" {
		t.Fatalf("page 1: %+v", page1)
	}
	status, body = get(t, srv.URL+"/v1/events?limit=1&cursor="+page1.NextCursor)
	if status != 200 {
		t.Fatalf("status = %d", status)
	}
	var page2 EventsPage
	if err := json.Unmarshal([]byte(body), &page2); err != nil {
		t.Fatal(err)
	}
	if len(page2.Events) != 1 || page2.Events[0].Domain == page1.Events[0].Domain || page2.NextCursor != "" {
		t.Fatalf("page 2: %+v", page2)
	}

	if status, _ := get(t, srv.URL+"/v1/events?cursor=not-a-position"); status != 400 {
		t.Errorf("bad cursor: status = %d, want 400", status)
	}
}

func TestEventsRoutesWithoutStream(t *testing.T) {
	_, srv := newTestServer(t)
	if status, _ := get(t, srv.URL+"/v1/events"); status != 404 {
		t.Errorf("/v1/events without stream: status = %d, want 404", status)
	}
	if status, _ := get(t, srv.URL+"/v1/domains/acme.example.com/provenance"); status != 404 {
		t.Errorf("provenance without stream: status = %d, want 404", status)
	}
}

// steppingClock advances a fixed amount per read, so every request
// appears slow to the latency SLO without any real sleeping.
type steppingClock struct {
	mu   sync.Mutex
	now  time.Time
	step time.Duration
}

func (c *steppingClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(c.step)
	return c.now
}

func TestReadyzDegradesUnderSLOBurn(t *testing.T) {
	clk := &steppingClock{now: time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC), step: 300 * time.Millisecond}
	s, srv := newTestServer(t,
		WithClock(clk.Now),
		WithSLO(obs.SLOConfig{SlowTarget: 250 * time.Millisecond, MinSamples: 3}))

	// Before any traffic the monitor has nothing to burn.
	status, body := get(t, srv.URL+"/v1/readyz")
	if status != 200 || !jsonStatusIs(t, body, "ready") {
		t.Fatalf("idle readyz: status = %d, body: %s", status, body)
	}

	// Each request reads the stepping clock several times, so its
	// measured latency far exceeds the 250ms slow target.
	for i := 0; i < 5; i++ {
		if status, _ := get(t, srv.URL+"/v1/summary"); status != 200 {
			t.Fatalf("summary status = %d", status)
		}
	}

	status, body = get(t, srv.URL+"/v1/readyz")
	if status != 200 {
		t.Fatalf("burning readyz must stay 200 (got %d): pulling a slow process from rotation makes things worse", status)
	}
	var hs healthStatus
	if err := json.Unmarshal([]byte(body), &hs); err != nil {
		t.Fatal(err)
	}
	if hs.Status != "degraded" || hs.Warning == "" {
		t.Fatalf("burning readyz = %+v, want degraded + warning", hs)
	}

	// The burn-rate gauges are published for scrapes.
	expo := obsExpo(s)
	if !containsMetric(expo, obs.SLOSlowBurnMetric) || !containsMetric(expo, obs.SLORequestsMetric) {
		t.Errorf("exposition missing aipan_slo_* gauges:\n%s", expo)
	}
}

func jsonStatusIs(t *testing.T, body, want string) bool {
	t.Helper()
	var hs healthStatus
	if err := json.Unmarshal([]byte(body), &hs); err != nil {
		t.Fatal(err)
	}
	return hs.Status == want
}

func obsExpo(s *Server) string { return s.reg.Expose() }

func containsMetric(expo, name string) bool {
	for _, line := range splitLines(expo) {
		if len(line) >= len(name) && line[:len(name)] == name {
			return true
		}
	}
	return false
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
