package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
)

// apiErr is a failed request: an HTTP status plus the uniform JSON
// error envelope {"error":{"code","message"}} every /v1 error speaks.
type apiErr struct {
	status  int
	code    string
	message string
}

func errBadRequest(format string, args ...any) *apiErr {
	return &apiErr{http.StatusBadRequest, "bad_request", fmt.Sprintf(format, args...)}
}

func errNotFound(format string, args ...any) *apiErr {
	return &apiErr{http.StatusNotFound, "not_found", fmt.Sprintf(format, args...)}
}

func errInternal(format string, args ...any) *apiErr {
	return &apiErr{http.StatusInternalServerError, "internal", fmt.Sprintf(format, args...)}
}

// errEnvelope is the wire form of an apiErr.
type errEnvelope struct {
	Error errBody `json:"error"`
}

type errBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeAPIError emits the envelope. The Content-Type header is set
// before any byte is written, and the body is marshaled up front so an
// encoding failure cannot corrupt an already-started response.
func writeAPIError(w http.ResponseWriter, e *apiErr) {
	body, err := json.MarshalIndent(errEnvelope{errBody{Code: e.code, Message: e.message}}, "", "  ")
	if err != nil {
		// Unreachable for plain strings, but never send half an envelope.
		body = []byte(`{"error":{"code":"internal","message":"error encoding failed"}}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.status)
	_, _ = w.Write(append(body, '\n'))
}

// result is a successful handler response in exactly one of three
// forms: a value to JSON-encode, pre-encoded JSON bytes (precomputed
// view payloads), or plain text (labels, tables).
type result struct {
	obj  any
	raw  []byte
	text string
}

// encodeResult renders a result to body bytes and a Content-Type.
// Encoding happens before anything touches the wire, so a failure
// surfaces as a clean 500 envelope instead of a silently truncated
// 200 — the errwrap-class bug the old writeJSON had.
func encodeResult(res *result) ([]byte, string, *apiErr) {
	switch {
	case res.text != "":
		return []byte(res.text), "text/plain; charset=utf-8", nil
	case res.raw != nil:
		return res.raw, "application/json", nil
	default:
		b, err := json.MarshalIndent(res.obj, "", "  ")
		if err != nil {
			return nil, "", errInternal("encoding response: %v", err)
		}
		return append(b, '\n'), "application/json", nil
	}
}

// responseRecorder buffers a response so the dispatch layer can compute
// ETags, populate the cache, and recover from handler panics with a
// clean 500 — nothing reaches the client until flush.
type responseRecorder struct {
	header http.Header
	status int
	buf    bytes.Buffer
}

func newRecorder() *responseRecorder {
	return &responseRecorder{header: http.Header{}, status: http.StatusOK}
}

func (w *responseRecorder) Header() http.Header { return w.header }

func (w *responseRecorder) WriteHeader(status int) { w.status = status }

func (w *responseRecorder) Write(b []byte) (int, error) { return w.buf.Write(b) }

// reset discards everything buffered so far (the panic-recovery path).
func (w *responseRecorder) reset() {
	w.header = http.Header{}
	w.status = http.StatusOK
	w.buf.Reset()
}

// flush replays the buffered response onto the real connection. A
// write error here means the client is gone; there is no recovery path.
func (w *responseRecorder) flush(dst http.ResponseWriter) {
	h := dst.Header()
	for k, vs := range w.header {
		h[k] = vs
	}
	dst.WriteHeader(w.status)
	if w.buf.Len() > 0 {
		_, _ = dst.Write(w.buf.Bytes())
	}
}

// statusClass buckets a status code for the request counter ("2xx",
// "3xx", "4xx", "5xx").
func statusClass(status int) string {
	switch {
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}
