package server

import "aipan/internal/api"

// The /v1 envelope machinery — error envelope, result encoding,
// response recorder, ETags, cursors — lives in internal/api, shared
// with the dispatch coordinator so the two surfaces cannot drift. The
// aliases and constructors below keep the server's route
// implementations as terse as they were when the machinery was local.
type (
	apiErr       = api.Error
	result       = api.Result
	healthStatus = api.Health
)

func errBadRequest(format string, args ...any) *apiErr {
	return api.BadRequestf(format, args...)
}

func errNotFound(format string, args ...any) *apiErr {
	return api.NotFoundf(format, args...)
}

func errInternal(format string, args ...any) *apiErr {
	return api.Internalf(format, args...)
}
