package server

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"aipan/internal/api"
	"aipan/internal/report"
	"aipan/internal/risk"
	"aipan/internal/store"
)

// view is one immutable, fully indexed snapshot of the dataset. It is
// built once per generation (startup and every Refresh) and swapped in
// atomically, so the request path never takes a lock and never scans
// the record slice: domain lookups hit a hash index, filtered listings
// intersect sorted inverted indexes, and the summary, paper tables, and
// risk ranking are precomputed. Everything derived from a view carries
// its generation, which is what invalidates cached responses and ETags
// when the dataset is refreshed.
type view struct {
	gen      uint64
	records  []store.Record // sorted by domain
	byDomain map[string]int // domain → index into records/rows
	rows     []DomainSummary

	// Inverted indexes: normalized key → ascending row indexes. Row
	// order is domain order, so every index list — and every
	// intersection of them — stays sorted by domain.
	all      []int
	bySector map[string][]int
	byAspect map[string][]int
	byLabel  map[string][]int

	summary     Summary
	summaryJSON []byte
	tables      map[string]string
	risk        []RiskEntry

	// Flight-recorder events, sorted by (Seq, RunID, Domain) so event
	// order — and cursor pagination over it — is deterministic for any
	// EventStore scan order. The indexes hold ascending positions into
	// events, mirroring the record indexes above.
	events          []store.Event
	eventsByDomain  map[string][]int
	eventsByOutcome map[string][]int
}

// Summary is the /v1/summary payload: the corpus funnel plus aspect and
// sector breakdowns, stamped with the serving generation.
type Summary struct {
	Generation   uint64         `json:"generation"`
	Domains      int            `json:"domains"`
	CrawlOK      int            `json:"crawl_ok"`
	ExtractOK    int            `json:"extract_ok"`
	Annotated    int            `json:"annotated"`
	Annotations  int            `json:"annotations"`
	ByAspect     map[string]int `json:"by_aspect"`
	SectorCounts map[string]int `json:"sector_counts"`
	Sectors      []string       `json:"sectors"`
}

// DomainSummary is one /v1/domains row.
type DomainSummary struct {
	Domain      string `json:"domain"`
	Company     string `json:"company"`
	Sector      string `json:"sector"`
	Annotations int    `json:"annotations"`
	CrawlOK     bool   `json:"crawl_ok"`
}

// DomainsPage is the paginated /v1/domains payload. NextCursor is an
// opaque token; pass it back as ?cursor= to fetch the next page.
type DomainsPage struct {
	Domains    []DomainSummary `json:"domains"`
	Total      int             `json:"total"`
	NextCursor string          `json:"next_cursor,omitempty"`
}

// RiskEntry is one /v1/risk row (risk.Score with stable snake_case
// field names).
type RiskEntry struct {
	Domain           string  `json:"domain"`
	Company          string  `json:"company"`
	Sector           string  `json:"sector"`
	Collection       float64 `json:"collection"`
	Purpose          float64 `json:"purpose"`
	Safeguards       float64 `json:"safeguards"`
	Penalties        float64 `json:"penalties"`
	Total            float64 `json:"total"`
	SectorPercentile float64 `json:"sector_percentile"`
}

// RiskPage is the /v1/risk payload.
type RiskPage struct {
	Scores []RiskEntry `json:"scores"`
	Total  int         `json:"total"`
}

// tableIDs are the /v1/tables/{table} identifiers, in display order.
var tableIDs = []string{"1", "2a", "2b", "3", "4", "5", "6"}

// buildView indexes a dataset snapshot. The input slices are not
// retained: records are copied and sorted by domain so row order (and
// therefore pagination order) is deterministic for any Source, and
// events are copied and sorted by run order.
func buildView(records []store.Record, events []store.Event, gen uint64) (*view, error) {
	recs := append([]store.Record(nil), records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Domain < recs[j].Domain })

	v := &view{
		gen:      gen,
		records:  recs,
		byDomain: make(map[string]int, len(recs)),
		rows:     make([]DomainSummary, 0, len(recs)),
		all:      make([]int, len(recs)),
		bySector: map[string][]int{},
		byAspect: map[string][]int{},
		byLabel:  map[string][]int{},
		summary: Summary{
			Generation:   gen,
			Domains:      len(recs),
			ByAspect:     map[string]int{},
			SectorCounts: map[string]int{},
		},
	}
	for i := range recs {
		rec := &recs[i]
		v.all[i] = i
		v.byDomain[rec.Domain] = i
		v.rows = append(v.rows, DomainSummary{
			Domain: rec.Domain, Company: rec.Company, Sector: rec.SectorAbbrev,
			Annotations: len(rec.Annotations), CrawlOK: rec.Crawl.Success,
		})
		v.bySector[normKey(rec.SectorAbbrev)] = append(v.bySector[normKey(rec.SectorAbbrev)], i)
		if rec.Crawl.Success {
			v.summary.CrawlOK++
		}
		if rec.Extraction.Success {
			v.summary.ExtractOK++
		}
		if rec.Annotated() {
			v.summary.Annotated++
		}
		v.summary.SectorCounts[rec.SectorAbbrev]++
		v.summary.Annotations += len(rec.Annotations)
		seenAspect := map[string]bool{}
		seenLabel := map[string]bool{}
		for _, a := range rec.Annotations {
			v.summary.ByAspect[a.Aspect]++
			if k := normKey(a.Aspect); !seenAspect[k] {
				seenAspect[k] = true
				v.byAspect[k] = append(v.byAspect[k], i)
			}
			if k := normKey(a.Category); k != "" && !seenLabel[k] {
				seenLabel[k] = true
				v.byLabel[k] = append(v.byLabel[k], i)
			}
		}
	}
	for sector := range v.summary.SectorCounts {
		v.summary.Sectors = append(v.summary.Sectors, sector)
	}
	sort.Strings(v.summary.Sectors)

	var err error
	if v.summaryJSON, err = json.MarshalIndent(v.summary, "", "  "); err != nil {
		return nil, fmt.Errorf("server: encoding summary: %w", err)
	}
	v.summaryJSON = append(v.summaryJSON, '\n')

	rep := report.New(recs, nil)
	v.tables = map[string]string{
		"1":  rep.Table1(false).Render(),
		"4":  rep.Table1(true).Render(),
		"2a": rep.Table2Types(false).Render(),
		"5":  rep.Table2Types(true).Render(),
		"2b": rep.Table2Purposes().Render(),
		"3":  rep.Table3().Render(),
		"6":  rep.Table6(4).Render(),
	}

	for _, sc := range risk.ScoreAll(recs, risk.DefaultWeights()) {
		v.risk = append(v.risk, RiskEntry{
			Domain: sc.Domain, Company: sc.Company, Sector: sc.Sector,
			Collection: sc.Collection, Purpose: sc.Purpose,
			Safeguards: sc.Safeguards, Penalties: sc.Penalties,
			Total: sc.Total, SectorPercentile: sc.SectorPercentile,
		})
	}

	v.events = append([]store.Event(nil), events...)
	sort.Slice(v.events, func(i, j int) bool {
		a, b := &v.events[i], &v.events[j]
		if a.Seq != b.Seq {
			return a.Seq < b.Seq
		}
		if a.RunID != b.RunID {
			return a.RunID < b.RunID
		}
		return a.Domain < b.Domain
	})
	v.eventsByDomain = map[string][]int{}
	v.eventsByOutcome = map[string][]int{}
	for i := range v.events {
		e := &v.events[i]
		v.eventsByDomain[e.Domain] = append(v.eventsByDomain[e.Domain], i)
		v.eventsByOutcome[normKey(e.Outcome)] = append(v.eventsByOutcome[normKey(e.Outcome)], i)
	}
	return v, nil
}

// normKey normalizes a filter key (sector abbreviation, aspect, label
// category) for index lookup: filters are case-insensitive.
func normKey(s string) string { return strings.ToLower(strings.TrimSpace(s)) }

// domainsQuery is a parsed, validated /v1/domains request.
type domainsQuery struct {
	sector, aspect, label string
	limit                 int
	cursor                string // decoded: list rows with Domain > cursor
}

// domainsPage filters via the inverted indexes and paginates with a
// cursor — O(filter result + log n), never O(dataset) per request.
func (v *view) domainsPage(q domainsQuery) *DomainsPage {
	idx := v.all
	for _, f := range []struct {
		val   string
		index map[string][]int
	}{
		{q.sector, v.bySector},
		{q.aspect, v.byAspect},
		{q.label, v.byLabel},
	} {
		if f.val == "" {
			continue
		}
		idx = intersect(idx, f.index[normKey(f.val)])
		if len(idx) == 0 {
			break
		}
	}

	// Row indexes ascend in domain order, so the cursor position is a
	// binary search for the first row past the cursor domain.
	pos := 0
	if q.cursor != "" {
		pos = sort.Search(len(idx), func(i int) bool { return v.rows[idx[i]].Domain > q.cursor })
	}
	page := &DomainsPage{Total: len(idx), Domains: []DomainSummary{}}
	end := pos + q.limit
	if end > len(idx) {
		end = len(idx)
	}
	for _, i := range idx[pos:end] {
		page.Domains = append(page.Domains, v.rows[i])
	}
	if end < len(idx) {
		page.NextCursor = encodeCursor(v.rows[idx[end-1]].Domain)
	}
	return page
}

// EventsPage is the paginated /v1/events payload.
type EventsPage struct {
	Events     []store.Event `json:"events"`
	Total      int           `json:"total"`
	NextCursor string        `json:"next_cursor,omitempty"`
}

// ProvenancePage is the /v1/domains/{domain}/provenance payload.
type ProvenancePage struct {
	Domain string        `json:"domain"`
	Events []store.Event `json:"events"`
	Total  int           `json:"total"`
}

// eventsQuery is a parsed, validated /v1/events request. cursor is the
// view-local position of the last event served (-1 = start); positions
// are stable for the lifetime of a generation, and the generation-keyed
// ETag invalidates any cursor that outlives a refresh.
type eventsQuery struct {
	outcome string
	limit   int
	cursor  int
}

// eventsPage filters the event stream by outcome and paginates it.
func (v *view) eventsPage(q eventsQuery) *EventsPage {
	idx := v.eventsByOutcome[normKey(q.outcome)]
	if q.outcome == "" {
		idx = make([]int, len(v.events))
		for i := range idx {
			idx[i] = i
		}
	}
	pos := 0
	if q.cursor >= 0 {
		pos = sort.SearchInts(idx, q.cursor+1)
	}
	page := &EventsPage{Total: len(idx), Events: []store.Event{}}
	end := pos + q.limit
	if end > len(idx) {
		end = len(idx)
	}
	for _, i := range idx[pos:end] {
		page.Events = append(page.Events, v.events[i])
	}
	if end < len(idx) {
		page.NextCursor = encodeCursor(strconv.Itoa(idx[end-1]))
	}
	return page
}

// provenance returns every recorded event for one domain, in run order.
func (v *view) provenance(domain string) *ProvenancePage {
	idx := v.eventsByDomain[domain]
	page := &ProvenancePage{Domain: domain, Events: []store.Event{}, Total: len(idx)}
	for _, i := range idx {
		page.Events = append(page.Events, v.events[i])
	}
	return page
}

// intersect merges two ascending index lists.
func intersect(a, b []int) []int {
	out := make([]int, 0, min(len(a), len(b)))
	for i, j := 0, 0; i < len(a) && j < len(b); {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Cursors are opaque to clients: the base64url-encoded domain of the
// last row served (shared machinery in internal/api). Encoding keeps
// clients from treating them as data and keeps URL-unsafe domain bytes
// out of query strings.
func encodeCursor(domain string) string { return api.EncodeCursor(domain) }

func decodeCursor(s string) (string, error) { return api.DecodeCursor(s) }
