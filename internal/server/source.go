package server

import (
	"fmt"
	"sync"

	"aipan/internal/store"
)

// shardedSource is the incremental Source behind FromStore for backends
// that expose per-shard views: each shard's records are cached alongside
// its change stamp, and a Refresh re-scans only the shards whose stamp
// moved. Under the pipeline's hash-sharded append pattern all shards
// grow during a run, but once a run finishes — or between appends — a
// refresh costs NumShards stat calls instead of a full dataset scan,
// and a crash-recovery restart re-reads nothing that was already
// indexed. Load still returns the full record slice (buildView indexes
// from scratch per generation); the caching removes the disk re-scan,
// which is what dominates refresh time on large stores.
type shardedSource struct {
	mu      sync.Mutex
	sv      store.ShardView
	scanned []bool
	stamps  []string
	shards  [][]store.Record
}

// Load implements Source.
func (s *shardedSource) Load() ([]store.Record, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.sv.NumShards()
	if len(s.shards) != n {
		s.shards = make([][]store.Record, n)
		s.stamps = make([]string, n)
		s.scanned = make([]bool, n)
	}
	total := 0
	for i := 0; i < n; i++ {
		stamp, err := s.sv.ShardStamp(i)
		if err != nil {
			return nil, fmt.Errorf("server: stamping shard %d: %w", i, err)
		}
		if !s.scanned[i] || stamp != s.stamps[i] {
			var recs []store.Record
			if err := s.sv.ScanShard(i, func(r *store.Record) error {
				recs = append(recs, *r)
				return nil
			}); err != nil {
				return nil, fmt.Errorf("server: loading shard %d: %w", i, err)
			}
			s.shards[i] = recs
			s.stamps[i] = stamp
			s.scanned[i] = true
		}
		total += len(s.shards[i])
	}
	out := make([]store.Record, 0, total)
	for _, recs := range s.shards {
		out = append(out, recs...)
	}
	return out, nil
}
