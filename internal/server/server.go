// Package server exposes a completed AIPAN dataset over a versioned
// HTTP/JSON API — the form in which downstream consumers (dashboards,
// risk tools, browser extensions) actually use the paper's dataset —
// built to hold up under production traffic: every read endpoint is
// O(result) against immutable indexed views, responses are cached and
// revalidated with strong ETags, and overload is shed with 429/503 +
// Retry-After instead of queueing into latency collapse.
//
// Routes (all JSON unless noted; errors use the uniform envelope
// {"error":{"code","message"}}):
//
//	GET /v1/summary                        corpus funnel + aspect/sector counts
//	GET /v1/domains?sector=&aspect=&label= cursor-paginated domain listing
//	              &limit=&cursor=
//	GET /v1/domains/{domain}               one record with all annotations
//	GET /v1/domains/{domain}/label         privacy nutrition label (text/plain)
//	GET /v1/domains/{domain}/ask?q=...     grounded question answering
//	GET /v1/domains/{domain}/provenance    flight-recorder events for one domain
//	GET /v1/events?outcome=&limit=&cursor= cursor-paginated flight-recorder stream
//	GET /v1/risk?top=25                    exposure scores
//	GET /v1/tables/{1|2a|2b|3|4|5|6}       regenerated paper tables (text/plain)
//	GET /v1/healthz, /v1/readyz            liveness / readiness probes
//	GET /metrics                           Prometheus text exposition
//	GET /debug/pprof/...                   net/http/pprof profiles
//
// The legacy unversioned /api/... paths answer with deprecated 308
// redirects to their /v1 equivalents.
package server

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"aipan/internal/api"
	"aipan/internal/engine"
	"aipan/internal/obs"
	"aipan/internal/store"
)

// Source supplies the dataset a Server serves. Refresh re-Loads it, so
// a Source backed by a live store picks up appended records.
type Source interface {
	Load() ([]store.Record, error)
}

// Records adapts an in-memory record slice into a Source.
func Records(records []store.Record) Source { return recordsSource(records) }

type recordsSource []store.Record

func (rs recordsSource) Load() ([]store.Record, error) { return rs, nil }

// FromStore adapts any store backend — JSONL file, shard directory,
// binary segment store, in-memory — into a Source, without an
// intermediate flat-file export. Backends exposing per-shard views
// (every shipped backend does) load incrementally: each Refresh
// re-scans only the shards whose change stamp moved since the previous
// generation, so refreshing a mostly-quiet large store costs stat
// calls, not a dataset re-read.
func FromStore(st store.Store) Source {
	if sv, ok := st.(store.ShardView); ok {
		return &shardedSource{sv: sv}
	}
	return storeSource{st}
}

type storeSource struct{ st store.Store }

func (s storeSource) Load() ([]store.Record, error) {
	var records []store.Record
	if err := s.st.Scan(func(r *store.Record) error {
		records = append(records, *r)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("server: loading records: %w", err)
	}
	return records, nil
}

// Server is the dataset API. The zero value is not usable; build one
// with NewServer.
type Server struct {
	src   Source
	reg   *obs.Registry
	log   *obs.Logger
	clock obs.Clock

	view  atomic.Pointer[view]
	gen   atomic.Uint64
	ready atomic.Bool

	cache    *respCache   // nil = response caching disabled
	rate     *rateLimiter // nil = rate limiting disabled
	inflight *engine.Limiter
	timeout  time.Duration
	router   *router
	debug    http.Handler // /metrics + /debug/pprof

	events store.EventStore // nil = provenance/events routes answer 404
	slo    *obs.SLOMonitor
	sloCfg obs.SLOConfig

	mRequests    *obs.CounterVec
	mDuration    *obs.HistogramVec
	mCacheHits   *obs.CounterVec
	mCacheMisses *obs.CounterVec
	mShed        *obs.CounterVec
	mInflight    *obs.Gauge
	mPanics      *obs.Counter
	mGeneration  *obs.Gauge
	mRecords     *obs.Gauge
	mEvents      *obs.Gauge
}

// Option configures a Server.
type Option func(*Server)

// WithRegistry serves and instruments against reg instead of the
// process-wide default registry.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// WithLogger emits request-scoped structured logs to log (nil, the
// default, disables them).
func WithLogger(log *obs.Logger) Option {
	return func(s *Server) { s.log = log }
}

// WithRateLimit admits at most rps requests per second per client IP,
// with the given burst allowance (burst < 1 defaults to ceil(rps)).
// rps <= 0 — the default — disables rate limiting.
func WithRateLimit(rps float64, burst int) Option {
	return func(s *Server) {
		if rps > 0 {
			s.rate = newRateLimiter(rps, burst)
		} else {
			s.rate = nil
		}
	}
}

// WithCacheSize bounds the response cache to n entries (LRU). n <= 0
// disables response caching; the default is 1024.
func WithCacheSize(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.cache = newRespCache(n)
		} else {
			s.cache = nil
		}
	}
}

// WithMaxInflight caps concurrently served dataset requests; beyond
// the cap requests are shed with 503 + Retry-After. The default is 256.
func WithMaxInflight(n int) Option {
	return func(s *Server) { s.inflight = engine.NewLimiter(n) }
}

// WithRequestTimeout bounds each request's context (default 15s;
// d <= 0 disables the bound).
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithClock injects the time source used for latency metrics and
// rate-limit refill — tests freeze it to make shedding deterministic.
func WithClock(clock obs.Clock) Option {
	return func(s *Server) { s.clock = clock }
}

// WithEvents serves the pipeline's flight-recorder stream alongside the
// dataset: /v1/domains/{domain}/provenance and /v1/events read from ev,
// re-scanned into the immutable view on every Refresh (so they get the
// same ETag/304 treatment as dataset routes). The caller keeps
// ownership of ev and closes it after the server stops.
func WithEvents(ev store.EventStore) Option {
	return func(s *Server) { s.events = ev }
}

// WithSLO overrides the server's latency/error objective (zero fields
// keep the defaults: 250ms slow target, 5m window, 5% slow and 1%
// error budget, 20-sample minimum). The monitor watches every served
// request and degrades /v1/readyz with a warning while a budget burns.
func WithSLO(cfg obs.SLOConfig) Option {
	return func(s *Server) { s.sloCfg = cfg }
}

// NewServer builds the API over src, loading and indexing the dataset
// once up front. The returned server is ready: /v1/readyz answers 200
// until SetReady(false) (typically wired to shutdown drain).
func NewServer(src Source, opts ...Option) (*Server, error) {
	s := &Server{
		src:      src,
		clock:    obs.SystemClock,
		cache:    newRespCache(1024),
		inflight: engine.NewLimiter(256),
		timeout:  15 * time.Second,
	}
	for _, o := range opts {
		o(s)
	}
	if s.reg == nil {
		s.reg = obs.Default()
	}
	s.log = s.log.With("server")

	s.mRequests = s.reg.CounterVec("aipan_server_requests_total",
		"Dataset API requests served, by route and status class.", "route", "class")
	s.mDuration = s.reg.HistogramVec("aipan_server_request_duration_seconds",
		"Dataset API request latency by route.", nil, "route")
	s.mCacheHits = s.reg.CounterVec("aipan_server_cache_hits_total",
		"Response-cache hits by route.", "route")
	s.mCacheMisses = s.reg.CounterVec("aipan_server_cache_misses_total",
		"Response-cache misses by route.", "route")
	s.mShed = s.reg.CounterVec("aipan_server_shed_total",
		"Requests shed by backpressure, by reason (rate_limit, inflight).", "reason")
	s.mInflight = s.reg.Gauge("aipan_server_inflight",
		"Dataset API requests currently being served.")
	s.mPanics = s.reg.Counter("aipan_server_panics_total",
		"Handler panics recovered into 500 responses.")
	s.mGeneration = s.reg.Gauge("aipan_server_dataset_generation",
		"Generation of the dataset view currently being served.")
	s.mRecords = s.reg.Gauge("aipan_server_dataset_records",
		"Records in the dataset view currently being served.")
	s.mEvents = s.reg.Gauge("aipan_server_dataset_events",
		"Flight-recorder events in the dataset view currently being served.")
	s.slo = obs.NewSLOMonitor(s.reg, s.sloCfg, s.clock)

	s.router = s.routes()
	s.debug = obs.DebugMux(s.reg)
	if err := s.Refresh(context.Background()); err != nil {
		return nil, err
	}
	s.ready.Store(true)
	return s, nil
}

// New builds the API over an in-memory dataset.
//
// Deprecated: use NewServer(Records(records), opts...).
func New(records []store.Record, opts ...Option) *Server {
	s, err := NewServer(Records(records), opts...)
	if err != nil {
		// Unreachable: an in-memory Source cannot fail to load.
		panic(err)
	}
	return s
}

// NewFromStore builds the API over a dataset held in a store backend.
//
// Deprecated: use NewServer(FromStore(st), opts...).
func NewFromStore(st store.Store, opts ...Option) (*Server, error) {
	return NewServer(FromStore(st), opts...)
}

// Refresh re-Loads the Source and atomically swaps in a freshly
// indexed view under the next generation. In-flight requests keep the
// view they started with; the generation bump invalidates every cached
// response and ETag.
func (s *Server) Refresh(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	records, err := s.src.Load()
	if err != nil {
		return err
	}
	var events []store.Event
	if s.events != nil {
		if err := s.events.Scan(func(e *store.Event) error {
			events = append(events, *e)
			return nil
		}); err != nil {
			return fmt.Errorf("server: loading events: %w", err)
		}
	}
	gen := s.gen.Add(1)
	v, err := buildView(records, events, gen)
	if err != nil {
		return err
	}
	s.view.Store(v)
	s.mGeneration.Set(float64(gen))
	s.mRecords.Set(float64(len(v.records)))
	s.mEvents.Set(float64(len(v.events)))
	s.log.Info("dataset view refreshed", "generation", gen, "records", len(v.records),
		"events", len(v.events))
	return nil
}

// Generation reports the generation of the currently served view.
func (s *Server) Generation() uint64 { return s.gen.Load() }

// SetReady flips the /v1/readyz answer; wire SetReady(false) into
// shutdown (e.g. http.Server.RegisterOnShutdown) so load balancers
// stop routing to a draining process.
func (s *Server) SetReady(ok bool) { s.ready.Store(ok) }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	path := r.URL.Path
	switch {
	case path == "/metrics" || strings.HasPrefix(path, "/debug/pprof"):
		s.debug.ServeHTTP(w, r)
	case strings.HasPrefix(path, "/api/"):
		s.redirectLegacy(w, r)
	default:
		s.serveV1(w, r)
	}
}

// serveV1 is the dispatch pipeline for the versioned API: match →
// panic guard → shed → cache → handle → encode → ETag → flush, with
// per-route metrics and a request-scoped log line around the lot.
func (s *Server) serveV1(w http.ResponseWriter, r *http.Request) {
	start := s.clock()
	rt, ps, allow := s.router.match(r.Method, r.URL.Path)
	name := "unmatched"
	if rt != nil {
		name = rt.Name
	}
	rec := api.NewRecorder()
	func() {
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				s.log.Error("handler panic", "route", name, "path", r.URL.Path, "panic", fmt.Sprint(p))
				rec.Reset()
				api.WriteError(rec, errInternal("internal server error"))
			}
		}()
		s.handle(rec, r, rt, ps, allow)
	}()
	rec.Flush(w)
	s.mRequests.With(name, api.StatusClass(rec.Status())).Inc()
	s.mDuration.With(name).Observe(s.clock().Sub(start).Seconds())
	s.slo.Observe(s.clock().Sub(start), rec.Status() >= 500)
	if s.log.Enabled(obs.LevelDebug) {
		s.log.Debug("request",
			"method", r.Method, "path", r.URL.Path, "route", name,
			"status", rec.Status(), "client", clientKey(r),
			"dur_ms", s.clock().Sub(start).Milliseconds())
	}
}

func (s *Server) handle(w *api.Recorder, r *http.Request, rt *route, ps params, allow []string) {
	if rt == nil {
		if len(allow) > 0 {
			w.Header().Set("Allow", strings.Join(allow, ", "))
			api.WriteError(w, &apiErr{Status: http.StatusMethodNotAllowed, Code: "method_not_allowed",
				Message: fmt.Sprintf("method %s not allowed (allow: %s)", r.Method, strings.Join(allow, ", "))})
			return
		}
		api.WriteError(w, errNotFound("no such endpoint %q; see /v1/summary, /v1/domains, /v1/risk, /v1/tables", r.URL.Path))
		return
	}

	if rt.H.shed {
		if !s.inflight.TryAcquire() {
			s.mShed.With("inflight").Inc()
			w.Header().Set("Retry-After", "1")
			api.WriteError(w, &apiErr{Status: http.StatusServiceUnavailable, Code: "overloaded",
				Message: "server at its in-flight capacity; retry shortly"})
			return
		}
		defer func() {
			s.inflight.Release()
			s.mInflight.Dec()
		}()
		s.mInflight.Inc()
		if s.rate != nil {
			if ok, wait := s.rate.allow(clientKey(r), s.clock()); !ok {
				s.mShed.With("rate_limit").Inc()
				w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
				api.WriteError(w, &apiErr{Status: http.StatusTooManyRequests, Code: "rate_limited",
					Message: "client request rate exceeded; slow down"})
				return
			}
		}
	}

	if s.timeout > 0 {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		r = r.WithContext(ctx)
	}

	v := s.view.Load()
	var key string
	cacheable := rt.H.cacheable && s.cache != nil
	if cacheable {
		key = cacheKey(r)
		if e, ok := s.cache.get(key, v.gen); ok {
			s.mCacheHits.With(rt.Name).Inc()
			s.serveBody(w, r, e.contentType, e.body, e.etag)
			return
		}
		s.mCacheMisses.With(rt.Name).Inc()
	}

	res, aerr := rt.H.h(v, ps, r)
	if aerr == nil && r.Context().Err() != nil {
		aerr = &apiErr{Status: http.StatusServiceUnavailable, Code: "timeout", Message: "request deadline exceeded"}
	}
	if aerr != nil {
		api.WriteError(w, aerr)
		return
	}
	body, ct, aerr := api.EncodeResult(res)
	if aerr != nil {
		s.log.Error("response encoding failed", "route", rt.Name, "err", aerr.Message)
		api.WriteError(w, aerr)
		return
	}
	var etag string
	if cacheable {
		etag = api.ETagFor(v.gen, body)
		s.cache.put(key, v.gen, &cacheEntry{contentType: ct, body: body, etag: etag})
	}
	s.serveBody(w, r, ct, body, etag)
}

// serveBody writes a 200 (or, under a matching If-None-Match, a bare
// 304) with the Content-Type set before the first body byte.
func (s *Server) serveBody(w *api.Recorder, r *http.Request, ct string, body []byte, etag string) {
	h := w.Header()
	if etag != "" {
		h.Set("ETag", etag)
		h.Set("Cache-Control", "no-cache") // revalidate with If-None-Match
		if api.ETagMatch(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	h.Set("Content-Type", ct)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// legacySunset is the date after which the deprecated /api surface may
// be removed, advertised on every 308 via the Sunset header (RFC 8594).
// Dashboards should alert on a nonzero rate of
// aipan_server_requests_total{route="legacy"} well before this date —
// that counter is the census of consumers still on the old paths.
const legacySunset = "Sun, 01 Aug 2027 00:00:00 GMT"

// redirectLegacy answers the pre-/v1 routes with permanent redirects —
// 308 preserves the method — so existing consumers keep working while
// the Deprecation and Sunset headers tell them to move, and by when.
func (s *Server) redirectLegacy(w http.ResponseWriter, r *http.Request) {
	target, ok := legacyTarget(r.URL.Path)
	if !ok {
		rec := api.NewRecorder()
		api.WriteError(rec, errNotFound("no such endpoint %q; the API moved under /v1", r.URL.Path))
		rec.Flush(w)
		s.mRequests.With("legacy", api.StatusClass(rec.Status())).Inc()
		return
	}
	if r.URL.RawQuery != "" {
		target += "?" + r.URL.RawQuery
	}
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Sunset", legacySunset)
	http.Redirect(w, r, target, http.StatusPermanentRedirect)
	s.mRequests.With("legacy", "3xx").Inc()
}

// legacyMapping pairs a deprecated /api path with the /v1 route pattern
// it redirects to. exact entries match the legacy path verbatim;
// prefix entries capture the remainder of the path as {param} and
// substitute it into the v1 pattern. The table — not ad-hoc string
// code — is the legacy surface, so TestLegacySurfaceComplete can hold
// it bijective against the /v1 router table.
type legacyMapping struct {
	legacy string // exact path, or prefix ending in "/"
	v1     string // route pattern, possibly with one {param}
	param  string // the capture name substituted for prefix mappings
}

var legacyMappings = []legacyMapping{
	{legacy: "/api/summary", v1: "/v1/summary"},
	{legacy: "/api/domains", v1: "/v1/domains"},
	{legacy: "/api/risk", v1: "/v1/risk"},
	{legacy: "/api/domain/", v1: "/v1/domains/{domain}", param: "domain"},
	{legacy: "/api/label/", v1: "/v1/domains/{domain}/label", param: "domain"},
	{legacy: "/api/ask/", v1: "/v1/domains/{domain}/ask", param: "domain"},
	{legacy: "/api/table/", v1: "/v1/tables/{table}", param: "table"},
}

// legacyTarget maps a deprecated /api path onto its /v1 equivalent.
func legacyTarget(path string) (string, bool) {
	for _, m := range legacyMappings {
		if m.param == "" {
			if path == m.legacy {
				return m.v1, true
			}
			continue
		}
		if rest, ok := strings.CutPrefix(path, m.legacy); ok && rest != "" {
			return strings.Replace(m.v1, "{"+m.param+"}", rest, 1), true
		}
	}
	return "", false
}
