// Package server exposes a completed AIPAN dataset over a small HTTP/JSON
// API — the form in which downstream consumers (dashboards, risk tools,
// browser extensions) would actually use the paper's dataset. Endpoints:
//
//	GET /api/summary                 corpus funnel + aspect counts
//	GET /api/domains?sector=FS       domain list (filterable)
//	GET /api/domain/{domain}         one record with all annotations
//	GET /api/label/{domain}          privacy nutrition label (text/plain)
//	GET /api/ask/{domain}?q=...      grounded question answering
//	GET /api/risk?top=25             exposure scores
//	GET /api/table/{1|2a|2b|3|4|5|6} regenerated paper tables (text/plain)
//	GET /metrics                     Prometheus text exposition
//	GET /debug/pprof/...             net/http/pprof profiles
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"

	"aipan/internal/nutrition"
	"aipan/internal/obs"
	"aipan/internal/qa"
	"aipan/internal/report"
	"aipan/internal/risk"
	"aipan/internal/store"
)

// Server is the dataset API.
type Server struct {
	records  []store.Record
	byDomain map[string]*store.Record
	rep      *report.Report
	mux      *http.ServeMux
	reg      *obs.Registry
	handler  http.Handler
}

// Option configures a Server.
type Option func(*Server)

// WithRegistry serves and instruments against reg instead of the
// process-wide default registry.
func WithRegistry(reg *obs.Registry) Option {
	return func(s *Server) { s.reg = reg }
}

// New builds the API over a dataset.
func New(records []store.Record, opts ...Option) *Server {
	s := &Server{
		records:  records,
		byDomain: make(map[string]*store.Record, len(records)),
		rep:      report.New(records, nil),
		mux:      http.NewServeMux(),
	}
	for _, o := range opts {
		o(s)
	}
	for i := range records {
		s.byDomain[records[i].Domain] = &records[i]
	}
	s.mux.HandleFunc("GET /api/summary", s.handleSummary)
	s.mux.HandleFunc("GET /api/domains", s.handleDomains)
	s.mux.HandleFunc("GET /api/domain/{domain}", s.handleDomain)
	s.mux.HandleFunc("GET /api/label/{domain}", s.handleLabel)
	s.mux.HandleFunc("GET /api/ask/{domain}", s.handleAsk)
	s.mux.HandleFunc("GET /api/risk", s.handleRisk)
	s.mux.HandleFunc("GET /api/table/{table}", s.handleTable)
	s.mux.Handle("GET /metrics", obs.MetricsHandler(s.reg))
	s.mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	s.mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	s.handler = obs.InstrumentHandler(s.reg, "api", s.mux)
	return s
}

// NewFromStore builds the API over a dataset held in a store backend.
// The records are materialized with one Scan, so any backend — JSONL
// file, shard directory, in-memory — can back the API directly, without
// first being exported to a flat JSONL file.
func NewFromStore(st store.Store, opts ...Option) (*Server, error) {
	var records []store.Record
	if err := st.Scan(func(r *store.Record) error {
		records = append(records, *r)
		return nil
	}); err != nil {
		return nil, fmt.Errorf("server: loading records: %w", err)
	}
	return New(records, opts...), nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// Summary is the /api/summary payload.
type Summary struct {
	Domains      int            `json:"domains"`
	CrawlOK      int            `json:"crawl_ok"`
	ExtractOK    int            `json:"extract_ok"`
	Annotated    int            `json:"annotated"`
	Annotations  int            `json:"annotations"`
	ByAspect     map[string]int `json:"by_aspect"`
	SectorCounts map[string]int `json:"sector_counts"`
}

func (s *Server) handleSummary(w http.ResponseWriter, r *http.Request) {
	sum := Summary{
		Domains:      len(s.records),
		ByAspect:     map[string]int{},
		SectorCounts: map[string]int{},
	}
	for i := range s.records {
		rec := &s.records[i]
		if rec.Crawl.Success {
			sum.CrawlOK++
		}
		if rec.Extraction.Success {
			sum.ExtractOK++
		}
		if rec.Annotated() {
			sum.Annotated++
		}
		sum.SectorCounts[rec.SectorAbbrev]++
		sum.Annotations += len(rec.Annotations)
		for _, a := range rec.Annotations {
			sum.ByAspect[a.Aspect]++
		}
	}
	writeJSON(w, sum)
}

// DomainSummary is one /api/domains row.
type DomainSummary struct {
	Domain      string `json:"domain"`
	Company     string `json:"company"`
	Sector      string `json:"sector"`
	Annotations int    `json:"annotations"`
	CrawlOK     bool   `json:"crawl_ok"`
}

func (s *Server) handleDomains(w http.ResponseWriter, r *http.Request) {
	sector := strings.ToUpper(r.URL.Query().Get("sector"))
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	var out []DomainSummary
	for i := range s.records {
		rec := &s.records[i]
		if sector != "" && rec.SectorAbbrev != sector {
			continue
		}
		out = append(out, DomainSummary{
			Domain: rec.Domain, Company: rec.Company, Sector: rec.SectorAbbrev,
			Annotations: len(rec.Annotations), CrawlOK: rec.Crawl.Success,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Domain < out[j].Domain })
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	writeJSON(w, out)
}

func (s *Server) record(w http.ResponseWriter, r *http.Request) *store.Record {
	domain := r.PathValue("domain")
	rec, ok := s.byDomain[domain]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("domain %q not in dataset", domain))
		return nil
	}
	return rec
}

func (s *Server) handleDomain(w http.ResponseWriter, r *http.Request) {
	if rec := s.record(w, r); rec != nil {
		writeJSON(w, rec)
	}
}

func (s *Server) handleLabel(w http.ResponseWriter, r *http.Request) {
	rec := s.record(w, r)
	if rec == nil {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, nutrition.Build(rec.Annotations).Render(rec.Company))
}

func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	rec := s.record(w, r)
	if rec == nil {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "missing ?q= question")
		return
	}
	ans, ok := qa.Ask(q, rec.Annotations)
	if !ok {
		writeError(w, http.StatusUnprocessableEntity,
			fmt.Sprintf("unsupported question; families: %s", strings.Join(qa.Intents(), ", ")))
		return
	}
	writeJSON(w, map[string]any{
		"question":  q,
		"answer":    ans.Text,
		"evidence":  ans.Evidence,
		"confident": ans.Confident,
	})
}

func (s *Server) handleRisk(w http.ResponseWriter, r *http.Request) {
	top := 25
	if v := r.URL.Query().Get("top"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "top must be a positive integer")
			return
		}
		top = n
	}
	scores := risk.ScoreAll(s.records, risk.DefaultWeights())
	if len(scores) > top {
		scores = scores[:top]
	}
	writeJSON(w, scores)
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) {
	var out string
	switch r.PathValue("table") {
	case "1":
		out = s.rep.Table1(false).Render()
	case "4":
		out = s.rep.Table1(true).Render()
	case "2a":
		out = s.rep.Table2Types(false).Render()
	case "5":
		out = s.rep.Table2Types(true).Render()
	case "2b":
		out = s.rep.Table2Purposes().Render()
	case "3":
		out = s.rep.Table3().Render()
	case "6":
		out = s.rep.Table6(4).Render()
	default:
		writeError(w, http.StatusNotFound, "unknown table (1, 2a, 2b, 3, 4, 5, 6)")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, out)
}
