package server

import (
	"math"
	"net"
	"net/http"
	"sync"
	"time"
)

// rateLimiter is a per-client token bucket. Buckets refill lazily from
// elapsed time at admission, so no background goroutine runs (the repo
// routes all spawned concurrency through internal/engine) and a frozen
// test clock makes admission decisions exactly reproducible.
type rateLimiter struct {
	mu         sync.Mutex
	rps        float64 // tokens added per second
	burst      float64 // bucket capacity
	maxClients int     // bound on tracked buckets
	buckets    map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rps float64, burst int) *rateLimiter {
	if burst < 1 {
		burst = int(math.Ceil(math.Max(rps, 1)))
	}
	return &rateLimiter{
		rps: rps, burst: float64(burst),
		maxClients: 10000,
		buckets:    map[string]*tokenBucket{},
	}
}

// allow admits one request from client at now, or reports how long
// until the next token accrues (the Retry-After hint).
func (rl *rateLimiter) allow(client string, now time.Time) (bool, time.Duration) {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	b := rl.buckets[client]
	if b == nil {
		if len(rl.buckets) >= rl.maxClients {
			rl.prune(now)
		}
		b = &tokenBucket{tokens: rl.burst, last: now}
		rl.buckets[client] = b
	}
	if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
		b.tokens = math.Min(rl.burst, b.tokens+elapsed*rl.rps)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rl.rps * float64(time.Second))
}

// prune forgets buckets that have fully refilled: an idle client's
// fresh bucket admits the same burst, so dropping it is lossless. Runs
// under the lock, only when the client table hits its bound.
func (rl *rateLimiter) prune(now time.Time) {
	for k, b := range rl.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*rl.rps >= rl.burst {
			delete(rl.buckets, k)
		}
	}
}

// clientKey identifies the requesting client for rate limiting: the
// remote IP without the ephemeral port.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// retryAfterSeconds rounds a wait up to the whole seconds Retry-After
// requires, never less than 1.
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
