package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipan/internal/annotate"
	"aipan/internal/obs"
	"aipan/internal/store"
	"aipan/internal/taxonomy"
)

func testRecords() []store.Record {
	return []store.Record{
		{
			Domain: "acme.example.com", Company: "Acme Corp", Sector: "Financials",
			SectorAbbrev: "FS",
			Crawl:        store.CrawlInfo{Success: true, PagesFetched: 5},
			Extraction:   store.ExtractionInfo{Success: true},
			Annotations: []annotate.Annotation{
				{Aspect: "types", Meta: taxonomy.MetaPhysicalProfile, Category: "Contact info", Descriptor: "email address", Text: "email address", Context: "We collect your email address."},
				{Aspect: "purposes", Meta: taxonomy.MetaThirdParty, Category: "Data sharing", Descriptor: "data for sale", Text: "sell", Context: "We may sell your data."},
				{Aspect: "handling", Meta: taxonomy.GroupRetention, Category: taxonomy.RetentionStated, Descriptor: "2 years", Text: "2 years", RetentionDays: 730, Context: "We retain data for 2 years."},
				{Aspect: "rights", Meta: taxonomy.GroupAccess, Category: taxonomy.AccessFullDelete, Text: "delete", Context: "You may delete all data."},
			},
		},
		{
			Domain: "other.example.com", Company: "Other Inc", Sector: "Energy",
			SectorAbbrev: "EN",
			Crawl:        store.CrawlInfo{Success: false, Error: "timeout"},
		},
	}
}

// makeRecords fabricates n deterministic records across three sectors
// for pagination and index tests.
func makeRecords(n int) []store.Record {
	sectors := []string{"FS", "EN", "CD"}
	recs := make([]store.Record, 0, n)
	for i := 0; i < n; i++ {
		rec := store.Record{
			Domain:       fmt.Sprintf("d%04d.example.com", i),
			Company:      fmt.Sprintf("Company %04d", i),
			Sector:       "Sector",
			SectorAbbrev: sectors[i%len(sectors)],
			Crawl:        store.CrawlInfo{Success: true},
			Extraction:   store.ExtractionInfo{Success: true},
		}
		if i%2 == 0 {
			rec.Annotations = append(rec.Annotations, annotate.Annotation{
				Aspect: "types", Category: "Contact info", Descriptor: "email address",
				Text: "email address", Context: "We collect your email address.",
			})
		}
		if i%4 == 0 {
			rec.Annotations = append(rec.Annotations, annotate.Annotation{
				Aspect: "purposes", Category: "Data sharing", Descriptor: "data for sale",
				Text: "sell", Context: "We may sell your data.",
			})
		}
		recs = append(recs, rec)
	}
	return recs
}

func newTestServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	opts = append([]Option{WithRegistry(obs.NewRegistry())}, opts...)
	s, err := NewServer(Records(testRecords()), opts...)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)
	return s, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSummary(t *testing.T) {
	_, srv := newTestServer(t)
	status, body := get(t, srv.URL+"/v1/summary")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	var sum Summary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Domains != 2 || sum.Annotated != 1 || sum.CrawlOK != 1 {
		t.Errorf("summary: %+v", sum)
	}
	if sum.ByAspect["types"] != 1 {
		t.Errorf("by aspect: %v", sum.ByAspect)
	}
	if sum.Generation != 1 || len(sum.Sectors) != 2 {
		t.Errorf("generation %d, sectors %v", sum.Generation, sum.Sectors)
	}
}

func TestDomainsFilters(t *testing.T) {
	_, srv := newTestServer(t)
	for _, tc := range []struct {
		query string
		want  []string
	}{
		{"?sector=fs", []string{"acme.example.com"}},
		{"?sector=FS", []string{"acme.example.com"}},
		{"?sector=XX", nil},
		{"?aspect=rights", []string{"acme.example.com"}},
		{"?label=contact+info", []string{"acme.example.com"}},
		{"?sector=en&aspect=types", nil},
		{"", []string{"acme.example.com", "other.example.com"}},
	} {
		status, body := get(t, srv.URL+"/v1/domains"+tc.query)
		if status != 200 {
			t.Fatalf("%s: status %d", tc.query, status)
		}
		var page DomainsPage
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatal(err)
		}
		var got []string
		for _, d := range page.Domains {
			got = append(got, d.Domain)
		}
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("%s: domains = %v, want %v", tc.query, got, tc.want)
		}
		if page.Total != len(tc.want) {
			t.Errorf("%s: total = %d, want %d", tc.query, page.Total, len(tc.want))
		}
	}
}

// TestDomainsPagination walks the full listing through cursor pages and
// checks the walk reassembles the exact sorted domain sequence.
func TestDomainsPagination(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(Records(makeRecords(10)), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	var walked []string
	cursor := ""
	pages := 0
	for {
		url := srv.URL + "/v1/domains?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		status, body := get(t, url)
		if status != 200 {
			t.Fatalf("page %d: status %d: %s", pages, status, body)
		}
		var page DomainsPage
		if err := json.Unmarshal([]byte(body), &page); err != nil {
			t.Fatal(err)
		}
		if page.Total != 10 {
			t.Fatalf("page %d: total = %d, want 10", pages, page.Total)
		}
		for _, d := range page.Domains {
			walked = append(walked, d.Domain)
		}
		pages++
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if pages != 4 || len(walked) != 10 {
		t.Fatalf("walked %d domains over %d pages, want 10 over 4", len(walked), pages)
	}
	for i, d := range walked {
		if want := fmt.Sprintf("d%04d.example.com", i); d != want {
			t.Fatalf("walk position %d = %q, want %q (pagination must be sorted and gap-free)", i, d, want)
		}
	}
}

// TestErrorEnvelopeGolden pins the exact bytes of the /v1 error
// envelope — the contract downstream consumers parse.
func TestErrorEnvelopeGolden(t *testing.T) {
	_, srv := newTestServer(t)
	for _, tc := range []struct {
		path       string
		wantStatus int
		wantBody   string
	}{
		{"/v1/domains/nope.example.com", 404, "{\n  \"error\": {\n    \"code\": \"not_found\",\n    \"message\": \"domain \\\"nope.example.com\\\" not in dataset\"\n  }\n}\n"},
		{"/v1/domains?limit=bogus", 400, "{\n  \"error\": {\n    \"code\": \"bad_request\",\n    \"message\": \"limit must be a positive integer (got \\\"bogus\\\")\"\n  }\n}\n"},
		{"/v1/domains?limit=2000", 400, "{\n  \"error\": {\n    \"code\": \"bad_request\",\n    \"message\": \"limit must be at most 1000 (got 2000)\"\n  }\n}\n"},
		{"/v1/domains?cursor=%21%21", 400, "{\n  \"error\": {\n    \"code\": \"bad_request\",\n    \"message\": \"cursor is not a token from a previous response\"\n  }\n}\n"},
	} {
		status, body := get(t, srv.URL+tc.path)
		if status != tc.wantStatus {
			t.Errorf("%s: status = %d, want %d", tc.path, status, tc.wantStatus)
		}
		if body != tc.wantBody {
			t.Errorf("%s: body =\n%q\nwant\n%q", tc.path, body, tc.wantBody)
		}
	}
}

func TestDomainRecord(t *testing.T) {
	_, srv := newTestServer(t)
	status, body := get(t, srv.URL+"/v1/domains/acme.example.com")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	var rec store.Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Company != "Acme Corp" || len(rec.Annotations) != 4 {
		t.Errorf("record: %+v", rec)
	}
}

func TestLabelEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	status, body := get(t, srv.URL+"/v1/domains/acme.example.com/label")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	for _, want := range []string{"PRIVACY FACTS", "Acme Corp", "email address", "SOLD", "2 years"} {
		if !strings.Contains(body, want) {
			t.Errorf("label missing %q", want)
		}
	}
}

func TestAskEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	status, body := get(t, srv.URL+"/v1/domains/acme.example.com/ask?q=do+you+sell+my+data")
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	var ans AskResponse
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans.Answer, "selling") && !strings.Contains(ans.Answer, "Yes") {
		t.Errorf("answer: %+v", ans)
	}
	status, body = get(t, srv.URL+"/v1/domains/acme.example.com/ask")
	if status != 400 || !strings.Contains(body, `"bad_request"`) {
		t.Errorf("missing q: status %d, body %s", status, body)
	}
	status, body = get(t, srv.URL+"/v1/domains/acme.example.com/ask?q=meaning+of+life")
	if status != 422 || !strings.Contains(body, `"unsupported_question"`) {
		t.Errorf("unsupported question: status %d, body %s", status, body)
	}
}

func TestRiskEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	status, body := get(t, srv.URL+"/v1/risk?top=1")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	var page RiskPage
	if err := json.Unmarshal([]byte(body), &page); err != nil {
		t.Fatal(err)
	}
	if len(page.Scores) != 1 || page.Scores[0].Domain != "acme.example.com" {
		t.Errorf("risk page: %+v", page)
	}
	if !strings.Contains(body, `"sector_percentile"`) {
		t.Errorf("risk fields not snake_case: %s", body)
	}
	status, _ = get(t, srv.URL+"/v1/risk?top=0")
	if status != 400 {
		t.Errorf("bad top status = %d", status)
	}
}

func TestTableEndpoint(t *testing.T) {
	_, srv := newTestServer(t)
	status, body := get(t, srv.URL+"/v1/tables/3")
	if status != 200 || !strings.Contains(body, "Data retention") {
		t.Errorf("table 3: status %d, body %q", status, body[:min(len(body), 120)])
	}
	status, body = get(t, srv.URL+"/v1/tables/99")
	if status != 404 || !strings.Contains(body, "2a, 2b") {
		t.Errorf("unknown table: status %d, body %s", status, body)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, srv := newTestServer(t)
	resp, err := http.Post(srv.URL+"/v1/summary", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != "GET" {
		t.Errorf("Allow = %q, want GET", allow)
	}
	if !strings.Contains(string(body), `"method_not_allowed"`) {
		t.Errorf("405 body missing envelope: %s", body)
	}
}

func TestNotFoundEnvelope(t *testing.T) {
	_, srv := newTestServer(t)
	status, body := get(t, srv.URL+"/v1/nope")
	if status != 404 || !strings.Contains(body, `"not_found"`) {
		t.Errorf("unknown path: status %d, body %s", status, body)
	}
}

// TestLegacyRedirects covers the deprecated unversioned surface: every
// /api path answers 308 with the mapped /v1 Location (query preserved),
// and a redirect-following client lands on the real payload.
func TestLegacyRedirects(t *testing.T) {
	_, srv := newTestServer(t)
	noFollow := &http.Client{
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	for _, tc := range []struct{ from, to string }{
		{"/api/summary", "/v1/summary"},
		{"/api/domains?sector=fs", "/v1/domains?sector=fs"},
		{"/api/domain/acme.example.com", "/v1/domains/acme.example.com"},
		{"/api/label/acme.example.com", "/v1/domains/acme.example.com/label"},
		{"/api/ask/acme.example.com?q=x", "/v1/domains/acme.example.com/ask?q=x"},
		{"/api/risk", "/v1/risk"},
		{"/api/table/3", "/v1/tables/3"},
	} {
		resp, err := noFollow.Get(srv.URL + tc.from)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusPermanentRedirect {
			t.Errorf("%s: status = %d, want 308", tc.from, resp.StatusCode)
		}
		if loc := resp.Header.Get("Location"); loc != tc.to {
			t.Errorf("%s: Location = %q, want %q", tc.from, loc, tc.to)
		}
		if resp.Header.Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", tc.from)
		}
	}
	// A following client ends at the live /v1 handler.
	if status, body := get(t, srv.URL+"/api/label/acme.example.com"); status != 200 || !strings.Contains(body, "PRIVACY FACTS") {
		t.Errorf("followed legacy label: status %d", status)
	}
	// Unknown legacy paths get the envelope, not a redirect loop.
	if status, body := get(t, srv.URL+"/api/whatever"); status != 404 || !strings.Contains(body, `"not_found"`) {
		t.Errorf("unknown legacy path: status %d, body %s", status, body)
	}
}

func TestHealthAndReady(t *testing.T) {
	s, srv := newTestServer(t)
	if status, body := get(t, srv.URL+"/v1/healthz"); status != 200 || !strings.Contains(body, `"ok"`) {
		t.Errorf("healthz: status %d, body %s", status, body)
	}
	if status, body := get(t, srv.URL+"/v1/readyz"); status != 200 || !strings.Contains(body, `"ready"`) {
		t.Errorf("readyz: status %d, body %s", status, body)
	}
	s.SetReady(false)
	if status, body := get(t, srv.URL+"/v1/readyz"); status != 503 || !strings.Contains(body, `"draining"`) {
		t.Errorf("draining readyz: status %d, body %s", status, body)
	}
	// Liveness is unaffected by drain.
	if status, _ := get(t, srv.URL+"/v1/healthz"); status != 200 {
		t.Errorf("healthz during drain: status %d", status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(Records(testRecords()), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	t.Cleanup(srv.Close)

	// One miss, one hit.
	for i := 0; i < 2; i++ {
		if code, _ := get(t, srv.URL+"/v1/summary"); code != 200 {
			t.Fatalf("summary status = %d", code)
		}
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Errorf("content type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`aipan_server_requests_total{route="/v1/summary",class="2xx"} 2`,
		`aipan_server_cache_misses_total{route="/v1/summary"} 1`,
		`aipan_server_cache_hits_total{route="/v1/summary"} 1`,
		`aipan_server_request_duration_seconds_count{route="/v1/summary"} 2`,
		`aipan_server_dataset_generation 1`,
		`aipan_server_dataset_records 2`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q:\n%s", want, body)
		}
	}
	// pprof rides along on the same mux.
	if code, body := get(t, srv.URL+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("pprof cmdline: status %d, %d bytes", code, len(body))
	}
}

// TestNewFromStore serves the same API straight from a store backend —
// the sharded one, whose scan order differs from the record slice, to
// prove views do not depend on load order.
func TestNewFromStore(t *testing.T) {
	recs := testRecords()
	st, err := store.OpenSharded(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewServer(FromStore(st), WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	code, body := get(t, srv.URL+"/v1/summary")
	if code != 200 {
		t.Fatalf("summary from store: status %d", code)
	}
	var sum Summary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Domains != len(recs) || sum.CrawlOK != 1 || sum.Annotated != 1 {
		t.Fatalf("summary from store = %+v", sum)
	}
	if code, _ := get(t, srv.URL+"/v1/domains/acme.example.com"); code != 200 {
		t.Fatalf("domain lookup from store: status %d", code)
	}
}

// TestDeprecatedConstructors keeps the pre-redesign constructors
// compiling and serving.
func TestDeprecatedConstructors(t *testing.T) {
	srv := httptest.NewServer(New(testRecords(), WithRegistry(obs.NewRegistry())))
	defer srv.Close()
	if status, _ := get(t, srv.URL+"/v1/summary"); status != 200 {
		t.Errorf("New: summary status %d", status)
	}

	st := store.NewMem()
	recs := testRecords()
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewFromStore(st, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	srv2 := httptest.NewServer(s)
	defer srv2.Close()
	if status, _ := get(t, srv2.URL+"/v1/summary"); status != 200 {
		t.Errorf("NewFromStore: summary status %d", status)
	}
}

// TestPanicRecovery injects a panicking route (white-box) and checks
// the middleware converts it into a clean 500 envelope and counts it.
func TestPanicRecovery(t *testing.T) {
	reg := obs.NewRegistry()
	s, err := NewServer(Records(testRecords()), WithRegistry(reg))
	if err != nil {
		t.Fatal(err)
	}
	s.router.add(http.MethodGet, "/v1/boom", func(*view, params, *http.Request) (*result, *apiErr) {
		panic("kaboom")
	}, false, true)
	srv := httptest.NewServer(s)
	defer srv.Close()

	status, body := get(t, srv.URL+"/v1/boom")
	if status != 500 || !strings.Contains(body, `"internal"`) {
		t.Errorf("panic route: status %d, body %s", status, body)
	}
	if n := metricValue(t, reg, "aipan_server_panics_total"); n != 1 {
		t.Errorf("panics counter = %v, want 1", n)
	}
	// The server still serves after the panic.
	if status, _ := get(t, srv.URL+"/v1/summary"); status != 200 {
		t.Errorf("post-panic summary status = %d", status)
	}
}

// metricValue scrapes one unlabeled metric value out of the text
// exposition.
func metricValue(t *testing.T, reg *obs.Registry, name string) float64 {
	t.Helper()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
				t.Fatal(err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not in exposition", name)
	return 0
}
