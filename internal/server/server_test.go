package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aipan/internal/annotate"
	"aipan/internal/obs"
	"aipan/internal/store"
	"aipan/internal/taxonomy"
)

func testRecords() []store.Record {
	return []store.Record{
		{
			Domain: "acme.example.com", Company: "Acme Corp", Sector: "Financials",
			SectorAbbrev: "FS",
			Crawl:        store.CrawlInfo{Success: true, PagesFetched: 5},
			Extraction:   store.ExtractionInfo{Success: true},
			Annotations: []annotate.Annotation{
				{Aspect: "types", Meta: taxonomy.MetaPhysicalProfile, Category: "Contact info", Descriptor: "email address", Text: "email address", Context: "We collect your email address."},
				{Aspect: "purposes", Meta: taxonomy.MetaThirdParty, Category: "Data sharing", Descriptor: "data for sale", Text: "sell", Context: "We may sell your data."},
				{Aspect: "handling", Meta: taxonomy.GroupRetention, Category: taxonomy.RetentionStated, Descriptor: "2 years", Text: "2 years", RetentionDays: 730, Context: "We retain data for 2 years."},
				{Aspect: "rights", Meta: taxonomy.GroupAccess, Category: taxonomy.AccessFullDelete, Text: "delete", Context: "You may delete all data."},
			},
		},
		{
			Domain: "other.example.com", Company: "Other Inc", Sector: "Energy",
			SectorAbbrev: "EN",
			Crawl:        store.CrawlInfo{Success: false, Error: "timeout"},
		},
	}
}

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(New(testRecords()))
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSummary(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/summary")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	var sum Summary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Domains != 2 || sum.Annotated != 1 || sum.CrawlOK != 1 {
		t.Errorf("summary: %+v", sum)
	}
	if sum.ByAspect["types"] != 1 {
		t.Errorf("by aspect: %v", sum.ByAspect)
	}
}

func TestDomainsFilter(t *testing.T) {
	srv := testServer(t)
	_, body := get(t, srv.URL+"/api/domains?sector=fs")
	var rows []DomainSummary
	if err := json.Unmarshal([]byte(body), &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Domain != "acme.example.com" {
		t.Errorf("rows: %+v", rows)
	}
	status, _ := get(t, srv.URL+"/api/domains?limit=bogus")
	if status != 400 {
		t.Errorf("bad limit status = %d", status)
	}
}

func TestDomainRecord(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/domain/acme.example.com")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	var rec store.Record
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Company != "Acme Corp" || len(rec.Annotations) != 4 {
		t.Errorf("record: %+v", rec)
	}
	status, _ = get(t, srv.URL+"/api/domain/nope.example.com")
	if status != 404 {
		t.Errorf("missing domain status = %d", status)
	}
}

func TestLabelEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/label/acme.example.com")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	for _, want := range []string{"PRIVACY FACTS", "Acme Corp", "email address", "SOLD", "2 years"} {
		if !strings.Contains(body, want) {
			t.Errorf("label missing %q", want)
		}
	}
}

func TestAskEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/ask/acme.example.com?q=do+you+sell+my+data")
	if status != 200 {
		t.Fatalf("status %d: %s", status, body)
	}
	var ans map[string]any
	if err := json.Unmarshal([]byte(body), &ans); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(ans["answer"].(string), "selling") && !strings.Contains(ans["answer"].(string), "Yes") {
		t.Errorf("answer: %v", ans)
	}
	status, _ = get(t, srv.URL+"/api/ask/acme.example.com")
	if status != 400 {
		t.Errorf("missing q status = %d", status)
	}
	status, _ = get(t, srv.URL+"/api/ask/acme.example.com?q=meaning+of+life")
	if status != 422 {
		t.Errorf("unsupported question status = %d", status)
	}
}

func TestRiskEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/risk?top=1")
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	if !strings.Contains(body, "acme.example.com") {
		t.Errorf("risk body: %s", body)
	}
	status, _ = get(t, srv.URL+"/api/risk?top=0")
	if status != 400 {
		t.Errorf("bad top status = %d", status)
	}
}

func TestTableEndpoint(t *testing.T) {
	srv := testServer(t)
	status, body := get(t, srv.URL+"/api/table/3")
	if status != 200 || !strings.Contains(body, "Data retention") {
		t.Errorf("table 3: status %d, body %q", status, body[:min(len(body), 120)])
	}
	status, _ = get(t, srv.URL+"/api/table/99")
	if status != 404 {
		t.Errorf("unknown table status = %d", status)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := testServer(t)
	resp, err := http.Post(srv.URL+"/api/summary", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv := httptest.NewServer(New(testRecords(), WithRegistry(reg)))
	t.Cleanup(srv.Close)

	// Drive one API request so the instrumentation has something to show.
	if code, _ := get(t, srv.URL+"/api/summary"); code != 200 {
		t.Fatalf("summary status = %d", code)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ExpositionContentType {
		t.Errorf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), `aipan_http_requests_total{handler="api",code="200"} 1`) {
		t.Errorf("request counter missing from exposition:\n%s", body)
	}

	// pprof rides along on the same mux.
	if code, body := get(t, srv.URL+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("pprof cmdline: status %d, %d bytes", code, len(body))
	}
}

// TestNewFromStore serves the same API straight from a store backend —
// here the sharded one, whose scan order differs from the record slice,
// to prove the server does not depend on load order.
func TestNewFromStore(t *testing.T) {
	recs := testRecords()
	st, err := store.OpenSharded(t.TempDir(), 3)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewFromStore(st, WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s)
	defer srv.Close()

	code, body := get(t, srv.URL+"/api/summary")
	if code != 200 {
		t.Fatalf("summary from store: status %d", code)
	}
	var sum Summary
	if err := json.Unmarshal([]byte(body), &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Domains != len(recs) || sum.CrawlOK != 1 || sum.Annotated != 1 {
		t.Fatalf("summary from store = %+v", sum)
	}
	if code, _ := get(t, srv.URL+"/api/domain/acme.example.com"); code != 200 {
		t.Fatalf("domain lookup from store: status %d", code)
	}
	if code, _ := get(t, srv.URL+"/api/domain/missing.example.com"); code != 404 {
		t.Fatalf("missing domain from store: status %d, want 404", code)
	}
}
