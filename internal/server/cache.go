package server

import (
	"container/list"
	"net/http"
	"sort"
	"strings"
	"sync"
)

// cacheEntry is one cached response: the encoded body, its content
// type, and the strong ETag derived from (generation, body).
type cacheEntry struct {
	contentType string
	body        []byte
	etag        string
}

// respCache is a concurrency-safe LRU response cache keyed by
// normalized request. Entries carry the dataset generation they were
// built from; a Refresh bumps the server's generation, so every stale
// entry misses (and is evicted lazily) without any flush coordination.
type respCache struct {
	mu    sync.Mutex
	max   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheItem struct {
	key   string
	gen   uint64
	entry *cacheEntry
}

func newRespCache(max int) *respCache {
	return &respCache{max: max, ll: list.New(), items: map[string]*list.Element{}}
}

func (c *respCache) get(key string, gen uint64) (*cacheEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	it := el.Value.(*cacheItem)
	if it.gen != gen {
		c.ll.Remove(el)
		delete(c.items, key)
		return nil, false
	}
	c.ll.MoveToFront(el)
	return it.entry, true
}

func (c *respCache) put(key string, gen uint64, e *cacheEntry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		it.gen, it.entry = gen, e
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheItem{key: key, gen: gen, entry: e})
	for c.ll.Len() > c.max {
		back := c.ll.Back()
		c.ll.Remove(back)
		delete(c.items, back.Value.(*cacheItem).key)
	}
}

func (c *respCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheKey normalizes a request into its cache identity: the path plus
// the query parameters sorted by name. Filter parameters are matched
// case-insensitively by the handlers, so their values are lowercased
// here too — ?sector=FS and ?sector=fs share one entry.
func cacheKey(r *http.Request) string {
	q := r.URL.Query()
	keys := make([]string, 0, len(q))
	for k, vs := range q {
		if len(vs) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(r.URL.Path)
	for _, k := range keys {
		v := strings.Join(q[k], ",")
		if caseInsensitiveParams[k] {
			v = strings.ToLower(v)
		}
		b.WriteByte('&')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(v)
	}
	return b.String()
}

// caseInsensitiveParams are the query parameters whose values the
// handlers normalize, so differently-cased spellings hit one entry.
var caseInsensitiveParams = map[string]bool{"sector": true, "aspect": true, "label": true}
