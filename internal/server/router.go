package server

import (
	"net/http"

	"aipan/internal/api"
)

// params carries the path parameters captured by a route match.
type params = api.Params

// handler is a /v1 route implementation: it computes a response from
// the immutable dataset view and never touches the wire — the dispatch
// layer owns encoding, ETags, caching, and error envelopes, so every
// route gets them uniformly.
type handler func(v *view, ps params, r *http.Request) (*result, *apiErr)

// routeRule is the server's per-route policy carried by the shared
// api.Router: the handler plus whether the route is response-cached and
// whether it is subject to rate limiting and the in-flight ceiling
// (health probes are exempt: monitoring must see a drowning server).
type routeRule struct {
	h         handler
	cacheable bool
	shed      bool
}

// route is one registered (method, pattern) pair; Name is the pattern
// itself — the bounded-cardinality metric label for the route.
type route = api.Route[routeRule]

// router wraps the shared exact-segment matcher (internal/api) so that
// 404 and 405 speak the same JSON error envelope as every other
// response, 405 carries a correct Allow header, and each match yields
// the route's metric label.
type router struct {
	api.Router[routeRule]
}

func (rt *router) add(method, pattern string, h handler, cacheable, shed bool) {
	rt.Add(method, pattern, routeRule{h: h, cacheable: cacheable, shed: shed})
}

func (rt *router) match(method, path string) (*route, params, []string) {
	return rt.Match(method, path)
}
