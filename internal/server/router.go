package server

import (
	"net/http"
	"sort"
	"strings"
)

// params carries the path parameters captured by a route match.
type params map[string]string

// handler is a /v1 route implementation: it computes a response from
// the immutable dataset view and never touches the wire — the dispatch
// layer owns encoding, ETags, caching, and error envelopes, so every
// route gets them uniformly.
type handler func(v *view, ps params, r *http.Request) (*result, *apiErr)

// route is one registered (method, pattern) pair. name is the pattern
// itself — the bounded-cardinality metric label for the route. shed
// marks routes subject to rate limiting and the in-flight ceiling
// (health probes are exempt: monitoring must see a drowning server).
type route struct {
	method    string
	name      string
	segs      []string // pattern segments; "{x}" captures
	h         handler
	cacheable bool
	shed      bool
}

// router is a small exact-segment matcher. It exists instead of
// http.ServeMux so that 404 and 405 speak the same JSON error envelope
// as every other response, 405 carries a correct Allow header, and each
// match yields the route's metric label.
type router struct {
	routes []*route
}

func (rt *router) add(method, pattern string, h handler, cacheable, shed bool) {
	rt.routes = append(rt.routes, &route{
		method: method, name: pattern, segs: splitPath(pattern),
		h: h, cacheable: cacheable, shed: shed,
	})
}

// match resolves a request. Exactly one of the returns is meaningful:
// a matched route with its captured params, or — when the path exists
// under other methods — the sorted Allow set for a 405.
func (rt *router) match(method, path string) (*route, params, []string) {
	segs := splitPath(path)
	if method == http.MethodHead {
		method = http.MethodGet // net/http suppresses the body for HEAD
	}
	var allow []string
	for _, r := range rt.routes {
		ps, ok := r.matchSegs(segs)
		if !ok {
			continue
		}
		if r.method == method {
			return r, ps, nil
		}
		allow = appendUnique(allow, r.method)
	}
	sort.Strings(allow)
	return nil, nil, allow
}

func (r *route) matchSegs(segs []string) (params, bool) {
	if len(segs) != len(r.segs) {
		return nil, false
	}
	var ps params
	for i, pat := range r.segs {
		if strings.HasPrefix(pat, "{") && strings.HasSuffix(pat, "}") {
			if segs[i] == "" {
				return nil, false
			}
			if ps == nil {
				ps = params{}
			}
			ps[pat[1:len(pat)-1]] = segs[i]
			continue
		}
		if pat != segs[i] {
			return nil, false
		}
	}
	return ps, true
}

func splitPath(p string) []string {
	p = strings.Trim(p, "/")
	if p == "" {
		return nil
	}
	return strings.Split(p, "/")
}

func appendUnique(xs []string, s string) []string {
	for _, x := range xs {
		if x == s {
			return xs
		}
	}
	return append(xs, s)
}
