package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// legacyExemptRoutes are /v1 routes that postdate the legacy /api
// surface — there was never an unversioned spelling to redirect from.
// Everything else in the router table must be reachable through
// legacyTarget, and every mapping must land on a route that exists.
var legacyExemptRoutes = map[string]bool{
	"/v1/domains/{domain}/provenance": true, // added with the event stream (PR 7)
	"/v1/events":                      true,
	"/v1/healthz":                     true,
	"/v1/readyz":                      true,
}

// sampleLegacyPath builds a concrete legacy request path for a mapping.
func sampleLegacyPath(m legacyMapping) string {
	if m.param == "" {
		return m.legacy
	}
	return m.legacy + "sample"
}

func TestLegacySurfaceComplete(t *testing.T) {
	s, _ := newTestServer(t)

	// Every mapping must resolve, via legacyTarget, to a path the /v1
	// router actually serves — no orphan redirects.
	mapped := map[string]bool{}
	for _, m := range legacyMappings {
		target, ok := legacyTarget(sampleLegacyPath(m))
		if !ok {
			t.Fatalf("legacyTarget rejected its own mapping %q", m.legacy)
		}
		rt, _, _ := s.router.match(http.MethodGet, target)
		if rt == nil {
			t.Errorf("legacy %q redirects to %q, which no /v1 route serves", m.legacy, target)
			continue
		}
		if rt.Name != m.v1 {
			t.Errorf("legacy %q mapped to route %q, want %q", m.legacy, rt.Name, m.v1)
		}
		mapped[rt.Name] = true
	}

	// Every /v1 route must either be covered by a mapping or be on the
	// explicit exempt list — no unmapped legacy paths hiding behind new
	// routes, and no stale exemptions for routes that gained a mapping.
	for _, rt := range s.router.Routes() {
		switch {
		case mapped[rt.Name] && legacyExemptRoutes[rt.Name]:
			t.Errorf("route %q is both mapped and exempt; drop the exemption", rt.Name)
		case !mapped[rt.Name] && !legacyExemptRoutes[rt.Name]:
			t.Errorf("route %q has no legacy mapping and no exemption", rt.Name)
		}
	}
	for name := range legacyExemptRoutes {
		if rt, _, _ := s.router.match(http.MethodGet, strings.NewReplacer(
			"{domain}", "x", "{table}", "1").Replace(name)); rt == nil || rt.Name != name {
			t.Errorf("exempt route %q is not in the router table", name)
		}
	}
}

func TestLegacyRedirectCarriesDeprecationHeaders(t *testing.T) {
	s, _ := newTestServer(t)
	for _, m := range legacyMappings {
		req := httptest.NewRequest(http.MethodGet, sampleLegacyPath(m), nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusPermanentRedirect {
			t.Errorf("%s: status = %d, want 308", m.legacy, rec.Code)
		}
		if rec.Header().Get("Deprecation") != "true" {
			t.Errorf("%s: missing Deprecation header", m.legacy)
		}
		if got := rec.Header().Get("Sunset"); got != legacySunset {
			t.Errorf("%s: Sunset = %q, want %q", m.legacy, got, legacySunset)
		}
	}
}
