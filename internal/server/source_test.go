package server

import (
	"context"
	"net/http/httptest"
	"testing"

	"aipan/internal/obs"
	"aipan/internal/store"
)

// countingShardView wraps a store and counts per-shard scans, so tests
// can assert Refresh skips shards whose stamp did not move.
type countingShardView struct {
	store.Store
	sv    store.ShardView
	scans map[int]int
}

func (c *countingShardView) NumShards() int { return c.sv.NumShards() }
func (c *countingShardView) ShardStamp(i int) (string, error) {
	return c.sv.ShardStamp(i)
}
func (c *countingShardView) ScanShard(i int, fn func(*store.Record) error) error {
	c.scans[i]++
	return c.sv.ScanShard(i, fn)
}

// TestRefreshSkipsUnchangedShards appends to one shard of a sharded
// store between refreshes and checks that only that shard is re-scanned
// — the incremental-refresh contract of FromStore over a ShardView.
func TestRefreshSkipsUnchangedShards(t *testing.T) {
	st, err := store.OpenSharded(t.TempDir(), 4)
	if err != nil {
		t.Fatal(err)
	}
	recs := testRecords()
	for i := range recs {
		if err := st.Append(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	cv := &countingShardView{Store: st, sv: st, scans: map[int]int{}}
	s, err := NewServer(FromStore(cv), WithRegistry(obs.NewRegistry()))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if cv.scans[i] != 1 {
			t.Fatalf("initial load scanned shard %d %d times, want 1", i, cv.scans[i])
		}
	}

	// A refresh with nothing appended re-scans nothing.
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if cv.scans[i] != 1 {
			t.Errorf("idle refresh re-scanned shard %d (%d scans)", i, cv.scans[i])
		}
	}

	// Appending one record dirties exactly its shard.
	extra := store.Record{Domain: "zeta.example.com", Company: "Zeta", Sector: "Energy", SectorAbbrev: "EN"}
	if err := st.Append(&extra); err != nil {
		t.Fatal(err)
	}
	if err := s.Refresh(context.Background()); err != nil {
		t.Fatal(err)
	}
	rescanned := 0
	for i := 0; i < 4; i++ {
		rescanned += cv.scans[i] - 1
	}
	if rescanned != 1 {
		t.Errorf("refresh after one append re-scanned %d shards, want 1", rescanned)
	}

	// The refreshed view serves the appended record.
	srv := httptest.NewServer(s)
	defer srv.Close()
	if status, body := get(t, srv.URL+"/v1/domains/zeta.example.com"); status != 200 {
		t.Errorf("appended record not served: status %d body %s", status, body)
	}
}
