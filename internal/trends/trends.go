// Package trends compares two dataset snapshots — e.g. two crawls of the
// same universe taken months apart — and reports how the privacy-policy
// ecosystem moved: per-category coverage deltas and per-domain practice
// changes. It implements the "trends" analysis the paper's conclusion
// names as a downstream use of normalized annotations (§6).
package trends

import (
	"fmt"
	"math"
	"sort"

	"aipan/internal/stats"
	"aipan/internal/store"
)

// Delta is one (aspect, meta, category) coverage movement between
// snapshots.
type Delta struct {
	Aspect   string
	Meta     string
	Category string
	// OldCov / NewCov are coverage fractions over annotated domains.
	OldCov float64
	NewCov float64
}

// Change returns NewCov − OldCov.
func (d Delta) Change() float64 { return d.NewCov - d.OldCov }

// coverage computes per-(aspect,meta,category) coverage for a snapshot.
func coverage(records []store.Record) (map[[3]string]float64, int) {
	counts := map[[3]string]int{}
	annotated := 0
	for i := range records {
		rec := &records[i]
		if !rec.Annotated() {
			continue
		}
		annotated++
		seen := map[[3]string]bool{}
		for _, a := range rec.Annotations {
			key := [3]string{a.Aspect, a.Meta, a.Category}
			if !seen[key] {
				seen[key] = true
				counts[key]++
			}
		}
	}
	out := make(map[[3]string]float64, len(counts))
	for k, c := range counts {
		out[k] = float64(c) / float64(max(1, annotated))
	}
	return out, annotated
}

// CoverageDeltas compares snapshots, returning deltas sorted by absolute
// movement (largest first, ties by name for determinism).
func CoverageDeltas(old, new []store.Record) []Delta {
	oldCov, _ := coverage(old)
	newCov, _ := coverage(new)
	keys := map[[3]string]bool{}
	for k := range oldCov {
		keys[k] = true
	}
	for k := range newCov {
		keys[k] = true
	}
	var out []Delta
	for k := range keys {
		out = append(out, Delta{
			Aspect: k[0], Meta: k[1], Category: k[2],
			OldCov: oldCov[k], NewCov: newCov[k],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		ci, cj := math.Abs(out[i].Change()), math.Abs(out[j].Change())
		if ci != cj {
			return ci > cj
		}
		if out[i].Aspect != out[j].Aspect {
			return out[i].Aspect < out[j].Aspect
		}
		return out[i].Category < out[j].Category
	})
	return out
}

// DomainChanges summarizes per-domain practice movement.
type DomainChanges struct {
	// NewDomains / GoneDomains appear in only one snapshot.
	NewDomains  []string
	GoneDomains []string
	// Gained / Lost count domains that added or dropped a practice,
	// keyed "aspect|meta|category".
	Gained map[string]int
	Lost   map[string]int
	// Unchanged counts domains whose practice sets are identical.
	Unchanged int
	// Compared counts domains present and annotated in both snapshots.
	Compared int
}

// CompareDomains diffs the per-domain practice sets of two snapshots.
func CompareDomains(old, new []store.Record) DomainChanges {
	practiceSet := func(rec *store.Record) map[string]bool {
		s := map[string]bool{}
		for _, a := range rec.Annotations {
			s[a.Aspect+"|"+a.Meta+"|"+a.Category] = true
		}
		return s
	}
	oldBy := map[string]*store.Record{}
	for i := range old {
		oldBy[old[i].Domain] = &old[i]
	}
	ch := DomainChanges{Gained: map[string]int{}, Lost: map[string]int{}}
	newSeen := map[string]bool{}
	for i := range new {
		rec := &new[i]
		newSeen[rec.Domain] = true
		oldRec, ok := oldBy[rec.Domain]
		if !ok {
			ch.NewDomains = append(ch.NewDomains, rec.Domain)
			continue
		}
		if !rec.Annotated() || !oldRec.Annotated() {
			continue
		}
		ch.Compared++
		oldSet, newSet := practiceSet(oldRec), practiceSet(rec)
		changed := false
		for k := range newSet {
			if !oldSet[k] {
				ch.Gained[k]++
				changed = true
			}
		}
		for k := range oldSet {
			if !newSet[k] {
				ch.Lost[k]++
				changed = true
			}
		}
		if !changed {
			ch.Unchanged++
		}
	}
	for i := range old {
		if !newSeen[old[i].Domain] {
			ch.GoneDomains = append(ch.GoneDomains, old[i].Domain)
		}
	}
	sort.Strings(ch.NewDomains)
	sort.Strings(ch.GoneDomains)
	return ch
}

// DeltaTable renders the top-n coverage movements.
func DeltaTable(deltas []Delta, n int) *stats.Table {
	t := &stats.Table{
		Title:   "Coverage movement between snapshots",
		Headers: []string{"Aspect", "Category", "Old", "New", "Δ"},
	}
	for i, d := range deltas {
		if i >= n {
			break
		}
		t.AddRow(d.Aspect, d.Category,
			stats.Pct(d.OldCov), stats.Pct(d.NewCov),
			fmt.Sprintf("%+.1f pts", d.Change()*100))
	}
	return t
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
