package trends

import (
	"strings"
	"testing"

	"aipan/internal/annotate"
	"aipan/internal/store"
)

func rec(domain string, practices ...string) store.Record {
	r := store.Record{Domain: domain, SectorAbbrev: "IT"}
	for _, p := range practices {
		parts := strings.SplitN(p, "|", 3)
		r.Annotations = append(r.Annotations, annotate.Annotation{
			Aspect: parts[0], Meta: parts[1], Category: parts[2], Text: "t",
		})
	}
	return r
}

func TestCoverageDeltas(t *testing.T) {
	old := []store.Record{
		rec("a.example.com", "types|Physical profile|Contact info"),
		rec("b.example.com", "types|Physical profile|Contact info"),
	}
	new := []store.Record{
		rec("a.example.com", "types|Physical profile|Contact info", "rights|User access|Full delete"),
		rec("b.example.com", "rights|User access|Full delete"),
	}
	deltas := CoverageDeltas(old, new)
	byCat := map[string]Delta{}
	for _, d := range deltas {
		byCat[d.Category] = d
	}
	fd := byCat["Full delete"]
	if fd.OldCov != 0 || fd.NewCov != 1 {
		t.Errorf("Full delete delta: %+v", fd)
	}
	ci := byCat["Contact info"]
	if ci.OldCov != 1 || ci.NewCov != 0.5 {
		t.Errorf("Contact info delta: %+v", ci)
	}
	// Sorted by |change|: Full delete (+1.0) before Contact info (−0.5).
	if deltas[0].Category != "Full delete" {
		t.Errorf("first delta = %+v", deltas[0])
	}
}

func TestCompareDomains(t *testing.T) {
	old := []store.Record{
		rec("a.example.com", "types|m|Contact info"),
		rec("gone.example.com", "types|m|Contact info"),
		rec("same.example.com", "rights|m|Edit"),
	}
	new := []store.Record{
		rec("a.example.com", "types|m|Contact info", "handling|m|Stated"),
		rec("same.example.com", "rights|m|Edit"),
		rec("fresh.example.com", "types|m|Contact info"),
	}
	ch := CompareDomains(old, new)
	if len(ch.NewDomains) != 1 || ch.NewDomains[0] != "fresh.example.com" {
		t.Errorf("new domains: %v", ch.NewDomains)
	}
	if len(ch.GoneDomains) != 1 || ch.GoneDomains[0] != "gone.example.com" {
		t.Errorf("gone domains: %v", ch.GoneDomains)
	}
	if ch.Compared != 2 || ch.Unchanged != 1 {
		t.Errorf("compared=%d unchanged=%d", ch.Compared, ch.Unchanged)
	}
	if ch.Gained["handling|m|Stated"] != 1 {
		t.Errorf("gained: %v", ch.Gained)
	}
	if len(ch.Lost) != 0 {
		t.Errorf("lost: %v", ch.Lost)
	}
}

func TestDeltaTable(t *testing.T) {
	deltas := []Delta{
		{Aspect: "types", Category: "Contact info", OldCov: 0.8, NewCov: 0.9},
		{Aspect: "rights", Category: "Edit", OldCov: 0.7, NewCov: 0.6},
	}
	out := DeltaTable(deltas, 1).Render()
	if !strings.Contains(out, "Contact info") || strings.Contains(out, "Edit") {
		t.Errorf("table:\n%s", out)
	}
	if !strings.Contains(out, "+10.0 pts") {
		t.Errorf("delta formatting:\n%s", out)
	}
}

func TestIdenticalSnapshotsNoMovement(t *testing.T) {
	snap := []store.Record{rec("a.example.com", "types|m|Contact info")}
	for _, d := range CoverageDeltas(snap, snap) {
		if d.Change() != 0 {
			t.Errorf("movement in identical snapshots: %+v", d)
		}
	}
	ch := CompareDomains(snap, snap)
	if ch.Unchanged != 1 || len(ch.Gained) != 0 || len(ch.Lost) != 0 {
		t.Errorf("identical snapshots changed: %+v", ch)
	}
}

func TestEmptySnapshots(t *testing.T) {
	if got := CoverageDeltas(nil, nil); len(got) != 0 {
		t.Errorf("deltas over empty snapshots: %v", got)
	}
	ch := CompareDomains(nil, nil)
	if ch.Compared != 0 {
		t.Errorf("compared = %d", ch.Compared)
	}
}
