package taxonomy

// Meta-category names for data-collection purposes (Table 1, middle).
const (
	MetaOperations = "Operations"
	MetaLegal      = "Legal"
	MetaThirdParty = "Third-party"
)

// PurposeCategories returns the collection-purposes taxonomy: 3
// meta-categories, 7 categories, 48 normalized descriptors (§3.2.2).
// Registered extensions (see extension.go) are merged in.
// The returned top-level slice is a fresh copy, but the Category contents
// are shared with a process-wide cache and must be treated as read-only.
func PurposeCategories() []Category {
	return append([]Category(nil), cachedPurposeCategories()...)
}

func basePurposeCategories() []Category {
	return []Category{
		{
			Name: "Basic functioning", Meta: MetaOperations,
			Triggers: []string{"service", "operate", "fulfill", "deliver", "process"},
			Descriptors: []Descriptor{
				{Name: "cust. service", Synonyms: []string{"customer service", "provide customer service", "customer support", "respond to your inquiries"}},
				{Name: "cust. communication", Synonyms: []string{"customer communication", "communicate with you", "send you notifications", "contact you"}},
				{Name: "transaction processing", Synonyms: []string{"process transactions", "process your transactions"}},
				{Name: "order fulfillment", Synonyms: []string{"fulfill your orders", "fulfill orders", "deliver products", "process and ship orders"}},
				{Name: "account management", Synonyms: []string{"manage your account", "maintain your account", "create your account"}},
				{Name: "service provision", Synonyms: []string{"provide our services", "provide the services", "operate our services", "deliver our services"}},
				{Name: "contract fulfillment", Synonyms: []string{"performance of a contract", "perform our contract", "conduct business with you"}},
				{Name: "payment processing", Synonyms: []string{"process payments", "process your payments", "billing"}},
			},
		},
		{
			Name: "User experience", Meta: MetaOperations,
			Triggers: []string{"improve", "personalize", "experience", "customize"},
			Descriptors: []Descriptor{
				{Name: "product improvement", Synonyms: []string{"improve our products", "improve our services", "improve our website", "enhance our services"}},
				{Name: "personalization", Synonyms: []string{"personalize your experience", "personalize content", "tailor content"}},
				{Name: "quality assurance", Synonyms: []string{"quality control", "ensure quality", "monitor quality"}},
				{Name: "user experience enhancement", Synonyms: []string{"enhance your experience", "improve user experience", "enhance the user experience"}},
				{Name: "customization", Synonyms: []string{"customize our offerings", "customize the services"}},
				{Name: "troubleshooting", Synonyms: []string{"diagnose problems", "fix issues", "resolve technical issues"}},
			},
		},
		{
			Name: "Analytics & research", Meta: MetaOperations,
			Triggers: []string{"analytics", "research", "analyze", "statistics", "trends"},
			Descriptors: []Descriptor{
				{Name: "analytics", Synonyms: []string{"perform analytics", "data analytics", "analyze usage", "web analytics"}},
				{Name: "product/service development", Synonyms: []string{"develop new products", "product development", "develop new services", "develop new features"}},
				{Name: "research", Synonyms: []string{"conduct research", "internal research", "research purposes"}},
				{Name: "market research", Synonyms: []string{"conduct market research", "understand our market"}},
				{Name: "statistical analysis", Synonyms: []string{"compile statistics", "statistical purposes", "aggregate statistics"}},
				{Name: "performance measurement", Synonyms: []string{"measure performance", "measure the effectiveness"}},
				{Name: "trend analysis", Synonyms: []string{"analyze trends", "identify usage trends"}},
			},
		},
		{
			Name: "Legal & compliance", Meta: MetaLegal,
			Triggers: []string{"legal", "compliance", "law", "regulation", "dispute"},
			Descriptors: []Descriptor{
				{Name: "legal compliance", Synonyms: []string{"comply with the law", "comply with legal obligations", "comply with applicable laws", "meet legal requirements"}},
				{Name: "regulatory compliance", Synonyms: []string{"comply with regulations", "regulatory requirements", "comply with regulatory obligations"}},
				{Name: "policy compliance", Synonyms: []string{"enforce our policies", "enforce our terms", "enforce our terms of service"}},
				{Name: "legal obligations", Synonyms: []string{"satisfy legal obligations", "respond to legal process"}},
				{Name: "dispute resolution", Synonyms: []string{"resolve disputes", "handle disputes"}},
				{Name: "law enforcement requests", Synonyms: []string{"respond to law enforcement", "cooperate with law enforcement"}},
				{Name: "record keeping", Synonyms: []string{"maintain records", "keep business records"}},
			},
		},
		{
			Name: "Security", Meta: MetaLegal,
			Triggers: []string{"security", "fraud", "protect", "safety", "authenticate"},
			Descriptors: []Descriptor{
				{Name: "fraud prevention", Synonyms: []string{"prevent fraud", "detect fraud", "detect and prevent fraud", "fraud detection"}},
				{Name: "authentication", Synonyms: []string{"authenticate users", "verify your account", "authenticate your identity"}},
				{Name: "product/service safety", Synonyms: []string{"keep our services safe", "ensure the safety of our services", "maintain the security of our services"}},
				{Name: "security monitoring", Synonyms: []string{"monitor for security", "monitor for security incidents", "detect security incidents"}},
				{Name: "threat detection", Synonyms: []string{"detect threats", "identify malicious activity"}},
				{Name: "identity verification", Synonyms: []string{"verify your identity", "confirm your identity"}},
				{Name: "abuse prevention", Synonyms: []string{"prevent abuse", "prevent misuse", "protect against unauthorized access"}},
			},
		},
		{
			Name: "Advertising & sales", Meta: MetaThirdParty,
			Triggers: []string{"advertising", "marketing", "promotion", "advertisement"},
			Descriptors: []Descriptor{
				{Name: "direct marketing", Synonyms: []string{"send you marketing communications", "marketing purposes", "send marketing emails", "email marketing"}},
				{Name: "promotions", Synonyms: []string{"send you promotions", "promotional offers", "offer promotions", "special offers"}},
				{Name: "targeted advertising", Synonyms: []string{"serve targeted ads", "interest-based advertising", "personalized advertising", "behavioral advertising"}},
				{Name: "advertising measurement", Synonyms: []string{"measure ad effectiveness", "measure advertising campaigns"}},
				{Name: "cross-context advertising", Synonyms: []string{"cross-context behavioral advertising", "advertising across services"}},
				{Name: "lead generation", Synonyms: []string{"identify prospective customers", "generate leads"}},
				{Name: "sales outreach", Synonyms: []string{"contact you about products", "sales communications"}},
			},
		},
		{
			Name: "Data sharing", Meta: MetaThirdParty,
			Triggers: []string{"share", "sharing", "disclose", "sell", "anonymize"},
			Descriptors: []Descriptor{
				{Name: "third-party sharing", Synonyms: []string{"share with third parties", "disclose to third parties", "share your data with third parties"}},
				{Name: "sharing with partners", Synonyms: []string{"share with our partners", "provide personal information to our affiliated businesses", "share with business partners"}},
				{Name: "anonymization", Synonyms: []string{"anonymize your data", "aggregate and anonymize", "de-identify data"}},
				{Name: "data sharing with affiliates", Synonyms: []string{"share with affiliates", "share within our corporate family"}},
				{Name: "data for sale", Synonyms: []string{"sell your personal information", "sale of personal information", "sell data to third parties"}},
				{Name: "aggregate data sharing", Synonyms: []string{"share aggregated data", "disclose aggregate information"}},
			},
		},
	}
}

// NewPurposeIndex builds the lookup index over the purposes taxonomy.
// NewPurposeIndex returns the shared, read-only index over
// PurposeCategories(); see NewTypeIndex.
func NewPurposeIndex() *Index { return cachedPurposeIndex() }
