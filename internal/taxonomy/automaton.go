package taxonomy

// Aho–Corasick automaton over trigger lemmas. The zero-shot stage of
// Index.Lookup used to walk every word of the phrase against every trigger
// and then substring-scan every multi-word lemma (allocating " "+s+" "
// padding per probe). The automaton replaces both loops with one pass over
// the phrase and zero allocations, while reproducing the legacy resolution
// order exactly (see resolve below). It is built once per Index — and
// indexes themselves are cached per taxonomy generation in cache.go — so
// construction cost is off the hot path.
//
// Edges are stored as small slices, not maps: node fan-out is tiny (the
// alphabet is lowercase letters, digits, space), linear probing beats map
// overhead at that size, and slice order keeps construction deterministic
// — the package is under the determinism vet gate, which bans unsorted
// map ranges feeding results.

// acOutput records one pattern ending at a node.
type acOutput struct {
	length int32 // pattern length in bytes
	trig   int32 // smallest trigger index sharing this lemma
	multi  bool  // lemma contains a space (legacy "loop 2" candidate)
}

type acEdge struct {
	c  byte
	to int32
}

type acNode struct {
	edges []acEdge
	fail  int32
	out   []acOutput
}

func (n *acNode) edge(c byte) (int32, bool) {
	for _, e := range n.edges {
		if e.c == c {
			return e.to, true
		}
	}
	return 0, false
}

type acAutomaton struct {
	nodes []acNode
}

// newTriggerAutomaton builds the automaton over the trigger lemmas.
// Duplicate lemmas are deduplicated to the smallest trigger index, which is
// the index the legacy scans would have returned for that surface form.
func newTriggerAutomaton(triggers []triggerRule) *acAutomaton {
	a := &acAutomaton{nodes: make([]acNode, 1, 64)}
	seen := map[string]bool{}
	for i, t := range triggers {
		if t.lemma == "" || seen[t.lemma] {
			continue
		}
		seen[t.lemma] = true
		a.insert(t.lemma, int32(i))
	}
	a.buildFailLinks()
	return a
}

func (a *acAutomaton) insert(pat string, trig int32) {
	st := int32(0)
	multi := false
	for i := 0; i < len(pat); i++ {
		c := pat[i]
		if c == ' ' {
			multi = true
		}
		nxt, ok := a.nodes[st].edge(c)
		if !ok {
			nxt = int32(len(a.nodes))
			a.nodes[st].edges = append(a.nodes[st].edges, acEdge{c: c, to: nxt})
			a.nodes = append(a.nodes, acNode{})
		}
		st = nxt
	}
	a.nodes[st].out = append(a.nodes[st].out, acOutput{
		length: int32(len(pat)), trig: trig, multi: multi,
	})
}

// buildFailLinks runs the standard BFS, merging each node's fail-node
// outputs into its own list so matching never chases fail chains.
func (a *acAutomaton) buildFailLinks() {
	queue := make([]int32, 0, len(a.nodes))
	for _, e := range a.nodes[0].edges {
		a.nodes[e.to].fail = 0
		queue = append(queue, e.to)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range a.nodes[cur].edges {
			queue = append(queue, e.to)
			f := a.nodes[cur].fail
			for f != 0 {
				if g, ok := a.nodes[f].edge(e.c); ok {
					f = g
					break
				}
				f = a.nodes[f].fail
			}
			if f == 0 {
				// Fell back to the root: follow its edge if one exists
				// (it never leads back to e.to, which sits at depth ≥ 2).
				if g, ok := a.nodes[0].edge(e.c); ok {
					f = g
				}
			}
			a.nodes[e.to].fail = f
			a.nodes[e.to].out = append(a.nodes[e.to].out, a.nodes[f].out...)
		}
	}
}

// step advances the automaton from state st on byte c.
func (a *acAutomaton) step(st int32, c byte) int32 {
	for {
		if nxt, ok := a.nodes[st].edge(c); ok {
			return nxt
		}
		if st == 0 {
			return 0
		}
		st = a.nodes[st].fail
	}
}

// resolve scans s (a normalized, single-space-joined phrase) and returns
// the trigger index the legacy double loop would have selected:
//
//   - single-word lemmas replicate "loop 1" (first matching word wins;
//     equal surface forms resolve to the smallest trigger index), keyed by
//     match start offset — word order and offset order coincide;
//   - multi-word lemmas replicate "loop 2" (smallest trigger index whose
//     lemma appears as a whole-word substring), and lose to any
//     single-word match, because loop 1 ran first.
//
// A match only counts when flanked by string edges or spaces — the same
// boundary the legacy code bought by allocating " "+s+" " padding.
func (a *acAutomaton) resolve(s string) (int32, bool) {
	st := int32(0)
	singleStart, singleTrig := -1, int32(-1)
	multiTrig := int32(-1)
	for i := 0; i < len(s); i++ {
		st = a.step(st, s[i])
		for _, o := range a.nodes[st].out {
			end := i + 1
			start := end - int(o.length)
			if start > 0 && s[start-1] != ' ' {
				continue
			}
			if end < len(s) && s[end] != ' ' {
				continue
			}
			if o.multi {
				if multiTrig < 0 || o.trig < multiTrig {
					multiTrig = o.trig
				}
			} else if singleStart < 0 || start < singleStart {
				singleStart, singleTrig = start, o.trig
			}
		}
	}
	if singleStart >= 0 {
		return singleTrig, true
	}
	if multiTrig >= 0 {
		return multiTrig, true
	}
	return -1, false
}
